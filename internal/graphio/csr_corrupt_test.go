package graphio

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"strings"
	"testing"

	"subtrav/internal/graph"
)

// corruptFixture builds a graph that exercises every one of the
// fifteen v2 sections: undirected (edgeidx), weighted, vertex + edge
// props (idx, recs, arena), explicit partition, and the persisted
// in-edge view (inoffsets, insources, inslots).
func corruptFixture(t *testing.T) []byte {
	t.Helper()
	b := graph.NewBuilder(graph.Undirected, 6)
	b.AddEdgeFull(0, 1, 2.5, graph.Properties{"via": graph.String("road"), "len": graph.Int(42)})
	b.AddEdgeFull(1, 2, 0.5, graph.Properties{"via": graph.String("rail")})
	b.AddWeightedEdge(2, 3, 4)
	b.AddWeightedEdge(3, 4, 8)
	b.AddWeightedEdge(4, 5, 16)
	b.SetVertexProps(0, graph.Properties{"name": graph.String("hub"), "pic": graph.Blob(512)})
	b.SetVertexProps(5, graph.Properties{"score": graph.Float(1.5), "ok": graph.Bool(true)})
	b.SetPartition([]int32{0, 0, 1, 1, 2, 2})
	g := b.Build()
	g.In() // materialize the reverse CSR so the in-edge sections persist
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// tableEntry is a decoded section-table row plus the byte position of
// its fields, so tests can surgically corrupt one section.
type tableEntry struct {
	id      uint32
	off, ln uint64
	pos     int // entry start within the file
}

func parseTable(t *testing.T, data []byte) []tableEntry {
	t.Helper()
	nSec := int(le.Uint32(data[44:]))
	out := make([]tableEntry, nSec)
	for i := range out {
		pos := csrHeaderSize + i*csrEntrySize
		e := data[pos:]
		out[i] = tableEntry{id: le.Uint32(e), off: le.Uint64(e[8:]), ln: le.Uint64(e[16:]), pos: pos}
	}
	return out
}

func entryFor(t *testing.T, data []byte, id uint32) tableEntry {
	t.Helper()
	for _, e := range parseTable(t, data) {
		if e.id == id {
			return e
		}
	}
	t.Fatalf("fixture has no %s section", secName(id))
	return tableEntry{}
}

// refreshCRCs recomputes every payload checksum and the header
// checksum after a test mutated the file, so the mutation reaches the
// structural validation it targets instead of tripping a checksum.
func refreshCRCs(t *testing.T, data []byte) {
	t.Helper()
	for _, e := range parseTable(t, data) {
		if e.off+e.ln > uint64(len(data)) {
			continue // the test corrupted geometry on purpose
		}
		le.PutUint32(data[e.pos+24:], crc32.Checksum(data[e.off:e.off+e.ln], castagnoli))
	}
	h := crc32.New(castagnoli)
	h.Write(data[:48])
	h.Write(data[csrHeaderSize : csrHeaderSize+int(le.Uint32(data[44:]))*csrEntrySize])
	le.PutUint32(data[48:], h.Sum32())
}

// TestReadCSRCorruptionTable hits every header field and every section
// with targeted damage and asserts the decoder reports the right error
// class, names the offending section, and never panics. Each case also
// runs through the copying decode path.
func TestReadCSRCorruptionTable(t *testing.T) {
	pristine := corruptFixture(t)
	if _, err := ReadCSR(pristine); err != nil {
		t.Fatalf("pristine fixture does not decode: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(t *testing.T, d []byte) []byte
		wantErr error
		wantMsg string
	}{
		{"header-too-short", func(t *testing.T, d []byte) []byte { return d[:csrHeaderSize-1] },
			ErrCSRTruncated, "header"},
		{"bad-magic", func(t *testing.T, d []byte) []byte { d[0] ^= 0xff; return d },
			ErrCSRMagic, "magic"},
		{"future-version", func(t *testing.T, d []byte) []byte {
			le.PutUint32(d[8:], 3)
			refreshCRCs(t, d)
			return d
		}, ErrCSRVersion, "version 3"},
		{"invalid-kind", func(t *testing.T, d []byte) []byte {
			d[12] = 7
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "kind"},
		{"vertex-count-overflows-int32", func(t *testing.T, d []byte) []byte {
			le.PutUint64(d[16:], 1<<40)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "int32"},
		{"vertex-count-exceeds-file", func(t *testing.T, d []byte) []byte {
			le.PutUint64(d[16:], uint64(len(d))) // needs 8 bytes per vertex
			refreshCRCs(t, d)
			return d
		}, ErrCSRTruncated, "impossible"},
		{"slot-count-exceeds-file", func(t *testing.T, d []byte) []byte {
			le.PutUint64(d[32:], uint64(len(d))) // needs 4 bytes per slot
			refreshCRCs(t, d)
			return d
		}, ErrCSRTruncated, "impossible"},
		{"too-many-sections", func(t *testing.T, d []byte) []byte {
			le.PutUint32(d[44:], csrMaxSections+1)
			return d
		}, ErrCSRCorrupt, "section table"},
		{"table-truncated", func(t *testing.T, d []byte) []byte { return d[:csrHeaderSize+csrEntrySize] },
			ErrCSRTruncated, "section table"},
		{"header-crc-flipped", func(t *testing.T, d []byte) []byte { d[49] ^= 0x01; return d },
			ErrCSRChecksum, "header"},
		{"section-ids-out-of-order", func(t *testing.T, d []byte) []byte {
			tab := parseTable(t, d)
			a, b := tab[0], tab[1]
			le.PutUint32(d[a.pos:], b.id)
			le.PutUint32(d[b.pos:], a.id)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "out of order"},
		{"section-misaligned", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secTargets)
			le.PutUint64(d[e.pos+8:], e.off+4)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "aligned"},
		{"section-overlap", func(t *testing.T, d []byte) []byte {
			first := parseTable(t, d)[0]
			second := parseTable(t, d)[1]
			le.PutUint64(d[second.pos+8:], first.off)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "overlaps"},
		{"section-past-eof", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secArena)
			le.PutUint64(d[e.pos+16:], uint64(len(d)))
			refreshCRCs(t, d)
			return d
		}, ErrCSRTruncated, "arena section"},
		{"offsets-decrease", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secOffsets)
			le.PutUint64(d[e.off+8:], ^uint64(0)) // offsets[1] = -1
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "offsets"},
		{"target-out-of-range", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secTargets)
			le.PutUint32(d[e.off:], 1<<20)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "target"},
		{"edgeidx-out-of-range", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secEdgeIdx)
			le.PutUint32(d[e.off:], 1<<20)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "edge"},
		{"weights-wrong-length", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secWeights)
			le.PutUint64(d[e.pos+16:], e.ln-4)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "weights section"},
		{"partition-count-mismatch", func(t *testing.T, d []byte) []byte {
			le.PutUint32(d[40:], 9)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "partition"},
		{"vpropidx-bad-start", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secVPropIdx)
			le.PutUint32(d[e.off:], 1)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "vpropidx"},
		{"vproprecs-not-record-multiple", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secVPropRecs)
			le.PutUint64(d[e.pos+16:], e.ln-4)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "vproprecs section"},
		{"vproprecs-without-vpropidx", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secVPropIdx)
			le.PutUint64(d[e.pos+16:], 0)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "without"},
		{"prop-key-past-arena", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secVPropRecs)
			le.PutUint32(d[e.off+4:], ^uint32(0)) // first record's key length
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "arena"},
		{"prop-unknown-value-kind", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secEPropRecs)
			le.PutUint32(d[e.off+8:], 99)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "kind"},
		{"inoffsets-decrease", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secInOffsets)
			le.PutUint64(d[e.off+8:], ^uint64(0)) // inoffsets[1] = -1
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "in-offsets"},
		{"inslot-out-of-range", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secInSlots)
			le.PutUint32(d[e.off:], 1<<20)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "in-slot"},
		{"insource-out-of-range", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secInSources)
			le.PutUint32(d[e.off:], 1<<20)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "in-sources"},
		{"insources-without-inoffsets", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secInOffsets)
			le.PutUint64(d[e.pos+16:], 0)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "without an inoffsets"},
		{"inoffsets-without-insources", func(t *testing.T, d []byte) []byte {
			e := entryFor(t, d, secInSources)
			le.PutUint64(d[e.pos+16:], 0)
			refreshCRCs(t, d)
			return d
		}, ErrCSRCorrupt, "inoffsets section"},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(t, append([]byte(nil), pristine...))
			for _, mode := range []bool{false, true} {
				_, err := decodeCSR(data, mode)
				if err == nil {
					t.Fatalf("copyMode=%v: corrupt input decoded successfully", mode)
				}
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("copyMode=%v: error %q does not wrap %q", mode, err, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantMsg) {
					t.Fatalf("copyMode=%v: error %q does not mention %q", mode, err, tc.wantMsg)
				}
			}
		})
	}
}

// TestReadCSRSectionChecksums flips one payload byte inside every
// section and asserts the decoder reports a checksum failure naming
// exactly that section.
func TestReadCSRSectionChecksums(t *testing.T) {
	pristine := corruptFixture(t)
	for _, e := range parseTable(t, pristine) {
		e := e
		t.Run(secName(e.id), func(t *testing.T) {
			data := append([]byte(nil), pristine...)
			data[e.off] ^= 0x40
			_, err := ReadCSR(data)
			if !errors.Is(err, ErrCSRChecksum) {
				t.Fatalf("error %v is not a checksum failure", err)
			}
			if !strings.Contains(err.Error(), secName(e.id)+" section") {
				t.Fatalf("error %q does not name the %s section", err, secName(e.id))
			}
		})
	}
}

// TestReadCSRTruncatedAtEveryBoundary cuts the file at the start of
// every section (and a few interior points) and asserts a clean
// truncation error, never a panic or over-allocation.
func TestReadCSRTruncatedAtEveryBoundary(t *testing.T) {
	pristine := corruptFixture(t)
	cuts := []int{0, 1, csrHeaderSize - 1, csrHeaderSize}
	for _, e := range parseTable(t, pristine) {
		cuts = append(cuts, int(e.off), int(e.off)+1, int(e.off+e.ln)-1)
	}
	cuts = append(cuts, len(pristine)-1)
	for _, cut := range cuts {
		if cut >= len(pristine) {
			continue
		}
		data := pristine[:cut]
		if _, err := ReadCSR(data); err == nil {
			t.Fatalf("file truncated to %d bytes decoded successfully", cut)
		} else if !errors.Is(err, ErrCSRTruncated) && !errors.Is(err, ErrCSRChecksum) &&
			!errors.Is(err, ErrCSRMagic) && !errors.Is(err, ErrCSRCorrupt) {
			t.Fatalf("truncated to %d bytes: unexpected error class: %v", cut, err)
		}
	}
}

// TestReadCSRInEdgeSections pins the persistence round-trip of the
// optional reverse-CSR sections and the absent-section fallback: files
// written before the sections existed (or from graphs that never
// materialized the view) decode fine and rebuild on demand.
func TestReadCSRInEdgeSections(t *testing.T) {
	b := graph.NewBuilder(graph.Directed, 5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(2, 1)
	b.AddEdge(3, 0)
	b.AddEdge(4, 1)
	src := b.Build()

	var without bytes.Buffer
	if err := WriteCSR(&without, src); err != nil {
		t.Fatal(err)
	}
	want := src.In() // materializes the view; reference for both paths
	var with bytes.Buffer
	if err := WriteCSR(&with, src); err != nil {
		t.Fatal(err)
	}
	if with.Len() <= without.Len() {
		t.Fatalf("snapshot with in-edge sections is %d bytes, without is %d — sections not written",
			with.Len(), without.Len())
	}

	gw, err := ReadCSR(with.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !gw.InPersisted() {
		t.Error("graph loaded from snapshot with in-edge sections: InPersisted() = false")
	}
	if got := gw.In(); !reflect.DeepEqual(got, want) {
		t.Errorf("persisted in-CSR differs from built one:\n got %+v\nwant %+v", got, want)
	}

	gf, err := ReadCSR(without.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if gf.InPersisted() {
		t.Error("graph loaded from snapshot without in-edge sections: InPersisted() = true")
	}
	if got := gf.In(); !reflect.DeepEqual(got, want) {
		t.Errorf("rebuilt in-CSR differs from reference:\n got %+v\nwant %+v", got, want)
	}
}

// TestReadCSRArenaOffsetOverflow pins the overflow-safe bounds check
// in arenaString: a hostile string record carrying an arena offset
// near MaxUint64 made the naive off+len comparison wrap, pass, and
// panic on the slice. The decoder must reject it as corruption.
func TestReadCSRArenaOffsetOverflow(t *testing.T) {
	data := corruptFixture(t)
	e := entryFor(t, data, secVPropRecs)
	found := false
	for pos := int(e.off); pos < int(e.off+e.ln); pos += propRecSize {
		rec := data[pos : pos+propRecSize]
		if graph.ValueKind(le.Uint32(rec[8:])) == graph.KindString {
			le.PutUint32(rec[12:], 2)              // claimed string length
			le.PutUint64(rec[16:], math.MaxUint64) // offset that wraps the naive check
			found = true
			break
		}
	}
	if !found {
		t.Fatal("fixture has no string vertex property record")
	}
	refreshCRCs(t, data)
	_, err := ReadCSR(data)
	if !errors.Is(err, ErrCSRCorrupt) {
		t.Fatalf("overflowing arena offset: err = %v, want ErrCSRCorrupt", err)
	}
	if !strings.Contains(err.Error(), "arena") {
		t.Fatalf("error does not name the arena section: %v", err)
	}
}
