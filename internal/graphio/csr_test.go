package graphio

import (
	"bytes"
	"path/filepath"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

// diffFixtures enumerates the differential-test graph classes: every
// topology the generators produce (random, power-law, bipartite) plus
// handcrafted edge cases, in weighted and unweighted, propertied and
// bare, partitioned and unpartitioned combinations.
func diffFixtures(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)

	rnd, err := graphgen.Random(graphgen.RandomConfig{
		NumVertices: 300, NumEdges: 900, Kind: graph.Directed, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["random-directed"] = rnd

	rndMeta, err := graphgen.Random(graphgen.RandomConfig{
		NumVertices: 200, NumEdges: 600, Kind: graph.Undirected, Seed: 12, VertexMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["random-undirected-props"] = rndMeta

	pl, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 400, NumEdges: 1600, Exponent: 2.3, Kind: graph.Undirected, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["powerlaw-undirected"] = pl

	plMeta, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 250, NumEdges: 1000, Exponent: 2.3, Kind: graph.Undirected, Seed: 14, VertexMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["powerlaw-undirected-props"] = plMeta

	// Power-law with partition labels attached.
	partLabels := make([]int32, pl.NumVertices())
	for v := range partLabels {
		partLabels[v] = int32(v % 4)
	}
	bPart := graph.NewBuilder(pl.Kind(), pl.NumVertices())
	seen := make(map[[2]graph.VertexID]bool)
	for v := 0; v < pl.NumVertices(); v++ {
		lo, hi := pl.EdgeSlots(graph.VertexID(v))
		for s := lo; s < hi; s++ {
			u := pl.TargetAt(s)
			key := [2]graph.VertexID{graph.VertexID(v), u}
			if u < graph.VertexID(v) {
				key = [2]graph.VertexID{u, graph.VertexID(v)}
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			bPart.AddEdge(key[0], key[1])
		}
	}
	bPart.SetPartition(partLabels)
	out["powerlaw-partitioned"] = bPart.Build()

	bip, err := graphgen.Purchases(graphgen.PurchaseConfig{
		NumCustomers: 120, NumProducts: 80, PurchasesPerCustomerMean: 6,
		PopularityExponent: 2.4, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["bipartite-purchases"] = bip.Graph

	wb := graph.NewBuilder(graph.Directed, 5)
	wb.AddWeightedEdge(0, 1, 0.25)
	wb.AddWeightedEdge(1, 2, -3.5)
	wb.AddWeightedEdge(2, 2, 7) // self-loop
	wb.AddWeightedEdge(0, 1, 2) // parallel edge
	out["weighted-directed-multi"] = wb.Build()

	ab := graph.NewBuilder(graph.Undirected, 4)
	ab.AddEdgeFull(0, 1, 0.5, graph.Properties{
		"s": graph.String("edge-string"), "i": graph.Int(-9), "f": graph.Float(3.25),
		"b": graph.Bool(false), "z": graph.Blob(4096),
	})
	ab.AddWeightedEdge(1, 2, 1.5)
	ab.SetVertexProps(0, graph.Properties{
		"name": graph.String("alice"), "": graph.String(""), "vip": graph.Bool(true),
	})
	ab.SetVertexProps(3, graph.Properties{"photo": graph.Blob(123456)})
	ab.SetPartition([]int32{0, 1, 0, 1})
	out["all-value-kinds"] = ab.Build()

	out["empty"] = graph.NewBuilder(graph.Directed, 0).Build()

	ib := graph.NewBuilder(graph.Undirected, 7)
	ib.SetVertexProps(2, graph.Properties{"lonely": graph.Bool(true)})
	out["isolated-vertices"] = ib.Build()

	return out
}

func propsEqual(a, b graph.Properties) bool {
	if len(a) != len(b) { // nil and empty are semantically identical
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || !va.Equal(vb) {
			return false
		}
	}
	return true
}

// assertGraphEqual is the full structural-equality oracle: kind,
// counts, per-vertex adjacency/slots/bytes/partition/props, per-slot
// targets, and logical-edge payloads. Logical edge IDs are compared up
// to bijection because the v1 gob codec renumbers edges into
// first-slot-encounter order while v2 preserves them exactly.
func assertGraphEqual(t *testing.T, label string, a, b *graph.Graph) {
	t.Helper()
	if a.Kind() != b.Kind() || a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: shape %v/%d/%d vs %v/%d/%d", label,
			a.Kind(), a.NumVertices(), a.NumEdges(), b.Kind(), b.NumVertices(), b.NumEdges())
	}
	if a.NumPartitions() != b.NumPartitions() {
		t.Fatalf("%s: partitions %d vs %d", label, a.NumPartitions(), b.NumPartitions())
	}
	if a.HasWeights() != b.HasWeights() {
		t.Fatalf("%s: weighted %v vs %v", label, a.HasWeights(), b.HasWeights())
	}
	a2b := make(map[graph.EdgeID]graph.EdgeID)
	b2a := make(map[graph.EdgeID]graph.EdgeID)
	for v := 0; v < a.NumVertices(); v++ {
		id := graph.VertexID(v)
		if a.Degree(id) != b.Degree(id) {
			t.Fatalf("%s: vertex %d degree %d vs %d", label, v, a.Degree(id), b.Degree(id))
		}
		alo, ahi := a.EdgeSlots(id)
		blo, bhi := b.EdgeSlots(id)
		if alo != blo || ahi != bhi {
			t.Fatalf("%s: vertex %d slots [%d,%d) vs [%d,%d)", label, v, alo, ahi, blo, bhi)
		}
		na, nb := a.Neighbors(id), b.Neighbors(id)
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("%s: vertex %d neighbor %d: %d vs %d", label, v, i, na[i], nb[i])
			}
		}
		for s := alo; s < ahi; s++ {
			ea, eb := a.LogicalEdge(s), b.LogicalEdge(s)
			if prev, ok := a2b[ea]; ok && prev != eb {
				t.Fatalf("%s: slot %d maps edge %d to both %d and %d", label, s, ea, prev, eb)
			}
			if prev, ok := b2a[eb]; ok && prev != ea {
				t.Fatalf("%s: slot %d maps edge %d back to both %d and %d", label, s, eb, prev, ea)
			}
			a2b[ea], b2a[eb] = eb, ea
			if a.Weight(ea) != b.Weight(eb) {
				t.Fatalf("%s: slot %d weight %g vs %g", label, s, a.Weight(ea), b.Weight(eb))
			}
			if !propsEqual(a.EdgeProps(ea), b.EdgeProps(eb)) {
				t.Fatalf("%s: slot %d edge props %v vs %v", label, s, a.EdgeProps(ea), b.EdgeProps(eb))
			}
			if a.EdgeBytes(ea) != b.EdgeBytes(eb) {
				t.Fatalf("%s: slot %d edge bytes %d vs %d", label, s, a.EdgeBytes(ea), b.EdgeBytes(eb))
			}
		}
		if !propsEqual(a.VertexProps(id), b.VertexProps(id)) {
			t.Fatalf("%s: vertex %d props %v vs %v", label, v, a.VertexProps(id), b.VertexProps(id))
		}
		if a.VertexBytes(id) != b.VertexBytes(id) {
			t.Fatalf("%s: vertex %d bytes %d vs %d", label, v, a.VertexBytes(id), b.VertexBytes(id))
		}
		if a.Partition(id) != b.Partition(id) {
			t.Fatalf("%s: vertex %d partition %d vs %d", label, v, a.Partition(id), b.Partition(id))
		}
	}
}

func encodeCSR(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCSRGobDifferential is the heart of the test wall: on every
// fixture class, the v1 gob decode and the v2 flat-CSR decode of the
// same graph must be structurally equal — and both equal to the
// original.
func TestCSRGobDifferential(t *testing.T) {
	for name, g := range diffFixtures(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var gobBuf bytes.Buffer
			if err := Write(&gobBuf, g); err != nil {
				t.Fatal(err)
			}
			v1, err := Read(&gobBuf)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := ReadCSR(encodeCSR(t, g))
			if err != nil {
				t.Fatal(err)
			}
			assertGraphEqual(t, "v2 vs original", g, v2)
			assertGraphEqual(t, "v1 vs original", g, v1)
			assertGraphEqual(t, "v1 vs v2", v1, v2)
		})
	}
}

// TestCSRDeterministicEncode pins the writer's determinism: encoding
// the same graph twice, and re-encoding a decoded graph, are both
// byte-identical. Tracked dataset files therefore diff cleanly.
func TestCSRDeterministicEncode(t *testing.T) {
	for name, g := range diffFixtures(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			first := encodeCSR(t, g)
			second := encodeCSR(t, g)
			if !bytes.Equal(first, second) {
				t.Fatal("two encodes of the same graph differ")
			}
			back, err := ReadCSR(first)
			if err != nil {
				t.Fatal(err)
			}
			again := encodeCSR(t, back)
			if !bytes.Equal(first, again) {
				t.Fatal("re-encode of the decoded graph differs from the original bytes")
			}
		})
	}
}

// TestCSRCopyModeDifferential drives the copying decode fallback (big-
// endian or misaligned hosts) against the zero-copy alias path.
func TestCSRCopyModeDifferential(t *testing.T) {
	for name, g := range diffFixtures(t) {
		data := encodeCSR(t, g)
		aliased, err := decodeCSR(data, false)
		if err != nil {
			t.Fatalf("%s: alias decode: %v", name, err)
		}
		copied, err := decodeCSR(data, true)
		if err != nil {
			t.Fatalf("%s: copy decode: %v", name, err)
		}
		assertGraphEqual(t, name+": alias vs copy", aliased, copied)
	}
}

// TestCSRMisalignedBuffer proves ReadCSR survives a buffer whose base
// is not 8-aligned by falling back to the copying decode.
func TestCSRMisalignedBuffer(t *testing.T) {
	g := diffFixtures(t)["all-value-kinds"]
	data := encodeCSR(t, g)
	shifted := make([]byte, len(data)+1)
	copy(shifted[1:], data)
	back, err := ReadCSR(shifted[1:])
	if err != nil {
		t.Fatal(err)
	}
	assertGraphEqual(t, "misaligned", g, back)
}

func TestCSRFileRoundTrip(t *testing.T) {
	g := diffFixtures(t)["powerlaw-undirected-props"]
	path := filepath.Join(t.TempDir(), "g.csr2")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphEqual(t, "file round-trip", g, back)
}

func TestOpenCSRFileMmap(t *testing.T) {
	g := diffFixtures(t)["all-value-kinds"]
	path := filepath.Join(t.TempDir(), "g.csr2")
	if err := WriteCSRFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphEqual(t, "mmap", g, m.Graph)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestReadGraphFileAutoDetect loads the same graph from a v1 gob file
// and a v2 CSR file through the sniffing entry point.
func TestReadGraphFileAutoDetect(t *testing.T) {
	g := diffFixtures(t)["random-undirected-props"]
	dir := t.TempDir()
	gobPath := filepath.Join(dir, "g.gob")
	csrPath := filepath.Join(dir, "g.csr2")
	if err := WriteFile(gobPath, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSRFile(csrPath, g); err != nil {
		t.Fatal(err)
	}
	fromGob, err := ReadGraphFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	fromCSR, err := ReadGraphFile(csrPath)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphEqual(t, "auto-detect gob vs csr", fromGob, fromCSR)

	gobBytes, csrBytes := encodeGob(t, g), encodeCSR(t, g)
	if SniffFormat(gobBytes) != FormatGob || SniffFormat(csrBytes) != FormatCSR {
		t.Fatalf("sniff: gob=%v csr=%v", SniffFormat(gobBytes), SniffFormat(csrBytes))
	}
}

func encodeGob(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteCSRNilGraph(t *testing.T) {
	if err := WriteCSR(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}
