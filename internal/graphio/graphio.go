// Package graphio persists property graphs to disk so the CLI tools
// can generate a dataset once and reuse it across experiment runs.
// Two formats coexist: the version-1 gob encoding in this file (the
// original executable spec, kept for backward compatibility) and the
// version-2 flat binary CSR snapshot in csr.go, which loads with one
// read or mmap and zero per-vertex allocation. ReadGraphFile
// auto-detects the format by magic.
package graphio

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"subtrav/internal/graph"
)

// wireValue is the serializable form of graph.Value.
type wireValue struct {
	Kind uint8
	Str  string
	Num  int64
	F    float64
}

func toWire(v graph.Value) wireValue {
	w := wireValue{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case graph.KindString:
		w.Str = v.Str()
	case graph.KindInt:
		w.Num = v.Int64()
	case graph.KindFloat:
		w.F = v.Float64()
	case graph.KindBool:
		if v.IsTrue() {
			w.Num = 1
		}
	case graph.KindBlob:
		w.Num = int64(v.BlobSize())
	}
	return w
}

func fromWire(w wireValue) (graph.Value, error) {
	switch graph.ValueKind(w.Kind) {
	case graph.KindString:
		return graph.String(w.Str), nil
	case graph.KindInt:
		return graph.Int(w.Num), nil
	case graph.KindFloat:
		return graph.Float(w.F), nil
	case graph.KindBool:
		return graph.Bool(w.Num != 0), nil
	case graph.KindBlob:
		return graph.Blob(int(w.Num)), nil
	default:
		return graph.Value{}, fmt.Errorf("graphio: unknown value kind %d", w.Kind)
	}
}

// fileGraph is the on-disk snapshot.
type fileGraph struct {
	Magic       string
	Version     int
	Kind        uint8
	NumVertices int

	// Logical edges.
	Srcs, Dsts []int32
	Weights    []float32 // nil when unweighted
	EProps     []map[string]wireValue

	VProps    map[int32]map[string]wireValue
	Partition []int32
}

const (
	magic   = "subtrav-graph"
	version = 1
)

// Write encodes the graph to w.
func Write(w io.Writer, g *graph.Graph) error {
	return encodeGraph(gob.NewEncoder(w), g)
}

// encodeGraph writes the graph as one gob value on enc, so callers can
// compose it with other values in a single stream.
func encodeGraph(enc *gob.Encoder, g *graph.Graph) error {
	if g == nil {
		return fmt.Errorf("graphio: nil graph")
	}
	fg := fileGraph{
		Magic:       magic,
		Version:     version,
		Kind:        uint8(g.Kind()),
		NumVertices: g.NumVertices(),
	}

	// Recover logical edges from the CSR: each logical edge is
	// reported once (its first slot encounter).
	seen := make([]bool, g.NumEdges())
	hasWeights := g.HasWeights()
	var hasEProps bool
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.EdgeSlots(graph.VertexID(v))
		for s := lo; s < hi; s++ {
			e := g.LogicalEdge(s)
			if seen[e] {
				continue
			}
			seen[e] = true
			fg.Srcs = append(fg.Srcs, int32(v))
			fg.Dsts = append(fg.Dsts, int32(g.TargetAt(s)))
			if hasWeights {
				fg.Weights = append(fg.Weights, g.Weight(e))
			}
			props := g.EdgeProps(e)
			if props != nil {
				hasEProps = true
			}
			fg.EProps = append(fg.EProps, propsToWire(props))
		}
	}
	if !hasEProps {
		fg.EProps = nil
	}

	fg.VProps = make(map[int32]map[string]wireValue)
	for v := 0; v < g.NumVertices(); v++ {
		if p := g.VertexProps(graph.VertexID(v)); p != nil {
			fg.VProps[int32(v)] = propsToWire(p)
		}
	}
	if g.NumPartitions() > 0 {
		fg.Partition = make([]int32, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			fg.Partition[v] = g.Partition(graph.VertexID(v))
		}
	}
	return enc.Encode(fg)
}

// Read decodes a graph from r.
func Read(r io.Reader) (*graph.Graph, error) {
	return decodeGraph(gob.NewDecoder(r))
}

// decodeGraph reads one graph value from dec.
func decodeGraph(dec *gob.Decoder) (*graph.Graph, error) {
	var fg fileGraph
	if err := dec.Decode(&fg); err != nil {
		return nil, fmt.Errorf("graphio: decode: %w", err)
	}
	if fg.Magic != magic {
		return nil, fmt.Errorf("graphio: bad magic %q", fg.Magic)
	}
	if fg.Version != version {
		return nil, fmt.Errorf("graphio: unsupported version %d", fg.Version)
	}
	if len(fg.Srcs) != len(fg.Dsts) {
		return nil, fmt.Errorf("graphio: corrupt edge arrays (%d vs %d)", len(fg.Srcs), len(fg.Dsts))
	}

	b := graph.NewBuilder(graph.Kind(fg.Kind), fg.NumVertices)
	for i := range fg.Srcs {
		w := float32(1)
		if fg.Weights != nil {
			w = fg.Weights[i]
		}
		var props graph.Properties
		if fg.EProps != nil {
			var err error
			props, err = propsFromWire(fg.EProps[i])
			if err != nil {
				return nil, err
			}
		}
		b.AddEdgeFull(graph.VertexID(fg.Srcs[i]), graph.VertexID(fg.Dsts[i]), w, props)
	}
	for v, wp := range fg.VProps {
		props, err := propsFromWire(wp)
		if err != nil {
			return nil, err
		}
		b.SetVertexProps(graph.VertexID(v), props)
	}
	if fg.Partition != nil {
		b.SetPartition(fg.Partition)
	}
	return b.Build(), nil
}

func propsToWire(p graph.Properties) map[string]wireValue {
	if p == nil {
		return nil
	}
	out := make(map[string]wireValue, len(p))
	for k, v := range p {
		out[k] = toWire(v)
	}
	return out
}

func propsFromWire(wp map[string]wireValue) (graph.Properties, error) {
	if wp == nil {
		return nil, nil
	}
	out := make(graph.Properties, len(wp))
	for k, w := range wp {
		v, err := fromWire(w)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// WriteFile writes the graph to path.
func WriteFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := Write(w, g); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a graph from path.
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReaderSize(f, 1<<20))
}
