package graphio

import (
	"bytes"
	"path/filepath"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func assertSameStructure(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.Kind() != b.Kind() || a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape: %v/%d/%d vs %v/%d/%d",
			a.Kind(), a.NumVertices(), a.NumEdges(), b.Kind(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(graph.VertexID(v)), b.Neighbors(graph.VertexID(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d neighbor %d: %d vs %d", v, i, na[i], nb[i])
			}
		}
	}
}

func TestRoundTripPlain(t *testing.T) {
	b := graph.NewBuilder(graph.Directed, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 0)
	g := b.Build()
	assertSameStructure(t, g, roundTrip(t, g))
}

func TestRoundTripWeightedUndirected(t *testing.T) {
	b := graph.NewBuilder(graph.Undirected, 3)
	b.AddWeightedEdge(0, 1, 0.25)
	b.AddWeightedEdge(1, 2, 0.75)
	g := b.Build()
	back := roundTrip(t, g)
	assertSameStructure(t, g, back)
	if !back.HasWeights() {
		t.Fatal("weights lost")
	}
	if w := back.Weight(back.FindEdge(1, 0)); w != 0.25 {
		t.Errorf("weight = %g, want 0.25", w)
	}
}

func TestRoundTripProperties(t *testing.T) {
	b := graph.NewBuilder(graph.Undirected, 2)
	b.AddEdgeFull(0, 1, 1, graph.Properties{"ts": graph.Int(99)})
	b.SetVertexProps(0, graph.Properties{
		"name":  graph.String("alice"),
		"age":   graph.Int(30),
		"score": graph.Float(2.5),
		"vip":   graph.Bool(true),
		"photo": graph.Blob(1234),
	})
	g := b.Build()
	back := roundTrip(t, g)
	p := back.VertexProps(0)
	if p["name"].Str() != "alice" || p["age"].Int64() != 30 ||
		p["score"].Float64() != 2.5 || !p["vip"].IsTrue() || p["photo"].BlobSize() != 1234 {
		t.Errorf("vertex props lost: %v", p)
	}
	if back.VertexProps(1) != nil {
		t.Error("phantom props appeared")
	}
	e := back.FindEdge(0, 1)
	if ep := back.EdgeProps(e); ep == nil || ep["ts"].Int64() != 99 {
		t.Errorf("edge props lost: %v", ep)
	}
	// Byte accounting must survive (the storage model depends on it).
	if back.VertexBytes(0) != g.VertexBytes(0) {
		t.Errorf("vertex bytes %d vs %d", back.VertexBytes(0), g.VertexBytes(0))
	}
}

func TestRoundTripPartition(t *testing.T) {
	b := graph.NewBuilder(graph.Directed, 4)
	b.SetPartition([]int32{0, 0, 1, 2})
	g := b.Build()
	back := roundTrip(t, g)
	if back.NumPartitions() != 3 || back.Partition(3) != 2 {
		t.Errorf("partition lost: %d/%d", back.NumPartitions(), back.Partition(3))
	}
}

func TestRoundTripGenerated(t *testing.T) {
	g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 500, NumEdges: 2000, Exponent: 2.2,
		Kind: graph.Undirected, Seed: 5, VertexMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, g)
	assertSameStructure(t, g, back)
	for v := 0; v < g.NumVertices(); v++ {
		if g.VertexBytes(graph.VertexID(v)) != back.VertexBytes(graph.VertexID(v)) {
			t.Fatalf("vertex %d bytes differ", v)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	g, err := graphgen.Random(graphgen.RandomConfig{
		NumVertices: 100, NumEdges: 300, Kind: graph.Undirected, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.subtrav")
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameStructure(t, g, back)
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := ReadFile("/nonexistent/path"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	corpus, err := graphgen.Images(graphgen.ImageCorpusConfig{
		NumPersons: 8, ImagesPerPersonMin: 4, ImagesPerPersonMax: 7,
		DescriptorDim: 8, IntraNoise: 0.15, KNN: 4, CrossCandidates: 6,
		NumPartitions: 2, NumQueries: 20, PhotoBytesMin: 5000, PhotoBytesMax: 9000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameStructure(t, corpus.Graph, back.Graph)
	if len(back.Person) != len(corpus.Person) {
		t.Fatalf("person labels %d vs %d", len(back.Person), len(corpus.Person))
	}
	for i := range corpus.Person {
		if back.Person[i] != corpus.Person[i] {
			t.Fatalf("person[%d] differs", i)
		}
	}
	if len(back.Queries) != len(corpus.Queries) {
		t.Fatalf("queries %d vs %d", len(back.Queries), len(corpus.Queries))
	}
	for i := range corpus.Queries {
		if back.Queries[i] != corpus.Queries[i] {
			t.Fatalf("query %d differs", i)
		}
	}
	// Photo payload sizes (the storage model's key input) survive.
	for v := 0; v < corpus.Graph.NumVertices(); v++ {
		if corpus.Graph.VertexBytes(graph.VertexID(v)) != back.Graph.VertexBytes(graph.VertexID(v)) {
			t.Fatalf("vertex %d bytes differ", v)
		}
	}
}

func TestCorpusFileRoundTrip(t *testing.T) {
	corpus, err := graphgen.Images(graphgen.ImageCorpusConfig{
		NumPersons: 4, ImagesPerPersonMin: 3, ImagesPerPersonMax: 5,
		DescriptorDim: 8, IntraNoise: 0.15, KNN: 3, CrossCandidates: 4,
		NumPartitions: 2, NumQueries: 5, PhotoBytesMin: 1000, PhotoBytesMax: 2000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.corpus")
	if err := WriteCorpusFile(path, corpus); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameStructure(t, corpus.Graph, back.Graph)
}

func TestCorpusErrors(t *testing.T) {
	if err := WriteCorpus(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := ReadCorpus(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk corpus accepted")
	}
	// A plain graph stream is not a corpus.
	b := graph.NewBuilder(graph.Directed, 2)
	g := b.Build()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCorpus(&buf); err == nil {
		t.Error("graph stream accepted as corpus")
	}
}
