package graphio

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden v2 CSR fixture")

const goldenPath = "testdata/golden.csr2"

// goldenGraph is the handcrafted fixture pinned in testdata: small
// enough to eyeball in a hex dump, rich enough to exercise all fifteen
// sections (including the persisted in-edge view).
func goldenGraph() *graph.Graph {
	b := graph.NewBuilder(graph.Undirected, 8)
	b.AddEdgeFull(0, 1, 1.5, graph.Properties{"kind": graph.String("follows")})
	b.AddEdgeFull(1, 2, 2.5, graph.Properties{"kind": graph.String("follows"), "since": graph.Int(2019)})
	b.AddWeightedEdge(2, 3, 0.25)
	b.AddWeightedEdge(3, 0, 4)
	b.AddWeightedEdge(4, 5, 8)
	b.AddWeightedEdge(6, 6, 16) // self-loop; vertex 7 stays isolated
	b.SetVertexProps(0, graph.Properties{"name": graph.String("origin"), "avatar": graph.Blob(2048)})
	b.SetVertexProps(4, graph.Properties{"rank": graph.Float(0.75), "active": graph.Bool(true)})
	b.SetPartition([]int32{0, 0, 1, 1, 2, 2, 3, 3})
	g := b.Build()
	g.In() // materialize the reverse CSR so the in-edge sections persist
	return g
}

// TestCSRGoldenFile pins the exact v2 bytes of the golden fixture. Any
// change to the wire format — layout, ordering, interning, checksums —
// shows up here as a diff against the tracked file, forcing a
// conscious format-version decision rather than a silent break.
func TestCSRGoldenFile(t *testing.T) {
	g := goldenGraph()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(filepath.FromSlash(goldenPath), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(filepath.FromSlash(goldenPath))
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("encoder output (%d bytes) differs from the golden file (%d bytes); "+
			"if the format change is intentional, bump the version and run with -update",
			buf.Len(), len(want))
	}

	back, err := ReadCSR(want)
	if err != nil {
		t.Fatal(err)
	}
	// Pinned decoded stats, independent of the equality helper.
	if back.Kind() != graph.Undirected || back.NumVertices() != 8 || back.NumEdges() != 6 {
		t.Fatalf("golden stats: kind=%v V=%d E=%d", back.Kind(), back.NumVertices(), back.NumEdges())
	}
	if !back.HasWeights() || back.NumPartitions() != 4 {
		t.Fatalf("golden stats: weighted=%v partitions=%d", back.HasWeights(), back.NumPartitions())
	}
	if got := back.Degree(6); got != 2 { // self-loop occupies both slots
		t.Fatalf("golden stats: degree(6)=%d", got)
	}
	if got := back.Degree(7); got != 0 {
		t.Fatalf("golden stats: degree(7)=%d", got)
	}
	if !back.InPersisted() {
		t.Fatal("golden snapshot does not carry the in-edge sections")
	}
	if got := back.In().Degree(6); got != 2 {
		t.Fatalf("golden stats: in-degree(6)=%d", got)
	}
	assertGraphEqual(t, "golden", g, back)
}

// TestReadCSRAllocsPerRun is the zero-copy guard: decoding a large
// property-free snapshot must cost a constant number of allocations
// (the graph header plus one per section view), not O(vertices). The
// gob path allocates per vertex and per edge; this is the measurable
// difference the v2 format exists for.
func TestReadCSRAllocsPerRun(t *testing.T) {
	g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 8192, NumEdges: 32768, Exponent: 2.3, Kind: graph.Undirected, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !hostLittleEndian {
		t.Skip("copying decode on big-endian hosts allocates per column")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReadCSR(data); err != nil {
			t.Fatal(err)
		}
	})
	// One Graph struct plus O(sections) scratch — nowhere near the
	// 8192 vertices or 32768 edges in the file.
	if allocs > 32 {
		t.Fatalf("ReadCSR allocated %.0f times for an 8192-vertex graph; the zero-copy contract is broken", allocs)
	}
}
