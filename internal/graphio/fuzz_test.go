package graphio

import (
	"bytes"
	"testing"

	"subtrav/internal/graph"
)

// FuzzRead asserts the graph decoder never panics on arbitrary bytes —
// corrupt files must surface as errors.
func FuzzRead(f *testing.F) {
	// Seed with a valid encoding plus mutations.
	b := graph.NewBuilder(graph.Undirected, 4)
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddEdge(2, 3)
	b.SetVertexProps(0, graph.Properties{"k": graph.Int(7)})
	var buf bytes.Buffer
	if err := Write(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	if len(valid) > 10 {
		truncated := valid[:len(valid)/2]
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0xff
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded graphs must be internally consistent enough to scan.
		for v := 0; v < g.NumVertices(); v++ {
			_ = g.Neighbors(graph.VertexID(v))
			_ = g.VertexBytes(graph.VertexID(v))
		}
	})
}

// FuzzReadCorpus is FuzzRead for the corpus container.
func FuzzReadCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCorpus(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = c.Graph.NumVertices()
	})
}
