package graphio

import (
	"bytes"
	"testing"

	"subtrav/internal/graph"
)

// FuzzRead asserts the graph decoder never panics on arbitrary bytes —
// corrupt files must surface as errors.
func FuzzRead(f *testing.F) {
	// Seed with a valid encoding plus mutations.
	b := graph.NewBuilder(graph.Undirected, 4)
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddEdge(2, 3)
	b.SetVertexProps(0, graph.Properties{"k": graph.Int(7)})
	var buf bytes.Buffer
	if err := Write(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	if len(valid) > 10 {
		truncated := valid[:len(valid)/2]
		f.Add(truncated)
		flipped := append([]byte(nil), valid...)
		flipped[len(flipped)/3] ^= 0xff
		f.Add(flipped)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Decoded graphs must be internally consistent enough to scan.
		for v := 0; v < g.NumVertices(); v++ {
			_ = g.Neighbors(graph.VertexID(v))
			_ = g.VertexBytes(graph.VertexID(v))
		}
	})
}

// FuzzReadCSR asserts the v2 flat-CSR decoder never panics and never
// over-allocates on arbitrary bytes: hostile headers must surface as
// errors before any count-proportional allocation. When a decode
// succeeds, the graph must be scannable, the copying decode path must
// agree, and the re-encode must round-trip.
func FuzzReadCSR(f *testing.F) {
	// Seed with a valid file exercising all sections, truncations at
	// every section boundary, and per-section checksum flips.
	b := graph.NewBuilder(graph.Undirected, 5)
	b.AddEdgeFull(0, 1, 0.5, graph.Properties{"k": graph.String("v")})
	b.AddWeightedEdge(1, 2, 2)
	b.AddEdge(3, 4)
	b.SetVertexProps(0, graph.Properties{"n": graph.Int(7), "b": graph.Blob(64)})
	b.SetPartition([]int32{0, 0, 1, 1, 1})
	seedG := b.Build()
	seedG.In() // seed carries the in-edge sections too
	var buf bytes.Buffer
	if err := WriteCSR(&buf, seedG); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(csrMagic))
	f.Add([]byte("garbage that is long enough to not be a header"))
	nSec := int(le.Uint32(valid[44:]))
	for i := 0; i < nSec; i++ {
		e := valid[csrHeaderSize+i*csrEntrySize:]
		off := le.Uint64(e[8:])
		f.Add(valid[:off]) // truncate at the section boundary
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0xff // flip the section checksum's coverage
		f.Add(flipped)
	}
	hostile := append([]byte(nil), valid...)
	le.PutUint64(hostile[16:], 1<<31) // vertex count far beyond the file
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCSR(data)
		if err != nil {
			return
		}
		if _, err := decodeCSR(data, true); err != nil {
			t.Fatalf("alias decode succeeded but copy decode failed: %v", err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			id := graph.VertexID(v)
			_ = g.Neighbors(id)
			_ = g.VertexBytes(id)
			_ = g.VertexProps(id)
			_ = g.Partition(id)
			lo, hi := g.EdgeSlots(id)
			for s := lo; s < hi; s++ {
				e := g.LogicalEdge(s)
				_ = g.Weight(e)
				_ = g.EdgeProps(e)
				_ = g.EdgeBytes(e)
			}
		}
		// The in-edge view — persisted and validated, or rebuilt on
		// demand — must be scannable either way.
		in := g.In()
		for v := 0; v < g.NumVertices(); v++ {
			lo, hi := in.Edges(graph.VertexID(v))
			for p := lo; p < hi; p++ {
				_, _ = in.Sources[p], in.FwdSlot[p]
			}
		}
		var out bytes.Buffer
		if err := WriteCSR(&out, g); err != nil {
			t.Fatalf("re-encode of a decoded graph failed: %v", err)
		}
		if _, err := ReadCSR(out.Bytes()); err != nil {
			t.Fatalf("re-decode of a re-encoded graph failed: %v", err)
		}
	})
}

// FuzzReadCorpus is FuzzRead for the corpus container.
func FuzzReadCorpus(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCorpus(bytes.NewReader(data))
		if err != nil {
			return
		}
		_ = c.Graph.NumVertices()
	})
}
