package graphio

// Flat binary CSR snapshot — the version-2 on-disk graph format.
//
// A v2 file is a single contiguous buffer laid out as a fixed 64-byte
// header, a section table, and up to fifteen 8-aligned sections:
//
//	header     magic "STRVCSR2", version, kind, counts, crc
//	table      one 32-byte entry per present section: id, offset,
//	           length, crc32c of the payload
//	offsets    (V+1) × int64   CSR row offsets
//	targets    slots × int32   adjacency targets, sorted per vertex
//	edgeidx    slots × int32   slot → logical edge (undirected only)
//	weights    E × float32     logical edge weights (optional)
//	vbytes     V × int32       serialized vertex record sizes
//	ebytes     E × int32       serialized edge payload sizes (optional)
//	partition  V × int32       partition labels (optional)
//	vpropidx   (V+1) × uint32  vertex → property record range
//	vproprecs  n × 24 bytes    fixed-size vertex property records
//	epropidx   (E+1) × uint32  edge → property record range
//	eproprecs  n × 24 bytes    fixed-size edge property records
//	arena      raw bytes       all keys and string values, deduplicated
//	inoffsets  (V+1) × int64   reverse-CSR row offsets (optional)
//	insources  slots × int32   in-edge source vertices (optional)
//	inslots    slots × uint32  in-edge forward slots (optional)
//
// The three in-edge sections persist the graph's reverse-CSR view so
// pull-direction traversal on a loaded snapshot skips the O(E) rebuild;
// they are written only when the source graph has the view materialized
// and readers of older files fall back to building it on demand. They
// appear all together or not at all (insources/inslots may be absent
// when the graph has zero slots, since empty sections are skipped).
//
// All scalars are little-endian. Because every section is 8-aligned
// and already in the graph package's native column layout, the whole
// file loads with one os.ReadFile or mmap and graph.FromCSR serves the
// sections as aliased slices — no per-vertex allocation, no copying.
// The decoder validates magic, version, checksums, section geometry
// and all structural invariants before trusting anything, returns
// named errors (never panics) on hostile input, and bounds every
// allocation by the file size before believing header counts. Writes
// are deterministic: the same graph always produces identical bytes.
//
// Ownership: a graph decoded by ReadCSR borrows the input buffer for
// its whole lifetime. Mutating the buffer (or unmapping it, for
// MappedCSR) while the graph is in use is undefined behavior.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"unsafe"

	"subtrav/internal/graph"
)

const (
	csrMagic       = "STRVCSR2"
	csrVersion     = 2
	csrHeaderSize  = 64
	csrEntrySize   = 32
	csrAlign       = 8
	csrMaxSections = 16
	propRecSize    = 24
)

// Section ids in canonical file order. The table lists present
// sections in strictly ascending id order; absent ids mean an empty
// section.
const (
	secOffsets uint32 = iota + 1
	secTargets
	secEdgeIdx
	secWeights
	secVBytes
	secEBytes
	secPartition
	secVPropIdx
	secVPropRecs
	secEPropIdx
	secEPropRecs
	secArena
	secInOffsets
	secInSources
	secInSlots
)

func secName(id uint32) string {
	switch id {
	case secOffsets:
		return "offsets"
	case secTargets:
		return "targets"
	case secEdgeIdx:
		return "edgeidx"
	case secWeights:
		return "weights"
	case secVBytes:
		return "vbytes"
	case secEBytes:
		return "ebytes"
	case secPartition:
		return "partition"
	case secVPropIdx:
		return "vpropidx"
	case secVPropRecs:
		return "vproprecs"
	case secEPropIdx:
		return "epropidx"
	case secEPropRecs:
		return "eproprecs"
	case secArena:
		return "arena"
	case secInOffsets:
		return "inoffsets"
	case secInSources:
		return "insources"
	case secInSlots:
		return "inslots"
	default:
		return fmt.Sprintf("section#%d", id)
	}
}

// Sentinel error classes for v2 decode failures; every decode error
// wraps exactly one of them (and names the offending section).
var (
	ErrCSRMagic     = errors.New("not a csr graph file")
	ErrCSRVersion   = errors.New("unsupported csr version")
	ErrCSRTruncated = errors.New("truncated csr file")
	ErrCSRChecksum  = errors.New("csr checksum mismatch")
	ErrCSRCorrupt   = errors.New("corrupt csr file")
)

var (
	le         = binary.LittleEndian
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

var hostLittleEndian = binary.NativeEndian.Uint16([]byte{1, 0}) == 1

// ---- zero-copy slice reinterpretation -------------------------------

// aliasSlice reinterprets b as a []T without copying. Callers must
// have verified alignment and host byte order (see sliceOf*).
func aliasSlice[T any](b []byte) []T {
	var z T
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/int(unsafe.Sizeof(z)))
}

// aliasBytes reinterprets s as its raw bytes without copying.
func aliasBytes[T any](s []T) []byte {
	var z T
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*int(unsafe.Sizeof(z)))
}

// byteString reinterprets b as a string aliasing the same bytes.
func byteString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// sliceOfI32 views a little-endian byte section as 32-bit signed
// elements: a zero-copy alias on aligned little-endian hosts, an
// explicit decode otherwise.
func sliceOfI32[T ~int32](b []byte, copyMode bool) []T {
	if !copyMode || len(b) == 0 {
		return aliasSlice[T](b)
	}
	out := make([]T, len(b)/4)
	for i := range out {
		out[i] = T(int32(le.Uint32(b[i*4:])))
	}
	return out
}

func sliceOfU32(b []byte, copyMode bool) []uint32 {
	if !copyMode || len(b) == 0 {
		return aliasSlice[uint32](b)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = le.Uint32(b[i*4:])
	}
	return out
}

func sliceOfI64(b []byte, copyMode bool) []int64 {
	if !copyMode || len(b) == 0 {
		return aliasSlice[int64](b)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(le.Uint64(b[i*8:]))
	}
	return out
}

func sliceOfF32(b []byte, copyMode bool) []float32 {
	if !copyMode || len(b) == 0 {
		return aliasSlice[float32](b)
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(le.Uint32(b[i*4:]))
	}
	return out
}

// bytesOfI32 is the write-side inverse of sliceOfI32: alias on
// little-endian hosts, explicit little-endian encode otherwise.
func bytesOfI32[T ~int32](s []T) []byte {
	if hostLittleEndian {
		return aliasBytes(s)
	}
	out := make([]byte, 4*len(s))
	for i, v := range s {
		le.PutUint32(out[i*4:], uint32(int32(v)))
	}
	return out
}

func bytesOfU32(s []uint32) []byte {
	if hostLittleEndian {
		return aliasBytes(s)
	}
	out := make([]byte, 4*len(s))
	for i, v := range s {
		le.PutUint32(out[i*4:], v)
	}
	return out
}

func bytesOfI64(s []int64) []byte {
	if hostLittleEndian {
		return aliasBytes(s)
	}
	out := make([]byte, 8*len(s))
	for i, v := range s {
		le.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func bytesOfF32(s []float32) []byte {
	if hostLittleEndian {
		return aliasBytes(s)
	}
	out := make([]byte, 4*len(s))
	for i, v := range s {
		le.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// ---- property encoding ----------------------------------------------

// propEncoder accumulates the shared string arena plus per-table
// fixed-size records. Strings are interned at first occurrence, which
// both deduplicates repeated keys across millions of vertices and
// keeps the encoding deterministic.
type propEncoder struct {
	arena []byte
	dedup map[string]uint32
	keys  []string // reusable per-entity sort scratch
}

func (pe *propEncoder) intern(s string) (uint32, error) {
	if off, ok := pe.dedup[s]; ok {
		return off, nil
	}
	off := uint64(len(pe.arena))
	if off+uint64(len(s)) > math.MaxUint32 {
		return 0, fmt.Errorf("graphio: csr arena exceeds the 4 GiB offset space")
	}
	pe.dedup[s] = uint32(off)
	pe.arena = append(pe.arena, s...)
	return uint32(off), nil
}

// table encodes one Properties column as an index section plus a
// record section. Keys within an entity are sorted, so the encoding
// is independent of map iteration order.
func (pe *propEncoder) table(rows []graph.Properties) (idxBytes, recBytes []byte, err error) {
	idx := make([]uint32, len(rows)+1)
	var recs []byte
	for i, p := range rows {
		pe.keys = pe.keys[:0]
		for k := range p {
			pe.keys = append(pe.keys, k)
		}
		sort.Strings(pe.keys)
		for _, k := range pe.keys {
			if recs, err = pe.appendRecord(recs, k, p[k]); err != nil {
				return nil, nil, err
			}
		}
		idx[i+1] = uint32(len(recs) / propRecSize)
	}
	return bytesOfU32(idx), recs, nil
}

func (pe *propEncoder) appendRecord(recs []byte, key string, v graph.Value) ([]byte, error) {
	keyOff, err := pe.intern(key)
	if err != nil {
		return nil, err
	}
	var aux uint32
	var val uint64
	switch v.Kind() {
	case graph.KindString:
		s := v.Str()
		off, err := pe.intern(s)
		if err != nil {
			return nil, err
		}
		aux, val = uint32(len(s)), uint64(off)
	case graph.KindInt:
		val = uint64(v.Int64())
	case graph.KindFloat:
		val = math.Float64bits(v.Float64())
	case graph.KindBool:
		if v.IsTrue() {
			val = 1
		}
	case graph.KindBlob:
		val = uint64(v.BlobSize())
	default:
		return nil, fmt.Errorf("graphio: unknown value kind %d", v.Kind())
	}
	var rec [propRecSize]byte
	le.PutUint32(rec[0:], keyOff)
	le.PutUint32(rec[4:], uint32(len(key)))
	le.PutUint32(rec[8:], uint32(v.Kind()))
	le.PutUint32(rec[12:], aux)
	le.PutUint64(rec[16:], val)
	return append(recs, rec[:]...), nil
}

func arenaString(arena []byte, off uint64, ln uint32, what string) (string, error) {
	// Checked as off > len || ln > len-off: the naive off+ln > len
	// wraps when a hostile record carries off near MaxUint64, passing
	// the check and panicking on the slice below.
	if off > uint64(len(arena)) || uint64(ln) > uint64(len(arena))-off {
		return "", fmt.Errorf("graphio: arena section: %s string [%d,+%d) past the %d-byte arena: %w",
			what, off, ln, len(arena), ErrCSRCorrupt)
	}
	return byteString(arena[off : off+uint64(ln)]), nil
}

// decodeProps materializes one Properties column from its index and
// record sections. String keys and values alias the arena (and hence
// the file buffer); only the per-entity maps themselves allocate.
func decodeProps(idx []uint32, recs, arena []byte, what string) ([]graph.Properties, error) {
	n := len(idx) - 1
	nRec := uint32(len(recs) / propRecSize)
	if idx[0] != 0 {
		return nil, fmt.Errorf("graphio: %sidx section: starts at record %d, want 0: %w", what, idx[0], ErrCSRCorrupt)
	}
	for i := 0; i < n; i++ {
		if idx[i+1] < idx[i] {
			return nil, fmt.Errorf("graphio: %sidx section: record ranges decrease at entity %d: %w", what, i, ErrCSRCorrupt)
		}
	}
	if idx[n] != nRec {
		return nil, fmt.Errorf("graphio: %sidx section: ends at record %d, want the %d records: %w",
			what, idx[n], nRec, ErrCSRCorrupt)
	}
	out := make([]graph.Properties, n)
	for i := 0; i < n; i++ {
		lo, hi := idx[i], idx[i+1]
		if lo == hi {
			continue
		}
		m := make(graph.Properties, hi-lo)
		for r := lo; r < hi; r++ {
			rec := recs[int(r)*propRecSize : int(r)*propRecSize+propRecSize]
			key, err := arenaString(arena, uint64(le.Uint32(rec)), le.Uint32(rec[4:]), what+" key")
			if err != nil {
				return nil, err
			}
			v, err := decodeValue(arena, le.Uint32(rec[8:]), le.Uint32(rec[12:]), le.Uint64(rec[16:]), what)
			if err != nil {
				return nil, err
			}
			m[key] = v
		}
		out[i] = m
	}
	return out, nil
}

func decodeValue(arena []byte, kind, aux uint32, val uint64, what string) (graph.Value, error) {
	switch graph.ValueKind(kind) {
	case graph.KindString:
		s, err := arenaString(arena, val, aux, what+" value")
		if err != nil {
			return graph.Value{}, err
		}
		return graph.String(s), nil
	case graph.KindInt:
		return graph.Int(int64(val)), nil
	case graph.KindFloat:
		return graph.Float(math.Float64frombits(val)), nil
	case graph.KindBool:
		return graph.Bool(val != 0), nil
	case graph.KindBlob:
		if val > math.MaxInt64 {
			return graph.Value{}, fmt.Errorf("graphio: %srecs section: blob size %d overflows: %w", what, val, ErrCSRCorrupt)
		}
		return graph.Blob(int(val)), nil
	default:
		return graph.Value{}, fmt.Errorf("graphio: %srecs section: unknown value kind %d: %w", what, kind, ErrCSRCorrupt)
	}
}

// ---- writer ---------------------------------------------------------

// WriteCSR encodes the graph in the v2 flat binary CSR format. The
// encoding is deterministic: the same graph always yields identical
// bytes, so tracked snapshot files diff cleanly.
func WriteCSR(w io.Writer, g *graph.Graph) error {
	if g == nil {
		return fmt.Errorf("graphio: nil graph")
	}
	d := g.CSRView()

	type section struct {
		id   uint32
		data []byte
	}
	var secs []section
	add := func(id uint32, b []byte) {
		if len(b) > 0 {
			secs = append(secs, section{id, b})
		}
	}
	add(secOffsets, bytesOfI64(d.Offsets))
	add(secTargets, bytesOfI32(d.Targets))
	add(secEdgeIdx, bytesOfI32(d.EdgeIdx))
	add(secWeights, bytesOfF32(d.Weights))
	add(secVBytes, bytesOfI32(d.VBytes))
	add(secEBytes, bytesOfI32(d.EBytes))
	add(secPartition, bytesOfI32(d.Partition))
	pe := &propEncoder{dedup: make(map[string]uint32)}
	if d.VProps != nil {
		idxB, recB, err := pe.table(d.VProps)
		if err != nil {
			return err
		}
		add(secVPropIdx, idxB)
		add(secVPropRecs, recB)
	}
	if d.EProps != nil {
		idxB, recB, err := pe.table(d.EProps)
		if err != nil {
			return err
		}
		add(secEPropIdx, idxB)
		add(secEPropRecs, recB)
	}
	add(secArena, pe.arena)
	add(secInOffsets, bytesOfI64(d.InOffsets))
	add(secInSources, bytesOfI32(d.InSources))
	add(secInSlots, bytesOfU32(d.InSlots))

	// Lay sections out back to back, 8-aligned, directly after the
	// table; record offsets and payload checksums.
	table := make([]byte, len(secs)*csrEntrySize)
	off := uint64(csrHeaderSize + len(table))
	for i, s := range secs {
		off = (off + csrAlign - 1) &^ uint64(csrAlign-1)
		e := table[i*csrEntrySize:]
		le.PutUint32(e, s.id)
		le.PutUint64(e[8:], off)
		le.PutUint64(e[16:], uint64(len(s.data)))
		le.PutUint32(e[24:], crc32.Checksum(s.data, castagnoli))
		off += uint64(len(s.data))
	}

	hdr := make([]byte, csrHeaderSize)
	copy(hdr, csrMagic)
	le.PutUint32(hdr[8:], csrVersion)
	hdr[12] = uint8(d.Kind)
	le.PutUint64(hdr[16:], uint64(g.NumVertices()))
	le.PutUint64(hdr[24:], uint64(d.NumEdges))
	le.PutUint64(hdr[32:], uint64(len(d.Targets)))
	le.PutUint32(hdr[40:], uint32(g.NumPartitions()))
	le.PutUint32(hdr[44:], uint32(len(secs)))
	h := crc32.New(castagnoli)
	h.Write(hdr[:48])
	h.Write(table)
	le.PutUint32(hdr[48:], h.Sum32())

	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(table); err != nil {
		return err
	}
	cur := uint64(csrHeaderSize + len(table))
	var pad [csrAlign]byte
	for _, s := range secs {
		if p := (csrAlign - cur%csrAlign) % csrAlign; p > 0 {
			if _, err := w.Write(pad[:p]); err != nil {
				return err
			}
			cur += p
		}
		if _, err := w.Write(s.data); err != nil {
			return err
		}
		cur += uint64(len(s.data))
	}
	return nil
}

// WriteCSRFile writes the graph to path in the v2 format.
func WriteCSRFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSR(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---- reader ---------------------------------------------------------

// IsCSR reports whether data begins with the v2 magic.
func IsCSR(data []byte) bool {
	return len(data) >= len(csrMagic) && string(data[:len(csrMagic)]) == csrMagic
}

// ReadCSR decodes a v2 flat CSR snapshot from data without copying:
// the returned graph's columns alias data, which the caller must keep
// immutable (and mapped) for the graph's lifetime. On hosts where
// aliasing is impossible (big-endian, or a misaligned buffer) it
// transparently falls back to a copying decode.
func ReadCSR(data []byte) (*graph.Graph, error) {
	copyMode := !hostLittleEndian
	if len(data) > 0 && uintptr(unsafe.Pointer(unsafe.SliceData(data)))%csrAlign != 0 {
		copyMode = true
	}
	return decodeCSR(data, copyMode)
}

// decodeCSR validates and decodes a v2 buffer. Validation order
// matters for hostility: magic, version, header checksum, section
// geometry and per-section checksums all pass before any header count
// is trusted, and every count is cross-checked against a section
// length (itself bounded by the file size) before anything
// count-proportional is allocated.
func decodeCSR(data []byte, copyMode bool) (*graph.Graph, error) {
	if len(data) < csrHeaderSize {
		return nil, fmt.Errorf("graphio: csr header: %d bytes, want at least %d: %w",
			len(data), csrHeaderSize, ErrCSRTruncated)
	}
	if !IsCSR(data) {
		return nil, fmt.Errorf("graphio: csr header: bad magic %q: %w", data[:len(csrMagic)], ErrCSRMagic)
	}
	if v := le.Uint32(data[8:]); v != csrVersion {
		return nil, fmt.Errorf("graphio: csr header: version %d, this reader speaks %d: %w", v, csrVersion, ErrCSRVersion)
	}
	kind := data[12]
	if kind > uint8(graph.Undirected) {
		return nil, fmt.Errorf("graphio: csr header: graph kind %d invalid: %w", kind, ErrCSRCorrupt)
	}
	nV := le.Uint64(data[16:])
	nE := le.Uint64(data[24:])
	nSlots := le.Uint64(data[32:])
	nParts := le.Uint32(data[40:])
	nSec := le.Uint32(data[44:])
	if nV > math.MaxInt32 || nE > math.MaxInt32 {
		return nil, fmt.Errorf("graphio: csr header: %d vertices / %d edges exceed the int32 id space: %w",
			nV, nE, ErrCSRCorrupt)
	}
	// A slot costs 4 bytes in the targets section, a vertex 8 in the
	// offsets section: counts beyond that cannot fit in this file.
	if nSlots > uint64(len(data))/4 || nV > uint64(len(data))/8 {
		return nil, fmt.Errorf("graphio: csr header: counts (%d vertices, %d slots) impossible for a %d-byte file: %w",
			nV, nSlots, len(data), ErrCSRTruncated)
	}
	if nSec > csrMaxSections {
		return nil, fmt.Errorf("graphio: csr section table: %d sections, at most %d defined: %w",
			nSec, csrMaxSections, ErrCSRCorrupt)
	}
	tabLen := int(nSec) * csrEntrySize
	if len(data) < csrHeaderSize+tabLen {
		return nil, fmt.Errorf("graphio: csr section table: %d entries need %d bytes, file has %d: %w",
			nSec, csrHeaderSize+tabLen, len(data), ErrCSRTruncated)
	}
	table := data[csrHeaderSize : csrHeaderSize+tabLen]
	h := crc32.New(castagnoli)
	h.Write(data[:48])
	h.Write(table)
	if got, want := h.Sum32(), le.Uint32(data[48:]); got != want {
		return nil, fmt.Errorf("graphio: csr header: crc %08x, stored %08x: %w", got, want, ErrCSRChecksum)
	}

	var sec [secInSlots + 1][]byte
	prevID := uint32(0)
	prevEnd := uint64(csrHeaderSize + tabLen)
	for i := 0; i < int(nSec); i++ {
		e := table[i*csrEntrySize:]
		id := le.Uint32(e)
		off := le.Uint64(e[8:])
		length := le.Uint64(e[16:])
		crc := le.Uint32(e[24:])
		if id <= prevID || id > secInSlots {
			return nil, fmt.Errorf("graphio: csr section table: id %d after %d (unknown or out of order): %w",
				id, prevID, ErrCSRCorrupt)
		}
		prevID = id
		if off%csrAlign != 0 {
			return nil, fmt.Errorf("graphio: %s section: offset %d not %d-aligned: %w",
				secName(id), off, csrAlign, ErrCSRCorrupt)
		}
		if off < prevEnd {
			return nil, fmt.Errorf("graphio: %s section: offset %d overlaps the previous section ending at %d: %w",
				secName(id), off, prevEnd, ErrCSRCorrupt)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("graphio: %s section: [%d,+%d) outside the %d-byte file: %w",
				secName(id), off, length, len(data), ErrCSRTruncated)
		}
		payload := data[off : off+length]
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			return nil, fmt.Errorf("graphio: %s section: crc %08x, stored %08x: %w",
				secName(id), got, crc, ErrCSRChecksum)
		}
		sec[id] = payload
		prevEnd = off + length
	}

	// Cross-check every section length against the header counts
	// before reinterpreting anything.
	wantLen := func(id uint32, want uint64, required bool) error {
		got := uint64(len(sec[id]))
		if got == 0 && !required {
			return nil
		}
		if got != want {
			return fmt.Errorf("graphio: %s section: %d bytes, want %d for the header counts: %w",
				secName(id), got, want, ErrCSRCorrupt)
		}
		return nil
	}
	checks := []error{
		wantLen(secOffsets, (nV+1)*8, true),
		wantLen(secTargets, nSlots*4, nSlots > 0),
		wantLen(secEdgeIdx, nSlots*4, false),
		wantLen(secWeights, nE*4, false),
		wantLen(secVBytes, nV*4, false),
		wantLen(secEBytes, nE*4, false),
		wantLen(secPartition, nV*4, false),
		wantLen(secVPropIdx, (nV+1)*4, false),
		wantLen(secEPropIdx, (nE+1)*4, false),
		wantLen(secInOffsets, (nV+1)*8, false),
		wantLen(secInSources, nSlots*4, false),
		wantLen(secInSlots, nSlots*4, false),
	}
	for _, err := range checks {
		if err != nil {
			return nil, err
		}
	}
	for _, id := range []uint32{secVPropRecs, secEPropRecs} {
		if len(sec[id])%propRecSize != 0 {
			return nil, fmt.Errorf("graphio: %s section: %d bytes, not a multiple of the %d-byte record: %w",
				secName(id), len(sec[id]), propRecSize, ErrCSRCorrupt)
		}
	}
	if len(sec[secVPropRecs]) > 0 && len(sec[secVPropIdx]) == 0 {
		return nil, fmt.Errorf("graphio: vproprecs section: present without a vpropidx section: %w", ErrCSRCorrupt)
	}
	if len(sec[secEPropRecs]) > 0 && len(sec[secEPropIdx]) == 0 {
		return nil, fmt.Errorf("graphio: eproprecs section: present without an epropidx section: %w", ErrCSRCorrupt)
	}
	if (len(sec[secInSources]) > 0 || len(sec[secInSlots]) > 0) && len(sec[secInOffsets]) == 0 {
		return nil, fmt.Errorf("graphio: in-edge sections: present without an inoffsets section: %w", ErrCSRCorrupt)
	}
	if nSlots > 0 && len(sec[secInOffsets]) > 0 &&
		(len(sec[secInSources]) == 0 || len(sec[secInSlots]) == 0) {
		return nil, fmt.Errorf("graphio: inoffsets section: present without insources/inslots for %d slots: %w",
			nSlots, ErrCSRCorrupt)
	}

	arena := sec[secArena]
	var vprops, eprops []graph.Properties
	var err error
	if len(sec[secVPropIdx]) > 0 {
		vprops, err = decodeProps(sliceOfU32(sec[secVPropIdx], copyMode), sec[secVPropRecs], arena, "vprop")
		if err != nil {
			return nil, err
		}
	}
	if len(sec[secEPropIdx]) > 0 {
		eprops, err = decodeProps(sliceOfU32(sec[secEPropIdx], copyMode), sec[secEPropRecs], arena, "eprop")
		if err != nil {
			return nil, err
		}
	}

	g, err := graph.FromCSR(graph.CSRData{
		Kind:      graph.Kind(kind),
		NumEdges:  int(nE),
		Offsets:   sliceOfI64(sec[secOffsets], copyMode),
		Targets:   sliceOfI32[graph.VertexID](sec[secTargets], copyMode),
		EdgeIdx:   sliceOfI32[graph.EdgeID](sec[secEdgeIdx], copyMode),
		Weights:   sliceOfF32(sec[secWeights], copyMode),
		VProps:    vprops,
		EProps:    eprops,
		VBytes:    sliceOfI32[int32](sec[secVBytes], copyMode),
		EBytes:    sliceOfI32[int32](sec[secEBytes], copyMode),
		Partition: sliceOfI32[int32](sec[secPartition], copyMode),
		InOffsets: sliceOfI64(sec[secInOffsets], copyMode),
		InSources: sliceOfI32[graph.VertexID](sec[secInSources], copyMode),
		InSlots:   sliceOfU32(sec[secInSlots], copyMode),
	})
	if err != nil {
		return nil, fmt.Errorf("graphio: %w: %w", err, ErrCSRCorrupt)
	}
	if g.NumPartitions() != int(nParts) {
		return nil, fmt.Errorf("graphio: partition section: %d partitions, header says %d: %w",
			g.NumPartitions(), nParts, ErrCSRCorrupt)
	}
	return g, nil
}

// ReadCSRFile loads a v2 snapshot with a single ReadFile; the graph
// aliases the returned buffer, so time-to-first-query is one read
// plus validation.
func ReadCSRFile(path string) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadCSR(data)
}

// ---- format auto-detection ------------------------------------------

// Format identifies an on-disk graph snapshot encoding.
type Format uint8

const (
	// FormatGob is the version-1 gob encoding (Write/Read).
	FormatGob Format = iota + 1
	// FormatCSR is the version-2 flat binary CSR snapshot.
	FormatCSR
)

func (f Format) String() string {
	switch f {
	case FormatGob:
		return "gob-v1"
	case FormatCSR:
		return "csr-v2"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// SniffFormat classifies a snapshot by its leading bytes: the v2 magic
// marks a flat CSR file, anything else is assumed to be the v1 gob
// stream (gob has no fixed magic of its own).
func SniffFormat(data []byte) Format {
	if IsCSR(data) {
		return FormatCSR
	}
	return FormatGob
}

// ReadGraphFile loads a graph from either format, auto-detected by
// magic: v2 flat CSR files decode zero-copy, anything else goes
// through the v1 gob decoder.
func ReadGraphFile(path string) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if IsCSR(data) {
		return ReadCSR(data)
	}
	return Read(bytes.NewReader(data))
}

// ---- mmap-backed loading --------------------------------------------

// MappedCSR is a graph served directly out of a memory-mapped v2
// file: the kernel pages adjacency in on demand and the process
// resident set is the touched part of the graph, nothing more.
type MappedCSR struct {
	Graph *graph.Graph

	data  []byte
	unmap func() error
}

// OpenCSRFile maps path and decodes it in place. On platforms without
// mmap support it falls back to ReadCSRFile. The returned graph
// aliases the mapping: it must not be used after Close.
func OpenCSRFile(path string) (*MappedCSR, error) {
	if !mmapSupported {
		g, err := ReadCSRFile(path)
		if err != nil {
			return nil, err
		}
		return &MappedCSR{Graph: g}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < csrHeaderSize {
		return nil, fmt.Errorf("graphio: csr header: %d bytes, want at least %d: %w",
			st.Size(), csrHeaderSize, ErrCSRTruncated)
	}
	data, unmap, err := mmapReadOnly(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("graphio: mmap %s: %w", path, err)
	}
	g, err := ReadCSR(data)
	if err != nil {
		unmap()
		return nil, err
	}
	return &MappedCSR{Graph: g, data: data, unmap: unmap}, nil
}

// Close releases the mapping. The graph (and any slices or property
// strings obtained from it) must not be touched afterwards.
func (m *MappedCSR) Close() error {
	if m.unmap == nil {
		return nil
	}
	u := m.unmap
	m.unmap = nil
	m.Graph = nil
	return u()
}
