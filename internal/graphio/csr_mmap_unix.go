//go:build unix

package graphio

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapReadOnly maps size bytes of f read-only and shared; the returned
// closure unmaps.
func mmapReadOnly(f *os.File, size int64) ([]byte, func() error, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
