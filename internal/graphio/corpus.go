package graphio

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

// corpusHeader carries the image corpus's non-graph state.
type corpusHeader struct {
	Magic   string
	Version int
	Person  []int32
	Queries []wireImageQuery
}

type wireImageQuery struct {
	Person int32
	Entry  int32
}

const corpusMagic = "subtrav-corpus"

// WriteCorpus encodes an image corpus (similarity graph + person
// labels + held-out queries) to w.
func WriteCorpus(w io.Writer, c *graphgen.ImageCorpus) error {
	if c == nil || c.Graph == nil {
		return fmt.Errorf("graphio: nil corpus")
	}
	enc := gob.NewEncoder(w)
	hdr := corpusHeader{Magic: corpusMagic, Version: version, Person: c.Person}
	for _, q := range c.Queries {
		hdr.Queries = append(hdr.Queries, wireImageQuery{Person: q.Person, Entry: int32(q.Entry)})
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("graphio: encode corpus header: %w", err)
	}
	return encodeGraph(enc, c.Graph)
}

// ReadCorpus decodes an image corpus from r.
func ReadCorpus(r io.Reader) (*graphgen.ImageCorpus, error) {
	dec := gob.NewDecoder(r)
	var hdr corpusHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("graphio: decode corpus header: %w", err)
	}
	if hdr.Magic != corpusMagic {
		return nil, fmt.Errorf("graphio: bad corpus magic %q", hdr.Magic)
	}
	if hdr.Version != version {
		return nil, fmt.Errorf("graphio: unsupported corpus version %d", hdr.Version)
	}
	g, err := decodeGraph(dec)
	if err != nil {
		return nil, err
	}
	if len(hdr.Person) != g.NumVertices() {
		return nil, fmt.Errorf("graphio: %d person labels for %d vertices", len(hdr.Person), g.NumVertices())
	}
	c := &graphgen.ImageCorpus{Graph: g, Person: hdr.Person}
	for _, q := range hdr.Queries {
		if !g.Valid(graph.VertexID(q.Entry)) {
			return nil, fmt.Errorf("graphio: corpus query entry %d invalid", q.Entry)
		}
		c.Queries = append(c.Queries, graphgen.ImageQuery{Person: q.Person, Entry: graph.VertexID(q.Entry)})
	}
	return c, nil
}

// WriteCorpusFile writes the corpus to path.
func WriteCorpusFile(path string, c *graphgen.ImageCorpus) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := WriteCorpus(w, c); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCorpusFile reads a corpus from path.
func ReadCorpusFile(path string) (*graphgen.ImageCorpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCorpus(bufio.NewReaderSize(f, 1<<20))
}
