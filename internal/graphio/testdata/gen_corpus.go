//go:build ignore

// gen_corpus regenerates the seed corpora under testdata/fuzz/ for the
// graphio fuzz targets. Run from internal/graphio:
//
//	go run testdata/gen_corpus.go
//
// The seeds mirror the f.Add cases (valid file, truncation, bit flip)
// so `go test -fuzz` starts from interesting inputs even with an empty
// fuzz cache, and plain `go test` replays them as regression inputs.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/graphio"
)

func main() {
	b := graph.NewBuilder(graph.Undirected, 4)
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddEdge(2, 3)
	b.SetVertexProps(0, graph.Properties{"k": graph.Int(7)})
	var buf bytes.Buffer
	if err := graphio.Write(&buf, b.Build()); err != nil {
		log.Fatal(err)
	}
	valid := buf.Bytes()

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff

	write("FuzzRead", "valid", valid)
	write("FuzzRead", "truncated", valid[:len(valid)/2])
	write("FuzzRead", "bitflip", flipped)
	write("FuzzRead", "empty", nil)
	write("FuzzRead", "garbage", []byte("garbage"))

	corpus, err := graphgen.Images(graphgen.ImageCorpusConfig{
		NumPersons: 3, ImagesPerPersonMin: 3, ImagesPerPersonMax: 5,
		DescriptorDim: 8, IntraNoise: 0.1, KNN: 3, MinSimilarity: 0.1,
		CrossCandidates: 4, NumPartitions: 2, NumQueries: 2,
		PhotoBytesMin: 16, PhotoBytesMax: 32, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	buf.Reset()
	if err := graphio.WriteCorpus(&buf, corpus); err != nil {
		log.Fatal(err)
	}
	validCorpus := buf.Bytes()
	write("FuzzReadCorpus", "valid", validCorpus)
	write("FuzzReadCorpus", "truncated", validCorpus[:len(validCorpus)/3])
	write("FuzzReadCorpus", "junk", []byte("junk"))
}

func write(target, name string, data []byte) {
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, "seed_"+name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}
