//go:build ignore

// gen_corpus regenerates the seed corpora under testdata/fuzz/ for the
// graphio fuzz targets. Run from internal/graphio:
//
//	go run testdata/gen_corpus.go
//
// The seeds mirror the f.Add cases (valid file, truncation, bit flip)
// so `go test -fuzz` starts from interesting inputs even with an empty
// fuzz cache, and plain `go test` replays them as regression inputs.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/graphio"
)

func main() {
	b := graph.NewBuilder(graph.Undirected, 4)
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddEdge(2, 3)
	b.SetVertexProps(0, graph.Properties{"k": graph.Int(7)})
	var buf bytes.Buffer
	if err := graphio.Write(&buf, b.Build()); err != nil {
		log.Fatal(err)
	}
	valid := buf.Bytes()

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff

	write("FuzzRead", "valid", valid)
	write("FuzzRead", "truncated", valid[:len(valid)/2])
	write("FuzzRead", "bitflip", flipped)
	write("FuzzRead", "empty", nil)
	write("FuzzRead", "garbage", []byte("garbage"))

	// FuzzReadCSR: a v2 file with all sections, truncations at every
	// section boundary, per-section bit flips, and a hostile header.
	cb := graph.NewBuilder(graph.Undirected, 5)
	cb.AddEdgeFull(0, 1, 0.5, graph.Properties{"k": graph.String("v")})
	cb.AddWeightedEdge(1, 2, 2)
	cb.AddEdge(3, 4)
	cb.SetVertexProps(0, graph.Properties{"n": graph.Int(7), "b": graph.Blob(64)})
	cb.SetPartition([]int32{0, 0, 1, 1, 1})
	buf.Reset()
	if err := graphio.WriteCSR(&buf, cb.Build()); err != nil {
		log.Fatal(err)
	}
	validCSR := buf.Bytes()
	write("FuzzReadCSR", "valid", validCSR)
	write("FuzzReadCSR", "empty", nil)
	write("FuzzReadCSR", "magic_only", validCSR[:8])
	nSec := int(binary.LittleEndian.Uint32(validCSR[44:]))
	for i := 0; i < nSec; i++ {
		e := validCSR[64+i*32:]
		off := binary.LittleEndian.Uint64(e[8:])
		write("FuzzReadCSR", fmt.Sprintf("trunc_sec%d", i), validCSR[:off])
		flipped := append([]byte(nil), validCSR...)
		flipped[off] ^= 0xff
		write("FuzzReadCSR", fmt.Sprintf("crcflip_sec%d", i), flipped)
	}
	hostile := append([]byte(nil), validCSR...)
	binary.LittleEndian.PutUint64(hostile[16:], 1<<31)
	write("FuzzReadCSR", "hostile_counts", hostile)

	corpus, err := graphgen.Images(graphgen.ImageCorpusConfig{
		NumPersons: 3, ImagesPerPersonMin: 3, ImagesPerPersonMax: 5,
		DescriptorDim: 8, IntraNoise: 0.1, KNN: 3, MinSimilarity: 0.1,
		CrossCandidates: 4, NumPartitions: 2, NumQueries: 2,
		PhotoBytesMin: 16, PhotoBytesMax: 32, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	buf.Reset()
	if err := graphio.WriteCorpus(&buf, corpus); err != nil {
		log.Fatal(err)
	}
	validCorpus := buf.Bytes()
	write("FuzzReadCorpus", "valid", validCorpus)
	write("FuzzReadCorpus", "truncated", validCorpus[:len(validCorpus)/3])
	write("FuzzReadCorpus", "junk", []byte("junk"))
}

func write(target, name string, data []byte) {
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, "seed_"+name), []byte(body), 0o644); err != nil {
		log.Fatal(err)
	}
}
