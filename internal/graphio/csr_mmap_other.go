//go:build !unix

package graphio

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapReadOnly(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errors.ErrUnsupported
}
