package sim

import "container/heap"

// eventKind discriminates the simulator's event types.
type eventKind uint8

const (
	// evArrival delivers one task into the pending pool.
	evArrival eventKind = iota
	// evStep resumes a unit's in-progress trace replay (typically
	// right after a disk read completes).
	evStep
)

type event struct {
	time int64
	seq  int64 // FIFO tie-break for identical timestamps → determinism
	kind eventKind
	unit int32 // evStep
	task *taskState
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

var _ heap.Interface = (*eventHeap)(nil)
