package sim

import (
	"bytes"
	"reflect"
	"testing"

	"subtrav/internal/graphgen"
	"subtrav/internal/sched"
	"subtrav/internal/traverse"
)

// Regression for the CollabFilter map-range bug: two identical seeded
// runs through the full simulator — traversal kernels, trace replay,
// caches, shared disk, visit signatures — must produce byte-identical
// event streams and identical semantic results. Before the kernels
// iterated insertion-ordered side lists, hop-2 map-range order leaked
// into trace order, so cache evictions, miss counts, and completion
// times drifted between runs of the same workload.
func TestClusterCollabRunsAreIdentical(t *testing.T) {
	bip, err := graphgen.Purchases(graphgen.PurchaseConfig{
		NumCustomers: 800, NumProducts: 300,
		PurchasesPerCustomerMean: 8, PopularityExponent: 2.3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := bip.Graph

	var tasks []*sched.Task
	for i := 0; i < 60; i++ {
		tasks = append(tasks, &sched.Task{
			ID:      int64(i),
			Arrival: int64(i) * 40_000,
			Query: traverse.Query{
				Op:                  traverse.OpCollab,
				Start:               bip.ProductVertex((i * 13) % 300),
				SimilarityThreshold: 0.1,
			},
		})
	}

	type runOut struct {
		events  string
		results map[int64]traverse.Result
		res     Result
	}
	run := func() runOut {
		t.Helper()
		c, err := NewCluster(g, Config{NumUnits: 4, MemoryPerUnit: 64 << 10, Cost: fastCost()})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		c.SetTracer(NewCSVTracer(&buf))
		results := make(map[int64]traverse.Result)
		c.OnComplete = func(task *sched.Task, r traverse.Result) {
			results[task.ID] = r
		}
		res, err := c.Run(sched.NewRoundRobin(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		return runOut{events: buf.String(), results: results, res: res}
	}

	a, b := run(), run()
	if a.events != b.events {
		t.Error("tracer event streams differ between identical runs")
	}
	if !reflect.DeepEqual(a.results, b.results) {
		t.Error("per-task results differ between identical runs")
	}
	if !reflect.DeepEqual(a.res, b.res) {
		t.Error("run measurements differ between identical runs")
	}
	if len(a.results) != len(tasks) {
		t.Fatalf("completed %d tasks, want %d", len(a.results), len(tasks))
	}
	// Spot-check against the reference kernel: the simulator's retained
	// results must match a direct reference execution of the query.
	for _, task := range tasks[:5] {
		want, _, err := traverse.ExecuteReference(g, task.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.results[task.ID], want) {
			t.Errorf("task %d: simulator result diverged from reference kernel", task.ID)
		}
	}
}
