package sim

import (
	"sort"

	"subtrav/internal/cache"
	"subtrav/internal/sched"
	"subtrav/internal/traverse"
)

// taskState is a task with its precomputed per-query result and
// access trace.
type taskState struct {
	task   *sched.Task
	result traverse.Result
	trace  *traverse.Trace
}

// execState is one executing batch — usually of size one. members
// carry the per-query results and traces; replay is the trace actually
// charged against the buffer and shared disk: a solo member's own
// trace, or the batch's shared wave trace (each wave-shared record
// loaded once — see traverse.Batch).
type execState struct {
	members []*taskState
	replay  *traverse.Trace
	pos     int   // next replay access
	start   int64 // virtual time execution began
	misses  int   // shared-disk fetches so far (whole batch)
}

// unit is one processing unit: a private buffer, a FCFS queue, and at
// most one executing task batch.
type unit struct {
	id     int32
	buffer *cache.Cache
	queue  []*taskState
	cur    *execState
	// ws is the unit's reusable traversal workspace. Its private
	// buffers hold the in-flight task's trace across replay events, so
	// they are only recycled by the unit's own next startNext — after
	// complete has consumed them. The O(|V|) dense scratch inside is
	// shared cluster-wide: the event loop runs one traversal at a time.
	ws *traverse.Workspace
	// batch is the unit's multi-source executor, nil unless
	// Config.BatchTraversals enables lockstep batches. Its outputs
	// follow the same recycle discipline as ws.
	batch *traverse.Batch
	// speed multiplies the unit's compute and hit costs (1 = nominal).
	speed float64

	// completions holds the virtual completion times of finished
	// tasks, ascending — the basis of CompletedSince (Eq. 3's n').
	completions []int64
	busyNanos   int64
	lastStart   int64
}

var _ sched.UnitState = (*unit)(nil)

// QueueLen implements sched.UnitState: tasks allocated but not yet
// executing (w_p and n_p of the paper).
func (u *unit) QueueLen() int { return len(u.queue) }

// Busy implements sched.UnitState.
func (u *unit) Busy() bool { return u.cur != nil }

// CompletedSince implements affinity.UnitView: the number of
// traversals this unit finished at or after virtual time t.
func (u *unit) CompletedSince(t int64) int {
	idx := sort.Search(len(u.completions), func(i int) bool {
		return u.completions[i] >= t
	})
	return len(u.completions) - idx
}

// MemoryBudget implements affinity.UnitView.
func (u *unit) MemoryBudget() int64 { return u.buffer.Budget() }

// effectiveLoad counts queued plus executing tasks (every member of
// an executing batch counts).
func (u *unit) effectiveLoad() int {
	l := len(u.queue)
	if u.cur != nil {
		l += len(u.cur.members)
	}
	return l
}
