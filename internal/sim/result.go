package sim

import (
	"fmt"
	"time"

	"subtrav/internal/metrics"
	"subtrav/internal/sched"
	"subtrav/internal/storage"
)

// Result is the measurement record of one simulated run — the raw
// material of every figure in the paper's evaluation.
type Result struct {
	Scheduler string
	NumUnits  int

	// Completed is the number of finished traversal tasks.
	Completed int64
	// Makespan is the virtual time from first arrival to last
	// completion.
	Makespan time.Duration
	// ThroughputPerSec is Completed / Makespan — the y-axis of
	// Figures 8, 9 and 11.
	ThroughputPerSec float64

	// Latency digests task turnaround (arrival → completion).
	Latency metrics.LatencySummary
	// Execution digests pure execution time (start → completion).
	Execution metrics.LatencySummary

	// Cache aggregates across all unit buffers.
	CacheHits, CacheMisses, CacheEvictions, BytesLoaded int64
	HitRate                                             float64

	// Disk is the shared-disk activity.
	Disk storage.Stats

	// TasksPerUnit is the per-unit completion count; Imbalance is its
	// max/mean (1.0 = perfectly balanced).
	TasksPerUnit []int64
	Imbalance    float64
	// MeanUtilization is the mean fraction of the makespan units spent
	// executing.
	MeanUtilization float64

	// VisitedVertices is the total vertices expanded by all tasks.
	VisitedVertices int64
}

func (c *Cluster) result(s sched.Scheduler) Result {
	r := Result{
		Scheduler:       s.Name(),
		NumUnits:        c.cfg.NumUnits,
		Completed:       c.completed,
		VisitedVertices: c.visitedTotal,
		Latency:         metrics.SummarizeLatencies(c.latencies),
		Execution:       metrics.SummarizeLatencies(c.execNanos),
		Disk:            c.disk.Stats(),
	}
	if c.firstArrival >= 0 && c.lastComplete > c.firstArrival {
		r.Makespan = time.Duration(c.lastComplete - c.firstArrival)
	}
	r.ThroughputPerSec = metrics.Throughput(r.Completed, r.Makespan)

	var busy int64
	for _, u := range c.units {
		st := u.buffer.Stats()
		r.CacheHits += st.Hits
		r.CacheMisses += st.Misses
		r.CacheEvictions += st.Evictions
		r.BytesLoaded += st.BytesLoaded
		r.TasksPerUnit = append(r.TasksPerUnit, int64(len(u.completions)))
		busy += u.busyNanos
	}
	if total := r.CacheHits + r.CacheMisses; total > 0 {
		r.HitRate = float64(r.CacheHits) / float64(total)
	}
	r.Imbalance = metrics.Imbalance(r.TasksPerUnit)
	if r.Makespan > 0 {
		r.MeanUtilization = float64(busy) / (float64(r.Makespan.Nanoseconds()) * float64(c.cfg.NumUnits))
	}
	return r
}

func (r Result) String() string {
	return fmt.Sprintf("%s P=%d: %d tasks in %v → %.1f tasks/s, hit-rate %.3f, imbalance %.2f, util %.2f",
		r.Scheduler, r.NumUnits, r.Completed, r.Makespan.Round(time.Millisecond),
		r.ThroughputPerSec, r.HitRate, r.Imbalance, r.MeanUtilization)
}
