// Package sim is the deterministic discrete-event simulator of the
// paper's target platform (Figure 1): P processing units, each with a
// private LRU memory buffer, sharing one disk that serializes
// concurrent fetches. Traversal tasks stream in, a pluggable scheduler
// places them on unit queues, and each unit replays its task's data
// access trace against its cache and the shared disk in virtual time.
//
// Everything is driven by one event heap and a virtual clock, so a
// seed fully determines every reported number — the property the
// figure-reproduction harness relies on.
package sim

import (
	"fmt"

	"subtrav/internal/storage"
	"subtrav/internal/traverse"
)

// CostModel fixes the virtual-time cost of every operation. All costs
// are in nanoseconds of virtual time.
type CostModel struct {
	// MemHitNanos is charged per record found in the unit's buffer.
	MemHitNanos int64
	// CPUVertexNanos is charged per vertex record processed
	// (predicate evaluation, bookkeeping).
	CPUVertexNanos int64
	// CPUEdgeNanos is charged per edge record processed.
	CPUEdgeNanos int64
	// CPUMissByteNanos is charged per byte fetched from disk, modeling
	// deserialization and (for image payloads) preprocessing — the
	// paper's "loading large size photo data and also performing some
	// image preprocessing".
	CPUMissByteNanos float64
	// Disk parameterizes the shared disk.
	Disk storage.DiskConfig
}

// DefaultCostModel returns a cost model in the spirit of the paper's
// platform: sub-microsecond buffer hits, millisecond-class shared-disk
// fetches — a ~3 orders of magnitude hit/miss gap, which is what makes
// locality-aware scheduling matter.
func DefaultCostModel() CostModel {
	disk := storage.DefaultDiskConfig()
	disk.Channels = 16 // enterprise array: misses contend, but scale to tens of units
	return CostModel{
		MemHitNanos:      500,
		CPUVertexNanos:   1_000,
		CPUEdgeNanos:     200,
		CPUMissByteNanos: 2,
		Disk:             disk,
	}
}

// Validate checks the model.
func (c CostModel) Validate() error {
	if c.MemHitNanos < 0 || c.CPUVertexNanos < 0 || c.CPUEdgeNanos < 0 || c.CPUMissByteNanos < 0 {
		return fmt.Errorf("sim: negative cost in %+v", c)
	}
	return c.Disk.Validate()
}

// Config parameterizes a cluster.
type Config struct {
	// NumUnits is the processing unit count P.
	NumUnits int
	// MemoryPerUnit is each unit's buffer budget in bytes; <= 0 means
	// unlimited (Figure 9's "unlimited" point).
	MemoryPerUnit int64
	// SignatureCap bounds each vertex's visit-signature list
	// (default: signature.DefaultCapacity).
	SignatureCap int
	// MaxQueuePerUnit is the dispatch depth target: the cluster admits
	// new tasks from the pending pool while some unit's effective load
	// is below it. Small values keep scheduling decisions close to
	// execution time so signatures stay fresh. Default 2.
	MaxQueuePerUnit int
	// Cost is the virtual-time cost model.
	Cost CostModel
	// SpeedFactors optionally degrades individual units: unit i's
	// compute and buffer-hit costs are multiplied by SpeedFactors[i]
	// (1 = nominal, 4 = four times slower). Disk time is shared and
	// unscaled. Empty means all units nominal. Models the
	// heterogeneous / partially-degraded deployments that make
	// workload balance adaptive rather than static.
	SpeedFactors []float64

	// CoalesceReads, when true, lets a buffer miss join an in-flight
	// shared-disk read of the same record instead of issuing its own
	// (storage.Disk.ReadShared) — the virtual-time analogue of the
	// live runtime's single-flight fetch table. Results are unaffected;
	// only disk traffic and timing change.
	CoalesceReads bool
	// BatchTraversals, when > 1, lets a unit pull up to that many
	// consecutive batchable queries (BFS/SSSP) off its queue and
	// advance them in lockstep, loading each wave-shared record once
	// (traverse.Batch). Per-query results stay bit-identical to
	// independent execution. At most traverse.MaxBatch; 0 or 1
	// disables.
	BatchTraversals int

	// Direction is the cluster's default push/pull policy for BFS/SSSP
	// traversals: tasks whose query carries a zero-valued Dir inherit
	// it at Run entry, mirroring the live runtime's knob. The zero
	// value means auto-switching with the Beamer defaults. Direction
	// choice never changes results or traces (see internal/traverse),
	// so simulated timings stay deterministic per seed either way.
	Direction traverse.DirectionConfig
}

// Validate checks the configuration, applying defaults for zero-valued
// optional fields.
func (c *Config) Validate() error {
	if c.NumUnits <= 0 {
		return fmt.Errorf("sim: NumUnits = %d, want > 0", c.NumUnits)
	}
	if c.MaxQueuePerUnit == 0 {
		c.MaxQueuePerUnit = 2
	}
	if c.MaxQueuePerUnit < 1 {
		return fmt.Errorf("sim: MaxQueuePerUnit = %d, want >= 1", c.MaxQueuePerUnit)
	}
	if c.SpeedFactors != nil && len(c.SpeedFactors) != c.NumUnits {
		return fmt.Errorf("sim: %d speed factors for %d units", len(c.SpeedFactors), c.NumUnits)
	}
	for i, f := range c.SpeedFactors {
		if f <= 0 {
			return fmt.Errorf("sim: speed factor %d = %g, want > 0", i, f)
		}
	}
	if c.BatchTraversals < 0 || c.BatchTraversals > traverse.MaxBatch {
		return fmt.Errorf("sim: BatchTraversals = %d, want [0, %d]", c.BatchTraversals, traverse.MaxBatch)
	}
	if err := c.Direction.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	zero := CostModel{}
	if c.Cost == zero {
		c.Cost = DefaultCostModel()
	}
	return c.Cost.Validate()
}
