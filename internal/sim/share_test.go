package sim

import (
	"reflect"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/sched"
	"subtrav/internal/traverse"
)

// The cross-query sharing knobs (Config.CoalesceReads and
// Config.BatchTraversals) must change only disk traffic and timing,
// never the semantic result of any query. These tests run identical
// task sets with sharing off and on and pin per-task results
// bit-for-bit while checking that sharing actually removes disk work
// on overlapping workloads.

// hubTasks builds n identical BFS tasks rooted at the graph's
// highest-degree vertex, all arriving at t=0 — the maximally
// overlapping workload, where every unit misses on the same records
// at the same virtual time.
func hubTasks(g *graph.Graph, n int) []*sched.Task {
	hub, best := graph.VertexID(0), -1
	for v := graph.VertexID(0); v < graph.VertexID(g.NumVertices()); v++ {
		if d := g.Degree(v); d > best {
			hub, best = v, d
		}
	}
	tasks := make([]*sched.Task, n)
	for i := range tasks {
		tasks[i] = &sched.Task{
			ID:    int64(i),
			Query: traverse.Query{Op: traverse.OpBFS, Start: hub, Depth: 2, MaxVisits: 400},
		}
	}
	return tasks
}

// runShared executes tasks on a fresh cluster built from cfg and
// returns the run Result plus every task's semantic result.
func runShared(t *testing.T, g *graph.Graph, cfg Config, tasks []*sched.Task) (Result, map[int64]traverse.Result) {
	t.Helper()
	c, err := NewCluster(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perTask := make(map[int64]traverse.Result, len(tasks))
	c.OnComplete = func(task *sched.Task, r traverse.Result) {
		if _, dup := perTask[task.ID]; dup {
			t.Errorf("task %d completed twice", task.ID)
		}
		perTask[task.ID] = r
	}
	res, err := c.Run(sched.NewBaseline(7), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Completed) != len(tasks) || len(perTask) != len(tasks) {
		t.Fatalf("completed %d, OnComplete fired %d, want %d", res.Completed, len(perTask), len(tasks))
	}
	return res, perTask
}

func assertSameResults(t *testing.T, label string, base, got map[int64]traverse.Result) {
	t.Helper()
	for id, want := range base {
		if !reflect.DeepEqual(want, got[id]) {
			t.Fatalf("%s: task %d result diverged:\nbaseline: %+v\nsharing:  %+v", label, id, want, got[id])
		}
	}
}

func TestCoalesceReadsPreservesResultsCutsDiskRequests(t *testing.T) {
	g := testGraph(t)
	tasks := hubTasks(g, 32)
	cfg := Config{NumUnits: 4, MemoryPerUnit: 1 << 20, Cost: fastCost()}

	baseRes, baseResults := runShared(t, g, cfg, tasks)

	cfg.CoalesceReads = true
	coRes, coResults := runShared(t, g, cfg, tasks)

	assertSameResults(t, "coalesce", baseResults, coResults)
	if baseRes.Disk.CoalescedReads != 0 {
		t.Errorf("baseline recorded %d coalesced reads with the knob off", baseRes.Disk.CoalescedReads)
	}
	if coRes.Disk.CoalescedReads == 0 {
		t.Error("32 identical hub queries coalesced nothing")
	}
	if coRes.Disk.Requests >= baseRes.Disk.Requests {
		t.Errorf("disk requests with coalescing = %d, baseline = %d; want strictly fewer",
			coRes.Disk.Requests, baseRes.Disk.Requests)
	}
	// Every miss is either a real request or a joined one; coalescing
	// must not invent or drop buffer activity.
	if coRes.CacheMisses != coRes.Disk.Requests+coRes.Disk.CoalescedReads {
		t.Errorf("misses %d != requests %d + coalesced %d",
			coRes.CacheMisses, coRes.Disk.Requests, coRes.Disk.CoalescedReads)
	}
}

func TestBatchTraversalsPreservesResultsCutsDiskRequests(t *testing.T) {
	g := testGraph(t)
	// A mix of overlapping hub queries and scattered random ones, so
	// batches form over partially shared frontiers.
	tasks := hubTasks(g, 16)
	for _, extra := range bfsTasks(t, g, 16, 5) {
		extra.ID += 16
		tasks = append(tasks, extra)
	}
	cfg := Config{NumUnits: 4, MemoryPerUnit: 1 << 20, Cost: fastCost()}

	baseRes, baseResults := runShared(t, g, cfg, tasks)

	cfg.BatchTraversals = 8
	batchRes, batchResults := runShared(t, g, cfg, tasks)

	assertSameResults(t, "batch", baseResults, batchResults)
	if batchRes.Completed != baseRes.Completed {
		t.Errorf("batched run completed %d, baseline %d", batchRes.Completed, baseRes.Completed)
	}
	if batchRes.Disk.Requests >= baseRes.Disk.Requests {
		t.Errorf("disk requests with batching = %d, baseline = %d; want strictly fewer",
			batchRes.Disk.Requests, baseRes.Disk.Requests)
	}
	if batchRes.VisitedVertices != baseRes.VisitedVertices {
		t.Errorf("visited %d with batching, %d without", batchRes.VisitedVertices, baseRes.VisitedVertices)
	}

	// Determinism: the batched executor replays identically.
	again, againResults := runShared(t, g, cfg, tasks)
	assertSameResults(t, "batch-rerun", batchResults, againResults)
	if again.Disk != batchRes.Disk {
		t.Errorf("disk stats differ across reruns:\n%+v\n%+v", again.Disk, batchRes.Disk)
	}
}

func TestBatchAndCoalesceCompose(t *testing.T) {
	g := testGraph(t)
	tasks := hubTasks(g, 24)
	cfg := Config{NumUnits: 4, MemoryPerUnit: 1 << 20, Cost: fastCost()}
	_, baseResults := runShared(t, g, cfg, tasks)

	cfg.CoalesceReads = true
	cfg.BatchTraversals = traverse.MaxBatch
	_, bothResults := runShared(t, g, cfg, tasks)
	assertSameResults(t, "batch+coalesce", baseResults, bothResults)
}

func TestBatchTraversalsConfigValidation(t *testing.T) {
	g := testGraph(t)
	for _, bad := range []int{-1, traverse.MaxBatch + 1} {
		_, err := NewCluster(g, Config{NumUnits: 1, Cost: fastCost(), BatchTraversals: bad})
		if err == nil {
			t.Errorf("BatchTraversals = %d accepted", bad)
		}
	}
	for _, ok := range []int{0, 1, 2, traverse.MaxBatch} {
		if _, err := NewCluster(g, Config{NumUnits: 1, Cost: fastCost(), BatchTraversals: ok}); err != nil {
			t.Errorf("BatchTraversals = %d rejected: %v", ok, err)
		}
	}
}
