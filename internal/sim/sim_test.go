package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"subtrav/internal/affinity"
	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/sched"
	"subtrav/internal/traverse"
	"subtrav/internal/workload"
)

// fastCost keeps unit tests quick: cheap disk, array-level channel
// parallelism (so unit scaling is limited by redundancy and queueing,
// not by an artificially narrow disk).
func fastCost() CostModel {
	c := DefaultCostModel()
	c.Disk.SeekNanos = 100_000 // 0.1 ms
	c.Disk.Channels = 8
	return c
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 3000, NumEdges: 12000, Exponent: 2.2,
		Kind: graph.Undirected, Seed: 1, VertexMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newCluster(t *testing.T, g *graph.Graph, units int, memory int64) *Cluster {
	t.Helper()
	c, err := NewCluster(g, Config{NumUnits: units, MemoryPerUnit: memory, Cost: fastCost()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// auctionFor wires the paper's scheduler to a cluster.
func auctionFor(t *testing.T, c *Cluster) *sched.Auction {
	t.Helper()
	scorer, err := affinity.NewScorer(c.Graph(), c.Signatures(), c.Clock(), affinity.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewAuction(scorer, sched.AuctionConfig{
		NumUnits: c.NumUnits(), Epsilon: 1e-3, WorkloadAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func bfsTasks(t *testing.T, g *graph.Graph, n int, seed uint64) []*sched.Task {
	t.Helper()
	tasks, err := workload.BFS(g, workload.StreamConfig{
		NumQueries: n, Seed: seed, Locality: workload.DefaultLocality(),
	}, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

func TestRunCompletesAllTasks(t *testing.T) {
	g := testGraph(t)
	c := newCluster(t, g, 4, 1<<20)
	res, err := c.Run(sched.NewBaseline(1), bfsTasks(t, g, 200, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 200 {
		t.Fatalf("completed %d of 200", res.Completed)
	}
	if res.Makespan <= 0 || res.ThroughputPerSec <= 0 {
		t.Errorf("makespan %v throughput %g", res.Makespan, res.ThroughputPerSec)
	}
	if res.Latency.Count != 200 {
		t.Errorf("latency samples = %d", res.Latency.Count)
	}
	if res.CacheHits+res.CacheMisses == 0 {
		t.Error("no cache activity recorded")
	}
	if res.Disk.Requests == 0 {
		t.Error("no disk activity recorded")
	}
	var perUnit int64
	for _, n := range res.TasksPerUnit {
		perUnit += n
	}
	if perUnit != 200 {
		t.Errorf("per-unit tasks sum to %d", perUnit)
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t)
	run := func() Result {
		c := newCluster(t, g, 4, 1<<20)
		res, err := c.Run(auctionFor(t, c), bfsTasks(t, g, 150, 3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.CacheHits != b.CacheHits || a.Disk.Requests != b.Disk.Requests {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSingleUnit(t *testing.T) {
	g := testGraph(t)
	c := newCluster(t, g, 1, 1<<20)
	res, err := c.Run(sched.NewBaseline(1), bfsTasks(t, g, 50, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 50 {
		t.Fatalf("completed %d", res.Completed)
	}
	if res.Imbalance != 1 {
		t.Errorf("single unit imbalance = %g", res.Imbalance)
	}
}

func TestMoreUnitsMoreThroughput(t *testing.T) {
	g := testGraph(t)
	// Per-unit memory well below the working set, as in the paper's
	// partitioned-memory platform: adding units adds both compute and
	// aggregate buffer space.
	tp := func(units int) float64 {
		c := newCluster(t, g, units, 256<<10)
		res, err := c.Run(sched.NewBaseline(1), bfsTasks(t, g, 300, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputPerSec
	}
	t1, t8 := tp(1), tp(8)
	if t8 <= 1.5*t1 {
		t.Errorf("8 units (%.1f/s) should clearly beat 1 unit (%.1f/s)", t8, t1)
	}
}

func TestMoreMemoryNeverHurts(t *testing.T) {
	g := testGraph(t)
	tp := func(memory int64) float64 {
		c := newCluster(t, g, 4, memory)
		res, err := c.Run(sched.NewBaseline(1), bfsTasks(t, g, 300, 6))
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputPerSec
	}
	small, unlimited := tp(64<<10), tp(0)
	if unlimited <= small {
		t.Errorf("unlimited memory (%.1f/s) should beat 64KiB (%.1f/s)", unlimited, small)
	}
}

// The headline effect: on a locality-clustered workload with limited
// memory, the auction scheduler must beat the random baseline.
func TestAuctionBeatsBaseline(t *testing.T) {
	g := testGraph(t)
	tasks := bfsTasks(t, g, 600, 7)

	cb := newCluster(t, g, 8, 512<<10)
	baseRes, err := cb.Run(sched.NewBaseline(1), tasks)
	if err != nil {
		t.Fatal(err)
	}
	ca := newCluster(t, g, 8, 512<<10)
	aucRes, err := ca.Run(auctionFor(t, ca), tasks)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: %v", baseRes)
	t.Logf("auction:  %v", aucRes)
	if aucRes.ThroughputPerSec <= baseRes.ThroughputPerSec {
		t.Errorf("auction throughput %.1f/s did not beat baseline %.1f/s",
			aucRes.ThroughputPerSec, baseRes.ThroughputPerSec)
	}
	if aucRes.HitRate <= baseRes.HitRate {
		t.Errorf("auction hit rate %.3f did not beat baseline %.3f",
			aucRes.HitRate, baseRes.HitRate)
	}
}

// Balance: the auction scheduler must not starve units — imbalance
// should stay moderate even with affinity pulling queries together.
func TestAuctionKeepsBalance(t *testing.T) {
	g := testGraph(t)
	c := newCluster(t, g, 8, 512<<10)
	res, err := c.Run(auctionFor(t, c), bfsTasks(t, g, 800, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Imbalance > 2.0 {
		t.Errorf("imbalance %.2f too high; Eq. 4 weighting should spread load", res.Imbalance)
	}
}

func TestOnCompleteDeliversResults(t *testing.T) {
	g := testGraph(t)
	c := newCluster(t, g, 2, 0)
	var got int
	c.OnComplete = func(task *sched.Task, r traverse.Result) {
		if r.Visited <= 0 {
			t.Errorf("task %d visited %d", task.ID, r.Visited)
		}
		got++
	}
	if _, err := c.Run(sched.NewBaseline(1), bfsTasks(t, g, 40, 9)); err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Errorf("OnComplete fired %d times, want 40", got)
	}
}

func TestPoissonArrivals(t *testing.T) {
	g := testGraph(t)
	tasks, err := workload.BFS(g, workload.StreamConfig{
		NumQueries: 100, Seed: 10, Arrival: workload.Poisson, RatePerSec: 5000,
		Locality: workload.DefaultLocality(),
	}, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, g, 4, 1<<20)
	res, err := c.Run(sched.NewBaseline(2), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 100 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestResetAllowsRerun(t *testing.T) {
	g := testGraph(t)
	c := newCluster(t, g, 4, 1<<20)
	tasks := bfsTasks(t, g, 100, 11)
	first, err := c.Run(sched.NewBaseline(3), tasks)
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	second, err := c.Run(sched.NewBaseline(3), tasks)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh baseline RNG isn't reset, so runs may differ slightly;
	// but counts and a clean state must hold.
	if second.Completed != first.Completed {
		t.Errorf("rerun completed %d vs %d", second.Completed, first.Completed)
	}
}

func TestConfigValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := NewCluster(nil, Config{NumUnits: 1}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewCluster(g, Config{NumUnits: 0}); err == nil {
		t.Error("zero units accepted")
	}
	if _, err := NewCluster(g, Config{NumUnits: 1, MaxQueuePerUnit: -1}); err == nil {
		t.Error("negative queue depth accepted")
	}
	c := newCluster(t, g, 1, 0)
	if _, err := c.Run(nil, nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	bad := []*sched.Task{{ID: 0, Query: traverse.Query{Op: traverse.OpBFS, Start: -1}}}
	if _, err := c.Run(sched.NewBaseline(1), bad); err == nil {
		t.Error("invalid query accepted")
	}
	late := []*sched.Task{{ID: 0, Query: traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 1}, Arrival: -5}}
	if _, err := c.Run(sched.NewBaseline(1), late); err == nil {
		t.Error("negative arrival accepted")
	}
}

func TestEmptyRun(t *testing.T) {
	g := testGraph(t)
	c := newCluster(t, g, 2, 0)
	res, err := c.Run(sched.NewBaseline(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 || res.Makespan != 0 {
		t.Errorf("empty run: %+v", res)
	}
}

func TestMixedWorkloadOps(t *testing.T) {
	g := testGraph(t)
	var tasks []*sched.Task
	bfs := bfsTasks(t, g, 30, 12)
	sssp, err := workload.SSSP(g, workload.StreamConfig{NumQueries: 30, Seed: 13, Locality: workload.DefaultLocality()}, 4, 200)
	if err != nil {
		t.Fatal(err)
	}
	tasks = append(tasks, bfs...)
	tasks = append(tasks, sssp...)
	for i, task := range tasks {
		task.ID = int64(i)
	}
	c := newCluster(t, g, 4, 1<<20)
	res, err := c.Run(auctionFor(t, c), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60", res.Completed)
	}
}

func TestSpeedFactorsValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := NewCluster(g, Config{NumUnits: 2, SpeedFactors: []float64{1}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewCluster(g, Config{NumUnits: 2, SpeedFactors: []float64{1, 0}}); err == nil {
		t.Error("zero speed factor accepted")
	}
	if _, err := NewCluster(g, Config{NumUnits: 2, SpeedFactors: []float64{1, 2}}); err != nil {
		t.Errorf("valid factors rejected: %v", err)
	}
}

func TestSlowUnitsSlowDownRuns(t *testing.T) {
	g := testGraph(t)
	run := func(speeds []float64) float64 {
		c, err := NewCluster(g, Config{
			NumUnits: 4, MemoryPerUnit: 0, Cost: fastCost(), SpeedFactors: speeds,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(sched.NewRoundRobin(), bfsTasks(t, g, 200, 21))
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputPerSec
	}
	nominal := run(nil)
	degraded := run([]float64{8, 1, 1, 1})
	if degraded >= nominal {
		t.Errorf("degraded cluster (%.1f q/s) should be slower than nominal (%.1f q/s)", degraded, nominal)
	}
}

func TestQueueAwareRoutesAroundSlowUnit(t *testing.T) {
	g := testGraph(t)
	slowShare := func(s sched.Scheduler) float64 {
		c, err := NewCluster(g, Config{
			NumUnits: 4, MemoryPerUnit: 0, Cost: fastCost(),
			SpeedFactors: []float64{8, 1, 1, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(s, bfsTasks(t, g, 400, 22))
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, n := range res.TasksPerUnit {
			total += n
		}
		return float64(res.TasksPerUnit[0]) / float64(total)
	}
	rr := slowShare(sched.NewRoundRobin())
	ll := slowShare(sched.NewLeastLoaded())
	if ll >= rr {
		t.Errorf("least-loaded gave the slow unit %.2f of work, round-robin %.2f; want less", ll, rr)
	}
	if ll > 0.15 {
		t.Errorf("least-loaded slow-unit share %.2f, want well below fair 0.25", ll)
	}
}

func TestCSVTracer(t *testing.T) {
	g := testGraph(t)
	c := newCluster(t, g, 2, 1<<20)
	var buf bytes.Buffer
	c.SetTracer(NewCSVTracer(&buf))
	if _, err := c.Run(sched.NewBaseline(1), bfsTasks(t, g, 25, 31)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "event,task,unit,vtime_ns,misses" {
		t.Fatalf("header = %q", lines[0])
	}
	counts := map[string]int{}
	for _, line := range lines[1:] {
		counts[strings.SplitN(line, ",", 2)[0]]++
	}
	if counts["dispatch"] != 25 || counts["start"] != 25 || counts["complete"] != 25 {
		t.Errorf("event counts = %v, want 25 each", counts)
	}
	// Per-task ordering: dispatch <= start <= complete in virtual time.
	type seen struct{ dispatch, start, complete int64 }
	byTask := map[string]*seen{}
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		ev, task := parts[0], parts[1]
		var vt int64
		fmt.Sscanf(parts[3], "%d", &vt)
		s := byTask[task]
		if s == nil {
			s = &seen{dispatch: -1, start: -1, complete: -1}
			byTask[task] = s
		}
		switch ev {
		case "dispatch":
			s.dispatch = vt
		case "start":
			s.start = vt
		case "complete":
			s.complete = vt
		}
	}
	for task, s := range byTask {
		if s.dispatch < 0 || s.start < s.dispatch || s.complete < s.start {
			t.Fatalf("task %s lifecycle out of order: %+v", task, s)
		}
	}
	// Completion rows carry miss counts.
	foundMisses := false
	for _, line := range lines[1:] {
		if strings.HasPrefix(line, "complete,") && !strings.HasSuffix(line, ",") {
			foundMisses = true
		}
	}
	if !foundMisses {
		t.Error("no completion row carried a miss count")
	}
}
