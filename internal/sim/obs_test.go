package sim

import (
	"strings"
	"testing"

	"subtrav/internal/obs"
	"subtrav/internal/sched"
	"subtrav/internal/storage"
)

// TestSimTracerIntoRing runs a simulation with obs.SimTracer installed
// (the structural sim.Tracer adapter) and disk metrics mirrored into a
// registry: the same observability surface the live runtime exposes.
func TestSimTracerIntoRing(t *testing.T) {
	g := testGraph(t)
	c := newCluster(t, g, 2, 1<<20)
	ring := obs.NewRing(64)
	c.SetTracer(obs.NewSimTracer(ring))
	reg := obs.NewRegistry()
	c.SetDiskMetrics(storage.NewMetrics(reg))

	const n = 25
	res, err := c.Run(sched.NewBaseline(1), bfsTasks(t, g, n, 31))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != n {
		t.Fatalf("completed = %d, want %d", res.Completed, n)
	}

	spans := ring.Last(n)
	if len(spans) != n {
		t.Fatalf("ring holds %d spans, want %d", len(spans), n)
	}
	var misses int
	for _, s := range spans {
		if s.Outcome != obs.OutcomeCompleted {
			t.Errorf("span %d outcome = %q", s.QueryID, s.Outcome)
		}
		if s.Unit < 0 || s.Unit >= 2 {
			t.Errorf("span %d unit = %d", s.QueryID, s.Unit)
		}
		if s.ScheduleNanos < s.SubmitNanos || s.StartNanos < s.ScheduleNanos || s.EndNanos < s.StartNanos {
			t.Errorf("span %d virtual timestamps out of order: %+v", s.QueryID, s)
		}
		misses += s.CacheMisses
	}
	if misses == 0 {
		t.Error("no span recorded cache misses on a cold cluster")
	}
	// The mirrored disk counters must agree with the cluster's own
	// accounting and be scrapeable.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "subtrav_disk_requests_total") {
		t.Errorf("exposition missing disk series:\n%s", b.String())
	}
}
