package sim

import (
	"fmt"
	"io"
	"sync"
)

// Tracer observes task lifecycle events in virtual time. Tracers run
// synchronously inside the event loop, so implementations should be
// cheap; all times are virtual nanoseconds.
type Tracer interface {
	// TaskDispatched fires when the scheduler places a task on a
	// unit's queue.
	TaskDispatched(taskID int64, unit int32, at int64)
	// TaskStarted fires when a unit begins executing a task.
	TaskStarted(taskID int64, unit int32, at int64)
	// TaskCompleted fires when a task finishes; misses counts its
	// shared-disk fetches.
	TaskCompleted(taskID int64, unit int32, at int64, misses int)
}

// SetTracer installs a tracer (nil disables tracing). Call before Run.
func (c *Cluster) SetTracer(t Tracer) { c.tracer = t }

// CSVTracer renders the event stream as CSV lines:
//
//	event,task,unit,vtime_ns[,misses]
//
// It is safe for concurrent use (the simulator itself is
// single-threaded, but live consumers may share the writer).
type CSVTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewCSVTracer wraps a writer. The header row is written immediately.
func NewCSVTracer(w io.Writer) *CSVTracer {
	t := &CSVTracer{w: w}
	fmt.Fprintln(w, "event,task,unit,vtime_ns,misses")
	return t
}

// TaskDispatched implements Tracer.
func (t *CSVTracer) TaskDispatched(taskID int64, unit int32, at int64) {
	t.line("dispatch", taskID, unit, at, -1)
}

// TaskStarted implements Tracer.
func (t *CSVTracer) TaskStarted(taskID int64, unit int32, at int64) {
	t.line("start", taskID, unit, at, -1)
}

// TaskCompleted implements Tracer.
func (t *CSVTracer) TaskCompleted(taskID int64, unit int32, at int64, misses int) {
	t.line("complete", taskID, unit, at, misses)
}

func (t *CSVTracer) line(event string, taskID int64, unit int32, at int64, misses int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if misses < 0 {
		fmt.Fprintf(t.w, "%s,%d,%d,%d,\n", event, taskID, unit, at)
		return
	}
	fmt.Fprintf(t.w, "%s,%d,%d,%d,%d\n", event, taskID, unit, at, misses)
}
