package sim

import (
	"container/heap"
	"fmt"

	"subtrav/internal/cache"
	"subtrav/internal/graph"
	"subtrav/internal/sched"
	"subtrav/internal/signature"
	"subtrav/internal/storage"
	"subtrav/internal/traverse"
)

// Cluster is one simulated shared-disk deployment. Create it with
// NewCluster, wire a scheduler (whose affinity scorer should read the
// cluster's Signatures and Clock), then drive it with Run. A cluster
// instance runs one workload; use Reset between repetitions.
type Cluster struct {
	g     *graph.Graph
	cfg   Config
	clock *signature.ManualClock
	sigs  *signature.Table
	disk  *storage.Disk
	units []*unit

	events  eventHeap
	seq     int64
	pending []*sched.Task
	// sched is the active scheduler for the duration of Run.
	sched sched.Scheduler
	// tracer observes task lifecycle events (nil: disabled).
	tracer Tracer

	// OnComplete, when set, receives every finished task and its
	// semantic result (used by examples and correctness tests).
	OnComplete func(*sched.Task, traverse.Result)

	// run accounting
	firstArrival int64
	lastComplete int64
	completed    int64
	visitedTotal int64
	latencies    []int64
	execNanos    []int64
}

// NewCluster builds a cluster over the given graph.
func NewCluster(g *graph.Graph, cfg Config) (*Cluster, error) {
	if g == nil {
		return nil, fmt.Errorf("sim: graph is required")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		g:            g,
		cfg:          cfg,
		clock:        &signature.ManualClock{},
		sigs:         signature.NewTable(cfg.SignatureCap),
		disk:         storage.NewDisk(cfg.Cost.Disk),
		firstArrival: -1,
	}
	// All units borrow one dense traversal scratch: the event loop
	// executes kernels one at a time, and sharing keeps cluster memory
	// at O(|V|) instead of O(P·|V|) (the paper-scale graph is 11.3M
	// vertices). Traces and results live in per-unit buffers. The
	// batch scratch is shared the same way when lockstep batching is
	// on (its per-slot SSSP maps are the O(K·|V|) part of the bill).
	scratch := traverse.NewScratch(g.NumVertices())
	var batchScratch *traverse.BatchScratch
	if cfg.BatchTraversals > 1 {
		batchScratch = traverse.NewBatchScratch(g.NumVertices())
	}
	for i := 0; i < cfg.NumUnits; i++ {
		speed := 1.0
		if cfg.SpeedFactors != nil {
			speed = cfg.SpeedFactors[i]
		}
		u := &unit{
			id:     int32(i),
			buffer: cache.New(cfg.MemoryPerUnit),
			ws:     traverse.NewWorkspaceWithScratch(scratch),
			speed:  speed,
		}
		if batchScratch != nil {
			u.batch = traverse.NewBatchWithScratch(batchScratch)
		}
		c.units = append(c.units, u)
	}
	return c, nil
}

// Graph returns the cluster's graph.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Signatures returns the vertex visit-signature table; affinity
// scorers read it.
func (c *Cluster) Signatures() *signature.Table { return c.sigs }

// Clock returns the virtual clock; affinity scorers read it.
func (c *Cluster) Clock() signature.Clock { return c.clock }

// NumUnits returns P.
func (c *Cluster) NumUnits() int { return c.cfg.NumUnits }

// SetDiskMetrics mirrors shared-disk activity into m — typically
// storage.NewMetrics(reg) on an obs.Registry — so simulator runs can
// be scraped with the same disk series as the live system. nil
// disables; Reset keeps the wiring.
func (c *Cluster) SetDiskMetrics(m *storage.Metrics) { c.disk.SetMetrics(m) }

// Reset clears all run state — queues, caches, signatures, disk
// occupancy and statistics — keeping the configuration.
func (c *Cluster) Reset() {
	c.clock.Reset() // same clock object: scorers wired to it stay valid
	c.sigs.Reset()
	c.disk.Reset()
	for _, u := range c.units {
		u.buffer = cache.New(c.cfg.MemoryPerUnit)
		u.queue = nil
		u.cur = nil
		u.completions = nil
		u.busyNanos = 0
	}
	c.events = nil
	c.seq = 0
	c.pending = nil
	c.firstArrival = -1
	c.lastComplete = 0
	c.completed = 0
	c.visitedTotal = 0
	c.latencies = nil
	c.execNanos = nil
}

func (c *Cluster) push(e event) {
	e.seq = c.seq
	c.seq++
	heap.Push(&c.events, e)
}

// Run injects the given tasks at their Arrival times, drives the
// event loop to completion under the given scheduler, and returns the
// run's measurements.
func (c *Cluster) Run(s sched.Scheduler, tasks []*sched.Task) (Result, error) {
	if s == nil {
		return Result{}, fmt.Errorf("sim: scheduler is required")
	}
	c.sched = s
	defer func() { c.sched = nil }()
	for _, t := range tasks {
		if t.Query.Dir == (traverse.DirectionConfig{}) {
			t.Query.Dir = c.cfg.Direction
		}
		if err := t.Query.Validate(c.g); err != nil {
			return Result{}, fmt.Errorf("sim: task %d: %w", t.ID, err)
		}
		if t.Arrival < 0 {
			return Result{}, fmt.Errorf("sim: task %d has negative arrival %d", t.ID, t.Arrival)
		}
		c.push(event{time: t.Arrival, kind: evArrival, task: &taskState{task: t}})
	}

	for len(c.events) > 0 {
		e := heap.Pop(&c.events).(event)
		c.clock.Set(e.time)
		switch e.kind {
		case evArrival:
			if c.firstArrival < 0 || e.time < c.firstArrival {
				c.firstArrival = e.time
			}
			c.pending = append(c.pending, e.task.task)
			c.dispatch(s, e.time)
		case evStep:
			c.step(c.units[e.unit], e.time)
		}
	}
	if len(c.pending) > 0 {
		return Result{}, fmt.Errorf("sim: %d tasks never dispatched (scheduler stalled)", len(c.pending))
	}
	return c.result(s), nil
}

// dispatch runs scheduling rounds while pending tasks exist and some
// unit is below the dispatch depth target (Figure 6: fetch up to P
// tasks, auction, dispatch to unit queues).
func (c *Cluster) dispatch(s sched.Scheduler, now int64) {
	for len(c.pending) > 0 && c.hasDispatchRoom() {
		batch := len(c.units)
		if batch > len(c.pending) {
			batch = len(c.pending)
		}
		tasks := c.pending[:batch]
		c.pending = c.pending[batch:]

		units := make([]sched.UnitState, len(c.units))
		for i, u := range c.units {
			units[i] = u
		}
		placement := s.Assign(tasks, units)
		for i, t := range tasks {
			pick := placement[i]
			if pick < 0 || pick >= len(c.units) {
				panic(fmt.Sprintf("sim: scheduler %q placed task %d on unit %d of %d",
					s.Name(), t.ID, pick, len(c.units)))
			}
			u := c.units[pick]
			u.queue = append(u.queue, &taskState{task: t})
			if c.tracer != nil {
				c.tracer.TaskDispatched(t.ID, u.id, now)
			}
			if u.cur == nil {
				c.startNext(u, now)
			}
		}
	}
}

func (c *Cluster) hasDispatchRoom() bool {
	for _, u := range c.units {
		if u.effectiveLoad() < c.cfg.MaxQueuePerUnit {
			return true
		}
	}
	return false
}

// startNext pops the unit's FCFS queue — plus, when lockstep batching
// is on, the contiguous run of batchable queries behind a batchable
// head — and begins trace replay.
func (c *Cluster) startNext(u *unit, now int64) {
	ts := u.queue[0]
	u.queue = u.queue[1:]
	ex := &execState{members: []*taskState{ts}, start: now}
	if b := c.cfg.BatchTraversals; b > 1 && u.batch != nil && traverse.Batchable(ts.task.Query.Op) {
		for len(ex.members) < b && len(u.queue) > 0 && traverse.Batchable(u.queue[0].task.Query.Op) {
			ex.members = append(ex.members, u.queue[0])
			u.queue = u.queue[1:]
		}
	}
	u.cur = ex
	u.lastStart = now
	if c.tracer != nil {
		for _, m := range ex.members {
			c.tracer.TaskStarted(m.task.ID, u.id, now)
		}
	}

	// The set of records a traversal touches is timing-independent
	// (see package traverse), so the traces are computed here and then
	// replayed against the buffer and shared disk for their cost. The
	// unit's workspace (and batch executor) is recycled per start: by
	// the time this runs, the unit's previous traces and results were
	// fully consumed by complete.
	if len(ex.members) == 1 {
		result, trace, err := traverse.ExecuteIn(u.ws, c.g, ts.task.Query)
		if err != nil {
			// Queries are validated at Run entry; an error here is a bug.
			panic(fmt.Sprintf("sim: traversal failed mid-run: %v", err))
		}
		if c.OnComplete != nil {
			// The callback may retain the result past this unit's next
			// task, which recycles the workspace-owned slices; detach
			// them.
			result = result.Clone()
		}
		ts.result = result
		ts.trace = trace
		ex.replay = trace
	} else {
		queries := make([]traverse.Query, len(ex.members))
		for i, m := range ex.members {
			queries[i] = m.task.Query
		}
		results, traces, shared, err := u.batch.Run(c.g, queries)
		if err != nil {
			panic(fmt.Sprintf("sim: batched traversal failed mid-run: %v", err))
		}
		for i, m := range ex.members {
			res := results[i]
			if c.OnComplete != nil {
				res = res.Clone()
			}
			m.result = res
			m.trace = traces[i]
		}
		// The shared wave trace is what the batch actually pays for:
		// each wave-shared record loaded once.
		ex.replay = shared
	}
	c.step(u, now)
}

// step replays the unit's current trace from its cursor. Buffer hits
// are consumed inline (they touch no shared resource); the first miss
// at the current virtual instant issues one shared-disk read and
// yields, so disk requests across units are serviced in causal order.
func (c *Cluster) step(u *unit, now int64) {
	ex := u.cur
	cost := &c.cfg.Cost
	tl := now
	for ex.pos < len(ex.replay.Accesses) {
		a := ex.replay.Accesses[ex.pos]
		key := accessKey(a)
		if u.buffer.Contains(key) {
			u.buffer.Access(key, int64(a.Bytes))
			tl += int64(float64(cost.MemHitNanos+cpuCost(cost, a)) * u.speed)
			ex.pos++
			continue
		}
		if tl > now {
			// Hits consumed virtual time; realign before touching the
			// shared disk so requests are issued in global time order.
			c.push(event{time: tl, kind: evStep, unit: u.id})
			return
		}
		var done int64
		if c.cfg.CoalesceReads {
			// Join an in-flight read of the same record when one
			// exists; a coalesced miss pays the leader's completion
			// time but issues no request of its own.
			done, _ = c.disk.ReadShared(now, int64(a.Bytes), c.g.Partition(a.Vertex), key)
		} else {
			done = c.disk.ReadPart(now, int64(a.Bytes), c.g.Partition(a.Vertex))
		}
		ex.misses++
		u.buffer.Access(key, int64(a.Bytes))
		// The paper updates L(v) as vertices are visited, so a miss
		// signs the vertex immediately — concurrent scheduling rounds
		// can already see the partially-built affinity.
		c.sigs.Record(a.Vertex, u.id, now)
		ex.pos++
		localWork := float64(cpuCost(cost, a)) + cost.CPUMissByteNanos*float64(a.Bytes)
		next := done + int64(localWork*u.speed)
		c.push(event{time: next, kind: evStep, unit: u.id})
		return
	}
	if tl > now {
		c.push(event{time: tl, kind: evStep, unit: u.id})
		return
	}
	c.complete(u, now)
}

// cpuCost charges the record processing plus the adjacency entries
// scanned while holding it.
func cpuCost(cost *CostModel, a traverse.Access) int64 {
	return cost.CPUVertexNanos + int64(a.ScannedEdges)*cost.CPUEdgeNanos
}

func accessKey(a traverse.Access) cache.Key {
	return cache.VertexKey(int32(a.Vertex))
}

// complete finishes every member of the unit's current batch: visit
// signatures are recorded for each member's touched vertices
// (L(v) ← L(v) ∪ (t, p)), run statistics are updated per member, and
// the next queued task starts. A batch's disk-miss count is reported
// to the tracer on each member (the batch paid it jointly).
func (c *Cluster) complete(u *unit, now int64) {
	ex := u.cur
	u.cur = nil
	for _, ts := range ex.members {
		for _, v := range ts.trace.Touched {
			c.sigs.Record(v, u.id, now)
		}
		u.completions = append(u.completions, now)
		c.completed++
		c.visitedTotal += int64(ts.result.Visited)
		c.latencies = append(c.latencies, now-ts.task.Arrival)
		c.execNanos = append(c.execNanos, now-ex.start)
		if c.tracer != nil {
			c.tracer.TaskCompleted(ts.task.ID, u.id, now, ex.misses)
		}
		if c.OnComplete != nil {
			c.OnComplete(ts.task, ts.result)
		}
	}
	u.busyNanos += now - ex.start
	if now > c.lastComplete {
		c.lastComplete = now
	}
	if len(u.queue) > 0 {
		c.startNext(u, now)
	}
	// A completion frees dispatch room; admit pending tasks.
	if len(c.pending) > 0 && c.sched != nil {
		c.dispatch(c.sched, now)
	}
}
