// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer runs over one
// type-checked package at a time and reports position-anchored
// diagnostics. The repo cannot vendor x/tools (the build environment
// is offline and the module has no external dependencies by policy),
// so this package reimplements the small slice of the API the
// subtrav-vet suite needs — same Analyzer/Pass shape, so the
// analyzers port to the upstream framework mechanically if the
// dependency ever lands.
//
// Beyond the x/tools core it bakes in one repo convention: a
// diagnostic is suppressed when the offending line (or the line
// directly above it) carries a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; an allow comment without one is ignored,
// so every suppression in the tree documents why the invariant is
// waived at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run is invoked once per package with
// a fully type-checked Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments. It must look like an identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. It must not retain the Pass.
	Run func(*Pass) error
	// Finish, if non-nil, runs once after every package's Run (in
	// import order), with access to all facts the analyzer exported.
	// Module-wide invariants — a cycle in the union of per-package
	// lock graphs — are checked here.
	Finish func(*ModulePass) error
}

// Pass carries one package's syntax and type information through an
// Analyzer.Run invocation.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	store *factStore
	diags []Diagnostic
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Callee resolves the *types.Func a call expression invokes, whether
// through a plain identifier, a package selector or a method
// selector. It returns nil for calls through function-typed values,
// type conversions and built-ins.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// allowMarker is the comment prefix that suppresses a diagnostic.
const allowMarker = "//lint:allow"

// parseAllow decodes a comment as a suppression. isAllow reports
// whether the comment is an allow marker at all; wellFormed whether
// it names an analyzer and documents a reason.
func parseAllow(text string) (name string, isAllow, wellFormed bool) {
	rest, ok := strings.CutPrefix(text, allowMarker)
	if !ok {
		return "", false, false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false, false // e.g. //lint:allowlist — not ours
	}
	name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
	return name, true, name != "" && strings.TrimSpace(reason) != ""
}

// allowMarkerSite is one well-formed //lint:allow comment; used is
// set when the marker suppresses at least one diagnostic, so stale
// suppressions are detectable (see UnusedAllows).
type allowMarkerSite struct {
	pos  token.Position
	name string // analyzer the marker suppresses
	used bool
}

// suppressions maps filename -> line -> analyzer name -> marker.
// Both lines a marker covers point at the same site record.
type suppressions map[string]map[int]map[string]*allowMarkerSite

// collectSuppressions scans file comments for //lint:allow markers.
// A marker covers its own source line and the next one, so both
// trailing comments and comments-above-the-statement work.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressions {
	sup := suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, isAllow, wellFormed := parseAllow(c.Text)
				if !isAllow || !wellFormed {
					// No documented reason: the suppression does not
					// take effect. MalformedAllows surfaces these so
					// they cannot silently rot.
					continue
				}
				pos := fset.Position(c.Pos())
				site := &allowMarkerSite{pos: pos, name: name}
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]*allowMarkerSite{}
					sup[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]*allowMarkerSite{}
					}
					byLine[line][name] = site
				}
			}
		}
	}
	return sup
}

// allows reports whether d is suppressed, marking the covering
// marker as used.
func (s suppressions) allows(d Diagnostic) bool {
	site := s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
	if site == nil {
		return false
	}
	site.used = true
	return true
}

// merge folds o's markers into s (distinct files, so no collisions).
func (s suppressions) merge(o suppressions) {
	for file, byLine := range o {
		s[file] = byLine
	}
}

// unused returns one diagnostic per marker that never suppressed a
// finding, in positional order.
func (s suppressions) unused() []Diagnostic {
	seen := map[*allowMarkerSite]bool{}
	var out []Diagnostic
	for _, byLine := range s {
		for _, byName := range byLine {
			for _, site := range byName {
				if site.used || seen[site] {
					continue
				}
				seen[site] = true
				out = append(out, Diagnostic{
					Analyzer: "unused-allow",
					Pos:      site.pos,
					Message: fmt.Sprintf("//lint:allow %s suppresses nothing: the finding it excused is gone (or the analyzer name is wrong); delete the stale suppression",
						site.name),
				})
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// MalformedAllows returns a diagnostic for every //lint:allow comment
// that is missing its analyzer name or reason, so the driver can
// reject undocumented suppressions.
func MalformedAllows(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, isAllow, wellFormed := parseAllow(c.Text)
				if isAllow && !wellFormed {
					out = append(out, Diagnostic{
						Analyzer: "lint",
						Pos:      fset.Position(c.Pos()),
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
				}
			}
		}
	}
	return out
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
