package analysis

import (
	"fmt"
	"strings"
)

// Scope restricts where an analyzer's findings apply. The analyzers
// themselves are pure pattern detectors; policy about which packages
// each invariant governs lives here, in the suite configuration, so
// the same analyzer can run unrestricted under analysistest.
type Scope struct {
	// Paths, when non-empty, limits the analyzer to packages whose
	// import path equals an entry or is under it (entry + "/...").
	Paths []string
	// SkipMain drops findings in main packages (command wiring is
	// allowed to construct root contexts, parse wall-clock flags...).
	SkipMain bool
}

func (s Scope) applies(pkg *Package) bool {
	if s.SkipMain && pkg.Name == "main" {
		return false
	}
	if len(s.Paths) == 0 {
		return true
	}
	for _, p := range s.Paths {
		if pkg.PkgPath == p || strings.HasPrefix(pkg.PkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Run applies each analyzer to each in-scope package, filters
// //lint:allow-suppressed findings, appends a finding for every
// malformed allow comment, and returns the remainder in positional
// order. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer, scopes map[string]Scope) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		all = append(all, MalformedAllows(pkg.Fset, pkg.Files)...)
		for _, a := range analyzers {
			if !scopes[a.Name].applies(pkg) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				if !sup.allows(d) {
					all = append(all, d)
				}
			}
		}
	}
	sortDiagnostics(all)
	return all, nil
}
