package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Scope restricts where an analyzer's findings apply. The analyzers
// themselves are pure pattern detectors; policy about which packages
// each invariant governs lives here, in the suite configuration, so
// the same analyzer can run unrestricted under analysistest.
type Scope struct {
	// Paths, when non-empty, limits the analyzer to packages whose
	// import path equals an entry or is under it (entry + "/...").
	Paths []string
	// SkipMain drops findings in main packages (command wiring is
	// allowed to construct root contexts, parse wall-clock flags...).
	SkipMain bool
}

func (s Scope) applies(pkg *Package) bool {
	if s.SkipMain && pkg.Name == "main" {
		return false
	}
	if len(s.Paths) == 0 {
		return true
	}
	for _, p := range s.Paths {
		if pkg.PkgPath == p || strings.HasPrefix(pkg.PkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Result is everything one driver run produced.
type Result struct {
	// Diagnostics are the unsuppressed findings, in positional order.
	Diagnostics []Diagnostic
	// UnusedAllows are well-formed //lint:allow comments that
	// suppressed no finding of ANY analyzer that ran — stale
	// suppressions (or typo'd analyzer names). Only meaningful when
	// the full suite ran; a subset run under -run makes other
	// analyzers' allows look unused.
	UnusedAllows []Diagnostic
}

// Run applies each analyzer to each in-scope package, filters
// //lint:allow-suppressed findings, appends a finding for every
// malformed allow comment, and returns the remainder in positional
// order. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer, scopes map[string]Scope) ([]Diagnostic, error) {
	res, err := RunAll(pkgs, analyzers, scopes)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunAll is Run plus the unused-suppression report. Packages are
// analyzed in import order (dependencies before importers) so facts
// exported while analyzing a dependency are importable by the time
// its dependents run; analyzers with a Finish hook then see the
// whole module's facts at once.
func RunAll(pkgs []*Package, analyzers []*Analyzer, scopes map[string]Scope) (Result, error) {
	ordered := importOrder(pkgs)

	var all []Diagnostic
	store := newFactStore()
	allSup := suppressions{}
	for _, pkg := range ordered {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		allSup.merge(sup)
		all = append(all, MalformedAllows(pkg.Fset, pkg.Files)...)
		for _, a := range analyzers {
			if !scopes[a.Name].applies(pkg) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				store:     store,
			}
			if err := a.Run(pass); err != nil {
				return Result{}, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, d := range pass.diags {
				if !sup.allows(d) {
					all = append(all, d)
				}
			}
		}
	}

	// Module-wide phase: analyzers that accumulate facts check their
	// whole-module invariants now. Finish diagnostics honor the same
	// suppression machinery, matched against the union of every
	// package's allow markers.
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, store: store}
		if err := a.Finish(mp); err != nil {
			return Result{}, fmt.Errorf("%s: finish: %v", a.Name, err)
		}
		for _, d := range mp.diags {
			if !allSup.allows(d) {
				all = append(all, d)
			}
		}
	}

	sortDiagnostics(all)
	return Result{Diagnostics: all, UnusedAllows: allSup.unused()}, nil
}

// importOrder sorts packages so every package follows all of its
// (loaded) imports — topological order over the import graph, with
// ties broken by import path so the order is deterministic. The
// import graph is acyclic by Go's rules, so the recursion
// terminates.
func importOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	sorted := make([]*Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		state[p.PkgPath] = 1
		imps := append([]string(nil), p.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			if dep, ok := byPath[imp]; ok && state[imp] == 0 {
				visit(dep)
			}
		}
		state[p.PkgPath] = 2
		sorted = append(sorted, p)
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.PkgPath)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if state[path] == 0 {
			visit(byPath[path])
		}
	}
	return sorted
}
