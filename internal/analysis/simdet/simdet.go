// Package simdet enforces the repo's bit-for-bit determinism
// invariant: the discrete-event simulator, generators and workload
// synthesis must produce identical output for identical seeds, since
// the paper's scheduler comparisons (Figures 8-12) subtract one run's
// numbers from another's. Wall-clock reads, the process-global
// math/rand source, and output emitted while ranging over a map all
// break that property.
package simdet

import (
	"go/ast"
	"go/types"

	"subtrav/internal/analysis"
)

// Analyzer flags nondeterminism sources in deterministic packages.
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc: "flags wall-clock time (time.Now/Since/Until), the process-global " +
		"math/rand source, and output emitted during map iteration in packages " +
		"that must stay bit-for-bit deterministic; use the simulator's virtual " +
		"clock and internal/xrand instead",
	Run: run,
}

// wallClockFuncs are time-package functions that read the wall clock.
// Construction helpers (time.Date, time.Unix) and arithmetic are fine.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// globalRandOK lists math/rand package-level functions that do NOT
// touch the shared global source; everything else at package level
// does (Intn, Float64, Perm, Shuffle, Seed, Read, ...).
var globalRandOK = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch {
	case pkg == "time" && fn.Type().(*types.Signature).Recv() == nil && wallClockFuncs[name]:
		pass.Reportf(call.Pos(),
			"wall-clock time.%s in deterministic code; use the simulator's virtual clock (sim event time / signature.Clock)", name)
	case (pkg == "math/rand" || pkg == "math/rand/v2") &&
		fn.Type().(*types.Signature).Recv() == nil && !globalRandOK[name]:
		pass.Reportf(call.Pos(),
			"global %s.%s draws from the process-wide source; use a seeded internal/xrand.RNG", pkg, name)
	}
}

// checkMapRange reports map iterations whose body emits output
// (printing, writing, or sending on a channel) during the loop: Go
// map order is randomized, so anything observable produced inside the
// loop is nondeterministic. Accumulating into a slice and sorting
// after the loop is the blessed pattern and is not flagged.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure is not necessarily called during iteration.
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send during map iteration: map order is randomized, so delivery order is nondeterministic; collect and sort first")
			return false
		case *ast.CallExpr:
			if fn := pass.Callee(n); fn != nil && isEmit(fn) {
				pass.Reportf(n.Pos(),
					"%s.%s during map iteration emits in randomized map order; collect keys, sort, then emit", fn.Pkg().Path(), fn.Name())
				return false
			}
		}
		return true
	})
}

// isEmit reports whether fn produces externally observable output.
func isEmit(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
	case "io":
		if fn.Name() == "WriteString" || fn.Name() == "Copy" {
			return true
		}
	}
	// Method named Write/WriteString on anything (io.Writer
	// implementations, bufio, strings.Builder excepted would be
	// over-reach; keep to the io.Writer contract).
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if fn.Name() == "Write" || fn.Name() == "WriteString" {
			// strings.Builder / bytes.Buffer writes stay in memory and
			// are frequently sorted afterwards... but appending to a
			// buffer during map iteration is exactly the
			// Fprintf-to-builder bug simdet exists to catch. Flag
			// them; accumulate-and-sort code uses append, not Write.
			return true
		}
	}
	return false
}
