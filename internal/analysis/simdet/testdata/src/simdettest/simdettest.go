// Package simdettest is an analysistest fixture: each // want line
// must be flagged by simdet, everything else must stay quiet.
package simdettest

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"subtrav/internal/xrand"
)

// Flagged: wall-clock reads are nondeterministic across runs.
func wallClock() int64 {
	t := time.Now() // want "wall-clock time.Now in deterministic code"
	return t.UnixNano()
}

func wallElapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock time.Since in deterministic code"
}

// Allowed: pure time arithmetic and construction read no clock.
func virtualDeadline(nowNanos int64, d time.Duration) int64 {
	return nowNanos + d.Nanoseconds()
}

// Flagged: the global math/rand source is seeded process-wide.
func globalRand(n int) int {
	return rand.Intn(n) // want "global math/rand.Intn draws from the process-wide source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

// Allowed: an explicitly seeded source is reproducible.
func seededStdRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Allowed: the repo's seeded splittable RNG is the blessed source.
func seededXrand(seed uint64, n int) int {
	rng := xrand.New(seed)
	return rng.Intn(n)
}

// Flagged: emitting during map iteration observes randomized order.
func emitUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "during map iteration emits in randomized map order"
	}
}

func sendUnsorted(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send during map iteration"
	}
}

// Allowed: collect, sort, then emit.
func emitSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}

// Allowed: a documented suppression swallows the finding.
func suppressedWallClock() int64 {
	//lint:allow simdet boot-time banner only, never feeds the event queue
	return time.Now().UnixNano()
}
