// Package kerneltest is an analysistest fixture shaped like traversal
// kernel code — the shapes simdet must catch now that
// internal/traverse is in its scope: trace emission during map
// iteration, wall-clock seeding, and global-rand neighbor picks. Each
// // want line must be flagged; the workspace-style patterns below
// them must stay quiet.
package kerneltest

import (
	"fmt"
	"math/rand"
	"time"

	"subtrav/internal/xrand"
)

type vertexID int32

type access struct {
	vertex vertexID
	bytes  int32
}

// Flagged: seeding a walk from the wall clock makes two runs of the
// same query diverge.
func wallClockSeed() uint64 {
	return uint64(time.Now().UnixNano()) // want "wall-clock time.Now in deterministic code"
}

// Flagged: the global source is shared process-wide; concurrent
// traversals interleave draws.
func globalRandNeighbor(degree int) int {
	return rand.Intn(degree) // want "global math/rand.Intn draws from the process-wide source"
}

// Allowed: a query-seeded stack RNG is the kernel idiom.
func seededNeighbor(seed uint64, degree int) int {
	var rng xrand.RNG
	rng.Reseed(seed)
	return rng.Intn(degree)
}

// Flagged: emitting trace lines while ranging the visited map replays
// in randomized order — the exact CollabFilter hop-2 bug.
func dumpVisited(visited map[vertexID]int, w interface{ Write([]byte) (int, error) }) {
	for v, count := range visited {
		fmt.Fprintf(w, "%d:%d\n", v, count) // want "during map iteration emits in randomized map order"
	}
}

// Flagged: streaming accesses out of a map-keyed frontier is order-
// nondeterministic even without formatting.
func streamFrontier(frontier map[vertexID]bool, out chan vertexID) {
	for v := range frontier {
		out <- v // want "channel send during map iteration"
	}
}

// Allowed: the workspace pattern — accumulate in first-touch order
// into a compact side list, then emit from the slice.
func emitInsertionOrder(order []vertexID, counts map[vertexID]int, w interface{ Write([]byte) (int, error) }) {
	for _, v := range order {
		fmt.Fprintf(w, "%d:%d\n", v, counts[v])
	}
}

// Allowed: building a trace by appending inside a slice range is
// deterministic; only map ranges are suspect.
func buildTrace(order []vertexID, sizes map[vertexID]int32) []access {
	trace := make([]access, 0, len(order))
	for _, v := range order {
		trace = append(trace, access{vertex: v, bytes: sizes[v]})
	}
	return trace
}
