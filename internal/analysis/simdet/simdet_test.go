package simdet_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/simdet"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, simdet.Analyzer, "simdettest")
}
