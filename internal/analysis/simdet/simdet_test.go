package simdet_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/simdet"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, simdet.Analyzer, "simdettest")
}

// TestSimdetKernelShapes covers the traversal-kernel shapes added
// when internal/traverse entered simdet's scope.
func TestSimdetKernelShapes(t *testing.T) {
	analysistest.Run(t, simdet.Analyzer, "kerneltest")
}
