package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressionSrc = `package p

func a() {
	x := 1 //lint:allow check trailing comment with reason
	_ = x
}

func b() {
	//lint:allow check comment above the statement
	y := 2
	_ = y
}

func c() {
	z := 3 //lint:allow check
	_ = z
}

func d() {
	//lint:allow
	w := 4
	_ = w
}
`

func parseOne(t *testing.T, src string) (*token.FileSet, suppressions, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	return fset, collectSuppressions(fset, files), MalformedAllows(fset, files)
}

func TestSuppressions(t *testing.T) {
	fset, sup, malformed := parseOne(t, suppressionSrc)
	_ = fset

	diag := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: "p.go", Line: line}}
	}

	// Trailing comment suppresses its own line.
	if !sup.allows(diag(4, "check")) {
		t.Errorf("trailing //lint:allow did not suppress its line")
	}
	// Comment-above suppresses the next line.
	if !sup.allows(diag(10, "check")) {
		t.Errorf("//lint:allow above the statement did not suppress it")
	}
	// Wrong analyzer name is not suppressed.
	if sup.allows(diag(4, "other")) {
		t.Errorf("suppression leaked to a different analyzer")
	}
	// The documented rule: a marker covers its own line and the next
	// one (so trailing and above-the-statement placements both work).
	if !sup.allows(diag(5, "check")) {
		t.Errorf("suppression should cover the line after the comment")
	}
	// But no further.
	if sup.allows(diag(6, "check")) {
		t.Errorf("suppression reached two lines below the comment")
	}
	// Reason-less comments do not take effect and are reported.
	if sup.allows(diag(24, "check")) {
		t.Errorf("//lint:allow with no reason suppressed a finding")
	}
	if len(malformed) != 2 {
		t.Fatalf("MalformedAllows = %d findings, want 2 (no-reason and bare forms)", len(malformed))
	}
	for _, m := range malformed {
		if !strings.Contains(m.Message, "malformed //lint:allow") {
			t.Errorf("unexpected malformed-allow message %q", m.Message)
		}
	}
}

func TestSortDiagnostics(t *testing.T) {
	ds := []Diagnostic{
		{Analyzer: "b", Pos: token.Position{Filename: "a.go", Line: 2}},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 2}},
		{Analyzer: "z", Pos: token.Position{Filename: "a.go", Line: 1}},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 2}, Message: "x"},
	}
	sortDiagnostics(ds)
	if ds[0].Analyzer != "z" || ds[1].Analyzer != "a" || ds[1].Message != "" || ds[3].Analyzer != "b" {
		t.Errorf("unexpected order: %v", ds)
	}
}
