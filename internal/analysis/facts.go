package analysis

// The facts layer, modeled on golang.org/x/tools/go/analysis Facts:
// an analyzer running over package P can attach typed facts to P's
// exported objects (or to P itself) and read back the facts earlier
// runs attached to the objects of P's dependencies. Facts are what
// turn per-package analyzers into whole-module ones — lockorder's
// acquisition graph and goroleak's divergence markers both cross
// package boundaries through here.
//
// Facts are serialized (gob) the moment they are exported and
// deserialized on every import, exactly as they would be if written
// to disk between separate per-package driver invocations: an
// analyzer cannot smuggle un-serializable state (pointers into its
// own Pass) through the store, so the in-process driver keeps the
// same discipline a distributed one would need.
//
// Because this driver type-checks each package independently (the
// source importer re-reads dependencies), a types.Object for P.Foo
// seen while analyzing P is NOT pointer-identical to the one seen
// from an importer of P. Keys are therefore stable strings — package
// path + receiver + name — not object pointers; the same scheme
// x/tools implements with go/types/objectpath, restricted to the
// package-level objects and methods the suite needs.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum attached to an object or package. Implementations
// must be gob-serializable pointers; AFact is a marker method.
type Fact interface{ AFact() }

// factStore holds every fact exported during one Run, serialized.
type factStore struct {
	// obj: analyzer name -> object key -> encoded fact.
	obj map[string]map[string][]byte
	// pkg: analyzer name -> package path -> encoded fact.
	pkg map[string]map[string][]byte
}

func newFactStore() *factStore {
	return &factStore{
		obj: map[string]map[string][]byte{},
		pkg: map[string]map[string][]byte{},
	}
}

// ObjectKey returns the stable cross-package key for a package-level
// object or method, or "" for objects facts cannot attach to
// (locals, builtins, objects without a package).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	base := obj.Pkg().Path()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok {
				return ""
			}
			return base + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	// Only package-scope objects have stable keys.
	if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return base + "." + obj.Name()
}

func encodeFact(fact Fact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeFact(data []byte, fact Fact) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(fact)
}

// ExportObjectFact serializes fact and attaches it to obj for
// downstream passes of the same analyzer. Objects without a stable
// key (locals, builtins) are silently skipped. A second export to
// the same object overwrites the first.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.store == nil {
		return
	}
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	data, err := encodeFact(fact)
	if err != nil {
		panic(fmt.Sprintf("analysis: %s: unserializable fact %T: %v", p.Analyzer.Name, fact, err))
	}
	m := p.store.obj[p.Analyzer.Name]
	if m == nil {
		m = map[string][]byte{}
		p.store.obj[p.Analyzer.Name] = m
	}
	m[key] = data
}

// ImportObjectFact decodes the fact a prior pass of this analyzer
// attached to obj into fact, reporting whether one existed. obj may
// come from any type-checked copy of its package — identity is by
// stable key, not pointer.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.store == nil {
		return false
	}
	data, ok := p.store.obj[p.Analyzer.Name][ObjectKey(obj)]
	if !ok {
		return false
	}
	if err := decodeFact(data, fact); err != nil {
		panic(fmt.Sprintf("analysis: %s: decoding fact %T: %v", p.Analyzer.Name, fact, err))
	}
	return true
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.store == nil {
		return
	}
	data, err := encodeFact(fact)
	if err != nil {
		panic(fmt.Sprintf("analysis: %s: unserializable fact %T: %v", p.Analyzer.Name, fact, err))
	}
	m := p.store.pkg[p.Analyzer.Name]
	if m == nil {
		m = map[string][]byte{}
		p.store.pkg[p.Analyzer.Name] = m
	}
	m[p.Pkg.Path()] = data
}

// ImportPackageFact decodes the fact attached to the package with
// the given path, if any.
func (p *Pass) ImportPackageFact(pkgPath string, fact Fact) bool {
	if p.store == nil {
		return false
	}
	data, ok := p.store.pkg[p.Analyzer.Name][pkgPath]
	if !ok {
		return false
	}
	if err := decodeFact(data, fact); err != nil {
		panic(fmt.Sprintf("analysis: %s: decoding fact %T: %v", p.Analyzer.Name, fact, err))
	}
	return true
}

// ModulePass is handed to an Analyzer's Finish hook after every
// package has run: read access to the analyzer's exported facts plus
// position-anchored reporting for module-wide findings.
type ModulePass struct {
	Analyzer *Analyzer
	store    *factStore
	diags    []Diagnostic
}

// Report records a module-scope finding at an explicit position
// (Finish runs after all per-package syntax is gone, so positions
// travel through facts as token.Position values).
func (m *ModulePass) Report(pos token.Position, format string, args ...any) {
	m.diags = append(m.diags, Diagnostic{
		Analyzer: m.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// EachPackageFact decodes every package fact this analyzer exported,
// in deterministic (sorted package path) order. template's dynamic
// type names the concrete fact; each visit receives a fresh value.
func (m *ModulePass) EachPackageFact(template Fact, visit func(pkgPath string, fact Fact)) {
	byPkg := m.store.pkg[m.Analyzer.Name]
	paths := make([]string, 0, len(byPkg))
	for p := range byPkg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	tt := reflect.TypeOf(template)
	for _, path := range paths {
		fresh := reflect.New(tt.Elem()).Interface().(Fact)
		if err := decodeFact(byPkg[path], fresh); err != nil {
			panic(fmt.Sprintf("analysis: %s: decoding package fact %T for %s: %v", m.Analyzer.Name, template, path, err))
		}
		visit(path, fresh)
	}
}

// EachObjectFact decodes every object fact this analyzer exported,
// in deterministic (sorted object key) order.
func (m *ModulePass) EachObjectFact(template Fact, visit func(objKey string, fact Fact)) {
	byObj := m.store.obj[m.Analyzer.Name]
	keys := make([]string, 0, len(byObj))
	for k := range byObj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tt := reflect.TypeOf(template)
	for _, key := range keys {
		fresh := reflect.New(tt.Elem()).Interface().(Fact)
		if err := decodeFact(byObj[key], fresh); err != nil {
			panic(fmt.Sprintf("analysis: %s: decoding object fact %T for %s: %v", m.Analyzer.Name, template, key, err))
		}
		visit(key, fresh)
	}
}
