package lockhold_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer, "lockholdtest")
}
