// Package lockhold enforces the hot-path locking invariant from the
// scheduler/runtime design: code must not perform potentially
// unbounded blocking — channel sends/receives, selects without a
// default, net/disk I/O, time.Sleep, WaitGroup.Wait — while holding a
// sync.Mutex or sync.RWMutex, and must not return with a mutex still
// held unless the unlock is deferred. A blocked lock holder stalls
// every unit that touches the same mutex, which is exactly the
// convoy the balance-affinity scheduler exists to avoid.
//
// The check is a conservative, flow-insensitive walk over each
// function body: lock state is tracked linearly through statement
// lists and branch bodies inherit (a copy of) the state at entry.
// Function literals are analyzed as independent functions, since a
// goroutine body does not hold its creator's locks.
package lockhold

import (
	"go/ast"
	"go/types"

	"subtrav/internal/analysis"
)

// Analyzer reports blocking operations and lock-leaking returns
// performed while a sync mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "reports potentially blocking operations (channel ops, selects " +
		"without default, net/file I/O, time.Sleep, WaitGroup.Wait) while a " +
		"sync.Mutex/RWMutex is held, and returns that leak a lock with no " +
		"deferred unlock",
	Run: run,
}

// blockingFuncs maps "pkgpath.Name" of package-level functions that
// can block indefinitely.
var blockingFuncs = map[string]bool{
	"time.Sleep":      true,
	"net.Dial":        true,
	"net.DialTimeout": true,
	"net.Listen":      true,
	"io.Copy":         true,
	"io.ReadAll":      true,
	"io.ReadFull":     true,
}

// blockingMethods maps method names to the package path of receiver
// types on which they block (I/O on files, sockets and wrapped
// readers; synchronization waits).
var blockingMethods = map[string]map[string]bool{
	"Read":      {"os": true, "net": true, "bufio": true, "io": true},
	"ReadAt":    {"os": true},
	"ReadFrom":  {"os": true, "net": true, "bufio": true},
	"Write":     {"os": true, "net": true},
	"WriteAt":   {"os": true},
	"WriteTo":   {"net": true},
	"Flush":     {"bufio": true},
	"Sync":      {"os": true},
	"Accept":    {"net": true},
	"Wait":      {"sync": true, "os/exec": true},
	"ReadBytes": {"bufio": true},
	"ReadRune":  {"bufio": true},
	"ReadByte":  {"bufio": true},
}

type lockMode uint8

const (
	plainHeld    lockMode = iota // Lock()ed, no defer seen: returns leak it
	deferredHeld                 // defer Unlock() pending: returns are safe
)

// lockState maps a lock's receiver expression (printed form, e.g.
// "u.mu") to how it is currently held.
type lockState map[string]lockMode

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// anyHeld returns the lexically smallest held lock (deterministic
// pick when several are held) and whether any is held at all.
func (s lockState) anyHeld() (string, bool) {
	best := ""
	for k := range s {
		if best == "" || k < best {
			best = k
		}
	}
	return best, best != ""
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					w.block(n.Body.List, lockState{})
				}
				return false // nested FuncLits handled by the walk below
			}
			return true
		})
		// Analyze every function literal as its own function: a
		// closure (often a goroutine body) starts with no locks held.
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.block(lit.Body.List, lockState{})
			}
			return true
		})
	}
	return nil
}

type walker struct {
	pass *analysis.Pass
}

// block walks one statement list, threading lock state through it.
func (w *walker) block(stmts []ast.Stmt, locks lockState) {
	for _, s := range stmts {
		w.stmt(s, locks)
	}
}

func (w *walker) stmt(s ast.Stmt, locks lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind, ok := w.lockOp(call); ok {
				switch kind {
				case opLock:
					locks[key] = plainHeld
				case opUnlock:
					delete(locks, key)
				}
				return
			}
		}
		w.exprs(locks, s.X)

	case *ast.DeferStmt:
		if key, kind, ok := w.lockOp(s.Call); ok && kind == opUnlock {
			// defer mu.Unlock(): the lock survives to function exit
			// but early returns no longer leak it.
			if _, held := locks[key]; held {
				locks[key] = deferredHeld
			} else {
				// Lock().../defer Unlock() idiom where the Lock call
				// preceded in the same statement list was already
				// handled; defer before lock (rare) — treat as
				// deferred hold from here on.
				locks[key] = deferredHeld
			}
			return
		}
		// Deferred blocking calls run at return, after this walk's
		// scope; deliberately not flagged.

	case *ast.ReturnStmt:
		for key, mode := range locks {
			if mode == plainHeld {
				w.pass.Reportf(s.Pos(),
					"return while %s is locked with no deferred unlock; the lock leaks on this path", key)
			}
		}
		w.exprs(locks, returnExprs(s)...)

	case *ast.BranchStmt:
		// break/continue/goto while plainly locked can jump past the
		// unlock; flag continue/break out of the critical section is
		// noisy (loops commonly unlock before continue), so only
		// goto is treated as a leak risk. Conservatively ignore.

	case *ast.SendStmt:
		if key, held := locks.anyHeld(); held {
			w.pass.Reportf(s.Pos(), "channel send while %s is held; a full channel stalls every %s waiter", key, key)
		}
		w.exprs(locks, s.Value)

	case *ast.AssignStmt:
		w.exprs(locks, s.Rhs...)
		w.exprs(locks, s.Lhs...)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(locks, vs.Values...)
				}
			}
		}

	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, locks)
		}
		w.exprs(locks, s.Cond)
		w.block(s.Body.List, locks.clone())
		if s.Else != nil {
			w.stmt(s.Else, locks.clone())
		}

	case *ast.BlockStmt:
		w.block(s.List, locks)

	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, locks)
		}
		if s.Cond != nil {
			w.exprs(locks, s.Cond)
		}
		w.block(s.Body.List, locks.clone())

	case *ast.RangeStmt:
		if t := w.pass.TypesInfo.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				if key, held := locks.anyHeld(); held {
					w.pass.Reportf(s.Pos(), "range over channel while %s is held blocks until the channel closes", key)
				}
			}
		}
		w.exprs(locks, s.X)
		w.block(s.Body.List, locks.clone())

	case *ast.SelectStmt:
		if key, held := locks.anyHeld(); held && !hasDefault(s) {
			w.pass.Reportf(s.Pos(), "select with no default while %s is held can block indefinitely", key)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.block(cc.Body, locks.clone())
			}
		}

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, locks)
		}
		if s.Tag != nil {
			w.exprs(locks, s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, locks.clone())
			}
		}

	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(cc.Body, locks.clone())
			}
		}

	case *ast.LabeledStmt:
		w.stmt(s.Stmt, locks)

	case *ast.GoStmt:
		// The spawned goroutine does not hold our locks; its body is
		// analyzed separately as a fresh function literal. Arguments
		// are evaluated here, though.
		w.exprs(locks, s.Call.Args...)
	}
}

// exprs scans expressions evaluated while `locks` is the current
// state, flagging receives and blocking calls. Function literal
// bodies are skipped (analyzed independently).
func (w *walker) exprs(locks lockState, es ...ast.Expr) {
	key, held := locks.anyHeld()
	if !held {
		return
	}
	for _, e := range es {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					w.pass.Reportf(n.Pos(), "channel receive while %s is held; an empty channel stalls every %s waiter", key, key)
				}
			case *ast.CallExpr:
				if name, ok := w.blockingCall(n); ok {
					w.pass.Reportf(n.Pos(), "call to blocking %s while %s is held", name, key)
				}
			}
			return true
		})
	}
}

type lockOpKind uint8

const (
	opLock lockOpKind = iota
	opUnlock
)

// lockOp recognizes x.Lock/RLock/Unlock/RUnlock calls on
// sync.Mutex/RWMutex values and returns the receiver's printed form.
func (w *walker) lockOp(call *ast.CallExpr) (key string, kind lockOpKind, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", 0, false
	}
	t := w.pass.TypesInfo.TypeOf(sel.X)
	if t == nil || !isSyncMutex(t) {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// blockingCall reports whether call invokes a known-blocking API,
// returning a printable name.
func (w *walker) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := w.pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return "", false
	}
	if sig.Recv() == nil {
		full := fn.Pkg().Path() + "." + fn.Name()
		return full, blockingFuncs[full]
	}
	pkgs := blockingMethods[fn.Name()]
	if pkgs == nil {
		return "", false
	}
	// The receiver's defining package decides: (*os.File).Read,
	// (net.Conn).Read, (*bufio.Reader).Read all block.
	recv := sig.Recv().Type()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		if tp := named.Obj().Pkg(); tp != nil && pkgs[tp.Path()] {
			return "(" + tp.Path() + "." + named.Obj().Name() + ")." + fn.Name(), true
		}
	}
	// Interface receivers (net.Conn, io.Reader) resolve to the
	// interface's package via fn.Pkg().
	if pkgs[fn.Pkg().Path()] {
		return fn.Pkg().Path() + "." + fn.Name(), true
	}
	return "", false
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func returnExprs(r *ast.ReturnStmt) []ast.Expr { return r.Results }
