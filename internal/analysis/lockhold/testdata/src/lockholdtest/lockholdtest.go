// Package lockholdtest is an analysistest fixture for lockhold.
package lockholdtest

import (
	"net"
	"sync"
	"time"
)

type unit struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	queue chan int
	n     int
}

// Flagged: a send on a possibly-full channel stalls every mu waiter.
func (u *unit) sendUnderLock(v int) {
	u.mu.Lock()
	u.queue <- v // want "channel send while u.mu is held"
	u.mu.Unlock()
}

// Flagged: a receive can block forever while holding the lock.
func (u *unit) recvUnderLock() int {
	u.mu.Lock()
	v := <-u.queue // want "channel receive while u.mu is held"
	u.mu.Unlock()
	return v
}

// Allowed: move the blocking op outside the critical section.
func (u *unit) sendOutsideLock(v int) {
	u.mu.Lock()
	u.n++
	u.mu.Unlock()
	u.queue <- v
}

// Flagged: the early return leaks the lock on the n==0 path.
func (u *unit) leakyEarlyReturn() int {
	u.mu.Lock()
	if u.n == 0 {
		return 0 // want "return while u.mu is locked with no deferred unlock"
	}
	n := u.n
	u.mu.Unlock()
	return n
}

// Allowed: a deferred unlock makes every return path safe.
func (u *unit) deferredUnlock() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.n == 0 {
		return 0
	}
	return u.n
}

// Allowed: unlock-then-return inside the branch.
func (u *unit) branchUnlocks() int {
	u.mu.Lock()
	if u.n == 0 {
		u.mu.Unlock()
		return 0
	}
	n := u.n
	u.mu.Unlock()
	return n
}

// Flagged: select with no default can park the goroutine while
// holding the read lock.
func (u *unit) selectUnderRLock(stop chan struct{}) {
	u.rw.RLock()
	select { // want "select with no default while u.rw is held"
	case <-stop:
	case v := <-u.queue:
		u.n = v
	}
	u.rw.RUnlock()
}

// Allowed: a default arm makes the select non-blocking.
func (u *unit) nonBlockingSelect() {
	u.mu.Lock()
	select {
	case v := <-u.queue:
		u.n = v
	default:
	}
	u.mu.Unlock()
}

// Flagged: sleeping while holding a hot-path lock is a convoy.
func (u *unit) sleepUnderLock() {
	u.mu.Lock()
	time.Sleep(time.Millisecond) // want "call to blocking time.Sleep while u.mu is held"
	u.mu.Unlock()
}

// Flagged: socket I/O under a mutex ties lock hold time to the peer.
func (u *unit) readUnderLock(conn net.Conn, buf []byte) (int, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return conn.Read(buf) // want "call to blocking .*Read while u.mu is held"
}

// Allowed: a goroutine spawned under the lock does not hold it.
func (u *unit) spawnUnderLock() {
	u.mu.Lock()
	go func() {
		v := <-u.queue
		u.setN(v)
	}()
	u.mu.Unlock()
}

func (u *unit) setN(v int) {
	u.mu.Lock()
	u.n = v
	u.mu.Unlock()
}

// Allowed: a documented suppression (bounded by construction: the
// channel is buffered and drained by a dedicated goroutine).
func (u *unit) suppressedSend(v int) {
	u.mu.Lock()
	//lint:allow lockhold queue is buffered NumUnits deep and drained unconditionally
	u.queue <- v
	u.mu.Unlock()
}
