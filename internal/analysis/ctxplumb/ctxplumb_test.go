package ctxplumb_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/ctxplumb"
)

func TestCtxplumb(t *testing.T) {
	analysistest.Run(t, ctxplumb.Analyzer, "ctxplumbtest")
}
