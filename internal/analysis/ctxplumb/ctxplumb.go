// Package ctxplumb enforces context plumbing in library code: a
// function that already receives a context.Context (directly or by
// closing over an enclosing function's parameter) must thread it, not
// mint a fresh context.Background()/TODO() — a fresh root silently
// detaches the work from the caller's deadline and cancellation,
// which is how "cancelled" queries keep running and how the
// runtime's timed-out conservation counter drifts.
//
// Sites that intentionally start a new root (nil-ctx fallbacks in
// public entry points) document themselves with
// //lint:allow ctxplumb <reason>.
package ctxplumb

import (
	"go/ast"
	"go/types"

	"subtrav/internal/analysis"
)

// Analyzer reports context.Background/TODO calls made while a ctx
// parameter is lexically in scope.
var Analyzer = &analysis.Analyzer{
	Name: "ctxplumb",
	Doc: "reports context.Background()/context.TODO() in functions that have " +
		"a context.Context parameter in scope (including enclosing closures); " +
		"thread the existing ctx so deadlines and cancellation propagate",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		walk(pass, file, nil)
	}
	return nil
}

// walk descends the file tracking the stack of context-typed
// parameters in scope; ctxInScope is the innermost visible set.
func walk(pass *analysis.Pass, n ast.Node, ctxInScope []*types.Var) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			params := ctxParams(pass, n.Type)
			if n.Body != nil {
				walk(pass, n.Body, params) // fresh scope: decls don't nest
			}
			return false
		case *ast.FuncLit:
			// Closures capture enclosing ctx parameters.
			walk(pass, n.Body, append(ctxInScope, ctxParams(pass, n.Type)...))
			return false
		case *ast.CallExpr:
			fn := pass.Callee(n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); (name == "Background" || name == "TODO") && len(ctxInScope) > 0 {
				pass.Reportf(n.Pos(),
					"context.%s() while %q is in scope detaches this work from the caller's deadline and cancellation; pass %s through",
					name, ctxInScope[len(ctxInScope)-1].Name(), ctxInScope[len(ctxInScope)-1].Name())
			}
		}
		return true
	})
}

// ctxParams returns the parameters of ft whose type is
// context.Context.
func ctxParams(pass *analysis.Pass, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if ok && isContext(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
