// Package ctxplumbtest is an analysistest fixture for ctxplumb.
package ctxplumbtest

import "context"

type store struct{}

func (s *store) get(ctx context.Context, key string) (string, error) {
	_ = ctx
	return key, nil
}

// Flagged: a fresh root discards the caller's deadline.
func lookup(ctx context.Context, s *store, key string) (string, error) {
	return s.get(context.Background(), key) // want "context.Background.. while .ctx. is in scope"
}

// Flagged: TODO is the same detachment with a different name.
func lookupTODO(ctx context.Context, s *store, key string) (string, error) {
	return s.get(context.TODO(), key) // want "context.TODO.. while .ctx. is in scope"
}

// Flagged: closures capture the enclosing ctx parameter.
func lookupAsync(ctx context.Context, s *store, key string) <-chan string {
	out := make(chan string, 1)
	go func() {
		v, _ := s.get(context.Background(), key) // want "context.Background.. while .ctx. is in scope"
		out <- v
	}()
	return out
}

// Allowed: thread the ctx that is in scope.
func lookupPlumbed(ctx context.Context, s *store, key string) (string, error) {
	return s.get(ctx, key)
}

// Allowed: no ctx in scope — this is an entry point that owns its
// root context.
func lookupEntry(s *store, key string) (string, error) {
	return s.get(context.Background(), key)
}

// Allowed: documented nil-guard suppression, the repo's one blessed
// pattern for optional contexts on public API boundaries.
func lookupOptionalCtx(ctx context.Context, s *store, key string) (string, error) {
	if ctx == nil {
		//lint:allow ctxplumb nil-ctx fallback: caller opted out of cancellation
		ctx = context.Background()
	}
	return s.get(ctx, key)
}
