package atomicmix_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "atomicmixtest")
}
