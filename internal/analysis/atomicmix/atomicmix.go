// Package atomicmix enforces the observability layer's access
// discipline: a variable (struct field, package-level or local) that
// is touched through sync/atomic anywhere in a package must be
// touched through sync/atomic everywhere in that package. Mixing
// atomic.AddInt64(&x.n, 1) with a plain x.n read is a data race the
// race detector only catches when the interleaving actually occurs;
// this check catches it structurally. (Typed atomics — atomic.Int64
// and friends — make the mix impossible and are the preferred fix.)
package atomicmix

import (
	"go/ast"
	"go/types"

	"subtrav/internal/analysis"
)

// Analyzer reports variables accessed both atomically and plainly.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "reports variables accessed via sync/atomic in one place and by " +
		"plain load/store in another within the same package; migrate the " +
		"field to a typed atomic (atomic.Int64 etc.) or make every access atomic",
	Run: run,
}

// atomicFuncs are the sync/atomic package-level functions whose first
// argument is the address of the guarded variable.
var atomicFuncs = map[string]bool{}

func init() {
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			atomicFuncs[op+ty] = true
		}
	}
}

func run(pass *analysis.Pass) error {
	// Pass 1: find every &v handed to a sync/atomic call; remember
	// the variable object and exempt that syntactic reference.
	atomicAt := map[*types.Var]ast.Node{} // first atomic access site
	exempt := map[ast.Expr]bool{}         // refs that ARE the atomic access
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := pass.Callee(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicFuncs[fn.Name()] {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok {
				return true
			}
			ref := ast.Unparen(addr.X)
			if v := refVar(pass.TypesInfo, ref); v != nil {
				if _, seen := atomicAt[v]; !seen {
					atomicAt[v] = call
				}
				exempt[ref] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: any other reference to those variables is a plain
	// access. (&v escaping to a non-atomic callee counts too: once
	// the address leaks, atomicity cannot be guaranteed.)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if exempt[expr] {
				return false // the sanctioned atomic access itself
			}
			// Only consider the outermost selector of a chain so
			// x.f reports once, not for x and x.f separately.
			switch expr.(type) {
			case *ast.SelectorExpr, *ast.Ident:
			default:
				return true
			}
			v := refVar(pass.TypesInfo, expr)
			if v == nil {
				return true
			}
			site, tracked := atomicAt[v]
			if !tracked {
				return true
			}
			pass.Reportf(expr.Pos(),
				"%s is accessed with sync/atomic at %s but plainly here; use a typed atomic or make every access atomic",
				v.Name(), pass.Fset.Position(site.Pos()))
			return false // don't descend into x of x.f
		})
	}
	return nil
}

// refVar resolves an identifier or field selector to the variable it
// denotes, returning nil for anything else (calls, indexing, ...).
func refVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := e.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		// Package-qualified var (pkg.V).
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}
