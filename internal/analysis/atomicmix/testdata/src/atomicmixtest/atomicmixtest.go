// Package atomicmixtest is an analysistest fixture for atomicmix.
package atomicmixtest

import "sync/atomic"

// counters mixes access styles on `mixed` (bug) while `clean` is
// always atomic and `typed` cannot be misused.
type counters struct {
	mixed int64
	clean int64
	typed atomic.Int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.mixed, 1)
	atomic.AddInt64(&c.clean, 1)
	c.typed.Add(1)
}

// Flagged: plain read of a field that bump() touches atomically.
func (c *counters) snapshot() int64 {
	return c.mixed // want "mixed is accessed with sync/atomic at .* but plainly here"
}

// Flagged: plain write is just as racy as a plain read.
func (c *counters) reset() {
	c.mixed = 0 // want "mixed is accessed with sync/atomic"
}

// Allowed: every access to clean goes through sync/atomic.
func (c *counters) cleanSnapshot() int64 {
	return atomic.LoadInt64(&c.clean)
}

// Allowed: typed atomics make plain access impossible.
func (c *counters) typedSnapshot() int64 {
	return c.typed.Load()
}

// Package-level variables are tracked too.
var hits int64

func recordHit() {
	atomic.AddInt64(&hits, 1)
}

func hitCount() int64 {
	return hits // want "hits is accessed with sync/atomic"
}

// Allowed: a documented suppression (single-threaded teardown path).
func drainHits() int64 {
	//lint:allow atomicmix read happens after all writers have joined
	n := hits
	return n
}
