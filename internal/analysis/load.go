package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	// Imports are the package's direct imports (import paths), used
	// by Run to analyze dependencies before their importers so facts
	// flow downstream.
	Imports []string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks packages of the enclosing module
// using only the standard library: `go list -json` for metadata and
// the go/importer source importer for dependencies. All packages
// loaded through one Loader share a FileSet and an importer cache.
type Loader struct {
	initOnce sync.Once
	fset     *token.FileSet
	imp      types.ImporterFrom
	modDir   string
	initErr  error
}

// NewLoader creates a Loader rooted at the module containing dir
// (empty means the current directory).
func NewLoader(dir string) *Loader {
	return &Loader{modDir: dir}
}

func (l *Loader) init() error {
	l.initOnce.Do(func() {
		// The source importer resolves module import paths by
		// shelling out to the go command from the context directory;
		// cgo-tagged files would require running cgo, so force the
		// pure-Go build configuration (every dependency of this repo
		// has one).
		build.Default.CgoEnabled = false
		if l.modDir == "" {
			l.modDir = "."
		}
		abs, err := filepath.Abs(l.modDir)
		if err != nil {
			l.initErr = err
			return
		}
		l.modDir = abs
		build.Default.Dir = abs
		l.fset = token.NewFileSet()
		imp, ok := importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
		if !ok {
			l.initErr = fmt.Errorf("analysis: source importer does not implement ImporterFrom")
		}
		l.imp = imp
	})
	return l.initErr
}

// Fset returns the shared FileSet (valid after the first Load).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...", "subtrav/internal/sim") to
// packages and type-checks each one. Test files are not loaded: the
// suite vets production code, and wall-clock or randomness use in
// tests is legitimate.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if err := l.init(); err != nil {
		return nil, err
	}
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,Imports,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.modDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.Name = lp.Name
		pkg.Imports = lp.Imports
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks every non-test .go file directly
// under dir as a single package named by importPath. Used by the
// analysistest harness, whose fixture packages live in testdata
// directories the go tool will not list.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	if err := l.init(); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	pkg, err := l.check(importPath, dir, files)
	if err != nil {
		return nil, err
	}
	if len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].Name.Name
	}
	return pkg, nil
}

func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: contextImporter{imp: l.imp, dir: dir},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	return &Package{
		PkgPath: importPath,
		Dir:     dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// contextImporter pins the source importer's resolution directory to
// the directory of the package under analysis, so relative and
// module-internal import paths resolve the same way `go build` would
// from that package.
type contextImporter struct {
	imp types.ImporterFrom
	dir string
}

func (c contextImporter) Import(path string) (*types.Package, error) {
	return c.imp.ImportFrom(path, c.dir, 0)
}

func (c contextImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if dir == "" {
		dir = c.dir
	}
	return c.imp.ImportFrom(path, dir, mode)
}
