// Package analysistest runs an analyzer over a fixture package and
// checks its findings against expectations embedded in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//   - a line that should be flagged carries a trailing
//     `// want "regexp"` comment; the regexp must match the
//     diagnostic's message and every diagnostic must be wanted;
//   - a line carrying `//lint:allow <analyzer> <reason>` (and no
//     want) asserts the suppression machinery swallows the finding.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/ — directories
// the go tool ignores, so fixture code may freely violate the very
// invariants the suite enforces without tripping subtrav-vet runs
// over ./...
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"subtrav/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run loads testdata/src/<pkg> relative to the test's working
// directory, applies the analyzer (with suppressions honored), and
// reports any mismatch between actual findings and // want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	loader := analysis.NewLoader(".")
	loaded, err := loader.LoadDir("subtravvet.test/"+pkg, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Package{loaded},
		[]*analysis.Analyzer{a}, map[string]analysis.Scope{a.Name: {}})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, dir)

	matched := map[string]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		w, ok := wants[key]
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
			continue
		}
		if !w.re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", key, d.Message, w.pattern)
		}
		matched[key] = true
	}
	for key, w := range wants {
		if !matched[key] {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, w.pattern)
		}
	}
}

type want struct {
	pattern string
	re      *regexp.Regexp
}

// collectWants scans fixture sources for // want comments, keyed by
// "file.go:line".
func collectWants(t *testing.T, dir string) map[string]want {
	t.Helper()
	wants := map[string]want{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pattern := strings.ReplaceAll(m[1], `\"`, `"`)
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pattern, err)
			}
			wants[fmt.Sprintf("%s:%d", e.Name(), i+1)] = want{pattern: pattern, re: re}
		}
	}
	return wants
}
