// Package metriclabel vets internal/obs registry call sites: metric
// names must be compile-time constants following the repo convention
// (subtrav_ prefix, Prometheus-safe characters, counters end in
// _total, no reserved exposition suffixes), and label values must not
// be derived from unbounded domains. A label minted per query ID —
// or per iteration of an unbounded loop — creates a new series per
// value, which grows the registry without bound and turns every
// scrape into a full walk of it: an unbounded-cardinality leak, the
// classic way an observability layer takes down the system it
// observes.
package metriclabel

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"subtrav/internal/analysis"
)

// Analyzer checks obs metric names and label cardinality.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabel",
	Doc: "checks internal/obs registry call sites: constant subtrav_-prefixed " +
		"metric names (counters ending _total, no reserved suffixes), constant " +
		"label keys, and label values not derived from query/task IDs or " +
		"loop variables (unbounded cardinality)",
	Run: run,
}

const obsPath = "subtrav/internal/obs"

// registryMethods maps *obs.Registry method names to whether the
// family is a counter (name must end in _total).
var registryMethods = map[string]bool{
	"Counter":           true,
	"CounterFunc":       true,
	"Gauge":             false,
	"GaugeFunc":         false,
	"FloatGauge":        false,
	"Histogram":         false,
	"RegisterHistogram": false,
}

var (
	nameRE = regexp.MustCompile(`^subtrav_[a-z0-9_]+$`)
	keyRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	// unboundedRef matches identifiers/selectors that smell like
	// per-query or per-task identity: queryID, q.QueryID, taskID,
	// req.ID, qid... Tenant and user identity (tenantName, userID)
	// counts too: clients mint those freely, so a label fed straight
	// from one grows the registry without bound — fold through a
	// capped bucket table first (see live's tenantState). The unit
	// index (u.id, bounded by the unit count) deliberately does not
	// match.
	unboundedRef = regexp.MustCompile(`(?i)(query|task|request|req)[a-zA-Z_]*id|\bqid\b|(?i)(tenant|user)[a-zA-Z_]*(id|name)\b`)
)

// reservedSuffixes collide with the histogram exposition series the
// registry itself emits.
var reservedSuffixes = []string{"_bucket", "_sum", "_count"}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// Track the stack of enclosing for/range statements so label
		// values referencing a loop variable can be flagged.
		var loops []ast.Stmt
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n.(ast.Stmt))
				for _, c := range children(n) {
					ast.Inspect(c, visit)
				}
				loops = loops[:len(loops)-1]
				return false
			case *ast.CallExpr:
				checkCall(pass, n, loops)
			}
			return true
		}
		ast.Inspect(file, visit)
	}
	return nil
}

// children returns the loop's body and clause nodes for traversal.
func children(n ast.Node) []ast.Node {
	switch n := n.(type) {
	case *ast.ForStmt:
		out := []ast.Node{}
		if n.Init != nil {
			out = append(out, n.Init)
		}
		if n.Cond != nil {
			out = append(out, n.Cond)
		}
		if n.Post != nil {
			out = append(out, n.Post)
		}
		return append(out, n.Body)
	case *ast.RangeStmt:
		return []ast.Node{n.X, n.Body}
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, loops []ast.Stmt) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return
	}
	if fn.Name() == "L" {
		checkLabelPair(pass, call, loops)
		return
	}
	isCounter, isRegistry := registryMethods[fn.Name()]
	if !isRegistry || !isRegistryMethod(fn) || len(call.Args) == 0 {
		return
	}
	checkName(pass, call.Args[0], fn.Name(), isCounter)
}

func isRegistryMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

func checkName(pass *analysis.Pass, arg ast.Expr, method string, isCounter bool) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(),
			"metric name passed to Registry.%s is not a compile-time constant; dynamic names create unbounded metric families", method)
		return
	}
	name := constant.StringVal(tv.Value)
	if !nameRE.MatchString(name) {
		pass.Reportf(arg.Pos(),
			"metric name %q violates the naming convention %s", name, nameRE)
		return
	}
	for _, suf := range reservedSuffixes {
		if strings.HasSuffix(name, suf) {
			pass.Reportf(arg.Pos(),
				"metric name %q ends in %q, which the exposition format reserves for histogram series", name, suf)
			return
		}
	}
	if isCounter && !strings.HasSuffix(name, "_total") {
		pass.Reportf(arg.Pos(), "counter %q must end in _total", name)
	}
	if !isCounter && strings.HasSuffix(name, "_total") {
		pass.Reportf(arg.Pos(), "non-counter %q must not end in _total", name)
	}
}

// checkLabelPair vets one obs.L(key, value) construction.
func checkLabelPair(pass *analysis.Pass, call *ast.CallExpr, loops []ast.Stmt) {
	if len(call.Args) != 2 {
		return
	}
	keyArg, valArg := call.Args[0], call.Args[1]

	if tv, ok := pass.TypesInfo.Types[keyArg]; !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(keyArg.Pos(), "label key is not a compile-time constant")
	} else if key := constant.StringVal(tv.Value); !keyRE.MatchString(key) {
		pass.Reportf(keyArg.Pos(), "label key %q violates the naming convention %s", key, keyRE)
	}

	// A constant value is always bounded.
	if tv, ok := pass.TypesInfo.Types[valArg]; ok && tv.Value != nil {
		return
	}
	// Heuristic 1: the value's text references per-query identity.
	if ref := unboundedExprRef(valArg); ref != "" {
		pass.Reportf(valArg.Pos(),
			"label value derives from %q: one series per query/task is unbounded cardinality; aggregate into a histogram or drop the label", ref)
		return
	}
	// Heuristic 2: the value references a surrounding loop's
	// variable — one series per iteration.
	if len(loops) > 0 {
		if v := loopVarRef(pass, valArg, loops); v != "" {
			pass.Reportf(valArg.Pos(),
				"label value derives from loop variable %q: series count grows with the iteration space; ensure the loop is bounded or drop the label", v)
		}
	}
}

// unboundedExprRef returns the first identifier path in e matching
// the per-query identity heuristic, or "".
func unboundedExprRef(e ast.Expr) string {
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if s := types.ExprString(n); unboundedRef.MatchString(s) {
				found = s
				return false
			}
		case *ast.Ident:
			if unboundedRef.MatchString(n.Name) {
				found = n.Name
				return false
			}
		}
		return true
	})
	return found
}

// loopVarRef returns the name of a loop-declared variable referenced
// by e, or "".
func loopVarRef(pass *analysis.Pass, e ast.Expr, loops []ast.Stmt) string {
	loopVars := map[types.Object]bool{}
	collect := func(x ast.Expr) {
		if id, ok := x.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = true
			}
		}
	}
	for _, l := range loops {
		switch l := l.(type) {
		case *ast.RangeStmt:
			collect(l.Key)
			collect(l.Value)
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					collect(lhs)
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return ""
	}
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && loopVars[obj] {
				found = id.Name
			}
		}
		return true
	})
	return found
}
