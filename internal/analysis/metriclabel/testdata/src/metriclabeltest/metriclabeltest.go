// Package metriclabeltest is an analysistest fixture for
// metriclabel. It imports the real internal/obs package so the
// analyzer matches genuine *obs.Registry call sites.
package metriclabeltest

import (
	"fmt"
	"strconv"

	"subtrav/internal/obs"
)

type worker struct {
	queryID int64
	userID  string
}

func wire(reg *obs.Registry, w *worker, units []int) {
	// Allowed: constant, convention-following names.
	good := reg.Counter("subtrav_fixture_requests_total", "Requests seen.")
	good.Inc()
	reg.Gauge("subtrav_fixture_depth", "Queue depth.")

	// Flagged: name convention violations.
	reg.Counter("fixture_requests_total", "Missing prefix.")   // want "violates the naming convention"
	reg.Counter("subtrav_fixture_requests", "Not a _total.")   // want "counter .* must end in _total"
	reg.Gauge("subtrav_fixture_depth_total", "Gauge as total") // want "non-counter .* must not end in _total"
	reg.Histogram("subtrav_fixture_wait_sum", "Reserved.")     // want "reserves for histogram series"

	// Flagged: a dynamic name is an unbounded family.
	name := fmt.Sprintf("subtrav_fixture_%d_total", w.queryID)
	reg.Counter(name, "Dynamic.") // want "not a compile-time constant"

	// Allowed: per-unit labels are bounded by the unit count.
	reg.Counter("subtrav_fixture_unit_hits_total", "Per unit.",
		obs.L("unit", strconv.Itoa(units[0])))

	// Flagged: label key convention.
	reg.Counter("subtrav_fixture_bad_key_total", "Bad key.",
		obs.L("Unit-ID", "0")) // want "label key .* violates the naming convention"

	// Flagged: one series per query is a cardinality leak.
	reg.Counter("subtrav_fixture_per_query_total", "Per query!",
		obs.L("query", fmt.Sprintf("%d", w.queryID))) // want "label value derives from .*: one series per query/task"

	// Flagged: series count grows with the iteration space.
	for i := range units {
		reg.Counter("subtrav_fixture_loop_total", "Per iteration!",
			obs.L("slot", strconv.Itoa(i))) // want "label value derives from loop variable"
	}

	// Allowed: constant label values inside a loop are fine (same
	// series each iteration).
	for range units {
		obs.L("kind", "fixed")
	}

	// Allowed: non-constant value with no identity/loop smell — the
	// mode domain is three fixed values.
	mode := modeName(len(units))
	reg.Counter("subtrav_fixture_mode_total", "By mode.", obs.L("mode", mode))

	// FloatGauge and RegisterHistogram are registry methods too: same
	// name rules.
	reg.FloatGauge("subtrav_fixture_ratio", "A ratio.")
	reg.FloatGauge("subtrav_fixture_ratio_total", "Bad.") // want "non-counter .* must not end in _total"
	reg.RegisterHistogram("subtrav_fixture_margin", "External digest.", obs.NewHistogram())
	reg.RegisterHistogram("subtrav_fixture_margin_count", "Reserved.", obs.NewHistogram()) // want "reserves for histogram series"

	// Flagged: tenant/user identity is client-minted, so a label fed
	// straight from it is unbounded cardinality.
	tenantName := requestTenant()
	reg.Counter("subtrav_fixture_tenant_total", "Per tenant!",
		obs.L("tenant", tenantName)) // want "label value derives from .*: one series per query/task"
	reg.Gauge("subtrav_fixture_user_depth", "Per user!",
		obs.L("user", w.userID)) // want "label value derives from .*: one series per query/task"

	// Allowed: the tenant label fed from a bounded fold (capped bucket
	// table) — the variable carries no identity smell because it is
	// not the raw client-supplied name.
	bucket := foldTenant(requestTenant())
	reg.Counter("subtrav_fixture_tenant_ok_total", "Bounded per-tenant.",
		obs.L("tenant", bucket))

	// Allowed: documented suppression swallows a would-be finding (a
	// debug registry deliberately keyed by query, bounded elsewhere).
	//lint:allow metriclabel debug-only registry capped at 64 series by the harness
	reg.Counter("subtrav_fixture_debug_total", "Debug.", obs.L("query", strconv.FormatInt(w.queryID, 10)))
}

func requestTenant() string { return "whatever-the-client-sent" }

// foldTenant models the bounded tenant→bucket fold (32 + overflow).
func foldTenant(s string) string {
	if len(s) > 4 {
		return "overflow"
	}
	return s
}

func modeName(n int) string {
	switch {
	case n == 0:
		return "off"
	case n < 8:
		return "sample"
	default:
		return "full"
	}
}
