package metriclabel_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/metriclabel"
)

func TestMetriclabel(t *testing.T) {
	analysistest.Run(t, metriclabel.Analyzer, "metriclabeltest")
}
