package cfg

// Forward dataflow over the graph: a may-analysis with set union as
// the join, iterated with a worklist in reverse postorder until
// fixpoint. The lattice is a set of analyzer-defined facts (any
// comparable key — a *types.Var for taint, a lock class string for
// acquisition state); transfer functions are arbitrary, with a
// gen/kill convenience for the common bit-vector shape.

// FactSet is a set of dataflow facts. Keys must be comparable.
type FactSet map[any]bool

// Clone returns an independent copy.
func (s FactSet) Clone() FactSet {
	c := make(FactSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// Union adds every fact of o to s and reports whether s changed.
func (s FactSet) Union(o FactSet) bool {
	changed := false
	for k := range o {
		if !s[k] {
			s[k] = true
			changed = true
		}
	}
	return changed
}

// Equal reports set equality.
func (s FactSet) Equal(o FactSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// TransferFunc computes a block's out-set from its in-set. It must
// treat in as read-only and return a fresh (or unaliased) set.
type TransferFunc func(b *Block, in FactSet) FactSet

// GenKill is the classic bit-vector transfer: out = (in \ Kill) ∪ Gen.
type GenKill struct {
	Gen  FactSet
	Kill FactSet
}

// Transfer applies the gen/kill equation to in.
func (gk GenKill) Transfer(in FactSet) FactSet {
	out := make(FactSet, len(in)+len(gk.Gen))
	for k := range in {
		if !gk.Kill[k] {
			out[k] = true
		}
	}
	for k := range gk.Gen {
		out[k] = true
	}
	return out
}

// GenKillTransfer lifts a per-block gen/kill summary into a
// TransferFunc, computing each block's summary once and caching it.
func GenKillTransfer(summarize func(b *Block) GenKill) TransferFunc {
	cache := map[*Block]GenKill{}
	return func(b *Block, in FactSet) FactSet {
		gk, ok := cache[b]
		if !ok {
			gk = summarize(b)
			cache[b] = gk
		}
		return gk.Transfer(in)
	}
}

// Forward runs the transfer function to fixpoint and returns each
// reachable block's in-set (the join over predecessors' out-sets;
// entry's in-set is the given entry facts). Blocks unreachable from
// Entry are absent from the result.
func Forward(g *Graph, entry FactSet, transfer TransferFunc) map[*Block]FactSet {
	rpo := g.ReversePostorder()
	order := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	in := make(map[*Block]FactSet, len(rpo))
	out := make(map[*Block]FactSet, len(rpo))
	in[g.Entry] = entry.Clone()

	// Worklist seeded in reverse postorder; re-queue on change.
	queued := make([]bool, len(rpo))
	list := make([]*Block, len(rpo))
	copy(list, rpo)
	for i := range queued {
		queued[i] = true
	}
	for len(list) > 0 {
		// Pop the lowest reverse-postorder index for fast convergence.
		best := 0
		for i := 1; i < len(list); i++ {
			if order[list[i]] < order[list[best]] {
				best = i
			}
		}
		b := list[best]
		list[best] = list[len(list)-1]
		list = list[:len(list)-1]
		queued[order[b]] = false

		ib := in[b]
		if ib == nil {
			ib = FactSet{}
			in[b] = ib
		}
		ob := transfer(b, ib)
		if prev, ok := out[b]; ok && prev.Equal(ob) {
			continue
		}
		out[b] = ob
		for _, s := range b.Succs {
			si, ok := order[s]
			if !ok {
				continue // unreachable successor (cannot happen from a reachable block, but be safe)
			}
			is := in[s]
			if is == nil {
				is = FactSet{}
				in[s] = is
			}
			if is.Union(ob) && !queued[si] {
				queued[si] = true
				list = append(list, s)
			}
		}
	}
	return in
}
