// Package cfg builds intra-function control-flow graphs over
// go/ast statement lists and runs forward dataflow analyses over
// them. It is the flow-aware substrate under the subtrav-vet
// analyzers that a purely syntactic walk cannot express: "is this
// value checked on every path before it reaches make", "can this
// goroutine body ever reach its exit".
//
// The graph is conventional: a function body is partitioned into
// basic blocks of straight-line statements; branch statements end a
// block and contribute edges (both arms of an if, loop back-edges and
// exits, every case of a switch/select, goto/labeled break/continue
// targets); return and panic edge to the synthetic Exit block. A
// `for` with no condition contributes only its back-edge, so code
// after an escape-free infinite loop is correctly unreachable, and a
// `select {}` with no cases has no successors at all. Deferred calls
// are recorded on the graph and replayed as the Exit block's
// statements, so a forward analysis observes them with the join of
// every terminating path as input — exactly the state a real defer
// runs under.
//
// Like the parent analysis package, this is a dependency-free
// miniature of golang.org/x/tools/go/cfg (plus the solver x/tools
// leaves to the caller); the shape matches so a later migration is
// mechanical.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks in creation order; Blocks[0] is Entry. The Exit block is
	// always present and always last-created (but not necessarily
	// last in a traversal).
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement encountered, in source
	// order. Their call expressions are also the Exit block's Stmts.
	Defers []*ast.DeferStmt
}

// Block is one basic block.
type Block struct {
	Index int
	// Kind names what created the block ("entry", "exit", "if.then",
	// "for.body", "select.comm", ...) for debugging and test pinning.
	Kind string
	// Stmts are the straight-line statements executed in order.
	// Branch statements themselves are not included; their condition
	// lives in Cond.
	Stmts []ast.Stmt
	// Cond is the branch condition evaluated at the end of this
	// block, if it ends in a conditional branch (if / for cond).
	// Successor 0 is the true edge, successor 1 the false edge.
	Cond ast.Expr
	// Succs are the control-flow successors.
	Succs []*Block
	// Preds are the control-flow predecessors.
	Preds []*Block
}

func (g *Graph) newBlock(kind string) *Block {
	b := &Block{Index: len(g.Blocks), Kind: kind}
	g.Blocks = append(g.Blocks, b)
	return b
}

func addEdge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label          string // enclosing label, "" if none
	breakTarget    *Block
	continueTarget *Block // nil for switch/select frames
}

type builder struct {
	g   *Graph
	cur *Block // nil while code is unreachable
	// frames is the stack of enclosing break/continue targets.
	frames []loopFrame
	// labels maps label names to their goto target blocks (created
	// lazily, so forward gotos resolve).
	labels map[string]*Block
}

// New builds the control-flow graph of a function body. A nil body
// (declaration without body) yields a two-block entry→exit graph.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = g.newBlock("entry")
	g.Exit = g.newBlock("exit")
	b.cur = g.Entry
	if body != nil {
		b.stmts(body.List, "")
	}
	// Falling off the end of the body reaches exit.
	addEdge(b.cur, g.Exit)
	for _, d := range g.Defers {
		g.Exit.Stmts = append(g.Exit.Stmts, &ast.ExprStmt{X: d.Call})
	}
	return g
}

// block ensures there is a current block to append to, creating a
// fresh unreachable one if control cannot reach here (so statements
// after a return still land in *some* block; it just has no preds).
func (b *builder) block(kind string) *Block {
	if b.cur == nil {
		b.cur = b.g.newBlock(kind + ".unreachable")
	}
	return b.cur
}

func (b *builder) stmts(list []ast.Stmt, label string) {
	for i, s := range list {
		// Only the first statement of the list can consume the label
		// (a label binds to exactly one statement).
		if i > 0 {
			label = ""
		}
		b.stmt(s, label)
	}
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		// Create (or claim) the label's target block so gotos can
		// jump here, then build the labeled statement with the label
		// visible to its break/continue frames.
		target := b.labelBlock(s.Label.Name)
		addEdge(b.cur, target)
		b.cur = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		b.block("return").Stmts = append(b.block("return").Stmts, s)
		addEdge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			addEdge(b.cur, b.labelBlock(s.Label.Name))
			b.cur = nil
		case token.BREAK:
			if t := b.findFrame(s.Label, false); t != nil {
				addEdge(b.cur, t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t := b.findFrame(s.Label, true); t != nil {
				addEdge(b.cur, t)
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Keep the current block alive; the switch builder links
			// it to the next case body.
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		cur := b.block("body")
		cur.Stmts = append(cur.Stmts, s)

	case *ast.ExprStmt:
		cur := b.block("body")
		cur.Stmts = append(cur.Stmts, s)
		if isPanicOrExit(s.X) {
			addEdge(b.cur, b.g.Exit)
			b.cur = nil
		}

	case *ast.IfStmt:
		cur := b.block("if")
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Cond = s.Cond
		then := b.g.newBlock("if.then")
		addEdge(cur, then)
		var els *Block
		if s.Else != nil {
			els = b.g.newBlock("if.else")
			addEdge(cur, els)
		}
		join := b.g.newBlock("if.join")
		if s.Else == nil {
			addEdge(cur, join)
		}
		b.cur = then
		b.stmts(s.Body.List, "")
		addEdge(b.cur, join)
		if els != nil {
			b.cur = els
			b.stmt(s.Else, "")
			addEdge(b.cur, join)
		}
		b.cur = join
		if len(join.Preds) == 0 {
			// Both arms diverge; anything after is unreachable.
			b.cur = nil
		}

	case *ast.ForStmt:
		if s.Init != nil {
			b.block("for").Stmts = append(b.block("for").Stmts, s.Init)
		}
		head := b.g.newBlock("for.head")
		addEdge(b.cur, head)
		body := b.g.newBlock("for.body")
		exit := b.g.newBlock("for.exit")
		post := head
		if s.Post != nil {
			post = b.g.newBlock("for.post")
			post.Stmts = append(post.Stmts, s.Post)
			addEdge(post, head)
		}
		head.Cond = s.Cond
		addEdge(head, body)
		if s.Cond != nil {
			addEdge(head, exit)
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: exit, continueTarget: post})
		b.cur = body
		b.stmts(s.Body.List, "")
		addEdge(b.cur, post)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit
		if len(exit.Preds) == 0 {
			b.cur = nil // for {} with no break: nothing follows
		}

	case *ast.RangeStmt:
		head := b.g.newBlock("range.head")
		// The ranged expression is evaluated once on entry; surface
		// it (and the key/value assignment) to analyses as a
		// synthetic statement in the head block.
		head.Stmts = append(head.Stmts, s)
		addEdge(b.cur, head)
		body := b.g.newBlock("range.body")
		exit := b.g.newBlock("range.exit")
		// A range loop always has a natural exit edge: the sequence
		// ends (or, for a channel, the channel is closed).
		addEdge(head, body)
		addEdge(head, exit)
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: exit, continueTarget: head})
		b.cur = body
		b.stmts(s.Body.List, "")
		addEdge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var clauses []ast.Stmt
		kind := "switch"
		var tagStmt ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init = sw.Init
			if sw.Tag != nil {
				// Record tag evaluation as a synthetic statement.
				tagStmt = &ast.ExprStmt{X: sw.Tag}
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			init = sw.Init
			tagStmt = sw.Assign
			clauses = sw.Body.List
			kind = "typeswitch"
		}
		head := b.block(kind)
		if init != nil {
			head.Stmts = append(head.Stmts, init)
		}
		if tagStmt != nil {
			head.Stmts = append(head.Stmts, tagStmt)
		}
		exit := b.g.newBlock(kind + ".exit")
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: exit})
		hasDefault := false
		var bodies []*Block
		var ends []*Block // end-block of each case body (for fallthrough)
		var falls []bool
		for _, c := range clauses {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			body := b.g.newBlock(kind + ".case")
			addEdge(head, body)
			b.cur = body
			b.stmts(cc.Body, "")
			bodies = append(bodies, body)
			falls = append(falls, endsInFallthrough(cc.Body))
			ends = append(ends, b.cur)
			if endsInFallthrough(cc.Body) {
				// Linked to the next case body below, not to exit.
			} else {
				addEdge(b.cur, exit)
			}
			b.cur = nil
		}
		// fallthrough links each case's end to the next case body.
		for i := range bodies {
			if falls[i] && i+1 < len(bodies) {
				addEdge(ends[i], bodies[i+1])
			}
		}
		if !hasDefault {
			addEdge(head, exit)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit
		if len(exit.Preds) == 0 {
			b.cur = nil // every case diverges and a default exists
		}

	case *ast.SelectStmt:
		head := b.block("select")
		exit := b.g.newBlock("select.exit")
		b.frames = append(b.frames, loopFrame{label: label, breakTarget: exit})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := b.g.newBlock("select.comm")
			if cc.Comm != nil {
				body.Stmts = append(body.Stmts, cc.Comm)
			}
			addEdge(head, body)
			b.cur = body
			b.stmts(cc.Body, "")
			addEdge(b.cur, exit)
			b.cur = nil
		}
		// A select with no cases blocks forever: head keeps zero
		// successors and exit stays unreachable.
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit
		if len(exit.Preds) == 0 {
			b.cur = nil
		}

	case *ast.BlockStmt:
		b.stmts(s.List, "")

	case *ast.GoStmt:
		// The spawned body is a separate function; the go statement
		// itself is straight-line.
		b.block("body").Stmts = append(b.block("body").Stmts, s)

	default:
		// Assignments, declarations, sends, inc/dec, empty...
		b.block("body").Stmts = append(b.block("body").Stmts, s)
	}
}

// labelBlock returns (creating on first reference) the block a label
// names, so forward and backward gotos both resolve.
func (b *builder) labelBlock(name string) *Block {
	if t, ok := b.labels[name]; ok {
		return t
	}
	t := b.g.newBlock("label." + name)
	b.labels[name] = t
	return t
}

// findFrame resolves break/continue (optionally labeled) to a target.
func (b *builder) findFrame(label *ast.Ident, isContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if isContinue && f.continueTarget == nil {
			continue // switch/select frames do not catch continue
		}
		if label != nil && f.label != label.Name {
			continue
		}
		if isContinue {
			return f.continueTarget
		}
		return f.breakTarget
	}
	return nil
}

// isPanicOrExit reports whether the expression is a call that never
// returns: the panic builtin, os.Exit, runtime.Goexit, or
// (log.*).Fatal*. Resolution is syntactic — the cfg package has no
// type information — which is fine for the diverging calls that
// matter here.
func isPanicOrExit(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case x.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			case strings.HasPrefix(fun.Sel.Name, "Fatal"):
				return true
			}
		}
	}
	return false
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// postorder — the order a forward dataflow worklist converges
// fastest in. Unreachable blocks are not included.
func (g *Graph) ReversePostorder() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		// Visiting successors last-to-first makes the reversed
		// postorder walk Succs[0] chains first — the natural
		// source-order rendering (then before else, body before
		// loop exit) — while remaining a valid reverse postorder.
		for i := len(b.Succs) - 1; i >= 0; i-- {
			if s := b.Succs[i]; !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// CanReach reports whether to is reachable from from along Succs
// edges (from == to counts as reachable).
func (g *Graph) CanReach(from, to *Block) bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

// Divergent returns the blocks that are reachable from Entry but from
// which Exit is unreachable — code inside an escape-free infinite
// loop (or after a `select{}`). An empty result means every reachable
// program point has a termination path.
func (g *Graph) Divergent() []*Block {
	// Blocks that can reach exit: reverse BFS over Preds.
	canExit := make([]bool, len(g.Blocks))
	stack := []*Block{g.Exit}
	canExit[g.Exit.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			if !canExit[p.Index] {
				canExit[p.Index] = true
				stack = append(stack, p)
			}
		}
	}
	var out []*Block
	for _, b := range g.ReversePostorder() {
		if !canExit[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// String renders the reachable graph in a compact deterministic form
// for test pinning: one line per block in reverse postorder,
//
//	b0 entry → b2
//	b2 for.head [i < n] → b3 b4
//
// with Cond in brackets and statements summarized by go/printer.
func (g *Graph) String() string {
	return g.render(nil)
}

// StringWithStmts renders like String but includes each block's
// statements, printed through fset when non-nil.
func (g *Graph) StringWithStmts(fset *token.FileSet) string {
	if fset == nil {
		fset = token.NewFileSet()
	}
	return g.render(fset)
}

func (g *Graph) render(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range g.ReversePostorder() {
		fmt.Fprintf(&sb, "b%d %s", b.Index, b.Kind)
		if fset != nil {
			for _, s := range b.Stmts {
				fmt.Fprintf(&sb, " {%s}", printNode(fset, s))
			}
		}
		if b.Cond != nil {
			cf := fset
			if cf == nil {
				cf = token.NewFileSet()
			}
			fmt.Fprintf(&sb, " [%s]", printNode(cf, b.Cond))
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func printNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
