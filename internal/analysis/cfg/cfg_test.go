package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as a function body and builds its CFG.
func build(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return New(fd.Body), fset
}

// TestZoo pins the block graph of every control construct against a
// hand-drawn rendering. A change to the builder that moves an edge
// shows up as a diff here.
func TestZoo(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{
			name: "straightline",
			body: "x := 1\ny := x",
			want: `
b0 entry {x := 1} {y := x} -> b1
b1 exit
`,
		},
		{
			name: "if",
			body: "x := 1\nif x > 0 {\n x = 2\n}\nx = 3",
			want: `
b0 entry {x := 1} [x > 0] -> b2 b3
b2 if.then {x = 2} -> b3
b3 if.join {x = 3} -> b1
b1 exit
`,
		},
		{
			name: "ifelse_return",
			body: "if c() {\n return\n} else {\n x := 1\n _ = x\n}\ny := 2\n_ = y",
			want: `
b0 entry [c()] -> b2 b3
b2 if.then {return} -> b1
b3 if.else {x := 1} {_ = x} -> b4
b4 if.join {y := 2} {_ = y} -> b1
b1 exit
`,
		},
		{
			name: "both_arms_return",
			body: "if c() {\n return\n} else {\n return\n}\nx := 1\n_ = x",
			want: `
b0 entry [c()] -> b2 b3
b2 if.then {return} -> b1
b3 if.else {return} -> b1
b1 exit
`,
		},
		{
			name: "for_loop",
			body: "for i := 0; i < 10; i++ {\n use(i)\n}\ndone()",
			want: `
b0 entry {i := 0} -> b2
b2 for.head [i < 10] -> b3 b4
b3 for.body {use(i)} -> b5
b5 for.post {i++} -> b2
b4 for.exit {done()} -> b1
b1 exit
`,
		},
		{
			name: "infinite_for_no_break",
			body: "for {\n work()\n}",
			want: `
b0 entry -> b2
b2 for.head -> b3
b3 for.body {work()} -> b2
`,
		},
		{
			name: "infinite_for_with_break",
			body: "for {\n if done() {\n  break\n }\n work()\n}\nrest()",
			want: `
b0 entry -> b2
b2 for.head -> b3
b3 for.body [done()] -> b5 b6
b5 if.then -> b4
b4 for.exit {rest()} -> b1
b1 exit
b6 if.join {work()} -> b2
`,
		},
		{
			name: "range_loop",
			body: "for _, v := range xs {\n use(v)\n}\ndone()",
			want: `
b0 entry -> b2
b2 range.head {for _, v := range xs { use(v) }} -> b3 b4
b3 range.body {use(v)} -> b2
b4 range.exit {done()} -> b1
b1 exit
`,
		},
		{
			name: "continue_skips_rest",
			body: "for i := 0; i < n; i++ {\n if skip(i) {\n  continue\n }\n use(i)\n}",
			want: `
b0 entry {i := 0} -> b2
b2 for.head [i < n] -> b3 b4
b3 for.body [skip(i)] -> b6 b7
b6 if.then -> b5
b7 if.join {use(i)} -> b5
b5 for.post {i++} -> b2
b4 for.exit -> b1
b1 exit
`,
		},
		{
			name: "labeled_break",
			body: "outer:\nfor {\n for {\n  if done() {\n   break outer\n  }\n }\n}\nrest()",
			want: `
b0 entry -> b2
b2 label.outer -> b3
b3 for.head -> b4
b4 for.body -> b6
b6 for.head -> b7
b7 for.body [done()] -> b9 b10
b9 if.then -> b5
b5 for.exit {rest()} -> b1
b1 exit
b10 if.join -> b6
`,
		},
		{
			name: "switch_with_default",
			body: "switch x() {\ncase 1:\n a()\ncase 2:\n b()\ndefault:\n c()\n}\nrest()",
			want: `
b0 entry {x()} -> b3 b4 b5
b3 switch.case {a()} -> b2
b4 switch.case {b()} -> b2
b5 switch.case {c()} -> b2
b2 switch.exit {rest()} -> b1
b1 exit
`,
		},
		{
			name: "switch_no_default_falls_out",
			body: "switch x() {\ncase 1:\n a()\n}\nrest()",
			want: `
b0 entry {x()} -> b3 b2
b3 switch.case {a()} -> b2
b2 switch.exit {rest()} -> b1
b1 exit
`,
		},
		{
			name: "switch_fallthrough",
			body: "switch x() {\ncase 1:\n a()\n fallthrough\ncase 2:\n b()\n}",
			want: `
b0 entry {x()} -> b3 b4 b2
b3 switch.case {a()} -> b4
b4 switch.case {b()} -> b2
b2 switch.exit -> b1
b1 exit
`,
		},
		{
			name: "typeswitch",
			body: "switch v := y.(type) {\ncase int:\n use(v)\ndefault:\n other()\n}",
			want: `
b0 entry {v := y.(type)} -> b3 b4
b3 typeswitch.case {use(v)} -> b2
b4 typeswitch.case {other()} -> b2
b2 typeswitch.exit -> b1
b1 exit
`,
		},
		{
			name: "select_forever_with_return",
			body: "for {\n select {\n case <-ctx.Done():\n  return\n case v := <-ch:\n  use(v)\n }\n}",
			want: `
b0 entry -> b2
b2 for.head -> b3
b3 for.body -> b6 b7
b6 select.comm {<-ctx.Done()} {return} -> b1
b1 exit
b7 select.comm {v := <-ch} {use(v)} -> b5
b5 select.exit -> b2
`,
		},
		{
			name: "empty_select_blocks_forever",
			body: "prep()\nselect {}\nrest()",
			want: `
b0 entry {prep()}
`,
		},
		{
			name: "panic_diverges",
			body: "if bad() {\n panic(\"x\")\n}\nrest()",
			want: `
b0 entry [bad()] -> b2 b3
b2 if.then {panic(\"x\")} -> b1
b3 if.join {rest()} -> b1
b1 exit
`,
		},
		{
			name: "defer_lands_in_exit",
			body: "defer mu.Unlock()\nwork()",
			want: `
b0 entry {defer mu.Unlock()} {work()} -> b1
b1 exit {mu.Unlock()}
`,
		},
		{
			name: "goto_backward",
			body: "x := 0\nagain:\nx++\nif x < 3 {\n goto again\n}",
			want: `
b0 entry {x := 0} -> b2
b2 label.again {x++} [x < 3] -> b3 b4
b3 if.then -> b2
b4 if.join -> b1
b1 exit
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, fset := build(t, tc.body)
			got := strings.TrimSpace(g.StringWithStmts(fset))
			want := strings.TrimSpace(strings.ReplaceAll(tc.want, `\"`, `"`))
			if got != want {
				t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestDivergent pins the reachable-but-cannot-exit detection used by
// goroleak.
func TestDivergent(t *testing.T) {
	cases := []struct {
		name, body string
		divergent  bool
	}{
		{"terminating", "work()\n", false},
		{"infinite_loop", "for {\n work()\n}", true},
		{"loop_with_return", "for {\n if done() {\n  return\n }\n work()\n}", false},
		{"loop_with_break", "for {\n if done() {\n  break\n }\n}", false},
		{"range_over_channel_shape", "for v := range ch {\n use(v)\n}", false},
		{"empty_select", "select {}", true},
		{"ctx_done_select", "for {\n select {\n case <-ctx.Done():\n  return\n case v := <-ch:\n  use(v)\n }\n}", false},
		{"nested_infinite", "for {\n for {\n  work()\n }\n}", true},
		{"infinite_loop_with_panic", "for {\n if bad() {\n  panic(\"x\")\n }\n}", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := build(t, tc.body)
			if got := len(g.Divergent()) > 0; got != tc.divergent {
				t.Errorf("Divergent() = %v, want %v\n%s", got, tc.divergent, g.String())
			}
		})
	}
}

// TestForwardReachingTaint runs the solver on a tiny reaching-facts
// problem: fact "t" is generated by calls to src() and killed by
// calls to check(); the in-set at each block is pinned by whether a
// use() call in it can see the fact.
func TestForwardReachingTaint(t *testing.T) {
	body := `
t0 := src()
if t0 > 0 {
	check(t0)
	use(t0)
}
use(t0)
`
	g, fset := build(t, body)
	_ = fset

	gen := func(b *Block) GenKill {
		gk := GenKill{Gen: FactSet{}, Kill: FactSet{}}
		for _, s := range b.Stmts {
			ast.Inspect(s, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "src":
							gk.Gen["t"] = true
						case "check":
							gk.Kill["t"] = true
							delete(gk.Gen, "t")
						}
					}
				}
				return true
			})
		}
		return gk
	}
	in := Forward(g, FactSet{}, GenKillTransfer(gen))

	// The then-block sees the fact on entry (src ran, check has not).
	// The join block joins {entry-out: tainted} with {then-out:
	// killed} — union join keeps the taint (may-analysis).
	var thenIn, joinIn FactSet
	for b, facts := range in {
		switch b.Kind {
		case "if.then":
			thenIn = facts
		case "if.join":
			joinIn = facts
		}
	}
	if thenIn == nil || !thenIn["t"] {
		t.Errorf("if.then in-set = %v, want fact present", thenIn)
	}
	if joinIn == nil || !joinIn["t"] {
		t.Errorf("if.join in-set = %v, want fact present via the unchecked path", joinIn)
	}
}

// TestForwardLoopFixpoint asserts facts propagate around a back-edge.
func TestForwardLoopFixpoint(t *testing.T) {
	body := `
for i := 0; i < n; i++ {
	if i == 1 {
		t := src()
		use(t)
	}
	use(i)
}
`
	g, _ := build(t, body)
	gen := func(b *Block) GenKill {
		gk := GenKill{Gen: FactSet{}, Kill: FactSet{}}
		for _, s := range b.Stmts {
			ast.Inspect(s, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "src" {
						gk.Gen["t"] = true
					}
				}
				return true
			})
		}
		return gk
	}
	in := Forward(g, FactSet{}, GenKillTransfer(gen))
	// After one trip through the then-branch the fact must reach the
	// loop head (via the back-edge) and therefore the body and exit.
	for _, b := range g.ReversePostorder() {
		switch b.Kind {
		case "for.head", "for.exit":
			if !in[b]["t"] {
				t.Errorf("%s in-set missing fact generated in loop body: %v", b.Kind, in[b])
			}
		}
	}
}
