package taintlen_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/taintlen"
)

func TestTaintLen(t *testing.T) {
	analysistest.Run(t, taintlen.Analyzer, "taintlentest")
}
