// Package taintlentest exercises the taintlen analyzer: decoded
// sizes reaching make/index/slice sinks unchecked (flagged), the
// early-return validation idiom (clean), taint surviving loop
// merges (flagged), and a documented suppression.
package taintlentest

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxN = 1 << 20

var errTooBig = errors.New("too big")

func badMake(b []byte) []uint64 {
	n := binary.LittleEndian.Uint64(b)
	return make([]uint64, n) // want "reaches make size"
}

func badMakeDirect(h []byte) []byte {
	return make([]byte, binary.BigEndian.Uint16(h)) // want "reaches make size"
}

func goodMake(b []byte) ([]uint64, error) {
	n := binary.LittleEndian.Uint64(b)
	if n > maxN {
		return nil, errTooBig
	}
	return make([]uint64, n), nil
}

func badIndex(b []byte) byte {
	off := int(binary.LittleEndian.Uint32(b))
	return b[off] // want "reaches index expression"
}

func goodIndex(b []byte) byte {
	off := int(binary.LittleEndian.Uint32(b))
	if off >= len(b) {
		return 0
	}
	return b[off]
}

func badReadFull(r io.Reader, b, hdr []byte) error {
	n := int(binary.LittleEndian.Uint32(hdr))
	_, err := io.ReadFull(r, b[:n]) // want "reaches slice bound"
	return err
}

func badCopyN(dst io.Writer, src io.Reader, hdr []byte) error {
	n := int64(binary.LittleEndian.Uint64(hdr))
	_, err := io.CopyN(dst, src, n) // want "reaches io.CopyN count"
	return err
}

// loopTaint: taint entering "total" inside the loop must survive the
// loop-exit merge and reach the allocation after it.
func loopTaint(b []byte) []int {
	total := 0
	for i := 0; i < 3; i++ {
		total += int(binary.LittleEndian.Uint32(b))
	}
	return make([]int, total) // want "reaches make size"
}

// reassignment with a clean value clears taint (strong update).
func reassigned(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	n = 16
	return make([]byte, n)
}

func suppressed(b []byte) []byte {
	n := binary.LittleEndian.Uint64(b)
	//lint:allow taintlen fixture: caller guarantees b came from a trusted local file
	return make([]byte, n)
}
