// Package taintlen tracks lengths, counts and offsets decoded from
// untrusted byte buffers — snapshot headers, wire frames — and
// reports when one reaches an allocation or indexing operation
// without passing through a bounds check first. A hostile snapshot
// that declares 2^60 nodes must die at a validation branch, not
// inside make(); an offset read from a frame must be compared
// against the buffer it indexes before it indexes it.
//
// Sources are the encoding/binary ByteOrder decode calls
// (Uint16/Uint32/Uint64); any value computed from a source — through
// conversions, arithmetic, or assignment chains — is tainted. Taint
// propagates forward over the function's control-flow graph
// (internal/analysis/cfg) to a fixpoint, so loops and merges are
// handled soundly for a may-analysis.
//
// A branch condition that mentions a tainted variable clears its
// taint on BOTH successors. That is deliberately conservative-in-
// reverse: a dominance-precise analysis would clear it only on the
// guarded edge, but the repo's validation idiom is early-return
// (`if n > max { return err }`), where the fallthrough edge is the
// checked one — and distinguishing which comparison direction guards
// which edge is beyond what a vet-grade checker should guess at. An
// if that checks-and-ignores still launders taint; the fixture pins
// this as a known false-negative shape rather than risking false
// positives on every guard.
//
// Sinks: make() length/capacity arguments, slice/array/string
// indexing, slice-expression bounds (which also covers io.ReadFull
// sizing, spelled io.ReadFull(r, buf[:n])), and io.CopyN byte
// counts. Map indexing is not a sink — a hostile map key wastes a
// lookup, not memory.
package taintlen

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"subtrav/internal/analysis"
	"subtrav/internal/analysis/cfg"
)

// Analyzer reports untrusted decoded integers reaching allocation or
// indexing without a bounds check.
var Analyzer = &analysis.Analyzer{
	Name: "taintlen",
	Doc: "tracks counts/lengths/offsets decoded from byte buffers via " +
		"encoding/binary and reports any that reach make, slice/array " +
		"indexing, slice bounds, or io.CopyN without a branch that " +
		"inspects them first (dataflow over the function CFG)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
			// Function literals get their own walk with a fresh state:
			// taint does not flow into a closure from its creator here
			// (captured decoded values crossing a closure boundary are
			// rare enough to not be worth the precision loss).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// tracker carries the per-function taint walk: the fact domain is
// *types.Var (tainted variables); sourcePos remembers where each
// variable picked up its taint for the diagnostic.
type tracker struct {
	pass      *analysis.Pass
	sourcePos map[*types.Var]token.Pos
	sourceFn  map[*types.Var]string
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	tr := &tracker{
		pass:      pass,
		sourcePos: map[*types.Var]token.Pos{},
		sourceFn:  map[*types.Var]string{},
	}

	ins := cfg.Forward(g, cfg.FactSet{}, func(b *cfg.Block, in cfg.FactSet) cfg.FactSet {
		out := in.Clone()
		for _, s := range b.Stmts {
			tr.applyStmt(s, out, nil)
		}
		if b.Cond != nil {
			tr.killChecked(b.Cond, out)
		}
		return out
	})

	// Second walk with the converged in-sets: report sinks reached
	// with taint live, re-applying statement effects in block order
	// for intra-block precision.
	for _, b := range g.Blocks {
		in, ok := ins[b]
		if !ok {
			continue // unreachable
		}
		state := in.Clone()
		for _, s := range b.Stmts {
			tr.applyStmt(s, state, tr.reportSinks)
		}
		if b.Cond != nil {
			tr.reportSinks(b.Cond, state)
		}
	}
}

// applyStmt updates state for one statement. When scan is non-nil it
// is called on every expression the statement evaluates, with the
// state as of that evaluation (the reporting walk).
func (tr *tracker) applyStmt(s ast.Stmt, state cfg.FactSet, scan func(ast.Expr, cfg.FactSet)) {
	visit := func(e ast.Expr) {
		if scan != nil && e != nil {
			scan(e, state)
		}
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			visit(r)
		}
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			if len(s.Lhs) == len(s.Rhs) {
				for i, l := range s.Lhs {
					tr.assign(l, tr.tainted(s.Rhs[i], state), s.Rhs[i], state)
				}
			} else {
				// x, y := f(): taint every LHS if the call is a source.
				t := false
				for _, r := range s.Rhs {
					t = t || tr.tainted(r, state)
				}
				for _, l := range s.Lhs {
					tr.assign(l, t, s.Rhs[0], state)
				}
			}
		} else {
			// Compound (+=, <<=, ...): LHS stays tainted, or becomes
			// tainted if the RHS is.
			for i, l := range s.Lhs {
				if tr.tainted(s.Rhs[i], state) {
					tr.assign(l, true, s.Rhs[i], state)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							visit(vs.Values[i])
							tr.assign(name, tr.tainted(vs.Values[i], state), vs.Values[i], state)
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		visit(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			visit(r)
		}
	case *ast.SendStmt:
		visit(s.Value)
	case *ast.IncDecStmt:
		visit(s.X)
	case *ast.RangeStmt:
		// Synthetic head statement: the range operand is evaluated
		// here; key/value vars are bounded by the range and clean.
		visit(s.X)
		for _, l := range []ast.Expr{s.Key, s.Value} {
			if l != nil {
				tr.assign(l, false, nil, state)
			}
		}
	case *ast.DeferStmt:
		visit(s.Call)
	case *ast.GoStmt:
		visit(s.Call)
	case *ast.LabeledStmt:
		tr.applyStmt(s.Stmt, state, scan)
	}
}

// assign sets or clears the taint of the variable behind lhs. Writes
// through non-identifier lvalues (fields, slice elements) are not
// tracked.
func (tr *tracker) assign(lhs ast.Expr, taint bool, rhs ast.Expr, state cfg.FactSet) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	v := tr.varOf(id)
	if v == nil {
		return
	}
	if taint {
		state[v] = true
		if _, ok := tr.sourcePos[v]; !ok && rhs != nil {
			if pos, fn, ok := tr.firstSource(rhs, state); ok {
				tr.sourcePos[v] = pos
				tr.sourceFn[v] = fn
			} else if src := tr.firstTaintedVar(rhs, state); src != nil {
				tr.sourcePos[v] = tr.sourcePos[src]
				tr.sourceFn[v] = tr.sourceFn[src]
			}
		}
	} else {
		delete(state, v)
	}
}

func (tr *tracker) varOf(id *ast.Ident) *types.Var {
	obj := tr.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = tr.pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// tainted reports whether evaluating e yields a tainted value: it
// contains a source call or reads a tainted variable.
func (tr *tracker) tainted(e ast.Expr, state cfg.FactSet) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, ok := tr.sourceCall(n); ok {
				found = true
				return false
			}
		case *ast.Ident:
			if v := tr.varOf(n); v != nil && state[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// sourceCall recognizes binary.LittleEndian.Uint64(...)-shaped decode
// calls: a Uint16/Uint32/Uint64 method whose receiver resolves into
// encoding/binary (covers the concrete endianness values and the
// ByteOrder interface alike).
func (tr *tracker) sourceCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Uint16", "Uint32", "Uint64":
	default:
		return "", false
	}
	fn, _ := tr.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return "", false
	}
	return sel.Sel.Name, true
}

func (tr *tracker) firstSource(e ast.Expr, state cfg.FactSet) (token.Pos, string, bool) {
	var pos token.Pos
	var fn string
	ok := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ok {
			return false
		}
		if call, isCall := n.(*ast.CallExpr); isCall {
			if name, isSrc := tr.sourceCall(call); isSrc {
				pos, fn, ok = call.Pos(), name, true
				return false
			}
		}
		return true
	})
	return pos, fn, ok
}

func (tr *tracker) firstTaintedVar(e ast.Expr, state cfg.FactSet) *types.Var {
	var found *types.Var
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v := tr.varOf(id); v != nil && state[v] {
				found = v
				return false
			}
		}
		return true
	})
	return found
}

// killChecked clears the taint of every variable a branch condition
// inspects (see the package doc for why both successors count as
// checked).
func (tr *tracker) killChecked(cond ast.Expr, state cfg.FactSet) {
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := tr.varOf(id); v != nil {
				delete(state, v)
			}
		}
		return true
	})
}

// reportSinks walks one evaluated expression and reports every sink a
// tainted value reaches.
func (tr *tracker) reportSinks(e ast.Expr, state cfg.FactSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			tr.sinkCall(n, state)
		case *ast.IndexExpr:
			// Only sequence indexing; map lookups cannot overrun.
			t := tr.pass.TypesInfo.TypeOf(n.X)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
					tr.reportIfTainted(n.Index, state, "index expression")
				}
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				tr.reportIfTainted(bound, state, "slice bound")
			}
		}
		return true
	})
}

func (tr *tracker) sinkCall(call *ast.CallExpr, state cfg.FactSet) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := tr.pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "make" {
			for _, arg := range call.Args[1:] {
				tr.reportIfTainted(arg, state, "make size")
			}
		}
	case *ast.SelectorExpr:
		fn, _ := tr.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "io" && fn.Name() == "CopyN" && len(call.Args) == 3 {
			tr.reportIfTainted(call.Args[2], state, "io.CopyN count")
		}
	}
}

func (tr *tracker) reportIfTainted(e ast.Expr, state cfg.FactSet, sink string) {
	if e == nil || !tr.tainted(e, state) {
		return
	}
	v := tr.firstTaintedVar(e, state)
	desc := "a value"
	origin := ""
	if v != nil {
		desc = fmt.Sprintf("%q", v.Name())
		if pos, ok := tr.sourcePos[v]; ok {
			p := tr.pass.Fset.Position(pos)
			origin = fmt.Sprintf(" (decoded by binary.%s at line %d)", tr.sourceFn[v], p.Line)
		}
	} else if pos, fn, ok := tr.firstSource(e, state); ok {
		p := tr.pass.Fset.Position(pos)
		desc = fmt.Sprintf("binary.%s result", fn)
		origin = fmt.Sprintf(" (line %d)", p.Line)
	}
	tr.pass.Reportf(e.Pos(),
		"untrusted length/offset %s%s reaches %s without a bounds check on any path; validate it against the buffer or a hard limit first",
		desc, origin, sink)
}
