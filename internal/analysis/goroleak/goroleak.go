// Package goroleak reports `go` statements that launch goroutines
// with no termination path. The check is structural, over the
// control-flow graph of the goroutine's body: a body every one of
// whose reachable blocks can reach the function exit always has a
// way to finish, while a body with a divergent region — an infinite
// for with no break/return, a select{} — can never return once it
// enters that region, and the goroutine outlives every traversal,
// holding its stack and captures until process death.
//
// The CFG encodes the repo's sanctioned shutdown idioms for free:
// `case <-ctx.Done(): return` is a path to Exit, so a ctx-tied loop
// is not divergent; `for v := range ch` always carries an exit edge
// because close(ch) ends the range; a WaitGroup worker simply
// returns. What the analyzer flags is exactly the loop that none of
// those idioms reach.
//
// Cross-package launches (`go pkg.Run(ctx)`) are resolved through
// the facts layer: every function exports whether its body diverges,
// and go sites in importing packages read the fact back. A one-call
// wrapper body (`go func() { daemon.Run(ctx) }()`) is unwrapped so
// the verdict comes from the function that actually loops.
// Goroutines launched through function values or interface methods
// are not resolvable statically and are skipped. Blocking leaks
// (goroutines stuck on a channel op forever) are a liveness
// property out of scope here; this analyzer owns the structural
// half.
//
// A process-lifetime daemon that is deliberately terminated only by
// exit carries //lint:allow goroleak with that justification at the
// go statement.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"subtrav/internal/analysis"
	"subtrav/internal/analysis/cfg"
)

// Analyzer reports go statements whose goroutine can never terminate.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "requires every go statement to launch a body whose CFG can " +
		"reach its exit (return, ctx.Done path, range over a closable " +
		"channel); divergent bodies — infinite loops with no escape, " +
		"select{} — are goroutine leaks, resolved across packages via facts",
	Run: run,
}

// divergesFact marks a function whose body contains a divergent
// region, with the position of that region for the diagnostic.
type divergesFact struct {
	Diverges bool
	LoopPos  token.Position
}

func (*divergesFact) AFact() {}

func run(pass *analysis.Pass) error {
	// Map every function object to its declaration so same-package
	// launches resolve without facts.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	// Export divergence facts for every function, so importing
	// packages can judge `go thispkg.Fn()` sites.
	bodyVerdict := map[*ast.BlockStmt]divergesFact{}
	verdictOf := func(body *ast.BlockStmt) divergesFact {
		if v, ok := bodyVerdict[body]; ok {
			return v
		}
		g := cfg.New(body)
		div := g.Divergent()
		v := divergesFact{Diverges: len(div) > 0}
		if v.Diverges {
			if pos := blocksPos(div); pos.IsValid() {
				v.LoopPos = pass.Fset.Position(pos)
			} else {
				v.LoopPos = pass.Fset.Position(body.Pos())
			}
		}
		bodyVerdict[body] = v
		return v
	}
	for obj, fd := range decls {
		v := verdictOf(fd.Body)
		pass.ExportObjectFact(obj, &v)
	}

	// Judge every go statement.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var v divergesFact
			var resolved bool
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				if inner := wrappedCall(fun.Body); inner != nil {
					v, resolved = calleeVerdict(pass, decls, verdictOf, inner)
				}
				if !resolved {
					v, resolved = verdictOf(fun.Body), true
				}
			default:
				v, resolved = calleeVerdict(pass, decls, verdictOf, gs.Call)
			}
			if resolved && v.Diverges {
				pass.Reportf(gs.Pos(),
					"goroutine can never terminate: its body loops forever with no path to return (divergent region at %s:%d); give it an exit tied to ctx.Done(), a closable channel, or a bounded loop",
					shortFile(v.LoopPos.Filename), v.LoopPos.Line)
			}
			return true
		})
	}
	return nil
}

// calleeVerdict resolves a call's target function and returns its
// divergence verdict — same-package targets from their declaration,
// cross-package targets from the exported fact.
func calleeVerdict(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, verdictOf func(*ast.BlockStmt) divergesFact, call *ast.CallExpr) (divergesFact, bool) {
	fn := pass.Callee(call)
	if fn == nil {
		return divergesFact{}, false
	}
	if fd, ok := decls[fn]; ok {
		return verdictOf(fd.Body), true
	}
	var fact divergesFact
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg && pass.ImportObjectFact(fn, &fact) {
		return fact, true
	}
	return divergesFact{}, false
}

// wrappedCall returns the single call a one-statement wrapper body
// makes, or nil if the body does anything else.
func wrappedCall(body *ast.BlockStmt) *ast.CallExpr {
	if len(body.List) != 1 {
		return nil
	}
	es, ok := body.List[0].(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	return call
}

// blocksPos finds the earliest source position inside a set of
// blocks (first statement or condition), token.NoPos if all are
// synthetic.
func blocksPos(blocks []*cfg.Block) token.Pos {
	best := token.NoPos
	consider := func(p token.Pos) {
		if p.IsValid() && (!best.IsValid() || p < best) {
			best = p
		}
	}
	for _, b := range blocks {
		if len(b.Stmts) > 0 {
			consider(b.Stmts[0].Pos())
		}
		if b.Cond != nil {
			consider(b.Cond.Pos())
		}
	}
	return best
}

func shortFile(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}
