// Package goroleaktest exercises the goroleak analyzer: divergent
// goroutine bodies (flagged, directly and through named functions
// and one-call wrappers), every sanctioned termination idiom
// (clean), and a documented process-lifetime suppression.
package goroleaktest

import (
	"context"
	"sync"
)

func work() {}

// daemon loops with no exit: divergent, flagged at each go site.
func daemon() {
	for {
		work()
	}
}

// spin blocks forever: select{} has no successors.
func spin() {
	select {}
}

func leakLiteral() {
	go func() { // want "can never terminate"
		for {
			work()
		}
	}()
}

func leakNamed() {
	go daemon() // want "can never terminate"
}

func leakWrapped() {
	go func() { // want "can never terminate"
		spin()
	}()
}

func ctxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

func rangeWorker(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func wgWorker(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func stopChanLoop(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

func allowedDaemon() {
	//lint:allow goroleak fixture: process-lifetime daemon, reaped by process exit
	go daemon()
}
