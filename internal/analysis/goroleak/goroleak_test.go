package goroleak_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "goroleaktest")
}
