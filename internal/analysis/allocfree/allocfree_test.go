package allocfree_test

import (
	"testing"

	"subtrav/internal/analysis/allocfree"
	"subtrav/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "allocfreetest")
}
