// Package allocfree enforces the zero-steady-state-allocation
// discipline in functions marked with a `//vet:hotpath` doc comment.
// The traversal kernels (internal/traverse's Workspace methods) run
// millions of times per second under the balance-affinity benchmark;
// a single allocation per call turns the GC into the bottleneck the
// workspace layer exists to avoid, and nothing but review discipline
// kept it that way before this analyzer.
//
// Inside a marked function the analyzer flags every construct that
// allocates on each call:
//
//   - make and new (fresh backing array / map / pointee every call)
//   - slice, map, and &T{} composite literals
//   - append without reuse evidence — accepted evidence is the
//     self-append form `x = append(x, ...)` (amortized growth into
//     the same variable) or a `buf[:0]` first argument (explicit
//     reuse of retained capacity)
//   - function literals (closures capture to the heap)
//   - fmt calls (formatting boxes operands) and strings.Builder
//     growth methods
//   - string <-> []byte / []rune conversions (copy on every call)
//
// Intentional amortized growth — a ring buffer doubling — is excused
// with `//lint:allow allocfree <amortization argument>`, which keeps
// the argument in the source next to the allocation it defends.
package allocfree

import (
	"go/ast"
	"go/types"
	"strings"

	"subtrav/internal/analysis"
)

// marker is the doc-comment line that opts a function into the
// discipline.
const marker = "//vet:hotpath"

// Analyzer reports per-call allocations in //vet:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "reports per-call allocations (make/new, composite literals, " +
		"append without reuse evidence, closures, fmt, strings.Builder " +
		"growth, string conversions) inside functions whose doc comment " +
		"carries //vet:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// First pass: collect append calls with self-assign evidence
	// (`x = append(x, ...)`, compared by printed form, so field and
	// index targets work too).
	selfAssigned := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pass, call, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				selfAssigned[call] = true
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"hot path allocates: closure captures escape to the heap; hoist the function value out of the hot path or pass state explicitly")
			return false
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(),
					"hot path allocates: &%s{...} heap-allocates a fresh value each call; reuse a workspace field",
					types.ExprString(cl.Type))
				return false
			}
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(),
						"hot path allocates: composite literal builds a fresh %s each call; reuse a workspace buffer",
						t.Underlying().String())
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, selfAssigned)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, selfAssigned map[*ast.CallExpr]bool) {
	// Builtins.
	switch {
	case isBuiltin(pass, call, "make"):
		pass.Reportf(call.Pos(),
			"hot path allocates: make creates a fresh backing store on every call; reuse a workspace buffer, or //lint:allow allocfree with the amortization argument if growth is intentional")
		return
	case isBuiltin(pass, call, "new"):
		pass.Reportf(call.Pos(),
			"hot path allocates: new heap-allocates on every call; reuse a workspace field")
		return
	case isBuiltin(pass, call, "append"):
		if selfAssigned[call] || (len(call.Args) > 0 && isResliceToZero(call.Args[0])) {
			return
		}
		pass.Reportf(call.Pos(),
			"hot path append without reuse evidence: result is not assigned back to its first argument and the first argument is not a [:0] reslice, so growth abandons the old backing array each call")
		return
	}

	// Conversions: string <-> []byte/[]rune copy.
	if convertsStringBytes(pass, call) {
		pass.Reportf(call.Pos(),
			"hot path allocates: string/byte-slice conversion copies its data on every call; keep one representation across the hot path")
		return
	}

	// fmt and strings.Builder growth.
	if fn := pass.Callee(call); fn != nil && fn.Pkg() != nil {
		if fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(),
				"hot path calls fmt.%s: formatting boxes its operands and allocates; record raw values and format off the hot path", fn.Name())
			return
		}
		if isBuilderGrowth(fn) {
			pass.Reportf(call.Pos(),
				"hot path grows a strings.Builder: its internal buffer reallocates as it fills; build strings off the hot path or into a reused byte slice")
		}
	}
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isResliceToZero matches buf[:0] (and buf[0:0]): reuse of retained
// capacity, the workspace idiom.
func isResliceToZero(e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.Slice3 {
		return false
	}
	if se.Low != nil && !isZeroLit(se.Low) {
		return false
	}
	return se.High != nil && isZeroLit(se.High)
}

func isZeroLit(e ast.Expr) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Value == "0"
}

// convertsStringBytes reports whether call is a conversion between
// string and []byte / []rune.
func convertsStringBytes(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return false
	}
	return (isStringType(tv.Type) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(tv.Type) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// isBuilderGrowth matches the strings.Builder methods that can grow
// its buffer.
func isBuilderGrowth(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "strings" || obj.Name() != "Builder" {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Grow":
		return true
	}
	return false
}
