// Package allocfreetest exercises the allocfree analyzer: unmarked
// functions allocate freely, //vet:hotpath functions are held to the
// zero-allocation discipline, and the two reuse idioms (self-append,
// [:0] reslice) plus a documented //lint:allow pass clean.
package allocfreetest

import (
	"fmt"
	"strings"
)

type ws struct {
	buf []int
}

// cold carries no marker: every allocation here is legitimate.
func cold(n int) []int {
	out := make([]int, 0, n)
	return append(out, 1)
}

//vet:hotpath
func hotMake(n int) []int {
	return make([]int, n) // want "make creates a fresh backing store"
}

//vet:hotpath
func hotNew() *ws {
	return new(ws) // want "new heap-allocates"
}

//vet:hotpath
func hotLiteral() map[string]int {
	return map[string]int{} // want "composite literal"
}

//vet:hotpath
func hotPtrLiteral() *ws {
	return &ws{} // want "heap-allocates a fresh value"
}

//vet:hotpath
func hotAppend(xs, out []int) []int {
	tmp := append(xs, 1) // want "append without reuse evidence"
	out = append(out, tmp...)
	return out
}

//vet:hotpath
func hotReslice(w *ws, xs []int) {
	w.buf = append(w.buf[:0], xs...)
}

//vet:hotpath
func hotClosure(x int) func() int {
	return func() int { return x } // want "closure captures escape"
}

//vet:hotpath
func hotFmt(x int) {
	fmt.Println(x) // want "fmt.Println"
}

//vet:hotpath
func hotBuilder(b *strings.Builder, s string) {
	b.WriteString(s) // want "strings.Builder"
}

//vet:hotpath
func hotConv(s string) []byte {
	return []byte(s) // want "conversion copies"
}

//vet:hotpath
func hotAllowed(w *ws, n int) {
	if n > cap(w.buf) {
		//lint:allow allocfree fixture: doubling growth amortizes to O(1) per element
		w.buf = make([]int, n)
	}
}
