// Package lockorder builds the module-wide lock-class acquisition
// graph and reports every cycle in it as a potential deadlock. Two
// goroutines acquiring lock classes A and B in opposite orders is
// the textbook deadlock no per-package, per-statement check can see:
// the two acquisition sites are usually in different functions and
// often in different packages. lockhold (PR 3) already forbids
// blocking *under* a lock; this analyzer closes the other half of
// the discipline — the order locks nest in.
//
// A lock class is the declaration site of the mutex, not its
// instance: `(live.Runtime).mu`, `(signature.shard).mu`, a
// package-level `chaos.violationMu`. Within one function a linear
// walk (branch bodies inherit a copy of the held set, function
// literals start empty — a goroutine does not hold its creator's
// locks) tracks which classes are held; acquiring B while A is held
// records the edge A→B. Calls made while holding A contribute edges
// A→C for every class C the callee may acquire — same-package
// callees by a fixpoint over the package call graph, cross-package
// callees through the facts layer: every function exports the set of
// classes it may (transitively) acquire, and every package exports
// its observed edges. The Finish phase unions all edges and reports
// each cycle once, naming both acquisition sites.
//
// Hand-over-hand acquisition of two *instances* of one class is
// indistinguishable from a self-deadlock at class granularity and is
// reported as a self-cycle; genuinely ordered instance chains earn a
// //lint:allow lockorder with the ordering argument as the reason.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"subtrav/internal/analysis"
)

// Analyzer reports lock-order cycles across the whole module.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "builds the module-wide lock-class acquisition graph (direct " +
		"acquisitions plus callee summaries propagated through facts) and " +
		"reports any cycle as a potential deadlock, naming both acquisition sites",
	Run:    run,
	Finish: finish,
}

// acquiresFact is attached to every function that may acquire locks:
// the classes it (transitively) acquires, with one representative
// site each.
type acquiresFact struct {
	Classes []classSite
}

func (*acquiresFact) AFact() {}

// classSite is one lock class with a representative acquisition site.
type classSite struct {
	Class string
	Pos   token.Position
}

// edgesFact is the package fact: every held→acquired edge observed
// while analyzing one package.
type edgesFact struct {
	Edges []edge
}

func (*edgesFact) AFact() {}

// edge records "To was acquired while From was held": FromPos is
// where From was taken, ToPos where To was (or may be, via a call)
// taken.
type edge struct {
	From, To       string
	FromPos, ToPos token.Position
	// Via names the callee whose summary contributed the edge, ""
	// for a direct Lock call.
	Via string
}

// funcInfo is the per-function evidence gathered in phase 1.
type funcInfo struct {
	obj *types.Func
	// direct lock classes acquired in the body, first site wins.
	direct map[string]token.Position
	// calls made (any held state) to same-package functions.
	sameCalls []*types.Func
	// crossClasses: classes contributed by cross-package callees'
	// facts (already final, since dependencies ran first).
	crossClasses map[string]token.Position
	// acquisitions while holding: (heldClass, heldPos, event).
	events []lockEvent
}

// lockEvent is a Lock call or a function call made at a point where
// locks were held.
type lockEvent struct {
	held   map[string]token.Position
	pos    token.Position
	class  string      // non-"" for a direct Lock of class
	callee *types.Func // non-nil for a call (same or cross package)
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass}

	var infos []*funcInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			info := w.analyzeFunc(obj, fd.Body)
			infos = append(infos, info)
			// Function literals run with their own (empty) held set;
			// their evidence folds into the enclosing function's
			// summary so calls to the enclosing function still carry
			// the closure's acquisitions... but a closure is not
			// always called, so only direct evidence in the decl body
			// counts toward the function's own summary. Literals are
			// analyzed independently for edges:
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					infos = append(infos, w.analyzeFunc(nil, lit.Body))
					return false
				}
				return true
			})
		}
	}

	// Phase 2: fixpoint the transitive class summary over the
	// same-package call graph.
	byObj := map[*types.Func]*funcInfo{}
	for _, info := range infos {
		if info.obj != nil {
			byObj[info.obj] = info
		}
	}
	summary := map[*funcInfo]map[string]token.Position{}
	for _, info := range infos {
		s := map[string]token.Position{}
		for c, p := range info.direct {
			s[c] = p
		}
		for c, p := range info.crossClasses {
			if _, ok := s[c]; !ok {
				s[c] = p
			}
		}
		summary[info] = s
	}
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			s := summary[info]
			for _, callee := range info.sameCalls {
				ci, ok := byObj[callee]
				if !ok {
					continue
				}
				for c, p := range summary[ci] {
					if _, ok := s[c]; !ok {
						s[c] = p
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: edges. Direct Lock-while-held edges, plus call-while-
	// held edges through the callee's final summary (same-package) or
	// imported fact (cross-package).
	var edges []edge
	addEdge := func(held map[string]token.Position, toClass string, toPos token.Position, via string) {
		for from, fromPos := range held {
			edges = append(edges, edge{From: from, To: toClass, FromPos: fromPos, ToPos: toPos, Via: via})
		}
	}
	for _, info := range infos {
		for _, ev := range info.events {
			switch {
			case ev.class != "":
				addEdge(ev.held, ev.class, ev.pos, "")
			case ev.callee != nil:
				var classes map[string]token.Position
				via := ev.callee.Name()
				if ci, ok := byObj[ev.callee]; ok {
					classes = summary[ci]
				} else if ev.callee.Pkg() != nil && ev.callee.Pkg() != pass.Pkg {
					var fact acquiresFact
					if pass.ImportObjectFact(ev.callee, &fact) {
						classes = map[string]token.Position{}
						for _, cs := range fact.Classes {
							classes[cs.Class] = cs.Pos
						}
					}
				}
				for c := range classes {
					addEdge(ev.held, c, ev.pos, via)
				}
			}
		}
	}

	// Export: per-function summaries as object facts, package edges
	// as the package fact. Sorted for deterministic serialization.
	for _, info := range infos {
		if info.obj == nil {
			continue
		}
		s := summary[info]
		if len(s) == 0 {
			continue
		}
		fact := acquiresFact{}
		classes := make([]string, 0, len(s))
		for c := range s {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fact.Classes = append(fact.Classes, classSite{Class: c, Pos: s[c]})
		}
		pass.ExportObjectFact(info.obj, &fact)
	}
	if len(edges) > 0 {
		sort.Slice(edges, func(i, j int) bool { return edgeLess(edges[i], edges[j]) })
		dedup := edges[:1]
		for _, e := range edges[1:] {
			last := dedup[len(dedup)-1]
			if e.From != last.From || e.To != last.To {
				dedup = append(dedup, e)
			}
		}
		pass.ExportPackageFact(&edgesFact{Edges: dedup})
	}
	return nil
}

func edgeLess(a, b edge) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	if a.ToPos.Filename != b.ToPos.Filename {
		return a.ToPos.Filename < b.ToPos.Filename
	}
	return a.ToPos.Line < b.ToPos.Line
}

// walker performs the linear held-set walk over one function body.
type walker struct {
	pass *analysis.Pass
}

func (w *walker) analyzeFunc(obj *types.Func, body *ast.BlockStmt) *funcInfo {
	info := &funcInfo{
		obj:          obj,
		direct:       map[string]token.Position{},
		crossClasses: map[string]token.Position{},
	}
	w.block(info, body.List, map[string]token.Position{})
	return info
}

func cloneHeld(h map[string]token.Position) map[string]token.Position {
	c := make(map[string]token.Position, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (w *walker) block(info *funcInfo, stmts []ast.Stmt, held map[string]token.Position) {
	for _, s := range stmts {
		w.stmt(info, s, held)
	}
}

func (w *walker) stmt(info *funcInfo, s ast.Stmt, held map[string]token.Position) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(info, s.X, held)
	case *ast.DeferStmt:
		if class, kind, ok := w.lockOp(s.Call); ok {
			if kind == opUnlock {
				// defer Unlock: the lock stays held to function end on
				// this walk; edges keep accruing, which is exactly
				// right — anything acquired later nests inside it.
				_ = class
				return
			}
		}
		// A deferred arbitrary call runs at exit with unknown held
		// state; skip (conservative).
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(info, e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(info, v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(info, e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(info, s.Init, held)
		}
		w.expr(info, s.Cond, held)
		w.block(info, s.Body.List, cloneHeld(held))
		if s.Else != nil {
			w.stmt(info, s.Else, cloneHeld(held))
		}
	case *ast.BlockStmt:
		w.block(info, s.List, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(info, s.Init, held)
		}
		if s.Cond != nil {
			w.expr(info, s.Cond, held)
		}
		w.block(info, s.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		w.expr(info, s.X, held)
		w.block(info, s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(info, s.Init, held)
		}
		if s.Tag != nil {
			w.expr(info, s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(info, cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.block(info, cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.block(info, cc.Body, cloneHeld(held))
			}
		}
	case *ast.LabeledStmt:
		w.stmt(info, s.Stmt, held)
	case *ast.GoStmt:
		// Goroutine body holds nothing of ours; args evaluate here.
		for _, a := range s.Call.Args {
			w.expr(info, a, held)
		}
	case *ast.SendStmt:
		w.expr(info, s.Value, held)
	}
}

// expr scans an expression for lock operations and calls, updating
// held state (for statement-level Lock/Unlock) and recording events.
func (w *walker) expr(info *funcInfo, e ast.Expr, held map[string]token.Position) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed independently with an empty held set
		case *ast.CallExpr:
			pos := w.pass.Fset.Position(n.Pos())
			if class, kind, ok := w.lockOp(n); ok {
				switch kind {
				case opLock:
					if _, seen := info.direct[class]; !seen {
						info.direct[class] = pos
					}
					if len(held) > 0 {
						info.events = append(info.events, lockEvent{held: cloneHeld(held), pos: pos, class: class})
					}
					held[class] = pos
				case opUnlock:
					delete(held, class)
				}
				return false
			}
			if fn := w.pass.Callee(n); fn != nil && fn.Pkg() != nil {
				if fn.Pkg() == w.pass.Pkg {
					info.sameCalls = append(info.sameCalls, fn)
					if len(held) > 0 {
						info.events = append(info.events, lockEvent{held: cloneHeld(held), pos: pos, callee: fn})
					}
				} else {
					// Cross-package: the callee's summary, if it has
					// one, was exported when its package ran (import
					// order guarantees that happened first). Stdlib
					// callees simply have no fact.
					var fact acquiresFact
					if w.pass.ImportObjectFact(fn, &fact) {
						for _, cs := range fact.Classes {
							if _, ok := info.crossClasses[cs.Class]; !ok {
								info.crossClasses[cs.Class] = cs.Pos
							}
						}
						if len(held) > 0 {
							info.events = append(info.events, lockEvent{held: cloneHeld(held), pos: pos, callee: fn})
						}
					}
				}
			}
		}
		return true
	})
}

type lockOpKind uint8

const (
	opLock lockOpKind = iota
	opUnlock
)

// lockOp recognizes Lock/RLock/Unlock/RUnlock calls on sync.Mutex /
// sync.RWMutex values (direct fields, package vars, or embedded) and
// resolves the lock class. TryLock/TryRLock cannot block and are
// ignored.
func (w *walker) lockOp(call *ast.CallExpr) (class string, kind lockOpKind, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return "", 0, false
	}
	// The method must resolve to sync.Mutex/RWMutex (directly or via
	// embedding).
	fn, _ := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	class = w.classOf(sel.X)
	if class == "" {
		return "", 0, false
	}
	return class, kind, true
}

// classOf resolves the lock class of the expression a Lock method is
// called on:
//
//	u.mu.Lock()        -> pkg.unitType.mu      (field: owner type + field)
//	pkgVar.Lock()      -> pkg.pkgVar           (package-level var)
//	t.shards[i].mu     -> pkg.shard.mu         (through indexing)
//	s.Lock()           -> pkg.S                (embedded sync.Mutex)
//	localMu.Lock()     -> ""                   (function-local: no class)
func (w *walker) classOf(x ast.Expr) string {
	x = ast.Unparen(x)
	switch x := x.(type) {
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[x]
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
			if !v.IsField() && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
			// Local variable or receiver holding a mutex value: if
			// its type is a named non-sync type (embedded case), the
			// type is the class.
			return namedClass(w.pass.TypesInfo.TypeOf(x))
		}
		return namedClass(w.pass.TypesInfo.TypeOf(x))
	case *ast.SelectorExpr:
		// Field access: class is owner type + field name; or a
		// package-qualified var.
		if obj := w.pass.TypesInfo.Uses[x.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil {
				if v.IsField() {
					if owner := namedClass(w.pass.TypesInfo.TypeOf(x.X)); owner != "" {
						return owner + "." + v.Name()
					}
					return ""
				}
				if v.Parent() == v.Pkg().Scope() {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
		return ""
	case *ast.IndexExpr:
		return namedClass(w.pass.TypesInfo.TypeOf(x))
	case *ast.UnaryExpr, *ast.StarExpr, *ast.CallExpr:
		return namedClass(w.pass.TypesInfo.TypeOf(x))
	}
	return ""
}

// namedClass renders a named type as "pkgpath.Name"; sync itself and
// unnamed types yield "".
func namedClass(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() == "sync" {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// finish unions every package's edges and reports each cycle in the
// class graph once.
func finish(m *analysis.ModulePass) error {
	type edgeKey struct{ from, to string }
	best := map[edgeKey]edge{}
	m.EachPackageFact(&edgesFact{}, func(pkgPath string, f analysis.Fact) {
		for _, e := range f.(*edgesFact).Edges {
			k := edgeKey{e.From, e.To}
			if old, ok := best[k]; !ok || edgeLess(e, old) {
				best[k] = e
			}
		}
	})
	adj := map[string][]string{}
	for k := range best {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}

	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	reported := map[string]bool{} // canonical cycle id -> reported
	for _, start := range nodes {
		// Shortest cycle through `start`: BFS back to start.
		cyc := shortestCycle(adj, start)
		if cyc == nil {
			continue
		}
		id := canonicalCycleID(cyc)
		if reported[id] {
			continue
		}
		reported[id] = true

		// Describe each hop with its acquisition sites.
		var hops []string
		for i := 0; i < len(cyc); i++ {
			e := best[edgeKey{cyc[i], cyc[(i+1)%len(cyc)]}]
			via := ""
			if e.Via != "" {
				via = " via " + e.Via
			}
			hops = append(hops, fmt.Sprintf("%s (held since %s) -> %s (acquired at %s%s)",
				shortClass(e.From), posShort(e.FromPos), shortClass(e.To), posShort(e.ToPos), via))
		}
		anchor := best[edgeKey{cyc[0], cyc[(0+1)%len(cyc)]}]
		if len(cyc) == 1 {
			m.Report(anchor.ToPos,
				"lock-order deadlock risk: %s is acquired while an instance of %s is already held (held since %s); "+
					"a single instance self-deadlocks and two instances deadlock against the opposite order — "+
					"order instances explicitly or drop the nesting",
				shortClass(cyc[0]), shortClass(cyc[0]), posShort(anchor.FromPos))
		} else {
			m.Report(anchor.ToPos,
				"lock-order cycle (potential deadlock): %s", strings.Join(hops, "; "))
		}
	}
	return nil
}

// shortestCycle finds the shortest cycle starting and ending at
// start, as the node sequence [start, n1, n2, ...] (edge back to
// start implied); nil if none.
func shortestCycle(adj map[string][]string, start string) []string {
	type item struct {
		node string
		path []string
	}
	queue := []item{{node: start, path: []string{start}}}
	seen := map[string]bool{start: true}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, next := range adj[it.node] {
			if next == start {
				return it.path
			}
			if seen[next] {
				continue
			}
			seen[next] = true
			path := append(append([]string{}, it.path...), next)
			queue = append(queue, item{node: next, path: path})
		}
	}
	return nil
}

// canonicalCycleID rotates the cycle to start at its smallest node so
// A->B->A and B->A->B dedup to one report.
func canonicalCycleID(cyc []string) string {
	min := 0
	for i := range cyc {
		if cyc[i] < cyc[min] {
			min = i
		}
	}
	rotated := append(append([]string{}, cyc[min:]...), cyc[:min]...)
	return strings.Join(rotated, "->")
}

// shortClass trims the module path prefix for readable messages:
// "subtrav/internal/live.Runtime.mu" -> "live.Runtime.mu".
func shortClass(c string) string {
	if i := strings.LastIndex(c, "/"); i >= 0 {
		return c[i+1:]
	}
	return c
}

func posShort(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
