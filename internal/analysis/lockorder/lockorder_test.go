package lockorder_test

import (
	"testing"

	"subtrav/internal/analysis/analysistest"
	"subtrav/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "lockordertest")
}
