// Package lockordertest exercises the lockorder analyzer: an AB/BA
// cycle closed through a callee summary (flagged), a consistently
// ordered pair (allowed), same-class instance nesting (flagged as a
// self-cycle), and a second cycle excused with //lint:allow.
package lockordertest

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// lockB exists so the A->B edge is created through a call summary,
// not a direct Lock: aThenB never mentions b.mu.
func lockB() {
	b.mu.Lock()
	defer b.mu.Unlock()
}

func aThenB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB() // want "lock-order cycle"
}

func bThenA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// C and D are always taken in the same order: no cycle, no finding.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

var (
	c C
	d D
)

func cThenD() {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	d.mu.Unlock()
}

func cThenDAgain() {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// node nests two instances of one class: indistinguishable from
// self-deadlock at class granularity.
type node struct{ mu sync.Mutex }

func link(x, y *node) {
	x.mu.Lock()
	y.mu.Lock() // want "deadlock risk"
	y.mu.Unlock()
	x.mu.Unlock()
}

// E and F form a second cycle whose report is suppressed at its
// anchor (the E-held F-acquisition, the smaller edge of the cycle).
type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

var (
	e E
	f F
)

func eThenF() {
	e.mu.Lock()
	//lint:allow lockorder fixture: documents that suppression at the cycle anchor works
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func fThenE() {
	f.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}
