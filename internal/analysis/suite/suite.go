// Package suite assembles the subtrav-vet analyzers and the policy
// of where each applies. Analyzers are pure pattern detectors; this
// is the single place that encodes which packages carry which
// invariant, shared by the cmd/subtrav-vet driver and the smoke test.
package suite

import (
	"subtrav/internal/analysis"
	"subtrav/internal/analysis/allocfree"
	"subtrav/internal/analysis/atomicmix"
	"subtrav/internal/analysis/ctxplumb"
	"subtrav/internal/analysis/goroleak"
	"subtrav/internal/analysis/lockhold"
	"subtrav/internal/analysis/lockorder"
	"subtrav/internal/analysis/metriclabel"
	"subtrav/internal/analysis/simdet"
	"subtrav/internal/analysis/taintlen"
)

// Analyzers returns the nine checks in their canonical order: the
// five syntactic analyzers from the original suite, then the four
// dataflow-powered ones built on the CFG engine and the facts layer.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		simdet.Analyzer,
		atomicmix.Analyzer,
		lockhold.Analyzer,
		ctxplumb.Analyzer,
		metriclabel.Analyzer,
		lockorder.Analyzer,
		taintlen.Analyzer,
		allocfree.Analyzer,
		goroleak.Analyzer,
	}
}

// Scopes maps each analyzer to the packages its invariant governs.
func Scopes() map[string]analysis.Scope {
	return map[string]analysis.Scope{
		// Bit-for-bit determinism is a property of the simulator and
		// everything that feeds it: graph generation, workload
		// synthesis, the traversal kernels whose access traces the
		// simulator replays (a map-range there once leaked randomized
		// order into trace emission), and the auction solver whose
		// tie-breaks the paper's figures compare. The live runtime
		// measures real time by design and is exempt.
		// The load generator is in scope too: a load plan (and the
		// virtual-time Simulate report) must be a pure function of its
		// seed so BENCH_load.json stays byte-reproducible; only the
		// wall-clock driver in cmd/subtrav-load may touch real time.
		simdet.Analyzer.Name: {Paths: []string{
			"subtrav/internal/sim",
			"subtrav/internal/graph",
			"subtrav/internal/graphgen",
			"subtrav/internal/traverse",
			"subtrav/internal/auction",
			"subtrav/internal/workload",
			"subtrav/internal/loadgen",
		}},
		// Mixed atomic/plain access is a bug anywhere.
		atomicmix.Analyzer.Name: {},
		// The lock-hold discipline governs the hot path: runtime,
		// scheduler, simulator, cache, storage and the metrics layer
		// they all call into. Command wiring and the RPC service
		// (which serializes socket writes under a lock by design)
		// are exempt.
		lockhold.Analyzer.Name: {Paths: []string{
			"subtrav/internal/live",
			"subtrav/internal/sched",
			"subtrav/internal/sim",
			"subtrav/internal/cache",
			"subtrav/internal/storage",
			"subtrav/internal/obs",
			"subtrav/internal/metrics",
		}},
		// Library code must plumb contexts; main packages own root
		// contexts legitimately.
		ctxplumb.Analyzer.Name: {SkipMain: true},
		// Metric hygiene is a property of every registry call site.
		metriclabel.Analyzer.Name: {},
		// A lock-order cycle deadlocks no matter which packages the
		// two acquisition orders live in: module-wide, no exemptions.
		lockorder.Analyzer.Name: {},
		// Untrusted bytes enter through the snapshot reader and the
		// wire protocol; decoded sizes must be validated where they
		// are decoded, before they spread.
		taintlen.Analyzer.Name: {Paths: []string{
			"subtrav/internal/graphio",
			"subtrav/internal/service",
		}},
		// The //vet:hotpath marker gates allocfree per function, so
		// the package scope is unrestricted — an unmarked function is
		// never flagged.
		allocfree.Analyzer.Name: {},
		// A leaked goroutine is a leak wherever it is launched,
		// commands included.
		goroleak.Analyzer.Name: {},
	}
}
