package suite_test

import (
	"strings"
	"testing"

	"subtrav/internal/analysis"
	"subtrav/internal/analysis/suite"
)

// TestSuiteWiring asserts every analyzer is well-formed and every
// scope refers to a real analyzer, so a renamed analyzer cannot
// silently orphan its policy.
func TestSuiteWiring(t *testing.T) {
	if n := len(suite.Analyzers()); n != 9 {
		t.Errorf("suite has %d analyzers, want 9 (README table and CI summary list nine)", n)
	}
	names := map[string]bool{}
	for _, a := range suite.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing Name, Doc or Run", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for name, scope := range suite.Scopes() {
		if !names[name] {
			t.Errorf("scope for unknown analyzer %q", name)
		}
		for _, p := range scope.Paths {
			if !strings.HasPrefix(p, "subtrav/") {
				t.Errorf("scope path %q for %s is not module-qualified", p, name)
			}
		}
	}
}

// TestRepoIsClean is the driver smoke test: the full suite over the
// entire module must come back with zero findings — the same gate
// the CI static-analysis job enforces with cmd/subtrav-vet. It also
// exercises the loader end to end (go list, parsing, source-importer
// type-checking of every package).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader := analysis.NewLoader(".")
	pkgs, err := loader.Load("subtrav/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; go list pattern broken?", len(pkgs))
	}
	res, err := analysis.RunAll(pkgs, suite.Analyzers(), suite.Scopes())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("unexpected finding: %s", d)
	}
	// Stale-suppression hygiene rides along: a full-suite, full-module
	// run is the one context where an unused //lint:allow is
	// meaningful, so the smoke test keeps the tree free of them.
	for _, d := range res.UnusedAllows {
		t.Errorf("stale suppression: %s", d)
	}
}
