package chaos

import (
	"errors"
	"testing"
	"time"

	"subtrav/internal/faultpoint"
	"subtrav/internal/live"
	"subtrav/internal/sim"
)

// fastConfig: cheap sleeps so hundreds of queries finish quickly, but
// real enough that queues form.
func fastConfig(units int) live.Config {
	cost := sim.DefaultCostModel()
	cost.Disk.SeekNanos = 100_000
	return live.Config{
		NumUnits: units, MemoryPerUnit: 256 << 10, Cost: cost,
		TimeScale: 1e-3, BatchWindow: 50 * time.Microsecond,
	}
}

func TestStressBaseline(t *testing.T) {
	t.Parallel()
	rep, err := Run(Options{
		Seed:       1,
		Config:     fastConfig(4),
		Submitters: 16,
		Queries:    400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted != 400 {
		t.Errorf("accepted %d of 400 with default MaxPending", rep.Accepted)
	}
	if rep.Completed != 400 || rep.Failed != 0 || rep.TimedOut != 0 {
		t.Errorf("clean run produced %+v", rep)
	}
}

// TestStressFaultStorm is the headline scenario: latency spikes and
// transient errors on disk reads, unit stalls at dequeue, scheduler
// stalls forcing degradation, tight deadlines on a slice of the
// workload, and a small admission bound — all at once, all seeded.
// Run verifies exactly-once delivery, queue/in-flight bounds, and
// metrics conservation internally.
func TestStressFaultStorm(t *testing.T) {
	t.Parallel()
	cfg := fastConfig(4)
	cfg.QueueCap = 8
	cfg.MaxPending = 32
	cfg.SchedTimeout = 500 * time.Microsecond
	cfg.DegradeAfter = 2
	cfg.DegradeCooldown = 4
	cfg.Faults = faultpoint.NewSet(42).
		Add(faultpoint.DiskRead, faultpoint.Rule{Prob: 0.05, Delay: 300 * time.Microsecond}).     // latency spikes
		Add(faultpoint.DiskRead, faultpoint.Rule{Prob: 0.02, Err: errors.New("transient disk")}). // absorbed by the internal retry
		Add(faultpoint.Dequeue, faultpoint.Rule{Every: 97, Delay: 2 * time.Millisecond}).         // occasional unit stall
		Add(faultpoint.SchedRound, faultpoint.Rule{Every: 1, Delay: time.Millisecond})            // every round slow → degradation

	rep, err := Run(Options{
		Seed:          42,
		Config:        cfg,
		Submitters:    16,
		Queries:       400,
		DeadlineEvery: 10,
		Deadline:      500 * time.Microsecond,
		MaxRetries:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fault storm: %+v", *rep)
	if rep.Accepted == 0 {
		t.Fatal("nothing was accepted")
	}
	if rep.GaveUp > 0 {
		t.Errorf("%d queries gave up despite 20 retries", rep.GaveUp)
	}
	if rep.TimedOut == 0 {
		t.Error("tight deadlines on every 10th query produced no timeouts")
	}
	if rep.Metrics.DegradedRounds == 0 {
		t.Error("scheduler stalls never degraded to the fallback")
	}
	if cfg.Faults.TotalFired() == 0 {
		t.Error("no faults fired")
	}
}

// TestStressBackpressure squeezes the admission bound so hard that
// rejections are guaranteed, and checks the submitters ride them out
// with backoff.
func TestStressBackpressure(t *testing.T) {
	t.Parallel()
	cfg := fastConfig(2)
	cfg.QueueCap = 2
	cfg.MaxPending = 4
	cfg.Cost.Disk.SeekNanos = 2_000_000 // slower queries → longer saturation

	rep, err := Run(Options{
		Seed:       7,
		Config:     cfg,
		Submitters: 16,
		Queries:    160,
		MaxRetries: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("backpressure: %+v", *rep)
	if rep.RejectedAttempts == 0 {
		t.Fatal("MaxPending=4 under 16 submitters produced no rejections")
	}
	if rep.MaxInFlight > 4 {
		t.Errorf("in-flight reached %d, bound is 4", rep.MaxInFlight)
	}
	if rep.GaveUp > 0 {
		t.Errorf("%d queries gave up despite 40 retries", rep.GaveUp)
	}
}

// TestStressSeededTwiceAgrees reruns the same seed and checks the
// workload-level outcome is reproducible in the dimensions that are
// deterministic by construction (accepted and completed counts; fault
// schedules are ordinal-based, timing-dependent dimensions like
// rejections are not).
func TestStressSeededTwiceAgrees(t *testing.T) {
	t.Parallel()
	opts := func() Options {
		return Options{Seed: 99, Config: fastConfig(4), Submitters: 8, Queries: 200}
	}
	a, err := Run(opts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Accepted != b.Accepted || a.Completed != b.Completed || a.Failed != b.Failed {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestStressPersistentFaults: a workload where some queries genuinely
// fail (back-to-back disk errors exhaust the internal retry). Failures
// must be reported, counted, and conserved — not lost or retried
// forever.
func TestStressPersistentFaults(t *testing.T) {
	t.Parallel()
	cfg := fastConfig(2)
	cfg.Faults = faultpoint.NewSet(11).Add(faultpoint.DiskRead,
		faultpoint.Rule{Prob: 0.3, Err: errors.New("flaky disk")}) // 30%: retries often hit a second fault
	rep, err := Run(Options{
		Seed:       11,
		Config:     cfg,
		Submitters: 8,
		Queries:    200,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("persistent faults: %+v", *rep)
	if rep.Failed == 0 {
		t.Error("30% disk-error probability produced no failed queries")
	}
	if rep.Metrics.DiskFaultRetries == 0 {
		t.Error("no internal disk retries recorded")
	}
	if rep.Completed+rep.TimedOut != rep.Accepted {
		t.Errorf("accepted %d ≠ completed %d + timed-out %d", rep.Accepted, rep.Completed, rep.TimedOut)
	}
}

func TestOptionsValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Options{Seed: 1, Config: fastConfig(1), DeadlineEvery: 2}); err == nil {
		t.Error("DeadlineEvery without Deadline accepted")
	}
	if _, err := Run(Options{Seed: 1, Config: live.Config{NumUnits: -1}}); err == nil {
		t.Error("invalid runtime config accepted")
	}
}
