// Package chaos is a seeded stress harness for the live runtime: it
// drives hundreds of concurrent queries through a (typically
// fault-injected) deployment and checks the runtime's failure-semantics
// invariants from the outside:
//
//   - exactly-once resolution: every accepted submission delivers
//     exactly one Response — never zero, never two;
//   - bounded queues: no unit queue ever exceeds Config.QueueCap (+1
//     transient slot for the dispatcher's in-progress enqueue), and the
//     in-flight count never exceeds Config.MaxPending;
//   - conservation: at quiescence,
//     submitted = completed + rejected + timed-out holds exactly, and
//     the client-side view of each query's fate agrees with the
//     runtime's counters.
//
// Everything is seeded — the workload, the per-submitter retry jitter,
// and (via faultpoint) the fault schedule — so a failing run can be
// replayed. The package is used by its own tests (run under -race in
// CI) and is importable by benchmarks or soak tools.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/live"
	"subtrav/internal/metrics"
	"subtrav/internal/sched"
	"subtrav/internal/traverse"
	"subtrav/internal/xrand"
)

// Options configures one stress run.
type Options struct {
	// Seed drives the workload and the retry jitter (required, non-zero
	// recommended so runs are distinguishable).
	Seed uint64
	// Graph to traverse; nil generates a 500-vertex power-law graph
	// from Seed.
	Graph *graph.Graph
	// Config for the runtime under test. Zero-value fields take the
	// live package defaults.
	Config live.Config
	// Scheduler for the runtime; nil uses least-loaded.
	Scheduler sched.Scheduler

	// Submitters is the number of concurrent client goroutines
	// (default 8).
	Submitters int
	// Queries is the total number of queries across all submitters
	// (default 200).
	Queries int

	// DeadlineEvery gives every k-th query a Deadline-bounded context
	// (0 = no deadlines).
	DeadlineEvery int
	// Deadline is the per-query deadline used by DeadlineEvery.
	Deadline time.Duration

	// MaxRetries bounds the backoff retries a submitter spends on one
	// query after rejections (default 8). A query still rejected after
	// MaxRetries is counted in Report.GaveUp.
	MaxRetries int
	// RetryBase seeds the jittered exponential backoff (default 500µs).
	RetryBase time.Duration
}

func (o *Options) withDefaults() error {
	if o.Graph == nil {
		g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
			NumVertices: 500, NumEdges: 2500, Exponent: 2.3,
			Kind: graph.Undirected, Seed: o.Seed,
		})
		if err != nil {
			return err
		}
		o.Graph = g
	}
	if o.Scheduler == nil {
		o.Scheduler = sched.NewLeastLoaded()
	}
	if o.Submitters <= 0 {
		o.Submitters = 8
	}
	if o.Queries <= 0 {
		o.Queries = 200
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 8
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 500 * time.Microsecond
	}
	if o.DeadlineEvery > 0 && o.Deadline <= 0 {
		return fmt.Errorf("chaos: DeadlineEvery set with no Deadline")
	}
	return nil
}

// Report is the outcome of a stress run, from the submitters' point of
// view plus the runtime's own counters.
type Report struct {
	// Accepted is how many submissions were admitted (each delivered
	// exactly one response).
	Accepted int64
	// RejectedAttempts counts every rejected Submit call, including
	// ones whose query was later admitted on retry.
	RejectedAttempts int64
	// GaveUp is how many queries stayed rejected after MaxRetries.
	GaveUp int64
	// Retries is the total number of backoff retries performed.
	Retries int64

	// Completed / Failed / TimedOut classify the responses received:
	// Failed are completions whose Err was a non-deadline execution
	// error; TimedOut are responses wrapping a context error.
	Completed int64
	Failed    int64
	TimedOut  int64

	// MaxQueued is the deepest unit queue observed while sampling.
	MaxQueued int
	// MaxInFlight is the highest InFlight() observed while sampling.
	MaxInFlight int

	// Metrics is the runtime's own final snapshot.
	Metrics metrics.Snapshot
}

// Run executes one seeded stress run and verifies the invariants,
// returning a non-nil error on any violation. The runtime is created,
// stressed, drained and closed inside Run.
func Run(opts Options) (*Report, error) {
	if err := opts.withDefaults(); err != nil {
		return nil, err
	}
	rt, err := live.New(opts.Graph, opts.Config, opts.Scheduler)
	if err != nil {
		return nil, err
	}
	cfg := opts.Config // after live.New, defaults are NOT echoed back; re-derive bounds below
	rep, runErr := stress(rt, opts)
	closeErr := rt.Close()
	if runErr != nil {
		return rep, runErr
	}
	if closeErr != nil {
		return rep, fmt.Errorf("chaos: Close: %w", closeErr)
	}
	rep.Metrics = rt.Metrics()
	return rep, verify(rt, rep, cfg, opts)
}

// stress drives the workload against an already-running runtime.
func stress(rt *live.Runtime, opts Options) (*Report, error) {
	rep := &Report{}
	var (
		accepted  atomic.Int64
		rejected  atomic.Int64
		gaveUp    atomic.Int64
		retries   atomic.Int64
		completed atomic.Int64
		failed    atomic.Int64
		timedOut  atomic.Int64

		violationMu sync.Mutex
		violation   error // first invariant violation
	)
	fail := func(err error) {
		violationMu.Lock()
		if violation == nil {
			violation = err
		}
		violationMu.Unlock()
	}

	// Sampler: watch queue depths and in-flight while the storm runs.
	sampleStop := make(chan struct{})
	var sampleWg sync.WaitGroup
	var maxQueued, maxInFlight int64
	sampleWg.Add(1)
	go func() {
		defer sampleWg.Done()
		for {
			select {
			case <-sampleStop:
				return
			case <-time.After(200 * time.Microsecond):
			}
			for _, u := range rt.Stats() {
				if int64(u.Queued) > atomic.LoadInt64(&maxQueued) {
					atomic.StoreInt64(&maxQueued, int64(u.Queued))
				}
			}
			if n := int64(rt.InFlight()); n > atomic.LoadInt64(&maxInFlight) {
				atomic.StoreInt64(&maxInFlight, n)
			}
		}
	}()

	perSubmitter := opts.Queries / opts.Submitters
	var wg sync.WaitGroup
	for s := 0; s < opts.Submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := xrand.New(opts.Seed*1_000_003 + uint64(s) + 1)
			nv := opts.Graph.NumVertices()
			for i := 0; i < perSubmitter; i++ {
				q := traverse.Query{
					Op:        traverse.OpBFS,
					Start:     graph.VertexID(rng.Intn(nv)),
					Depth:     1 + rng.Intn(3),
					MaxVisits: 5 + rng.Intn(40),
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				if opts.DeadlineEvery > 0 && (s*perSubmitter+i)%opts.DeadlineEvery == 0 {
					ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
				}
				ch := submitWithRetry(rt, ctx, q, opts, rng, &rejected, &retries)
				if ch == nil {
					gaveUp.Add(1)
					if cancel != nil {
						cancel()
					}
					continue
				}
				accepted.Add(1)
				resp, ok := <-ch
				if !ok {
					fail(fmt.Errorf("chaos: response channel closed without a response"))
				} else {
					switch {
					case resp.Err == nil:
						completed.Add(1)
					case errors.Is(resp.Err, context.DeadlineExceeded) || errors.Is(resp.Err, context.Canceled):
						timedOut.Add(1)
					default:
						completed.Add(1)
						failed.Add(1)
					}
					// Exactly-once: a second response must never appear.
					select {
					case extra, ok := <-ch:
						if ok {
							fail(fmt.Errorf("chaos: double response for one query: %+v", extra))
						}
					default:
					}
				}
				if cancel != nil {
					cancel()
				}
			}
		}(s)
	}
	wg.Wait()
	close(sampleStop)
	sampleWg.Wait()

	rep.Accepted = accepted.Load()
	rep.RejectedAttempts = rejected.Load()
	rep.GaveUp = gaveUp.Load()
	rep.Retries = retries.Load()
	rep.Completed = completed.Load()
	rep.Failed = failed.Load()
	rep.TimedOut = timedOut.Load()
	rep.MaxQueued = int(atomic.LoadInt64(&maxQueued))
	rep.MaxInFlight = int(atomic.LoadInt64(&maxInFlight))
	violationMu.Lock()
	defer violationMu.Unlock()
	return rep, violation
}

// submitWithRetry is the client side of the backpressure contract:
// jittered exponential backoff on rejection, never shorter than the
// server's retry-after hint. Returns nil after MaxRetries rejections.
func submitWithRetry(rt *live.Runtime, ctx context.Context, q traverse.Query, opts Options, rng *xrand.RNG, rejected, retries *atomic.Int64) <-chan live.Response {
	for attempt := 0; ; attempt++ {
		ch, err := rt.SubmitCtx(ctx, q)
		if err == nil {
			return ch
		}
		var rej *live.RejectedError
		if !errors.As(err, &rej) {
			// Closed or invalid — not part of the stress contract.
			return nil
		}
		rejected.Add(1)
		if attempt >= opts.MaxRetries {
			return nil
		}
		retries.Add(1)
		ceil := opts.RetryBase << uint(attempt)
		if ceil > 50*time.Millisecond {
			ceil = 50 * time.Millisecond
		}
		delay := time.Duration(rng.Float64() * float64(ceil))
		if delay < rej.RetryAfter {
			delay = rej.RetryAfter
		}
		time.Sleep(delay)
	}
}

// verify cross-checks the submitters' view against the runtime's
// counters and the configured bounds.
func verify(rt *live.Runtime, rep *Report, cfg live.Config, opts Options) error {
	m := rep.Metrics
	if !m.Conserved() {
		return fmt.Errorf("chaos: conservation violated: %v", m)
	}
	if got := rt.InFlight(); got != 0 {
		return fmt.Errorf("chaos: %d queries still in flight after drain", got)
	}
	if m.Submitted != rep.Accepted+rep.RejectedAttempts {
		return fmt.Errorf("chaos: runtime saw %d submissions, submitters made %d accepted + %d rejected",
			m.Submitted, rep.Accepted, rep.RejectedAttempts)
	}
	if m.Rejected != rep.RejectedAttempts {
		return fmt.Errorf("chaos: runtime counted %d rejections, submitters saw %d", m.Rejected, rep.RejectedAttempts)
	}
	if m.Completed != rep.Completed {
		return fmt.Errorf("chaos: runtime counted %d completions, submitters received %d", m.Completed, rep.Completed)
	}
	if m.TimedOut != rep.TimedOut {
		return fmt.Errorf("chaos: runtime counted %d timeouts, submitters received %d", m.TimedOut, rep.TimedOut)
	}
	if m.Failed != rep.Failed {
		return fmt.Errorf("chaos: runtime counted %d failures, submitters received %d", m.Failed, rep.Failed)
	}
	// Queue bound: QueueCap plus the dispatcher's single in-progress
	// enqueue slot (queued is incremented just before the channel send).
	if qcap := cfg.QueueCap; qcap > 0 && rep.MaxQueued > qcap+1 {
		return fmt.Errorf("chaos: observed queue depth %d > QueueCap %d (+1 transient)", rep.MaxQueued, qcap)
	}
	if mp := cfg.MaxPending; mp > 0 && rep.MaxInFlight > mp {
		return fmt.Errorf("chaos: observed in-flight %d > MaxPending %d", rep.MaxInFlight, mp)
	}
	return nil
}
