package service

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client is a pipelined TCP client: multiple goroutines may call Do
// concurrently; requests share one connection and responses are
// matched by ID.
type Client struct {
	conn net.Conn

	encMu sync.Mutex
	enc   *gob.Encoder

	mu      sync.Mutex
	pending map[uint64]chan Reply
	nextID  uint64
	err     error // terminal connection error
	closed  bool
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan Reply),
	}
	go c.readLoop(gob.NewDecoder(conn))
	return c, nil
}

func (c *Client) readLoop(dec *gob.Decoder) {
	for {
		var reply Reply
		if err := dec.Decode(&reply); err != nil {
			c.fail(fmt.Errorf("service: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[reply.ID]
		if ok {
			delete(c.pending, reply.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- reply
		}
	}
}

// fail terminates every pending call with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan Reply)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Stats fetches runtime statistics from the server.
func (c *Client) Stats() (Reply, error) {
	return c.roundTrip(Request{Kind: KindStats})
}

// Do sends one query and waits for its reply. Server-side execution
// errors come back inside the Reply's Err field as a non-nil error.
func (c *Client) Do(q WireQuery) (Reply, error) {
	return c.roundTrip(Request{Kind: KindQuery, Query: q})
}

func (c *Client) roundTrip(req Request) (Reply, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Reply{}, err
	}
	if c.closed {
		c.mu.Unlock()
		return Reply{}, errors.New("service: client closed")
	}
	id := c.nextID
	c.nextID++
	ch := make(chan Reply, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req.ID = id
	c.encMu.Lock()
	err := c.enc.Encode(req)
	c.encMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Reply{}, fmt.Errorf("service: send: %w", err)
	}

	reply, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("service: connection closed")
		}
		return Reply{}, err
	}
	if reply.Err != "" {
		return reply, fmt.Errorf("service: remote: %s", reply.Err)
	}
	return reply, nil
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(errors.New("service: client closed"))
	return err
}
