package service

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"subtrav/internal/xrand"
)

// ErrRejected marks a reply with CodeRejected: the server's admission
// control refused the query under load. Retryable; see DoRetry.
var ErrRejected = errors.New("service: rejected (queue full)")

// ErrDeadline marks a reply with CodeDeadline: the query's deadline
// expired server-side and the traversal was cancelled.
var ErrDeadline = errors.New("service: deadline exceeded")

// Client is a pipelined TCP client: multiple goroutines may call Do
// concurrently; requests share one connection and responses are
// matched by ID.
type Client struct {
	conn net.Conn

	encMu sync.Mutex
	enc   *gob.Encoder

	mu      sync.Mutex
	pending map[uint64]chan Reply
	nextID  uint64
	err     error // terminal connection error
	closed  bool

	retries atomic.Int64
	jitter  atomic.Uint64
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan Reply),
	}
	go c.readLoop(gob.NewDecoder(conn))
	return c, nil
}

func (c *Client) readLoop(dec *gob.Decoder) {
	for {
		var reply Reply
		if err := dec.Decode(&reply); err != nil {
			c.fail(fmt.Errorf("service: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[reply.ID]
		if ok {
			delete(c.pending, reply.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- reply
		}
	}
}

// fail terminates every pending call with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan Reply)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Stats fetches runtime statistics from the server.
func (c *Client) Stats() (Reply, error) {
	return c.roundTrip(Request{Kind: KindStats})
}

// Trace fetches up to n of the server's most recent trace spans
// (oldest first). The result is empty when the server runs with
// tracing disabled.
func (c *Client) Trace(n int) ([]WireSpan, error) {
	reply, err := c.roundTrip(Request{Kind: KindTrace, TraceN: n})
	if err != nil {
		return nil, err
	}
	return reply.Spans, nil
}

// Do sends one query and waits for its reply. Server-side execution
// errors come back inside the Reply's Err field as a non-nil error.
func (c *Client) Do(q WireQuery) (Reply, error) {
	return c.DoTimeout(q, 0)
}

// DoTimeout is Do with a server-side deadline: the server cancels the
// query if it has not finished within timeout (0 = no deadline). A
// deadline miss returns an error matching errors.Is(err, ErrDeadline).
func (c *Client) DoTimeout(q WireQuery, timeout time.Duration) (Reply, error) {
	return c.roundTrip(Request{Kind: KindQuery, Query: q, TimeoutNanos: timeout.Nanoseconds()})
}

// RetryPolicy tunes DoRetry's jittered exponential backoff.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k waits a
	// uniform random duration in (0, BaseDelay·2^k], never less than
	// the server's retry-after hint (default 1ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff pause (default 100ms).
	MaxDelay time.Duration
	// Seed fixes the jitter sequence for deterministic tests; 0 draws
	// a per-call seed from the client.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	return p
}

// DoRetry sends a query with a server-side timeout, retrying with
// jittered exponential backoff while the server rejects it under
// backpressure (ErrRejected). Other failures — execution errors,
// deadline misses, transport loss — return immediately. timeout 0
// means no per-attempt deadline.
func (c *Client) DoRetry(q WireQuery, timeout time.Duration, policy RetryPolicy) (Reply, error) {
	policy = policy.withDefaults()
	seed := policy.Seed
	if seed == 0 {
		seed = c.jitter.Add(0x9e3779b97f4a7c15)
	}
	rng := xrand.New(seed)
	var (
		reply Reply
		err   error
	)
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		reply, err = c.DoTimeout(q, timeout)
		if err == nil || !errors.Is(err, ErrRejected) {
			return reply, err
		}
		if attempt == policy.MaxAttempts-1 {
			break
		}
		c.retries.Add(1)
		ceil := policy.BaseDelay << uint(attempt)
		if ceil > policy.MaxDelay {
			ceil = policy.MaxDelay
		}
		delay := time.Duration(rng.Float64() * float64(ceil))
		if hint := time.Duration(reply.RetryAfterNanos); delay < hint {
			delay = hint
		}
		time.Sleep(delay)
	}
	return reply, err
}

// Retries returns how many backoff retries this client has performed
// across all DoRetry calls.
func (c *Client) Retries() int64 { return c.retries.Load() }

func (c *Client) roundTrip(req Request) (Reply, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Reply{}, err
	}
	if c.closed {
		c.mu.Unlock()
		return Reply{}, errors.New("service: client closed")
	}
	id := c.nextID
	c.nextID++
	ch := make(chan Reply, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	req.ID = id
	c.encMu.Lock()
	err := c.enc.Encode(req)
	c.encMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return Reply{}, fmt.Errorf("service: send: %w", err)
	}

	reply, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errors.New("service: connection closed")
		}
		return Reply{}, err
	}
	switch reply.Code {
	case CodeRejected:
		return reply, fmt.Errorf("service: remote: %s: %w", reply.Err, ErrRejected)
	case CodeDeadline:
		return reply, fmt.Errorf("service: remote: %s: %w", reply.Err, ErrDeadline)
	}
	if reply.Err != "" {
		return reply, fmt.Errorf("service: remote: %s", reply.Err)
	}
	return reply, nil
}

// Close tears down the connection; pending calls fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(errors.New("service: client closed"))
	return err
}
