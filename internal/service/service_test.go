package service

import (
	"strings"
	"sync"
	"testing"
	"time"

	"subtrav/internal/affinity"
	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/live"
	"subtrav/internal/sim"
	"subtrav/internal/traverse"
)

// startService spins up a runtime + server on a loopback port.
func startService(t *testing.T) (*Client, func()) {
	t.Helper()
	g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 500, NumEdges: 2500, Exponent: 2.3,
		Kind: graph.Undirected, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cost := sim.DefaultCostModel()
	cost.Disk.SeekNanos = 50_000
	rt, err := live.NewAuction(g, live.Config{
		NumUnits: 4, MemoryPerUnit: 256 << 10, Cost: cost,
		TimeScale: 1e-4, BatchWindow: 50 * time.Microsecond,
		TraceBuffer: 128,
	}, affinity.DefaultConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(rt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	return client, func() {
		client.Close()
		srv.Close()
		rt.Close()
	}
}

func TestBFSOverWire(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	reply, err := client.Do(WireQuery{Op: "bfs", Start: 0, Depth: 2, MaxVisits: 100})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Visited <= 0 {
		t.Errorf("visited = %d", reply.Visited)
	}
	if reply.ExecNanos <= 0 {
		t.Errorf("exec = %d", reply.ExecNanos)
	}
}

func TestSSSPOverWire(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	reply, err := client.Do(WireQuery{Op: "sssp", Start: 0, Target: 1, Depth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Found && reply.PathLen <= 0 {
		t.Errorf("found with path length %d", reply.PathLen)
	}
}

func TestRWROverWireMatchesLocal(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	reply, err := client.Do(WireQuery{Op: "rwr", Start: 3, Steps: 200, RestartProb: 0.2, TopK: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// The walk is deterministic by seed, so wire and local agree.
	g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 500, NumEdges: 2500, Exponent: 2.3,
		Kind: graph.Undirected, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := traverse.Execute(g, traverse.Query{
		Op: traverse.OpRWR, Start: 3, Steps: 200, RestartProb: 0.2, TopK: 5, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Ranking) != len(want.Ranking) {
		t.Fatalf("ranking length %d vs %d", len(reply.Ranking), len(want.Ranking))
	}
	for i := range want.Ranking {
		if reply.Ranking[i].Vertex != int32(want.Ranking[i].Vertex) {
			t.Fatalf("ranking[%d] differs", i)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	var wg sync.WaitGroup
	errs := make(chan error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := client.Do(WireQuery{Op: "bfs", Start: int32(i % 40), Depth: 1})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestRemoteErrors(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	if _, err := client.Do(WireQuery{Op: "nope", Start: 0}); err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("unknown op error = %v", err)
	}
	if _, err := client.Do(WireQuery{Op: "bfs", Start: 99999, Depth: 1}); err == nil {
		t.Error("invalid start vertex accepted")
	}
	// The connection survives bad requests.
	if _, err := client.Do(WireQuery{Op: "bfs", Start: 0, Depth: 1}); err != nil {
		t.Errorf("connection broken after bad request: %v", err)
	}
}

func TestPredicatesOverWire(t *testing.T) {
	t.Parallel()
	// Graph where vertex properties gate traversal.
	b := graph.NewBuilder(graph.Undirected, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	for v := graph.VertexID(0); v < 3; v++ {
		kind := "good"
		if v == 1 {
			kind = "bad"
		}
		b.SetVertexProps(v, graph.Properties{"kind": graph.String(kind)})
	}
	g := b.Build()
	rt, err := live.New(g, live.Config{NumUnits: 1, TimeScale: 0}, nil)
	if err == nil {
		rt.Close()
		t.Fatal("nil scheduler accepted")
	}
	rt, err = live.NewAuction(g, live.Config{NumUnits: 1, TimeScale: 0}, affinity.DefaultConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv, err := NewServer(rt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reply, err := client.Do(WireQuery{
		Op: "bfs", Start: 0, Depth: 5,
		VertexPropName: "kind", VertexPropValue: "good",
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Visited != 1 {
		t.Errorf("visited %d, want 1 (vertex 1 blocked by predicate)", reply.Visited)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	client.Close()
	if _, err := client.Do(WireQuery{Op: "bfs", Start: 0, Depth: 1}); err == nil {
		t.Error("Do after Close succeeded")
	}
}

func TestServerValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewServer(nil); err == nil {
		t.Error("nil runtime accepted")
	}
}

func TestStatsRPC(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	for i := 0; i < 12; i++ {
		if _, err := client.Do(WireQuery{Op: "bfs", Start: int32(i), Depth: 1}); err != nil {
			t.Fatal(err)
		}
	}
	reply, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if reply.TotalCompleted != 12 {
		t.Errorf("completed = %d, want 12", reply.TotalCompleted)
	}
	if len(reply.Units) != 4 {
		t.Fatalf("units = %d, want 4", len(reply.Units))
	}
	sum := 0
	for _, u := range reply.Units {
		sum += u.Completed
	}
	if sum != 12 {
		t.Errorf("per-unit completions sum to %d", sum)
	}
}

func TestTwoClients(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	// A second connection to the same server.
	addr := client.conn.RemoteAddr().String()
	client2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			if _, err := client.Do(WireQuery{Op: "bfs", Start: int32(i), Depth: 1}); err != nil {
				errs <- err
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			if _, err := client2.Do(WireQuery{Op: "bfs", Start: int32(i + 100), Depth: 1}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPredicateFilterOverWire(t *testing.T) {
	t.Parallel()
	// Path 0-1-2-3 with ages; filter blocks expansion past age 40.
	b := graph.NewBuilder(graph.Undirected, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	for v := graph.VertexID(0); v < 4; v++ {
		b.SetVertexProps(v, graph.Properties{"age": graph.Int(int64(20 * (v + 1)))})
	}
	g := b.Build()
	rt, err := live.NewAuction(g, live.Config{NumUnits: 1, TimeScale: 0}, affinity.DefaultConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv, err := NewServer(rt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// ages: v0=20 v1=40 v2=60 v3=80. Filter age <= 40: vertices 0,1
	// pass, 2 fails (touched but not expanded) → visited 2.
	reply, err := client.Do(WireQuery{
		Op: "bfs", Start: 0, Depth: 5, VertexFilter: "age <= 40",
	})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Visited != 2 {
		t.Errorf("visited = %d, want 2", reply.Visited)
	}
	// Bad filter: clean remote error, connection survives.
	if _, err := client.Do(WireQuery{Op: "bfs", Start: 0, Depth: 1, VertexFilter: "age =="}); err == nil {
		t.Error("bad filter accepted")
	}
	if _, err := client.Do(WireQuery{Op: "bfs", Start: 0, Depth: 1}); err != nil {
		t.Errorf("connection broken after bad filter: %v", err)
	}
}

func TestAllOpsOverWire(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	// collab on the generic graph: every op path in ToQuery.
	if _, err := client.Do(WireQuery{Op: "collab", Start: 2, SimilarityThreshold: 0.5}); err != nil {
		t.Errorf("collab: %v", err)
	}
	if _, err := client.Do(WireQuery{
		Op: "bfs", Start: 0, Depth: 1,
		EdgePropName: "nope", EdgePropValue: "x",
		EdgeFilter:   "has(nothing)",
		VertexFilter: "has(anything) || true == true",
	}); err == nil {
		// VertexFilter "true == true": "true" parses as ident then
		// needs cmp — valid grammar (ident true, == , literal true).
		// Whether it matches is irrelevant; the call must round-trip.
		_ = err
	}
	// Bad edge filter surfaces cleanly.
	if _, err := client.Do(WireQuery{Op: "bfs", Start: 0, Depth: 1, EdgeFilter: "((("}); err == nil {
		t.Error("bad edge filter accepted")
	}
}

func TestListenOnBusyAddressFails(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	addr := client.conn.RemoteAddr().String()
	rtGraph, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 50, NumEdges: 100, Exponent: 2.5, Kind: graph.Undirected, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := live.NewAuction(rtGraph, live.Config{NumUnits: 1, TimeScale: 0}, affinity.DefaultConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv, err := NewServer(rt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen(addr); err == nil {
		srv.Close()
		t.Fatal("listening on a busy address should fail")
	}
	srv.Close()
}

func TestServerCloseIdempotentAndRejectsLateListen(t *testing.T) {
	t.Parallel()
	g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 50, NumEdges: 100, Exponent: 2.5, Kind: graph.Undirected, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := live.NewAuction(g, live.Config{NumUnits: 1, TimeScale: 0}, affinity.DefaultConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	srv, err := NewServer(rt)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Close should fail")
	}
}

func TestDialFailure(t *testing.T) {
	t.Parallel()
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should fail")
	}
}
