package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"subtrav/internal/affinity"
	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/live"
	"subtrav/internal/sim"
)

// startSaturableService runs a deliberately tiny deployment — one slow
// unit, MaxPending 2 — so a handful of concurrent queries saturates it.
func startSaturableService(t *testing.T, cfg live.Config) (*Client, *live.Runtime, func()) {
	t.Helper()
	g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 500, NumEdges: 2500, Exponent: 2.3,
		Kind: graph.Undirected, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := live.NewAuction(g, cfg, affinity.DefaultConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(rt)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	return client, rt, func() {
		client.Close()
		srv.Close()
		rt.Close()
	}
}

func slowServiceConfig() live.Config {
	cost := sim.DefaultCostModel()
	cost.Disk.SeekNanos = 2_000_000 // 2 ms per miss at TimeScale 1
	cost.Disk.Channels = 1
	return live.Config{
		NumUnits: 1, MemoryPerUnit: 256 << 10, Cost: cost,
		TimeScale: 1, BatchWindow: 50 * time.Microsecond,
		QueueCap: 1, MaxPending: 2,
	}
}

// TestRejectionThenRetrySucceeds is the backpressure acceptance
// scenario: a client hitting a full queue receives an explicit
// rejection (not a hang), and the same query then succeeds through
// DoRetry's backoff loop.
func TestRejectionThenRetrySucceeds(t *testing.T) {
	t.Parallel()
	client, rt, stop := startSaturableService(t, slowServiceConfig())
	defer stop()

	q := WireQuery{Op: "bfs", Start: 0, Depth: 2, MaxVisits: 20}

	// Flood without retries: with MaxPending=2 and ~40 ms per query,
	// most of these must be rejected explicitly.
	var wg sync.WaitGroup
	var rejected, ok int
	var mu sync.Mutex
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := client.DoTimeout(WireQuery{Op: "bfs", Start: int32(i * 13 % 500), Depth: 2, MaxVisits: 20}, 0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case errors.Is(err, ErrRejected):
				rejected++
				if reply.RetryAfterNanos <= 0 {
					t.Errorf("rejection carried no retry-after hint: %+v", reply)
				}
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if rejected == 0 {
		t.Fatal("no explicit rejections from a saturated service")
	}
	if ok == 0 {
		t.Fatal("no query got through at all")
	}

	// The same pressure with DoRetry: backoff absorbs the rejections.
	var retryWg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		retryWg.Add(1)
		go func(i int) {
			defer retryWg.Done()
			policy := RetryPolicy{MaxAttempts: 50, BaseDelay: 5 * time.Millisecond, Seed: uint64(i + 1)}
			if _, err := client.DoRetry(q, 0, policy); err != nil {
				errs <- err
			}
		}(i)
	}
	retryWg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("DoRetry failed despite backoff: %v", err)
	}
	if client.Retries() == 0 {
		t.Error("no backoff retries were needed — the service never pushed back")
	}

	m := rt.Metrics()
	if int(m.Rejected) < rejected {
		t.Errorf("runtime counted %d rejections, client saw %d", m.Rejected, rejected)
	}
	if !m.Conserved() {
		t.Errorf("not conserved: %v", m)
	}
}

// TestDeadlineOverWire is the deadline acceptance scenario: a query
// whose deadline expires mid-traversal comes back as ErrDeadline, the
// unit is reusable, and the drop shows up in the service counters.
func TestDeadlineOverWire(t *testing.T) {
	t.Parallel()
	cfg := slowServiceConfig()
	cfg.MaxPending = 8
	client, rt, stop := startSaturableService(t, cfg)
	defer stop()

	// ~40 misses × 2 ms ≫ the 10 ms deadline.
	reply, err := client.DoTimeout(WireQuery{Op: "bfs", Start: 0, Depth: 3, MaxVisits: 40}, 10*time.Millisecond)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v (reply %+v), want ErrDeadline", err, reply)
	}

	// The unit is reusable: an undeadlined query completes.
	if _, err := client.Do(WireQuery{Op: "bfs", Start: 0, Depth: 1, MaxVisits: 5}); err != nil {
		t.Fatalf("service unusable after a deadline miss: %v", err)
	}

	// The drop is visible in the counters once the runtime resolves it.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Metrics().TimedOut == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	c := stats.Counters
	if c.TimedOut < 1 {
		t.Errorf("wire counters show no timeout: %+v", c)
	}
	if c.Submitted != c.Completed+c.Rejected+c.TimedOut {
		t.Errorf("wire counters not conserved: %+v", c)
	}
}

// TestDoRetryGivesUp: when saturation persists past MaxAttempts the
// last rejection is surfaced, still matching ErrRejected.
func TestDoRetryGivesUp(t *testing.T) {
	t.Parallel()
	client, _, stop := startSaturableService(t, slowServiceConfig())
	defer stop()

	// Keep the single unit pinned down.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = client.DoTimeout(WireQuery{Op: "bfs", Start: int32(i), Depth: 3, MaxVisits: 60}, 0)
		}(i)
	}
	defer wg.Wait()
	time.Sleep(5 * time.Millisecond) // let the pinners be admitted

	policy := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: 2 * time.Microsecond, Seed: 7}
	_, err := client.DoRetry(WireQuery{Op: "bfs", Start: 9, Depth: 2, MaxVisits: 20}, 0, policy)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected after exhausting attempts", err)
	}
}

// TestRetryPolicyDefaults pins the documented defaults.
func TestRetryPolicyDefaults(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 4 || p.BaseDelay != time.Millisecond || p.MaxDelay != 100*time.Millisecond {
		t.Errorf("defaults = %+v", p)
	}
}
