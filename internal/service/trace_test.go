package service

import (
	"strings"
	"testing"

	"subtrav/internal/obs"
)

// TestTraceRPC exercises KindTrace end to end: run queries, fetch the
// span ring over the wire, and check the WireSpan ↔ obs.Span mapping.
func TestTraceRPC(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()

	const n = 6
	for i := 0; i < n; i++ {
		if _, err := client.Do(WireQuery{Op: "bfs", Start: int32(i), Depth: 1}); err != nil {
			t.Fatal(err)
		}
	}
	spans, err := client.Trace(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != n {
		t.Fatalf("got %d spans, want %d", len(spans), n)
	}
	for _, w := range spans {
		if w.Op != "bfs" || w.Outcome != obs.OutcomeCompleted {
			t.Errorf("span %d: op=%q outcome=%q", w.QueryID, w.Op, w.Outcome)
		}
		if w.Unit < 0 || w.Unit >= 4 {
			t.Errorf("span %d unit = %d", w.QueryID, w.Unit)
		}
		if w.ExecNanos <= 0 {
			t.Errorf("span %d exec = %d", w.QueryID, w.ExecNanos)
		}
		// Round-trip through the shared schema must be lossless enough
		// for CSV tooling: same identity, timing and outcome.
		s := w.ToSpan()
		if s.QueryID != w.QueryID || s.Unit != w.Unit || s.ExecNanos != w.ExecNanos || s.Outcome != w.Outcome {
			t.Errorf("ToSpan round-trip mismatch: %+v vs %+v", w, s)
		}
		if !strings.HasPrefix(s.CSVRow(), "") { // CSVRow must not panic
			t.Error("unreachable")
		}
	}

	// Asking for fewer spans truncates to the most recent.
	few, err := client.Trace(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) != 2 {
		t.Fatalf("Trace(2) returned %d spans", len(few))
	}
	if few[1].QueryID != spans[n-1].QueryID {
		t.Errorf("Trace(2) newest = %d, want %d", few[1].QueryID, spans[n-1].QueryID)
	}
}

// TestTenantTravelsOverWire checks WireQuery.Tenant reaches the
// runtime's per-tenant accounting and comes back on trace spans,
// including through the WireSpan ↔ obs.Span round trip.
func TestTenantTravelsOverWire(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()

	if _, err := client.Do(WireQuery{Op: "bfs", Start: 1, Depth: 1, Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	spans, err := client.Trace(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	w := spans[0]
	if w.Tenant != "acme" {
		t.Errorf("span tenant = %q, want acme", w.Tenant)
	}
	s := w.ToSpan()
	if s.Tenant != "acme" || s.Preferred != w.Preferred || s.Imbalance != w.Imbalance {
		t.Errorf("ToSpan dropped tenant/scheduling detail: %+v vs %+v", w, s)
	}
	if s.Imbalance < 1 {
		t.Errorf("span imbalance = %g, want >= 1", s.Imbalance)
	}
	if !strings.Contains(s.CSVRow(), ",acme,") {
		t.Errorf("CSV row missing tenant column: %s", s.CSVRow())
	}
}

// TestStatsCarriesCacheCounters checks that the Stats RPC exposes the
// per-unit cache hit/miss totals -watch renders.
func TestStatsCarriesCacheCounters(t *testing.T) {
	t.Parallel()
	client, stop := startService(t)
	defer stop()
	for i := 0; i < 10; i++ {
		if _, err := client.Do(WireQuery{Op: "bfs", Start: 3, Depth: 2, MaxVisits: 100}); err != nil {
			t.Fatal(err)
		}
	}
	reply, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var hits, misses int64
	for _, u := range reply.Units {
		hits += u.CacheHits
		misses += u.CacheMisses
		if hr := u.HitRate(); hr < 0 || hr > 1 {
			t.Errorf("unit %d hit rate %g", u.Unit, hr)
		}
	}
	if misses == 0 {
		t.Error("no cache misses reported over the wire")
	}
	if hits == 0 {
		t.Error("repeated identical queries reported no cache hits")
	}
}
