package service

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"subtrav/internal/live"
)

// Server serves traversal queries from a live runtime over TCP.
type Server struct {
	rt *live.Runtime

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a runtime. The caller retains ownership of the
// runtime (Close the server first, then the runtime).
func NewServer(rt *live.Runtime) (*Server, error) {
	if rt == nil {
		return nil, fmt.Errorf("service: runtime is required")
	}
	return &Server{rt: rt, conns: make(map[net.Conn]struct{})}, nil
}

// Listen starts accepting on addr (e.g. "127.0.0.1:7070"; port 0 picks
// a free port) and returns the bound address. Serving happens on
// background goroutines; call Close to stop.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, errors.New("service: server closed")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn decodes a stream of Requests, executes each on the
// runtime, and writes Replies as they finish (responses may be out of
// order; the client matches by ID).
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	var inflight sync.WaitGroup
	defer inflight.Wait()

	send := func(r Reply) {
		encMu.Lock()
		defer encMu.Unlock()
		// Encode errors mean the connection is gone; the deferred
		// close handles cleanup.
		_ = enc.Encode(r)
	}

	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				// Malformed stream: drop the connection.
				_ = err
			}
			return
		}
		if req.Kind == KindStats {
			m := s.rt.Metrics()
			reply := Reply{
				ID:             req.ID,
				TotalCompleted: s.rt.Completed(),
				Counters: WireCounters{
					Submitted: m.Submitted, Completed: m.Completed,
					Rejected: m.Rejected, TimedOut: m.TimedOut,
					Failed: m.Failed, DegradedRounds: m.DegradedRounds,
					DiskFaultRetries: m.DiskFaultRetries,
				},
			}
			for _, u := range s.rt.Stats() {
				reply.Units = append(reply.Units, WireUnitStats{
					Unit: u.Unit, Queued: u.Queued, Busy: u.Busy, Completed: u.Completed,
					CacheHits: u.CacheHits, CacheMisses: u.CacheMisses,
				})
			}
			send(reply)
			continue
		}
		if req.Kind == KindTrace {
			reply := Reply{ID: req.ID}
			for _, sp := range s.rt.Trace(req.TraceN) {
				reply.Spans = append(reply.Spans, wireSpan(sp))
			}
			send(reply)
			continue
		}
		query, err := req.Query.ToQuery()
		if err != nil {
			send(Reply{ID: req.ID, Code: CodeError, Err: err.Error()})
			continue
		}
		ctx := context.Background()
		var cancel context.CancelFunc
		if req.TimeoutNanos > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNanos))
		}
		ch, err := s.rt.SubmitTenantCtx(ctx, req.Query.Tenant, query)
		if err != nil {
			if cancel != nil {
				cancel()
			}
			var rej *live.RejectedError
			if errors.As(err, &rej) {
				send(Reply{
					ID: req.ID, Code: CodeRejected, Err: err.Error(),
					RetryAfterNanos: rej.RetryAfter.Nanoseconds(),
				})
				continue
			}
			send(Reply{ID: req.ID, Code: CodeError, Err: err.Error()})
			continue
		}
		inflight.Add(1)
		go func(id uint64, ch <-chan live.Response, ctx context.Context, cancel context.CancelFunc) {
			defer inflight.Done()
			if cancel != nil {
				defer cancel()
			}
			var resp live.Response
			select {
			case resp = <-ch:
			case <-ctx.Done():
				// Deadline hit while the query is queued or executing:
				// answer the client now; the runtime resolves (and
				// counts) the abandoned query when it reaches it.
				send(Reply{ID: id, Code: CodeDeadline, Err: ctx.Err().Error()})
				return
			}
			switch {
			case resp.Err == nil:
				send(replyFrom(id, resp.Result, resp.Unit, resp.Wait.Nanoseconds(), resp.Exec.Nanoseconds()))
			case errors.Is(resp.Err, context.DeadlineExceeded) || errors.Is(resp.Err, context.Canceled):
				send(Reply{ID: id, Code: CodeDeadline, Err: resp.Err.Error()})
			default:
				send(Reply{ID: id, Code: CodeError, Err: resp.Err.Error()})
			}
		}(req.ID, ch, ctx, cancel)
	}
}

// Close stops the listener and all connections and waits for handlers
// to finish. The runtime is not closed.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
