// Package service exposes a live runtime as a network query service:
// the deployment shape of Section VI, where "the scheduler and the
// property graph traversal engines communicate through a set of
// sockets". The protocol is length-free gob framing over TCP with
// pipelined request/response matching by ID.
package service

import (
	"fmt"

	"subtrav/internal/graph"
	"subtrav/internal/obs"
	"subtrav/internal/predicate"
	"subtrav/internal/traverse"
)

// WireQuery is the serializable query form. It mirrors
// traverse.Query minus the predicate closures (declarative predicates
// travel as PropEquals pairs).
type WireQuery struct {
	// Op is one of "bfs", "sssp", "collab", "rwr".
	Op     string
	Start  int32
	Target int32

	// Tenant attributes the query to a named tenant for per-tenant
	// admission accounting and metrics ("" = the default bucket). The
	// server folds unseen tenants past its cardinality cap into one
	// overflow bucket, so clients may not get per-name isolation under
	// tenant-name floods.
	Tenant string

	Depth     int
	MaxVisits int

	// VertexPropEquals / EdgePropEquals, when non-empty, require the
	// named string property to equal the given value.
	VertexPropName, VertexPropValue string
	EdgePropName, EdgePropValue     string

	// VertexFilter and EdgeFilter carry full predicate expressions in
	// the internal/predicate language (e.g. `age >= 30 && has(photo)`)
	// and compose (AND) with the PropEquals fields above.
	VertexFilter string
	EdgeFilter   string

	SimilarityThreshold float64

	Steps       int
	RestartProb float64
	TopK        int
	Seed        uint64
}

// ToQuery converts the wire form into an executable query.
func (w WireQuery) ToQuery() (traverse.Query, error) {
	q := traverse.Query{
		Start:               graph.VertexID(w.Start),
		Target:              graph.VertexID(w.Target),
		Depth:               w.Depth,
		MaxVisits:           w.MaxVisits,
		SimilarityThreshold: w.SimilarityThreshold,
		Steps:               w.Steps,
		RestartProb:         w.RestartProb,
		TopK:                w.TopK,
		Seed:                w.Seed,
	}
	switch w.Op {
	case "bfs":
		q.Op = traverse.OpBFS
	case "sssp":
		q.Op = traverse.OpSSSP
	case "collab":
		q.Op = traverse.OpCollab
	case "rwr":
		q.Op = traverse.OpRWR
	default:
		return traverse.Query{}, fmt.Errorf("service: unknown op %q", w.Op)
	}
	var vertexPreds, edgePreds []graph.Predicate
	if w.VertexPropName != "" {
		vertexPreds = append(vertexPreds, graph.PropEquals(w.VertexPropName, graph.String(w.VertexPropValue)))
	}
	if w.EdgePropName != "" {
		edgePreds = append(edgePreds, graph.PropEquals(w.EdgePropName, graph.String(w.EdgePropValue)))
	}
	if w.VertexFilter != "" {
		pred, err := predicate.Compile(w.VertexFilter)
		if err != nil {
			return traverse.Query{}, fmt.Errorf("service: vertex filter: %w", err)
		}
		if pred != nil {
			vertexPreds = append(vertexPreds, pred)
		}
	}
	if w.EdgeFilter != "" {
		pred, err := predicate.Compile(w.EdgeFilter)
		if err != nil {
			return traverse.Query{}, fmt.Errorf("service: edge filter: %w", err)
		}
		if pred != nil {
			edgePreds = append(edgePreds, pred)
		}
	}
	switch len(vertexPreds) {
	case 0:
	case 1:
		q.VertexPred = vertexPreds[0]
	default:
		q.VertexPred = graph.MatchAll(vertexPreds...)
	}
	switch len(edgePreds) {
	case 0:
	case 1:
		q.EdgePred = edgePreds[0]
	default:
		q.EdgePred = graph.MatchAll(edgePreds...)
	}
	return q, nil
}

// RequestKind discriminates request types.
type RequestKind uint8

const (
	// KindQuery executes a traversal (the default zero value).
	KindQuery RequestKind = iota
	// KindStats returns runtime statistics instead of running a query.
	KindStats
	// KindTrace returns the last TraceN completed trace spans from the
	// runtime's span ring (empty when the server runs with tracing
	// off).
	KindTrace
)

// Request is one framed client request.
type Request struct {
	ID    uint64
	Kind  RequestKind
	Query WireQuery
	// TimeoutNanos, when positive, bounds the query's end-to-end
	// server-side latency: the server derives a context deadline that
	// far in the future, and the runtime cancels the traversal when it
	// expires (reply code CodeDeadline).
	TimeoutNanos int64
	// TraceN is how many spans a KindTrace request asks for.
	TraceN int
}

// ReplyCode classifies a reply for the client's retry logic.
type ReplyCode uint8

const (
	// CodeOK is a successful reply (the zero value).
	CodeOK ReplyCode = iota
	// CodeError is a non-retryable failure: malformed query or
	// execution error.
	CodeError
	// CodeRejected means admission control refused the query
	// (backpressure). Retrying after RetryAfterNanos is expected to
	// succeed once load drains; see Client.DoRetry.
	CodeRejected
	// CodeDeadline means the query's deadline expired before it
	// finished; the traversal was cancelled and its unit freed.
	CodeDeadline
)

// WireCounters mirrors metrics.Snapshot on the wire (see
// internal/metrics.Counters for field semantics).
type WireCounters struct {
	Submitted, Completed, Rejected, TimedOut int64
	Failed, DegradedRounds, DiskFaultRetries int64
}

// WireUnitStats mirrors live.UnitStats on the wire.
type WireUnitStats struct {
	Unit        int32
	Queued      int
	Busy        bool
	Completed   int
	CacheHits   int64
	CacheMisses int64
}

// HitRate returns CacheHits/(CacheHits+CacheMisses), or 0 when idle.
func (u WireUnitStats) HitRate() float64 {
	total := u.CacheHits + u.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(u.CacheHits) / float64(total)
}

// WireSpan mirrors obs.Span on the wire (see internal/obs for field
// semantics). Kept as an explicit mirror so the wire format stays
// stable if the in-process span schema grows.
type WireSpan struct {
	QueryID int64
	Op      string
	Tenant  string
	Start   int32

	SubmitNanos   int64
	ScheduleNanos int64
	StartNanos    int64
	EndNanos      int64

	Unit          int32
	Affinity      float64
	Imbalance     float64
	Preferred     bool
	QueueLen      int
	AuctionRounds int
	Degraded      bool
	FellBack      bool
	EmptyRow      bool

	CacheHits     int
	CacheMisses   int
	BytesRead     int64
	DiskWaitNanos int64

	WaitNanos int64
	ExecNanos int64
	Outcome   string
	Err       string
}

// wireSpan converts an obs.Span to its wire form.
func wireSpan(s obs.Span) WireSpan {
	return WireSpan{
		QueryID: s.QueryID, Op: s.Op, Tenant: s.Tenant, Start: s.Start,
		SubmitNanos: s.SubmitNanos, ScheduleNanos: s.ScheduleNanos,
		StartNanos: s.StartNanos, EndNanos: s.EndNanos,
		Unit: s.Unit, Affinity: s.Affinity, Imbalance: s.Imbalance,
		Preferred: s.Preferred, QueueLen: s.QueueLen,
		AuctionRounds: s.AuctionRounds, Degraded: s.Degraded,
		FellBack: s.FellBack, EmptyRow: s.EmptyRow,
		CacheHits: s.CacheHits, CacheMisses: s.CacheMisses,
		BytesRead: s.BytesRead, DiskWaitNanos: s.DiskWaitNanos,
		WaitNanos: s.WaitNanos, ExecNanos: s.ExecNanos,
		Outcome: s.Outcome, Err: s.Err,
	}
}

// ToSpan converts the wire form back to the shared span schema (e.g.
// for CSV rendering with obs.Span.CSVRow).
func (w WireSpan) ToSpan() obs.Span {
	return obs.Span{
		QueryID: w.QueryID, Op: w.Op, Tenant: w.Tenant, Start: w.Start,
		SubmitNanos: w.SubmitNanos, ScheduleNanos: w.ScheduleNanos,
		StartNanos: w.StartNanos, EndNanos: w.EndNanos,
		Unit: w.Unit, Affinity: w.Affinity, Imbalance: w.Imbalance,
		Preferred: w.Preferred, QueueLen: w.QueueLen,
		AuctionRounds: w.AuctionRounds, Degraded: w.Degraded,
		FellBack: w.FellBack, EmptyRow: w.EmptyRow,
		CacheHits: w.CacheHits, CacheMisses: w.CacheMisses,
		BytesRead: w.BytesRead, DiskWaitNanos: w.DiskWaitNanos,
		WaitNanos: w.WaitNanos, ExecNanos: w.ExecNanos,
		Outcome: w.Outcome, Err: w.Err,
	}
}

// WireRec is a serializable recommendation.
type WireRec struct {
	Product    int32
	Similarity float64
}

// WireRanked is a serializable ranking entry.
type WireRanked struct {
	Vertex int32
	Score  float64
}

// Reply is one framed server response.
type Reply struct {
	ID   uint64
	Err  string
	Code ReplyCode
	// RetryAfterNanos is the server's backoff hint on CodeRejected.
	RetryAfterNanos int64

	Visited         int
	Found           bool
	PathLen         int
	Recommendations []WireRec
	Ranking         []WireRanked

	Unit      int32
	WaitNanos int64
	ExecNanos int64

	// Stats fields, set for KindStats replies.
	TotalCompleted int64
	Units          []WireUnitStats
	Counters       WireCounters

	// Spans, set for KindTrace replies (oldest first).
	Spans []WireSpan
}

// replyFrom converts an execution outcome into the wire form.
func replyFrom(id uint64, result traverse.Result, unit int32, waitNanos, execNanos int64) Reply {
	r := Reply{
		ID:        id,
		Visited:   result.Visited,
		Found:     result.Found,
		PathLen:   result.PathLen,
		Unit:      unit,
		WaitNanos: waitNanos,
		ExecNanos: execNanos,
	}
	for _, rec := range result.Recommendations {
		r.Recommendations = append(r.Recommendations, WireRec{Product: int32(rec.Product), Similarity: rec.Similarity})
	}
	for _, rk := range result.Ranking {
		r.Ranking = append(r.Ranking, WireRanked{Vertex: int32(rk.Vertex), Score: rk.Score})
	}
	return r
}
