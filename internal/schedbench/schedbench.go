// Package schedbench builds the reproducible scheduler hot-path
// benchmark workloads shared by the `go test -bench` suite
// (bench_test.go) and the `subtrav-bench sched` command, which runs
// the same workloads and emits the tracked BENCH_sched.json artifact
// (see report.go). The fixtures pin every source of randomness to a
// seed, so two runs on the same machine measure the same work.
//
// The suite covers the three operations that dominate a scheduling
// round (Figure 6 pipeline):
//
//   - BuildAnchors — the workload-aware affinity matrix build, in both
//     its snapshot-cache form and the per-(vertex, unit) reference
//     form, so every report carries its own before/after baseline;
//   - DispatchRound — a full Auction.Assign segment (matrix build +
//     auction + fallbacks);
//   - Record — signature-table visit recording, the traversal-side
//     half of the signature contract.
package schedbench

import (
	"fmt"

	"subtrav/internal/affinity"
	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/sched"
	"subtrav/internal/signature"
	"subtrav/internal/traverse"
	"subtrav/internal/xrand"
)

// NumVertices is the fixture graph size. Large enough that signature
// shards and caches see realistic spread, small enough to build in
// milliseconds.
const NumVertices = 4096

// Seed pins fixture generation.
const Seed = 0x5EDBE7C4

// unit is a canned unit view/state with plausible mixed load.
type unit struct {
	queue     int
	completed int
	memory    int64
}

func (u *unit) QueueLen() int              { return u.queue }
func (u *unit) CompletedSince(t int64) int { return u.completed }
func (u *unit) MemoryBudget() int64        { return u.memory }
func (u *unit) Busy() bool                 { return u.queue > 0 }

// Fixture is one reproducible scheduler hot-path workload: a seeded
// random graph of the given average degree, a pre-warmed signature
// table, an affinity scorer, P units and a P-task batch.
type Fixture struct {
	P      int
	Degree int

	Graph   *graph.Graph
	Sigs    *signature.Table
	Clock   *signature.ManualClock
	Scorer  *affinity.Scorer
	Auction *sched.Auction

	Units      []affinity.UnitView
	UnitStates []sched.UnitState
	Anchors    [][]graph.VertexID
	Tasks      []*sched.Task
}

// NewFixture builds the workload for P units over a graph with the
// given average degree. parallelism is the scorer's row-construction
// knob (0 = sequential).
func NewFixture(p, degree, parallelism int) (*Fixture, error) {
	g, err := graphgen.Random(graphgen.RandomConfig{
		NumVertices: NumVertices,
		NumEdges:    NumVertices * degree / 2,
		Kind:        graph.Undirected,
		Seed:        Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("schedbench: %w", err)
	}
	rng := xrand.New(Seed ^ uint64(p)<<8 ^ uint64(degree))

	// Pre-warm the signature table the way a running cluster would:
	// each unit has traversed a contiguous region (strong locality),
	// regions overlap their neighbors by half, and a sprinkle of
	// random visits gives lists multiple entries per vertex.
	sigs := signature.NewTable(0)
	clock := &signature.ManualClock{}
	var now int64
	region := NumVertices / p
	for proc := 0; proc < p; proc++ {
		lo := proc * region
		hi := lo + region + region/2
		for v := lo; v < hi; v++ {
			now++
			sigs.Record(graph.VertexID(v%NumVertices), int32(proc), now)
		}
	}
	for i := 0; i < NumVertices; i++ {
		now++
		sigs.Record(graph.VertexID(rng.Intn(NumVertices)), int32(rng.Intn(p)), now)
	}
	clock.Set(now + 1)

	cfg := affinity.DefaultConfig()
	cfg.Parallelism = parallelism
	scorer, err := affinity.NewScorer(g, sigs, clock, cfg)
	if err != nil {
		return nil, fmt.Errorf("schedbench: %w", err)
	}
	auc, err := sched.NewAuction(scorer, sched.AuctionConfig{
		NumUnits:      p,
		Epsilon:       1e-3,
		WorkloadAware: true,
	})
	if err != nil {
		return nil, fmt.Errorf("schedbench: %w", err)
	}

	units := make([]affinity.UnitView, p)
	states := make([]sched.UnitState, p)
	for i := 0; i < p; i++ {
		u := &unit{
			queue:     i % 5,
			completed: 2,
			memory:    int64(32) << 20,
		}
		if i%7 == 0 {
			u.memory = 0 // a few unlimited-buffer units
		}
		units[i] = u
		states[i] = u
	}

	// One segment's worth of tasks: P queries with locality-clustered
	// starts; every fourth is a bidirectional SSSP, contributing a
	// second affinity anchor like the live batch path does.
	tasks := make([]*sched.Task, p)
	anchors := make([][]graph.VertexID, p)
	for i := 0; i < p; i++ {
		start := graph.VertexID(rng.Intn(NumVertices))
		q := traverse.Query{Op: traverse.OpBFS, Start: start, Depth: 2}
		anchors[i] = []graph.VertexID{start}
		if i%4 == 3 {
			target := graph.VertexID(rng.Intn(NumVertices))
			if target != start {
				q = traverse.Query{Op: traverse.OpSSSP, Start: start, Target: target, Depth: 4}
				anchors[i] = []graph.VertexID{start, target}
			}
		}
		tasks[i] = &sched.Task{ID: int64(i), Query: q}
	}

	return &Fixture{
		P:          p,
		Degree:     degree,
		Graph:      g,
		Sigs:       sigs,
		Clock:      clock,
		Scorer:     scorer,
		Auction:    auc,
		Units:      units,
		UnitStates: states,
		Anchors:    anchors,
		Tasks:      tasks,
	}, nil
}

// UnitCounts and Degrees are the benchmark matrix axes required by
// the tracked baseline: P ∈ {4, 16, 64} × degree ∈ {8, 64}.
var (
	UnitCounts = []int{4, 16, 64}
	Degrees    = []int{8, 64}
)
