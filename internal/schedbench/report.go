package schedbench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"subtrav/internal/graph"
)

// Result is one measured benchmark cell.
type Result struct {
	// Name follows the go-bench convention, e.g.
	// "BuildAnchors/snap/P=16/deg=8".
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// LocksPerOp is the signature-table shard-lock acquisitions per
	// operation (only meaningful for cells that read the table).
	LocksPerOp float64 `json:"locks_per_op,omitempty"`
	// BuildsPerSec is 1e9/NsPerOp for matrix-build cells.
	BuildsPerSec float64 `json:"builds_per_sec,omitempty"`
}

// Speedup compares the snapshot BuildAnchors against the reference
// path for one (P, degree) cell, both measured in the same process.
type Speedup struct {
	// NsRatio is reference ns/op divided by snapshot ns/op (>1 means
	// the snapshot path is faster).
	NsRatio float64 `json:"ns_ratio"`
	// LockRatio is reference locks/op divided by snapshot locks/op.
	LockRatio float64 `json:"lock_ratio"`
}

// Report is the BENCH_sched.json payload: environment metadata, the
// per-cell results, and the snapshot-vs-reference speedup matrix. It
// deliberately carries no timestamps or hostnames, so regenerating it
// on the same machine produces a meaningful diff.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Smoke marks a -benchtime=1x-style run whose numbers only prove
	// the suite executes; comparisons need a full run.
	Smoke bool `json:"smoke"`

	Results []Result           `json:"results"`
	Speedup map[string]Speedup `json:"speedup"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// measurement is the raw outcome of timing iters calls of a closure.
type measurement struct {
	iters  int
	ns     float64
	allocs float64
	bytes  float64
}

// measure times iters executions of fn with alloc accounting. The
// emitter hand-rolls this instead of driving testing.Benchmark so the
// smoke/full iteration policy is explicit and independent of testing
// flags (the go-test bench suite in bench_test.go covers that side).
func measure(iters int, fn func()) measurement {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return measurement{
		iters:  iters,
		ns:     float64(elapsed.Nanoseconds()) / n,
		allocs: float64(m1.Mallocs-m0.Mallocs) / n,
		bytes:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
	}
}

// calibrate picks an iteration count targeting ~200ms of measured
// work (1 in smoke mode), after a warmup that also pages in lazily
// built state.
func calibrate(smoke bool, fn func()) int {
	if smoke {
		fn() // still warm up so the measured single op is honest
		return 1
	}
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= 20*time.Millisecond || iters >= 1<<16 {
			perOp := float64(elapsed.Nanoseconds()) / float64(iters)
			target := int(200e6 / perOp)
			if target < 10 {
				target = 10
			}
			if target > 100000 {
				target = 100000
			}
			return target
		}
		iters *= 2
	}
}

// Run executes the scheduler hot-path suite and assembles the report.
// smoke runs every cell once (CI); a full run calibrates iteration
// counts for stable numbers. parallelism is the scorer knob for the
// snapshot path (the reference path ignores it).
func Run(smoke bool, parallelism int, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Smoke:     smoke,
		Speedup:   make(map[string]Speedup),
	}

	for _, p := range UnitCounts {
		for _, deg := range Degrees {
			fx, err := NewFixture(p, deg, parallelism)
			if err != nil {
				return nil, err
			}
			cell := fmt.Sprintf("P=%d/deg=%d", p, deg)

			snap := runBuild(rep, "BuildAnchors/snap/"+cell, smoke, fx, func() {
				fx.Scorer.BuildAnchors(fx.Anchors, fx.Units)
			})
			ref := runBuild(rep, "BuildAnchors/ref/"+cell, smoke, fx, func() {
				fx.Scorer.BuildAnchorsReference(fx.Anchors, fx.Units)
			})
			rep.Speedup[cell] = Speedup{
				NsRatio:   ratio(ref.NsPerOp, snap.NsPerOp),
				LockRatio: ratio(ref.LocksPerOp, snap.LocksPerOp),
			}
			logf("%-28s snap %.0f ns/op %.0f locks/op | ref %.0f ns/op %.0f locks/op (%.1fx ns, %.1fx locks)",
				cell, snap.NsPerOp, snap.LocksPerOp, ref.NsPerOp, ref.LocksPerOp,
				rep.Speedup[cell].NsRatio, rep.Speedup[cell].LockRatio)
		}
	}

	for _, p := range UnitCounts {
		fx, err := NewFixture(p, 8, parallelism)
		if err != nil {
			return nil, err
		}
		runBuild(rep, fmt.Sprintf("DispatchRound/P=%d/deg=8", p), smoke, fx, func() {
			fx.Auction.Assign(fx.Tasks, fx.UnitStates)
		})
	}

	for _, p := range UnitCounts {
		fx, err := NewFixture(p, 8, parallelism)
		if err != nil {
			return nil, err
		}
		var v, t int64
		runBuild(rep, fmt.Sprintf("Record/P=%d", p), smoke, fx, func() {
			t++
			v++
			fx.Sigs.Record(graph.VertexID(v%NumVertices), int32(v%int64(p)), t)
		})
	}
	return rep, nil
}

// runBuild measures one cell (with signature-lock accounting) and
// appends it to the report.
func runBuild(rep *Report, name string, smoke bool, fx *Fixture, fn func()) Result {
	iters := calibrate(smoke, fn)
	lock0 := fx.Sigs.LockAcquisitions()
	m := measure(iters, fn)
	locks := float64(fx.Sigs.LockAcquisitions()-lock0) / float64(m.iters)
	res := Result{
		Name:        name,
		Iters:       m.iters,
		NsPerOp:     m.ns,
		AllocsPerOp: m.allocs,
		BytesPerOp:  m.bytes,
		LocksPerOp:  locks,
	}
	if m.ns > 0 {
		res.BuildsPerSec = 1e9 / m.ns
	}
	rep.Results = append(rep.Results, res)
	return res
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
