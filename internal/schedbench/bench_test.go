package schedbench

import (
	"fmt"
	"testing"

	"subtrav/internal/graph"
)

// BenchmarkBuildAnchors measures the affinity matrix build — snapshot
// path and per-pair reference path — across the tracked P × degree
// matrix. Run with -benchtime=1x for a smoke check (CI does).
func BenchmarkBuildAnchors(b *testing.B) {
	for _, p := range UnitCounts {
		for _, deg := range Degrees {
			fx, err := NewFixture(p, deg, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("snap/P=%d/deg=%d", p, deg), func(b *testing.B) {
				b.ReportAllocs()
				lock0 := fx.Sigs.LockAcquisitions()
				for i := 0; i < b.N; i++ {
					fx.Scorer.BuildAnchors(fx.Anchors, fx.Units)
				}
				b.ReportMetric(float64(fx.Sigs.LockAcquisitions()-lock0)/float64(b.N), "locks/op")
			})
			b.Run(fmt.Sprintf("ref/P=%d/deg=%d", p, deg), func(b *testing.B) {
				b.ReportAllocs()
				lock0 := fx.Sigs.LockAcquisitions()
				for i := 0; i < b.N; i++ {
					fx.Scorer.BuildAnchorsReference(fx.Anchors, fx.Units)
				}
				b.ReportMetric(float64(fx.Sigs.LockAcquisitions()-lock0)/float64(b.N), "locks/op")
			})
		}
	}
}

// BenchmarkBuildAnchorsParallel measures the snapshot path with the
// row-construction knob engaged.
func BenchmarkBuildAnchorsParallel(b *testing.B) {
	for _, p := range UnitCounts {
		fx, err := NewFixture(p, 8, 4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("P=%d/deg=8/workers=4", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fx.Scorer.BuildAnchors(fx.Anchors, fx.Units)
			}
		})
	}
}

// BenchmarkDispatchRound measures a full scheduling segment: matrix
// build, auction, fallbacks.
func BenchmarkDispatchRound(b *testing.B) {
	for _, p := range UnitCounts {
		for _, deg := range Degrees {
			fx, err := NewFixture(p, deg, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("P=%d/deg=%d", p, deg), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fx.Auction.Assign(fx.Tasks, fx.UnitStates)
				}
			})
		}
	}
}

// BenchmarkRecord measures the traversal-side signature write path,
// serial and contended.
func BenchmarkRecord(b *testing.B) {
	for _, p := range UnitCounts {
		fx, err := NewFixture(p, 8, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("serial/P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fx.Sigs.Record(graph.VertexID(i%NumVertices), int32(i%p), int64(i))
			}
		})
		b.Run(fmt.Sprintf("parallel/P=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					fx.Sigs.Record(graph.VertexID(i%NumVertices), int32(i%p), int64(i))
				}
			})
		})
	}
}

// TestRunSmoke pins the emitter: a smoke run must produce a result for
// every cell the issue tracks and a speedup entry per (P, degree).
func TestRunSmoke(t *testing.T) {
	rep, err := Run(true, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Smoke {
		t.Error("smoke run not marked as smoke")
	}
	want := len(UnitCounts)*len(Degrees)*2 + len(UnitCounts) + len(UnitCounts)
	if len(rep.Results) != want {
		t.Errorf("got %d results, want %d", len(rep.Results), want)
	}
	if len(rep.Speedup) != len(UnitCounts)*len(Degrees) {
		t.Errorf("got %d speedup cells, want %d", len(rep.Speedup), len(UnitCounts)*len(Degrees))
	}
	for _, r := range rep.Results {
		if r.NsPerOp <= 0 || r.Iters != 1 {
			t.Errorf("%s: ns/op=%g iters=%d, want positive single-iteration sample", r.Name, r.NsPerOp, r.Iters)
		}
	}
	// Even a single-iteration sample shows the lock-budget gap: the
	// snapshot path takes one lock per distinct closure vertex, the
	// reference path ~P per closure vertex per task.
	for cell, sp := range rep.Speedup {
		if sp.LockRatio < 2 {
			t.Errorf("%s: lock ratio %.2f, want the snapshot path to hold a clear lock advantage", cell, sp.LockRatio)
		}
	}
}
