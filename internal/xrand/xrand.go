// Package xrand provides the deterministic random primitives shared by
// the graph generators, workload generators and simulator: a splittable
// 64-bit PRNG and an alias table for O(1) weighted sampling.
//
// Determinism policy: every stochastic component in this repository
// takes an explicit seed and derives independent streams with Split,
// so a top-level experiment seed fully determines all results.
package xrand

import "math"

// RNG is a splitmix64 generator. It is tiny, fast, and — unlike a
// shared math/rand source — trivially splittable into independent
// streams, which the simulator uses to give each processing unit and
// each query generator its own stream.
//
// The zero value is a valid generator seeded with 0; prefer New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed} }

// Reseed resets r to the exact stream of New(seed). It lets hot paths
// keep an RNG by value (or embedded in a reusable workspace) instead
// of allocating a fresh generator per query.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// Split derives an independent generator from r. The derived stream is
// decorrelated from the parent by an extra mixing step.
func (r *RNG) Split() *RNG { return &RNG{state: mix(r.Uint64() ^ 0x9e3779b97f4a7c15)} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Alias is a Walker alias table for O(1) sampling from a fixed
// discrete distribution.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table over the given non-negative weights.
// It panics if weights is empty or sums to zero.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("xrand: NewAlias with no weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("xrand: NewAlias weight must be finite and non-negative")
		}
		sum += w
	}
	if sum == 0 {
		panic("xrand: NewAlias weights sum to zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// N returns the number of outcomes.
func (a *Alias) N() int { return len(a.prob) }

// Sample draws one index distributed according to the weights.
func (a *Alias) Sample(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
