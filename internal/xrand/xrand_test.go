package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams with different seeds collided %d/64 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 32; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatal("split children should not be identical streams")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100_000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	var sum, sumSq float64
	const n = 200_000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(17)
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential variate %g < 0", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Errorf("shuffle changed contents, sum=%d", sum)
	}
}

func TestAliasUniform(t *testing.T) {
	a := NewAlias([]float64{1, 1, 1, 1})
	r := New(29)
	counts := make([]int, 4)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.01 {
			t.Errorf("outcome %d frequency %g, want ~0.25", i, frac)
		}
	}
}

func TestAliasSkewed(t *testing.T) {
	a := NewAlias([]float64{9, 1})
	r := New(31)
	counts := make([]int, 2)
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[a.Sample(r)]++
	}
	frac := float64(counts[0]) / n
	if math.Abs(frac-0.9) > 0.01 {
		t.Errorf("heavy outcome frequency %g, want ~0.9", frac)
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias([]float64{1, 0, 1})
	r := New(37)
	for i := 0; i < 10_000; i++ {
		if a.Sample(r) == 1 {
			t.Fatal("zero-weight outcome was sampled")
		}
	}
}

func TestAliasPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"all-zero": {0, 0},
		"negative": {1, -1},
		"nan":      {1, math.NaN()},
		"inf":      {1, math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%s) should panic", name)
				}
			}()
			NewAlias(weights)
		}()
	}
}

// Property: alias sampling frequencies converge to the normalized
// weights for arbitrary weight vectors.
func TestAliasMatchesWeightsQuick(t *testing.T) {
	f := func(raw []uint8, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, w := range raw {
			weights[i] = float64(w)
			sum += float64(w)
		}
		if sum == 0 {
			return true
		}
		a := NewAlias(weights)
		r := New(seed)
		const n = 40_000
		counts := make([]int, len(weights))
		for i := 0; i < n; i++ {
			counts[a.Sample(r)]++
		}
		for i := range weights {
			want := weights[i] / sum
			got := float64(counts[i]) / n
			if math.Abs(got-want) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
