package obs

import (
	"fmt"
	"strings"
)

// Span outcomes. The set mirrors the live runtime's lifecycle
// partition: every admitted query ends completed (possibly failed) or
// timed out; rejected queries never reach a unit.
const (
	OutcomeCompleted = "completed"
	OutcomeFailed    = "failed"
	OutcomeTimeout   = "timeout"
	OutcomeRejected  = "rejected"
)

// Span is one query's trace through the system: submit →
// admit/reject → schedule → queue wait → execute → resolve. The same
// schema serves the live runtime (wall-clock nanos) and the simulator
// (virtual nanos via SimTracer), so both feed the same tooling.
//
// Zero-valued fields mean "not reached": a rejected span has no
// schedule or execution phase; a query dropped before dispatch has
// Unit -1.
type Span struct {
	// QueryID is the runtime-assigned task ID (-1 for queries rejected
	// at admission, which are never assigned one).
	QueryID int64
	// Op names the traversal operation ("bfs", "sssp", ...).
	Op string
	// Tenant names the submitting tenant ("" for untenanted queries).
	Tenant string
	// Start is the traversal's anchor vertex.
	Start int32

	// Timestamps in nanoseconds: wall clock for the live runtime,
	// virtual time for the simulator.
	SubmitNanos   int64
	ScheduleNanos int64
	StartNanos    int64
	EndNanos      int64

	// Unit is the chosen processing unit (-1 if resolved before
	// placement).
	Unit int32

	// Scheduling detail, filled at the schedule step.
	//
	// Affinity is the workload-weighted affinity benefit of the chosen
	// arc (0 when the task had no affinitive unit). QueueLen is the
	// chosen unit's queue length at placement. AuctionRounds is the
	// bidding-round count of the auction segment that placed the task.
	// Degraded marks placement by the least-loaded fallback during a
	// degraded round; FellBack marks a task that lost its auction and
	// followed its best-affinity unit; EmptyRow marks a task with no
	// affinity row, placed least-loaded.
	// Imbalance is the round's load-imbalance factor (max/mean
	// effective unit load) right after this task's placement, and
	// Preferred reports whether the task landed on its
	// highest-affinity unit — together they locate the decision on
	// the balance-affinity curve.
	Affinity      float64
	Imbalance     float64
	Preferred     bool
	QueueLen      int
	AuctionRounds int
	Degraded      bool
	FellBack      bool
	EmptyRow      bool

	// Execution detail, filled by the executing unit.
	CacheHits     int
	CacheMisses   int
	BytesRead     int64
	DiskWaitNanos int64

	// Direction-optimizing traversal detail (BFS/SSSP only): expansion
	// waves run in each direction and push↔pull transitions. All zero
	// for ops without direction choice and for forced-push queries that
	// never leave the classic sparse path.
	PushWaves   int
	PullWaves   int
	DirSwitches int

	// WaitNanos and ExecNanos are the queueing and execution
	// durations; Outcome and Err describe the resolution.
	WaitNanos int64
	ExecNanos int64
	Outcome   string
	Err       string
}

// SpanCSVHeader is the header row of the span CSV rendering. The
// leading columns (event-free task/unit/time triple) line up with the
// simulator's CSVTracer schema so live and sim traces can be joined
// on task and unit.
const SpanCSVHeader = "task,unit,op,tenant,start,submit_ns,schedule_ns,start_ns,end_ns," +
	"affinity,imbalance,preferred,queue_len,auction_rounds,degraded,fell_back,empty_row," +
	"cache_hits,cache_misses,bytes_read,disk_wait_ns,push_waves,pull_waves,dir_switches," +
	"wait_ns,exec_ns,outcome,err"

// CSVRow renders the span as one CSV line matching SpanCSVHeader.
func (s Span) CSVRow() string {
	return fmt.Sprintf("%d,%d,%s,%s,%d,%d,%d,%d,%d,%g,%g,%t,%d,%d,%t,%t,%t,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s",
		s.QueryID, s.Unit, s.Op, csvEscape(s.Tenant), s.Start,
		s.SubmitNanos, s.ScheduleNanos, s.StartNanos, s.EndNanos,
		s.Affinity, s.Imbalance, s.Preferred, s.QueueLen, s.AuctionRounds, s.Degraded, s.FellBack, s.EmptyRow,
		s.CacheHits, s.CacheMisses, s.BytesRead, s.DiskWaitNanos,
		s.PushWaves, s.PullWaves, s.DirSwitches,
		s.WaitNanos, s.ExecNanos, s.Outcome, csvEscape(s.Err))
}

// csvEscape keeps error strings on one CSV cell.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(strings.ReplaceAll(s, `"`, `""`), "\n", " ") + `"`
}

func (s Span) String() string {
	return fmt.Sprintf("span{q=%d op=%s unit=%d outcome=%s wait=%dns exec=%dns hits=%d misses=%d}",
		s.QueryID, s.Op, s.Unit, s.Outcome, s.WaitNanos, s.ExecNanos, s.CacheHits, s.CacheMisses)
}
