package obs

import (
	"sync"
	"testing"
)

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Append(Span{QueryID: 1}) // must not panic
	if r.Cap() != 0 || r.Len() != 0 || r.Last(10) != nil {
		t.Error("nil ring should report empty")
	}
	if NewRing(0) != nil || NewRing(-1) != nil {
		t.Error("NewRing(n<=0) should return nil")
	}
}

func TestRingBasic(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 || r.Len() != 0 {
		t.Fatalf("fresh ring: cap=%d len=%d", r.Cap(), r.Len())
	}
	r.Append(Span{QueryID: 1})
	r.Append(Span{QueryID: 2})
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	got := r.Last(10)
	if len(got) != 2 || got[0].QueryID != 1 || got[1].QueryID != 2 {
		t.Errorf("Last(10) = %v, want spans 1,2 oldest-first", got)
	}
	if one := r.Last(1); len(one) != 1 || one[0].QueryID != 2 {
		t.Errorf("Last(1) = %v, want just span 2", one)
	}
	if r.Last(0) != nil {
		t.Error("Last(0) should be nil")
	}
}

// TestRingWraparound fills a small ring past capacity and checks that
// only the newest spans survive, oldest-first.
func TestRingWraparound(t *testing.T) {
	r := NewRing(8)
	for i := int64(1); i <= 20; i++ {
		r.Append(Span{QueryID: i})
	}
	if r.Len() != 8 {
		t.Errorf("Len = %d, want 8", r.Len())
	}
	got := r.Last(100)
	if len(got) != 8 {
		t.Fatalf("Last(100) returned %d spans, want 8", len(got))
	}
	for k, s := range got {
		if want := int64(13 + k); s.QueryID != want {
			t.Errorf("span[%d].QueryID = %d, want %d", k, s.QueryID, want)
		}
	}
}

// TestRingConcurrent checks well-formedness under concurrent append
// and read; meaningful under -race. Every span returned must be one
// that was actually appended (QueryID encodes writer and sequence).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(Span{QueryID: int64(w*perWriter + i), Unit: int32(w)})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, s := range r.Last(16) {
				w := int(s.QueryID) / perWriter
				if w < 0 || w >= writers || s.Unit != int32(w) {
					t.Errorf("torn span: id=%d unit=%d", s.QueryID, s.Unit)
					return
				}
			}
		}
	}()
	wg.Wait()
	if got := r.Last(16); len(got) != 16 {
		t.Errorf("after %d appends Last(16) returned %d spans", writers*perWriter, len(got))
	}
}

// TestRingWraparoundConcurrentWriters hammers a tiny ring with many
// writers at load-harness rates so slots wrap constantly, and checks
// that no torn span is ever observable: every field of a returned
// span must be mutually consistent with the single Append that wrote
// it. Run under -race this also proves the slot protocol itself.
func TestRingWraparoundConcurrentWriters(t *testing.T) {
	t.Parallel()
	r := NewRing(4) // tiny: every writer laps continuously
	const writers = 8
	const perWriter = 20000
	mk := func(w, i int) Span {
		id := int64(w*perWriter + i)
		return Span{
			QueryID:   id,
			Unit:      int32(w),
			WaitNanos: id * 3,
			ExecNanos: id * 7,
			Tenant:    "t",
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(mk(w, i))
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, s := range r.Last(4) {
				w := int(s.QueryID) / perWriter
				i := int(s.QueryID) % perWriter
				if w < 0 || w >= writers || mk(w, i) != s {
					t.Errorf("torn span under wraparound: %+v", s)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4 after wrap", r.Len())
	}
	got := r.Last(4)
	if len(got) != 4 {
		t.Fatalf("Last(4) returned %d spans after quiescence", len(got))
	}
	for _, s := range got {
		w := int(s.QueryID) / perWriter
		i := int(s.QueryID) % perWriter
		if mk(w, i) != s {
			t.Errorf("quiescent span inconsistent: %+v", s)
		}
	}
}
