package obs

import (
	"sync"
	"sync/atomic"
)

// Ring is a fixed-size concurrent ring buffer of Spans. Writers
// reserve a slot with one atomic add and copy the span under that
// slot's mutex — no global lock, so concurrent workers never contend
// unless they wrap onto the same slot. Readers snapshot without
// blocking writers for more than one slot copy at a time.
//
// A nil *Ring is valid and discards appends — the tracing-off fast
// path is a single nil check.
type Ring struct {
	slots []ringSlot
	// cursor counts appends; slot i%len holds append i.
	cursor atomic.Uint64
}

type ringSlot struct {
	mu sync.Mutex
	// seq is 1+append-index (0 = never written).
	seq  uint64
	span Span
}

// NewRing creates a ring holding the last n spans; n <= 0 returns nil
// (tracing disabled).
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	return &Ring{slots: make([]ringSlot, n)}
}

// Cap returns the ring capacity (0 for nil).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Len returns the number of spans currently held (0 for nil).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	n := r.cursor.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Append records a span, overwriting the oldest once full. No-op on a
// nil ring.
func (r *Ring) Append(s Span) {
	if r == nil {
		return
	}
	i := r.cursor.Add(1) - 1
	slot := &r.slots[i%uint64(len(r.slots))]
	slot.mu.Lock()
	// A slower writer that reserved an earlier lap must not clobber a
	// newer span that already landed in this slot.
	if slot.seq <= i {
		slot.seq = i + 1
		slot.span = s
	}
	slot.mu.Unlock()
}

// Last returns up to n of the most recent spans in append order
// (oldest first). It tolerates concurrent appends: spans written
// during the scan may be included or not, but the result is always
// well-formed. Nil rings return nil.
func (r *Ring) Last(n int) []Span {
	if r == nil || n <= 0 {
		return nil
	}
	cur := r.cursor.Load()
	if cur == 0 {
		return nil
	}
	held := uint64(len(r.slots))
	if cur < held {
		held = cur
	}
	want := uint64(n)
	if want > held {
		want = held
	}
	type seqSpan struct {
		seq  uint64
		span Span
	}
	collected := make([]seqSpan, 0, want)
	// Walk backwards from the most recent append. Slots overwritten by
	// racing laps are skipped (their seq moved ahead of the window).
	for off := uint64(0); off < held && uint64(len(collected)) < want; off++ {
		i := cur - 1 - off
		slot := &r.slots[i%uint64(len(r.slots))]
		slot.mu.Lock()
		seq, span := slot.seq, slot.span
		slot.mu.Unlock()
		if seq == i+1 {
			collected = append(collected, seqSpan{seq: seq, span: span})
		}
	}
	out := make([]Span, len(collected))
	for k, c := range collected {
		out[len(collected)-1-k] = c.span
	}
	return out
}
