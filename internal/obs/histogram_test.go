package obs

import (
	"math"
	"sort"
	"testing"

	"subtrav/internal/metrics"
	"subtrav/internal/xrand"
)

func TestBucketIndexBounds(t *testing.T) {
	// Every bucket's upper bound must land in its own bucket, and a
	// value just above it in the next.
	for i := 1; i < histNumBuckets-1; i++ {
		upper, lower := bucketUpper(i), bucketUpper(i-1)
		if upper >= math.Pow(2, 62) {
			break // int64 can't hold these bounds exactly
		}
		v := int64(upper) // floor: largest integer <= upper
		if float64(v) <= lower {
			continue // bucket holds no integer
		}
		if got := bucketIndex(v); got != i {
			t.Errorf("bucketIndex(%d) = %d, want %d (bucket (%g, %g])", v, got, i, lower, upper)
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(1); got != 0 {
		t.Errorf("bucketIndex(1) = %d, want 0", got)
	}
	// MaxInt64 lands in the 2^63 bucket, well inside the table.
	if got := bucketIndex(math.MaxInt64); got >= histNumBuckets || bucketUpper(got) < float64(math.MaxInt64) {
		t.Errorf("bucketIndex(MaxInt64) = %d (upper %g) does not contain MaxInt64", got, bucketUpper(got))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	if snap := h.Snapshot(); snap.Count != 0 || len(snap.Buckets) != 0 {
		t.Errorf("empty snapshot: %+v", snap)
	}
}

func TestHistogramCountSumMean(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 10, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 1111 {
		t.Errorf("Sum = %d, want 1111", h.Sum())
	}
	if got, want := h.Mean(), 1111.0/4; got != want {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

// TestHistogramQuantileRelativeError is the property the digest
// promises: against the exact nearest-rank quantile of the raw
// samples, the histogram estimate is within QuantileMaxRelativeError
// (plus one-sample rank slack near bucket edges).
func TestHistogramQuantileRelativeError(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		n := 500 + rng.Intn(1500)
		samples := make([]int64, n)
		for i := range samples {
			// Span several decades: exercise small and large buckets.
			v := int64(math.Pow(10, 1+6*rng.Float64()))
			samples[i] = v
			h.Observe(v)
		}
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
			got := h.Quantile(q)
			exact := float64(metrics.QuantileSorted(sorted, q))
			// The histogram answers a bucket midpoint; the exact
			// nearest-rank answer lives in the same bucket, so the
			// relative error is bounded by the half-bucket width.
			relErr := math.Abs(got-exact) / exact
			if relErr > QuantileMaxRelativeError*1.0001 {
				// A rank that straddles a bucket boundary can pick the
				// adjacent bucket; allow one full bucket of slack there.
				slack := math.Pow(2, 3.0/(2*histSubBuckets)) - 1
				if relErr > slack {
					t.Errorf("trial %d q=%g: got %g, exact %g, rel err %.4f > bound %.4f",
						trial, q, got, exact, relErr, QuantileMaxRelativeError)
				}
			}
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	rng := xrand.New(3)
	for i := 0; i < 1000; i++ {
		h.Observe(int64(rng.Intn(1 << 30)))
	}
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramSnapshotConsistency(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	snap := h.Snapshot()
	if snap.Count != 100 {
		t.Errorf("snapshot Count = %d, want 100", snap.Count)
	}
	var total int64
	prevUpper := -1.0
	for _, b := range snap.Buckets {
		if b.Count <= 0 {
			t.Errorf("empty bucket in snapshot: %+v", b)
		}
		if b.UpperBound <= prevUpper {
			t.Errorf("buckets not ascending: %g after %g", b.UpperBound, prevUpper)
		}
		prevUpper = b.UpperBound
		total += b.Count
	}
	if total != snap.Count {
		t.Errorf("bucket counts sum to %d, Count is %d", total, snap.Count)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Errorf("negative observation should clamp to 0: count=%d sum=%d", h.Count(), h.Sum())
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = v*6364136223846793005 + 1442695040888963407 // cheap LCG
			if v < 0 {
				v = -v
			}
		}
	})
}

// TestHistogramQuantilesMatchQuantile pins the batch accessor to the
// single-quantile path: on a quiescent histogram the two must agree
// exactly, including unsorted and out-of-range inputs.
func TestHistogramQuantilesMatchQuantile(t *testing.T) {
	h := NewHistogram()
	rng := xrand.New(11)
	for i := 0; i < 5000; i++ {
		h.Observe(int64(math.Pow(10, 1+6*rng.Float64())))
	}
	qs := []float64{0.999, 0.5, 0.99, -0.5, 1.5, 0, 1, 0.25}
	got := h.Quantiles(qs...)
	if len(got) != len(qs) {
		t.Fatalf("Quantiles returned %d values for %d inputs", len(got), len(qs))
	}
	for i, q := range qs {
		if want := h.Quantile(q); got[i] != want {
			t.Errorf("Quantiles()[%d] (q=%g) = %g, want Quantile = %g", i, q, got[i], want)
		}
	}
	if out := h.Quantiles(); len(out) != 0 {
		t.Errorf("Quantiles() with no args = %v, want empty", out)
	}
	var empty Histogram
	for i, v := range empty.Quantiles(0.5, 0.999) {
		if v != 0 {
			t.Errorf("empty histogram Quantiles[%d] = %g, want 0", i, v)
		}
	}
}

// TestHistogramQuantilesTailErrorBound is the documented ≈9% bound
// checked where the load reports read it: the extreme tail. Heavy
// right-tailed samples (the shape of latency under overload) are
// compared at p99 and p999 against the exact nearest-rank quantile.
func TestHistogramQuantilesTailErrorBound(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 25; trial++ {
		h := NewHistogram()
		n := 4000 + rng.Intn(4000)
		samples := make([]int64, n)
		for i := range samples {
			// Log-normal-ish body with a Pareto-ish tail: most mass
			// near 10^4, occasional excursions out to 10^9.
			v := int64(math.Pow(10, 3.5+rng.NormFloat64()))
			if rng.Float64() < 0.01 {
				v = int64(math.Pow(10, 6+3*rng.Float64()))
			}
			if v < 1 {
				v = 1
			}
			samples[i] = v
			h.Observe(v)
		}
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		got := h.Quantiles(0.99, 0.999)
		for k, q := range []float64{0.99, 0.999} {
			exact := float64(metrics.QuantileSorted(sorted, q))
			relErr := math.Abs(got[k]-exact) / exact
			if relErr > QuantileMaxRelativeError*1.0001 {
				// Rank straddling a bucket edge may pick the adjacent
				// bucket; allow one bucket of slack there (same rule
				// as TestHistogramQuantileRelativeError).
				slack := math.Pow(2, 3.0/(2*histSubBuckets)) - 1
				if relErr > slack {
					t.Errorf("trial %d q=%g: got %g, exact %g, rel err %.4f > bound %.4f",
						trial, q, got[k], exact, relErr, QuantileMaxRelativeError)
				}
			}
		}
	}
}
