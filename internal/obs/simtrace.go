package obs

import "sync"

// SimTracer adapts the simulator's Tracer callbacks
// (TaskDispatched/TaskStarted/TaskCompleted, see internal/sim) into
// Spans on a Ring, so discrete-event runs and the live runtime feed
// the same trace tooling. Timestamps are the simulator's virtual
// nanoseconds; the fields a live span fills at execution time (cache
// hits, bytes, disk wait) stay zero except CacheMisses, which the
// simulator reports at completion.
//
// The interface match is structural: obs stays dependency-free and
// internal/sim stays ignorant of obs. Install with
// cluster.SetTracer(obs.NewSimTracer(ring)).
type SimTracer struct {
	ring *Ring

	mu   sync.Mutex
	open map[int64]Span
}

// NewSimTracer traces into ring (which may be nil to drop everything,
// matching Ring semantics).
func NewSimTracer(ring *Ring) *SimTracer {
	return &SimTracer{ring: ring, open: make(map[int64]Span)}
}

// TaskDispatched implements sim.Tracer: the scheduler placed the task.
func (t *SimTracer) TaskDispatched(taskID int64, unit int32, at int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.open[taskID] = Span{
		QueryID:       taskID,
		Unit:          unit,
		SubmitNanos:   at,
		ScheduleNanos: at,
	}
}

// TaskStarted implements sim.Tracer: a unit began executing the task.
func (t *SimTracer) TaskStarted(taskID int64, unit int32, at int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.open[taskID]
	if !ok {
		s = Span{QueryID: taskID, SubmitNanos: at, ScheduleNanos: at}
	}
	s.Unit = unit
	s.StartNanos = at
	s.WaitNanos = at - s.ScheduleNanos
	t.open[taskID] = s
}

// TaskCompleted implements sim.Tracer: the task finished; misses
// counts its shared-disk fetches.
func (t *SimTracer) TaskCompleted(taskID int64, unit int32, at int64, misses int) {
	t.mu.Lock()
	s, ok := t.open[taskID]
	if ok {
		delete(t.open, taskID)
	} else {
		s = Span{QueryID: taskID, SubmitNanos: at, ScheduleNanos: at, StartNanos: at}
	}
	t.mu.Unlock()
	s.Unit = unit
	s.EndNanos = at
	s.ExecNanos = at - s.StartNanos
	s.CacheMisses = misses
	s.Outcome = OutcomeCompleted
	t.ring.Append(s)
}
