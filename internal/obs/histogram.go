package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram buckets are logarithmic with 4 sub-buckets per power of
// two: bucket i covers (2^((i-1)/4), 2^(i/4)]. Quantile answers the
// geometric midpoint of the selected bucket, so the worst-case
// relative error of a quantile estimate is 2^(1/8)-1 ≈ 9.05% — a
// bounded-error digest that replaces sorting whole latency sample
// slices on hot paths.
const (
	histSubBuckets = 4
	// histNumBuckets covers (0, 2^64] nanoseconds — about 584 years —
	// in 4·64 buckets plus the ≤1 bucket at index 0.
	histNumBuckets = histSubBuckets*64 + 1
)

// QuantileMaxRelativeError is the worst-case relative error of
// Histogram.Quantile: the geometric midpoint of a γ=2^(1/4) bucket is
// within a factor 2^(1/8) of every value in it.
var QuantileMaxRelativeError = math.Pow(2, 1.0/(2*histSubBuckets)) - 1

// Histogram is a fixed-size log-bucketed histogram of non-negative
// int64 observations (by convention nanoseconds, but any unit works).
// Observe is one atomic add; Quantile and Snapshot read the buckets
// with atomic loads and are safe to call while observers are hot,
// yielding a slightly stale but internally consistent-enough view.
type Histogram struct {
	counts [histNumBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram creates an empty histogram. The zero value is also
// ready to use; the constructor exists for symmetry with Registry.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps an observation to its bucket: 0 holds v <= 1,
// bucket i > 0 holds (2^((i-1)/4), 2^(i/4)].
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	idx := int(math.Ceil(math.Log2(float64(v)) * histSubBuckets))
	if idx < 1 {
		idx = 1
	}
	if idx >= histNumBuckets {
		idx = histNumBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) float64 {
	if i == 0 {
		return 1
	}
	return math.Pow(2, float64(i)/histSubBuckets)
}

// bucketMid returns the geometric midpoint of bucket i — the value
// Quantile reports for observations landing in it.
func bucketMid(i int) float64 {
	if i == 0 {
		return 1
	}
	return math.Pow(2, (2*float64(i)-1)/(2*histSubBuckets))
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the arithmetic mean, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) with relative error
// bounded by QuantileMaxRelativeError. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Load the buckets once; total is derived from the loaded values so
	// the rank target is consistent with the scan even while hot.
	var counts [histNumBuckets]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histNumBuckets - 1)
}

// Quantiles estimates several quantiles at once: the buckets are
// loaded once and a single cumulative walk answers every requested
// quantile, instead of one full scan per Quantile call — the report
// path computes p50/p99/p999 in one pass. Each answer carries the
// same QuantileMaxRelativeError bound as Quantile, and the two agree
// exactly on the same loaded view. Out-of-range qs clamp to [0, 1];
// an empty histogram yields all zeros.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(qs) == 0 {
		return out
	}
	var counts [histNumBuckets]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return out
	}
	// Rank each quantile, then visit the ranks in ascending order so
	// one cumulative walk resolves all of them.
	ranks := make([]int64, len(qs))
	order := make([]int, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		r := int64(math.Ceil(q * float64(total)))
		if r < 1 {
			r = 1
		}
		ranks[i] = r
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ranks[order[a]] < ranks[order[b]] })
	k := 0
	var cum int64
	for i := 0; i < histNumBuckets && k < len(order); i++ {
		cum += counts[i]
		for k < len(order) && cum >= ranks[order[k]] {
			out[order[k]] = bucketMid(i)
			k++
		}
	}
	for ; k < len(order); k++ {
		out[order[k]] = bucketMid(histNumBuckets - 1)
	}
	return out
}

// Bucket is one non-empty histogram bucket in a Snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound.
	UpperBound float64
	// Count is the number of observations in this bucket (not
	// cumulative).
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets []Bucket // non-empty buckets, ascending upper bound
}

// Snapshot copies the non-empty buckets. Count is derived from the
// bucket scan so cumulative exposition never exceeds the +Inf count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{Sum: h.sum.Load()}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		snap.Count += c
		snap.Buckets = append(snap.Buckets, Bucket{UpperBound: bucketUpper(i), Count: c})
	}
	return snap
}
