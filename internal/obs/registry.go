// Package obs is the observability layer of the live system: a
// dependency-free (stdlib-only) metrics registry — atomic counters,
// gauges and log-bucketed histograms with bounded-error quantiles —
// exposed in the Prometheus text format, plus a per-query trace-span
// pipeline captured into a fixed-size lock-cheap ring buffer and an
// optional HTTP debug server serving /metrics, /healthz and pprof.
//
// Everything here is hot-path safe: counters and histogram
// observations are single atomic adds, span capture is one atomic
// reservation plus a per-slot mutex, and a nil *Ring disables tracing
// with a single branch. The registry itself is read-mostly; metric
// handles are created once at wiring time and then touched lock-free.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (callers must keep counters monotone; negative deltas
// are a programming error but are not checked on the hot path).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic instantaneous float64 value, for ratios and
// factors that do not fit the integer Gauge (load-imbalance factor,
// affinity hit ratio). Set/Value are single atomic word operations.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates exposition TYPE lines.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family. collect returns the
// instantaneous value for counters/gauges; hist is set for histograms.
type series struct {
	labels  []Label
	collect func() float64
	hist    *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.Mutex
	series []*series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. All methods are safe for concurrent use;
// registration is expected at wiring time, collection at scrape time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// getFamily returns the family for name, creating it with the given
// kind/help; it panics on a kind clash (programmer error: two call
// sites disagree about what a metric is).
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	if err := checkName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
		r.order = append(r.order, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

// addSeries appends a series, panicking on a duplicate label set.
func (f *family) addSeries(s *series) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := labelKey(s.labels)
	for _, existing := range f.series {
		if labelKey(existing.labels) == key {
			panic(fmt.Sprintf("obs: duplicate series %s%s", f.name, key))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers (or creates) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	f := r.getFamily(name, help, kindCounter)
	f.addSeries(&series{labels: labels, collect: func() float64 { return float64(c.Value()) }})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — for exposing counters that already live elsewhere
// (e.g. metrics.Counters atomics) without double accounting. fn must
// be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	f := r.getFamily(name, help, kindCounter)
	f.addSeries(&series{labels: labels, collect: func() float64 { return float64(fn()) }})
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	f := r.getFamily(name, help, kindGauge)
	f.addSeries(&series{labels: labels, collect: func() float64 { return float64(g.Value()) }})
	return g
}

// GaugeFunc registers a gauge computed by fn at scrape time. fn must
// be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.getFamily(name, help, kindGauge)
	f.addSeries(&series{labels: labels, collect: fn})
}

// FloatGauge registers a float-valued gauge series.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	g := &FloatGauge{}
	f := r.getFamily(name, help, kindGauge)
	f.addSeries(&series{labels: labels, collect: g.Value})
	return g
}

// Histogram registers a log-bucketed histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := NewHistogram()
	f := r.getFamily(name, help, kindHistogram)
	f.addSeries(&series{labels: labels, hist: h})
	return h
}

// RegisterHistogram exposes a histogram that already lives elsewhere
// (e.g. a scheduler-owned digest fed before any registry is wired)
// without double accounting. The registry takes no ownership; the
// caller keeps observing into h.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	f := r.getFamily(name, help, kindHistogram)
	f.addSeries(&series{labels: labels, hist: h})
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	order := append([]*family(nil), r.order...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range order {
		f.mu.Lock()
		ss := append([]*series(nil), f.series...)
		f.mu.Unlock()
		if len(ss) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			if f.kind == kindHistogram {
				writeHistogram(&b, f.name, s.labels, s.hist)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labelKey(s.labels), formatValue(s.collect()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative non-empty
// buckets, +Inf, _sum and _count.
func writeHistogram(b *strings.Builder, name string, labels []Label, h *Histogram) {
	snap := h.Snapshot()
	var cum int64
	for _, bk := range snap.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelKeyLE(labels, formatValue(bk.UpperBound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelKeyLE(labels, "+Inf"), snap.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelKey(labels), formatValue(float64(snap.Sum)))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelKey(labels), snap.Count)
}

// labelKey renders {k1="v1",k2="v2"} or "" for no labels.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// labelKeyLE renders the label set with an additional le bucket bound.
func labelKeyLE(labels []Label, le string) string {
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, l.Value))
	}
	parts = append(parts, fmt.Sprintf("le=%q", le))
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value the way Prometheus expects:
// integral values without an exponent, everything else in shortest
// round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// checkName validates a metric name against the Prometheus grammar.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid metric name %q", name)
		}
	}
	return nil
}

// SortLabels orders a label list by key (exposition convention for
// callers assembling labels dynamically).
func SortLabels(labels []Label) {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
}
