package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux builds the debug endpoint handler:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       200 "ok" (or 503 with the error when health fails)
//	/debug/pprof/  the standard net/http/pprof surface
//
// health may be nil (always healthy). The mux is also usable under a
// caller-owned server; DebugServer wraps it with lifecycle.
func NewDebugMux(reg *Registry, health func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if health != nil {
			if err := health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "unhealthy: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
}

// StartDebugServer binds addr (port 0 picks a free port) and serves
// the debug mux on a background goroutine.
func StartDebugServer(addr string, reg *Registry, health func() error) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	srv := &http.Server{
		Handler:           NewDebugMux(reg, health),
		ReadHeaderTimeout: 5 * time.Second,
	}
	d := &DebugServer{srv: srv, addr: ln.Addr()}
	go func() { _ = srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound address.
func (d *DebugServer) Addr() net.Addr { return d.addr }

// Close stops the server immediately (in-flight scrapes are cut).
func (d *DebugServer) Close() error { return d.srv.Close() }
