// External tests: the structural contracts obs keeps with the rest of
// the system without importing it — sim.Tracer satisfaction, span CSV
// schema, and the debug HTTP surface end-to-end.
package obs_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"subtrav/internal/obs"
	"subtrav/internal/sim"
)

// obs stays dependency-free; the tracer match is structural. This is
// the compile-time proof that it actually matches.
var _ sim.Tracer = (*obs.SimTracer)(nil)

func TestSimTracerAssemblesSpans(t *testing.T) {
	ring := obs.NewRing(8)
	tr := obs.NewSimTracer(ring)
	tr.TaskDispatched(1, 2, 100)
	tr.TaskStarted(1, 2, 150)
	tr.TaskCompleted(1, 2, 400, 3)

	spans := ring.Last(8)
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.QueryID != 1 || s.Unit != 2 {
		t.Errorf("identity: %+v", s)
	}
	if s.SubmitNanos != 100 || s.ScheduleNanos != 100 || s.StartNanos != 150 || s.EndNanos != 400 {
		t.Errorf("timestamps: %+v", s)
	}
	if s.WaitNanos != 50 || s.ExecNanos != 250 {
		t.Errorf("durations: wait=%d exec=%d, want 50/250", s.WaitNanos, s.ExecNanos)
	}
	if s.CacheMisses != 3 || s.Outcome != obs.OutcomeCompleted {
		t.Errorf("resolution: %+v", s)
	}
}

func TestSimTracerToleratesPartialLifecycles(t *testing.T) {
	ring := obs.NewRing(8)
	tr := obs.NewSimTracer(ring)
	// Completion without dispatch/start: still produces a span.
	tr.TaskCompleted(9, 1, 500, 0)
	// Start without dispatch, then complete.
	tr.TaskStarted(10, 0, 600)
	tr.TaskCompleted(10, 0, 700, 1)
	spans := ring.Last(8)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].QueryID != 9 || spans[1].QueryID != 10 {
		t.Errorf("order: %v", spans)
	}
	if spans[1].ExecNanos != 100 {
		t.Errorf("span 10 exec = %d, want 100", spans[1].ExecNanos)
	}
}

func TestSimTracerNilRing(t *testing.T) {
	tr := obs.NewSimTracer(nil)
	tr.TaskDispatched(1, 0, 0)
	tr.TaskStarted(1, 0, 1)
	tr.TaskCompleted(1, 0, 2, 0) // must not panic
}

func TestSpanCSVRowMatchesHeader(t *testing.T) {
	cols := strings.Split(obs.SpanCSVHeader, ",")
	s := obs.Span{
		QueryID: 5, Op: "bfs", Start: 7, Unit: 2,
		SubmitNanos: 1, ScheduleNanos: 2, StartNanos: 3, EndNanos: 4,
		Affinity: 0.25, QueueLen: 3, AuctionRounds: 2, Degraded: true,
		CacheHits: 8, CacheMisses: 1, BytesRead: 4096, DiskWaitNanos: 9,
		WaitNanos: 1, ExecNanos: 1, Outcome: obs.OutcomeCompleted,
		Err: `boom, with "quotes"`,
	}
	row := s.CSVRow()
	// The err field is quoted, so count fields respecting quotes.
	fields := splitCSV(row)
	if len(fields) != len(cols) {
		t.Fatalf("row has %d fields, header has %d:\n%s\n%s",
			len(fields), len(cols), obs.SpanCSVHeader, row)
	}
	if fields[0] != "5" || fields[2] != "bfs" || fields[len(fields)-2] != "completed" {
		t.Errorf("unexpected field placement: %v", fields)
	}
	// splitCSV strips quote characters, so the doubled quotes collapse.
	if want := "boom, with quotes"; fields[len(fields)-1] != want {
		t.Errorf("err field = %q, want %q", fields[len(fields)-1], want)
	}
}

// splitCSV splits one CSV line honoring double-quoted cells (quote
// characters themselves are dropped).
func splitCSV(line string) []string {
	var fields []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			fields = append(fields, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	fields = append(fields, cur.String())
	return fields
}

func TestDebugServerEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("dbg_requests_total", "requests").Add(5)
	healthy := true
	srv, err := obs.StartDebugServer("127.0.0.1:0", reg, func() error {
		if !healthy {
			return errors.New("draining")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := fmt.Sprintf("http://%s", srv.Addr())

	body, ctype := httpGet(t, base+"/metrics", http.StatusOK)
	if !strings.Contains(body, "dbg_requests_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ctype)
	}

	if body, _ := httpGet(t, base+"/healthz", http.StatusOK); strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz body = %q", body)
	}
	healthy = false
	if body, _ := httpGet(t, base+"/healthz", http.StatusServiceUnavailable); !strings.Contains(body, "draining") {
		t.Errorf("unhealthy /healthz body = %q", body)
	}

	if body, _ := httpGet(t, base+"/debug/pprof/", http.StatusOK); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%.200s", body)
	}
}

func httpGet(t *testing.T, url string, wantStatus int) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}
