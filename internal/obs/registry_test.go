package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format: HELP/TYPE
// lines, label rendering, cumulative histogram buckets with +Inf,
// _sum and _count, in registration order.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests served.")
	c.Add(3)
	reg.Counter("test_unit_hits_total", "Per-unit hits.", L("unit", "0")).Add(7)
	reg.Counter("test_unit_hits_total", "Per-unit hits.", L("unit", "1")).Inc()
	g := reg.Gauge("test_depth", "Queue depth.")
	g.Set(4)
	reg.GaugeFunc("test_ratio", "A computed gauge.", func() float64 { return 0.5 })
	reg.CounterFunc("test_external_total", "Mirrored counter.", func() int64 { return 42 })
	h := reg.Histogram("test_latency_nanos", "Latency.")
	h.Observe(1) // bucket 0, upper bound 1
	h.Observe(1)
	h.Observe(4) // bucket 8, upper bound 4
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_unit_hits_total Per-unit hits.
# TYPE test_unit_hits_total counter
test_unit_hits_total{unit="0"} 7
test_unit_hits_total{unit="1"} 1
# HELP test_depth Queue depth.
# TYPE test_depth gauge
test_depth 4
# HELP test_ratio A computed gauge.
# TYPE test_ratio gauge
test_ratio 0.5
# HELP test_external_total Mirrored counter.
# TYPE test_external_total counter
test_external_total 42
# HELP test_latency_nanos Latency.
# TYPE test_latency_nanos histogram
test_latency_nanos_bucket{le="1"} 2
test_latency_nanos_bucket{le="4"} 3
test_latency_nanos_bucket{le="+Inf"} 3
test_latency_nanos_sum 6
test_latency_nanos_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryConcurrency hammers registration, observation and
// scraping from many goroutines; meaningful under -race.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_ops_total", "ops")
	g := reg.Gauge("conc_depth", "depth")
	h := reg.Histogram("conc_latency", "latency")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i + 1))
			}
		}(w)
	}
	// Scrape concurrently with the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Register new labeled series concurrently too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			reg.CounterFunc("conc_dyn_total", "dyn",
				func() int64 { return 1 }, L("i", string(rune('a'+i))))
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryPanicsOnKindClash(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("clash_total", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind clash")
		}
	}()
	reg.Gauge("clash_total", "")
}

func TestRegistryPanicsOnDuplicateSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dup_total", "", L("unit", "0"))
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate series")
		}
	}()
	reg.Counter("dup_total", "", L("unit", "0"))
}

func TestCheckName(t *testing.T) {
	for _, ok := range []string{"a", "subtrav_x_total", "A:b_9"} {
		if err := checkName(ok); err != nil {
			t.Errorf("checkName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "9lead", "has-dash", "sp ace", "é"} {
		if err := checkName(bad); err == nil {
			t.Errorf("checkName(%q) = nil, want error", bad)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {3, "3"}, {-7, "-7"}, {0.5, "0.5"}, {1e18, "1e+18"},
	}
	for _, c := range cases {
		if got := formatValue(c.in); got != c.want {
			t.Errorf("formatValue(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFloatGaugeAndRegisterHistogram(t *testing.T) {
	reg := NewRegistry()
	fg := reg.FloatGauge("test_imbalance_factor", "Imbalance.", L("kind", "round"))
	fg.Set(1.25)
	if fg.Value() != 1.25 {
		t.Errorf("FloatGauge.Value = %g, want 1.25", fg.Value())
	}
	h := NewHistogram()
	h.Observe(3)
	reg.RegisterHistogram("test_margin", "Externally owned digest.", h)
	h.Observe(100)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_imbalance_factor gauge",
		`test_imbalance_factor{kind="round"} 1.25`,
		"# TYPE test_margin histogram",
		"test_margin_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
