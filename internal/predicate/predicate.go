// Package predicate compiles boolean filter expressions over property
// maps into graph.Predicate functions — the user-defined constraints θ
// of Section V-C in a form that can travel over the query service's
// wire protocol (closures cannot).
//
// Grammar (whitespace-insensitive):
//
//	expr       := or
//	or         := and ( "||" and )*
//	and        := unary ( "&&" unary )*
//	unary      := "!" unary | "(" expr ")" | atom
//	atom       := "has" "(" ident ")" | ident cmp literal
//	cmp        := "==" | "!=" | "<" | "<=" | ">" | ">="
//	literal    := integer | float | string | "true" | "false"
//	ident      := [A-Za-z_][A-Za-z0-9_.-]*
//	string     := '"' ... '"' (Go escaping)
//
// Semantics: a comparison on a missing property is false (use has()
// to test presence); numeric comparisons treat int and float values
// interchangeably; strings support the full ordering; booleans
// support == and !=; blobs only has().
//
// Examples:
//
//	age >= 30 && gender == true
//	has(photo) || name != "unknown"
//	!(kind == "bot") && followers > 1000
package predicate

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"subtrav/internal/graph"
)

// Compile parses src and returns the corresponding predicate. An empty
// or all-whitespace source compiles to nil (match everything), which
// is what traverse.Query expects for "no constraint".
func Compile(src string) (graph.Predicate, error) {
	if strings.TrimSpace(src) == "" {
		return nil, nil
	}
	p := &parser{lex: newLexer(src)}
	node, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.lex.peek().kind != tokEOF {
		return nil, fmt.Errorf("predicate: unexpected %q at offset %d", p.lex.peek().text, p.lex.peek().pos)
	}
	return node.eval, nil
}

// MustCompile is Compile, panicking on error; for literals in tests
// and examples.
func MustCompile(src string) graph.Predicate {
	pred, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return pred
}

// --- AST ---

type node interface {
	eval(p graph.Properties) bool
}

type andNode struct{ left, right node }

func (n andNode) eval(p graph.Properties) bool { return n.left.eval(p) && n.right.eval(p) }

type orNode struct{ left, right node }

func (n orNode) eval(p graph.Properties) bool { return n.left.eval(p) || n.right.eval(p) }

type notNode struct{ inner node }

func (n notNode) eval(p graph.Properties) bool { return !n.inner.eval(p) }

type hasNode struct{ name string }

func (n hasNode) eval(p graph.Properties) bool {
	_, ok := p[n.name]
	return ok
}

type cmpOp uint8

const (
	opEq cmpOp = iota
	opNe
	opLt
	opLe
	opGt
	opGe
)

type cmpNode struct {
	name string
	op   cmpOp
	lit  literal
}

type literal struct {
	kind litKind
	num  float64
	str  string
	b    bool
}

type litKind uint8

const (
	litNum litKind = iota
	litStr
	litBool
)

func (n cmpNode) eval(p graph.Properties) bool {
	v, ok := p[n.name]
	if !ok {
		return false
	}
	switch n.lit.kind {
	case litNum:
		if v.Kind() != graph.KindInt && v.Kind() != graph.KindFloat {
			return false
		}
		return compareFloats(v.Float64(), n.lit.num, n.op)
	case litStr:
		if v.Kind() != graph.KindString {
			return false
		}
		return compareStrings(v.Str(), n.lit.str, n.op)
	case litBool:
		if v.Kind() != graph.KindBool {
			return false
		}
		switch n.op {
		case opEq:
			return v.IsTrue() == n.lit.b
		case opNe:
			return v.IsTrue() != n.lit.b
		default:
			return false // ordering on booleans is undefined
		}
	}
	return false
}

func compareFloats(a, b float64, op cmpOp) bool {
	switch op {
	case opEq:
		return a == b
	case opNe:
		return a != b
	case opLt:
		return a < b
	case opLe:
		return a <= b
	case opGt:
		return a > b
	case opGe:
		return a >= b
	}
	return false
}

func compareStrings(a, b string, op cmpOp) bool {
	switch op {
	case opEq:
		return a == b
	case opNe:
		return a != b
	case opLt:
		return a < b
	case opLe:
		return a <= b
	case opGt:
		return a > b
	case opGe:
		return a >= b
	}
	return false
}

// --- Lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokAnd    // &&
	tokOr     // ||
	tokNot    // !
	tokLParen // (
	tokRParen // )
	tokCmp    // == != < <= > >=
	tokErr
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	cur  token
	read bool
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) peek() token {
	if !l.read {
		l.cur = l.scan()
		l.read = true
	}
	return l.cur
}

func (l *lexer) next() token {
	t := l.peek()
	l.read = false
	return t
}

func (l *lexer) scan() token {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}
	case c == '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			return token{kind: tokAnd, text: "&&", pos: start}
		}
	case c == '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			return token{kind: tokOr, text: "||", pos: start}
		}
	case c == '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			l.pos += 2
			return token{kind: tokCmp, text: "!=", pos: start}
		}
		l.pos++
		return token{kind: tokNot, text: "!", pos: start}
	case c == '=':
		if strings.HasPrefix(l.src[l.pos:], "==") {
			l.pos += 2
			return token{kind: tokCmp, text: "==", pos: start}
		}
	case c == '<' || c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokCmp, text: l.src[start : start+2], pos: start}
		}
		l.pos++
		return token{kind: tokCmp, text: string(c), pos: start}
	case c == '"':
		// Go-style quoted string.
		rest := l.src[l.pos:]
		quoted, err := scanQuoted(rest)
		if err != nil {
			return token{kind: tokErr, text: err.Error(), pos: start}
		}
		l.pos += len(quoted)
		return token{kind: tokString, text: quoted, pos: start}
	case c == '-' || c == '.' || (c >= '0' && c <= '9'):
		end := l.pos + 1
		for end < len(l.src) && (l.src[end] == '.' || l.src[end] == 'e' ||
			l.src[end] == 'E' || l.src[end] == '+' || l.src[end] == '-' ||
			(l.src[end] >= '0' && l.src[end] <= '9')) {
			end++
		}
		text := l.src[l.pos:end]
		l.pos = end
		return token{kind: tokNumber, text: text, pos: start}
	case c == '_' || unicode.IsLetter(rune(c)):
		end := l.pos + 1
		for end < len(l.src) {
			e := l.src[end]
			if e == '_' || e == '.' || e == '-' || unicode.IsLetter(rune(e)) || unicode.IsDigit(rune(e)) {
				end++
				continue
			}
			break
		}
		text := l.src[l.pos:end]
		l.pos = end
		return token{kind: tokIdent, text: text, pos: start}
	}
	return token{kind: tokErr, text: fmt.Sprintf("unexpected character %q", c), pos: start}
}

// scanQuoted returns the quoted literal (including quotes) at the
// start of s.
func scanQuoted(s string) (string, error) {
	if len(s) < 2 || s[0] != '"' {
		return "", fmt.Errorf("predicate: malformed string literal")
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip escaped character
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("predicate: unterminated string literal")
}

// --- Parser ---

type parser struct {
	lex *lexer
}

func (p *parser) parseExpr() (node, error) { return p.parseOr() }

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().kind == tokOr {
		p.lex.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().kind == tokAnd {
		p.lex.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andNode{left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (node, error) {
	switch t := p.lex.peek(); t.kind {
	case tokNot:
		p.lex.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{inner}, nil
	case tokLParen:
		p.lex.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if got := p.lex.next(); got.kind != tokRParen {
			return nil, fmt.Errorf("predicate: expected ')' at offset %d, got %q", got.pos, got.text)
		}
		return inner, nil
	case tokIdent:
		return p.parseAtom()
	case tokErr:
		return nil, fmt.Errorf("predicate: %s at offset %d", t.text, t.pos)
	default:
		return nil, fmt.Errorf("predicate: unexpected %q at offset %d", t.text, t.pos)
	}
}

func (p *parser) parseAtom() (node, error) {
	ident := p.lex.next()
	if ident.text == "has" && p.lex.peek().kind == tokLParen {
		p.lex.next()
		name := p.lex.next()
		if name.kind != tokIdent {
			return nil, fmt.Errorf("predicate: has() needs a property name at offset %d", name.pos)
		}
		if got := p.lex.next(); got.kind != tokRParen {
			return nil, fmt.Errorf("predicate: expected ')' after has(%s)", name.text)
		}
		return hasNode{name: name.text}, nil
	}
	cmp := p.lex.next()
	if cmp.kind != tokCmp {
		return nil, fmt.Errorf("predicate: expected comparison after %q at offset %d, got %q", ident.text, cmp.pos, cmp.text)
	}
	var op cmpOp
	switch cmp.text {
	case "==":
		op = opEq
	case "!=":
		op = opNe
	case "<":
		op = opLt
	case "<=":
		op = opLe
	case ">":
		op = opGt
	case ">=":
		op = opGe
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	if lit.kind == litBool && op != opEq && op != opNe {
		return nil, fmt.Errorf("predicate: booleans only support == and !=")
	}
	return cmpNode{name: ident.text, op: op, lit: lit}, nil
}

func (p *parser) parseLiteral() (literal, error) {
	t := p.lex.next()
	switch t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return literal{}, fmt.Errorf("predicate: bad number %q at offset %d", t.text, t.pos)
		}
		return literal{kind: litNum, num: f}, nil
	case tokString:
		s, err := strconv.Unquote(t.text)
		if err != nil {
			return literal{}, fmt.Errorf("predicate: bad string %s at offset %d", t.text, t.pos)
		}
		return literal{kind: litStr, str: s}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return literal{kind: litBool, b: true}, nil
		case "false":
			return literal{kind: litBool, b: false}, nil
		}
	}
	return literal{}, fmt.Errorf("predicate: expected literal at offset %d, got %q", t.pos, t.text)
}
