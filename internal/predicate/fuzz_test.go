package predicate

import (
	"testing"

	"subtrav/internal/graph"
)

// FuzzCompile asserts the expression compiler never panics and that
// compiled predicates evaluate without panicking on assorted property
// maps.
func FuzzCompile(f *testing.F) {
	for _, seed := range []string{
		`age >= 30 && vip == true`,
		`has(photo) || name != "x"`,
		`!(a == 1) && (b < 2 || c > 3)`,
		`x == "quoted \"str\""`,
		``,
		`(((`,
		`a == `,
		`has(`,
		`1 == 1`,
		`a == -1e309`,
		"a == \x00",
	} {
		f.Add(seed)
	}
	samples := []graph.Properties{
		nil,
		{},
		{"a": graph.Int(1), "b": graph.Float(2), "name": graph.String("x")},
		{"vip": graph.Bool(true), "photo": graph.Blob(10)},
	}
	f.Fuzz(func(t *testing.T, src string) {
		pred, err := Compile(src)
		if err != nil || pred == nil {
			return
		}
		for _, p := range samples {
			pred(p) // must not panic
		}
	})
}
