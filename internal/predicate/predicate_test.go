package predicate

import (
	"strings"
	"testing"
	"testing/quick"

	"subtrav/internal/graph"
)

var sample = graph.Properties{
	"age":       graph.Int(30),
	"score":     graph.Float(2.5),
	"name":      graph.String("alice"),
	"vip":       graph.Bool(true),
	"photo":     graph.Blob(1000),
	"followers": graph.Int(1500),
}

func match(t *testing.T, src string) bool {
	t.Helper()
	pred, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return pred(sample)
}

func TestComparisons(t *testing.T) {
	cases := map[string]bool{
		`age == 30`:        true,
		`age != 30`:        false,
		`age < 31`:         true,
		`age <= 30`:        true,
		`age > 30`:         false,
		`age >= 30`:        true,
		`score == 2.5`:     true,
		`score > 2`:        true,
		`score < 2`:        false,
		`name == "alice"`:  true,
		`name != "bob"`:    true,
		`name < "bob"`:     true,
		`vip == true`:      true,
		`vip != true`:      false,
		`vip == false`:     false,
		`followers > 1000`: true,
		`followers > 2000`: false,
		`age == 30.0`:      true, // int compares as number
		`missing == 1`:     false,
		`missing != 1`:     false, // missing property: comparison false
		`has(photo)`:       true,
		`has(missing)`:     false,
		`name == "ALICE"`:  false,
		`photo == 5`:       false, // blobs only support has()
		`name == 5`:        false, // kind mismatch
		`age == "30"`:      false, // kind mismatch
		`score >= -1e3`:    true,
		`age >= -5`:        true,
	}
	for src, want := range cases {
		if got := match(t, src); got != want {
			t.Errorf("%q = %t, want %t", src, got, want)
		}
	}
}

func TestBooleanStructure(t *testing.T) {
	cases := map[string]bool{
		`age == 30 && vip == true`:                true,
		`age == 30 && vip == false`:               false,
		`age == 99 || name == "alice"`:            true,
		`age == 99 || name == "bob"`:              false,
		`!(age == 99)`:                            true,
		`!has(missing) && has(age)`:               true,
		`age == 99 || age == 30 && vip == true`:   true, // && binds tighter
		`(age == 99 || age == 30) && vip == true`: true,
		`(age == 99 || age == 31) && vip == true`: false,
		`!(vip == true || age == 30)`:             false,
		`!!(age == 30)`:                           true,
	}
	for src, want := range cases {
		if got := match(t, src); got != want {
			t.Errorf("%q = %t, want %t", src, got, want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	p := graph.Properties{"msg": graph.String(`say "hi"`)}
	pred, err := Compile(`msg == "say \"hi\""`)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(p) {
		t.Error("escaped string literal did not match")
	}
}

func TestEmptyCompilesToNil(t *testing.T) {
	pred, err := Compile("   ")
	if err != nil {
		t.Fatal(err)
	}
	if pred != nil {
		t.Error("blank expression should compile to nil (match everything)")
	}
}

func TestHasNamedHas(t *testing.T) {
	// "has" used as a plain property name still works with comparisons.
	p := graph.Properties{"has": graph.Int(1)}
	pred, err := Compile(`has == 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !pred(p) {
		t.Error("property literally named 'has' should be comparable")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		`age ==`,
		`== 30`,
		`age = 30`,
		`age == 30 &&`,
		`(age == 30`,
		`age == 30)`,
		`name == "unterminated`,
		`age @ 30`,
		`vip > true`,
		`has(`,
		`has()`,
		`has(age`,
		`age == 30 age == 31`,
		`&& age == 30`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad input")
		}
	}()
	MustCompile(`age ==`)
}

// Property: for any generated numeric threshold, the compiled
// predicate agrees with direct evaluation.
func TestNumericAgreementQuick(t *testing.T) {
	f := func(value int32, threshold int32, opIdx uint8) bool {
		ops := []string{"==", "!=", "<", "<=", ">", ">="}
		op := ops[int(opIdx)%len(ops)]
		src := "x " + op + " " + itoa(int64(threshold))
		pred, err := Compile(src)
		if err != nil {
			return false
		}
		p := graph.Properties{"x": graph.Int(int64(value))}
		got := pred(p)
		a, b := float64(value), float64(threshold)
		var want bool
		switch op {
		case "==":
			want = a == b
		case "!=":
			want = a != b
		case "<":
			want = a < b
		case "<=":
			want = a <= b
		case ">":
			want = a > b
		case ">=":
			want = a >= b
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random identifier-ish strings either compile or fail, but
// never panic, and whitespace never changes the result.
func TestWhitespaceInsensitiveQuick(t *testing.T) {
	exprs := []string{
		`age==30&&vip==true`,
		`name=="alice"||score>1`,
		`!(followers>=1500)`,
	}
	for _, src := range exprs {
		compact, err := Compile(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		spaced, err := Compile(strings.NewReplacer("&&", " && ", "||", " || ", "==", " == ", ">=", " >= ", ">", " > ").Replace(src))
		if err != nil {
			t.Fatalf("spaced %q: %v", src, err)
		}
		if compact(sample) != spaced(sample) {
			t.Errorf("%q: whitespace changed the result", src)
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	if neg {
		return "-" + string(digits)
	}
	return string(digits)
}
