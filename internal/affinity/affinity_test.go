package affinity

import (
	"math"
	"testing"
	"testing/quick"

	"subtrav/internal/graph"
	"subtrav/internal/signature"
)

// fakeUnit is a canned UnitView.
type fakeUnit struct {
	queue     int
	completed int // returned for any CompletedSince query
	memory    int64
}

func (f fakeUnit) QueueLen() int              { return f.queue }
func (f fakeUnit) CompletedSince(t int64) int { return f.completed }
func (f fakeUnit) MemoryBudget() int64        { return f.memory }

// starGraph builds a star with center 0 and `leaves` leaves.
func starGraph(leaves int) *graph.Graph {
	b := graph.NewBuilder(graph.Undirected, leaves+1)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, graph.VertexID(i))
	}
	return b.Build()
}

func newScorer(t *testing.T, g *graph.Graph, clock signature.Clock, cfg Config) (*Scorer, *signature.Table) {
	t.Helper()
	sigs := signature.NewTable(0)
	s, err := NewScorer(g, sigs, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, sigs
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Eta: -1, EpsilonTilde: 1, AvgSubgraphBytes: 1, ChurnScale: 1},
		{Eta: 0, EpsilonTilde: 0, AvgSubgraphBytes: 1, ChurnScale: 1},
		{Eta: 0, EpsilonTilde: 1, AvgSubgraphBytes: 0, ChurnScale: 1},
		{Eta: 0, EpsilonTilde: 1, AvgSubgraphBytes: 1, ChurnScale: 0},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	var clock signature.ManualClock
	if _, err := NewScorer(nil, signature.NewTable(0), &clock, DefaultConfig()); err == nil {
		t.Error("nil graph should be rejected")
	}
}

func TestStructuralEq1(t *testing.T) {
	g := starGraph(4) // center 0, neighbors 1..4 → denominator 5
	var clock signature.ManualClock
	s, sigs := newScorer(t, g, &clock, DefaultConfig())

	if got := s.Structural(0, 7); got != 0 {
		t.Errorf("unvisited: %g, want 0", got)
	}
	// Processor 7 visited the center: δ_{v,p}=1, no neighbors → 1/5.
	sigs.Record(0, 7, 10)
	if got := s.Structural(0, 7); got != 0.2 {
		t.Errorf("center only: %g, want 0.2", got)
	}
	// Plus two neighbors → 3/5.
	sigs.Record(1, 7, 11)
	sigs.Record(2, 7, 12)
	if got := s.Structural(0, 7); got != 0.6 {
		t.Errorf("center+2: %g, want 0.6", got)
	}
	// All visited → 1.0 (perfect affinity).
	sigs.Record(3, 7, 13)
	sigs.Record(4, 7, 14)
	if got := s.Structural(0, 7); got != 1.0 {
		t.Errorf("all: %g, want 1.0", got)
	}
	// Another processor's visits don't count.
	if got := s.Structural(0, 8); got != 0 {
		t.Errorf("other proc: %g, want 0", got)
	}
}

func TestStructuralIsolatedVertex(t *testing.T) {
	b := graph.NewBuilder(graph.Undirected, 2)
	b.AddEdge(0, 1)
	g := b.Build()
	// Build a 3rd isolated vertex graph.
	b2 := graph.NewBuilder(graph.Undirected, 1)
	iso := b2.Build()
	_ = g
	var clock signature.ManualClock
	s, sigs := newScorer(t, iso, &clock, DefaultConfig())
	sigs.Record(0, 3, 5)
	if got := s.Structural(0, 3); got != 1.0 {
		t.Errorf("isolated visited vertex: %g, want 1 (1/(1+0))", got)
	}
}

func TestDecayUnlimitedMemoryIsOne(t *testing.T) {
	g := starGraph(2)
	var clock signature.ManualClock
	s, sigs := newScorer(t, g, &clock, DefaultConfig())
	sigs.Record(0, 0, 0)
	clock.Set(1_000_000_000_000) // eons later
	unit := fakeUnit{queue: 100, completed: 100, memory: 0}
	if got := s.Score(0, 0, unit); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("unlimited memory score = %g, want structural 1/3 undecayed", got)
	}
}

func TestDecayDropsWithChurn(t *testing.T) {
	g := starGraph(2)
	var clock signature.ManualClock
	cfg := DefaultConfig()
	cfg.AvgSubgraphBytes = 1 << 20
	s, sigs := newScorer(t, g, &clock, cfg)
	sigs.Record(0, 0, 0)

	unit := fakeUnit{queue: 4, completed: 4, memory: 8 << 20} // churn = 8·1MiB/8MiB = 1
	clock.Set(0)
	fresh := s.Score(0, 0, unit) // visit at now: no decay
	clock.Set(1)                 // any later instant: churn applies
	stale := s.Score(0, 0, unit)
	if !(stale < fresh) {
		t.Fatalf("score did not decay: fresh %g, stale %g", fresh, stale)
	}
	want := fresh * math.Exp(-1)
	if math.Abs(stale-want) > 1e-9 {
		t.Errorf("decayed score = %g, want %g (e^-1 of fresh)", stale, want)
	}
	// More churn decays faster.
	busier := fakeUnit{queue: 8, completed: 8, memory: 8 << 20}
	if b := s.Score(0, 0, busier); !(b < stale) {
		t.Errorf("busier unit should decay more: %g vs %g", b, stale)
	}
	// A doubled ChurnScale sharpens the cutoff.
	sharp := cfg
	sharp.ChurnScale = 2
	s2, sigs2 := newScorer(t, g, &clock, sharp)
	sigs2.Record(0, 0, 0)
	if v := s2.Score(0, 0, unit); !(v < stale) {
		t.Errorf("ChurnScale=2 should decay harder: %g vs %g", v, stale)
	}
}

func TestDecayIdleUnitHoldsCache(t *testing.T) {
	g := starGraph(2)
	var clock signature.ManualClock
	s, sigs := newScorer(t, g, &clock, DefaultConfig())
	sigs.Record(0, 0, 0)
	clock.Set(1_000_000_000) // long after the visit
	idle := fakeUnit{queue: 0, completed: 0, memory: 8 << 20}
	if got := s.Score(0, 0, idle); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("idle unit score = %g, want undecayed 1/3 (nothing churned)", got)
	}
}

func TestWeightedEq4(t *testing.T) {
	g := starGraph(2)
	var clock signature.ManualClock
	cfg := DefaultConfig()
	cfg.EpsilonTilde = 0.5
	s, sigs := newScorer(t, g, &clock, cfg)
	sigs.Record(0, 0, 0)
	sigs.Record(1, 0, 0)
	sigs.Record(2, 0, 0)

	idle := fakeUnit{queue: 0, memory: 0}
	busy := fakeUnit{queue: 9, memory: 0}
	wIdle := s.Weighted(0, 0, idle)
	wBusy := s.Weighted(0, 0, busy)
	if math.Abs(wIdle-1/0.5) > 1e-12 {
		t.Errorf("idle weighted = %g, want 2 (score 1 / (0+0.5))", wIdle)
	}
	if math.Abs(wBusy-1/9.5) > 1e-12 {
		t.Errorf("busy weighted = %g, want 1/9.5", wBusy)
	}
	if !(wIdle > wBusy) {
		t.Error("busier unit must be less attractive")
	}
}

func TestBuildAppliesEta(t *testing.T) {
	g := starGraph(4)
	var clock signature.ManualClock
	cfg := DefaultConfig()
	cfg.Eta = 0.5 // drop weak affinities
	s, sigs := newScorer(t, g, &clock, cfg)

	// Unit 0 visited everything (score 1); unit 1 visited one leaf
	// (score 1/5 < η); unit 2 nothing.
	for v := graph.VertexID(0); v <= 4; v++ {
		sigs.Record(v, 0, 1)
	}
	sigs.Record(1, 1, 1)
	units := []UnitView{
		fakeUnit{queue: 0, memory: 0},
		fakeUnit{queue: 0, memory: 0},
		fakeUnit{queue: 0, memory: 0},
	}
	m := s.Build([]graph.VertexID{0}, units)
	if m.NumUnits != 3 || len(m.Rows) != 1 {
		t.Fatalf("matrix shape %dx%d", len(m.Rows), m.NumUnits)
	}
	row := m.Rows[0]
	if len(row) != 1 || row[0].Unit != 0 {
		t.Fatalf("row = %v, want only unit 0 above η", row)
	}
}

func TestBuildMultipleTasks(t *testing.T) {
	g := starGraph(3)
	var clock signature.ManualClock
	s, sigs := newScorer(t, g, &clock, DefaultConfig())
	sigs.Record(1, 0, 1) // unit 0 visited vertex 1
	sigs.Record(2, 1, 1) // unit 1 visited vertex 2
	units := []UnitView{fakeUnit{memory: 0}, fakeUnit{memory: 0}}
	m := s.Build([]graph.VertexID{1, 2, 3}, units)
	if len(m.Rows[0]) == 0 || m.Rows[0][0].Unit != 0 {
		t.Errorf("task at vertex 1 should be affinitive to unit 0: %v", m.Rows[0])
	}
	if len(m.Rows[1]) == 0 || m.Rows[1][0].Unit != 1 {
		t.Errorf("task at vertex 2 should be affinitive to unit 1: %v", m.Rows[1])
	}
	// Vertex 3 is a leaf: neighbors = {0}; neither 3 nor 0 visited by
	// anyone → empty row.
	if len(m.Rows[2]) != 0 {
		t.Errorf("task at vertex 3 should have no affinities: %v", m.Rows[2])
	}
}

func TestScoreUsesFreshestVisit(t *testing.T) {
	g := starGraph(2)
	var clock signature.ManualClock
	cfg := DefaultConfig()
	s, sigs := newScorer(t, g, &clock, cfg)
	unit := fakeUnit{queue: 4, completed: 4, memory: 4 << 20}

	// Old visit on v, fresh visit on a neighbor: t_p should be the
	// fresh one, yielding milder decay than the old timestamp alone.
	sigs.Record(0, 0, 0)
	clock.Set(500_000_000)
	oldOnly := s.Score(0, 0, unit)
	sigs.Record(1, 0, clock.Now())
	withFresh := s.Score(0, 0, unit)
	// Structural doubled (2 hits vs 1) AND decay improved; must rise.
	if !(withFresh > oldOnly*2) {
		t.Errorf("fresh neighbor visit should refresh decay: %g -> %g", oldOnly, withFresh)
	}
}

// Property: scores are always within [0, 1] (Eq. 1 is a fraction and
// the decay coefficient is in (0, 1]); Eq. 4 weighted scores are
// bounded by score/ε̃ and shrink as the queue grows.
func TestScoreBoundsQuick(t *testing.T) {
	g := starGraph(6)
	var clock signature.ManualClock
	cfg := DefaultConfig()
	s, sigs := newScorer(t, g, &clock, cfg)

	f := func(visitsRaw []uint8, queueRaw, completedRaw uint8, memRaw uint16) bool {
		sigs.Reset()
		clock.Set(clock.Now() + 1000)
		for i, raw := range visitsRaw {
			if i > 40 {
				break
			}
			v := graph.VertexID(int(raw) % 7)
			proc := int32(raw) % 4
			sigs.Record(v, proc, clock.Now()-int64(i))
		}
		unit := fakeUnit{
			queue:     int(queueRaw) % 16,
			completed: int(completedRaw) % 64,
			memory:    int64(memRaw)*1024 + 1,
		}
		for proc := int32(0); proc < 4; proc++ {
			score := s.Score(0, proc, unit)
			if score < 0 || score > 1 {
				return false
			}
			weighted := s.Weighted(0, proc, unit)
			if weighted < 0 || weighted > score/cfg.EpsilonTilde+1e-12 {
				return false
			}
			busier := fakeUnit{queue: unit.queue + 5, completed: unit.completed, memory: unit.memory}
			if s.Weighted(0, proc, busier) > weighted+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build never emits entries at or below η, and entry benefits
// equal Weighted() for the same unit.
func TestBuildConsistencyQuick(t *testing.T) {
	g := starGraph(5)
	var clock signature.ManualClock
	cfg := DefaultConfig()
	cfg.Eta = 0.05
	s, sigs := newScorer(t, g, &clock, cfg)
	f := func(visitsRaw []uint8) bool {
		sigs.Reset()
		clock.Set(clock.Now() + 10)
		for i, raw := range visitsRaw {
			if i > 30 {
				break
			}
			sigs.Record(graph.VertexID(int(raw)%6), int32(raw)%3, clock.Now())
		}
		units := []UnitView{
			fakeUnit{queue: 0, memory: 0},
			fakeUnit{queue: 2, memory: 0},
			fakeUnit{queue: 7, memory: 0},
		}
		m := s.Build([]graph.VertexID{0, 3}, units)
		for i, row := range m.Rows {
			for _, e := range row {
				if s.Score(graph.VertexID([]int{0, 3}[i]), int32(e.Unit), units[e.Unit]) <= cfg.Eta {
					return false
				}
				want := s.Weighted(graph.VertexID([]int{0, 3}[i]), int32(e.Unit), units[e.Unit])
				if diff := e.Benefit - want; diff > 1e-12 || diff < -1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
