package affinity

import (
	"reflect"
	"sync"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/signature"
	"subtrav/internal/xrand"
)

// churnUnit is a UnitView whose CompletedSince genuinely depends on
// the queried timestamp, so a wrong t_p (stale latest-visit time)
// changes the decay and therefore the matrix — the differential test
// would catch it.
type churnUnit struct {
	queue int
	mem   int64
	rate  int64 // completions per 100 time units
	now   int64
}

func (c churnUnit) QueueLen() int       { return c.queue }
func (c churnUnit) MemoryBudget() int64 { return c.mem }
func (c churnUnit) CompletedSince(t int64) int {
	if t >= c.now {
		return 0
	}
	return int((c.now - t) * c.rate / 100)
}

// randomFixture builds a seeded random graph, signature table, unit
// set and anchor batch for one differential trial.
type randomFixture struct {
	scorer  *Scorer
	sigs    *signature.Table
	units   []UnitView
	anchors [][]graph.VertexID
}

func makeFixture(t *testing.T, rng *xrand.RNG, p int, cfg Config) randomFixture {
	t.Helper()
	numV := 32 + rng.Intn(96)
	b := graph.NewBuilder(graph.Undirected, numV)
	numE := numV * (1 + rng.Intn(4))
	for e := 0; e < numE; e++ {
		u := graph.VertexID(rng.Intn(numV))
		v := graph.VertexID(rng.Intn(numV))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()

	const now = 1000
	var clock signature.ManualClock
	clock.Set(now)
	sigs := signature.NewTable(1 + rng.Intn(10))
	// Records: random vertices and processors (some beyond P, which
	// every path must ignore), timestamps straddling "now" and
	// deliberately out of order.
	for n := rng.Intn(numV * 8); n > 0; n-- {
		sigs.Record(graph.VertexID(rng.Intn(numV)), int32(rng.Intn(p+2)), int64(rng.Intn(1200)))
	}

	units := make([]UnitView, p)
	for i := range units {
		var mem int64
		if rng.Intn(4) > 0 {
			mem = int64(1+rng.Intn(64)) << 20
		}
		units[i] = churnUnit{
			queue: rng.Intn(9),
			mem:   mem,
			rate:  int64(rng.Intn(50)),
			now:   now,
		}
	}

	batch := 1 + rng.Intn(2*p)
	anchors := make([][]graph.VertexID, batch)
	for i := range anchors {
		anchors[i] = []graph.VertexID{graph.VertexID(rng.Intn(numV))}
		if rng.Intn(3) == 0 {
			anchors[i] = append(anchors[i], graph.VertexID(rng.Intn(numV)))
		}
	}

	s, err := NewScorer(g, sigs, &clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return randomFixture{scorer: s, sigs: sigs, units: units, anchors: anchors}
}

// Differential property: the snapshot-based BuildAnchors produces a
// Matrix identical — bit for bit, including nil-vs-empty rows and
// entry order — to the per-pair reference path, on seeded random
// graphs, tables, unit states and anchor batches, sequentially and
// under the Parallelism knob.
func TestBuildAnchorsMatchesReference(t *testing.T) {
	rng := xrand.New(0xD1FF)
	etas := []float64{0, 0.01, 0.2}
	unitCounts := []int{1, 3, 4, 16}
	for trial := 0; trial < 40; trial++ {
		p := unitCounts[trial%len(unitCounts)]
		cfg := DefaultConfig()
		cfg.Eta = etas[trial%len(etas)]
		cfg.AvgSubgraphBytes = int64(1+rng.Intn(512)) << 10
		cfg.Parallelism = trial % 5 // 0,1 sequential; 2..4 parallel
		fx := makeFixture(t, rng, p, cfg)

		want := fx.scorer.BuildAnchorsReference(fx.anchors, fx.units)
		got := fx.scorer.BuildAnchors(fx.anchors, fx.units)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (P=%d, eta=%g, parallelism=%d): snapshot path diverged\n got: %+v\nwant: %+v",
				trial, p, cfg.Eta, cfg.Parallelism, got, want)
		}
		// Scratch reuse across rounds must not leak state: a second
		// build over the same inputs is identical.
		again := fx.scorer.BuildAnchors(fx.anchors, fx.units)
		if !reflect.DeepEqual(again, want) {
			t.Fatalf("trial %d: second round diverged after scratch reuse", trial)
		}
	}
}

// The batched path takes one signature lock per distinct vertex in the
// anchor closure — versus ~P locks per vertex per task on the
// reference path. This pins the ≥P× reduction the issue requires.
func TestBuildAnchorsLockBudget(t *testing.T) {
	rng := xrand.New(7)
	const p = 16
	fx := makeFixture(t, rng, p, DefaultConfig())

	base := fx.sigs.LockAcquisitions()
	fx.scorer.BuildAnchors(fx.anchors, fx.units)
	snap := fx.sigs.LockAcquisitions() - base

	base = fx.sigs.LockAcquisitions()
	fx.scorer.BuildAnchorsReference(fx.anchors, fx.units)
	ref := fx.sigs.LockAcquisitions() - base

	if snap == 0 || ref == 0 {
		t.Fatalf("lock counters did not move: snap=%d ref=%d", snap, ref)
	}
	if ref < int64(p)*snap {
		t.Errorf("lock acquisitions: snapshot=%d reference=%d, want ≥%d× reduction", snap, ref, p)
	}
	// Tighter: the snapshot path reads each distinct closure vertex
	// exactly once.
	distinct := make(map[graph.VertexID]struct{})
	for _, vs := range fx.anchors {
		for _, v := range vs {
			distinct[v] = struct{}{}
			for _, u := range fx.scorer.g.Neighbors(v) {
				distinct[u] = struct{}{}
			}
		}
	}
	if snap != int64(len(distinct)) {
		t.Errorf("snapshot path took %d locks, want %d (one per distinct closure vertex)", snap, len(distinct))
	}
}

// Concurrency: traversal engines record visits while the scheduler
// builds matrices. Run under -race; also sanity-check row shape.
func TestBuildAnchorsConcurrentWithRecords(t *testing.T) {
	rng := xrand.New(99)
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	const p = 8
	fx := makeFixture(t, rng, p, cfg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fx.sigs.Record(graph.VertexID(r.Intn(32)), int32(r.Intn(p)), int64(i))
			}
		}(uint64(w + 1))
	}
	for round := 0; round < 200; round++ {
		m := fx.scorer.BuildAnchors(fx.anchors, fx.units)
		for _, row := range m.Rows {
			for k, e := range row {
				if e.Unit < 0 || e.Unit >= p || e.Benefit <= 0 {
					t.Errorf("bad entry %+v", e)
				}
				if k > 0 && row[k-1].Unit >= e.Unit {
					t.Errorf("row not in ascending unit order: %+v", row)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

// mutatingUnit clobbers a caller-owned starts slice from inside the
// scoring round, emulating a caller that reuses its batch buffer
// while (or immediately after) Build runs.
type mutatingUnit struct {
	fakeUnit
	starts []graph.VertexID
}

func (m mutatingUnit) QueueLen() int {
	for i := range m.starts {
		m.starts[i] = 0
	}
	return m.fakeUnit.queue
}

// Contract pin: Build copies the caller's starts slice, so anchor
// identity is fixed at call time. Before the fix, Build aliased
// starts (anchors[i] = starts[i:i+1]) and a mutation during the round
// silently retargeted every task to the clobbered vertex.
func TestBuildCopiesStarts(t *testing.T) {
	g := starGraph(4)
	var clock signature.ManualClock
	s, sigs := newScorer(t, g, &clock, DefaultConfig())
	// Unit 0 visited leaves 1 and 2 only. Tasks anchored there score
	// 1/2 ({leaf} ∪ {center}, leaf visited); a task clobbered onto the
	// center would score 2/5 instead, so aliasing changes the matrix.
	sigs.Record(1, 0, 10)
	sigs.Record(2, 0, 10)

	starts := []graph.VertexID{1, 2}
	units := []UnitView{mutatingUnit{fakeUnit: fakeUnit{memory: 0}, starts: starts}}
	got := s.Build(starts, units)

	pristine := []graph.VertexID{1, 2}
	want := s.Build(pristine, []UnitView{fakeUnit{memory: 0}})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Build saw the mutated starts slice:\n got: %+v\nwant: %+v", got, want)
	}
}
