// Package affinity implements the subgraph-to-processor affinity
// scoring of Section IV: the structural score from visit signatures
// (Eq. 1), its exponential time decay driven by memory pressure
// (Eq. 2-3), and the workload-aware weighting (Eq. 4) that produces
// the benefit matrix consumed by the auction scheduler.
package affinity

import (
	"fmt"
	"math"
	"sync"

	"subtrav/internal/graph"
	"subtrav/internal/signature"
)

// UnitView is the scheduler's read-only view of one processing unit,
// supplying the quantities of Eq. 3 and Eq. 4.
type UnitView interface {
	// QueueLen is the number of subgraph tasks queued but not yet
	// executed on the unit — both w_p of Eq. 4 and n_p of Eq. 3.
	QueueLen() int
	// CompletedSince returns how many subgraph traversals the unit
	// has finished since virtual time t — n'_{t,t_p} of Eq. 3.
	CompletedSince(t int64) int
	// MemoryBudget is the unit's buffer capacity M in bytes; values
	// <= 0 mean unlimited (α becomes 0: cached data never expires).
	MemoryBudget() int64
}

// Config parameterizes the scorer.
type Config struct {
	// Eta is the threshold η: a bipartite edge (G, p) exists only when
	// the decayed affinity score s exceeds it.
	Eta float64
	// EpsilonTilde is the small positive ε̃ of Eq. 4 that keeps the
	// reciprocal workload weight finite on idle units.
	EpsilonTilde float64
	// AvgSubgraphBytes is m of Eq. 3: the average memory footprint of
	// one buffered subgraph.
	AvgSubgraphBytes int64
	// ChurnScale multiplies the decay exponent. The paper's Eq. 2
	// decays scores by e^(-α(t-t_p)) with α from Eq. 3, but leaves the
	// time unit of α unstated; taken literally against any fixed
	// timescale, the decay either never fires or kills every score
	// once task durations drift. This implementation therefore uses
	// the *churn fraction itself* as the exponent —
	//
	//	decay = exp(-ChurnScale · (n_p + n')·m / M)
	//
	// — which tracks exactly what the unit's LRU buffer does: after
	// the unit has loaded ≈M bytes of other subgraphs, the cached data
	// is gone regardless of how much wall time that took. Elapsed time
	// still matters implicitly because n' grows with it. ChurnScale
	// (default 1) sharpens or softens the cutoff.
	ChurnScale float64
	// Parallelism is the number of goroutines BuildAnchors uses to
	// construct matrix rows after the per-round vertex snapshots are
	// in place; 0 or 1 keeps row construction sequential (the
	// default). Rows are written by index, so the resulting Matrix is
	// identical regardless of goroutine interleaving.
	Parallelism int
}

// DefaultConfig returns scorer parameters tuned for the simulator's
// cost model: scores in (0,1], mild thresholding, churn-true decay.
func DefaultConfig() Config {
	return Config{
		Eta:              0.01,
		EpsilonTilde:     0.5,
		AvgSubgraphBytes: 256 << 10, // typical bounded-traversal footprint
		ChurnScale:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Eta < 0:
		return fmt.Errorf("affinity: Eta = %g, want >= 0", c.Eta)
	case c.EpsilonTilde <= 0:
		return fmt.Errorf("affinity: EpsilonTilde = %g, want > 0", c.EpsilonTilde)
	case c.AvgSubgraphBytes <= 0:
		return fmt.Errorf("affinity: AvgSubgraphBytes = %d, want > 0", c.AvgSubgraphBytes)
	case c.ChurnScale <= 0:
		return fmt.Errorf("affinity: ChurnScale = %g, want > 0", c.ChurnScale)
	case c.Parallelism < 0:
		return fmt.Errorf("affinity: Parallelism = %d, want >= 0", c.Parallelism)
	}
	return nil
}

// Scorer evaluates subgraph-processor affinities against a graph, its
// visit-signature table and a clock. Safe for concurrent use (the
// signature table is internally synchronized, the scratch pool hands
// each concurrent round its own buffers; the rest is read-only).
type Scorer struct {
	g     *graph.Graph
	sigs  *signature.Table
	clock signature.Clock
	cfg   Config

	// scratch pools per-round snapshot caches and scoring buffers so
	// steady-state BuildAnchors rounds allocate O(1) (see snapshot.go).
	scratch sync.Pool
}

// NewScorer builds a scorer; the config must validate.
func NewScorer(g *graph.Graph, sigs *signature.Table, clock signature.Clock, cfg Config) (*Scorer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if g == nil || sigs == nil || clock == nil {
		return nil, fmt.Errorf("affinity: graph, signature table and clock are required")
	}
	s := &Scorer{g: g, sigs: sigs, clock: clock, cfg: cfg}
	s.scratch.New = func() any { return newRoundScratch() }
	return s, nil
}

// Config returns the scorer configuration.
func (s *Scorer) Config() Config { return s.cfg }

// Structural computes s'_{v→p} of Eq. 1: the fraction of {v} ∪ Γ(v)
// recently visited by processor proc.
func (s *Scorer) Structural(v graph.VertexID, proc int32) float64 {
	score, _ := s.structuralAndLatest(v, proc)
	return score
}

// structuralAndLatest returns Eq. 1 together with t_p — the most
// recent time proc touched any counted vertex. When v itself was
// visited by proc, its own timestamp is used (the paper's t_p);
// otherwise the freshest neighbor visit stands in.
func (s *Scorer) structuralAndLatest(v graph.VertexID, proc int32) (float64, int64) {
	hits := 0
	var latest int64 = math.MinInt64
	if t, ok := s.sigs.LatestByProc(v, proc); ok {
		hits++
		latest = t
	}
	neighbors := s.g.Neighbors(v)
	for _, u := range neighbors {
		if t, ok := s.sigs.LatestByProc(u, proc); ok {
			hits++
			if t > latest {
				latest = t
			}
		}
	}
	if hits == 0 {
		return 0, 0
	}
	return float64(hits) / float64(1+len(neighbors)), latest
}

// Score computes s_{v→p} of Eq. 2: the structural score decayed by
// the unit's memory churn since the data was cached.
func (s *Scorer) Score(v graph.VertexID, proc int32, unit UnitView) float64 {
	structural, latest := s.structuralAndLatest(v, proc)
	if structural == 0 {
		return 0
	}
	return structural * s.decay(latest, unit)
}

// decay evaluates the negative exponential of Eq. 2 with the
// memory-pressure exponent of Eq. 3 (see Config.ChurnScale for how
// the paper's implicit time unit is resolved).
func (s *Scorer) decay(tp int64, unit UnitView) float64 {
	m := unit.MemoryBudget()
	if m <= 0 {
		return 1 // unlimited memory: cached data never expires
	}
	if s.clock.Now() <= tp {
		return 1
	}
	churned := unit.QueueLen() + unit.CompletedSince(tp)
	if churned == 0 {
		return 1
	}
	exponent := s.cfg.ChurnScale * float64(churned) * float64(s.cfg.AvgSubgraphBytes) / float64(m)
	return math.Exp(-exponent)
}

// Weighted computes the workload-aware entry of Eq. 4:
// a_{v,p} = s_{v→p} / (w_p + ε̃).
func (s *Scorer) Weighted(v graph.VertexID, proc int32, unit UnitView) float64 {
	score := s.Score(v, proc, unit)
	if score == 0 {
		return 0
	}
	return score / (float64(unit.QueueLen()) + s.cfg.EpsilonTilde)
}

// Entry is one admissible unit for a task row, with its workload-aware
// benefit.
type Entry struct {
	Unit    int
	Benefit float64
}

// Matrix is the sparse workload-aware affinity matrix A of Eq. 4 for
// one scheduling round: Rows[i] lists the units whose *decayed* score
// for task i exceeded η, weighted per Eq. 4.
type Matrix struct {
	NumUnits int
	Rows     [][]Entry
}

// Build constructs the matrix for a batch of traversal start vertices
// over the given units (indexed by position; position is the processor
// ID used against the signature table). The starts slice is copied:
// the anchors keep their identity even if the caller mutates starts
// after Build returns (contract pinned by TestBuildCopiesStarts).
func (s *Scorer) Build(starts []graph.VertexID, units []UnitView) Matrix {
	copied := make([]graph.VertexID, len(starts))
	copy(copied, starts)
	anchors := make([][]graph.VertexID, len(copied))
	for i := range copied {
		anchors[i] = copied[i : i+1]
	}
	return s.BuildAnchors(anchors, units)
}

// BuildAnchorsReference is the executable specification of
// BuildAnchors: the straightforward per-(vertex, unit) formulation
// that scores every pair independently through ScoreAnchors, paying
// one signature-list scan per pair. BuildAnchors produces an
// identical Matrix from per-round vertex snapshots at a fraction of
// the cost; the differential tests and the scheduler hot-path
// benchmarks (internal/schedbench) hold the two paths against each
// other. Use BuildAnchors everywhere else.
func (s *Scorer) BuildAnchorsReference(anchors [][]graph.VertexID, units []UnitView) Matrix {
	m := Matrix{NumUnits: len(units), Rows: make([][]Entry, len(anchors))}
	for i, vs := range anchors {
		var row []Entry
		for p, unit := range units {
			score := s.ScoreAnchors(vs, int32(p), unit)
			if score <= s.cfg.Eta {
				continue
			}
			row = append(row, Entry{
				Unit:    p,
				Benefit: score / (float64(unit.QueueLen()) + s.cfg.EpsilonTilde),
			})
		}
		m.Rows[i] = row
	}
	return m
}

// ScoreAnchors returns the best Eq. 2 score over a set of anchor
// vertices.
func (s *Scorer) ScoreAnchors(vs []graph.VertexID, proc int32, unit UnitView) float64 {
	best := 0.0
	for _, v := range vs {
		if score := s.Score(v, proc, unit); score > best {
			best = score
		}
	}
	return best
}

// WeightedAnchors is ScoreAnchors with the Eq. 4 queue weighting.
func (s *Scorer) WeightedAnchors(vs []graph.VertexID, proc int32, unit UnitView) float64 {
	score := s.ScoreAnchors(vs, proc, unit)
	if score == 0 {
		return 0
	}
	return score / (float64(unit.QueueLen()) + s.cfg.EpsilonTilde)
}
