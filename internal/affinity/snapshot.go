// Per-round snapshot-cache implementation of BuildAnchors.
//
// The scheduler's per-round cost used to be dominated by signature
// reads: scoring a batch of B tasks over P units with average degree d
// called signature.Table.LatestByProc once per (vertex, unit) pair —
// B·P·(1+d) shard-lock acquisitions, with the same ≤capacity-entry
// list rescanned P times per vertex and again for every task sharing a
// neighbor. This file replaces that with a per-round vertex snapshot
// cache: each vertex's signature list is read exactly once per round
// (one lock, one scan — Table.LatestAll), yielding a P-wide array of
// per-processor latest-visit timestamps that serves every unit and
// every task touching that vertex. Scratch buffers are pooled on the
// Scorer, so steady-state rounds allocate O(1): the returned Matrix's
// row headers and one flat entry arena.
//
// Determinism: rows are computed from immutable snapshots taken at a
// single clock reading, entries are emitted in ascending unit order,
// and (in parallel mode) each row is written only by the goroutine
// that owns its index — the output Matrix is bit-for-bit identical to
// BuildAnchorsReference's under a quiescent signature table,
// regardless of Parallelism.

package affinity

import (
	"math"
	"sync"

	"subtrav/internal/graph"
	"subtrav/internal/signature"
)

// roundScratch is the pooled per-round state of one BuildAnchors call.
type roundScratch struct {
	// snapOff maps a vertex to the offset of its P-wide latest-visit
	// snapshot inside snapBuf. Offsets (not slices) are stored so the
	// buffer can grow by reallocation without invalidating the map.
	snapOff map[graph.VertexID]int
	snapBuf []int64

	// Per-unit quantities hoisted once per round: queue lengths and
	// memory budgets feed Eq. 3's churn exponent, wdenom is Eq. 4's
	// denominator w_p + ε̃.
	queues []int
	mems   []int64
	wdenom []float64

	// row is the scoring scratch of the sequential path; parallel
	// workers bring their own.
	row rowScratch

	// spans records [start, end) of each row inside the entry arena.
	spans [][2]int

	// lastEntries remembers the previous round's total entry count so
	// the next arena is sized right in one allocation.
	lastEntries int
}

// rowScratch holds the P-wide accumulators used to score one task row.
type rowScratch struct {
	hits   []int32   // per-unit hit count over {v} ∪ Γ(v) (Eq. 1 numerator)
	latest []int64   // per-unit freshest visit among counted vertices (t_p)
	best   []float64 // per-unit best Eq. 2 score over the task's anchors
	spill  []int64   // parallel-mode fallback snapshot buffer
}

func newRoundScratch() *roundScratch {
	return &roundScratch{snapOff: make(map[graph.VertexID]int)}
}

// reset prepares the scratch for a round over P units.
func (sc *roundScratch) reset(p int) {
	clear(sc.snapOff)
	sc.snapBuf = sc.snapBuf[:0]
	sc.queues = growSlice(sc.queues, p)
	sc.mems = growSlice(sc.mems, p)
	sc.wdenom = growSlice(sc.wdenom, p)
	sc.row.resize(p)
	sc.spans = sc.spans[:0]
}

func (rs *rowScratch) resize(p int) {
	rs.hits = growSlice(rs.hits, p)
	rs.latest = growSlice(rs.latest, p)
	rs.best = growSlice(rs.best, p)
}

// growSlice returns s with length n, reusing its backing array when
// large enough. Contents are unspecified.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// snapshot returns the P-wide latest-visit array of v, reading the
// signature table (one lock, one scan) only on the first request of
// the round. Not safe for concurrent use — parallel row construction
// pre-populates every snapshot first and then reads via snapshotRO.
func (sc *roundScratch) snapshot(sigs *signature.Table, v graph.VertexID, p int) []int64 {
	if off, ok := sc.snapOff[v]; ok {
		return sc.snapBuf[off : off+p]
	}
	off := len(sc.snapBuf)
	if cap(sc.snapBuf) < off+p {
		grown := make([]int64, off, 2*(off+p))
		copy(grown, sc.snapBuf)
		sc.snapBuf = grown
	}
	sc.snapBuf = sc.snapBuf[:off+p]
	out := sc.snapBuf[off : off+p]
	sigs.LatestAll(v, out)
	sc.snapOff[v] = off
	return out
}

// snapshotRO is the read-only lookup used by parallel workers after
// the pre-population pass. A miss (impossible when pre-population
// covered the same vertex set, but cheap to tolerate) reads the table
// directly into the worker's spill buffer.
func (sc *roundScratch) snapshotRO(sigs *signature.Table, v graph.VertexID, p int, rs *rowScratch) []int64 {
	if off, ok := sc.snapOff[v]; ok {
		return sc.snapBuf[off : off+p]
	}
	rs.spill = growSlice(rs.spill, p)
	sigs.LatestAll(v, rs.spill)
	return rs.spill
}

// BuildAnchors builds the sparse workload-aware affinity matrix for
// tasks identified by their anchor vertex sets: a task's score against
// a unit is the best Eq. 2 score over its anchors (bounded
// bidirectional SSSP anchors on both endpoints — its footprint is two
// balls, one around each endpoint). Each distinct vertex in the
// batch's anchor closure is read from the signature table exactly once
// per call regardless of the unit count or of how many tasks share it;
// see the package comment above for the full cost argument. Rows hold
// entries in ascending unit order and sub-slice one shared arena
// (capacity-capped, so appending to a row copies it). Equivalent to
// BuildAnchorsReference, at ≥P× fewer signature-lock acquisitions.
func (s *Scorer) BuildAnchors(anchors [][]graph.VertexID, units []UnitView) Matrix {
	m := Matrix{NumUnits: len(units), Rows: make([][]Entry, len(anchors))}
	if len(anchors) == 0 || len(units) == 0 {
		return m
	}
	sc := s.scratch.Get().(*roundScratch)
	sc.reset(len(units))
	now := s.clock.Now()
	for p, unit := range units {
		sc.queues[p] = unit.QueueLen()
		sc.mems[p] = unit.MemoryBudget()
		sc.wdenom[p] = float64(sc.queues[p]) + s.cfg.EpsilonTilde
	}
	if w := s.cfg.Parallelism; w > 1 && len(anchors) > 1 {
		s.buildRowsParallel(m.Rows, anchors, units, sc, now, w)
	} else {
		s.buildRowsSequential(m.Rows, anchors, units, sc, now)
	}
	s.scratch.Put(sc)
	return m
}

// buildRowsSequential scores every task row on the calling goroutine,
// packing entries into one arena sized from the previous round.
func (s *Scorer) buildRowsSequential(rows [][]Entry, anchors [][]graph.VertexID, units []UnitView, sc *roundScratch, now int64) {
	p := len(units)
	capHint := sc.lastEntries
	if capHint < 16 {
		capHint = 16
	}
	entries := make([]Entry, 0, capHint)
	for _, vs := range anchors {
		s.bestScores(vs, units, sc, &sc.row, now, false)
		start := len(entries)
		for u := 0; u < p; u++ {
			if sc.row.best[u] > s.cfg.Eta {
				entries = append(entries, Entry{Unit: u, Benefit: sc.row.best[u] / sc.wdenom[u]})
			}
		}
		sc.spans = append(sc.spans, [2]int{start, len(entries)})
	}
	sc.lastEntries = len(entries)
	for i, sp := range sc.spans {
		if sp[1] > sp[0] {
			rows[i] = entries[sp[0]:sp[1]:sp[1]]
		}
	}
}

// buildRowsParallel pre-populates the snapshot cache sequentially
// (map writes are single-threaded), then fans row construction out to
// workers striding over row indices. Workers only read the frozen
// cache and write disjoint rows, so the result is deterministic.
func (s *Scorer) buildRowsParallel(rows [][]Entry, anchors [][]graph.VertexID, units []UnitView, sc *roundScratch, now int64, workers int) {
	p := len(units)
	for _, vs := range anchors {
		for _, v := range vs {
			sc.snapshot(s.sigs, v, p)
			for _, u := range s.g.Neighbors(v) {
				sc.snapshot(s.sigs, u, p)
			}
		}
	}
	if workers > len(anchors) {
		workers = len(anchors)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rs := &rowScratch{}
			rs.resize(p)
			for i := w; i < len(anchors); i += workers {
				s.bestScores(anchors[i], units, sc, rs, now, true)
				var row []Entry
				for u := 0; u < p; u++ {
					if rs.best[u] > s.cfg.Eta {
						row = append(row, Entry{Unit: u, Benefit: rs.best[u] / sc.wdenom[u]})
					}
				}
				rows[i] = row
			}
		}(w)
	}
	wg.Wait()
}

// bestScores fills rs.best with each unit's best Eq. 2 score over the
// task's anchors: for every anchor it combines the anchor's snapshot
// with its neighbors' snapshots into per-unit hit counts (Eq. 1) and
// freshest timestamps (t_p), then applies the churn decay. Arithmetic
// mirrors Score/structuralAndLatest operation for operation so the
// result is bit-identical to the reference path.
func (s *Scorer) bestScores(vs []graph.VertexID, units []UnitView, sc *roundScratch, rs *rowScratch, now int64, ro bool) {
	p := len(units)
	for u := range rs.best {
		rs.best[u] = 0
	}
	for _, v := range vs {
		snapV := sc.lookup(s.sigs, v, p, rs, ro)
		neighbors := s.g.Neighbors(v)
		for u := 0; u < p; u++ {
			if t := snapV[u]; t != signature.NoVisit {
				rs.hits[u] = 1
				rs.latest[u] = t
			} else {
				rs.hits[u] = 0
				rs.latest[u] = signature.NoVisit
			}
		}
		for _, nb := range neighbors {
			snapN := sc.lookup(s.sigs, nb, p, rs, ro)
			for u := 0; u < p; u++ {
				if t := snapN[u]; t != signature.NoVisit {
					rs.hits[u]++
					if t > rs.latest[u] {
						rs.latest[u] = t
					}
				}
			}
		}
		denom := float64(1 + len(neighbors))
		for u := 0; u < p; u++ {
			if rs.hits[u] == 0 {
				continue
			}
			score := float64(rs.hits[u]) / denom * s.decayAt(now, rs.latest[u], sc.mems[u], sc.queues[u], units[u])
			if score > rs.best[u] {
				rs.best[u] = score
			}
		}
	}
}

// lookup dispatches between the mutating and read-only snapshot paths.
func (sc *roundScratch) lookup(sigs *signature.Table, v graph.VertexID, p int, rs *rowScratch, ro bool) []int64 {
	if ro {
		return sc.snapshotRO(sigs, v, p, rs)
	}
	return sc.snapshot(sigs, v, p)
}

// decayAt is decay (Eq. 2-3) with the round-invariant inputs — the
// clock reading, the unit's memory budget and queue length — hoisted
// out of the per-pair loop. Must stay arithmetically identical to
// Scorer.decay.
func (s *Scorer) decayAt(now, tp int64, mem int64, queue int, unit UnitView) float64 {
	if mem <= 0 {
		return 1 // unlimited memory: cached data never expires
	}
	if now <= tp {
		return 1
	}
	churned := queue + unit.CompletedSince(tp)
	if churned == 0 {
		return 1
	}
	exponent := s.cfg.ChurnScale * float64(churned) * float64(s.cfg.AvgSubgraphBytes) / float64(mem)
	return math.Exp(-exponent)
}
