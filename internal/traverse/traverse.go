// Package traverse implements the local subgraph traversal engines of
// Section II: bounded-depth predicate BFS, bounded bidirectional
// single-source shortest path, naive collaborative filtering, and
// random walk with restart (image re-ranking).
//
// Every engine returns, besides its semantic result, an ordered
// *access trace*: the sequence of vertex/edge records it touched, with
// their payload sizes. The set of records a traversal touches depends
// only on the graph and the query — never on timing — so the
// discrete-event simulator can replay the trace against a unit's cache
// and the shared disk to obtain the traversal's cost, while the live
// runtime charges the same accesses as it goes.
//
// The engines come in two forms. The Workspace kernels (Workspace.BFS
// et al., dispatched by ExecuteIn) run against reusable epoch-stamped
// dense scratch — O(1) reset, zero steady-state allocations — and are
// what the executors drive. The *Reference kernels (reference.go) are
// the original map-based implementations, retained as the executable
// specification: differential tests pin the two bit-for-bit on every
// Result and Trace. The package-level one-shot functions (BFS,
// Execute, ...) allocate a private Workspace per call.
package traverse

import (
	"fmt"
	"math"

	"subtrav/internal/graph"
)

// Op selects a traversal engine.
type Op uint8

const (
	// OpBFS is a bounded-depth breadth-first search with optional
	// vertex/edge predicates.
	OpBFS Op = iota
	// OpSSSP is the bounded-length single-source shortest path solved
	// by two meeting BFS frontiers (Section II, example 1).
	OpSSSP
	// OpCollab is naive collaborative filtering over a
	// customer-product graph (Section II, example 2).
	OpCollab
	// OpRWR is local random walk with restart for multimedia search
	// refinement (Section II, example 3).
	OpRWR
)

func (o Op) String() string {
	switch o {
	case OpBFS:
		return "bfs"
	case OpSSSP:
		return "sssp"
	case OpCollab:
		return "collab"
	case OpRWR:
		return "rwr"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Query is one subgraph traversal task: a starting vertex, a depth
// bound h, and predicates θ to match during the traversal (Section
// V-C), plus per-engine parameters.
type Query struct {
	Op    Op
	Start graph.VertexID

	// Depth is the traversal bound h (BFS) or the maximum path length
	// δ (SSSP).
	Depth int

	// MaxVisits optionally caps the number of expanded vertices
	// (0 = unbounded); real services bound hub explosions this way.
	MaxVisits int

	// VertexPred and EdgePred are the user-defined constraints θ; nil
	// matches everything.
	VertexPred graph.Predicate
	EdgePred   graph.Predicate

	// Target is the second endpoint for OpSSSP.
	Target graph.VertexID

	// SimilarityThreshold is the η of the collaborative-filtering
	// rule s_{v,v'} > η.
	SimilarityThreshold float64

	// Steps, RestartProb, TopK and Seed parameterize OpRWR.
	Steps       int
	RestartProb float64
	TopK        int
	Seed        uint64

	// Dir tunes push/pull direction switching for OpBFS and OpSSSP
	// (see DirectionConfig). The zero value is Auto with the default
	// Beamer thresholds. Results and traces are identical in every
	// mode; only the work done to produce them changes. Ignored by the
	// other ops and by the reference kernels (which are the push-only
	// executable spec).
	Dir DirectionConfig
}

// Validate checks query parameters against a graph.
func (q Query) Validate(g *graph.Graph) error {
	if !g.Valid(q.Start) {
		return fmt.Errorf("traverse: start vertex %d invalid", q.Start)
	}
	switch q.Op {
	case OpBFS:
		if q.Depth < 0 {
			return fmt.Errorf("traverse: BFS depth %d, want >= 0", q.Depth)
		}
	case OpSSSP:
		if !g.Valid(q.Target) {
			return fmt.Errorf("traverse: SSSP target %d invalid", q.Target)
		}
		if q.Depth <= 0 {
			return fmt.Errorf("traverse: SSSP length bound %d, want > 0", q.Depth)
		}
	case OpCollab:
		if q.SimilarityThreshold < 0 || q.SimilarityThreshold > 1 {
			return fmt.Errorf("traverse: similarity threshold %g, want [0,1]", q.SimilarityThreshold)
		}
	case OpRWR:
		if q.Steps <= 0 {
			return fmt.Errorf("traverse: RWR steps %d, want > 0", q.Steps)
		}
		if q.RestartProb < 0 || q.RestartProb >= 1 {
			return fmt.Errorf("traverse: restart probability %g, want [0,1)", q.RestartProb)
		}
	default:
		return fmt.Errorf("traverse: unknown op %d", q.Op)
	}
	return q.Dir.validate()
}

// Access is one vertex-record touch. A record is the vertex header,
// its properties, and its adjacency list with inline edge properties
// (see graph.VertexBytes) — the unit the shared-disk store fetches and
// the unit buffer caches. ScannedEdges counts the adjacency entries
// the engine processed while holding the record (predicate checks,
// weight sums); they cost CPU but no extra I/O.
type Access struct {
	Vertex       graph.VertexID
	Bytes        int32
	ScannedEdges int32
}

// Trace is the ordered data-access log of one traversal.
type Trace struct {
	Accesses []Access
	// Touched lists the distinct vertices visited, in first-visit
	// order; the simulator records visit signatures for them.
	Touched []graph.VertexID
}

// touchVertex appends a vertex record access, deduplicating Touched,
// and returns the access index so the engine can attribute scanned
// edges to it later.
func (t *Trace) touchVertex(g *graph.Graph, v graph.VertexID, seen map[graph.VertexID]bool) int {
	t.Accesses = append(t.Accesses, Access{Vertex: v, Bytes: g.VertexBytes(v)})
	if !seen[v] {
		seen[v] = true
		t.Touched = append(t.Touched, v)
	}
	return len(t.Accesses) - 1
}

// chargeScan attributes scanned-edge CPU work to access idx. The add
// saturates at MaxInt32: a lockstep batch aggregates up to MaxBatch
// queries' scans of one record into a single shared access, which can
// exceed int32 on synthetic max-degree graphs. Both kernel generations
// charge through this method, so saturation cannot break differential
// equality.
func (t *Trace) chargeScan(idx, edges int) {
	sum := int64(t.Accesses[idx].ScannedEdges) + int64(edges)
	if sum > math.MaxInt32 {
		sum = math.MaxInt32
	}
	t.Accesses[idx].ScannedEdges = int32(sum)
}

// TotalBytes sums the payload bytes across all accesses (with
// repeats — the cache decides what is actually fetched).
func (t *Trace) TotalBytes() int64 {
	var total int64
	for _, a := range t.Accesses {
		total += int64(a.Bytes)
	}
	return total
}

// Recommendation is one collaborative-filtering hit.
type Recommendation struct {
	Product    graph.VertexID
	Similarity float64
}

// Ranked is one RWR ranking entry.
type Ranked struct {
	Vertex graph.VertexID
	Score  float64
}

// Result carries the semantic outcome of a traversal; engines fill
// the fields relevant to their Op.
type Result struct {
	// Visited is the number of distinct vertices expanded.
	Visited int
	// Found and PathLen report SSSP success and shortest length.
	Found   bool
	PathLen int
	// Recommendations are the collaborative-filtering products above
	// threshold, best first.
	Recommendations []Recommendation
	// Ranking is the RWR top-K, best first.
	Ranking []Ranked
}

// Clone returns a Result whose slices are private copies, safe to
// retain after the Workspace that produced it is reused or pooled.
func (r Result) Clone() Result {
	if r.Recommendations != nil {
		r.Recommendations = append([]Recommendation(nil), r.Recommendations...)
	}
	if r.Ranking != nil {
		r.Ranking = append([]Ranked(nil), r.Ranking...)
	}
	return r
}

func errUnreachableOp(op Op) error {
	return fmt.Errorf("traverse: unreachable op %d", op)
}

// Execute dispatches a query to its engine through a private, freshly
// allocated Workspace, so the returned Result and Trace are caller-
// owned. The trace is never nil on success. Hot paths reuse a
// Workspace via ExecuteIn instead.
func Execute(g *graph.Graph, q Query) (Result, *Trace, error) {
	return ExecuteIn(NewWorkspace(g.NumVertices()), g, q)
}

// ExecuteIn dispatches a query to its Workspace kernel. The returned
// Result slices and Trace are owned by ws and valid only until its
// next kernel call — Clone the Result (and copy the Trace) to retain
// them. The trace is never nil on success.
func ExecuteIn(ws *Workspace, g *graph.Graph, q Query) (Result, *Trace, error) {
	if err := q.Validate(g); err != nil {
		return Result{}, nil, err
	}
	switch q.Op {
	case OpBFS:
		r, tr := ws.BFS(g, q)
		return r, tr, nil
	case OpSSSP:
		r, tr := ws.BoundedSSSP(g, q)
		return r, tr, nil
	case OpCollab:
		r, tr := ws.CollabFilter(g, q)
		return r, tr, nil
	case OpRWR:
		r, tr := ws.RandomWalk(g, q)
		return r, tr, nil
	}
	return Result{}, nil, errUnreachableOp(q.Op)
}
