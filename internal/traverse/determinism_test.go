package traverse

import (
	"fmt"
	"reflect"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

// Regression: CollabFilter's hop-2 used to iterate a Go map, whose
// randomized range order made two runs of the same seeded query emit
// trace accesses — and therefore visit signatures and cache evictions
// — in different orders. Both kernel generations now iterate
// insertion-ordered side lists; these tests pin run-to-run identity
// byte for byte.

func determinismFixture(t *testing.T) (*graphgen.PurchaseGraph, []Query) {
	t.Helper()
	bip, err := graphgen.Purchases(graphgen.PurchaseConfig{
		NumCustomers: 500, NumProducts: 200,
		PurchasesPerCustomerMean: 8, PopularityExponent: 2.3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var qs []Query
	for i := 0; i < 10; i++ {
		qs = append(qs, Query{Op: OpCollab, Start: bip.ProductVertex(i * 7), SimilarityThreshold: 0.1})
	}
	return bip, qs
}

// runTrace executes q and returns deep copies of the outputs, so two
// runs can be compared without workspace aliasing.
func runTrace(t *testing.T, exec func(Query) (Result, *Trace, error), q Query) (Result, Trace) {
	t.Helper()
	res, tr, err := exec(q)
	if err != nil {
		t.Fatal(err)
	}
	cp := Trace{
		Accesses: append([]Access(nil), tr.Accesses...),
		Touched:  append([]graph.VertexID(nil), tr.Touched...),
	}
	return res.Clone(), cp
}

func TestCollabFilterRunsAreIdentical(t *testing.T) {
	bip, queries := determinismFixture(t)
	g := bip.Graph

	kernels := []struct {
		name string
		exec func(Query) (Result, *Trace, error)
	}{
		{"workspace", func(q Query) (Result, *Trace, error) {
			return ExecuteIn(NewWorkspace(g.NumVertices()), g, q)
		}},
		{"reference", func(q Query) (Result, *Trace, error) {
			return ExecuteReference(g, q)
		}},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			for qi, q := range queries {
				res1, tr1 := runTrace(t, k.exec, q)
				res2, tr2 := runTrace(t, k.exec, q)
				label := fmt.Sprintf("q%d(start=%d)", qi, q.Start)
				if !reflect.DeepEqual(res1, res2) {
					t.Fatalf("%s: results differ between identical runs:\n1: %+v\n2: %+v", label, res1, res2)
				}
				if !reflect.DeepEqual(tr1, tr2) {
					t.Fatalf("%s: traces differ between identical runs (access order is not deterministic)", label)
				}
			}
		})
	}
}

// RandomWalk accumulates visit counts the same way; pin it too.
func TestRandomWalkRunsAreIdentical(t *testing.T) {
	bip, _ := determinismFixture(t)
	g := bip.Graph
	q := Query{Op: OpRWR, Start: bip.CustomerVertex(1), Steps: 600, RestartProb: 0.2, TopK: 15, Seed: 99}

	ws := NewWorkspace(g.NumVertices())
	res1, tr1 := runTrace(t, func(q Query) (Result, *Trace, error) { return ExecuteIn(ws, g, q) }, q)
	res2, tr2 := runTrace(t, func(q Query) (Result, *Trace, error) { return ExecuteIn(ws, g, q) }, q)
	if !reflect.DeepEqual(res1, res2) || !reflect.DeepEqual(tr1, tr2) {
		t.Fatal("seeded RWR runs diverged")
	}
	ref1, rtr1 := runTrace(t, func(q Query) (Result, *Trace, error) { return ExecuteReference(g, q) }, q)
	ref2, rtr2 := runTrace(t, func(q Query) (Result, *Trace, error) { return ExecuteReference(g, q) }, q)
	if !reflect.DeepEqual(ref1, ref2) || !reflect.DeepEqual(rtr1, rtr2) {
		t.Fatal("seeded reference RWR runs diverged")
	}
}
