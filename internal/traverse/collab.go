package traverse

import (
	"sort"

	"subtrav/internal/graph"
)

// CollabFilter implements the naive collaborative filtering of
// Section II, example 2: starting from product v, gather its buyers
// U = Γ(v), then every other product v' bought by those buyers, and
// recommend the v' whose similarity
//
//	s_{v,v'} = |Γ(v) ∩ Γ(v')| / min(|Γ(v)|, |Γ(v')|)
//
// exceeds q.SimilarityThreshold. The traversal is a two-hop BFS over
// the customer-product bipartite graph.
func CollabFilter(g *graph.Graph, q Query) (Result, *Trace) {
	return NewWorkspace(g.NumVertices()).CollabFilter(g, q)
}

// CollabFilter is the dense-scratch kernel: buyers and co-purchased
// products live in epoch-stamped maps plus insertion-ordered compact
// side lists, so hop-2 iteration — and therefore the emitted trace,
// the visit signatures, and the cache eviction order — happens in
// deterministic first-touch order, never map-range order. Pinned
// bit-for-bit against CollabFilterReference.
//
//vet:hotpath
func (ws *Workspace) CollabFilter(g *graph.Graph, q Query) (Result, *Trace) {
	ws.begin(g)
	v := q.Start
	vAcc := ws.touch(g, v)
	visited := 1

	// Hop 1: buyers of v, in adjacency (= insertion) order. accA maps
	// buyer → its trace access index; ws.orderA is the iteration list.
	buyerAcc := &ws.scratch.accA
	lo, hi := g.EdgeSlots(v)
	ws.trace.chargeScan(vAcc, int(hi-lo))
	for s := lo; s < hi; s++ {
		u := g.TargetAt(s)
		if !buyerAcc.Contains(u) {
			buyerAcc.Put(u, int32(ws.touch(g, u)))
			ws.orderA = append(ws.orderA, u)
			visited++
		}
	}
	degV := len(ws.orderA)
	if degV == 0 {
		return Result{Visited: visited}, &ws.trace
	}

	// Hop 2: co-purchased products, counting shared buyers; products
	// are recorded in first-touch order in ws.orderB.
	shared := &ws.scratch.mapB
	for _, u := range ws.orderA {
		ulo, uhi := g.EdgeSlots(u)
		uAcc, _ := buyerAcc.Get(u)
		ws.trace.chargeScan(int(uAcc), int(uhi-ulo))
		for s := ulo; s < uhi; s++ {
			p := g.TargetAt(s)
			if p == v {
				continue
			}
			if shared.Inc(p, 1) == 1 {
				ws.touch(g, p)
				ws.orderB = append(ws.orderB, p)
				visited++
			}
		}
	}

	recs := ws.recs[:0]
	for _, p := range ws.orderB {
		count, _ := shared.Get(p)
		degP := g.Degree(p)
		minDeg := degV
		if degP < minDeg {
			minDeg = degP
		}
		if minDeg == 0 {
			continue
		}
		sim := float64(count) / float64(minDeg)
		if sim > q.SimilarityThreshold {
			recs = append(recs, Recommendation{Product: p, Similarity: sim})
		}
	}
	ws.recs = recs
	ws.recSorter.s = recs
	sort.Sort(&ws.recSorter)
	if len(recs) == 0 {
		recs = nil // match the reference's nil-when-empty Result
	}
	return Result{Visited: visited, Recommendations: recs}, &ws.trace
}
