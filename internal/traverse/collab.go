package traverse

import (
	"sort"

	"subtrav/internal/graph"
)

// CollabFilter implements the naive collaborative filtering of
// Section II, example 2: starting from product v, gather its buyers
// U = Γ(v), then every other product v' bought by those buyers, and
// recommend the v' whose similarity
//
//	s_{v,v'} = |Γ(v) ∩ Γ(v')| / min(|Γ(v)|, |Γ(v')|)
//
// exceeds q.SimilarityThreshold. The traversal is a two-hop BFS over
// the customer-product bipartite graph.
func CollabFilter(g *graph.Graph, q Query) (Result, *Trace) {
	trace := &Trace{}
	seen := make(map[graph.VertexID]bool)
	v := q.Start
	vAcc := trace.touchVertex(g, v, seen)
	visited := 1

	// Hop 1: buyers of v.
	buyers := make(map[graph.VertexID]bool)
	buyerAcc := make(map[graph.VertexID]int)
	lo, hi := g.EdgeSlots(v)
	trace.chargeScan(vAcc, int(hi-lo))
	for s := lo; s < hi; s++ {
		u := g.TargetAt(s)
		if !buyers[u] {
			buyers[u] = true
			buyerAcc[u] = trace.touchVertex(g, u, seen)
			visited++
		}
	}
	degV := len(buyers)
	if degV == 0 {
		return Result{Visited: visited}, trace
	}

	// Hop 2: co-purchased products, counting shared buyers.
	shared := make(map[graph.VertexID]int)
	for u := range buyers {
		ulo, uhi := g.EdgeSlots(u)
		trace.chargeScan(buyerAcc[u], int(uhi-ulo))
		for s := ulo; s < uhi; s++ {
			p := g.TargetAt(s)
			if p == v {
				continue
			}
			if shared[p] == 0 {
				trace.touchVertex(g, p, seen)
				visited++
			}
			shared[p]++
		}
	}

	var recs []Recommendation
	for p, count := range shared {
		degP := g.Degree(p)
		minDeg := degV
		if degP < minDeg {
			minDeg = degP
		}
		if minDeg == 0 {
			continue
		}
		sim := float64(count) / float64(minDeg)
		if sim > q.SimilarityThreshold {
			recs = append(recs, Recommendation{Product: p, Similarity: sim})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Similarity != recs[j].Similarity {
			return recs[i].Similarity > recs[j].Similarity
		}
		return recs[i].Product < recs[j].Product
	})
	return Result{Visited: visited, Recommendations: recs}, trace
}
