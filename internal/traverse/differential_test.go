package traverse

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

// The differential suite pins the Workspace kernels bit-for-bit to the
// map-based reference kernels: identical Result (reflect.DeepEqual)
// and identical Trace.Accesses / Trace.Touched sequences, across graph
// families, all four ops, predicate paths, and MaxVisits caps. One
// Workspace is reused across every query of a family, so the suite
// also proves that epoch-reset state never leaks between executions.

type diffGraph struct {
	name string
	g    *graph.Graph
	// starts are representative query origins (hubs and leaves).
	starts []graph.VertexID
}

func diffGraphs(t *testing.T) []diffGraph {
	t.Helper()
	rnd, err := graphgen.Random(graphgen.RandomConfig{
		NumVertices: 400, NumEdges: 1600, Kind: graph.Undirected, Seed: 11, VertexMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 600, NumEdges: 3000, Exponent: 2.3,
		Kind: graph.Undirected, Seed: 12, VertexMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	bip, err := graphgen.Purchases(graphgen.PurchaseConfig{
		NumCustomers: 300, NumProducts: 120,
		PurchasesPerCustomerMean: 6, PopularityExponent: 2.4, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return []diffGraph{
		{"random", rnd, []graph.VertexID{0, 7, 399}},
		{"powerlaw", pl, hubAndLeaf(pl)},
		{"bipartite", bip.Graph, []graph.VertexID{
			bip.ProductVertex(0), bip.ProductVertex(5), bip.CustomerVertex(3),
		}},
	}
}

// hubAndLeaf picks the highest-degree vertex, a low-degree vertex, and
// vertex 0 — exercising both hub explosion and sparse neighborhoods.
func hubAndLeaf(g *graph.Graph) []graph.VertexID {
	hub, leaf := graph.VertexID(0), graph.VertexID(0)
	for v := 0; v < g.NumVertices(); v++ {
		id := graph.VertexID(v)
		if g.Degree(id) > g.Degree(hub) {
			hub = id
		}
		if g.Degree(id) < g.Degree(leaf) {
			leaf = id
		}
	}
	return []graph.VertexID{hub, leaf, 0}
}

// diffQueries builds the query battery for one graph: plain, predicate
// and MaxVisits variants of every op.
func diffQueries(g *graph.Graph, starts []graph.VertexID) []Query {
	vPred := func(p graph.Properties) bool { return p["uid"].Int64()%3 != 0 }
	ePred := func(p graph.Properties) bool { return p["retweet_ts"].Int64()%2 == 0 }
	var qs []Query
	for i, s := range starts {
		target := starts[(i+1)%len(starts)]
		qs = append(qs,
			Query{Op: OpBFS, Start: s, Depth: 3},
			Query{Op: OpBFS, Start: s, Depth: 4, MaxVisits: 25},
			Query{Op: OpBFS, Start: s, Depth: 3, VertexPred: vPred, EdgePred: ePred},
			Query{Op: OpSSSP, Start: s, Target: target, Depth: 5},
			Query{Op: OpSSSP, Start: s, Target: target, Depth: 6, MaxVisits: 40},
			Query{Op: OpSSSP, Start: s, Target: target, Depth: 4, EdgePred: ePred},
			Query{Op: OpCollab, Start: s, SimilarityThreshold: 0.2},
			Query{Op: OpCollab, Start: s, SimilarityThreshold: 0},
			Query{Op: OpRWR, Start: s, Steps: 400, RestartProb: 0.15, TopK: 10, Seed: uint64(100 + i)},
			Query{Op: OpRWR, Start: s, Steps: 250, RestartProb: 0, TopK: 5, Seed: uint64(200 + i)},
		)
	}
	return qs
}

// Predicates read metadata only the social graphs carry; on the
// bipartite purchase graph they would dereference missing keys the
// same way in both kernels, which is fine, but skip the noise.
func skipPredOnBipartite(name string, q Query) bool {
	return name == "bipartite" && (q.VertexPred != nil || q.EdgePred != nil)
}

func assertSameExecution(t *testing.T, label string, g *graph.Graph, q Query, ws *Workspace) {
	t.Helper()
	refRes, refTr, refErr := ExecuteReference(g, q)
	wsRes, wsTr, wsErr := ExecuteIn(ws, g, q)
	if (refErr == nil) != (wsErr == nil) {
		t.Fatalf("%s: error mismatch: ref=%v ws=%v", label, refErr, wsErr)
	}
	if refErr != nil {
		return
	}
	if !reflect.DeepEqual(refRes, wsRes) {
		t.Fatalf("%s: Result mismatch:\nref: %+v\nws:  %+v", label, refRes, wsRes)
	}
	if !accessesEqual(refTr.Accesses, wsTr.Accesses) {
		t.Fatalf("%s: Trace.Accesses diverge (ref %d entries, ws %d)",
			label, len(refTr.Accesses), len(wsTr.Accesses))
	}
	if !touchedEqual(refTr.Touched, wsTr.Touched) {
		t.Fatalf("%s: Trace.Touched diverge (ref %d, ws %d)",
			label, len(refTr.Touched), len(wsTr.Touched))
	}
}

func accessesEqual(a, b []Access) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func touchedEqual(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWorkspaceKernelsMatchReference(t *testing.T) {
	for _, dg := range diffGraphs(t) {
		dg := dg
		t.Run(dg.name, func(t *testing.T) {
			ws := NewWorkspace(dg.g.NumVertices())
			for qi, q := range diffQueries(dg.g, dg.starts) {
				if skipPredOnBipartite(dg.name, q) {
					continue
				}
				label := fmt.Sprintf("q%d(%s start=%d)", qi, q.Op, q.Start)
				assertSameExecution(t, label, dg.g, q, ws)
			}
		})
	}
}

// TestWorkspaceSharedScratchMatchesReference interleaves two
// Workspaces over one shared Scratch — the simulator's configuration —
// and checks each still reproduces the reference exactly.
func TestWorkspaceSharedScratchMatchesReference(t *testing.T) {
	dgs := diffGraphs(t)
	dg := dgs[1] // power-law: the roughest degree distribution
	sc := NewScratch(dg.g.NumVertices())
	wss := []*Workspace{NewWorkspaceWithScratch(sc), NewWorkspaceWithScratch(sc)}
	for qi, q := range diffQueries(dg.g, dg.starts) {
		if skipPredOnBipartite(dg.name, q) {
			continue
		}
		label := fmt.Sprintf("q%d(%s start=%d)", qi, q.Op, q.Start)
		assertSameExecution(t, label, dg.g, q, wss[qi%2])
	}
}

// TestOneShotWrappersMatchReference pins the package-level entry
// points (fresh Workspace per call) the executors' callers still use.
func TestOneShotWrappersMatchReference(t *testing.T) {
	dg := diffGraphs(t)[0]
	for qi, q := range diffQueries(dg.g, dg.starts) {
		if skipPredOnBipartite(dg.name, q) {
			continue
		}
		refRes, refTr, refErr := ExecuteReference(dg.g, q)
		res, tr, err := Execute(dg.g, q)
		if (refErr == nil) != (err == nil) {
			t.Fatalf("q%d: error mismatch: ref=%v got=%v", qi, refErr, err)
		}
		if refErr != nil {
			continue
		}
		if !reflect.DeepEqual(refRes, res) {
			t.Fatalf("q%d: Result mismatch:\nref: %+v\ngot: %+v", qi, refRes, res)
		}
		if !accessesEqual(refTr.Accesses, tr.Accesses) || !touchedEqual(refTr.Touched, tr.Touched) {
			t.Fatalf("q%d: trace mismatch", qi)
		}
	}
}

// TestPoolConcurrentCheckout hammers a Pool from many goroutines (run
// under -race in CI): every borrowed Workspace must reproduce the
// reference result regardless of which executions it previously ran.
func TestPoolConcurrentCheckout(t *testing.T) {
	dg := diffGraphs(t)[1]
	queries := diffQueries(dg.g, dg.starts)
	pool := NewPool(dg.g.NumVertices())

	// Precompute expected outputs once, serially.
	type expectation struct {
		res Result
		tr  Trace
	}
	want := make([]expectation, len(queries))
	for i, q := range queries {
		res, tr, err := ExecuteReference(dg.g, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = expectation{res, *tr}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for i := range queries {
					qi := (i + w) % len(queries)
					ws := pool.Get()
					res, tr, err := ExecuteIn(ws, dg.g, queries[qi])
					if err != nil {
						pool.Put(ws)
						errs <- err
						return
					}
					ok := reflect.DeepEqual(want[qi].res, res.Clone()) &&
						accessesEqual(want[qi].tr.Accesses, tr.Accesses) &&
						touchedEqual(want[qi].tr.Touched, tr.Touched)
					pool.Put(ws)
					if !ok {
						errs <- fmt.Errorf("worker %d rep %d q%d: output diverged from reference", w, rep, qi)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestResultClone verifies Clone detaches the slices from workspace
// reuse.
func TestResultClone(t *testing.T) {
	dg := diffGraphs(t)[2] // bipartite: produces recommendations
	ws := NewWorkspace(dg.g.NumVertices())
	q := Query{Op: OpCollab, Start: dg.starts[0], SimilarityThreshold: 0}
	res, _, err := ExecuteIn(ws, dg.g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recommendations) == 0 {
		t.Skip("fixture produced no recommendations; pick a busier product")
	}
	clone := res.Clone()
	if !reflect.DeepEqual(clone, res) {
		t.Fatal("clone differs from original before reuse")
	}
	// Clobber the workspace with a different execution; the clone must
	// be unaffected.
	if _, _, err := ExecuteIn(ws, dg.g, Query{Op: OpCollab, Start: dg.starts[1], SimilarityThreshold: 0}); err != nil {
		t.Fatal(err)
	}
	want, _, err := ExecuteReference(dg.g, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clone, want) {
		t.Fatal("clone mutated by workspace reuse")
	}
}
