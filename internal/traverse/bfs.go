package traverse

import (
	"math"

	"subtrav/internal/graph"
)

// BFS runs a bounded-depth breadth-first search from q.Start,
// expanding at most q.Depth hops and honoring vertex/edge predicates:
// a vertex failing VertexPred is touched (its record must be loaded to
// evaluate θ) but not expanded; an edge failing EdgePred is scanned
// (inline in the source record, CPU only) but not followed.
//
// This one-shot form allocates a private Workspace; executors on the
// hot path reuse one through Workspace.BFS / ExecuteIn instead.
func BFS(g *graph.Graph, q Query) (Result, *Trace) {
	return NewWorkspace(g.NumVertices()).BFS(g, q)
}

// frontierEdges sums the out-degrees of a frontier — Beamer's m_f, the
// work a push wave is about to do.
//
//vet:hotpath
func frontierEdges(g *graph.Graph, frontier []graph.VertexID) int64 {
	var sum int64
	for _, v := range frontier {
		sum += int64(g.Degree(v))
	}
	return sum
}

// BFS is the zero-steady-state-allocation direction-optimizing kernel.
// It runs level-synchronously — the exact pop order of a FIFO queue —
// with each level split into a process pass (touch every frontier
// vertex, apply VertexPred / MaxVisits / depth bound, charge scans)
// and an expansion pass that builds the next frontier either top-down
// (bfsPush) or bottom-up (bfsPull) per the Direction config. Both
// expansions produce the identical frontier, so Result and Trace are
// pinned bit-for-bit against BFSReference in every mode.
//
//vet:hotpath
func (ws *Workspace) BFS(g *graph.Graph, q Query) (Result, *Trace) {
	ws.begin(g)
	dir := q.Dir.withDefaults()
	enqueued := &ws.scratch.mapA // membership only
	cur := append(ws.frontA[:0], q.Start)
	next := ws.frontB[:0]
	enqueued.Put(q.Start, 0)
	visited := 0
	// Beamer's m_u: out-edge slots of not-yet-enqueued vertices,
	// maintained incrementally as vertices are enqueued.
	unexplored := g.NumSlots() - int64(g.Degree(q.Start))
	pulling := false

	for depth := 0; len(cur) > 0; depth++ {
		// Process pass. Touches happen in pop order; a vertex failing
		// VertexPred is not expanded, the visit cap drops the rest of
		// the traversal, and the depth bound stops expansion — exactly
		// the per-pop sequence of the single-queue kernel.
		exp := ws.expanders[:0]
		var mF int64
		capped := false
		for _, v := range cur {
			acc := ws.touch(g, v)
			if q.VertexPred != nil && !q.VertexPred(g.VertexProps(v)) {
				continue
			}
			visited++
			if q.MaxVisits > 0 && visited >= q.MaxVisits {
				capped = true
				break
			}
			if depth >= q.Depth {
				continue
			}
			lo, hi := g.EdgeSlots(v)
			ws.trace.chargeScan(acc, int(hi-lo))
			exp = append(exp, v)
			mF += hi - lo
		}
		ws.expanders = exp
		if capped || len(exp) == 0 {
			break
		}

		// Expansion pass: push and pull build the identical next
		// frontier; only the work done differs.
		pull := dir.next(pulling, mF, unexplored, len(exp), g.NumVertices())
		ws.dirStats.record(pull, pulling, depth == 0)
		pulling = pull
		next = next[:0]
		if pull {
			next = ws.bfsPull(g, &q, exp, next, enqueued, &unexplored)
		} else {
			next = ws.bfsPush(g, &q, exp, next, enqueued, &unexplored)
		}
		cur, next = next, cur
	}
	// Stash the (possibly grown) buffers for the next execution.
	ws.frontA, ws.frontB = cur[:0], next[:0]
	return Result{Visited: visited}, &ws.trace
}

// bfsPush is the top-down expansion: scan each expanding vertex's
// out-edges in order and enqueue unseen targets as discovered.
//
//vet:hotpath
func (ws *Workspace) bfsPush(g *graph.Graph, q *Query, exp, next []graph.VertexID,
	enqueued *graph.VertexMap, unexplored *int64) []graph.VertexID {
	for _, v := range exp {
		lo, hi := g.EdgeSlots(v)
		for s := lo; s < hi; s++ {
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
				continue
			}
			u := g.TargetAt(s)
			if enqueued.Contains(u) {
				continue
			}
			enqueued.Put(u, 0)
			*unexplored -= int64(g.Degree(u))
			next = append(next, u)
		}
	}
	return next
}

// bfsPull is the bottom-up expansion: scan every vertex not yet
// enqueued and probe its in-edges for an expanding parent, keeping the
// minimum (frontier position << 32 | forward slot) key — the rank at
// which the push expansion would have discovered it. Ordering the
// discoveries by key (orderPullCands) then yields bfsPush's output
// order exactly. The probe cannot early-exit on the first parent (the
// classic bottom-up shortcut) precisely because the *minimum* key is
// needed; the win is that the in-edges of the shrinking unvisited set
// are far fewer than the out-edges of a dense frontier.
//
// Pull probing walks the in-CSR index, which is in-memory adjacency
// metadata like the forward offsets — not a record load — so the
// trace (all charged in the process pass) is unchanged.
//
//vet:hotpath
func (ws *Workspace) bfsPull(g *graph.Graph, q *Query, exp, next []graph.VertexID,
	enqueued *graph.VertexMap, unexplored *int64) []graph.VertexID {
	in := g.In()
	pos := &ws.scratch.posMap
	pos.Clear()
	for i, v := range exp {
		pos.Put(v, int32(i))
	}
	cands := ws.cands[:0]
	n := graph.VertexID(g.NumVertices())
	for u := graph.VertexID(0); u < n; u++ {
		if enqueued.Contains(u) {
			continue
		}
		lo, hi := in.Edges(u)
		best := uint64(math.MaxUint64)
		for p := lo; p < hi; p++ {
			i, ok := pos.Get(in.Sources[p])
			if !ok {
				continue
			}
			key := uint64(i)<<32 | uint64(in.FwdSlot[p])
			if key >= best {
				continue
			}
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(int64(in.FwdSlot[p])))) {
				continue
			}
			best = key
		}
		if best != math.MaxUint64 {
			cands = append(cands, pullCand{key: best, u: u})
		}
	}
	ws.cands = cands
	for _, c := range orderPullCands(cands, len(exp), &ws.candsOut, &ws.candCounts) {
		enqueued.Put(c.u, 0)
		*unexplored -= int64(g.Degree(c.u))
		next = append(next, c.u)
	}
	return next
}

// BoundedSSSP finds whether a path of length <= q.Depth connects
// q.Start and q.Target by running two breadth-first frontiers, one
// from each endpoint, each at most ceil(Depth/2) hops, until they
// meet (Section II, example 1). PathLen is the exact shortest length
// when Found and the search ran to completion.
//
// When q.MaxVisits > 0 the search gives up expanding once that many
// vertices are labeled (throughput services bound hub explosions this
// way); a capped search is best-effort — Found may be false for
// connected pairs, and PathLen may exceed the true shortest length.
func BoundedSSSP(g *graph.Graph, q Query) (Result, *Trace) {
	return NewWorkspace(g.NumVertices()).BoundedSSSP(g, q)
}

// ssspState threads the shared search counters through ssspExpand.
type ssspState struct {
	visited int
	capped  bool // MaxVisits reached: the search gives up expanding
	best    int
}

// ssspExpand advances one frontier a hop top-down, writing the next
// frontier into next (reused storage) — the method form of the
// reference kernel's expand closure, allocation-free at steady state.
//
//vet:hotpath
func (ws *Workspace) ssspExpand(g *graph.Graph, q *Query, st *ssspState,
	frontier, next []graph.VertexID, mine, accIdx, other *graph.VertexMap, depth int, unexplored *int64) []graph.VertexID {
	for _, v := range frontier {
		if st.capped {
			break
		}
		lo, hi := g.EdgeSlots(v)
		vAcc, _ := accIdx.Get(v)
		ws.trace.chargeScan(int(vAcc), int(hi-lo))
		for s := lo; s < hi; s++ {
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
				continue
			}
			u := g.TargetAt(s)
			if mine.Contains(u) {
				continue
			}
			mine.Put(u, int32(depth+1))
			accIdx.Put(u, int32(ws.touch(g, u)))
			st.visited++
			*unexplored -= int64(g.Degree(u))
			if d, ok := other.Get(u); ok {
				total := depth + 1 + int(d)
				if st.best < 0 || total < st.best {
					st.best = total
				}
				continue
			}
			if q.MaxVisits > 0 && st.visited >= q.MaxVisits {
				st.capped = true
				break
			}
			next = append(next, u)
		}
	}
	return next
}

// ssspExpandPull advances one frontier a hop bottom-up. A discovery
// pass finds, for every vertex this side has not labeled, the minimum
// (frontier position, forward slot) qualifying in-edge from the
// frontier; ordering those keys recovers the top-down discovery order.
// The emission pass then replays ssspExpand exactly — per frontier
// vertex in order: charge its scan, label its discoveries in slot
// order, meet-check against the other side, honor the visit cap —
// so the Trace (touches interleave with labeling here, unlike BFS)
// and every counter are bit-for-bit identical. The other side's
// labels never change during one side's expansion, so the
// precomputed discoveries cannot go stale.
//
//vet:hotpath
func (ws *Workspace) ssspExpandPull(g *graph.Graph, q *Query, st *ssspState,
	frontier, next []graph.VertexID, mine, accIdx, other *graph.VertexMap, depth int, unexplored *int64) []graph.VertexID {
	in := g.In()
	pos := &ws.scratch.posMap
	pos.Clear()
	for i, v := range frontier {
		pos.Put(v, int32(i))
	}
	cands := ws.cands[:0]
	n := graph.VertexID(g.NumVertices())
	for u := graph.VertexID(0); u < n; u++ {
		if mine.Contains(u) {
			continue
		}
		lo, hi := in.Edges(u)
		best := uint64(math.MaxUint64)
		for p := lo; p < hi; p++ {
			i, ok := pos.Get(in.Sources[p])
			if !ok {
				continue
			}
			key := uint64(i)<<32 | uint64(in.FwdSlot[p])
			if key >= best {
				continue
			}
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(int64(in.FwdSlot[p])))) {
				continue
			}
			best = key
		}
		if best != math.MaxUint64 {
			cands = append(cands, pullCand{key: best, u: u})
		}
	}
	ws.cands = cands
	cands = orderPullCands(cands, len(frontier), &ws.candsOut, &ws.candCounts)

	ci := 0
	for i, v := range frontier {
		if st.capped {
			break
		}
		lo, hi := g.EdgeSlots(v)
		vAcc, _ := accIdx.Get(v)
		ws.trace.chargeScan(int(vAcc), int(hi-lo))
		for ci < len(cands) && int(cands[ci].key>>32) == i {
			u := cands[ci].u
			ci++
			mine.Put(u, int32(depth+1))
			accIdx.Put(u, int32(ws.touch(g, u)))
			st.visited++
			*unexplored -= int64(g.Degree(u))
			if d, ok := other.Get(u); ok {
				total := depth + 1 + int(d)
				if st.best < 0 || total < st.best {
					st.best = total
				}
				continue
			}
			if q.MaxVisits > 0 && st.visited >= q.MaxVisits {
				st.capped = true
				break
			}
			next = append(next, u)
		}
	}
	return next
}

// BoundedSSSP is the dense-scratch direction-optimizing kernel:
// per-side labels and access indices live in epoch-stamped maps,
// frontiers in double-buffered reusable slices, and each side picks
// push or pull per wave independently. Pinned bit-for-bit against
// BoundedSSSPReference in every mode.
//
//vet:hotpath
func (ws *Workspace) BoundedSSSP(g *graph.Graph, q Query) (Result, *Trace) {
	ws.begin(g)

	if q.Start == q.Target {
		ws.touch(g, q.Start)
		return Result{Visited: 1, Found: true, PathLen: 0}, &ws.trace
	}

	sc := ws.scratch
	dir := q.Dir.withDefaults()
	distA, distB := &sc.mapA, &sc.mapB
	accA, accB := &sc.accA, &sc.accB
	distA.Put(q.Start, 0)
	distB.Put(q.Target, 0)
	frontierA := append(ws.frontA[:0], q.Start)
	frontierB := append(ws.frontB[:0], q.Target)
	nextA, nextB := ws.nextA, ws.nextB
	accA.Put(q.Start, int32(ws.touch(g, q.Start)))
	accB.Put(q.Target, int32(ws.touch(g, q.Target)))
	st := ssspState{visited: 2, best: -1}
	// Per-side unexplored-edge counters and direction state: each side
	// explores its own label set, so the Beamer accounting is per side.
	unexA := g.NumSlots() - int64(g.Degree(q.Start))
	unexB := g.NumSlots() - int64(g.Degree(q.Target))
	pullA, pullB := false, false

	limitA := (q.Depth + 1) / 2 // ceil(δ/2)
	limitB := q.Depth / 2       // floor(δ/2); combined = δ
	depthA, depthB := 0, 0

	for !st.capped && ((depthA < limitA && len(frontierA) > 0) || (depthB < limitB && len(frontierB) > 0)) {
		// Alternate sides, smaller frontier first, the usual
		// bidirectional heuristic.
		expandA := depthA < limitA && len(frontierA) > 0 &&
			(depthB >= limitB || len(frontierB) == 0 || len(frontierA) <= len(frontierB))
		if expandA {
			var mF int64
			if dir.Mode == DirAuto && !pullA {
				mF = frontierEdges(g, frontierA)
			}
			pull := dir.next(pullA, mF, unexA, len(frontierA), g.NumVertices())
			ws.dirStats.record(pull, pullA, depthA == 0)
			pullA = pull
			var out []graph.VertexID
			if pull {
				out = ws.ssspExpandPull(g, &q, &st, frontierA, nextA[:0], distA, accA, distB, depthA, &unexA)
			} else {
				out = ws.ssspExpand(g, &q, &st, frontierA, nextA[:0], distA, accA, distB, depthA, &unexA)
			}
			frontierA, nextA = out, frontierA
			depthA++
		} else {
			var mF int64
			if dir.Mode == DirAuto && !pullB {
				mF = frontierEdges(g, frontierB)
			}
			pull := dir.next(pullB, mF, unexB, len(frontierB), g.NumVertices())
			ws.dirStats.record(pull, pullB, depthB == 0)
			pullB = pull
			var out []graph.VertexID
			if pull {
				out = ws.ssspExpandPull(g, &q, &st, frontierB, nextB[:0], distB, accB, distA, depthB, &unexB)
			} else {
				out = ws.ssspExpand(g, &q, &st, frontierB, nextB[:0], distB, accB, distA, depthB, &unexB)
			}
			frontierB, nextB = out, frontierB
			depthB++
		}
		if st.best >= 0 && st.best <= depthA+depthB {
			// No shorter meeting can appear once both processed
			// depths cover the best found length.
			break
		}
	}
	// Stash the (possibly grown) buffers for the next execution.
	ws.frontA, ws.nextA = frontierA[:0], nextA[:0]
	ws.frontB, ws.nextB = frontierB[:0], nextB[:0]

	if st.best >= 0 && st.best <= q.Depth {
		return Result{Visited: st.visited, Found: true, PathLen: st.best}, &ws.trace
	}
	return Result{Visited: st.visited, Found: false}, &ws.trace
}
