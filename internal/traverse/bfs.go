package traverse

import "subtrav/internal/graph"

// BFS runs a bounded-depth breadth-first search from q.Start,
// expanding at most q.Depth hops and honoring vertex/edge predicates:
// a vertex failing VertexPred is touched (its record must be loaded to
// evaluate θ) but not expanded; an edge failing EdgePred is scanned
// (inline in the source record, CPU only) but not followed.
func BFS(g *graph.Graph, q Query) (Result, *Trace) {
	trace := &Trace{}
	seen := make(map[graph.VertexID]bool)
	type frontierItem struct {
		v     graph.VertexID
		depth int
	}
	queue := []frontierItem{{q.Start, 0}}
	enqueued := map[graph.VertexID]bool{q.Start: true}
	visited := 0

	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		v := item.v

		acc := trace.touchVertex(g, v, seen)
		if q.VertexPred != nil && !q.VertexPred(g.VertexProps(v)) {
			continue
		}
		visited++
		if q.MaxVisits > 0 && visited >= q.MaxVisits {
			break
		}
		if item.depth >= q.Depth {
			continue
		}
		lo, hi := g.EdgeSlots(v)
		trace.chargeScan(acc, int(hi-lo))
		for s := lo; s < hi; s++ {
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
				continue
			}
			u := g.TargetAt(s)
			if enqueued[u] {
				continue
			}
			enqueued[u] = true
			queue = append(queue, frontierItem{u, item.depth + 1})
		}
	}
	return Result{Visited: visited}, trace
}

// BoundedSSSP finds whether a path of length <= q.Depth connects
// q.Start and q.Target by running two breadth-first frontiers, one
// from each endpoint, each at most ceil(Depth/2) hops, until they
// meet (Section II, example 1). PathLen is the exact shortest length
// when Found and the search ran to completion.
//
// When q.MaxVisits > 0 the search gives up expanding once that many
// vertices are labeled (throughput services bound hub explosions this
// way); a capped search is best-effort — Found may be false for
// connected pairs, and PathLen may exceed the true shortest length.
func BoundedSSSP(g *graph.Graph, q Query) (Result, *Trace) {
	trace := &Trace{}
	seen := make(map[graph.VertexID]bool)

	if q.Start == q.Target {
		trace.touchVertex(g, q.Start, seen)
		return Result{Visited: 1, Found: true, PathLen: 0}, trace
	}

	distA := map[graph.VertexID]int{q.Start: 0}
	distB := map[graph.VertexID]int{q.Target: 0}
	frontierA := []graph.VertexID{q.Start}
	frontierB := []graph.VertexID{q.Target}
	accA := map[graph.VertexID]int{q.Start: trace.touchVertex(g, q.Start, seen)}
	accB := map[graph.VertexID]int{q.Target: trace.touchVertex(g, q.Target, seen)}
	visited := 2
	capped := false // MaxVisits reached: the search gives up expanding

	limitA := (q.Depth + 1) / 2 // ceil(δ/2)
	limitB := q.Depth / 2       // floor(δ/2); combined = δ
	depthA, depthB := 0, 0
	best := -1

	expand := func(frontier []graph.VertexID, mine, other map[graph.VertexID]int, accIdx map[graph.VertexID]int, depth int) []graph.VertexID {
		var next []graph.VertexID
		for _, v := range frontier {
			if capped {
				break
			}
			lo, hi := g.EdgeSlots(v)
			trace.chargeScan(accIdx[v], int(hi-lo))
			for s := lo; s < hi; s++ {
				if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
					continue
				}
				u := g.TargetAt(s)
				if _, ok := mine[u]; ok {
					continue
				}
				mine[u] = depth + 1
				accIdx[u] = trace.touchVertex(g, u, seen)
				visited++
				if d, ok := other[u]; ok {
					total := depth + 1 + d
					if best < 0 || total < best {
						best = total
					}
					continue
				}
				if q.MaxVisits > 0 && visited >= q.MaxVisits {
					capped = true
					break
				}
				next = append(next, u)
			}
		}
		return next
	}

	for !capped && ((depthA < limitA && len(frontierA) > 0) || (depthB < limitB && len(frontierB) > 0)) {
		// Alternate sides, smaller frontier first, the usual
		// bidirectional heuristic.
		expandA := depthA < limitA && len(frontierA) > 0 &&
			(depthB >= limitB || len(frontierB) == 0 || len(frontierA) <= len(frontierB))
		if expandA {
			frontierA = expand(frontierA, distA, distB, accA, depthA)
			depthA++
		} else {
			frontierB = expand(frontierB, distB, distA, accB, depthB)
			depthB++
		}
		if best >= 0 && best <= depthA+depthB {
			// No shorter meeting can appear once both processed
			// depths cover the best found length.
			break
		}
	}
	if best >= 0 && best <= q.Depth {
		return Result{Visited: visited, Found: true, PathLen: best}, trace
	}
	return Result{Visited: visited, Found: false}, trace
}
