package traverse

import "subtrav/internal/graph"

// BFS runs a bounded-depth breadth-first search from q.Start,
// expanding at most q.Depth hops and honoring vertex/edge predicates:
// a vertex failing VertexPred is touched (its record must be loaded to
// evaluate θ) but not expanded; an edge failing EdgePred is scanned
// (inline in the source record, CPU only) but not followed.
//
// This one-shot form allocates a private Workspace; executors on the
// hot path reuse one through Workspace.BFS / ExecuteIn instead.
func BFS(g *graph.Graph, q Query) (Result, *Trace) {
	return NewWorkspace(g.NumVertices()).BFS(g, q)
}

// BFS is the zero-steady-state-allocation kernel: the enqueued set is
// an epoch-stamped dense map, the frontier a reusable ring buffer, the
// trace pooled. Pinned bit-for-bit against BFSReference.
//
//vet:hotpath
func (ws *Workspace) BFS(g *graph.Graph, q Query) (Result, *Trace) {
	ws.begin(g)
	enqueued := &ws.scratch.mapA // membership only
	ws.ringPush(q.Start, 0)
	enqueued.Put(q.Start, 0)
	visited := 0

	for ws.ringLen > 0 {
		item := ws.ringPop()
		v := item.v

		acc := ws.touch(g, v)
		if q.VertexPred != nil && !q.VertexPred(g.VertexProps(v)) {
			continue
		}
		visited++
		if q.MaxVisits > 0 && visited >= q.MaxVisits {
			break
		}
		if int(item.depth) >= q.Depth {
			continue
		}
		lo, hi := g.EdgeSlots(v)
		ws.trace.chargeScan(acc, int(hi-lo))
		for s := lo; s < hi; s++ {
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
				continue
			}
			u := g.TargetAt(s)
			if enqueued.Contains(u) {
				continue
			}
			enqueued.Put(u, 0)
			ws.ringPush(u, item.depth+1)
		}
	}
	return Result{Visited: visited}, &ws.trace
}

// BoundedSSSP finds whether a path of length <= q.Depth connects
// q.Start and q.Target by running two breadth-first frontiers, one
// from each endpoint, each at most ceil(Depth/2) hops, until they
// meet (Section II, example 1). PathLen is the exact shortest length
// when Found and the search ran to completion.
//
// When q.MaxVisits > 0 the search gives up expanding once that many
// vertices are labeled (throughput services bound hub explosions this
// way); a capped search is best-effort — Found may be false for
// connected pairs, and PathLen may exceed the true shortest length.
func BoundedSSSP(g *graph.Graph, q Query) (Result, *Trace) {
	return NewWorkspace(g.NumVertices()).BoundedSSSP(g, q)
}

// ssspState threads the shared search counters through ssspExpand.
type ssspState struct {
	visited int
	capped  bool // MaxVisits reached: the search gives up expanding
	best    int
}

// ssspExpand advances one frontier a hop, writing the next frontier
// into next (reused storage) — the method form of the reference
// kernel's expand closure, allocation-free at steady state.
//
//vet:hotpath
func (ws *Workspace) ssspExpand(g *graph.Graph, q *Query, st *ssspState,
	frontier, next []graph.VertexID, mine, accIdx, other *graph.VertexMap, depth int) []graph.VertexID {
	for _, v := range frontier {
		if st.capped {
			break
		}
		lo, hi := g.EdgeSlots(v)
		vAcc, _ := accIdx.Get(v)
		ws.trace.chargeScan(int(vAcc), int(hi-lo))
		for s := lo; s < hi; s++ {
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
				continue
			}
			u := g.TargetAt(s)
			if mine.Contains(u) {
				continue
			}
			mine.Put(u, int32(depth+1))
			accIdx.Put(u, int32(ws.touch(g, u)))
			st.visited++
			if d, ok := other.Get(u); ok {
				total := depth + 1 + int(d)
				if st.best < 0 || total < st.best {
					st.best = total
				}
				continue
			}
			if q.MaxVisits > 0 && st.visited >= q.MaxVisits {
				st.capped = true
				break
			}
			next = append(next, u)
		}
	}
	return next
}

// BoundedSSSP is the dense-scratch kernel: per-side labels and access
// indices live in epoch-stamped maps, frontiers in double-buffered
// reusable slices. Pinned bit-for-bit against BoundedSSSPReference.
//
//vet:hotpath
func (ws *Workspace) BoundedSSSP(g *graph.Graph, q Query) (Result, *Trace) {
	ws.begin(g)

	if q.Start == q.Target {
		ws.touch(g, q.Start)
		return Result{Visited: 1, Found: true, PathLen: 0}, &ws.trace
	}

	sc := ws.scratch
	distA, distB := &sc.mapA, &sc.mapB
	accA, accB := &sc.accA, &sc.accB
	distA.Put(q.Start, 0)
	distB.Put(q.Target, 0)
	frontierA := append(ws.frontA[:0], q.Start)
	frontierB := append(ws.frontB[:0], q.Target)
	nextA, nextB := ws.nextA, ws.nextB
	accA.Put(q.Start, int32(ws.touch(g, q.Start)))
	accB.Put(q.Target, int32(ws.touch(g, q.Target)))
	st := ssspState{visited: 2, best: -1}

	limitA := (q.Depth + 1) / 2 // ceil(δ/2)
	limitB := q.Depth / 2       // floor(δ/2); combined = δ
	depthA, depthB := 0, 0

	for !st.capped && ((depthA < limitA && len(frontierA) > 0) || (depthB < limitB && len(frontierB) > 0)) {
		// Alternate sides, smaller frontier first, the usual
		// bidirectional heuristic.
		expandA := depthA < limitA && len(frontierA) > 0 &&
			(depthB >= limitB || len(frontierB) == 0 || len(frontierA) <= len(frontierB))
		if expandA {
			out := ws.ssspExpand(g, &q, &st, frontierA, nextA[:0], distA, accA, distB, depthA)
			frontierA, nextA = out, frontierA
			depthA++
		} else {
			out := ws.ssspExpand(g, &q, &st, frontierB, nextB[:0], distB, accB, distA, depthB)
			frontierB, nextB = out, frontierB
			depthB++
		}
		if st.best >= 0 && st.best <= depthA+depthB {
			// No shorter meeting can appear once both processed
			// depths cover the best found length.
			break
		}
	}
	// Stash the (possibly grown) buffers for the next execution.
	ws.frontA, ws.nextA = frontierA[:0], nextA[:0]
	ws.frontB, ws.nextB = frontierB[:0], nextB[:0]

	if st.best >= 0 && st.best <= q.Depth {
		return Result{Visited: st.visited, Found: true, PathLen: st.best}, &ws.trace
	}
	return Result{Visited: st.visited, Found: false}, &ws.trace
}
