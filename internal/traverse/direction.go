package traverse

import (
	"fmt"

	"subtrav/internal/graph"
)

// Direction-optimizing traversal (Beamer et al., "Direction-Optimizing
// Breadth-First Search"): when a wave's frontier is dense, expanding it
// top-down (push) scans every edge out of an enormous frontier, most of
// which land on already-visited vertices. Flipping to a bottom-up
// (pull) sweep — scan the *unvisited* vertices and probe their in-edges
// for a frontier parent — does work proportional to the shrinking
// unvisited set instead.
//
// The repo-wide invariant that traversal output depends only on (graph,
// query) is preserved exactly: a pull wave reconstructs the push wave's
// discovery order by ranking each newly discovered vertex with the
// (frontier position, forward slot) key of its earliest qualifying
// in-edge, so Results and Traces are bit-for-bit identical in every
// mode (the differential wall enforces this). Direction choice is
// visible only through DirStats and the executor metrics.

// Direction selects how BFS/SSSP waves expand their frontier.
type Direction uint8

const (
	// DirAuto switches per wave with the Beamer alpha/beta heuristic.
	DirAuto Direction = iota
	// DirForcePush always expands top-down (the classic sparse path).
	DirForcePush
	// DirForcePull always expands bottom-up; for testing and ablation.
	DirForcePull
)

func (d Direction) String() string {
	switch d {
	case DirAuto:
		return "auto"
	case DirForcePush:
		return "push"
	case DirForcePull:
		return "pull"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Default heuristic thresholds. Alpha compares frontier out-edges
// against the pull wave's true cost (unexplored edges + the |V| sweep)
// for the push→pull flip; beta compares frontier size against |V| for
// the flip back once the frontier thins.
//
// Beamer's classic alpha of 14 assumes a bottom-up step that stops at
// the first frontier parent, making pull probes ~an order of magnitude
// cheaper than push scans. Our pull cannot early-exit — it must find
// the *minimum* (frontier position, slot) key to reconstruct the push
// discovery order — so a pull wave costs its full in-edge scan. The
// break-even is therefore at parity: flip only when the frontier's
// out-edges outnumber what the pull wave will actually probe.
const (
	DefaultAlpha = 1.0
	DefaultBeta  = 24.0
)

// DirectionConfig tunes push/pull switching. The zero value means
// DirAuto with the default thresholds, so existing queries get
// direction optimization without opting in.
type DirectionConfig struct {
	Mode Direction

	// Alpha tunes the push→pull switch: a push wave about to scan
	// frontierEdges out-edges flips to pull when frontierEdges*Alpha >
	// unexploredEdges + numVertices — the right side being the pull
	// wave's cost, an in-edge probe per unexplored slot plus the O(|V|)
	// sweep over the vertex range. 0 means DefaultAlpha.
	Alpha float64

	// Beta tunes the pull→push switch back: a pull wave reverts to push
	// when frontierLen*Beta < |V|. 0 means DefaultBeta.
	Beta float64
}

// withDefaults resolves zero thresholds to the Beamer defaults.
func (c DirectionConfig) withDefaults() DirectionConfig {
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Beta == 0 {
		c.Beta = DefaultBeta
	}
	return c
}

// Validate checks the config without running a query — executors
// validate their configured default direction at construction.
func (c DirectionConfig) Validate() error { return c.validate() }

func (c DirectionConfig) validate() error {
	if c.Mode > DirForcePull {
		return fmt.Errorf("traverse: unknown direction mode %d", c.Mode)
	}
	if c.Alpha < 0 || c.Beta < 0 {
		return fmt.Errorf("traverse: negative direction thresholds (alpha %g, beta %g)", c.Alpha, c.Beta)
	}
	return nil
}

// next decides the direction of the coming expansion wave given the
// previous wave's direction and the frontier/unexplored sizes. Called
// with resolved (non-zero) thresholds.
//
//vet:hotpath
func (c DirectionConfig) next(pulling bool, frontierEdges, unexploredEdges int64, frontierLen, numVertices int) bool {
	switch c.Mode {
	case DirForcePush:
		return false
	case DirForcePull:
		return true
	}
	if !pulling {
		return float64(frontierEdges)*c.Alpha > float64(unexploredEdges)+float64(numVertices)
	}
	return float64(frontierLen)*c.Beta >= float64(numVertices)
}

// pullCand is one bottom-up discovery: vertex u found via its minimum
// (frontier position << 32 | forward slot) key, the exact rank the push
// expansion would have discovered it at. Ordering candidates by key
// reconstructs the push frontier order bit-for-bit.
type pullCand struct {
	key uint64
	u   graph.VertexID
}

// orderPullCands arranges a pull wave's discoveries into ascending key
// order — push discovery order — without a comparison sort. Adjacency
// lists are target-sorted (see graph.Builder), so within one frontier
// position the candidates, generated in ascending vertex order, are
// already in ascending slot order; a stable counting scatter on the
// position half of the key therefore finishes the job in
// O(cands + frontier). The out/count buffers are caller-owned scratch,
// grown here and reused across waves.
//
//vet:hotpath
func orderPullCands(cands []pullCand, nFront int, outBuf *[]pullCand, countBuf *[]int32) []pullCand {
	if len(cands) < 2 {
		return cands
	}
	counts := *countBuf
	if cap(counts) < nFront {
		counts = make([]int32, nFront) //lint:allow allocfree amortized growth: buffer persists in the workspace, so steady state never re-allocates
	}
	counts = counts[:nFront]
	for i := range counts {
		counts[i] = 0
	}
	for _, c := range cands {
		counts[c.key>>32]++
	}
	var off int32
	for i, n := range counts {
		counts[i] = off
		off += n
	}
	out := *outBuf
	if cap(out) < len(cands) {
		out = make([]pullCand, len(cands)) //lint:allow allocfree amortized growth: buffer persists in the workspace, so steady state never re-allocates
	}
	out = out[:len(cands)]
	for _, c := range cands {
		i := c.key >> 32
		out[counts[i]] = c
		counts[i]++
	}
	*countBuf = counts
	*outBuf = out
	return out
}

// DirStats counts the direction decisions of one query execution:
// expansion waves run in each direction and the number of push↔pull
// transitions. Deliberately not part of Result or Trace — those are
// pinned bit-for-bit across modes — and surfaced through
// Workspace.DirStats / Batch.DirStats and the executor span detail.
type DirStats struct {
	PushWaves int
	PullWaves int
	Switches  int
}

// record accounts one expansion wave; a transition is counted against
// the same frontier's previous wave (first is true on a frontier's
// first expansion, which can't be a switch).
func (d *DirStats) record(pull, prevPull, first bool) {
	if pull {
		d.PullWaves++
	} else {
		d.PushWaves++
	}
	if !first && pull != prevPull {
		d.Switches++
	}
}
