package traverse

import (
	"fmt"
	"math"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

// The direction-mode differential suite extends the push-only wall:
// every push/pull mode — forced and heuristic, including thresholds
// tuned to oscillate — must reproduce the reference Result and Trace
// bit-for-bit on every graph family, predicate path, and MaxVisits
// cap, both single-source and through the lockstep Batch.

// dirModes is the mode battery: the two forced directions, the default
// Auto, and two skewed Auto configs — one that flips to pull almost
// immediately, one whose thresholds force push→pull→push oscillation.
func dirModes() []struct {
	name string
	cfg  DirectionConfig
} {
	return []struct {
		name string
		cfg  DirectionConfig
	}{
		{"push", DirectionConfig{Mode: DirForcePush}},
		{"pull", DirectionConfig{Mode: DirForcePull}},
		{"auto", DirectionConfig{Mode: DirAuto}},
		{"auto-eager", DirectionConfig{Mode: DirAuto, Alpha: 1e6, Beta: 1e-6}},
		{"auto-flappy", DirectionConfig{Mode: DirAuto, Alpha: 1e6, Beta: 1e6}},
	}
}

// dirQueries is the BFS/SSSP slice of the differential battery with a
// direction config applied.
func dirQueries(g *graph.Graph, starts []graph.VertexID, cfg DirectionConfig) []Query {
	var out []Query
	for _, q := range diffQueries(g, starts) {
		if q.Op != OpBFS && q.Op != OpSSSP {
			continue
		}
		q.Dir = cfg
		out = append(out, q)
	}
	return out
}

func TestDirectionModesMatchReference(t *testing.T) {
	for _, dg := range diffGraphs(t) {
		dg := dg
		t.Run(dg.name, func(t *testing.T) {
			ws := NewWorkspace(dg.g.NumVertices())
			for _, mode := range dirModes() {
				for qi, q := range dirQueries(dg.g, dg.starts, mode.cfg) {
					if skipPredOnBipartite(dg.name, q) {
						continue
					}
					label := fmt.Sprintf("%s/q%d(%s start=%d)", mode.name, qi, q.Op, q.Start)
					assertSameExecution(t, label, dg.g, q, ws)
				}
			}
		})
	}
}

func TestBatchDirectionModesMatchReference(t *testing.T) {
	for _, dg := range diffGraphs(t) {
		dg := dg
		t.Run(dg.name, func(t *testing.T) {
			b := NewBatch(dg.g.NumVertices())
			for _, mode := range dirModes() {
				var queries []Query
				for _, q := range dirQueries(dg.g, dg.starts, mode.cfg) {
					if skipPredOnBipartite(dg.name, q) {
						continue
					}
					queries = append(queries, q)
				}
				if len(queries) > MaxBatch {
					queries = queries[:MaxBatch]
				}
				assertBatchMatchesSingle(t, mode.name, b, dg.g, queries)
			}
		})
	}
}

// TestBatchMixedDirectionModes batches queries whose slots disagree on
// direction mode — each slot must still match its own single-source
// run.
func TestBatchMixedDirectionModes(t *testing.T) {
	dg := diffGraphs(t)[1] // power-law
	modes := dirModes()
	var queries []Query
	for i, q := range dirQueries(dg.g, dg.starts, DirectionConfig{}) {
		q.Dir = modes[i%len(modes)].cfg
		queries = append(queries, q)
		if len(queries) == MaxBatch {
			break
		}
	}
	b := NewBatch(dg.g.NumVertices())
	assertBatchMatchesSingle(t, "mixed-modes", b, dg.g, queries)
}

// starFixture builds an undirected star: hub 0 joined to every other
// vertex — the degenerate hub shape the forced-mode assertions use.
func starFixture(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Undirected, n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, graph.VertexID(v))
	}
	return b.Build()
}

// sunflowerFixture builds the canonical auto-switch shape with a
// hand-checkable wave sequence: an m-clique (vertices 0..m-1), one
// pendant leaf per clique vertex (m+i attached to i), and a tail
// vertex 2m attached to clique vertex 0. BFS from the tail pushes two
// cheap waves, then faces the full clique as its frontier — m(m-1)
// out-edges, nearly all landing on visited vertices, against only the
// m-1 pendant slots left unexplored — exactly the redundant mega-wave
// the pull flip exists for.
func sunflowerFixture(t *testing.T, m int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(graph.Undirected, 2*m+1)
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(m+u))
	}
	b.AddEdge(0, graph.VertexID(2*m))
	return b.Build()
}

func TestDirStats(t *testing.T) {
	g := sunflowerFixture(t, 64)
	ws := NewWorkspace(g.NumVertices())
	tail := graph.VertexID(128)

	run := func(cfg DirectionConfig) DirStats {
		if _, _, err := ExecuteIn(ws, g, Query{Op: OpBFS, Start: tail, Depth: 3, Dir: cfg}); err != nil {
			t.Fatal(err)
		}
		return ws.DirStats()
	}

	if st := run(DirectionConfig{Mode: DirForcePush}); st.PullWaves != 0 || st.PushWaves == 0 || st.Switches != 0 {
		t.Errorf("ForcePush stats = %+v, want push-only", st)
	}
	if st := run(DirectionConfig{Mode: DirForcePull}); st.PushWaves != 0 || st.PullWaves == 0 || st.Switches != 0 {
		t.Errorf("ForcePull stats = %+v, want pull-only", st)
	}
	// Auto from the tail: wave 0 (1 out-edge) and wave 1 (clique vertex
	// 0's 65 out-edges vs 4096 unexplored + 129 sweep) push; wave 2 (the
	// 64-strong clique frontier, 4033 out-edges vs 63 unexplored + 129)
	// flips to pull and discovers the pendants.
	st := run(DirectionConfig{Mode: DirAuto})
	if st != (DirStats{PushWaves: 2, PullWaves: 1, Switches: 1}) {
		t.Errorf("Auto stats on sunflower = %+v, want {PushWaves:2 PullWaves:1 Switches:1}", st)
	}

	// DirStats must reset between executions: a collab query has no
	// direction choice.
	bip, err := graphgen.Purchases(graphgen.PurchaseConfig{
		NumCustomers: 50, NumProducts: 20, PurchasesPerCustomerMean: 4,
		PopularityExponent: 2.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	wsB := NewWorkspace(bip.Graph.NumVertices())
	if _, _, err := ExecuteIn(wsB, bip.Graph, Query{Op: OpBFS, Start: bip.ProductVertex(0), Depth: 2, Dir: DirectionConfig{Mode: DirForcePull}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExecuteIn(wsB, bip.Graph, Query{Op: OpCollab, Start: bip.ProductVertex(0), SimilarityThreshold: 0}); err != nil {
		t.Fatal(err)
	}
	if st := wsB.DirStats(); st != (DirStats{}) {
		t.Errorf("DirStats leaked across executions: %+v", st)
	}
}

// TestBatchDirStats mirrors TestDirStats through the lockstep engine:
// per-slot counters must match the single-source ones.
func TestBatchDirStats(t *testing.T) {
	g := sunflowerFixture(t, 64)
	tail := graph.VertexID(128)
	queries := []Query{
		{Op: OpBFS, Start: tail, Depth: 3, Dir: DirectionConfig{Mode: DirForcePush}},
		{Op: OpBFS, Start: tail, Depth: 3, Dir: DirectionConfig{Mode: DirAuto}},
		{Op: OpSSSP, Start: tail, Target: 127, Depth: 4, Dir: DirectionConfig{Mode: DirForcePull}},
	}
	b := NewBatch(g.NumVertices())
	if _, _, _, err := b.Run(g, queries); err != nil {
		t.Fatal(err)
	}
	if st := b.DirStats(0); st.PullWaves != 0 || st.PushWaves == 0 {
		t.Errorf("slot 0 (ForcePush) stats = %+v, want push-only", st)
	}
	if st := b.DirStats(1); st != (DirStats{PushWaves: 2, PullWaves: 1, Switches: 1}) {
		t.Errorf("slot 1 (Auto) stats = %+v, want {PushWaves:2 PullWaves:1 Switches:1}", st)
	}
	if st := b.DirStats(2); st.PushWaves != 0 || st.PullWaves == 0 || st.Switches != 0 {
		t.Errorf("slot 2 (ForcePull) stats = %+v, want pull-only", st)
	}
}

// TestValidateDirection pins the config validation surface.
func TestValidateDirection(t *testing.T) {
	g := starFixture(t, 8)
	bad := []Query{
		{Op: OpBFS, Start: 0, Depth: 1, Dir: DirectionConfig{Mode: Direction(7)}},
		{Op: OpBFS, Start: 0, Depth: 1, Dir: DirectionConfig{Alpha: -1}},
		{Op: OpSSSP, Start: 0, Target: 1, Depth: 2, Dir: DirectionConfig{Beta: -0.5}},
	}
	for i, q := range bad {
		if err := q.Validate(g); err == nil {
			t.Errorf("query %d: invalid direction config accepted", i)
		}
	}
	ok := Query{Op: OpBFS, Start: 0, Depth: 1, Dir: DirectionConfig{Mode: DirForcePull, Alpha: 3, Beta: 9}}
	if err := ok.Validate(g); err != nil {
		t.Errorf("valid direction config rejected: %v", err)
	}
}

// TestChargeScanSaturates is the regression guard for the int32
// overflow class the batch engine exposed: MaxBatch queries' scans of
// one synthetic max-degree record aggregate into a single shared
// access, so the add must saturate instead of wrapping negative.
func TestChargeScanSaturates(t *testing.T) {
	tr := &Trace{Accesses: []Access{{Vertex: 0, Bytes: 64}}}
	tr.chargeScan(0, math.MaxInt32-10)
	tr.chargeScan(0, math.MaxInt32-10) // would wrap far negative un-saturated
	if got := tr.Accesses[0].ScannedEdges; got != math.MaxInt32 {
		t.Errorf("ScannedEdges = %d after overflow-sized charges, want saturation at %d",
			got, int32(math.MaxInt32))
	}
	tr.chargeScan(0, 1)
	if got := tr.Accesses[0].ScannedEdges; got != math.MaxInt32 {
		t.Errorf("ScannedEdges = %d after post-saturation charge, want %d stays pinned",
			got, int32(math.MaxInt32))
	}
}

// Dense kernels stay inside the zero-alloc budget once warmed: the
// pull frontier view, candidate buffer, and the graph's in-CSR are all
// built once and reused.
func TestDenseKernelAllocBudgets(t *testing.T) {
	pl, _ := allocFixture(t)
	ws := NewWorkspace(pl.NumVertices())
	hub := hubAndLeaf(pl)[0]
	for _, mode := range dirModes() {
		mode := mode
		checkAllocs(t, "BFS/"+mode.name, maxAllocsBFS, func() {
			ws.BFS(pl, Query{Op: OpBFS, Start: hub, Depth: 3, Dir: mode.cfg})
		})
		checkAllocs(t, "BoundedSSSP/"+mode.name, maxAllocsSSSP, func() {
			ws.BoundedSSSP(pl, Query{Op: OpSSSP, Start: hub, Target: hub ^ 1, Depth: 5, Dir: mode.cfg})
		})
	}
}
