package traverse

import (
	"fmt"
	"math"

	"subtrav/internal/graph"
)

// Multi-source batched traversal: several same-unit queries advance
// their frontiers in lockstep waves, so a record that two queries
// touch in the same wave is loaded once for both. The paper's workload
// premise — concurrent traversals overlap heavily on hub vertices —
// is exactly the case where the wave union is much smaller than the
// sum of the per-query frontiers.
//
// Correctness is anchored by a strict invariant: every query's Result
// and Trace are bit-for-bit identical to an independent single-source
// run of the same query. Batching changes only *when* records are
// loaded (and therefore what the executor pays), never what a query
// computes or touches. Two properties make this hold:
//
//   - BFS is level-synchronous already: the single-source kernel's
//     FIFO ring pops depth-d vertices in the exact order they were
//     enqueued at depth d-1, which is the order a wave-at-a-time loop
//     reproduces. The bounded-SSSP kernel expands one side per loop
//     iteration; running one iteration per wave replays the identical
//     expansion sequence.
//
//   - Per-query visit state stays fully private. BFS enqueued-sets and
//     touched-sets are packed as per-query bits in shared dense
//     bitmask maps (epoch-stamped, O(1) clear — the same VertexMap
//     discipline the Workspace kernels use); SSSP label/access maps
//     are per-slot. No query can observe another's visit marks, so
//     predicates, MaxVisits caps, and meet detection behave exactly as
//     in isolation.
//
// The shared per-wave record-load pass is emitted as a separate
// "shared" Trace: within one wave each distinct vertex record appears
// once no matter how many queries touch it, and its ScannedEdges
// aggregates every batched query's scan work on that record, so
// replaying the shared trace against a cache and disk yields the
// batch's actual I/O and CPU cost. Across waves a record reappears —
// the cache decides whether that is a hit, just as for independent
// queries.

// MaxBatch is the largest number of queries one Batch.Run can advance
// together: per-query BFS visit state is one bit per query in an int32
// dense map.
const MaxBatch = 32

// Batchable reports whether op can run in a multi-source batch.
// Collaborative filtering and RWR have data-dependent iteration
// structure with no wave alignment to exploit, so they run solo.
func Batchable(op Op) bool { return op == OpBFS || op == OpSSSP }

// ssspSlotMaps is the per-slot dense state of one batched SSSP query:
// the same two label maps and two access-index maps the single-source
// kernel keeps in its Scratch. One set per concurrent SSSP query —
// O(|V|) each — is the price of keeping per-query state private.
type ssspSlotMaps struct {
	distA, distB graph.VertexMap
	accA, accB   graph.VertexMap
}

func (m *ssspSlotMaps) grow(n int) {
	m.distA.Grow(n)
	m.distB.Grow(n)
	m.accA.Grow(n)
	m.accB.Grow(n)
}

func (m *ssspSlotMaps) reset() {
	m.distA.Clear()
	m.distB.Clear()
	m.accA.Clear()
	m.accB.Clear()
}

// BatchScratch bundles the NumVertices-sized dense structures batched
// runs share. Like traverse.Scratch it is reset per run (epoch bumps),
// so any number of Batches whose Run calls never overlap can share one
// — the simulator's event loop does exactly that. Not safe for
// concurrent use.
type BatchScratch struct {
	// waveLoaded dedups the shared trace within one wave: first toucher
	// of a record in a wave emits the shared access.
	waveLoaded graph.VertexSet
	// sharedAcc maps a vertex to its most recent shared access index,
	// so scan work lands on the wave-load that brought the record in.
	sharedAcc graph.VertexMap
	// sharedSeen dedups the shared trace's Touched across the run.
	sharedSeen graph.VertexSet
	// enqMask/seenMask hold per-query BFS enqueued and touched bits
	// (bit i = query slot i), replacing K separate dense sets.
	enqMask  graph.VertexMap
	seenMask graph.VertexMap
	// sssp holds per-slot SSSP maps, grown on demand to the number of
	// SSSP queries in the largest batch seen.
	sssp []*ssspSlotMaps
	// levelPos is the dense frontier view of a pull wave (expanding
	// vertex → frontier position). Used transiently within one slot's
	// wave — Run advances slots sequentially — so one map serves every
	// slot, rebuilt per pull wave by an epoch bump.
	levelPos graph.VertexMap

	numVertices int
}

// NewBatchScratch returns a BatchScratch sized for graphs of
// numVertices.
func NewBatchScratch(numVertices int) *BatchScratch {
	s := &BatchScratch{}
	s.grow(numVertices)
	return s
}

func (s *BatchScratch) grow(n int) {
	if n > s.numVertices {
		s.numVertices = n
	}
	s.waveLoaded.Grow(n)
	s.sharedAcc.Grow(n)
	s.sharedSeen.Grow(n)
	s.enqMask.Grow(n)
	s.seenMask.Grow(n)
	s.levelPos.Grow(n)
	for _, m := range s.sssp {
		m.grow(n)
	}
}

// ssspMaps returns the j-th per-slot SSSP map set, allocating on first
// use and resetting it for a fresh run.
func (s *BatchScratch) ssspMaps(j int) *ssspSlotMaps {
	for len(s.sssp) <= j {
		m := &ssspSlotMaps{}
		m.grow(s.numVertices)
		s.sssp = append(s.sssp, m)
	}
	m := s.sssp[j]
	m.reset()
	return m
}

// batchRunner is the private per-slot state of one batched query.
type batchRunner struct {
	q       Query
	done    bool
	visited int
	result  Result

	// BFS: current wave depth (== wave index while active).
	depth int32

	// SSSP: the single-source kernel's loop state, advanced one
	// iteration per wave.
	st             ssspState
	depthA, depthB int
	limitA, limitB int
	maps           *ssspSlotMaps

	// Direction-optimization state (see direction.go): resolved config,
	// per-frontier push/pull hysteresis, and Beamer unexplored-edge
	// counters — int64 so synthetic max-degree graphs can't wrap them.
	dir          DirectionConfig
	pulling      bool // BFS
	pullA, pullB bool // SSSP sides
	unexplored   int64
	unexA, unexB int64
	stats        DirStats
}

// Batch runs multi-source lockstep traversals. It owns the per-query
// and shared output buffers, reused across runs.
//
// Ownership contract (mirrors Workspace): the Results, Traces, and
// shared Trace returned by Run are owned by the Batch and valid only
// until its next Run. Callers that retain a Result must Clone it;
// callers that retain a Trace must copy its slices.
//
// Not safe for concurrent use.
type Batch struct {
	scratch *BatchScratch

	run     []batchRunner
	traces  []Trace
	ptrs    []*Trace
	results []Result
	shared  Trace

	// Per-slot frontier double-buffers: BFS uses fA/nA as its
	// current/next frontier; SSSP uses all four (one pair per side).
	fA, fB, nA, nB [][]graph.VertexID

	// Shared wave scratch for direction-optimized expansion: the
	// expanding-vertex list and the pull-discovery buffer, reused by
	// every slot (slots advance sequentially within a wave).
	expand     []graph.VertexID
	cands      []pullCand
	candsOut   []pullCand
	candCounts []int32
}

// NewBatch returns a Batch with a private BatchScratch sized for
// graphs of numVertices.
func NewBatch(numVertices int) *Batch {
	return &Batch{scratch: NewBatchScratch(numVertices)}
}

// NewBatchWithScratch returns a Batch borrowing a shared BatchScratch.
// The caller must guarantee Run calls across all Batches sharing it
// never overlap (e.g. a single-threaded event loop).
func NewBatchWithScratch(s *BatchScratch) *Batch {
	return &Batch{scratch: s}
}

// Run advances all queries to completion in lockstep waves and returns
// per-query results and traces — bit-for-bit identical to independent
// single-source runs — plus the shared wave-ordered record-load trace
// (see the package comment at the top of this file). Only Batchable
// ops are accepted, and at most MaxBatch queries per call.
func (b *Batch) Run(g *graph.Graph, queries []Query) (results []Result, traces []*Trace, shared *Trace, err error) {
	if len(queries) == 0 {
		return nil, nil, nil, fmt.Errorf("traverse: empty batch")
	}
	if len(queries) > MaxBatch {
		return nil, nil, nil, fmt.Errorf("traverse: batch of %d queries, max %d", len(queries), MaxBatch)
	}
	for i, q := range queries {
		if !Batchable(q.Op) {
			return nil, nil, nil, fmt.Errorf("traverse: query %d: op %v is not batchable", i, q.Op)
		}
		if err := q.Validate(g); err != nil {
			return nil, nil, nil, fmt.Errorf("traverse: query %d: %w", i, err)
		}
	}

	b.begin(g, queries)
	active := len(queries)
	for wave := 0; active > 0; wave++ {
		b.scratch.waveLoaded.Clear()
		for i := range b.run {
			r := &b.run[i]
			if r.done {
				continue
			}
			switch r.q.Op {
			case OpBFS:
				if wave == 0 {
					b.bfsInit(g, i)
				}
				b.bfsWave(g, i)
			case OpSSSP:
				if wave == 0 {
					b.ssspInit(g, i)
				} else {
					b.ssspWave(g, i)
				}
			}
			if r.done {
				active--
			}
		}
	}

	for i := range b.run {
		b.results[i] = b.run[i].result
		b.ptrs[i] = &b.traces[i]
	}
	return b.results, b.ptrs, &b.shared, nil
}

// begin readies the batch for one run over g.
func (b *Batch) begin(g *graph.Graph, queries []Query) {
	s := b.scratch
	s.grow(g.NumVertices())
	s.sharedAcc.Clear()
	s.sharedSeen.Clear()
	s.enqMask.Clear()
	s.seenMask.Clear()
	b.shared.Accesses = b.shared.Accesses[:0]
	b.shared.Touched = b.shared.Touched[:0]

	k := len(queries)
	for len(b.run) < k {
		b.run = append(b.run, batchRunner{})
		b.traces = append(b.traces, Trace{})
		b.ptrs = append(b.ptrs, nil)
		b.results = append(b.results, Result{})
		b.fA = append(b.fA, nil)
		b.fB = append(b.fB, nil)
		b.nA = append(b.nA, nil)
		b.nB = append(b.nB, nil)
	}
	b.run = b.run[:k]
	b.traces = b.traces[:k]
	b.ptrs = b.ptrs[:k]
	b.results = b.results[:k]
	b.fA = b.fA[:k]
	b.fB = b.fB[:k]
	b.nA = b.nA[:k]
	b.nB = b.nB[:k]

	ssspSlots := 0
	for i := range b.run {
		tr := &b.traces[i]
		tr.Accesses = tr.Accesses[:0]
		tr.Touched = tr.Touched[:0]
		b.run[i] = batchRunner{q: queries[i]}
		if queries[i].Op == OpSSSP {
			b.run[i].maps = s.ssspMaps(ssspSlots)
			ssspSlots++
		}
	}
}

// touch records query i's access to v in both the per-query trace and
// the shared wave trace, returning the per-query access index (the
// exact analogue of Workspace.touch).
func (b *Batch) touch(g *graph.Graph, i int, v graph.VertexID) int {
	bytes := g.VertexBytes(v)
	tr := &b.traces[i]
	tr.Accesses = append(tr.Accesses, Access{Vertex: v, Bytes: bytes})
	bit := uint32(1) << uint(i)
	if m, _ := b.scratch.seenMask.Get(v); uint32(m)&bit == 0 {
		b.scratch.seenMask.Put(v, int32(uint32(m)|bit))
		tr.Touched = append(tr.Touched, v)
	}

	if b.scratch.waveLoaded.Add(v) {
		b.scratch.sharedAcc.Put(v, int32(len(b.shared.Accesses)))
		b.shared.Accesses = append(b.shared.Accesses, Access{Vertex: v, Bytes: bytes})
		if b.scratch.sharedSeen.Add(v) {
			b.shared.Touched = append(b.shared.Touched, v)
		}
	}
	return len(tr.Accesses) - 1
}

// chargeScan attributes edge-scan work on v's record to query i's
// access acc and, once, to the shared wave-load that brought the
// record in (its most recent shared access).
func (b *Batch) chargeScan(i, acc int, v graph.VertexID, edges int) {
	b.traces[i].chargeScan(acc, edges)
	if idx, ok := b.scratch.sharedAcc.Get(v); ok {
		b.shared.chargeScan(int(idx), edges)
	}
}

// bfsInit seeds slot i's frontier with its start vertex (the
// single-source kernel's initial seed + enqueued.Put) and its
// direction state.
func (b *Batch) bfsInit(g *graph.Graph, i int) {
	r := &b.run[i]
	b.fA[i] = append(b.fA[i][:0], r.q.Start)
	bit := uint32(1) << uint(i)
	m, _ := b.scratch.enqMask.Get(r.q.Start)
	b.scratch.enqMask.Put(r.q.Start, int32(uint32(m)|bit))
	r.depth = 0
	r.dir = r.q.Dir.withDefaults()
	r.unexplored = g.NumSlots() - int64(g.Degree(r.q.Start))
	r.pulling = false
}

// bfsWave processes slot i's entire depth-d frontier — the contiguous
// run of depth-d pops in the single-source kernel — and builds the
// depth-d+1 frontier, top-down or bottom-up per the direction
// heuristic. Like the single-source kernel, the wave splits into a
// process pass (touches, predicates, visit cap, scan charges — all
// the trace-visible work) and an expansion pass that only builds the
// next frontier, so push and pull waves leave identical traces.
func (b *Batch) bfsWave(g *graph.Graph, i int) {
	r := &b.run[i]
	q := &r.q
	cur := b.fA[i]
	next := b.nA[i][:0]
	bit := uint32(1) << uint(i)

	exp := b.expand[:0]
	var mF int64
	for _, v := range cur {
		acc := b.touch(g, i, v)
		if q.VertexPred != nil && !q.VertexPred(g.VertexProps(v)) {
			continue
		}
		r.visited++
		if q.MaxVisits > 0 && r.visited >= q.MaxVisits {
			// The single-source kernel breaks out of its pop loop here,
			// dropping the rest of the queue — so the remainder of this
			// frontier and the expansion pass are dropped too.
			r.done = true
			break
		}
		if int(r.depth) >= q.Depth {
			continue
		}
		lo, hi := g.EdgeSlots(v)
		b.chargeScan(i, acc, v, int(hi-lo))
		exp = append(exp, v)
		mF += hi - lo
	}
	b.expand = exp
	if !r.done && len(exp) > 0 {
		pull := r.dir.next(r.pulling, mF, r.unexplored, len(exp), g.NumVertices())
		r.stats.record(pull, r.pulling, r.depth == 0)
		r.pulling = pull
		if pull {
			next = b.bfsPullWave(g, i, exp, next, bit)
		} else {
			next = b.bfsPushWave(g, i, exp, next, bit)
		}
	}
	b.fA[i], b.nA[i] = next, cur
	r.depth++
	if len(next) == 0 {
		r.done = true
	}
	if r.done {
		r.result = Result{Visited: r.visited}
	}
}

// bfsPushWave is Workspace.bfsPush with the per-query enqueued set
// packed as bit i of the shared mask map.
//
//vet:hotpath
func (b *Batch) bfsPushWave(g *graph.Graph, i int, exp, next []graph.VertexID, bit uint32) []graph.VertexID {
	r := &b.run[i]
	q := &r.q
	for _, v := range exp {
		lo, hi := g.EdgeSlots(v)
		for s := lo; s < hi; s++ {
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
				continue
			}
			u := g.TargetAt(s)
			m, _ := b.scratch.enqMask.Get(u)
			if uint32(m)&bit != 0 {
				continue
			}
			b.scratch.enqMask.Put(u, int32(uint32(m)|bit))
			r.unexplored -= int64(g.Degree(u))
			next = append(next, u)
		}
	}
	return next
}

// bfsPullWave is Workspace.bfsPull against the bitmask enqueued set:
// scan vertices whose slot-i bit is clear, keep the minimum (frontier
// position, forward slot) qualifying in-edge, and sort discoveries
// back into push order (see direction.go).
//
//vet:hotpath
func (b *Batch) bfsPullWave(g *graph.Graph, i int, exp, next []graph.VertexID, bit uint32) []graph.VertexID {
	r := &b.run[i]
	q := &r.q
	in := g.In()
	pos := &b.scratch.levelPos
	pos.Clear()
	for j, v := range exp {
		pos.Put(v, int32(j))
	}
	cands := b.cands[:0]
	n := graph.VertexID(g.NumVertices())
	for u := graph.VertexID(0); u < n; u++ {
		if m, _ := b.scratch.enqMask.Get(u); uint32(m)&bit != 0 {
			continue
		}
		lo, hi := in.Edges(u)
		best := uint64(math.MaxUint64)
		for p := lo; p < hi; p++ {
			j, ok := pos.Get(in.Sources[p])
			if !ok {
				continue
			}
			key := uint64(j)<<32 | uint64(in.FwdSlot[p])
			if key >= best {
				continue
			}
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(int64(in.FwdSlot[p])))) {
				continue
			}
			best = key
		}
		if best != math.MaxUint64 {
			cands = append(cands, pullCand{key: best, u: u})
		}
	}
	b.cands = cands
	for _, c := range orderPullCands(cands, len(exp), &b.candsOut, &b.candCounts) {
		m, _ := b.scratch.enqMask.Get(c.u)
		b.scratch.enqMask.Put(c.u, int32(uint32(m)|bit))
		r.unexplored -= int64(g.Degree(c.u))
		next = append(next, c.u)
	}
	return next
}

// ssspInit performs the single-source kernel's setup: the Start==Target
// short-circuit, the two endpoint touches, and the initial frontiers.
// Expansion starts at wave 1.
func (b *Batch) ssspInit(g *graph.Graph, i int) {
	r := &b.run[i]
	q := &r.q
	if q.Start == q.Target {
		b.touch(g, i, q.Start)
		r.result = Result{Visited: 1, Found: true, PathLen: 0}
		r.done = true
		return
	}
	m := r.maps
	m.distA.Put(q.Start, 0)
	m.distB.Put(q.Target, 0)
	b.fA[i] = append(b.fA[i][:0], q.Start)
	b.fB[i] = append(b.fB[i][:0], q.Target)
	m.accA.Put(q.Start, int32(b.touch(g, i, q.Start)))
	m.accB.Put(q.Target, int32(b.touch(g, i, q.Target)))
	r.st = ssspState{visited: 2, best: -1}
	r.limitA = (q.Depth + 1) / 2 // ceil(δ/2)
	r.limitB = q.Depth / 2       // floor(δ/2); combined = δ
	r.depthA, r.depthB = 0, 0
	r.dir = q.Dir.withDefaults()
	r.unexA = g.NumSlots() - int64(g.Degree(q.Start))
	r.unexB = g.NumSlots() - int64(g.Degree(q.Target))
	r.pullA, r.pullB = false, false
}

// ssspWave runs one iteration of the single-source kernel's main loop
// for slot i: the loop-condition check, one side expansion, and the
// best-length early exit.
func (b *Batch) ssspWave(g *graph.Graph, i int) {
	r := &b.run[i]
	m := r.maps
	fA, fB := b.fA[i], b.fB[i]
	if r.st.capped || !((r.depthA < r.limitA && len(fA) > 0) || (r.depthB < r.limitB && len(fB) > 0)) {
		b.ssspFinish(i)
		return
	}
	// Alternate sides, smaller frontier first — the single-source
	// kernel's bidirectional heuristic, verbatim.
	expandA := r.depthA < r.limitA && len(fA) > 0 &&
		(r.depthB >= r.limitB || len(fB) == 0 || len(fA) <= len(fB))
	if expandA {
		var mF int64
		if r.dir.Mode == DirAuto && !r.pullA {
			mF = frontierEdges(g, fA)
		}
		pull := r.dir.next(r.pullA, mF, r.unexA, len(fA), g.NumVertices())
		r.stats.record(pull, r.pullA, r.depthA == 0)
		r.pullA = pull
		var out []graph.VertexID
		if pull {
			out = b.ssspExpandBatchPull(g, i, fA, b.nA[i][:0], &m.distA, &m.accA, &m.distB, r.depthA, &r.unexA)
		} else {
			out = b.ssspExpandBatch(g, i, fA, b.nA[i][:0], &m.distA, &m.accA, &m.distB, r.depthA, &r.unexA)
		}
		b.fA[i], b.nA[i] = out, fA
		r.depthA++
	} else {
		var mF int64
		if r.dir.Mode == DirAuto && !r.pullB {
			mF = frontierEdges(g, fB)
		}
		pull := r.dir.next(r.pullB, mF, r.unexB, len(fB), g.NumVertices())
		r.stats.record(pull, r.pullB, r.depthB == 0)
		r.pullB = pull
		var out []graph.VertexID
		if pull {
			out = b.ssspExpandBatchPull(g, i, fB, b.nB[i][:0], &m.distB, &m.accB, &m.distA, r.depthB, &r.unexB)
		} else {
			out = b.ssspExpandBatch(g, i, fB, b.nB[i][:0], &m.distB, &m.accB, &m.distA, r.depthB, &r.unexB)
		}
		b.fB[i], b.nB[i] = out, fB
		r.depthB++
	}
	if r.st.best >= 0 && r.st.best <= r.depthA+r.depthB {
		// No shorter meeting can appear once both processed depths
		// cover the best found length.
		b.ssspFinish(i)
	}
}

func (b *Batch) ssspFinish(i int) {
	r := &b.run[i]
	r.done = true
	if r.st.best >= 0 && r.st.best <= r.q.Depth {
		r.result = Result{Visited: r.st.visited, Found: true, PathLen: r.st.best}
		return
	}
	r.result = Result{Visited: r.st.visited, Found: false}
}

// ssspExpandBatch is ssspExpand with the touches and scan charges
// routed through the batch's dual (per-query + shared) traces.
//
//vet:hotpath
func (b *Batch) ssspExpandBatch(g *graph.Graph, i int, frontier, next []graph.VertexID,
	mine, accIdx, other *graph.VertexMap, depth int, unexplored *int64) []graph.VertexID {
	r := &b.run[i]
	q := &r.q
	st := &r.st
	for _, v := range frontier {
		if st.capped {
			break
		}
		lo, hi := g.EdgeSlots(v)
		vAcc, _ := accIdx.Get(v)
		b.chargeScan(i, int(vAcc), v, int(hi-lo))
		for s := lo; s < hi; s++ {
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
				continue
			}
			u := g.TargetAt(s)
			if mine.Contains(u) {
				continue
			}
			mine.Put(u, int32(depth+1))
			accIdx.Put(u, int32(b.touch(g, i, u)))
			st.visited++
			*unexplored -= int64(g.Degree(u))
			if d, ok := other.Get(u); ok {
				total := depth + 1 + int(d)
				if st.best < 0 || total < st.best {
					st.best = total
				}
				continue
			}
			if q.MaxVisits > 0 && st.visited >= q.MaxVisits {
				st.capped = true
				break
			}
			next = append(next, u)
		}
	}
	return next
}

// ssspExpandBatchPull is Workspace.ssspExpandPull routed through the
// batch's dual traces: a discovery pass over this side's unlabeled
// vertices, a counting scatter back into top-down order, then an
// emission pass replaying ssspExpandBatch exactly (scan charges,
// labeling, meet checks, the visit cap).
//
//vet:hotpath
func (b *Batch) ssspExpandBatchPull(g *graph.Graph, i int, frontier, next []graph.VertexID,
	mine, accIdx, other *graph.VertexMap, depth int, unexplored *int64) []graph.VertexID {
	r := &b.run[i]
	q := &r.q
	st := &r.st
	in := g.In()
	pos := &b.scratch.levelPos
	pos.Clear()
	for j, v := range frontier {
		pos.Put(v, int32(j))
	}
	cands := b.cands[:0]
	n := graph.VertexID(g.NumVertices())
	for u := graph.VertexID(0); u < n; u++ {
		if mine.Contains(u) {
			continue
		}
		lo, hi := in.Edges(u)
		best := uint64(math.MaxUint64)
		for p := lo; p < hi; p++ {
			j, ok := pos.Get(in.Sources[p])
			if !ok {
				continue
			}
			key := uint64(j)<<32 | uint64(in.FwdSlot[p])
			if key >= best {
				continue
			}
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(int64(in.FwdSlot[p])))) {
				continue
			}
			best = key
		}
		if best != math.MaxUint64 {
			cands = append(cands, pullCand{key: best, u: u})
		}
	}
	b.cands = cands
	cands = orderPullCands(cands, len(frontier), &b.candsOut, &b.candCounts)

	ci := 0
	for j, v := range frontier {
		if st.capped {
			break
		}
		lo, hi := g.EdgeSlots(v)
		vAcc, _ := accIdx.Get(v)
		b.chargeScan(i, int(vAcc), v, int(hi-lo))
		for ci < len(cands) && int(cands[ci].key>>32) == j {
			u := cands[ci].u
			ci++
			mine.Put(u, int32(depth+1))
			accIdx.Put(u, int32(b.touch(g, i, u)))
			st.visited++
			*unexplored -= int64(g.Degree(u))
			if d, ok := other.Get(u); ok {
				total := depth + 1 + int(d)
				if st.best < 0 || total < st.best {
					st.best = total
				}
				continue
			}
			if q.MaxVisits > 0 && st.visited >= q.MaxVisits {
				st.capped = true
				break
			}
			next = append(next, u)
		}
	}
	return next
}

// DirStats returns slot i's push/pull direction counters from the most
// recent Run. Valid until the next Run.
func (b *Batch) DirStats(i int) DirStats { return b.run[i].stats }
