package traverse

import (
	"sync"

	"subtrav/internal/graph"
)

// Scratch bundles the NumVertices-sized dense structures the kernels
// share: epoch-stamped sets and maps (see graph.VertexSet/VertexMap)
// replacing the per-query visited/frontier/shared hash maps. A
// Scratch is reset at the start of every traversal (an O(1) epoch
// bump), so it can be shared by any number of Workspaces whose kernel
// executions never overlap — the discrete-event simulator exploits
// this: its event loop runs one kernel at a time, so P units share a
// single Scratch instead of carrying P copies of O(|V|) arrays.
//
// Not safe for concurrent use.
type Scratch struct {
	// seen deduplicates Trace.Touched (first-visit order) — all ops.
	seen graph.VertexSet
	// mapA: BFS enqueued-set, SSSP side-A labels, RWR visit counts.
	mapA graph.VertexMap
	// mapB: SSSP side-B labels, CollabFilter shared-buyer counts.
	mapB graph.VertexMap
	// accA/accB: access-trace indices (SSSP per side; CollabFilter
	// buyer record index) so scanned edges attribute to the right
	// record access.
	accA graph.VertexMap
	accB graph.VertexMap
	// posMap is the dense frontier view of a pull wave: expanding
	// vertex → position in the wave's frontier order. Rebuilt (epoch
	// bump + repopulate) per pull wave by BFS and SSSP.
	posMap graph.VertexMap
}

// NewScratch returns a Scratch sized for graphs of numVertices.
// Running a kernel against a bigger graph grows it transparently.
func NewScratch(numVertices int) *Scratch {
	s := &Scratch{}
	s.grow(numVertices)
	return s
}

func (s *Scratch) grow(n int) {
	s.seen.Grow(n)
	s.mapA.Grow(n)
	s.mapB.Grow(n)
	s.accA.Grow(n)
	s.accB.Grow(n)
	s.posMap.Grow(n)
}

func (s *Scratch) reset() {
	s.seen.Clear()
	s.mapA.Clear()
	s.mapB.Clear()
	s.accA.Clear()
	s.accB.Clear()
	s.posMap.Clear()
}

// Workspace is the reusable per-execution state of the traversal
// kernels: a dense Scratch, reusable BFS/SSSP frontier slices,
// insertion-ordered side lists, and pooled Trace and Result scratch. A steady-state traversal through a warmed Workspace
// performs zero heap allocations.
//
// Ownership contract: the *Trace returned by a Workspace kernel, and
// the Recommendations/Ranking slices inside its Result, are owned by
// the Workspace and remain valid only until its next kernel call (or
// Pool.Put). Callers that retain a Result across executions must
// Clone it; callers that retain the Trace must copy its slices. The
// one-shot package functions (BFS, Execute, ...) allocate a private
// Workspace per call and are exempt — their outputs are never reused.
//
// Not safe for concurrent use; use a Pool to share across goroutines.
type Workspace struct {
	scratch *Scratch

	// Frontier double-buffers: the level-synchronous BFS uses the A
	// pair as its current/next frontier; SSSP uses both pairs (one per
	// search side).
	frontA, nextA []graph.VertexID
	frontB, nextB []graph.VertexID

	// expanders is the wave's expanding-vertex list (frontier members
	// that passed predicates, the visit cap, and the depth bound), in
	// pop order; the frontier the expansion pass — push or pull —
	// actually walks.
	expanders []graph.VertexID

	// cands collects a pull wave's bottom-up discoveries; candsOut and
	// candCounts are the counting-scatter scratch that reorders them
	// into push discovery order (see orderPullCands).
	cands      []pullCand
	candsOut   []pullCand
	candCounts []int32

	// dirStats counts the last execution's direction decisions.
	dirStats DirStats

	// orderA/orderB are insertion-ordered compact side lists: the
	// deterministic iteration substrate that replaces map-range order
	// (CollabFilter buyers/products, RWR visit-count accumulation).
	orderA, orderB []graph.VertexID

	// Pooled outputs (see the ownership contract above).
	trace   Trace
	recs    []Recommendation
	ranking []Ranked

	// Reusable sorters: sort.Sort through a pointer field costs no
	// allocation, unlike sort.Slice's closure + reflect swapper.
	recSorter  recSorter
	rankSorter rankSorter
}

// NewWorkspace returns a Workspace with a private Scratch sized for
// graphs of numVertices.
func NewWorkspace(numVertices int) *Workspace {
	return &Workspace{scratch: NewScratch(numVertices)}
}

// NewWorkspaceWithScratch returns a Workspace borrowing a shared
// Scratch. The caller must guarantee kernel executions across all
// Workspaces sharing it never overlap (e.g. a single-threaded event
// loop); each Workspace still keeps private frontier/trace/result
// buffers, so outputs live independently of sibling executions.
func NewWorkspaceWithScratch(s *Scratch) *Workspace {
	return &Workspace{scratch: s}
}

// begin readies the workspace for one traversal over g.
//
//vet:hotpath
func (ws *Workspace) begin(g *graph.Graph) {
	ws.scratch.grow(g.NumVertices())
	ws.scratch.reset()
	ws.trace.Accesses = ws.trace.Accesses[:0]
	ws.trace.Touched = ws.trace.Touched[:0]
	ws.orderA = ws.orderA[:0]
	ws.orderB = ws.orderB[:0]
	ws.expanders = ws.expanders[:0]
	ws.dirStats = DirStats{}
}

// DirStats returns the push/pull direction counters of the most recent
// kernel execution (zero for ops without direction choice). Valid
// until the next kernel call.
func (ws *Workspace) DirStats() DirStats { return ws.dirStats }

// touch appends a vertex record access to the pooled trace,
// deduplicating Touched through the dense seen-set, and returns the
// access index (mirrors Trace.touchVertex on map state).
//
//vet:hotpath
func (ws *Workspace) touch(g *graph.Graph, v graph.VertexID) int {
	t := &ws.trace
	t.Accesses = append(t.Accesses, Access{Vertex: v, Bytes: g.VertexBytes(v)})
	if ws.scratch.seen.Add(v) {
		t.Touched = append(t.Touched, v)
	}
	return len(t.Accesses) - 1
}

// recSorter orders recommendations best-first, product ID tie-break —
// the same total order CollabFilterReference sorts by, so any
// conforming sort yields identical output.
type recSorter struct{ s []Recommendation }

func (r *recSorter) Len() int      { return len(r.s) }
func (r *recSorter) Swap(i, j int) { r.s[i], r.s[j] = r.s[j], r.s[i] }
func (r *recSorter) Less(i, j int) bool {
	if r.s[i].Similarity != r.s[j].Similarity {
		return r.s[i].Similarity > r.s[j].Similarity
	}
	return r.s[i].Product < r.s[j].Product
}

// rankSorter orders RWR rankings best-first, vertex ID tie-break.
type rankSorter struct{ s []Ranked }

func (r *rankSorter) Len() int      { return len(r.s) }
func (r *rankSorter) Swap(i, j int) { r.s[i], r.s[j] = r.s[j], r.s[i] }
func (r *rankSorter) Less(i, j int) bool {
	if r.s[i].Score != r.s[j].Score {
		return r.s[i].Score > r.s[j].Score
	}
	return r.s[i].Vertex < r.s[j].Vertex
}

// Pool is a concurrency-safe checkout of Workspaces, backed by
// sync.Pool: the live runtime's workers borrow one per query, so the
// number of live Workspaces tracks the number of concurrently
// executing traversals and idle ones are reclaimed under memory
// pressure.
type Pool struct {
	numVertices int
	pool        sync.Pool
}

// NewPool returns a pool of Workspaces pre-sized for graphs of
// numVertices.
func NewPool(numVertices int) *Pool {
	p := &Pool{numVertices: numVertices}
	p.pool.New = func() any { return NewWorkspace(p.numVertices) }
	return p
}

// Get checks out a Workspace. Return it with Put when the execution's
// outputs have been consumed (or cloned).
func (p *Pool) Get() *Workspace { return p.pool.Get().(*Workspace) }

// Put returns a Workspace to the pool. The caller must not touch the
// Workspace — or any Trace/Result memory it produced — afterwards.
func (p *Pool) Put(ws *Workspace) { p.pool.Put(ws) }
