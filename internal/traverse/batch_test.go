package traverse

import (
	"fmt"
	"reflect"
	"testing"

	"subtrav/internal/graph"
)

// The batch differential suite pins multi-source lockstep execution
// bit-for-bit against independent single-source runs: for every query
// in a batch, Result, Trace.Accesses, and Trace.Touched must be
// identical to what the single-source Workspace kernel produces — so
// batching provably changes only the cost of a query mix, never its
// outputs.

// batchableQueries filters the differential battery down to the ops a
// Batch accepts.
func batchableQueries(name string, g *graph.Graph, starts []graph.VertexID) []Query {
	var out []Query
	for _, q := range diffQueries(g, starts) {
		if !Batchable(q.Op) || skipPredOnBipartite(name, q) {
			continue
		}
		out = append(out, q)
	}
	return out
}

// assertBatchMatchesSingle runs queries through b as one batch and
// through a single-source Workspace one at a time, comparing outputs
// per slot.
func assertBatchMatchesSingle(t *testing.T, label string, b *Batch, g *graph.Graph, queries []Query) {
	t.Helper()
	results, traces, shared, err := b.Run(g, queries)
	if err != nil {
		t.Fatalf("%s: batch run failed: %v", label, err)
	}
	if len(results) != len(queries) || len(traces) != len(queries) {
		t.Fatalf("%s: got %d results / %d traces for %d queries",
			label, len(results), len(traces), len(queries))
	}
	ws := NewWorkspace(g.NumVertices())
	var sumAccesses, sumScans, sharedScans int
	for i, q := range queries {
		wantRes, wantTr, err := ExecuteIn(ws, g, q)
		if err != nil {
			t.Fatalf("%s: single-source run %d failed: %v", label, i, err)
		}
		if !reflect.DeepEqual(wantRes, results[i]) {
			t.Fatalf("%s: slot %d (%s start=%d): Result mismatch:\nsingle: %+v\nbatch:  %+v",
				label, i, q.Op, q.Start, wantRes, results[i])
		}
		if !accessesEqual(wantTr.Accesses, traces[i].Accesses) {
			t.Fatalf("%s: slot %d (%s start=%d): Trace.Accesses diverge (single %d entries, batch %d)",
				label, i, q.Op, q.Start, len(wantTr.Accesses), len(traces[i].Accesses))
		}
		if !touchedEqual(wantTr.Touched, traces[i].Touched) {
			t.Fatalf("%s: slot %d (%s start=%d): Trace.Touched diverge (single %d, batch %d)",
				label, i, q.Op, q.Start, len(wantTr.Touched), len(traces[i].Touched))
		}
		sumAccesses += len(traces[i].Accesses)
		for _, a := range traces[i].Accesses {
			sumScans += int(a.ScannedEdges)
		}
	}

	// Shared-trace invariants: the wave union never exceeds the sum of
	// the per-query traces; scan work is conserved exactly; Touched is
	// duplicate-free and covers exactly the union of per-query touches.
	if len(shared.Accesses) > sumAccesses {
		t.Fatalf("%s: shared trace has %d accesses, more than the per-query sum %d",
			label, len(shared.Accesses), sumAccesses)
	}
	for _, a := range shared.Accesses {
		sharedScans += int(a.ScannedEdges)
	}
	if sharedScans != sumScans {
		t.Fatalf("%s: shared trace carries %d scanned edges, per-query sum is %d",
			label, sharedScans, sumScans)
	}
	union := map[graph.VertexID]bool{}
	for i := range queries {
		for _, v := range traces[i].Touched {
			union[v] = true
		}
	}
	sharedSet := map[graph.VertexID]bool{}
	for _, v := range shared.Touched {
		if sharedSet[v] {
			t.Fatalf("%s: shared.Touched contains %d twice", label, v)
		}
		sharedSet[v] = true
	}
	if len(sharedSet) != len(union) {
		t.Fatalf("%s: shared.Touched covers %d vertices, union of per-query Touched is %d",
			label, len(sharedSet), len(union))
	}
	for v := range union {
		if !sharedSet[v] {
			t.Fatalf("%s: vertex %d touched by a query but missing from shared.Touched", label, v)
		}
	}
}

func TestBatchMatchesSingleSource(t *testing.T) {
	for _, dg := range diffGraphs(t) {
		dg := dg
		t.Run(dg.name, func(t *testing.T) {
			queries := batchableQueries(dg.name, dg.g, dg.starts)
			if len(queries) < 2 {
				t.Fatalf("battery too small: %d", len(queries))
			}
			// One Batch reused across every grouping, so epoch-reset
			// state must not leak between runs.
			b := NewBatch(dg.g.NumVertices())
			for _, size := range []int{1, 2, 5, len(queries)} {
				if size > MaxBatch {
					size = MaxBatch
				}
				for lo := 0; lo < len(queries); lo += size {
					hi := lo + size
					if hi > len(queries) {
						hi = len(queries)
					}
					label := fmt.Sprintf("%s[%d:%d]", dg.name, lo, hi)
					assertBatchMatchesSingle(t, label, b, dg.g, queries[lo:hi])
				}
			}
		})
	}
}

// TestBatchOverlappingQueriesShareWaveLoads is the point of the whole
// layer: K identical hub queries batched together emit a shared trace
// no bigger than one query's own trace, while the per-query traces
// still account K times the work.
func TestBatchOverlappingQueriesShareWaveLoads(t *testing.T) {
	dg := diffGraphs(t)[1] // power-law
	hub := dg.starts[0]
	q := Query{Op: OpBFS, Start: hub, Depth: 3}
	const k = 8
	queries := make([]Query, k)
	for i := range queries {
		queries[i] = q
	}
	b := NewBatch(dg.g.NumVertices())
	_, traces, shared, err := b.Run(dg.g, queries)
	if err != nil {
		t.Fatal(err)
	}
	single := len(traces[0].Accesses)
	if single == 0 {
		t.Fatal("hub BFS touched nothing; fixture broken")
	}
	if len(shared.Accesses) != single {
		t.Errorf("shared trace = %d accesses for %d identical queries, want %d (one query's worth)",
			len(shared.Accesses), k, single)
	}
	var sum int
	for i := range traces {
		sum += len(traces[i].Accesses)
	}
	if sum != k*single {
		t.Errorf("per-query traces sum to %d accesses, want %d", sum, k*single)
	}
}

// TestBatchSharedScratchInterleaved drives two Batches over one shared
// BatchScratch — the simulator's configuration — and checks outputs
// stay pinned to single-source runs.
func TestBatchSharedScratchInterleaved(t *testing.T) {
	dg := diffGraphs(t)[1]
	queries := batchableQueries(dg.name, dg.g, dg.starts)
	sc := NewBatchScratch(dg.g.NumVertices())
	bs := []*Batch{NewBatchWithScratch(sc), NewBatchWithScratch(sc)}
	for round := 0; round < 4; round++ {
		lo := (round * 3) % (len(queries) - 4)
		assertBatchMatchesSingle(t, fmt.Sprintf("round%d", round),
			bs[round%2], dg.g, queries[lo:lo+4])
	}
}

func TestBatchRejectsBadInput(t *testing.T) {
	dg := diffGraphs(t)[0]
	b := NewBatch(dg.g.NumVertices())
	if _, _, _, err := b.Run(dg.g, nil); err == nil {
		t.Error("empty batch accepted")
	}
	big := make([]Query, MaxBatch+1)
	for i := range big {
		big[i] = Query{Op: OpBFS, Start: 0, Depth: 1}
	}
	if _, _, _, err := b.Run(dg.g, big); err == nil {
		t.Errorf("batch of %d accepted, max is %d", len(big), MaxBatch)
	}
	if _, _, _, err := b.Run(dg.g, []Query{{Op: OpCollab, Start: 0}}); err == nil {
		t.Error("non-batchable op accepted")
	}
	if _, _, _, err := b.Run(dg.g, []Query{{Op: OpBFS, Start: -1, Depth: 1}}); err == nil {
		t.Error("invalid start vertex accepted")
	}
	if !Batchable(OpBFS) || !Batchable(OpSSSP) || Batchable(OpCollab) || Batchable(OpRWR) {
		t.Error("Batchable op set wrong")
	}
}

// TestBatchMaxBatchSlots exercises all 32 bitmask slots at once,
// including bit 31 (the int32 sign bit in the dense mask maps).
func TestBatchMaxBatchSlots(t *testing.T) {
	dg := diffGraphs(t)[1]
	queries := make([]Query, MaxBatch)
	for i := range queries {
		start := dg.starts[i%len(dg.starts)]
		if i%2 == 0 {
			queries[i] = Query{Op: OpBFS, Start: start, Depth: 2 + i%3}
		} else {
			queries[i] = Query{Op: OpSSSP, Start: start,
				Target: dg.starts[(i+1)%len(dg.starts)], Depth: 4}
		}
	}
	b := NewBatch(dg.g.NumVertices())
	assertBatchMatchesSingle(t, "full-width", b, dg.g, queries)
}
