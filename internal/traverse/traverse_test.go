package traverse

import (
	"testing"
	"testing/quick"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

// path builds an undirected path 0-1-2-...-n-1.
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(graph.Undirected, n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	return b.Build()
}

func TestBFSDepthBound(t *testing.T) {
	g := pathGraph(10)
	for depth, want := range map[int]int{0: 1, 1: 2, 2: 3, 9: 10, 20: 10} {
		r, tr := BFS(g, Query{Op: OpBFS, Start: 0, Depth: depth})
		if r.Visited != want {
			t.Errorf("depth %d: visited %d, want %d", depth, r.Visited, want)
		}
		if len(tr.Touched) != want {
			t.Errorf("depth %d: touched %d, want %d", depth, len(tr.Touched), want)
		}
	}
}

func TestBFSVisitsNeighborhood(t *testing.T) {
	// Star: depth 1 from center visits everything; depth 1 from a
	// leaf visits leaf+center.
	b := graph.NewBuilder(graph.Undirected, 6)
	for i := 1; i < 6; i++ {
		b.AddEdge(0, graph.VertexID(i))
	}
	g := b.Build()
	if r, _ := BFS(g, Query{Op: OpBFS, Start: 0, Depth: 1}); r.Visited != 6 {
		t.Errorf("center depth1: %d, want 6", r.Visited)
	}
	if r, _ := BFS(g, Query{Op: OpBFS, Start: 3, Depth: 1}); r.Visited != 2 {
		t.Errorf("leaf depth1: %d, want 2", r.Visited)
	}
}

func TestBFSVertexPredicateBlocksExpansion(t *testing.T) {
	g := func() *graph.Graph {
		b := graph.NewBuilder(graph.Undirected, 3)
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		b.SetVertexProps(1, graph.Properties{"blocked": graph.Bool(true)})
		return b.Build()
	}()
	pred := func(p graph.Properties) bool { return !p["blocked"].IsTrue() }
	r, tr := BFS(g, Query{Op: OpBFS, Start: 0, Depth: 5, VertexPred: pred})
	// Vertex 1 is touched (props loaded) but not expanded, so 2 is
	// never reached.
	if r.Visited != 1 {
		t.Errorf("visited %d, want 1 (only the start passes)", r.Visited)
	}
	touchedTwo := false
	for _, v := range tr.Touched {
		if v == 2 {
			touchedTwo = true
		}
	}
	if touchedTwo {
		t.Error("vertex 2 should be unreachable through a blocked vertex")
	}
}

func TestBFSEdgePredicate(t *testing.T) {
	b := graph.NewBuilder(graph.Undirected, 3)
	b.AddEdgeFull(0, 1, 1, graph.Properties{"ok": graph.Bool(false)})
	b.AddEdgeFull(0, 2, 1, graph.Properties{"ok": graph.Bool(true)})
	g := b.Build()
	pred := func(p graph.Properties) bool { return p["ok"].IsTrue() }
	r, _ := BFS(g, Query{Op: OpBFS, Start: 0, Depth: 1, EdgePred: pred})
	if r.Visited != 2 {
		t.Errorf("visited %d, want 2 (start + vertex 2)", r.Visited)
	}
}

func TestBFSMaxVisits(t *testing.T) {
	g := pathGraph(100)
	r, _ := BFS(g, Query{Op: OpBFS, Start: 0, Depth: 99, MaxVisits: 5})
	if r.Visited != 5 {
		t.Errorf("visited %d, want capped 5", r.Visited)
	}
}

func TestBFSTraceAccounting(t *testing.T) {
	g := pathGraph(3)
	_, tr := BFS(g, Query{Op: OpBFS, Start: 0, Depth: 2})
	// Vertices 0,1,2 each expanded once → 3 record accesses. Vertex 0
	// scans 1 adjacency entry, vertex 1 scans 2, vertex 2 sits at the
	// depth bound and scans nothing → 3 scanned edges total.
	if len(tr.Accesses) != 3 {
		t.Fatalf("accesses = %d, want 3", len(tr.Accesses))
	}
	var scanned int32
	for _, a := range tr.Accesses {
		scanned += a.ScannedEdges
	}
	if scanned != 3 {
		t.Errorf("scanned edges = %d, want 3", scanned)
	}
	// Records carry adjacency bytes: every access is bigger than the
	// bare 64-byte vertex header.
	for i, a := range tr.Accesses {
		if a.Bytes <= 64 {
			t.Errorf("access %d bytes = %d, want > header (adjacency included)", i, a.Bytes)
		}
	}
	if tr.TotalBytes() <= 0 {
		t.Error("trace bytes should be positive")
	}
}

func TestSSSPOnPath(t *testing.T) {
	g := pathGraph(10)
	cases := []struct {
		target graph.VertexID
		bound  int
		found  bool
		length int
	}{
		{0, 4, true, 0},
		{1, 4, true, 1},
		{4, 4, true, 4},
		{5, 4, false, 0},
		{9, 9, true, 9},
		{9, 8, false, 0},
	}
	for _, c := range cases {
		r, _ := BoundedSSSP(g, Query{Op: OpSSSP, Start: 0, Target: c.target, Depth: c.bound})
		if r.Found != c.found {
			t.Errorf("target %d bound %d: found=%t, want %t", c.target, c.bound, r.Found, c.found)
			continue
		}
		if c.found && r.PathLen != c.length {
			t.Errorf("target %d bound %d: len=%d, want %d", c.target, c.bound, r.PathLen, c.length)
		}
	}
}

func TestSSSPFindsShortestNotJustAny(t *testing.T) {
	// Cycle 0-1-2-3-4-5-0: shortest 0→4 is 2 (via 5), not 4.
	b := graph.NewBuilder(graph.Undirected, 6)
	for i := 0; i < 6; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%6))
	}
	g := b.Build()
	r, _ := BoundedSSSP(g, Query{Op: OpSSSP, Start: 0, Target: 4, Depth: 6})
	if !r.Found || r.PathLen != 2 {
		t.Errorf("found=%t len=%d, want true/2", r.Found, r.PathLen)
	}
}

func TestSSSPAgainstReferenceBFS(t *testing.T) {
	g, err := graphgen.Random(graphgen.RandomConfig{NumVertices: 200, NumEdges: 600, Kind: graph.Undirected, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: full BFS distances from vertex 0.
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []graph.VertexID{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	const bound = 6
	for target := graph.VertexID(1); target < 60; target++ {
		r, _ := BoundedSSSP(g, Query{Op: OpSSSP, Start: 0, Target: target, Depth: bound})
		wantFound := dist[target] >= 0 && dist[target] <= bound
		if r.Found != wantFound {
			t.Errorf("target %d: found=%t, want %t (dist %d)", target, r.Found, wantFound, dist[target])
			continue
		}
		if wantFound && r.PathLen != dist[target] {
			t.Errorf("target %d: len=%d, want %d", target, r.PathLen, dist[target])
		}
	}
}

func TestCollabFilterKnown(t *testing.T) {
	// Products: A(0), B(1), C(2); customers: x(3), y(4), z(5).
	// x bought A,B; y bought A,B; z bought A,C.
	// Γ(A)={x,y,z}; Γ(B)={x,y}; s(A,B)=2/min(3,2)=1.0
	// Γ(C)={z}; s(A,C)=1/min(3,1)=1.0
	b := graph.NewBuilder(graph.Undirected, 6)
	b.AddEdge(3, 0)
	b.AddEdge(3, 1)
	b.AddEdge(4, 0)
	b.AddEdge(4, 1)
	b.AddEdge(5, 0)
	b.AddEdge(5, 2)
	g := b.Build()

	r, tr := CollabFilter(g, Query{Op: OpCollab, Start: 0, SimilarityThreshold: 0.9})
	if len(r.Recommendations) != 2 {
		t.Fatalf("recommendations = %v, want B and C", r.Recommendations)
	}
	for _, rec := range r.Recommendations {
		if rec.Similarity != 1.0 {
			t.Errorf("similarity(%d) = %g, want 1.0", rec.Product, rec.Similarity)
		}
	}
	// Threshold excludes partial overlap.
	r2, _ := CollabFilter(g, Query{Op: OpCollab, Start: 1, SimilarityThreshold: 0.99})
	// From B: buyers x,y; co-products: A with shared 2, min(2,3)=2 → 1.0.
	if len(r2.Recommendations) != 1 || r2.Recommendations[0].Product != 0 {
		t.Errorf("recs from B = %v, want [A]", r2.Recommendations)
	}
	if len(tr.Touched) == 0 || tr.Touched[0] != 0 {
		t.Error("trace should start at the query product")
	}
}

func TestCollabFilterIsolatedProduct(t *testing.T) {
	b := graph.NewBuilder(graph.Undirected, 2)
	b.AddEdge(0, 1)
	g := b.Build()
	// Vertex with no buyers in a separate component.
	b2 := graph.NewBuilder(graph.Undirected, 1)
	iso := b2.Build()
	r, _ := CollabFilter(iso, Query{Op: OpCollab, Start: 0, SimilarityThreshold: 0.5})
	if len(r.Recommendations) != 0 || r.Visited != 1 {
		t.Errorf("isolated: %+v", r)
	}
	_ = g
}

func TestRWRDeterministicAndLocal(t *testing.T) {
	g := pathGraph(50)
	q := Query{Op: OpRWR, Start: 25, Steps: 500, RestartProb: 0.3, TopK: 5, Seed: 99}
	r1, _ := RandomWalk(g, q)
	r2, _ := RandomWalk(g, q)
	if len(r1.Ranking) != len(r2.Ranking) {
		t.Fatal("RWR nondeterministic length")
	}
	for i := range r1.Ranking {
		if r1.Ranking[i] != r2.Ranking[i] {
			t.Fatal("RWR nondeterministic ranking")
		}
	}
	if len(r1.Ranking) == 0 || len(r1.Ranking) > 5 {
		t.Fatalf("TopK violated: %d", len(r1.Ranking))
	}
	// Restarts keep the walk local: top hits are near the start.
	top := r1.Ranking[0].Vertex
	if top < 20 || top > 30 {
		t.Errorf("top RWR hit %d is far from start 25", top)
	}
}

func TestRWRFollowsWeights(t *testing.T) {
	// Start connected to two neighbors: weight 0.99 vs 0.01 — the
	// heavy neighbor must dominate visit counts.
	b := graph.NewBuilder(graph.Undirected, 3)
	b.AddWeightedEdge(0, 1, 0.99)
	b.AddWeightedEdge(0, 2, 0.01)
	g := b.Build()
	r, _ := RandomWalk(g, Query{Op: OpRWR, Start: 0, Steps: 2000, RestartProb: 0.5, Seed: 5})
	var s1, s2 float64
	for _, rk := range r.Ranking {
		switch rk.Vertex {
		case 1:
			s1 = rk.Score
		case 2:
			s2 = rk.Score
		}
	}
	if s1 <= 5*s2 {
		t.Errorf("heavy neighbor score %g should dwarf light neighbor %g", s1, s2)
	}
}

func TestRWRDeadEnd(t *testing.T) {
	// Isolated start: every step dead-ends and restarts; no crash.
	b := graph.NewBuilder(graph.Undirected, 1)
	g := b.Build()
	r, _ := RandomWalk(g, Query{Op: OpRWR, Start: 0, Steps: 100, RestartProb: 0.1, Seed: 1})
	if len(r.Ranking) != 0 {
		t.Errorf("ranking on isolated vertex = %v", r.Ranking)
	}
}

func TestExecuteDispatchAndValidation(t *testing.T) {
	g := pathGraph(5)
	if _, _, err := Execute(g, Query{Op: OpBFS, Start: 0, Depth: 2}); err != nil {
		t.Errorf("BFS: %v", err)
	}
	if _, _, err := Execute(g, Query{Op: OpSSSP, Start: 0, Target: 3, Depth: 4}); err != nil {
		t.Errorf("SSSP: %v", err)
	}
	if _, _, err := Execute(g, Query{Op: OpCollab, Start: 0, SimilarityThreshold: 0.5}); err != nil {
		t.Errorf("Collab: %v", err)
	}
	if _, _, err := Execute(g, Query{Op: OpRWR, Start: 0, Steps: 10, RestartProb: 0.2, Seed: 1}); err != nil {
		t.Errorf("RWR: %v", err)
	}

	bad := []Query{
		{Op: OpBFS, Start: -1, Depth: 1},
		{Op: OpBFS, Start: 99, Depth: 1},
		{Op: OpBFS, Start: 0, Depth: -1},
		{Op: OpSSSP, Start: 0, Target: 99, Depth: 2},
		{Op: OpSSSP, Start: 0, Target: 1, Depth: 0},
		{Op: OpCollab, Start: 0, SimilarityThreshold: 1.5},
		{Op: OpRWR, Start: 0, Steps: 0},
		{Op: OpRWR, Start: 0, Steps: 5, RestartProb: 1.0},
		{Op: Op(42), Start: 0},
	}
	for i, q := range bad {
		if _, _, err := Execute(g, q); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpBFS: "bfs", OpSSSP: "sssp", OpCollab: "collab", OpRWR: "rwr"} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q", op, op.String())
		}
	}
}

func TestSSSPMaxVisitsCapsWork(t *testing.T) {
	// A hub graph: start and target connected through a huge hub.
	b := graph.NewBuilder(graph.Undirected, 1002)
	for i := 2; i < 1002; i++ {
		b.AddEdge(0, graph.VertexID(i))
	}
	b.AddEdge(0, 1)
	g := b.Build()

	// Uncapped: finds 0-1 directly but labels the whole hub fan.
	full, _ := BoundedSSSP(g, Query{Op: OpSSSP, Start: 0, Target: 1, Depth: 2})
	if !full.Found || full.PathLen != 1 {
		t.Fatalf("uncapped: %+v", full)
	}
	// Capped: visits bounded; may or may not find, but must not
	// explode.
	capped, tr := BoundedSSSP(g, Query{Op: OpSSSP, Start: 0, Target: 1, Depth: 2, MaxVisits: 50})
	if capped.Visited > 55 {
		t.Errorf("capped search visited %d, want <= ~50", capped.Visited)
	}
	if len(tr.Touched) > 55 {
		t.Errorf("capped trace touched %d", len(tr.Touched))
	}
}

func TestSSSPCapStillFindsEasyPaths(t *testing.T) {
	g := pathGraph(20)
	r, _ := BoundedSSSP(g, Query{Op: OpSSSP, Start: 0, Target: 3, Depth: 4, MaxVisits: 100})
	if !r.Found || r.PathLen != 3 {
		t.Errorf("capped easy path: %+v", r)
	}
}

// Property: BFS visited count is monotone in depth and MaxVisits caps
// are respected exactly.
func TestBFSMonotoneQuick(t *testing.T) {
	g, err := graphgen.Random(graphgen.RandomConfig{NumVertices: 300, NumEdges: 900, Kind: graph.Undirected, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(startRaw uint16, depthRaw, capRaw uint8) bool {
		start := graph.VertexID(int(startRaw) % 300)
		depth := int(depthRaw) % 5
		cap := int(capRaw)%60 + 1
		shallow, _ := BFS(g, Query{Op: OpBFS, Start: start, Depth: depth})
		deep, _ := BFS(g, Query{Op: OpBFS, Start: start, Depth: depth + 1})
		if deep.Visited < shallow.Visited {
			return false
		}
		capped, _ := BFS(g, Query{Op: OpBFS, Start: start, Depth: depth, MaxVisits: cap})
		return capped.Visited <= cap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the trace's Touched list is exactly the set of distinct
// accessed vertices, in first-access order.
func TestTraceTouchedConsistencyQuick(t *testing.T) {
	g, err := graphgen.Random(graphgen.RandomConfig{NumVertices: 200, NumEdges: 700, Kind: graph.Undirected, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(startRaw uint16, opRaw uint8) bool {
		start := graph.VertexID(int(startRaw) % 200)
		var q Query
		switch opRaw % 3 {
		case 0:
			q = Query{Op: OpBFS, Start: start, Depth: 2, MaxVisits: 50}
		case 1:
			q = Query{Op: OpSSSP, Start: start, Target: graph.VertexID((int(startRaw) * 3) % 200), Depth: 4}
		default:
			q = Query{Op: OpRWR, Start: start, Steps: 100, RestartProb: 0.3, Seed: uint64(startRaw)}
		}
		_, tr, err := Execute(g, q)
		if err != nil {
			return false
		}
		seen := map[graph.VertexID]bool{}
		var order []graph.VertexID
		for _, a := range tr.Accesses {
			if !seen[a.Vertex] {
				seen[a.Vertex] = true
				order = append(order, a.Vertex)
			}
		}
		if len(order) != len(tr.Touched) {
			return false
		}
		for i := range order {
			if order[i] != tr.Touched[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
