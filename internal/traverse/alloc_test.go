package traverse

import (
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
)

// Allocation-regression guards: a warmed Workspace must run each
// kernel with (near) zero heap allocations. The budgets below are
// deliberate constants, not measurements — raising one is an API
// decision, not a flaky-test fix:
//
//   - maxAllocsBFS/SSSP/Collab = 0: every structure these kernels
//     touch (dense scratch, ring, frontiers, side lists, trace,
//     result scratch) is reused; nothing may escape per query.
//   - maxAllocsRWR = 0: the RNG is a stack value (xrand.Reseed), the
//     ranking is built in the pooled buffer.
//
// Budgets ≤ 3 are required by the PR acceptance criteria; we hold the
// kernels to the stricter zero.
//
// These tests must NOT run in parallel: testing.AllocsPerRun counts
// process-wide mallocs, so a concurrent test's allocations would leak
// into the measurement.
const (
	maxAllocsBFS    = 0
	maxAllocsSSSP   = 0
	maxAllocsCollab = 0
	maxAllocsRWR    = 0
)

func allocFixture(t testing.TB) (*graph.Graph, *graphgen.PurchaseGraph) {
	t.Helper()
	pl, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 2000, NumEdges: 10000, Exponent: 2.3,
		Kind: graph.Undirected, Seed: 7, VertexMeta: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	bip, err := graphgen.Purchases(graphgen.PurchaseConfig{
		NumCustomers: 800, NumProducts: 300,
		PurchasesPerCustomerMean: 8, PopularityExponent: 2.3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl, bip
}

func checkAllocs(t *testing.T, name string, budget float64, run func()) {
	t.Helper()
	// Warm the workspace so one-time capacity growth is excluded; the
	// AllocsPerRun warmup call alone would fold growth into run 1 of 1.
	run()
	run()
	if got := testing.AllocsPerRun(10, run); got > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.0f", name, got, budget)
	}
}

func TestKernelAllocBudgets(t *testing.T) {
	pl, bip := allocFixture(t)
	ws := NewWorkspace(pl.NumVertices())
	wsBip := NewWorkspace(bip.Graph.NumVertices())
	hub := hubAndLeaf(pl)[0]

	checkAllocs(t, "BFS", maxAllocsBFS, func() {
		ws.BFS(pl, Query{Op: OpBFS, Start: hub, Depth: 3})
	})
	checkAllocs(t, "BoundedSSSP", maxAllocsSSSP, func() {
		ws.BoundedSSSP(pl, Query{Op: OpSSSP, Start: hub, Target: hub ^ 1, Depth: 5})
	})
	checkAllocs(t, "CollabFilter", maxAllocsCollab, func() {
		wsBip.CollabFilter(bip.Graph, Query{Op: OpCollab, Start: bip.ProductVertex(0), SimilarityThreshold: 0.1})
	})
	checkAllocs(t, "RandomWalk", maxAllocsRWR, func() {
		ws.RandomWalk(pl, Query{Op: OpRWR, Start: hub, Steps: 500, RestartProb: 0.15, TopK: 10, Seed: 3})
	})
}

// ExecuteIn adds only dispatch and validation on top of the kernels;
// it must stay on the same zero-alloc budget.
func TestExecuteInAllocBudget(t *testing.T) {
	pl, _ := allocFixture(t)
	ws := NewWorkspace(pl.NumVertices())
	hub := hubAndLeaf(pl)[0]
	q := Query{Op: OpBFS, Start: hub, Depth: 3}
	checkAllocs(t, "ExecuteIn/BFS", maxAllocsBFS, func() {
		if _, _, err := ExecuteIn(ws, pl, q); err != nil {
			t.Fatal(err)
		}
	})
}
