package traverse

import (
	"sort"

	"subtrav/internal/graph"
	"subtrav/internal/xrand"
)

// RandomWalk implements local random walk with restart (Section II,
// example 3): a particle starts at q.Start (the corpus image the query
// mapped to), and at each step either restarts with probability
// q.RestartProb or moves to a neighbor u with probability
// s_{v,u}/Z, where s is the edge similarity weight and Z normalizes
// over the restart target's similarity and the neighborhood (the
// paper's formulation). Visit frequencies over q.Steps steps score
// vertices; the top q.TopK (excluding the start) are returned as the
// refined matches.
//
// The walk is deterministic given q.Seed.
func RandomWalk(g *graph.Graph, q Query) (Result, *Trace) {
	return NewWorkspace(g.NumVertices()).RandomWalk(g, q)
}

// RandomWalk is the dense-scratch kernel: visit counts accumulate in
// an epoch-stamped map plus a first-visit-ordered side list, the RNG
// lives on the stack (Reseed, no per-query generator allocation), and
// the ranking is built in the pooled result buffer. Pinned bit-for-bit
// against RandomWalkReference.
//
//vet:hotpath
func (ws *Workspace) RandomWalk(g *graph.Graph, q Query) (Result, *Trace) {
	ws.begin(g)
	var rng xrand.RNG
	rng.Reseed(q.Seed)

	start := q.Start
	lastAcc := ws.touch(g, start)
	counts := &ws.scratch.mapA
	cur := start
	visited := 1

	for step := 0; step < q.Steps; step++ {
		if q.RestartProb > 0 && rng.Float64() < q.RestartProb {
			cur = start
			// Restart revisits the cached start record.
			lastAcc = ws.touch(g, start)
			continue
		}
		lo, hi := g.EdgeSlots(cur)
		if hi == lo {
			cur = start // dead end: restart
			lastAcc = ws.touch(g, start)
			continue
		}
		// Normalizer Z over the incident similarities (edge weights
		// are inline in the current record: CPU only).
		ws.trace.chargeScan(lastAcc, int(hi-lo))
		var z float64
		for s := lo; s < hi; s++ {
			z += float64(g.Weight(g.LogicalEdge(s)))
		}
		if z <= 0 {
			cur = start
			continue
		}
		pick := rng.Float64() * z
		next := g.TargetAt(hi - 1)
		for s := lo; s < hi; s++ {
			pick -= float64(g.Weight(g.LogicalEdge(s)))
			if pick <= 0 {
				next = g.TargetAt(s)
				break
			}
		}
		cur = next
		if !ws.scratch.seen.Contains(cur) {
			visited++
		}
		lastAcc = ws.touch(g, cur)
		if counts.Inc(cur, 1) == 1 {
			ws.orderA = append(ws.orderA, cur)
		}
	}

	ranking := ws.ranking[:0]
	for _, v := range ws.orderA {
		if v == start {
			continue
		}
		c, _ := counts.Get(v)
		ranking = append(ranking, Ranked{Vertex: v, Score: float64(c) / float64(q.Steps)})
	}
	ws.ranking = ranking
	ws.rankSorter.s = ranking
	sort.Sort(&ws.rankSorter)
	if q.TopK > 0 && len(ranking) > q.TopK {
		ranking = ranking[:q.TopK]
	}
	if len(ranking) == 0 {
		ranking = nil // match the reference's nil-when-empty Result
	}
	return Result{Visited: visited, Ranking: ranking}, &ws.trace
}
