package traverse

import (
	"sort"

	"subtrav/internal/graph"
	"subtrav/internal/xrand"
)

// RandomWalk implements local random walk with restart (Section II,
// example 3): a particle starts at q.Start (the corpus image the query
// mapped to), and at each step either restarts with probability
// q.RestartProb or moves to a neighbor u with probability
// s_{v,u}/Z, where s is the edge similarity weight and Z normalizes
// over the restart target's similarity and the neighborhood (the
// paper's formulation). Visit frequencies over q.Steps steps score
// vertices; the top q.TopK (excluding the start) are returned as the
// refined matches.
//
// The walk is deterministic given q.Seed.
func RandomWalk(g *graph.Graph, q Query) (Result, *Trace) {
	trace := &Trace{}
	seen := make(map[graph.VertexID]bool)
	rng := xrand.New(q.Seed)

	start := q.Start
	lastAcc := trace.touchVertex(g, start, seen)
	counts := make(map[graph.VertexID]int)
	cur := start
	visited := 1

	for step := 0; step < q.Steps; step++ {
		if q.RestartProb > 0 && rng.Float64() < q.RestartProb {
			cur = start
			// Restart revisits the cached start record.
			lastAcc = trace.touchVertex(g, start, seen)
			continue
		}
		lo, hi := g.EdgeSlots(cur)
		if hi == lo {
			cur = start // dead end: restart
			lastAcc = trace.touchVertex(g, start, seen)
			continue
		}
		// Normalizer Z over the incident similarities (edge weights
		// are inline in the current record: CPU only).
		trace.chargeScan(lastAcc, int(hi-lo))
		var z float64
		for s := lo; s < hi; s++ {
			z += float64(g.Weight(g.LogicalEdge(s)))
		}
		if z <= 0 {
			cur = start
			continue
		}
		pick := rng.Float64() * z
		next := g.TargetAt(hi - 1)
		for s := lo; s < hi; s++ {
			pick -= float64(g.Weight(g.LogicalEdge(s)))
			if pick <= 0 {
				next = g.TargetAt(s)
				break
			}
		}
		cur = next
		if !seen[cur] {
			visited++
		}
		lastAcc = trace.touchVertex(g, cur, seen)
		counts[cur]++
	}

	ranking := make([]Ranked, 0, len(counts))
	for v, c := range counts {
		if v == start {
			continue
		}
		ranking = append(ranking, Ranked{Vertex: v, Score: float64(c) / float64(q.Steps)})
	}
	sort.Slice(ranking, func(i, j int) bool {
		if ranking[i].Score != ranking[j].Score {
			return ranking[i].Score > ranking[j].Score
		}
		return ranking[i].Vertex < ranking[j].Vertex
	})
	if q.TopK > 0 && len(ranking) > q.TopK {
		ranking = ranking[:q.TopK]
	}
	return Result{Visited: visited, Ranking: ranking}, trace
}
