package traverse

import (
	"sort"

	"subtrav/internal/graph"
	"subtrav/internal/xrand"
)

// The reference kernels are the original map-based traversal engines,
// kept as the executable specification the Workspace kernels are
// pinned against: the differential tests require identical Results
// and bit-identical Trace.Accesses/Touched sequences between the two
// implementations on every graph family. They allocate per query and
// are not used on the hot path.
//
// Determinism note: the reference kernels iterate hop-2 state in
// insertion order through explicit side lists (buyerOrder,
// productOrder, visitOrder) rather than ranging over the membership
// maps. Ranging a Go map replays in randomized order, which made two
// runs of the same seeded CollabFilter query emit trace accesses —
// and therefore visit signatures and cache evictions — in different
// orders. A spec must be deterministic to be pinnable, so the fix
// lands here as well as in the Workspace kernels (which get it for
// free from their compact side lists).

// BFSReference is the map-based bounded-depth predicate BFS; see BFS
// for semantics.
func BFSReference(g *graph.Graph, q Query) (Result, *Trace) {
	trace := &Trace{}
	seen := make(map[graph.VertexID]bool)
	type frontierItem struct {
		v     graph.VertexID
		depth int
	}
	queue := []frontierItem{{q.Start, 0}}
	enqueued := map[graph.VertexID]bool{q.Start: true}
	visited := 0

	for len(queue) > 0 {
		item := queue[0]
		queue = queue[1:]
		v := item.v

		acc := trace.touchVertex(g, v, seen)
		if q.VertexPred != nil && !q.VertexPred(g.VertexProps(v)) {
			continue
		}
		visited++
		if q.MaxVisits > 0 && visited >= q.MaxVisits {
			break
		}
		if item.depth >= q.Depth {
			continue
		}
		lo, hi := g.EdgeSlots(v)
		trace.chargeScan(acc, int(hi-lo))
		for s := lo; s < hi; s++ {
			if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
				continue
			}
			u := g.TargetAt(s)
			if enqueued[u] {
				continue
			}
			enqueued[u] = true
			queue = append(queue, frontierItem{u, item.depth + 1})
		}
	}
	return Result{Visited: visited}, trace
}

// BoundedSSSPReference is the map-based bidirectional bounded SSSP;
// see BoundedSSSP for semantics.
func BoundedSSSPReference(g *graph.Graph, q Query) (Result, *Trace) {
	trace := &Trace{}
	seen := make(map[graph.VertexID]bool)

	if q.Start == q.Target {
		trace.touchVertex(g, q.Start, seen)
		return Result{Visited: 1, Found: true, PathLen: 0}, trace
	}

	distA := map[graph.VertexID]int{q.Start: 0}
	distB := map[graph.VertexID]int{q.Target: 0}
	frontierA := []graph.VertexID{q.Start}
	frontierB := []graph.VertexID{q.Target}
	accA := map[graph.VertexID]int{q.Start: trace.touchVertex(g, q.Start, seen)}
	accB := map[graph.VertexID]int{q.Target: trace.touchVertex(g, q.Target, seen)}
	visited := 2
	capped := false // MaxVisits reached: the search gives up expanding

	limitA := (q.Depth + 1) / 2 // ceil(δ/2)
	limitB := q.Depth / 2       // floor(δ/2); combined = δ
	depthA, depthB := 0, 0
	best := -1

	expand := func(frontier []graph.VertexID, mine, other map[graph.VertexID]int, accIdx map[graph.VertexID]int, depth int) []graph.VertexID {
		var next []graph.VertexID
		for _, v := range frontier {
			if capped {
				break
			}
			lo, hi := g.EdgeSlots(v)
			trace.chargeScan(accIdx[v], int(hi-lo))
			for s := lo; s < hi; s++ {
				if q.EdgePred != nil && !q.EdgePred(g.EdgeProps(g.LogicalEdge(s))) {
					continue
				}
				u := g.TargetAt(s)
				if _, ok := mine[u]; ok {
					continue
				}
				mine[u] = depth + 1
				accIdx[u] = trace.touchVertex(g, u, seen)
				visited++
				if d, ok := other[u]; ok {
					total := depth + 1 + d
					if best < 0 || total < best {
						best = total
					}
					continue
				}
				if q.MaxVisits > 0 && visited >= q.MaxVisits {
					capped = true
					break
				}
				next = append(next, u)
			}
		}
		return next
	}

	for !capped && ((depthA < limitA && len(frontierA) > 0) || (depthB < limitB && len(frontierB) > 0)) {
		// Alternate sides, smaller frontier first, the usual
		// bidirectional heuristic.
		expandA := depthA < limitA && len(frontierA) > 0 &&
			(depthB >= limitB || len(frontierB) == 0 || len(frontierA) <= len(frontierB))
		if expandA {
			frontierA = expand(frontierA, distA, distB, accA, depthA)
			depthA++
		} else {
			frontierB = expand(frontierB, distB, distA, accB, depthB)
			depthB++
		}
		if best >= 0 && best <= depthA+depthB {
			// No shorter meeting can appear once both processed
			// depths cover the best found length.
			break
		}
	}
	if best >= 0 && best <= q.Depth {
		return Result{Visited: visited, Found: true, PathLen: best}, trace
	}
	return Result{Visited: visited, Found: false}, trace
}

// CollabFilterReference is the map-based collaborative filter; see
// CollabFilter for semantics.
func CollabFilterReference(g *graph.Graph, q Query) (Result, *Trace) {
	trace := &Trace{}
	seen := make(map[graph.VertexID]bool)
	v := q.Start
	vAcc := trace.touchVertex(g, v, seen)
	visited := 1

	// Hop 1: buyers of v, in adjacency (= insertion) order.
	buyers := make(map[graph.VertexID]bool)
	buyerAcc := make(map[graph.VertexID]int)
	var buyerOrder []graph.VertexID
	lo, hi := g.EdgeSlots(v)
	trace.chargeScan(vAcc, int(hi-lo))
	for s := lo; s < hi; s++ {
		u := g.TargetAt(s)
		if !buyers[u] {
			buyers[u] = true
			buyerAcc[u] = trace.touchVertex(g, u, seen)
			buyerOrder = append(buyerOrder, u)
			visited++
		}
	}
	degV := len(buyers)
	if degV == 0 {
		return Result{Visited: visited}, trace
	}

	// Hop 2: co-purchased products, counting shared buyers. Iterate
	// buyers and record products in first-touch order — not map-range
	// order — so the emitted trace is identical run to run.
	shared := make(map[graph.VertexID]int)
	var productOrder []graph.VertexID
	for _, u := range buyerOrder {
		ulo, uhi := g.EdgeSlots(u)
		trace.chargeScan(buyerAcc[u], int(uhi-ulo))
		for s := ulo; s < uhi; s++ {
			p := g.TargetAt(s)
			if p == v {
				continue
			}
			if shared[p] == 0 {
				trace.touchVertex(g, p, seen)
				productOrder = append(productOrder, p)
				visited++
			}
			shared[p]++
		}
	}

	var recs []Recommendation
	for _, p := range productOrder {
		count := shared[p]
		degP := g.Degree(p)
		minDeg := degV
		if degP < minDeg {
			minDeg = degP
		}
		if minDeg == 0 {
			continue
		}
		sim := float64(count) / float64(minDeg)
		if sim > q.SimilarityThreshold {
			recs = append(recs, Recommendation{Product: p, Similarity: sim})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Similarity != recs[j].Similarity {
			return recs[i].Similarity > recs[j].Similarity
		}
		return recs[i].Product < recs[j].Product
	})
	return Result{Visited: visited, Recommendations: recs}, trace
}

// RandomWalkReference is the map-based random walk with restart; see
// RandomWalk for semantics.
func RandomWalkReference(g *graph.Graph, q Query) (Result, *Trace) {
	trace := &Trace{}
	seen := make(map[graph.VertexID]bool)
	rng := xrand.New(q.Seed)

	start := q.Start
	lastAcc := trace.touchVertex(g, start, seen)
	counts := make(map[graph.VertexID]int)
	var visitOrder []graph.VertexID
	cur := start
	visited := 1

	for step := 0; step < q.Steps; step++ {
		if q.RestartProb > 0 && rng.Float64() < q.RestartProb {
			cur = start
			// Restart revisits the cached start record.
			lastAcc = trace.touchVertex(g, start, seen)
			continue
		}
		lo, hi := g.EdgeSlots(cur)
		if hi == lo {
			cur = start // dead end: restart
			lastAcc = trace.touchVertex(g, start, seen)
			continue
		}
		// Normalizer Z over the incident similarities (edge weights
		// are inline in the current record: CPU only).
		trace.chargeScan(lastAcc, int(hi-lo))
		var z float64
		for s := lo; s < hi; s++ {
			z += float64(g.Weight(g.LogicalEdge(s)))
		}
		if z <= 0 {
			cur = start
			continue
		}
		pick := rng.Float64() * z
		next := g.TargetAt(hi - 1)
		for s := lo; s < hi; s++ {
			pick -= float64(g.Weight(g.LogicalEdge(s)))
			if pick <= 0 {
				next = g.TargetAt(s)
				break
			}
		}
		cur = next
		if !seen[cur] {
			visited++
		}
		lastAcc = trace.touchVertex(g, cur, seen)
		if counts[cur] == 0 {
			visitOrder = append(visitOrder, cur)
		}
		counts[cur]++
	}

	ranking := make([]Ranked, 0, len(counts))
	for _, v := range visitOrder {
		if v == start {
			continue
		}
		ranking = append(ranking, Ranked{Vertex: v, Score: float64(counts[v]) / float64(q.Steps)})
	}
	sort.Slice(ranking, func(i, j int) bool {
		if ranking[i].Score != ranking[j].Score {
			return ranking[i].Score > ranking[j].Score
		}
		return ranking[i].Vertex < ranking[j].Vertex
	})
	if q.TopK > 0 && len(ranking) > q.TopK {
		ranking = ranking[:q.TopK]
	}
	if len(ranking) == 0 {
		ranking = nil // normalize: Result carries nil, never empty-non-nil
	}
	return Result{Visited: visited, Ranking: ranking}, trace
}

// ExecuteReference dispatches a query to its reference engine —
// Execute's executable spec, used by differential tests and the
// kernel benchmark's before/after baseline.
func ExecuteReference(g *graph.Graph, q Query) (Result, *Trace, error) {
	if err := q.Validate(g); err != nil {
		return Result{}, nil, err
	}
	switch q.Op {
	case OpBFS:
		r, tr := BFSReference(g, q)
		return r, tr, nil
	case OpSSSP:
		r, tr := BoundedSSSPReference(g, q)
		return r, tr, nil
	case OpCollab:
		r, tr := CollabFilterReference(g, q)
		return r, tr, nil
	case OpRWR:
		r, tr := RandomWalkReference(g, q)
		return r, tr, nil
	}
	return Result{}, nil, errUnreachableOp(q.Op)
}
