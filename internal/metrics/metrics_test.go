package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestQuantile(t *testing.T) {
	samples := []int64{50, 10, 40, 20, 30} // sorted: 10..50
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10}, {0.2, 10}, {0.5, 30}, {0.8, 40}, {1, 50},
		{-0.5, 10}, {1.5, 50}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(samples, c.q); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	samples := []int64{3, 1, 2}
	Quantile(samples, 0.5)
	if samples[0] != 3 || samples[1] != 1 || samples[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty mean/max should be 0")
	}
	s := []int64{1, 2, 3, 10}
	if Mean(s) != 4 {
		t.Errorf("Mean = %g, want 4", Mean(s))
	}
	if Max(s) != 10 {
		t.Errorf("Max = %d, want 10", Max(s))
	}
}

func TestSummarizeLatencies(t *testing.T) {
	nanos := make([]int64, 100)
	for i := range nanos {
		nanos[i] = int64(i+1) * 1000
	}
	sum := SummarizeLatencies(nanos)
	if sum.Count != 100 {
		t.Errorf("Count = %d", sum.Count)
	}
	if sum.P50 != 50*time.Microsecond {
		t.Errorf("P50 = %v", sum.P50)
	}
	if sum.P95 != 95*time.Microsecond {
		t.Errorf("P95 = %v", sum.P95)
	}
	if sum.Max != 100*time.Microsecond {
		t.Errorf("Max = %v", sum.Max)
	}
	if sum.String() == "" {
		t.Error("String should render")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]int64{10, 10, 10}); got != 1.0 {
		t.Errorf("balanced = %g, want 1", got)
	}
	if got := Imbalance([]int64{30, 0, 0}); got != 3.0 {
		t.Errorf("all-on-one = %g, want 3", got)
	}
	if Imbalance(nil) != 0 || Imbalance([]int64{0, 0}) != 0 {
		t.Error("degenerate imbalance should be 0")
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(100, time.Second); got != 100 {
		t.Errorf("throughput = %g, want 100", got)
	}
	if got := Throughput(50, 500*time.Millisecond); got != 100 {
		t.Errorf("throughput = %g, want 100", got)
	}
	if Throughput(10, 0) != 0 {
		t.Error("zero makespan should yield 0")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(raw []int16, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int64, len(raw))
		for i, r := range raw {
			samples[i] = int64(r)
		}
		q1 := float64(qa%101) / 100
		q2 := float64(qb%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(samples, q1), Quantile(samples, q2)
		return v1 <= v2 && v1 >= Quantile(samples, 0) && v2 <= Quantile(samples, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: imbalance is always >= 1 when any work exists.
func TestImbalanceLowerBoundQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		perUnit := make([]int64, len(raw))
		var sum int64
		for i, r := range raw {
			perUnit[i] = int64(r)
			sum += int64(r)
		}
		im := Imbalance(perUnit)
		if sum == 0 {
			return im == 0
		}
		return im >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileSorted(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10}, {0.2, 10}, {0.5, 30}, {0.8, 40}, {1, 50},
		{-0.5, 10}, {1.5, 50}, // clamped
	}
	for _, c := range cases {
		if got := QuantileSorted(sorted, c.q); got != c.want {
			t.Errorf("QuantileSorted(%g) = %d, want %d", c.q, got, c.want)
		}
	}
	if QuantileSorted(nil, 0.5) != 0 {
		t.Error("empty sorted quantile should be 0")
	}
}

// SummarizeLatencies must agree with the per-quantile path it
// replaced (sort once, index four times vs sort four times).
func TestSummarizeLatenciesMatchesQuantile(t *testing.T) {
	nanos := []int64{900, 100, 500, 300, 700, 200, 800, 400, 600, 1000}
	sum := SummarizeLatencies(nanos)
	for _, c := range []struct {
		got  time.Duration
		q    float64
		name string
	}{
		{sum.P50, 0.50, "P50"},
		{sum.P95, 0.95, "P95"},
		{sum.P99, 0.99, "P99"},
	} {
		if want := time.Duration(Quantile(nanos, c.q)); c.got != want {
			t.Errorf("%s = %v, want %v", c.name, c.got, want)
		}
	}
	if want := time.Duration(Max(nanos)); sum.Max != want {
		t.Errorf("Max = %v, want %v", sum.Max, want)
	}
}

// benchLatencies is a deterministic pseudo-random sample set shared by
// the summary benchmarks.
func benchLatencies(n int) []int64 {
	nanos := make([]int64, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range nanos {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		nanos[i] = int64(state % 10_000_000)
	}
	return nanos
}

// BenchmarkSummarizeLatencies measures the sort-once digest.
func BenchmarkSummarizeLatencies(b *testing.B) {
	nanos := benchLatencies(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SummarizeLatencies(nanos)
	}
}

// BenchmarkSummarizeLatenciesSortPerQuantile is the path
// SummarizeLatencies replaced — one full sorted copy per quantile —
// kept as the baseline that proves the win.
func BenchmarkSummarizeLatenciesSortPerQuantile(b *testing.B) {
	nanos := benchLatencies(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LatencySummary{
			Count: len(nanos),
			Mean:  time.Duration(Mean(nanos)),
			P50:   time.Duration(Quantile(nanos, 0.50)),
			P95:   time.Duration(Quantile(nanos, 0.95)),
			P99:   time.Duration(Quantile(nanos, 0.99)),
			Max:   time.Duration(Max(nanos)),
		}
	}
}
