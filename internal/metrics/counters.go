package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters tracks the lifecycle of every query presented to a live
// runtime. The accounting is a partition: each submitted query ends in
// exactly one of Completed, Rejected or TimedOut, so at quiescence
//
//	Submitted = Completed + Rejected + TimedOut
//
// holds exactly — the conservation invariant the chaos suite asserts.
// Failed and DegradedRounds are informational side-channels (a failed
// execution still *completes*: its response was delivered).
type Counters struct {
	// Submitted counts valid queries presented for admission.
	Submitted atomic.Int64
	// Completed counts queries whose response was delivered after
	// execution (including executions that returned an error).
	Completed atomic.Int64
	// Rejected counts queries refused at admission (backpressure).
	Rejected atomic.Int64
	// TimedOut counts queries dropped because their deadline expired
	// or their context was cancelled before execution finished.
	TimedOut atomic.Int64

	// Failed counts the subset of Completed whose execution returned
	// an error (e.g. an injected transient disk fault that exhausted
	// its retry).
	Failed atomic.Int64
	// DegradedRounds counts scheduling rounds that bypassed the
	// configured scheduler for the least-loaded fallback after
	// repeated scheduler-round timeouts.
	DegradedRounds atomic.Int64
	// DiskFaultRetries counts transient disk errors absorbed by the
	// runtime's single internal retry.
	DiskFaultRetries atomic.Int64
}

// Snapshot is a point-in-time copy of Counters.
type Snapshot struct {
	Submitted, Completed, Rejected, TimedOut int64
	Failed, DegradedRounds, DiskFaultRetries int64
}

// Snapshot copies the counters. Individual loads are atomic but the
// set is not a consistent cut while the runtime is hot; at quiescence
// it is exact.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Submitted:        c.Submitted.Load(),
		Completed:        c.Completed.Load(),
		Rejected:         c.Rejected.Load(),
		TimedOut:         c.TimedOut.Load(),
		Failed:           c.Failed.Load(),
		DegradedRounds:   c.DegradedRounds.Load(),
		DiskFaultRetries: c.DiskFaultRetries.Load(),
	}
}

// InFlight returns the queries admitted but not yet resolved.
func (s Snapshot) InFlight() int64 {
	return s.Submitted - s.Completed - s.Rejected - s.TimedOut
}

// Conserved reports the conservation invariant
// Submitted = Completed + Rejected + TimedOut.
func (s Snapshot) Conserved() bool { return s.InFlight() == 0 }

func (s Snapshot) String() string {
	return fmt.Sprintf("submitted=%d completed=%d rejected=%d timed-out=%d failed=%d degraded-rounds=%d disk-retries=%d",
		s.Submitted, s.Completed, s.Rejected, s.TimedOut, s.Failed, s.DegradedRounds, s.DiskFaultRetries)
}
