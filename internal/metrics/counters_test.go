package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersConservation(t *testing.T) {
	t.Parallel()
	var c Counters
	c.Submitted.Add(10)
	c.Completed.Add(6)
	c.Rejected.Add(3)
	c.TimedOut.Add(1)
	s := c.Snapshot()
	if !s.Conserved() {
		t.Errorf("conserved = false for %v", s)
	}
	if s.InFlight() != 0 {
		t.Errorf("in-flight = %d", s.InFlight())
	}
	c.Submitted.Add(2)
	s = c.Snapshot()
	if s.Conserved() {
		t.Error("conserved with 2 in flight")
	}
	if s.InFlight() != 2 {
		t.Errorf("in-flight = %d, want 2", s.InFlight())
	}
}

func TestCountersConcurrent(t *testing.T) {
	t.Parallel()
	var c Counters
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Submitted.Add(1)
				switch (w + i) % 3 {
				case 0:
					c.Completed.Add(1)
				case 1:
					c.Rejected.Add(1)
				case 2:
					c.TimedOut.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Submitted != workers*per {
		t.Errorf("submitted = %d", s.Submitted)
	}
	if !s.Conserved() {
		t.Errorf("not conserved: %v", s)
	}
}

func TestSnapshotString(t *testing.T) {
	t.Parallel()
	var c Counters
	c.Submitted.Add(5)
	c.Completed.Add(5)
	c.Failed.Add(2)
	got := c.Snapshot().String()
	for _, want := range []string{"submitted=5", "completed=5", "failed=2", "rejected=0"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}
