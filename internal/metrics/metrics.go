// Package metrics provides the small statistical helpers shared by
// the simulator, the live runtime and the experiment harness:
// quantiles, load-imbalance, and throughput arithmetic.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Quantile returns the q-quantile (0 <= q <= 1) of the samples using
// nearest-rank on a sorted copy. It returns 0 for empty input.
// Callers extracting several quantiles should sort once and use
// QuantileSorted instead of paying the sort per quantile.
func Quantile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return QuantileSorted(sorted, q)
}

// QuantileSorted returns the nearest-rank q-quantile of an
// already-ascending sample slice, without copying or sorting. It
// returns 0 for empty input.
func QuantileSorted(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(samples []int64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += float64(s)
	}
	return sum / float64(len(samples))
}

// Max returns the maximum, 0 for empty input.
func Max(samples []int64) int64 {
	var max int64
	for i, s := range samples {
		if i == 0 || s > max {
			max = s
		}
	}
	return max
}

// LatencySummary condenses a latency sample set.
type LatencySummary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// SummarizeLatencies computes the standard latency digest from
// nanosecond samples. The samples are copied and sorted once; every
// quantile (and the max) is then an index into the sorted copy.
func SummarizeLatencies(nanos []int64) LatencySummary {
	if len(nanos) == 0 {
		return LatencySummary{}
	}
	sorted := append([]int64(nil), nanos...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return LatencySummary{
		Count: len(sorted),
		Mean:  time.Duration(Mean(sorted)),
		P50:   time.Duration(QuantileSorted(sorted, 0.50)),
		P95:   time.Duration(QuantileSorted(sorted, 0.95)),
		P99:   time.Duration(QuantileSorted(sorted, 0.99)),
		Max:   time.Duration(sorted[len(sorted)-1]),
	}
}

func (l LatencySummary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		l.Count, l.Mean.Round(time.Microsecond), l.P50.Round(time.Microsecond),
		l.P95.Round(time.Microsecond), l.P99.Round(time.Microsecond), l.Max.Round(time.Microsecond))
}

// Imbalance measures workload skew across units as max/mean of the
// per-unit counts; 1.0 is perfect balance. Returns 0 when all counts
// are zero.
func Imbalance(perUnit []int64) float64 {
	if len(perUnit) == 0 {
		return 0
	}
	var sum, max int64
	for _, c := range perUnit {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(perUnit))
	return float64(max) / mean
}

// Throughput converts a completed-task count over a virtual duration
// to tasks/second. Returns 0 for non-positive durations.
func Throughput(completed int64, makespan time.Duration) float64 {
	if makespan <= 0 {
		return 0
	}
	return float64(completed) / makespan.Seconds()
}
