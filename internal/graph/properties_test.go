package graph

import (
	"strings"
	"testing"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind ValueKind
	}{
		{String("x"), KindString},
		{Int(7), KindInt},
		{Float(3.5), KindFloat},
		{Bool(true), KindBool},
		{Blob(100), KindBlob},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind(%v) = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if got := String("hello").Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := Int(-5).Int64(); got != -5 {
		t.Errorf("Int64 = %d", got)
	}
	if got := Float(2.5).Float64(); got != 2.5 {
		t.Errorf("Float64 = %g", got)
	}
	if got := Int(4).Float64(); got != 4 {
		t.Errorf("Int-as-Float64 = %g, want 4", got)
	}
	if !Bool(true).IsTrue() || Bool(false).IsTrue() {
		t.Error("Bool accessors wrong")
	}
	if got := Blob(42).BlobSize(); got != 42 {
		t.Errorf("BlobSize = %d", got)
	}
	// Cross-kind accessors return zero values.
	if String("x").Int64() != 0 || Int(1).Str() != "" || String("x").BlobSize() != 0 {
		t.Error("cross-kind accessor leaked a value")
	}
}

func TestSerializedBytes(t *testing.T) {
	if got := String("abcd").SerializedBytes(); got != 5 {
		t.Errorf("string bytes = %d, want 5", got)
	}
	if got := Int(1).SerializedBytes(); got != 9 {
		t.Errorf("int bytes = %d, want 9", got)
	}
	if got := Bool(true).SerializedBytes(); got != 2 {
		t.Errorf("bool bytes = %d, want 2", got)
	}
	if got := Blob(1000).SerializedBytes(); got != 1001 {
		t.Errorf("blob bytes = %d, want 1001", got)
	}
	p := Properties{"a": Int(1), "bb": String("xy")}
	// "a"(1)+9 + "bb"(2)+3 = 15
	if got := p.SerializedBytes(); got != 15 {
		t.Errorf("props bytes = %d, want 15", got)
	}
}

func TestPropertiesClone(t *testing.T) {
	p := Properties{"k": Int(1)}
	c := p.Clone()
	c["k"] = Int(2)
	if p["k"].Int64() != 1 {
		t.Error("Clone is not a deep copy of the map")
	}
	if Properties(nil).Clone() != nil {
		t.Error("Clone(nil) should be nil")
	}
}

func TestPropertiesStringDeterministic(t *testing.T) {
	p := Properties{"z": Int(1), "a": Int(2), "m": String("q")}
	s1, s2 := p.String(), p.String()
	if s1 != s2 {
		t.Errorf("String not deterministic: %q vs %q", s1, s2)
	}
	if !strings.Contains(s1, `a: 2`) || strings.Index(s1, "a:") > strings.Index(s1, "z:") {
		t.Errorf("String = %q, want sorted keys", s1)
	}
}

func TestPredicates(t *testing.T) {
	p := Properties{"age": Int(30), "name": String("bob")}
	if !HasProp("age")(p) || HasProp("ghost")(p) {
		t.Error("HasProp wrong")
	}
	if !PropEquals("name", String("bob"))(p) || PropEquals("name", String("eve"))(p) {
		t.Error("PropEquals wrong")
	}
	if !IntPropAtLeast("age", 30)(p) || IntPropAtLeast("age", 31)(p) {
		t.Error("IntPropAtLeast wrong")
	}
	if IntPropAtLeast("name", 0)(p) {
		t.Error("IntPropAtLeast should reject non-int kinds")
	}
	all := MatchAll(HasProp("age"), PropEquals("name", String("bob")))
	if !all(p) {
		t.Error("MatchAll should accept")
	}
	if MatchAll(HasProp("age"), HasProp("ghost"))(p) {
		t.Error("MatchAll should reject when one predicate fails")
	}
	if !MatchAll()(p) {
		t.Error("empty MatchAll should accept")
	}
}

func TestKindStrings(t *testing.T) {
	if Directed.String() != "directed" || Undirected.String() != "undirected" {
		t.Error("Kind.String wrong")
	}
	if KindBlob.String() != "blob" {
		t.Error("ValueKind.String wrong")
	}
}
