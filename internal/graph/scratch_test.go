package graph

import "testing"

func TestVertexSetBasics(t *testing.T) {
	s := NewVertexSet(8)
	if s.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", s.Cap())
	}
	if s.Contains(3) {
		t.Error("fresh set should be empty")
	}
	if !s.Add(3) {
		t.Error("first Add should report newly added")
	}
	if s.Add(3) {
		t.Error("second Add should report already present")
	}
	if !s.Contains(3) || s.Contains(4) {
		t.Error("membership wrong after Add")
	}
	s.Clear()
	if s.Contains(3) {
		t.Error("Clear should empty the set")
	}
	if !s.Add(3) {
		t.Error("Add after Clear should report newly added")
	}
}

func TestVertexSetGrowPreservesMembership(t *testing.T) {
	s := NewVertexSet(4)
	s.Add(2)
	s.Grow(16)
	if !s.Contains(2) {
		t.Error("Grow lost membership")
	}
	if s.Contains(10) {
		t.Error("grown slots should start empty")
	}
	s.Add(10)
	if !s.Contains(10) {
		t.Error("Add in grown region failed")
	}
	// Growing smaller is a no-op.
	s.Grow(2)
	if s.Cap() != 16 {
		t.Errorf("Cap shrank to %d", s.Cap())
	}
}

func TestVertexSetZeroValueGrow(t *testing.T) {
	var s VertexSet
	s.Grow(4)
	if s.Contains(1) {
		t.Error("zero-value grown set should be empty")
	}
	s.Add(1)
	s.Clear()
	if s.Contains(1) {
		t.Error("Clear on zero-value-grown set failed")
	}
}

func TestVertexSetEpochWraparound(t *testing.T) {
	s := NewVertexSet(4)
	s.Add(1)
	// Force the wraparound path: epoch jumps to max, next Clear wraps.
	s.epoch = ^uint32(0)
	s.stamps[2] = ^uint32(0) // stale entry stamped at the old max epoch
	s.Clear()
	if s.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", s.epoch)
	}
	if s.Contains(1) || s.Contains(2) {
		t.Error("wraparound Clear must not resurrect stale entries")
	}
}

func TestVertexMapBasics(t *testing.T) {
	m := NewVertexMap(8)
	if _, ok := m.Get(5); ok {
		t.Error("fresh map should be empty")
	}
	m.Put(5, 42)
	if v, ok := m.Get(5); !ok || v != 42 {
		t.Errorf("Get(5) = %d,%t want 42,true", v, ok)
	}
	if !m.Contains(5) || m.Contains(6) {
		t.Error("membership wrong")
	}
	if got := m.Inc(5, 2); got != 44 {
		t.Errorf("Inc existing = %d, want 44", got)
	}
	if got := m.Inc(6, 3); got != 3 {
		t.Errorf("Inc absent = %d, want 3", got)
	}
	m.Clear()
	if m.Contains(5) || m.Contains(6) {
		t.Error("Clear should empty the map")
	}
	if got := m.Inc(5, 1); got != 1 {
		t.Errorf("Inc after Clear = %d, want 1 (stale value leaked)", got)
	}
}

func TestVertexMapGrowPreservesEntries(t *testing.T) {
	m := NewVertexMap(4)
	m.Put(3, 7)
	m.Grow(12)
	if v, ok := m.Get(3); !ok || v != 7 {
		t.Errorf("Grow lost entry: %d,%t", v, ok)
	}
	if m.Contains(8) {
		t.Error("grown slots should start empty")
	}
	m.Put(8, 9)
	if v, _ := m.Get(8); v != 9 {
		t.Error("Put in grown region failed")
	}
}

func TestVertexMapEpochWraparound(t *testing.T) {
	m := NewVertexMap(4)
	m.Put(1, 10)
	m.epoch = ^uint32(0)
	m.stamps[2] = ^uint32(0)
	m.Clear()
	if m.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d, want 1", m.epoch)
	}
	if m.Contains(1) || m.Contains(2) {
		t.Error("wraparound Clear must not resurrect stale entries")
	}
}

func TestScratchClearIsConstantTime(t *testing.T) {
	// Not a timing assertion — a structural one: Clear must not touch
	// the stamp array in the common case (only on wraparound).
	s := NewVertexSet(1 << 16)
	s.Add(12345)
	before := s.stamps[12345]
	s.Clear()
	if s.stamps[12345] != before {
		t.Error("Clear rewrote stamps on the non-wraparound path")
	}
}
