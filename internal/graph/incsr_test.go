package graph

import (
	"strings"
	"sync"
	"testing"
)

// naiveInEdges lists (source, forward slot) pairs arriving at u by
// scanning every forward slot — the executable spec for buildInCSR.
func naiveInEdges(g *Graph, u VertexID) (srcs []VertexID, slots []uint32) {
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.EdgeSlots(VertexID(v))
		for s := lo; s < hi; s++ {
			if g.TargetAt(s) == u {
				srcs = append(srcs, VertexID(v))
				slots = append(slots, uint32(s))
			}
		}
	}
	return
}

func checkInCSR(t *testing.T, g *Graph) {
	t.Helper()
	in := g.In()
	n := g.NumVertices()
	if len(in.Offsets) != n+1 {
		t.Fatalf("in-offsets length %d, want %d", len(in.Offsets), n+1)
	}
	for u := 0; u < n; u++ {
		wantSrc, wantSlot := naiveInEdges(g, VertexID(u))
		lo, hi := in.Edges(VertexID(u))
		if int(hi-lo) != len(wantSrc) {
			t.Fatalf("vertex %d: in-degree %d, want %d", u, hi-lo, len(wantSrc))
		}
		if in.Degree(VertexID(u)) != len(wantSrc) {
			t.Fatalf("vertex %d: Degree %d, want %d", u, in.Degree(VertexID(u)), len(wantSrc))
		}
		for i := int64(0); i < hi-lo; i++ {
			if in.Sources[lo+i] != wantSrc[i] || in.FwdSlot[lo+i] != wantSlot[i] {
				t.Fatalf("vertex %d entry %d: got (%d, %d), want (%d, %d)",
					u, i, in.Sources[lo+i], in.FwdSlot[lo+i], wantSrc[i], wantSlot[i])
			}
		}
	}
}

func buildTestGraph(t *testing.T, kind Kind, n int, edges [][2]VertexID) *Graph {
	t.Helper()
	b := NewBuilder(kind, n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestInCSRMatchesNaive(t *testing.T) {
	directed := buildTestGraph(t, Directed, 7, [][2]VertexID{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, {4, 2}, {5, 2}, {6, 6},
	})
	undirected := buildTestGraph(t, Undirected, 5, [][2]VertexID{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4},
	})
	isolated := buildTestGraph(t, Directed, 4, [][2]VertexID{{1, 3}})
	empty := buildTestGraph(t, Directed, 3, nil)
	for name, g := range map[string]*Graph{
		"directed": directed, "undirected": undirected,
		"isolated": isolated, "empty": empty,
	} {
		t.Run(name, func(t *testing.T) { checkInCSR(t, g) })
	}
}

// TestInCached verifies In() builds once and returns the same view,
// including under concurrent first use.
func TestInCached(t *testing.T) {
	g := buildTestGraph(t, Directed, 6, [][2]VertexID{{0, 1}, {1, 2}, {2, 0}, {3, 4}})
	var wg sync.WaitGroup
	views := make([]*InCSR, 8)
	for i := range views {
		wg.Add(1)
		go func(i int) { defer wg.Done(); views[i] = g.In() }(i)
	}
	wg.Wait()
	for i := 1; i < len(views); i++ {
		if views[i] != views[0] {
			t.Fatalf("In() returned distinct views across goroutines")
		}
	}
	if g.InPersisted() {
		t.Fatalf("built-on-demand view reported as persisted")
	}
}

// TestInCSRRoundTrip checks that a graph rebuilt via FromCSR from a
// CSRView carrying in-edge columns presets the view (no rebuild) and
// reports it persisted.
func TestInCSRRoundTrip(t *testing.T) {
	g := buildTestGraph(t, Undirected, 6, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}})
	in := g.In()
	d := g.CSRView()
	if d.InOffsets == nil || d.InSources == nil || d.InSlots == nil {
		t.Fatalf("CSRView dropped the built in-edge columns")
	}
	g2, err := FromCSR(d)
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	if !g2.InPersisted() {
		t.Fatalf("preset in-edge view not reported persisted")
	}
	in2 := g2.In()
	if &in2.Offsets[0] != &in.Offsets[0] {
		t.Fatalf("preset view rebuilt instead of aliased")
	}
	checkInCSR(t, g2)
}

// TestFromCSRInValidation walks corrupted in-edge columns through
// FromCSR and demands an error naming the problem.
func TestFromCSRInValidation(t *testing.T) {
	base := func() CSRData {
		g := buildTestGraph(t, Directed, 4, [][2]VertexID{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 1}})
		g.In()
		d := g.CSRView()
		// Deep-copy the in columns so mutations don't leak between cases.
		d.InOffsets = append([]int64(nil), d.InOffsets...)
		d.InSources = append([]VertexID(nil), d.InSources...)
		d.InSlots = append([]uint32(nil), d.InSlots...)
		return d
	}
	cases := []struct {
		name    string
		mutate  func(*CSRData)
		wantMsg string
	}{
		{"short offsets", func(d *CSRData) { d.InOffsets = d.InOffsets[:2] }, "in-offsets has"},
		{"nonzero first", func(d *CSRData) { d.InOffsets[0] = 1 }, "in-offsets[0]"},
		{"decreasing", func(d *CSRData) { d.InOffsets[2] = d.InOffsets[1] - 1 }, "decrease"},
		{"open end", func(d *CSRData) { d.InOffsets[len(d.InOffsets)-1]++ }, "in-offsets end"},
		{"slot out of range", func(d *CSRData) { d.InSlots[0] = 99 }, "out of range"},
		{"wrong bucket", func(d *CSRData) {
			// Slot 3 targets vertex 2 (edge 1->2); plant it in vertex 1's bucket.
			for p := d.InOffsets[1]; p < d.InOffsets[2]; p++ {
				d.InSlots[p] = 3
			}
		}, "bucket owner"},
		{"wrong source", func(d *CSRData) { d.InSources[0] = 3 }, "own forward slot"},
		{"source out of range", func(d *CSRData) { d.InSources[0] = -1 }, "in-sources[0]"},
		{"missing offsets", func(d *CSRData) { d.InOffsets = nil }, "without in-offsets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base()
			tc.mutate(&d)
			_, err := FromCSR(d)
			if err == nil {
				t.Fatalf("FromCSR accepted corrupted in columns")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}
