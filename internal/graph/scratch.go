package graph

// Epoch-stamped dense vertex scratch. Traversal kernels and other
// per-query hot paths need set and map semantics over VertexIDs, but a
// fresh Go map per query churns the allocator and the GC exactly where
// the system spends its time. Because vertex IDs are dense in
// [0, NumVertices), a []uint32 stamp array gives O(1) membership with
// a logical clear that is a single integer increment: an entry is
// present iff its stamp equals the current epoch, so bumping the epoch
// empties the structure without touching memory. The arrays are
// reused across queries; a steady-state traversal allocates nothing.
//
// Neither type is safe for concurrent use; give each goroutine (or
// each serialized execution context) its own.

// VertexSet is a reusable dense set of vertices with O(1) Clear.
// The zero value is an empty set over zero vertices; use NewVertexSet
// or Grow to size it.
type VertexSet struct {
	stamps []uint32
	epoch  uint32
}

// NewVertexSet returns an empty set over vertices [0, n).
func NewVertexSet(n int) VertexSet {
	return VertexSet{stamps: make([]uint32, n), epoch: 1}
}

// Cap returns the number of vertex slots the set covers.
func (s *VertexSet) Cap() int { return len(s.stamps) }

// Grow extends the set to cover vertices [0, n). Existing membership
// is preserved; growth past the current capacity allocates.
func (s *VertexSet) Grow(n int) {
	if s.epoch == 0 {
		s.epoch = 1
	}
	if n <= len(s.stamps) {
		return
	}
	grown := make([]uint32, n)
	copy(grown, s.stamps)
	s.stamps = grown
}

// Clear empties the set in O(1) by bumping the epoch. On the (every
// ~4 billion clears) epoch wraparound the stamp array is zeroed so
// stale stamps from the previous cycle cannot alias the new epoch.
func (s *VertexSet) Clear() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamps {
			s.stamps[i] = 0
		}
		s.epoch = 1
	}
}

// Contains reports whether v is in the set.
func (s *VertexSet) Contains(v VertexID) bool { return s.stamps[v] == s.epoch }

// Add inserts v and reports whether it was newly added.
func (s *VertexSet) Add(v VertexID) bool {
	if s.stamps[v] == s.epoch {
		return false
	}
	s.stamps[v] = s.epoch
	return true
}

// VertexMap is a reusable dense VertexID → int32 map with O(1) Clear,
// built on the same epoch-stamp scheme as VertexSet. The zero value is
// an empty map over zero vertices; use NewVertexMap or Grow.
type VertexMap struct {
	stamps []uint32
	vals   []int32
	epoch  uint32
}

// NewVertexMap returns an empty map over vertices [0, n).
func NewVertexMap(n int) VertexMap {
	return VertexMap{stamps: make([]uint32, n), vals: make([]int32, n), epoch: 1}
}

// Cap returns the number of vertex slots the map covers.
func (m *VertexMap) Cap() int { return len(m.stamps) }

// Grow extends the map to cover vertices [0, n), preserving entries.
func (m *VertexMap) Grow(n int) {
	if m.epoch == 0 {
		m.epoch = 1
	}
	if n <= len(m.stamps) {
		return
	}
	stamps := make([]uint32, n)
	copy(stamps, m.stamps)
	vals := make([]int32, n)
	copy(vals, m.vals)
	m.stamps, m.vals = stamps, vals
}

// Clear empties the map in O(1); see VertexSet.Clear for the
// wraparound guarantee.
func (m *VertexMap) Clear() {
	m.epoch++
	if m.epoch == 0 {
		for i := range m.stamps {
			m.stamps[i] = 0
		}
		m.epoch = 1
	}
}

// Contains reports whether v has an entry.
func (m *VertexMap) Contains(v VertexID) bool { return m.stamps[v] == m.epoch }

// Get returns v's value and whether it is present.
func (m *VertexMap) Get(v VertexID) (int32, bool) {
	if m.stamps[v] != m.epoch {
		return 0, false
	}
	return m.vals[v], true
}

// Put sets v's value, inserting it if absent.
func (m *VertexMap) Put(v VertexID, x int32) {
	m.stamps[v] = m.epoch
	m.vals[v] = x
}

// Inc adds delta to v's value (absent counts as zero) and returns the
// new value.
func (m *VertexMap) Inc(v VertexID, delta int32) int32 {
	if m.stamps[v] != m.epoch {
		m.stamps[v] = m.epoch
		m.vals[v] = delta
		return delta
	}
	m.vals[v] += delta
	return m.vals[v]
}
