package graph

import (
	"fmt"
	"math"
)

// CSRData is the raw columnar form of a Graph: the exact parallel
// slices its accessors serve from. It is the interchange type between
// this package and flat on-disk snapshots (internal/graphio's v2 CSR
// format): CSRView exposes a graph's columns without copying, and
// FromCSR assembles a Graph around existing columns — for example
// slices aliasing a file read into one buffer or mapped into memory —
// again without copying.
//
// Ownership: both directions borrow. A CSRData obtained from CSRView
// aliases the graph's internals and must not be mutated; a Graph built
// by FromCSR aliases the caller's slices, which must stay immutable
// (and mapped, for mmap-backed data) for the graph's lifetime.
type CSRData struct {
	Kind Kind

	// NumEdges is the logical edge count (an undirected edge counts
	// once even though it occupies two CSR slots).
	NumEdges int

	// Offsets has NumVertices+1 entries; the out-neighbors of v are
	// Targets[Offsets[v]:Offsets[v+1]], sorted by target.
	Offsets []int64
	Targets []VertexID

	// EdgeIdx maps each CSR slot to its logical edge. nil means
	// identity (directed graphs); required for undirected graphs with
	// at least one edge.
	EdgeIdx []EdgeID

	// Weights is indexed by logical edge; nil when unweighted.
	Weights []float32

	// Property tables, nil when absent. VProps is indexed by vertex,
	// EProps by logical edge.
	VProps []Properties
	EProps []Properties

	// Serialized record sizes for the storage cost model. VBytes may
	// be nil, in which case FromCSR recomputes it; EBytes may be nil
	// when no edge properties exist.
	VBytes []int32
	EBytes []int32

	// Partition labels (one per vertex, dense in [0, numPartitions));
	// nil when unpartitioned.
	Partition []int32

	// In-edge (reverse CSR) columns, parallel over forward slots: the
	// in-edges of u are InSources[InOffsets[u]:InOffsets[u+1]] with
	// forward slots InSlots[...], sorted by forward slot. Optional —
	// all three present or all three nil. FromCSR presets Graph.In()
	// from them; CSRView exposes them when the view has been built or
	// loaded, so snapshots written from such a graph carry the
	// sections.
	InOffsets []int64
	InSources []VertexID
	InSlots   []uint32
}

// CSRView returns the graph's raw columns without copying. The
// returned slices alias the graph's internals: callers must treat them
// as read-only.
func (g *Graph) CSRView() CSRData {
	d := CSRData{
		Kind:      g.kind,
		NumEdges:  g.numEdges,
		Offsets:   g.offsets,
		Targets:   g.targets,
		EdgeIdx:   g.edgeIdx,
		Weights:   g.weights,
		VProps:    g.vprops,
		EProps:    g.eprops,
		VBytes:    g.vbytes,
		EBytes:    g.ebytes,
		Partition: g.part,
	}
	if in := g.in.Load(); in != nil {
		d.InOffsets = in.Offsets
		d.InSources = in.Sources
		d.InSlots = in.FwdSlot
	}
	return d
}

// FromCSR assembles a Graph directly around the given columns without
// copying or re-sorting them, validating every structural invariant a
// Builder-built graph guarantees (offsets monotone and closed over the
// target array, targets in range and sorted per vertex, logical edge
// indices in range, parallel arrays consistently sized). It is the
// load path for untrusted on-disk snapshots, so violations surface as
// errors, never panics.
func FromCSR(d CSRData) (*Graph, error) {
	if d.Kind != Directed && d.Kind != Undirected {
		return nil, fmt.Errorf("graph: csr kind %d invalid", d.Kind)
	}
	if len(d.Offsets) == 0 {
		return nil, fmt.Errorf("graph: csr offsets empty, need NumVertices+1 entries")
	}
	n := len(d.Offsets) - 1
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: csr offsets imply %d vertices, beyond the int32 vertex space", n)
	}
	if d.NumEdges < 0 {
		return nil, fmt.Errorf("graph: csr negative edge count %d", d.NumEdges)
	}
	slots := int64(len(d.Targets))
	if d.Offsets[0] != 0 {
		return nil, fmt.Errorf("graph: csr offsets[0] = %d, want 0", d.Offsets[0])
	}
	for v := 0; v < n; v++ {
		if d.Offsets[v+1] < d.Offsets[v] {
			return nil, fmt.Errorf("graph: csr offsets decrease at vertex %d (%d -> %d)",
				v, d.Offsets[v], d.Offsets[v+1])
		}
	}
	if d.Offsets[n] != slots {
		return nil, fmt.Errorf("graph: csr offsets end at %d, want the %d targets", d.Offsets[n], slots)
	}

	switch d.Kind {
	case Directed:
		if d.EdgeIdx != nil {
			return nil, fmt.Errorf("graph: csr edge index present on a directed graph")
		}
		if int64(d.NumEdges) != slots {
			return nil, fmt.Errorf("graph: csr %d slots for %d directed edges", slots, d.NumEdges)
		}
	case Undirected:
		if 2*int64(d.NumEdges) != slots {
			return nil, fmt.Errorf("graph: csr %d slots for %d undirected edges, want %d",
				slots, d.NumEdges, 2*int64(d.NumEdges))
		}
		if slots > 0 && int64(len(d.EdgeIdx)) != slots {
			return nil, fmt.Errorf("graph: csr edge index has %d entries for %d slots", len(d.EdgeIdx), slots)
		}
	}

	for v := 0; v < n; v++ {
		lo, hi := d.Offsets[v], d.Offsets[v+1]
		for s := lo; s < hi; s++ {
			t := d.Targets[s]
			if t < 0 || int(t) >= n {
				return nil, fmt.Errorf("graph: csr targets[%d] = %d out of range [0,%d)", s, t, n)
			}
			if s > lo && t < d.Targets[s-1] {
				return nil, fmt.Errorf("graph: csr targets of vertex %d not sorted at slot %d", v, s)
			}
		}
	}
	for s, e := range d.EdgeIdx {
		if e < 0 || int(e) >= d.NumEdges {
			return nil, fmt.Errorf("graph: csr edge index[%d] = %d out of range [0,%d)", s, e, d.NumEdges)
		}
	}

	if d.Weights != nil && len(d.Weights) != d.NumEdges {
		return nil, fmt.Errorf("graph: csr %d weights for %d edges", len(d.Weights), d.NumEdges)
	}
	if d.VProps != nil && len(d.VProps) != n {
		return nil, fmt.Errorf("graph: csr %d vertex property rows for %d vertices", len(d.VProps), n)
	}
	if d.EProps != nil && len(d.EProps) != d.NumEdges {
		return nil, fmt.Errorf("graph: csr %d edge property rows for %d edges", len(d.EProps), d.NumEdges)
	}
	if d.VBytes != nil && len(d.VBytes) != n {
		return nil, fmt.Errorf("graph: csr %d vertex byte sizes for %d vertices", len(d.VBytes), n)
	}
	if d.EBytes != nil && len(d.EBytes) != d.NumEdges {
		return nil, fmt.Errorf("graph: csr %d edge byte sizes for %d edges", len(d.EBytes), d.NumEdges)
	}

	g := &Graph{
		kind:     d.Kind,
		offsets:  d.Offsets,
		targets:  d.Targets,
		edgeIdx:  d.EdgeIdx,
		numEdges: d.NumEdges,
		weights:  d.Weights,
		vprops:   d.VProps,
		eprops:   d.EProps,
		vbytes:   d.VBytes,
		ebytes:   d.EBytes,
	}

	if d.Partition != nil {
		if len(d.Partition) != n {
			return nil, fmt.Errorf("graph: csr %d partition labels for %d vertices", len(d.Partition), n)
		}
		maxLabel := int32(-1)
		for v, l := range d.Partition {
			if l < 0 {
				return nil, fmt.Errorf("graph: csr partition label %d of vertex %d negative", l, v)
			}
			if l > maxLabel {
				maxLabel = l
			}
		}
		g.part = d.Partition
		g.numPartitions = int(maxLabel) + 1
	}

	if d.InOffsets != nil {
		if err := validateInCSR(d); err != nil {
			return nil, err
		}
		g.in.Store(&InCSR{Offsets: d.InOffsets, Sources: d.InSources, FwdSlot: d.InSlots})
		g.inPersisted = true
	} else if d.InSources != nil || d.InSlots != nil {
		return nil, fmt.Errorf("graph: csr in-edge columns without in-offsets")
	}

	if g.vbytes == nil {
		g.vbytes = g.computeVertexBytes()
	}
	return g, nil
}

// computeVertexBytes derives the per-vertex serialized record sizes —
// vertex header, vertex properties, adjacency list with inline edge
// payloads — from an otherwise fully assembled graph. Shared by
// Builder.Build and FromCSR so both construction paths price records
// identically.
func (g *Graph) computeVertexBytes() []int32 {
	n := g.NumVertices()
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		bytes := int64(vertexBaseBytes)
		if g.vprops != nil && g.vprops[v] != nil {
			bytes += int64(g.vprops[v].SerializedBytes())
		}
		lo, hi := g.offsets[v], g.offsets[v+1]
		for s := lo; s < hi; s++ {
			if g.ebytes != nil {
				e := s
				if g.edgeIdx != nil {
					e = int64(g.edgeIdx[s])
				}
				bytes += int64(g.ebytes[e])
			} else {
				bytes += edgeBaseBytes
			}
		}
		if bytes > 1<<30 {
			bytes = 1 << 30
		}
		out[v] = int32(bytes)
	}
	return out
}
