package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Properties is a schemaless property map θ = {mᵢ → wᵢ} attached to a
// vertex or edge, per Section II of the paper. Values are restricted
// to a small set of kinds so that serialized sizes are well defined
// for the storage cost model.
type Properties map[string]Value

// ValueKind enumerates the supported property value kinds.
type ValueKind uint8

const (
	KindString ValueKind = iota
	KindInt
	KindFloat
	KindBool
	// KindBlob models opaque binary payloads such as photo data; only
	// the length is stored, because the simulator cares about bytes,
	// not content.
	KindBlob
)

func (k ValueKind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindBlob:
		return "blob"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a tagged union property value.
type Value struct {
	kind ValueKind
	str  string
	num  int64
	f    float64
}

// String constructs a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int constructs an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float constructs a float value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool constructs a boolean value.
func Bool(b bool) Value {
	var n int64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Blob constructs an opaque payload of the given size in bytes.
func Blob(size int) Value { return Value{kind: KindBlob, num: int64(size)} }

// Kind returns the value's kind.
func (v Value) Kind() ValueKind { return v.kind }

// Str returns the string payload; zero for non-string values.
func (v Value) Str() string { return v.str }

// Int64 returns the integer payload; zero for non-int values.
func (v Value) Int64() int64 {
	if v.kind != KindInt {
		return 0
	}
	return v.num
}

// Float64 returns the numeric payload as float64 for int and float
// kinds; zero otherwise.
func (v Value) Float64() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.num)
	default:
		return 0
	}
}

// IsTrue returns the boolean payload; false for non-bool values.
func (v Value) IsTrue() bool { return v.kind == KindBool && v.num != 0 }

// BlobSize returns the blob length in bytes; zero for non-blobs.
func (v Value) BlobSize() int {
	if v.kind != KindBlob {
		return 0
	}
	return int(v.num)
}

// SerializedBytes estimates the on-disk footprint of the value: kind
// tag plus payload.
func (v Value) SerializedBytes() int {
	switch v.kind {
	case KindString:
		return 1 + len(v.str)
	case KindInt, KindFloat:
		return 1 + 8
	case KindBool:
		return 1 + 1
	case KindBlob:
		return 1 + int(v.num)
	default:
		return 1
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool { return v == o }

func (v Value) String() string {
	switch v.kind {
	case KindString:
		return fmt.Sprintf("%q", v.str)
	case KindInt:
		return fmt.Sprintf("%d", v.num)
	case KindFloat:
		return fmt.Sprintf("%g", v.f)
	case KindBool:
		return fmt.Sprintf("%t", v.num != 0)
	case KindBlob:
		return fmt.Sprintf("blob[%dB]", v.num)
	default:
		return "<invalid>"
	}
}

// SerializedBytes estimates the on-disk footprint of a property map:
// per-entry name + value bytes.
func (p Properties) SerializedBytes() int {
	total := 0
	for name, v := range p {
		total += len(name) + v.SerializedBytes()
	}
	return total
}

// Clone returns a deep copy of the property map.
func (p Properties) Clone() Properties {
	if p == nil {
		return nil
	}
	out := make(Properties, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// String renders the property map with deterministic key order, which
// keeps golden tests and logs stable.
func (p Properties) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", k, p[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Predicate is a user-defined constraint θ checked against vertex or
// edge properties during traversal (Section V-C). A nil Predicate
// matches everything.
type Predicate func(Properties) bool

// MatchAll returns a predicate that is satisfied only when every given
// predicate is satisfied.
func MatchAll(preds ...Predicate) Predicate {
	return func(p Properties) bool {
		for _, pred := range preds {
			if pred != nil && !pred(p) {
				return false
			}
		}
		return true
	}
}

// HasProp returns a predicate matching maps that contain the named
// property.
func HasProp(name string) Predicate {
	return func(p Properties) bool {
		_, ok := p[name]
		return ok
	}
}

// PropEquals returns a predicate matching maps whose named property
// equals want.
func PropEquals(name string, want Value) Predicate {
	return func(p Properties) bool {
		got, ok := p[name]
		return ok && got.Equal(want)
	}
}

// IntPropAtLeast returns a predicate matching maps whose named integer
// property is >= min.
func IntPropAtLeast(name string, min int64) Predicate {
	return func(p Properties) bool {
		got, ok := p[name]
		return ok && got.Kind() == KindInt && got.Int64() >= min
	}
}
