// Package graph implements the property graph substrate used by the
// balance-affinity scheduler: a compact CSR (compressed sparse row)
// adjacency structure with optional per-vertex and per-edge property
// tables, edge weights, and partition labels.
//
// The representation follows Section II of the paper: a property graph
// G(V, E, Θ) where Θ maps vertices and edges to user-defined property
// maps (schemaless name → value). Because the shared-disk simulator
// charges I/O by serialized record size, every vertex and edge also
// carries an explicit payload byte size; for metadata-style graphs
// (Twitter-like) these are small, for multimedia graphs (image corpus)
// they are large.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// VertexID identifies a vertex. IDs are dense in [0, NumVertices).
type VertexID int32

// NoVertex is the sentinel "not a vertex" value.
const NoVertex VertexID = -1

// EdgeID identifies a directed edge slot in the CSR arrays. For an
// undirected graph each logical edge occupies two slots (one per
// direction) that share properties.
type EdgeID int32

// NoEdge is the sentinel "not an edge" value.
const NoEdge EdgeID = -1

// Kind distinguishes directed from undirected graphs.
type Kind uint8

const (
	// Directed graphs store exactly the edges given to the builder.
	Directed Kind = iota
	// Undirected graphs store each edge in both directions.
	Undirected
)

func (k Kind) String() string {
	switch k {
	case Directed:
		return "directed"
	case Undirected:
		return "undirected"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Graph is an immutable property graph in CSR form. Build one with a
// Builder. All read methods are safe for concurrent use.
type Graph struct {
	kind Kind

	// CSR adjacency: the out-neighbors of v are
	// targets[offsets[v]:offsets[v+1]].
	offsets []int64
	targets []VertexID

	// edgeIdx maps a CSR slot to the logical edge index that owns the
	// properties/weight. For directed graphs it is the identity; for
	// undirected graphs both directions of one edge map to the same
	// logical index. nil means identity.
	edgeIdx []EdgeID

	// Number of logical edges (undirected edges counted once).
	numEdges int

	// Optional edge weights, indexed by logical edge index.
	weights []float32

	// Property tables, nil when absent.
	vprops []Properties
	eprops []Properties

	// Serialized payload sizes used by the storage cost model.
	vbytes []int32
	ebytes []int32

	// Partition label per vertex (-1 when unpartitioned).
	part          []int32
	numPartitions int

	// In-edge (reverse CSR) view: preset from a snapshot that persists
	// the optional in-edge sections, or built on demand by In() and
	// cached. inOnce makes the lazy build safe for concurrent readers.
	in          atomic.Pointer[InCSR]
	inOnce      sync.Once
	inPersisted bool
}

// Kind reports whether the graph is directed or undirected.
func (g *Graph) Kind() Kind { return g.kind }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of logical edges (an undirected edge
// counts once even though it occupies two CSR slots).
func (g *Graph) NumEdges() int { return g.numEdges }

// NumSlots returns the number of CSR slots (directed edge instances):
// NumEdges for directed graphs, 2*NumEdges for undirected ones. This
// is also the total in-edge count, since every slot arrives somewhere.
func (g *Graph) NumSlots() int64 { return int64(len(g.targets)) }

// Valid reports whether v is a vertex of the graph.
func (g *Graph) Valid(v VertexID) bool {
	return v >= 0 && int(v) < g.NumVertices()
}

// Degree returns the out-degree of v (for undirected graphs, the
// number of incident edges).
func (g *Graph) Degree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the out-neighbors of v as a shared slice view.
// Callers must not modify the returned slice.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// EdgeSlots returns the CSR slot range [lo, hi) of v's out-edges.
// Slot s targets vertex TargetAt(s) with logical edge LogicalEdge(s).
func (g *Graph) EdgeSlots(v VertexID) (lo, hi int64) {
	return g.offsets[v], g.offsets[v+1]
}

// TargetAt returns the head vertex of CSR slot s.
func (g *Graph) TargetAt(s int64) VertexID { return g.targets[s] }

// LogicalEdge maps CSR slot s to the logical edge index owning its
// weight and properties.
func (g *Graph) LogicalEdge(s int64) EdgeID {
	if g.edgeIdx == nil {
		return EdgeID(s)
	}
	return g.edgeIdx[s]
}

// HasWeights reports whether edge weights were supplied.
func (g *Graph) HasWeights() bool { return g.weights != nil }

// Weight returns the weight of logical edge e, or 1 if the graph is
// unweighted.
func (g *Graph) Weight(e EdgeID) float32 {
	if g.weights == nil {
		return 1
	}
	return g.weights[e]
}

// FindEdge returns the logical edge from v to u, or NoEdge if absent.
// Cost is O(Degree(v)).
func (g *Graph) FindEdge(v, u VertexID) EdgeID {
	lo, hi := g.EdgeSlots(v)
	for s := lo; s < hi; s++ {
		if g.targets[s] == u {
			return g.LogicalEdge(s)
		}
	}
	return NoEdge
}

// VertexProps returns the property map of v, or nil when the graph has
// no vertex properties or v has none.
func (g *Graph) VertexProps(v VertexID) Properties {
	if g.vprops == nil {
		return nil
	}
	return g.vprops[v]
}

// EdgeProps returns the property map of logical edge e, or nil.
func (g *Graph) EdgeProps(e EdgeID) Properties {
	if g.eprops == nil {
		return nil
	}
	return g.eprops[e]
}

// VertexBytes returns the serialized size of v's record as stored on
// the shared disk: vertex header, vertex properties, and the adjacency
// list with inline edge properties — one contiguous fetch. It is at
// least vertexBaseBytes.
func (g *Graph) VertexBytes(v VertexID) int32 {
	if g.vbytes == nil {
		return vertexBaseBytes
	}
	return g.vbytes[v]
}

// EdgeBytes returns the serialized payload size of logical edge e.
func (g *Graph) EdgeBytes(e EdgeID) int32 {
	if g.ebytes == nil {
		return edgeBaseBytes
	}
	return g.ebytes[e]
}

// Partition returns the partition label of v, or -1 when the graph is
// unpartitioned.
func (g *Graph) Partition(v VertexID) int32 {
	if g.part == nil {
		return -1
	}
	return g.part[v]
}

// NumPartitions returns the number of partition labels, or 0 when the
// graph is unpartitioned.
func (g *Graph) NumPartitions() int { return g.numPartitions }

// Minimum serialized record sizes: a bare vertex or edge still costs a
// key, adjacency pointers and bookkeeping when loaded from the shared
// disk.
const (
	vertexBaseBytes = 64
	edgeBaseBytes   = 16
)

// Stats summarizes the degree distribution of a graph; used by tests
// and by the generators to verify topology (power-law vs uniform).
type Stats struct {
	NumVertices int
	NumEdges    int
	MinDegree   int
	MaxDegree   int
	MeanDegree  float64
	// DegreeVariance is the population variance of the out-degree.
	DegreeVariance float64
	// Gini is the Gini coefficient of the degree distribution in
	// [0, 1]; ~0 for regular graphs, large for power-law graphs.
	Gini float64
}

// ComputeStats scans the graph and returns degree statistics.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	st := Stats{NumVertices: n, NumEdges: g.NumEdges(), MinDegree: math.MaxInt}
	if n == 0 {
		st.MinDegree = 0
		return st
	}
	degs := make([]int, n)
	var sum float64
	for v := 0; v < n; v++ {
		d := g.Degree(VertexID(v))
		degs[v] = d
		sum += float64(d)
		if d < st.MinDegree {
			st.MinDegree = d
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
	}
	st.MeanDegree = sum / float64(n)
	var varSum float64
	for _, d := range degs {
		diff := float64(d) - st.MeanDegree
		varSum += diff * diff
	}
	st.DegreeVariance = varSum / float64(n)
	st.Gini = giniOfInts(degs)
	return st
}

// giniOfInts computes the Gini coefficient of non-negative integers.
func giniOfInts(xs []int) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]int, n)
	copy(sorted, xs)
	sort.Ints(sorted)
	var cum, weighted float64
	for i, x := range sorted {
		cum += float64(x)
		weighted += float64(i+1) * float64(x)
	}
	if cum == 0 {
		return 0
	}
	return (2*weighted - float64(n+1)*cum) / (float64(n) * cum)
}
