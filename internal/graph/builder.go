package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable CSR
// Graph. It is not safe for concurrent use; build the graph once, then
// share it freely (Graph reads are concurrency-safe).
type Builder struct {
	kind     Kind
	n        int
	srcs     []VertexID
	dsts     []VertexID
	weights  []float32
	eprops   []Properties
	vprops   map[VertexID]Properties
	part     []int32
	weighted bool
	hasEProp bool
	finished bool
}

// NewBuilder creates a builder for a graph with n vertices of the
// given kind.
func NewBuilder(kind Kind, n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{kind: kind, n: n, vprops: make(map[VertexID]Properties)}
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// NumAddedEdges returns the number of logical edges added so far.
func (b *Builder) NumAddedEdges() int { return len(b.srcs) }

func (b *Builder) checkVertex(v VertexID) {
	if v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, b.n))
	}
}

// AddEdge adds an unweighted, property-free edge.
func (b *Builder) AddEdge(src, dst VertexID) {
	b.AddEdgeFull(src, dst, 1, nil)
}

// AddWeightedEdge adds an edge with a weight (e.g. a similarity score).
func (b *Builder) AddWeightedEdge(src, dst VertexID, w float32) {
	b.AddEdgeFull(src, dst, w, nil)
}

// AddEdgeFull adds an edge with a weight and optional properties. For
// undirected graphs the edge is later materialized in both directions
// but shares one logical property record.
func (b *Builder) AddEdgeFull(src, dst VertexID, w float32, props Properties) {
	if b.finished {
		panic("graph: AddEdgeFull after Build")
	}
	b.checkVertex(src)
	b.checkVertex(dst)
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
	b.weights = append(b.weights, w)
	b.eprops = append(b.eprops, props)
	if w != 1 {
		b.weighted = true
	}
	if props != nil {
		b.hasEProp = true
	}
}

// SetVertexProps attaches a property map to vertex v, replacing any
// previous map.
func (b *Builder) SetVertexProps(v VertexID, props Properties) {
	b.checkVertex(v)
	b.vprops[v] = props
}

// SetPartition assigns partition labels; len(part) must equal the
// vertex count. Labels must be dense in [0, numPartitions).
func (b *Builder) SetPartition(part []int32) {
	if len(part) != b.n {
		panic(fmt.Sprintf("graph: partition length %d != vertex count %d", len(part), b.n))
	}
	b.part = append([]int32(nil), part...)
}

// Build finalizes the CSR structure. The builder must not be reused
// afterwards.
func (b *Builder) Build() *Graph {
	if b.finished {
		panic("graph: Build called twice")
	}
	b.finished = true

	m := len(b.srcs) // logical edges
	slots := m
	if b.kind == Undirected {
		slots = 2 * m
	}

	g := &Graph{kind: b.kind, numEdges: m}

	// Counting sort by source vertex gives the CSR layout in O(V+E).
	counts := make([]int64, b.n+1)
	bump := func(v VertexID) { counts[v+1]++ }
	for i := 0; i < m; i++ {
		bump(b.srcs[i])
		if b.kind == Undirected {
			bump(b.dsts[i])
		}
	}
	for v := 0; v < b.n; v++ {
		counts[v+1] += counts[v]
	}
	g.offsets = counts

	g.targets = make([]VertexID, slots)
	needIdx := b.kind == Undirected
	if needIdx {
		g.edgeIdx = make([]EdgeID, slots)
	}
	cursor := make([]int64, b.n)
	place := func(src, dst VertexID, e EdgeID) {
		s := g.offsets[src] + cursor[src]
		cursor[src]++
		g.targets[s] = dst
		if needIdx {
			g.edgeIdx[s] = e
		}
	}
	for i := 0; i < m; i++ {
		place(b.srcs[i], b.dsts[i], EdgeID(i))
		if b.kind == Undirected {
			place(b.dsts[i], b.srcs[i], EdgeID(i))
		}
	}

	// Sort each adjacency list by target for deterministic iteration
	// and O(log d) membership checks by callers that binary search.
	for v := 0; v < b.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		if hi-lo < 2 {
			continue
		}
		if needIdx {
			sortSlotsWithIdx(g.targets[lo:hi], g.edgeIdx[lo:hi])
		} else {
			seg := g.targets[lo:hi]
			sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
		}
	}

	if b.weighted {
		g.weights = b.weights
	}
	if b.hasEProp {
		g.eprops = b.eprops
		g.ebytes = make([]int32, m)
		for i, p := range b.eprops {
			g.ebytes[i] = int32(edgeBaseBytes + p.SerializedBytes())
		}
	}
	if len(b.vprops) > 0 {
		g.vprops = make([]Properties, b.n)
		for v, p := range b.vprops {
			g.vprops[v] = p
		}
	}
	// A vertex record models how property-graph stores lay data out:
	// the vertex header and properties plus its adjacency list with
	// inline edge properties — one contiguous fetch from the shared
	// disk. Dense neighborhoods therefore ship more edges per record
	// read, the effect behind the paper's Figure 11 discussion.
	g.vbytes = g.computeVertexBytes()
	if b.part != nil {
		g.part = b.part
		maxLabel := int32(-1)
		for _, l := range b.part {
			if l > maxLabel {
				maxLabel = l
			}
		}
		g.numPartitions = int(maxLabel) + 1
	}
	return g
}

// sortSlotsWithIdx co-sorts a target segment and its parallel edge
// index segment by target.
func sortSlotsWithIdx(targets []VertexID, idx []EdgeID) {
	order := make([]int, len(targets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return targets[order[a]] < targets[order[b]] })
	tCopy := append([]VertexID(nil), targets...)
	iCopy := append([]EdgeID(nil), idx...)
	for pos, src := range order {
		targets[pos] = tCopy[src]
		idx[pos] = iCopy[src]
	}
}
