package graph

import (
	"strings"
	"testing"
)

// csrFixture builds a small undirected weighted property graph
// exercising every optional column.
func csrFixture(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(Undirected, 6)
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddWeightedEdge(1, 2, 2)
	b.AddEdgeFull(2, 3, 1, Properties{"ts": Int(7)})
	b.AddEdge(0, 3)
	b.SetVertexProps(0, Properties{"name": String("alice"), "vip": Bool(true)})
	b.SetVertexProps(4, Properties{"photo": Blob(512)})
	b.SetPartition([]int32{0, 0, 1, 1, 2, 2})
	return b.Build()
}

func assertGraphsIdentical(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.Kind() != got.Kind() || want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("shape: %v/%d/%d vs %v/%d/%d", want.Kind(), want.NumVertices(), want.NumEdges(),
			got.Kind(), got.NumVertices(), got.NumEdges())
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := VertexID(v)
		if want.Degree(id) != got.Degree(id) {
			t.Fatalf("vertex %d degree %d vs %d", v, want.Degree(id), got.Degree(id))
		}
		lo, hi := want.EdgeSlots(id)
		glo, ghi := got.EdgeSlots(id)
		if lo != glo || hi != ghi {
			t.Fatalf("vertex %d slots [%d,%d) vs [%d,%d)", v, lo, hi, glo, ghi)
		}
		for s := lo; s < hi; s++ {
			if want.TargetAt(s) != got.TargetAt(s) || want.LogicalEdge(s) != got.LogicalEdge(s) {
				t.Fatalf("slot %d: (%d,%d) vs (%d,%d)", s,
					want.TargetAt(s), want.LogicalEdge(s), got.TargetAt(s), got.LogicalEdge(s))
			}
		}
		if want.VertexBytes(id) != got.VertexBytes(id) {
			t.Fatalf("vertex %d bytes %d vs %d", v, want.VertexBytes(id), got.VertexBytes(id))
		}
		if want.Partition(id) != got.Partition(id) {
			t.Fatalf("vertex %d partition %d vs %d", v, want.Partition(id), got.Partition(id))
		}
	}
	if want.NumPartitions() != got.NumPartitions() {
		t.Fatalf("partitions %d vs %d", want.NumPartitions(), got.NumPartitions())
	}
	for e := 0; e < want.NumEdges(); e++ {
		if want.Weight(EdgeID(e)) != got.Weight(EdgeID(e)) {
			t.Fatalf("edge %d weight %g vs %g", e, want.Weight(EdgeID(e)), got.Weight(EdgeID(e)))
		}
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	g := csrFixture(t)
	back, err := FromCSR(g.CSRView())
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, g, back)
	if p := back.VertexProps(0); p["name"].Str() != "alice" || !p["vip"].IsTrue() {
		t.Errorf("vertex props lost: %v", p)
	}
	e := back.FindEdge(2, 3)
	if ep := back.EdgeProps(e); ep == nil || ep["ts"].Int64() != 7 {
		t.Errorf("edge props lost: %v", back.EdgeProps(e))
	}
}

func TestFromCSRRecomputesVertexBytes(t *testing.T) {
	g := csrFixture(t)
	d := g.CSRView()
	d.VBytes = nil
	back, err := FromCSR(d)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.VertexBytes(VertexID(v)) != back.VertexBytes(VertexID(v)) {
			t.Fatalf("vertex %d bytes %d recomputed as %d",
				v, g.VertexBytes(VertexID(v)), back.VertexBytes(VertexID(v)))
		}
	}
}

func TestFromCSREmptyGraph(t *testing.T) {
	g := NewBuilder(Directed, 0).Build()
	back, err := FromCSR(g.CSRView())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 0 || back.NumEdges() != 0 {
		t.Fatalf("empty graph came back as %d/%d", back.NumVertices(), back.NumEdges())
	}
}

func TestFromCSRRejectsCorruptColumns(t *testing.T) {
	base := func() CSRData { return csrFixture(t).CSRView() }
	cases := []struct {
		name    string
		mutate  func(d *CSRData)
		wantSub string
	}{
		{"bad kind", func(d *CSRData) { d.Kind = Kind(9) }, "kind"},
		{"no offsets", func(d *CSRData) { d.Offsets = nil }, "offsets"},
		{"offsets start nonzero", func(d *CSRData) {
			d.Offsets = append([]int64(nil), d.Offsets...)
			d.Offsets[0] = 1
		}, "offsets[0]"},
		{"offsets decrease", func(d *CSRData) {
			d.Offsets = append([]int64(nil), d.Offsets...)
			d.Offsets[2] = d.Offsets[1] - 1
		}, "offsets decrease"},
		{"offsets open", func(d *CSRData) {
			d.Offsets = append([]int64(nil), d.Offsets...)
			d.Offsets[len(d.Offsets)-1]++
		}, "offsets end"},
		{"negative edges", func(d *CSRData) { d.NumEdges = -1 }, "negative edge count"},
		{"slot mismatch", func(d *CSRData) { d.NumEdges++ }, "slots"},
		{"target out of range", func(d *CSRData) {
			d.Targets = append([]VertexID(nil), d.Targets...)
			d.Targets[0] = 99
		}, "targets"},
		{"target negative", func(d *CSRData) {
			d.Targets = append([]VertexID(nil), d.Targets...)
			d.Targets[0] = -2
		}, "targets"},
		{"targets unsorted", func(d *CSRData) {
			d.Targets = append([]VertexID(nil), d.Targets...)
			// Vertex 0 has neighbors {1, 3}; swapping breaks the order.
			d.Targets[0], d.Targets[1] = d.Targets[1], d.Targets[0]
		}, "not sorted"},
		{"edge index missing", func(d *CSRData) { d.EdgeIdx = nil }, "edge index"},
		{"edge index out of range", func(d *CSRData) {
			d.EdgeIdx = append([]EdgeID(nil), d.EdgeIdx...)
			d.EdgeIdx[0] = EdgeID(d.NumEdges)
		}, "edge index"},
		{"weights mismatch", func(d *CSRData) { d.Weights = d.Weights[:1] }, "weights"},
		{"vprops mismatch", func(d *CSRData) { d.VProps = d.VProps[:2] }, "vertex property rows"},
		{"eprops mismatch", func(d *CSRData) { d.EProps = d.EProps[:1] }, "edge property rows"},
		{"vbytes mismatch", func(d *CSRData) { d.VBytes = d.VBytes[:1] }, "vertex byte sizes"},
		{"ebytes mismatch", func(d *CSRData) { d.EBytes = d.EBytes[:1] }, "edge byte sizes"},
		{"partition mismatch", func(d *CSRData) { d.Partition = d.Partition[:3] }, "partition"},
		{"partition negative", func(d *CSRData) {
			d.Partition = append([]int32(nil), d.Partition...)
			d.Partition[1] = -4
		}, "partition label"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base()
			tc.mutate(&d)
			_, err := FromCSR(d)
			if err == nil {
				t.Fatal("corrupt columns accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestFromCSRDirectedIdentityEdgeIndex(t *testing.T) {
	b := NewBuilder(Directed, 3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	d := g.CSRView()
	if d.EdgeIdx != nil {
		t.Fatal("directed view carries an edge index")
	}
	d.EdgeIdx = []EdgeID{0, 1}
	if _, err := FromCSR(d); err == nil {
		t.Fatal("explicit edge index on a directed graph accepted")
	}
}
