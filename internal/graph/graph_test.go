package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T, kind Kind) *Graph {
	t.Helper()
	b := NewBuilder(kind, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	return b.Build()
}

func TestDirectedTriangle(t *testing.T) {
	g := buildTriangle(t, Directed)
	if got := g.NumVertices(); got != 3 {
		t.Fatalf("NumVertices = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3", got)
	}
	for v := VertexID(0); v < 3; v++ {
		if d := g.Degree(v); d != 1 {
			t.Errorf("Degree(%d) = %d, want 1", v, d)
		}
	}
	if ns := g.Neighbors(0); len(ns) != 1 || ns[0] != 1 {
		t.Errorf("Neighbors(0) = %v, want [1]", ns)
	}
}

func TestUndirectedTriangle(t *testing.T) {
	g := buildTriangle(t, Undirected)
	if got := g.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3 (logical)", got)
	}
	for v := VertexID(0); v < 3; v++ {
		if d := g.Degree(v); d != 2 {
			t.Errorf("Degree(%d) = %d, want 2", v, d)
		}
	}
	// Both directions of one undirected edge share the logical index.
	e01 := g.FindEdge(0, 1)
	e10 := g.FindEdge(1, 0)
	if e01 == NoEdge || e01 != e10 {
		t.Errorf("FindEdge(0,1)=%d FindEdge(1,0)=%d, want equal logical edges", e01, e10)
	}
}

func TestFindEdgeAbsent(t *testing.T) {
	g := buildTriangle(t, Directed)
	if e := g.FindEdge(1, 0); e != NoEdge {
		t.Errorf("FindEdge(1,0) = %d, want NoEdge in directed triangle", e)
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(Directed, 5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	g := b.Build()
	ns := g.Neighbors(0)
	if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
		t.Errorf("Neighbors(0) = %v, want sorted", ns)
	}
}

func TestWeightsSharedAcrossDirections(t *testing.T) {
	b := NewBuilder(Undirected, 2)
	b.AddWeightedEdge(0, 1, 0.75)
	g := b.Build()
	if !g.HasWeights() {
		t.Fatal("HasWeights() = false, want true")
	}
	if w := g.Weight(g.FindEdge(0, 1)); w != 0.75 {
		t.Errorf("Weight(0-1) = %g, want 0.75", w)
	}
	if w := g.Weight(g.FindEdge(1, 0)); w != 0.75 {
		t.Errorf("Weight(1-0) = %g, want 0.75", w)
	}
}

func TestUnweightedDefaultsToOne(t *testing.T) {
	g := buildTriangle(t, Directed)
	if g.HasWeights() {
		t.Fatal("HasWeights() = true on unweighted graph")
	}
	if w := g.Weight(0); w != 1 {
		t.Errorf("Weight = %g, want 1", w)
	}
}

func TestVertexProperties(t *testing.T) {
	b := NewBuilder(Directed, 2)
	b.AddEdge(0, 1)
	b.SetVertexProps(0, Properties{"name": String("alice"), "age": Int(30)})
	g := b.Build()
	p := g.VertexProps(0)
	if p == nil || p["name"].Str() != "alice" || p["age"].Int64() != 30 {
		t.Errorf("VertexProps(0) = %v", p)
	}
	if g.VertexProps(1) != nil {
		t.Errorf("VertexProps(1) = %v, want nil", g.VertexProps(1))
	}
	// Payload accounting: vertex with props must be strictly larger
	// than the base record, propless vertex exactly base.
	if g.VertexBytes(0) <= g.VertexBytes(1) {
		t.Errorf("VertexBytes(0)=%d should exceed VertexBytes(1)=%d", g.VertexBytes(0), g.VertexBytes(1))
	}
	if g.VertexBytes(1) != vertexBaseBytes {
		t.Errorf("VertexBytes(1) = %d, want %d", g.VertexBytes(1), vertexBaseBytes)
	}
}

func TestEdgeProperties(t *testing.T) {
	b := NewBuilder(Undirected, 2)
	b.AddEdgeFull(0, 1, 1, Properties{"ts": Int(12345)})
	g := b.Build()
	e := g.FindEdge(1, 0)
	if p := g.EdgeProps(e); p == nil || p["ts"].Int64() != 12345 {
		t.Errorf("EdgeProps = %v", p)
	}
	if g.EdgeBytes(e) <= edgeBaseBytes {
		t.Errorf("EdgeBytes = %d, want > %d", g.EdgeBytes(e), edgeBaseBytes)
	}
}

func TestBlobPayloadDominatesSize(t *testing.T) {
	b := NewBuilder(Directed, 1)
	b.SetVertexProps(0, Properties{"photo": Blob(500_000)})
	g := b.Build()
	if got := g.VertexBytes(0); got < 500_000 {
		t.Errorf("VertexBytes = %d, want >= 500000", got)
	}
}

func TestPartition(t *testing.T) {
	b := NewBuilder(Directed, 4)
	b.SetPartition([]int32{0, 1, 1, 2})
	g := b.Build()
	if g.NumPartitions() != 3 {
		t.Errorf("NumPartitions = %d, want 3", g.NumPartitions())
	}
	if g.Partition(2) != 1 {
		t.Errorf("Partition(2) = %d, want 1", g.Partition(2))
	}
}

func TestUnpartitionedDefaults(t *testing.T) {
	g := buildTriangle(t, Directed)
	if g.NumPartitions() != 0 || g.Partition(0) != -1 {
		t.Errorf("unpartitioned graph: NumPartitions=%d Partition(0)=%d", g.NumPartitions(), g.Partition(0))
	}
}

func TestBuilderPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("negative n", func() { NewBuilder(Directed, -1) })
	assertPanics("vertex out of range", func() {
		b := NewBuilder(Directed, 2)
		b.AddEdge(0, 2)
	})
	assertPanics("partition length", func() {
		b := NewBuilder(Directed, 2)
		b.SetPartition([]int32{0})
	})
	assertPanics("double build", func() {
		b := NewBuilder(Directed, 1)
		b.Build()
		b.Build()
	})
	assertPanics("add after build", func() {
		b := NewBuilder(Directed, 2)
		b.Build()
		b.AddEdge(0, 1)
	})
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(Directed, 0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	st := ComputeStats(g)
	if st.MinDegree != 0 || st.MaxDegree != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestStatsRegularRing(t *testing.T) {
	const n = 100
	b := NewBuilder(Undirected, n)
	for v := 0; v < n; v++ {
		b.AddEdge(VertexID(v), VertexID((v+1)%n))
	}
	g := b.Build()
	st := ComputeStats(g)
	if st.MinDegree != 2 || st.MaxDegree != 2 {
		t.Errorf("ring degrees: min=%d max=%d, want 2/2", st.MinDegree, st.MaxDegree)
	}
	if st.DegreeVariance != 0 {
		t.Errorf("ring degree variance = %g, want 0", st.DegreeVariance)
	}
	if st.Gini > 1e-9 {
		t.Errorf("ring gini = %g, want ~0", st.Gini)
	}
}

func TestStatsStar(t *testing.T) {
	const n = 101
	b := NewBuilder(Undirected, n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, VertexID(v))
	}
	g := b.Build()
	st := ComputeStats(g)
	if st.MaxDegree != n-1 {
		t.Errorf("star hub degree = %d, want %d", st.MaxDegree, n-1)
	}
	if st.Gini < 0.4 {
		t.Errorf("star gini = %g, want noticeably skewed (>= 0.4)", st.Gini)
	}
}

// Property: for any random directed edge multiset, the CSR must
// preserve exactly the edges that were inserted (as a multiset).
func TestCSRPreservesEdgesQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%50 + 1
		m := int(mRaw) % 500
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(Directed, n)
		type pair struct{ s, d VertexID }
		want := map[pair]int{}
		for i := 0; i < m; i++ {
			s := VertexID(rng.Intn(n))
			d := VertexID(rng.Intn(n))
			b.AddEdge(s, d)
			want[pair{s, d}]++
		}
		g := b.Build()
		got := map[pair]int{}
		total := 0
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(VertexID(v)) {
				got[pair{VertexID(v), u}]++
				total++
			}
		}
		if total != m {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: undirected graphs are symmetric — u in N(v) iff v in N(u),
// and the degree sum equals twice the logical edge count.
func TestUndirectedSymmetryQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%40 + 2
		m := int(mRaw) % 300
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(Undirected, n)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.Build()
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(VertexID(v))
			for _, u := range g.Neighbors(VertexID(v)) {
				if g.FindEdge(u, VertexID(v)) == NoEdge {
					return false
				}
			}
		}
		return degSum == 2*m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGiniBounds(t *testing.T) {
	f := func(xsRaw []uint8) bool {
		xs := make([]int, len(xsRaw))
		for i, x := range xsRaw {
			xs[i] = int(x)
		}
		g := giniOfInts(xs)
		return g >= -1e-12 && g <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
