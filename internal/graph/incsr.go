package graph

import "fmt"

// InCSR is the in-edge (reverse CSR) view of a graph: for every vertex
// u, the forward CSR slots whose target is u, bucketed by u and sorted
// within each bucket by forward slot. It exists for bottom-up
// (pull-direction) traversal waves, which scan unvisited vertices and
// probe their potential parents via in-edges instead of expanding the
// frontier via out-edges.
//
// The three columns are parallel over forward slots: entry p says that
// forward slot FwdSlot[p] (an index into the forward Targets array)
// leaves Sources[p] and arrives at the bucket owner. Keeping the
// forward slot — not just the source vertex — lets pull kernels apply
// edge predicates and charge trace attribution against the exact same
// logical edge the push path would have used.
type InCSR struct {
	// Offsets has NumVertices+1 entries; the in-edges of u are the
	// parallel entries Sources[Offsets[u]:Offsets[u+1]] /
	// FwdSlot[Offsets[u]:Offsets[u+1]], sorted by forward slot.
	Offsets []int64
	// Sources[p] is the tail vertex of the in-edge at entry p.
	Sources []VertexID
	// FwdSlot[p] is the forward CSR slot of the in-edge at entry p.
	// Forward slots fit uint32: EdgeID is int32, so a graph has at most
	// 2*MaxInt32 slots (two per undirected edge).
	FwdSlot []uint32
}

// Degree returns the in-degree of u (for undirected graphs this equals
// the out-degree, since every edge occupies a slot in both directions).
func (in *InCSR) Degree(u VertexID) int {
	return int(in.Offsets[u+1] - in.Offsets[u])
}

// Edges returns the entry range [lo, hi) of u's in-edges.
func (in *InCSR) Edges(u VertexID) (lo, hi int64) {
	return in.Offsets[u], in.Offsets[u+1]
}

// In returns the in-edge view of the graph, building and caching it on
// first use. Snapshots that persist the in-edge sections preset the
// view at load time, so mmap-backed graphs pay nothing here. Safe for
// concurrent use, like every other read method.
func (g *Graph) In() *InCSR {
	g.inOnce.Do(func() {
		if g.in.Load() == nil {
			g.in.Store(buildInCSR(g))
		}
	})
	return g.in.Load()
}

// InPersisted reports whether the in-edge view was loaded from a
// snapshot (rather than absent or built on demand). Surfaced by
// `graphgen -info` so operators can tell whether a snapshot carries
// the optional in-edge sections.
func (g *Graph) InPersisted() bool { return g.inPersisted }

// buildInCSR derives the reverse CSR from the forward CSR with one
// counting pass and one scatter pass. The scatter walks forward slots
// in ascending order, so every in-bucket comes out sorted by forward
// slot without an explicit sort.
func buildInCSR(g *Graph) *InCSR {
	n := g.NumVertices()
	nSlots := int64(len(g.targets))
	off := make([]int64, n+1)
	for _, t := range g.targets {
		off[t+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	src := make([]VertexID, nSlots)
	slot := make([]uint32, nSlots)
	next := make([]int64, n)
	copy(next, off[:n])
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		for s := lo; s < hi; s++ {
			u := g.targets[s]
			p := next[u]
			src[p] = VertexID(v)
			slot[p] = uint32(s)
			next[u] = p + 1
		}
	}
	return &InCSR{Offsets: off, Sources: src, FwdSlot: slot}
}

// validateInCSR checks preset in-edge columns against the forward CSR:
// the bucket structure must be closed over the slot space, every entry
// must name a real forward slot arriving at its bucket owner and
// leaving its recorded source, and buckets must be sorted by forward
// slot. Load-path validation for untrusted snapshots, so violations
// surface as errors, never panics.
func validateInCSR(d CSRData) error {
	n := len(d.Offsets) - 1
	slots := int64(len(d.Targets))
	if len(d.InOffsets) != n+1 {
		return fmt.Errorf("graph: csr in-offsets has %d entries, want %d", len(d.InOffsets), n+1)
	}
	if d.InOffsets[0] != 0 {
		return fmt.Errorf("graph: csr in-offsets[0] = %d, want 0", d.InOffsets[0])
	}
	for u := 0; u < n; u++ {
		if d.InOffsets[u+1] < d.InOffsets[u] {
			return fmt.Errorf("graph: csr in-offsets decrease at vertex %d (%d -> %d)",
				u, d.InOffsets[u], d.InOffsets[u+1])
		}
	}
	if d.InOffsets[n] != slots {
		return fmt.Errorf("graph: csr in-offsets end at %d, want the %d slots", d.InOffsets[n], slots)
	}
	if int64(len(d.InSources)) != slots {
		return fmt.Errorf("graph: csr %d in-sources for %d slots", len(d.InSources), slots)
	}
	if int64(len(d.InSlots)) != slots {
		return fmt.Errorf("graph: csr %d in-slots for %d slots", len(d.InSlots), slots)
	}
	for u := 0; u < n; u++ {
		lo, hi := d.InOffsets[u], d.InOffsets[u+1]
		for p := lo; p < hi; p++ {
			s := int64(d.InSlots[p])
			if s >= slots {
				return fmt.Errorf("graph: csr in-slot[%d] = %d out of range [0,%d)", p, s, slots)
			}
			if d.Targets[s] != VertexID(u) {
				return fmt.Errorf("graph: csr in-slot[%d] = %d targets vertex %d, want bucket owner %d",
					p, s, d.Targets[s], u)
			}
			v := d.InSources[p]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: csr in-sources[%d] = %d out of range [0,%d)", p, v, n)
			}
			if s < d.Offsets[v] || s >= d.Offsets[v+1] {
				return fmt.Errorf("graph: csr in-sources[%d] = %d does not own forward slot %d", p, v, s)
			}
			if p > lo && s <= int64(d.InSlots[p-1]) {
				return fmt.Errorf("graph: csr in-edges of vertex %d not sorted by forward slot at entry %d", u, p)
			}
		}
	}
	return nil
}
