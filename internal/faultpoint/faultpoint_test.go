package faultpoint

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSetIsInert(t *testing.T) {
	t.Parallel()
	var s *Set
	if f := s.Eval(DiskRead); f.Fired() {
		t.Errorf("nil set fired: %+v", f)
	}
	if s.Hits(DiskRead) != 0 || s.Fired(DiskRead) != 0 || s.TotalFired() != 0 {
		t.Error("nil set has counts")
	}
	if got := s.String(); got != "faultpoint: none" {
		t.Errorf("String() = %q", got)
	}
}

func TestEveryFiresDeterministically(t *testing.T) {
	t.Parallel()
	errBoom := errors.New("boom")
	s := NewSet(1).Add(DiskRead, Rule{Every: 3, Err: errBoom})
	var fired []int
	for i := 1; i <= 12; i++ {
		if f := s.Eval(DiskRead); f.Fired() {
			fired = append(fired, i)
			if f.Err != errBoom {
				t.Errorf("hit %d: err = %v", i, f.Err)
			}
		}
	}
	want := []int{3, 6, 9, 12}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
	if s.Hits(DiskRead) != 12 || s.Fired(DiskRead) != 4 {
		t.Errorf("hits=%d fired=%d", s.Hits(DiskRead), s.Fired(DiskRead))
	}
}

func TestProbScheduleIsSeedDeterministic(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) []int64 {
		s := NewSet(seed).Add(Dequeue, Rule{Prob: 0.3, Delay: time.Nanosecond})
		var fired []int64
		for i := int64(1); i <= 200; i++ {
			if s.Eval(Dequeue).Fired() {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different schedules at %d", i)
		}
	}
	if len(a) == 0 || len(a) == 200 {
		t.Errorf("prob 0.3 fired %d/200 — degenerate", len(a))
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestProbRateRoughlyHonored(t *testing.T) {
	t.Parallel()
	s := NewSet(7).Add(SchedRound, Rule{Prob: 0.5, Delay: time.Nanosecond})
	for i := 0; i < 2000; i++ {
		s.Eval(SchedRound)
	}
	got := s.Fired(SchedRound)
	if got < 800 || got > 1200 {
		t.Errorf("prob 0.5 fired %d/2000", got)
	}
}

func TestConcurrentEvalCountsEveryHit(t *testing.T) {
	t.Parallel()
	s := NewSet(9).Add(DiskRead, Rule{Every: 2, Delay: time.Nanosecond})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Eval(DiskRead)
			}
		}()
	}
	wg.Wait()
	if got := s.Hits(DiskRead); got != workers*per {
		t.Errorf("hits = %d, want %d", got, workers*per)
	}
	if got := s.Fired(DiskRead); got != workers*per/2 {
		t.Errorf("fired = %d, want %d (Every=2 is interleaving-independent)", got, workers*per/2)
	}
}

func TestSleepRespectsContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	Fault{Delay: time.Minute}.Sleep(ctx)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Sleep ignored cancelled context (%v)", elapsed)
	}
	Fault{}.Sleep(nil)                                     // no-op
	Fault{Delay: time.Microsecond}.Sleep(nil)              // nil ctx sleeps plainly
	Fault{Delay: -time.Second}.Sleep(context.Background()) // negative: no-op
}

func TestRuleValidation(t *testing.T) {
	t.Parallel()
	bad := []Rule{
		{Prob: -0.1, Delay: 1},
		{Prob: 1.5, Delay: 1},
		{Every: -1, Delay: 1},
		{Prob: 0.5, Delay: -time.Second},
		{}, // never fires
	}
	for i, r := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rule %d (%+v) accepted", i, r)
				}
			}()
			NewSet(1).Add(DiskRead, r)
		}()
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	t.Parallel()
	errA, errB := errors.New("a"), errors.New("b")
	s := NewSet(1).
		Add(DiskRead, Rule{Every: 2, Err: errA}).
		Add(DiskRead, Rule{Every: 1, Err: errB})
	if f := s.Eval(DiskRead); f.Err != errB { // hit 1: only Every=1 matches
		t.Errorf("hit 1 err = %v", f.Err)
	}
	if f := s.Eval(DiskRead); f.Err != errA { // hit 2: first rule matches first
		t.Errorf("hit 2 err = %v", f.Err)
	}
	if s.TotalFired() != 2 {
		t.Errorf("total fired = %d", s.TotalFired())
	}
	if !strings.Contains(s.String(), "disk.read=2/2") {
		t.Errorf("String() = %q", s.String())
	}
}
