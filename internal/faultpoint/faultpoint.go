// Package faultpoint provides deterministic fault injection for the
// live runtime and the shared-disk model. A Set holds named injection
// points (disk reads, unit dequeues, scheduler rounds); production
// code evaluates a point before the guarded operation and applies the
// returned fault, if any: an added latency (spike or stall) and/or a
// transient error.
//
// Determinism: whether the k-th hit of a point fires is a pure
// function of (set seed, point name, k, rule). Concurrent callers may
// interleave hit ordinals differently between runs, but the *schedule*
// — which ordinals fire and with what fault — is fixed by the seed, so
// a stress run with F fired faults always has exactly F fired faults
// at the same relative positions in each point's hit stream. A nil
// *Set is valid and injects nothing, making the hooks free to leave in
// production paths.
package faultpoint

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site.
type Point string

// The injection sites wired into the runtime.
const (
	// DiskRead guards each shared-disk fetch (cache-miss path).
	DiskRead Point = "disk.read"
	// Dequeue guards a worker picking the next task off its queue.
	Dequeue Point = "unit.dequeue"
	// SchedRound guards one dispatcher scheduling round.
	SchedRound Point = "sched.round"
)

// Fault is the outcome of evaluating a point: the zero value means
// "no fault".
type Fault struct {
	// Delay is added latency: a spike on disk reads, a stall on
	// dequeues or scheduler rounds.
	Delay time.Duration
	// Err, when non-nil, is a transient error the operation should
	// surface (or internally retry).
	Err error
}

// Fired reports whether the fault does anything.
func (f Fault) Fired() bool { return f.Delay > 0 || f.Err != nil }

// Sleep pauses for the fault's delay, returning early if ctx is
// cancelled first.
func (f Fault) Sleep(ctx context.Context) {
	if f.Delay <= 0 {
		return
	}
	if ctx == nil {
		time.Sleep(f.Delay)
		return
	}
	t := time.NewTimer(f.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Rule describes when and how a point fires. Every and Prob compose:
// a hit fires if it matches Every, or if the seeded coin for its
// ordinal lands under Prob.
type Rule struct {
	// Prob fires a hit with this probability, decided by a hash of
	// (seed, point, ordinal) — not by a shared RNG stream, so the
	// decision for hit k never depends on interleaving.
	Prob float64
	// Every fires deterministically on hits Every, 2·Every, ... (1 =
	// every hit, 0 = disabled).
	Every int64
	// Delay and Err are the injected fault.
	Delay time.Duration
	Err   error
}

func (r Rule) validate() error {
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("faultpoint: Prob = %g, want [0,1]", r.Prob)
	}
	if r.Every < 0 {
		return fmt.Errorf("faultpoint: Every = %d, want >= 0", r.Every)
	}
	if r.Delay < 0 {
		return fmt.Errorf("faultpoint: Delay = %v, want >= 0", r.Delay)
	}
	if r.Prob == 0 && r.Every == 0 {
		return fmt.Errorf("faultpoint: rule fires never (Prob = 0, Every = 0)")
	}
	return nil
}

type pointState struct {
	hits  atomic.Int64
	fired atomic.Int64
	rules []Rule // immutable after Add
}

// Set is a seeded collection of fault rules. Evaluation is lock-free
// after construction; Add must finish before the Set is shared.
type Set struct {
	seed uint64

	mu     sync.Mutex
	points map[Point]*pointState
}

// NewSet creates an empty fault set with the given schedule seed.
func NewSet(seed uint64) *Set {
	return &Set{seed: seed, points: make(map[Point]*pointState)}
}

// Add registers a rule at a point. Multiple rules on one point are
// evaluated in registration order; the first that fires wins. Add
// panics on invalid rules (programmer error in test setup).
func (s *Set) Add(p Point, r Rule) *Set {
	if err := r.validate(); err != nil {
		panic(err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.points[p]
	if st == nil {
		st = &pointState{}
		s.points[p] = st
	}
	st.rules = append(st.rules, r)
	return s
}

// Eval records one hit of the point and returns the fault scheduled
// for that hit ordinal (zero Fault if none). Safe for concurrent use;
// safe on a nil Set.
func (s *Set) Eval(p Point) Fault {
	if s == nil {
		return Fault{}
	}
	s.mu.Lock()
	st := s.points[p]
	s.mu.Unlock()
	if st == nil {
		return Fault{}
	}
	n := st.hits.Add(1)
	for ri, r := range st.rules {
		if r.Every > 0 && n%r.Every == 0 {
			st.fired.Add(1)
			return Fault{Delay: r.Delay, Err: r.Err}
		}
		if r.Prob > 0 && coin(s.seed, p, ri, n) < r.Prob {
			st.fired.Add(1)
			return Fault{Delay: r.Delay, Err: r.Err}
		}
	}
	return Fault{}
}

// Hits returns how many times the point has been evaluated.
func (s *Set) Hits(p Point) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	st := s.points[p]
	s.mu.Unlock()
	if st == nil {
		return 0
	}
	return st.hits.Load()
}

// Fired returns how many evaluations of the point injected a fault.
func (s *Set) Fired(p Point) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	st := s.points[p]
	s.mu.Unlock()
	if st == nil {
		return 0
	}
	return st.fired.Load()
}

// TotalFired sums Fired over every registered point.
func (s *Set) TotalFired() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, st := range s.points {
		total += st.fired.Load()
	}
	return total
}

// String summarizes hit/fired counts per point, sorted by name.
func (s *Set) String() string {
	if s == nil {
		return "faultpoint: none"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.points))
	for p := range s.points {
		names = append(names, string(p))
	}
	sort.Strings(names)
	out := "faultpoint:"
	for _, name := range names {
		st := s.points[Point(name)]
		out += fmt.Sprintf(" %s=%d/%d", name, st.fired.Load(), st.hits.Load())
	}
	return out
}

// coin maps (seed, point, rule index, ordinal) to a uniform [0,1)
// value via a splitmix64-style finalizer over an FNV-mixed key.
func coin(seed uint64, p Point, rule int, ordinal int64) float64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(p); i++ {
		h = (h ^ uint64(p[i])) * 0x100000001b3
	}
	h ^= uint64(rule) * 0xff51afd7ed558ccd
	h ^= uint64(ordinal) * 0xc4ceb9fe1a85ec53
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}
