// Package cache implements the per-processing-unit memory buffer of
// the shared-disk architecture: a byte-budget LRU over graph records.
// When a traversal touches a vertex or edge whose record is resident,
// the access is a cheap memory hit; otherwise the record must be
// fetched from the shared disk and inserted, evicting
// least-recently-used records once the budget is exceeded — the
// "LRU-like replacement policy" of IBM System G described in
// Section VI of the paper.
package cache

import "fmt"

// Key identifies a cached record. Callers pack a record kind and ID;
// see VertexKey and EdgeKey.
type Key uint64

// VertexKey returns the cache key of vertex id.
func VertexKey(id int32) Key { return Key(uint64(uint32(id))) }

// EdgeKey returns the cache key of logical edge id.
func EdgeKey(id int32) Key { return Key(uint64(uint32(id)) | 1<<32) }

// Unlimited configures a cache with no byte budget (the paper's
// "unlimited" memory point in Figure 9).
const Unlimited int64 = 0

// Stats counts cache activity since creation.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// BytesLoaded is the total size of records inserted (i.e. fetched
	// from the shared disk).
	BytesLoaded int64
}

// HitRate returns hits/(hits+misses), or 0 when idle.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d loaded=%dB hit-rate=%.3f",
		s.Hits, s.Misses, s.Evictions, s.BytesLoaded, s.HitRate())
}

// CounterSink receives live activity deltas; *obs.Counter satisfies
// it. Sinks let a concurrent observer (e.g. a /metrics scrape) watch a
// cache owned by a single worker goroutine without the cache taking
// locks: the sink itself is responsible for atomicity.
type CounterSink interface {
	Add(delta int64)
}

// Sinks mirrors Stats increments to external counters. Any field may
// be nil.
type Sinks struct {
	Hits, Misses, Evictions, BytesLoaded CounterSink
}

type entry struct {
	key        Key
	size       int64
	prev, next *entry
}

// Cache is a byte-budget LRU. It is not safe for concurrent use; each
// processing unit owns one.
type Cache struct {
	budget  int64 // <= 0 means unlimited
	used    int64
	entries map[Key]*entry
	// Sentinel-based doubly linked list; head.next is most recent,
	// head.prev is least recent.
	head  entry
	stats Stats
	sinks Sinks
}

// New creates a cache with the given byte budget; a budget <= 0 means
// unlimited capacity.
func New(budgetBytes int64) *Cache {
	c := &Cache{budget: budgetBytes, entries: make(map[Key]*entry)}
	c.head.prev = &c.head
	c.head.next = &c.head
	return c
}

// Budget returns the configured byte budget (<= 0 when unlimited).
func (c *Cache) Budget() int64 { return c.budget }

// Used returns the bytes currently resident.
func (c *Cache) Used() int64 { return c.used }

// Len returns the number of resident records.
func (c *Cache) Len() int { return len(c.entries) }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetSinks installs external counters mirroring future Stats
// increments (existing totals are not replayed). Call before the
// owning goroutine starts using the cache.
func (c *Cache) SetSinks(s Sinks) { c.sinks = s }

// sink adds delta to s when s is non-nil.
func sink(s CounterSink, delta int64) {
	if s != nil {
		s.Add(delta)
	}
}

// Contains reports residency without touching recency or stats.
func (c *Cache) Contains(k Key) bool {
	_, ok := c.entries[k]
	return ok
}

func (c *Cache) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache) pushFront(e *entry) {
	e.next = c.head.next
	e.prev = &c.head
	c.head.next.prev = e
	c.head.next = e
}

// Access records a read of record k with the given size. If resident,
// the record is refreshed (LRU touch) and Access reports a hit; when
// the caller's size differs from the resident one (a record that grew
// or shrank since it was loaded), the entry is resized in place,
// `used` is adjusted by the delta, and eviction re-runs so the budget
// holds again. If absent, it is loaded — charging BytesLoaded,
// evicting LRU records past the budget — and Access reports a miss. A
// record larger than the whole budget is still admitted alone (the
// unit cannot traverse without it) and evicts everything else.
func (c *Cache) Access(k Key, size int64) (hit bool) {
	if size < 0 {
		panic(fmt.Sprintf("cache: negative record size %d", size))
	}
	if e, ok := c.entries[k]; ok {
		c.stats.Hits++
		sink(c.sinks.Hits, 1)
		c.unlink(e)
		c.pushFront(e)
		if size != e.size {
			c.used += size - e.size
			e.size = size
			c.evictOverBudget(e)
		}
		return true
	}
	c.stats.Misses++
	c.stats.BytesLoaded += size
	sink(c.sinks.Misses, 1)
	sink(c.sinks.BytesLoaded, size)
	e := &entry{key: k, size: size}
	c.entries[k] = e
	c.pushFront(e)
	c.used += size
	c.evictOverBudget(e)
	return false
}

// evictOverBudget removes LRU entries until the budget is met, never
// evicting keep (the record just inserted).
func (c *Cache) evictOverBudget(keep *entry) {
	if c.budget <= 0 {
		return
	}
	for c.used > c.budget {
		victim := c.head.prev
		if victim == &c.head || victim == keep {
			return
		}
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.used -= victim.size
		c.stats.Evictions++
		sink(c.sinks.Evictions, 1)
	}
}

// Flush drops every resident record (used by memory-reconfiguration
// experiments). Stats are preserved.
func (c *Cache) Flush() {
	c.entries = make(map[Key]*entry)
	c.head.prev = &c.head
	c.head.next = &c.head
	c.used = 0
}

// LRUKeys returns the resident keys from least to most recently used;
// intended for tests and debugging.
func (c *Cache) LRUKeys() []Key {
	keys := make([]Key, 0, len(c.entries))
	for e := c.head.prev; e != &c.head; e = e.prev {
		keys = append(keys, e.key)
	}
	return keys
}
