package cache

import (
	"testing"
	"testing/quick"

	"subtrav/internal/xrand"
)

func TestMissThenHit(t *testing.T) {
	c := New(100)
	if hit := c.Access(VertexKey(1), 10); hit {
		t.Error("first access should miss")
	}
	if hit := c.Access(VertexKey(1), 10); !hit {
		t.Error("second access should hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.BytesLoaded != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestVertexAndEdgeKeysDisjoint(t *testing.T) {
	if VertexKey(5) == EdgeKey(5) {
		t.Fatal("vertex and edge keys must not collide")
	}
	c := New(100)
	c.Access(VertexKey(5), 1)
	if c.Contains(EdgeKey(5)) {
		t.Error("edge key should not be resident after vertex insert")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(30)
	c.Access(VertexKey(1), 10)
	c.Access(VertexKey(2), 10)
	c.Access(VertexKey(3), 10)
	// Touch 1 so 2 becomes the LRU victim.
	c.Access(VertexKey(1), 10)
	c.Access(VertexKey(4), 10) // must evict 2
	if c.Contains(VertexKey(2)) {
		t.Error("vertex 2 should have been evicted (LRU)")
	}
	if !c.Contains(VertexKey(1)) || !c.Contains(VertexKey(3)) || !c.Contains(VertexKey(4)) {
		t.Error("wrong eviction victim")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestBudgetRespected(t *testing.T) {
	c := New(100)
	for i := int32(0); i < 1000; i++ {
		c.Access(VertexKey(i), 7)
	}
	if c.Used() > 100 {
		t.Errorf("used %d exceeds budget 100", c.Used())
	}
	if c.Len() != int(c.Used()/7) {
		t.Errorf("len %d inconsistent with used %d", c.Len(), c.Used())
	}
}

func TestUnlimitedNeverEvicts(t *testing.T) {
	c := New(Unlimited)
	for i := int32(0); i < 10_000; i++ {
		c.Access(VertexKey(i), 1000)
	}
	if c.Stats().Evictions != 0 {
		t.Errorf("unlimited cache evicted %d", c.Stats().Evictions)
	}
	if c.Len() != 10_000 {
		t.Errorf("len = %d, want 10000", c.Len())
	}
}

func TestOversizedRecordAdmitted(t *testing.T) {
	c := New(50)
	c.Access(VertexKey(1), 10)
	c.Access(VertexKey(2), 500) // larger than entire budget
	if !c.Contains(VertexKey(2)) {
		t.Error("oversized record must still be admitted")
	}
	if c.Contains(VertexKey(1)) {
		t.Error("smaller records should be evicted to make room")
	}
	// Re-inserting a small record must evict the oversized one.
	c.Access(VertexKey(3), 10)
	if c.Contains(VertexKey(2)) {
		t.Error("oversized record should be evicted when next record arrives")
	}
}

func TestFlush(t *testing.T) {
	c := New(100)
	c.Access(VertexKey(1), 10)
	c.Access(VertexKey(2), 10)
	c.Flush()
	if c.Len() != 0 || c.Used() != 0 {
		t.Errorf("after flush: len=%d used=%d", c.Len(), c.Used())
	}
	if c.Contains(VertexKey(1)) {
		t.Error("record survived flush")
	}
	if c.Stats().Misses != 2 {
		t.Error("flush should preserve stats")
	}
}

func TestLRUKeysOrder(t *testing.T) {
	c := New(Unlimited)
	c.Access(VertexKey(1), 1)
	c.Access(VertexKey(2), 1)
	c.Access(VertexKey(3), 1)
	c.Access(VertexKey(1), 1) // 1 becomes most recent
	keys := c.LRUKeys()
	want := []Key{VertexKey(2), VertexKey(3), VertexKey(1)}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("idle hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %g, want 0.75", s.HitRate())
	}
}

// Regression: the hit path used to ignore `size`, so a record
// re-accessed with a drifted size left `used` permanently wrong and
// the budget silently violated.
func TestHitResizesDriftedRecord(t *testing.T) {
	c := New(100)
	c.Access(VertexKey(1), 40)
	c.Access(VertexKey(2), 40)
	if got := c.Used(); got != 80 {
		t.Fatalf("used = %d, want 80", got)
	}

	// Shrink on hit: used must drop with it.
	if hit := c.Access(VertexKey(1), 10); !hit {
		t.Fatal("resized access should still hit")
	}
	if got := c.Used(); got != 50 {
		t.Errorf("used after shrink = %d, want 50", got)
	}
	if c.Stats().Evictions != 0 {
		t.Errorf("shrink must not evict, got %d evictions", c.Stats().Evictions)
	}

	// Grow on hit past the budget (10 + 95 = 105 > 100): eviction must
	// re-run and the grown record (just touched, so most recent) must
	// survive.
	if hit := c.Access(VertexKey(2), 95); !hit {
		t.Fatal("resized access should still hit")
	}
	if c.Contains(VertexKey(1)) {
		t.Error("LRU record should be evicted when a hit record grows past the budget")
	}
	if !c.Contains(VertexKey(2)) {
		t.Error("grown record must survive its own resize eviction")
	}
	if got := c.Used(); got != 95 {
		t.Errorf("used after grow = %d, want 95", got)
	}
	if got := c.Stats().Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}

	// Same-size hit keeps the fast path: nothing changes.
	c.Access(VertexKey(2), 95)
	if got := c.Used(); got != 95 {
		t.Errorf("used after same-size hit = %d, want 95", got)
	}
	// BytesLoaded only counts genuine loads, never hit-path resizes.
	if got := c.Stats().BytesLoaded; got != 80 {
		t.Errorf("bytes loaded = %d, want 80", got)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative size")
		}
	}()
	New(10).Access(VertexKey(1), -1)
}

// Property: used bytes always equal the sum of resident record sizes
// and never exceed the budget (when all records fit individually) —
// even when a record's size drifts between accesses, exercising the
// hit-path resize.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed uint64, ops uint16) bool {
		rng := xrand.New(seed)
		const budget = 200
		c := New(budget)
		sizes := map[Key]int64{}
		for i := 0; i < int(ops)%500+1; i++ {
			k := VertexKey(int32(rng.Intn(50)))
			size := int64(rng.Intn(40) + 1) // always < budget
			sizes[k] = size                 // hit path adopts the new size
			c.Access(k, size)
			if c.Used() > budget {
				return false
			}
		}
		var sum int64
		for _, k := range c.LRUKeys() {
			sum += sizes[k]
		}
		return sum == c.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits+misses equals the number of accesses, and a hit never
// increases BytesLoaded.
func TestAccountingQuick(t *testing.T) {
	f := func(seed uint64, ops uint16) bool {
		rng := xrand.New(seed)
		c := New(Unlimited)
		n := int(ops)%300 + 1
		var expectedLoads int64
		loaded := map[Key]bool{}
		for i := 0; i < n; i++ {
			k := VertexKey(int32(rng.Intn(30)))
			if !loaded[k] {
				expectedLoads += 5
				loaded[k] = true
			}
			c.Access(k, 5)
		}
		st := c.Stats()
		return st.Hits+st.Misses == int64(n) && st.BytesLoaded == expectedLoads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
