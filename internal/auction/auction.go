// Package auction implements the assignment solvers of Section V: the
// Bertsekas auction algorithm in sequential (Gauss-Seidel) and
// parallel (Jacobi, goroutine-based) forms, an incremental Auctioneer
// that warm-starts prices across scheduling rounds, ε-scaling, and two
// exact reference solvers (Hungarian and brute force) used by tests to
// verify the ε-optimality guarantee.
//
// The primal problem is Eq. 5 of the paper: select a matching between
// rows (subgraph traversal tasks) and columns (processing units) that
// maximizes total benefit; the auction computes the dual variables of
// Eq. 6 through iterative bidding (Algorithm 1).
package auction

import (
	"fmt"
	"math"
)

// Arc is one admissible (row, column) pair with its benefit a_ij —
// an edge of the dynamic bipartite graph B with weight from Eq. 4.
type Arc struct {
	Col     int
	Benefit float64
}

// Problem is a sparse rectangular assignment problem. Row i may be
// assigned to one of Rows[i]'s columns. len(Rows) may exceed NumCols,
// in which case some rows necessarily stay unassigned.
type Problem struct {
	NumCols int
	Rows    [][]Arc
}

// NumRows returns the number of bidder rows.
func (p Problem) NumRows() int { return len(p.Rows) }

// Validate checks arc ranges.
func (p Problem) Validate() error {
	if p.NumCols < 0 {
		return fmt.Errorf("auction: NumCols = %d", p.NumCols)
	}
	for i, arcs := range p.Rows {
		for _, a := range arcs {
			if a.Col < 0 || a.Col >= p.NumCols {
				return fmt.Errorf("auction: row %d has arc to column %d, want [0,%d)", i, a.Col, p.NumCols)
			}
			if math.IsNaN(a.Benefit) || math.IsInf(a.Benefit, 0) {
				return fmt.Errorf("auction: row %d has non-finite benefit %v", i, a.Benefit)
			}
		}
	}
	return nil
}

// benefitRange returns the spread max-min over all arcs (0 if none).
func (p Problem) benefitRange() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, arcs := range p.Rows {
		for _, a := range arcs {
			if a.Benefit < lo {
				lo = a.Benefit
			}
			if a.Benefit > hi {
				hi = a.Benefit
			}
		}
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Dense builds a fully dense problem from a benefit matrix.
func Dense(benefits [][]float64) Problem {
	numCols := 0
	if len(benefits) > 0 {
		numCols = len(benefits[0])
	}
	p := Problem{NumCols: numCols, Rows: make([][]Arc, len(benefits))}
	for i, row := range benefits {
		arcs := make([]Arc, len(row))
		for j, b := range row {
			arcs[j] = Arc{Col: j, Benefit: b}
		}
		p.Rows[i] = arcs
	}
	return p
}

// Assignment is the result of a solver run: the matching M of
// Algorithm 1 plus bookkeeping.
type Assignment struct {
	// RowToCol[i] is the column assigned to row i, or -1.
	RowToCol []int
	// ColToRow[j] is the row assigned to column j, or -1.
	ColToRow []int
	// Benefit is the total benefit of the matched arcs.
	Benefit float64
	// Rounds is the number of bidding rounds executed.
	Rounds int
	// Bids is the total number of individual bids placed.
	Bids int64
}

// Unassigned returns the rows left without a column.
func (a Assignment) Unassigned() []int {
	var out []int
	for i, c := range a.RowToCol {
		if c < 0 {
			out = append(out, i)
		}
	}
	return out
}

// NumAssigned returns the matching cardinality.
func (a Assignment) NumAssigned() int {
	n := 0
	for _, c := range a.RowToCol {
		if c >= 0 {
			n++
		}
	}
	return n
}

// Options tunes the auction solvers.
type Options struct {
	// Epsilon is the minimum price increment that prevents the price
	// war of Section V-B. The final assignment is within
	// NumRows*Epsilon of optimal. Must be > 0; DefaultEpsilon is used
	// when zero.
	Epsilon float64
	// Scaling enables ε-scaling: bidding starts with a coarse ε
	// (benefitRange/2) and refines by ScalingFactor until reaching
	// Epsilon, reusing prices between phases. Reduces rounds on large
	// problems.
	//
	// The optimality bound of ε-scaling needs every column assigned at
	// the end of each phase (otherwise warm prices leave stale
	// positive prices on columns the final phase never assigns).
	// Square problems satisfy that directly; rectangular problems are
	// padded to square with zero-benefit dummy rows/columns — the
	// standard transformation — so Scaling applies to any shape. For
	// problems with zero-benefit optimal arcs the padded form may
	// leave such rows unassigned (equal objective).
	Scaling bool
	// ScalingFactor divides ε between phases (default 4).
	ScalingFactor float64
	// Workers is the number of goroutines used by SolveParallel's bid
	// phase (default: 1 worker per 64 rows, capped at 8).
	Workers int
	// MaxRounds caps bidding rounds as a safety net against
	// pathological inputs (default 0: derived from problem size).
	MaxRounds int

	// parallel selects the Jacobi solver inside the Auctioneer; set
	// via AuctioneerConfig.Parallel.
	parallel bool
}

// DefaultEpsilon is the price increment used when Options.Epsilon is
// zero. Benefits produced by the affinity scorer live in [0, 1]ε̃⁻¹, so
// 1e-3 gives near-optimal assignments at speed.
const DefaultEpsilon = 1e-3

func (o Options) withDefaults(p Problem) Options {
	if o.Epsilon <= 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.ScalingFactor <= 1 {
		o.ScalingFactor = 4
	}
	if o.MaxRounds <= 0 {
		// Theoretical round bounds are O(n²·C/ε); this cap is generous
		// and in practice never reached on feasible inputs.
		n := p.NumRows() + p.NumCols + 1
		c := p.benefitRange()
		cap := 1000 + 10*n + int(float64(2*p.NumRows()+1)*(c+1)/o.Epsilon)
		o.MaxRounds = cap
	}
	return o
}

// state is the shared auction machinery used by both solver variants.
type state struct {
	p        Problem
	prices   []float64
	rowToCol []int
	colToRow []int
	// profitFloor is the "second-best profit" used when a row has a
	// single admissible column, standing in for -∞ without producing
	// unbounded prices.
	profitFloor float64
	bids        int64
}

func newState(p Problem, prices []float64) *state {
	s := &state{
		p:        p,
		prices:   prices,
		rowToCol: make([]int, p.NumRows()),
		colToRow: make([]int, p.NumCols),
	}
	for i := range s.rowToCol {
		s.rowToCol[i] = -1
	}
	for j := range s.colToRow {
		s.colToRow[j] = -1
	}
	maxPrice := 0.0
	for _, pr := range prices {
		if pr > maxPrice {
			maxPrice = pr
		}
	}
	minBenefit := math.Inf(1)
	for _, arcs := range p.Rows {
		for _, a := range arcs {
			if a.Benefit < minBenefit {
				minBenefit = a.Benefit
			}
		}
	}
	if math.IsInf(minBenefit, 1) {
		minBenefit = 0
	}
	// Infeasibility detection depth: a row is declared unassignable
	// only after prices have risen far enough that no augmenting chain
	// could still assign it (Bertsekas' (2n-1)·C bound, padded).
	depth := float64(2*p.NumRows()+1) * (p.benefitRange() + 1)
	s.profitFloor = minBenefit - maxPrice - depth
	return s
}

// bestTwo computes the best and second-best profit a_ij - p_j over
// row i's arcs. ok is false when the row has no arcs.
func (s *state) bestTwo(i int) (bestCol int, bestProfit, secondProfit float64, ok bool) {
	arcs := s.p.Rows[i]
	if len(arcs) == 0 {
		return -1, 0, 0, false
	}
	bestCol = -1
	bestProfit = math.Inf(-1)
	secondProfit = math.Inf(-1)
	for _, a := range arcs {
		profit := a.Benefit - s.prices[a.Col]
		if profit > bestProfit {
			secondProfit = bestProfit
			bestProfit = profit
			bestCol = a.Col
		} else if profit > secondProfit {
			secondProfit = profit
		}
	}
	if math.IsInf(secondProfit, -1) {
		secondProfit = s.profitFloor
	}
	return bestCol, bestProfit, secondProfit, true
}

// assign gives column j to row i, displacing and returning the prior
// owner (-1 if none).
func (s *state) assign(i, j int) (displaced int) {
	displaced = s.colToRow[j]
	if displaced >= 0 {
		s.rowToCol[displaced] = -1
	}
	s.colToRow[j] = i
	s.rowToCol[i] = j
	return displaced
}

// result packages the current matching.
func (s *state) result(rounds int) Assignment {
	a := Assignment{
		RowToCol: s.rowToCol,
		ColToRow: s.colToRow,
		Rounds:   rounds,
		Bids:     s.bids,
	}
	for i, j := range s.rowToCol {
		if j >= 0 {
			for _, arc := range s.p.Rows[i] {
				if arc.Col == j {
					a.Benefit += arc.Benefit
					break
				}
			}
		}
	}
	return a
}

// Solve runs the sequential Gauss-Seidel auction: one bidder at a time
// bids, wins, and displaces — the textbook form of Algorithm 1.
func Solve(p Problem, opts Options) Assignment {
	return solveWithPrices(p, opts, make([]float64, p.NumCols))
}

// SolvePriced runs the sequential auction with caller-provided initial
// prices (len == NumCols). The slice is updated in place with the
// final dual prices, enabling warm starts and ε-CS verification.
func SolvePriced(p Problem, opts Options, prices []float64) Assignment {
	return solveWithPrices(p, opts, prices)
}

// SolveParallelPriced is SolveParallel with caller-provided prices,
// updated in place.
func SolveParallelPriced(p Problem, opts Options, prices []float64) Assignment {
	return solveParallelWithPrices(p, opts, prices)
}

func solveWithPrices(p Problem, opts Options, prices []float64) Assignment {
	opts = opts.withDefaults(p)
	if opts.Scaling {
		return scaleViaSquare(p, opts, prices, sequentialRounds)
	}
	s := newState(p, prices)
	rounds := sequentialRounds(s, opts.Epsilon, opts.MaxRounds)
	return s.result(rounds)
}

// scaleViaSquare runs ε-scaling, padding rectangular problems to
// square with zero-benefit dummies first (see Options.Scaling).
func scaleViaSquare(p Problem, opts Options, prices []float64, run func(*state, float64, int) int) Assignment {
	n, m := p.NumRows(), p.NumCols
	if n == m {
		return solveScaled(p, opts, prices, run)
	}
	square := Problem{NumCols: m, Rows: p.Rows}
	if m > n {
		// Dummy rows adjacent to every column with benefit 0.
		dummyArcs := make([]Arc, m)
		for j := range dummyArcs {
			dummyArcs[j] = Arc{Col: j}
		}
		rows := make([][]Arc, m)
		copy(rows, p.Rows)
		for i := n; i < m; i++ {
			rows[i] = dummyArcs
		}
		square.Rows = rows
	} else {
		// Dummy columns adjacent to every row with benefit 0.
		square.NumCols = n
		rows := make([][]Arc, n)
		for i, arcs := range p.Rows {
			padded := make([]Arc, len(arcs), len(arcs)+n-m)
			copy(padded, arcs)
			for j := m; j < n; j++ {
				padded = append(padded, Arc{Col: j})
			}
			rows[i] = padded
		}
		square.Rows = rows
	}
	squarePrices := prices
	if square.NumCols > len(prices) {
		squarePrices = make([]float64, square.NumCols)
		copy(squarePrices, prices)
	}
	res := solveScaled(square, opts, squarePrices, run)
	copy(prices, squarePrices[:min(len(prices), len(squarePrices))])

	out := Assignment{
		RowToCol: make([]int, n),
		ColToRow: make([]int, m),
		Rounds:   res.Rounds,
		Bids:     res.Bids,
	}
	for j := range out.ColToRow {
		out.ColToRow[j] = -1
	}
	for i := 0; i < n; i++ {
		j := res.RowToCol[i]
		if j >= 0 && j < m {
			out.RowToCol[i] = j
			out.ColToRow[j] = i
		} else {
			out.RowToCol[i] = -1 // parked on a dummy column
		}
	}
	out.Benefit = res.Benefit // dummy arcs contribute exactly 0
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sequentialRounds runs Gauss-Seidel bidding until no assignable row
// remains unassigned; returns rounds executed.
func sequentialRounds(s *state, eps float64, maxRounds int) int {
	// Queue of unassigned rows; rows found unassignable (no arcs, or
	// priced out) are dropped.
	queue := make([]int, 0, s.p.NumRows())
	for i := range s.p.Rows {
		queue = append(queue, i)
	}
	rounds := 0
	for len(queue) > 0 && rounds < maxRounds {
		rounds++
		i := queue[0]
		queue = queue[1:]
		if s.rowToCol[i] >= 0 {
			continue
		}
		j, best, second, ok := s.bestTwo(i)
		if !ok || best < s.profitFloor {
			continue // unassignable
		}
		s.bids++
		// Price rises by the bid increment: best-second+ε (Line 9 of
		// Algorithm 1: p_{j1} ← a_{ij1} − a_{ij2} + p_{j2} + ε).
		s.prices[j] += best - second + eps
		if displaced := s.assign(i, j); displaced >= 0 {
			queue = append(queue, displaced)
		}
	}
	return rounds
}

// solveScaled runs ε-scaling phases, reusing prices between phases.
func solveScaled(p Problem, opts Options, prices []float64, run func(*state, float64, int) int) Assignment {
	rangeC := p.benefitRange()
	eps := rangeC / 2
	if eps <= opts.Epsilon {
		eps = opts.Epsilon
	}
	var s *state
	totalRounds := 0
	for {
		s = newState(p, prices)
		totalRounds += run(s, eps, opts.MaxRounds)
		if eps <= opts.Epsilon {
			break
		}
		eps /= opts.ScalingFactor
		if eps < opts.Epsilon {
			eps = opts.Epsilon
		}
	}
	return s.result(totalRounds)
}
