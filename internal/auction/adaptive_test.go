package auction

import (
	"testing"

	"subtrav/internal/xrand"
)

func TestAdaptiveConfigDefaults(t *testing.T) {
	if _, err := NewAdaptiveAuctioneer(AdaptiveConfig{NumCols: 0}); err == nil {
		t.Error("zero columns accepted")
	}
	if _, err := NewAdaptiveAuctioneer(AdaptiveConfig{NumCols: 4, MinEpsilon: 1, MaxEpsilon: 0.5}); err == nil {
		t.Error("inverted epsilon bounds accepted")
	}
	a, err := NewAdaptiveAuctioneer(AdaptiveConfig{NumCols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Epsilon() != DefaultEpsilon {
		t.Errorf("initial epsilon = %g", a.Epsilon())
	}
}

func TestAdaptiveAssignValid(t *testing.T) {
	rng := xrand.New(1)
	const m = 12
	a, err := NewAdaptiveAuctioneer(AdaptiveConfig{NumCols: m})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		n := 1 + rng.Intn(m)
		p := Dense(randomDense(rng, n, m))
		res, err := a.Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumAssigned() != n {
			t.Fatalf("round %d: assigned %d of %d", round, res.NumAssigned(), n)
		}
		if err := VerifyMatching(p, res); err != nil {
			t.Fatal(err)
		}
	}
	if a.Runs() != 30 {
		t.Errorf("runs = %d", a.Runs())
	}
	if len(a.EpsilonHistory()) != 30 {
		t.Errorf("history = %d", len(a.EpsilonHistory()))
	}
}

func TestAdaptiveGrowsUnderPressure(t *testing.T) {
	// A tiny rounds budget forces the controller to coarsen ε.
	rng := xrand.New(2)
	const n = 24
	a, err := NewAdaptiveAuctioneer(AdaptiveConfig{
		NumCols: n, InitialEpsilon: 1e-5, RoundsBudget: 3, Grow: 2, Shrink: 1.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := a.Epsilon()
	for round := 0; round < 10; round++ {
		if _, err := a.Assign(Dense(randomDense(rng, n, n))); err != nil {
			t.Fatal(err)
		}
	}
	if a.Epsilon() <= start {
		t.Errorf("epsilon did not grow under rounds pressure: %g -> %g", start, a.Epsilon())
	}
}

func TestAdaptiveShrinksWhenEasy(t *testing.T) {
	// A huge budget and a trivial repeated problem: the controller
	// should refine ε toward better assignments.
	a, err := NewAdaptiveAuctioneer(AdaptiveConfig{
		NumCols: 4, InitialEpsilon: 0.1, RoundsBudget: 10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Dense([][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}})
	start := a.Epsilon()
	for round := 0; round < 10; round++ {
		if _, err := a.Assign(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.Epsilon() >= start {
		t.Errorf("epsilon did not shrink on easy stream: %g -> %g", start, a.Epsilon())
	}
}

func TestAdaptiveClamped(t *testing.T) {
	a, err := NewAdaptiveAuctioneer(AdaptiveConfig{
		NumCols: 4, InitialEpsilon: 0.2, MinEpsilon: 0.05, MaxEpsilon: 0.2, RoundsBudget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	for round := 0; round < 20; round++ {
		if _, err := a.Assign(Dense(randomDense(rng, 4, 4))); err != nil {
			t.Fatal(err)
		}
		if eps := a.Epsilon(); eps < 0.05 || eps > 0.2 {
			t.Fatalf("epsilon %g escaped clamp", eps)
		}
	}
}

func TestAdaptiveStabilizesWithinBand(t *testing.T) {
	// On a stationary stream, ε should settle: the last few updates
	// stay within one Grow step of each other.
	rng := xrand.New(4)
	const n = 32
	a, err := NewAdaptiveAuctioneer(AdaptiveConfig{NumCols: n, RoundsBudget: 2 * n})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 60; round++ {
		if _, err := a.Assign(Dense(randomDense(rng, n, n))); err != nil {
			t.Fatal(err)
		}
	}
	hist := a.EpsilonHistory()
	tail := hist[len(hist)-10:]
	min, max := tail[0], tail[0]
	for _, e := range tail {
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	if max/min > 8 {
		t.Errorf("epsilon still oscillating widely at steady state: [%g, %g]", min, max)
	}
}
