package auction

import (
	"math"
	"testing"

	"subtrav/internal/xrand"
)

// These are property tests over random cost matrices: whatever the
// input, the sequential auction's returned assignment and final prices
// must satisfy ε-complementary slackness (the invariant Algorithm 1
// maintains, and the source of the n·ε optimality bound), and warm
// starts — the production path, where prices carry over between
// scheduling rounds — must never leave that corridor.

func TestEpsilonComplementarySlacknessRandomMatrices(t *testing.T) {
	t.Parallel()
	const eps = 0.01
	rng := xrand.New(7)
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(11)
		b := randomDense(rng, n, n)
		p := Dense(b)
		prices := make([]float64, n)
		asg := SolvePriced(p, Options{Epsilon: eps}, prices)
		if got := asg.NumAssigned(); got != n {
			t.Fatalf("trial %d: %d of %d rows assigned", trial, got, n)
		}
		if err := VerifyMatching(p, asg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyEpsilonCS(p, asg, prices, eps); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}

		// ε-CS implies the n·ε bound against the exact optimum.
		opt, err := SolveExact(b)
		if err != nil {
			t.Fatal(err)
		}
		if asg.Benefit < opt.Benefit-float64(n)*eps-1e-9 {
			t.Errorf("trial %d: benefit %.9f below optimal %.9f - n·ε %.9f",
				trial, asg.Benefit, opt.Benefit, float64(n)*eps)
		}
		if asg.Benefit > opt.Benefit+1e-9 {
			t.Errorf("trial %d: benefit %.9f exceeds the optimum %.9f", trial, asg.Benefit, opt.Benefit)
		}
	}
}

func TestEpsilonCSRectangular(t *testing.T) {
	t.Parallel()
	const eps = 0.01
	rng := xrand.New(21)
	for trial := 0; trial < 40; trial++ {
		// Fewer rows than columns: every row must land, ε-CS still holds.
		m := 3 + rng.Intn(10)
		n := 1 + rng.Intn(m)
		p := Dense(randomDense(rng, n, m))
		prices := make([]float64, m)
		asg := SolvePriced(p, Options{Epsilon: eps}, prices)
		if got := asg.NumAssigned(); got != n {
			t.Fatalf("trial %d: %d of %d rows assigned", trial, got, n)
		}
		if err := VerifyEpsilonCS(p, asg, prices, eps); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

// TestWarmAndColdAgreeWithinBound: prices carried over from a previous
// (different) problem are a legal starting point, so a warm-started
// solve must stay within the same n·ε optimality corridor as a cold
// one — warm starts buy speed, never correctness.
func TestWarmAndColdAgreeWithinBound(t *testing.T) {
	t.Parallel()
	const eps = 0.01
	rng := xrand.New(33)
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(10)
		warmup := Dense(randomDense(rng, n, n))
		b := randomDense(rng, n, n)
		p := Dense(b)

		// Cold: zero prices.
		cold := SolvePriced(p, Options{Epsilon: eps}, make([]float64, n))

		// Warm: prices learned on a different problem first.
		prices := make([]float64, n)
		SolvePriced(warmup, Options{Epsilon: eps}, prices)
		warm := SolvePriced(p, Options{Epsilon: eps}, prices)

		if err := VerifyEpsilonCS(p, warm, prices, eps); err != nil {
			t.Errorf("trial %d: warm run: %v", trial, err)
		}
		if diff := math.Abs(warm.Benefit - cold.Benefit); diff > float64(n)*eps+1e-9 {
			t.Errorf("trial %d: warm %.9f vs cold %.9f differ by %.9f > n·ε %.9f",
				trial, warm.Benefit, cold.Benefit, diff, float64(n)*eps)
		}
	}
}

// TestAuctioneerWarmRoundsStayOptimal drives the incremental
// Auctioneer through a stream of square rounds and checks every
// round's result against the exact optimum — the warm-started
// production path, not just the one-shot solver. Square rounds assign
// every column, which is what makes carried-over prices harmless to
// the n·ε bound (weak duality needs unassigned columns to carry no
// stale price; see the Options.Scaling comment).
func TestAuctioneerWarmRoundsStayOptimal(t *testing.T) {
	t.Parallel()
	const eps = 0.01
	rng := xrand.New(55)
	const cols = 8
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: cols, Options: Options{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		b := randomDense(rng, cols, cols)
		p := Dense(b)
		asg, err := a.Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := asg.NumAssigned(); got != cols {
			t.Fatalf("round %d: %d of %d rows assigned", round, got, cols)
		}
		if err := VerifyEpsilonCS(p, asg, a.Prices(), eps); err != nil {
			t.Errorf("round %d: %v", round, err)
		}
		opt, err := SolveExact(b)
		if err != nil {
			t.Fatal(err)
		}
		if asg.Benefit < opt.Benefit-float64(cols)*eps-1e-9 {
			t.Errorf("round %d: warm benefit %.9f below optimal %.9f - n·ε", round, asg.Benefit, opt.Benefit)
		}
	}
	if a.Runs() != 30 {
		t.Errorf("Runs = %d, want 30", a.Runs())
	}
}

// TestAuctioneerRectangularRoundsKeepEpsCS: with fewer tasks than
// units, columns skipped by the current round may retain stale prices
// from earlier rounds, so the n·ε corridor against the exact optimum
// is NOT guaranteed (that memory of contention is the point of warm
// starts). What must survive any round shape is ε-CS and a valid
// matching.
func TestAuctioneerRectangularRoundsKeepEpsCS(t *testing.T) {
	t.Parallel()
	const eps = 0.01
	rng := xrand.New(56)
	const cols = 8
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: cols, Options: Options{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		n := 1 + rng.Intn(cols)
		p := Dense(randomDense(rng, n, cols))
		asg, err := a.Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := asg.NumAssigned(); got != n {
			t.Fatalf("round %d: %d of %d rows assigned", round, got, n)
		}
		if err := VerifyMatching(p, asg); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := VerifyEpsilonCS(p, asg, a.Prices(), eps); err != nil {
			t.Errorf("round %d: %v", round, err)
		}
	}
}
