package auction

import (
	"fmt"
	"math"
)

// SolveExact computes the maximum-benefit assignment of a dense
// benefit matrix with the Hungarian algorithm (O(n²m), n rows ≤ m
// columns). It assigns every row and is used as the exact reference
// against which the ε-optimality of the auction solvers is verified.
func SolveExact(benefits [][]float64) (Assignment, error) {
	n := len(benefits)
	if n == 0 {
		return Assignment{RowToCol: []int{}, ColToRow: []int{}}, nil
	}
	m := len(benefits[0])
	if n > m {
		return Assignment{}, fmt.Errorf("auction: SolveExact needs rows (%d) <= cols (%d)", n, m)
	}
	for i, row := range benefits {
		if len(row) != m {
			return Assignment{}, fmt.Errorf("auction: ragged benefit matrix at row %d", i)
		}
	}

	// Classic potentials formulation on the cost matrix c = -benefit,
	// 1-based with a virtual row/column 0.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j]: row matched to column j (0 = none)
	way := make([]int, m+1) // way[j]: previous column on the alternating path

	cost := func(i, j int) float64 { return -benefits[i-1][j-1] }

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0, j) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	a := Assignment{RowToCol: make([]int, n), ColToRow: make([]int, m)}
	for i := range a.RowToCol {
		a.RowToCol[i] = -1
	}
	for j := range a.ColToRow {
		a.ColToRow[j] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] != 0 {
			a.RowToCol[p[j]-1] = j - 1
			a.ColToRow[j-1] = p[j] - 1
			a.Benefit += benefits[p[j]-1][j-1]
		}
	}
	return a, nil
}

// SolveBruteForce enumerates every injective partial assignment of a
// sparse problem and returns one maximizing (cardinality, benefit)
// lexicographically. Exponential — test use only (≲ 10 rows).
func SolveBruteForce(p Problem) Assignment {
	n := p.NumRows()
	best := Assignment{RowToCol: make([]int, n), ColToRow: make([]int, p.NumCols), Benefit: math.Inf(-1)}
	for i := range best.RowToCol {
		best.RowToCol[i] = -1
	}
	for j := range best.ColToRow {
		best.ColToRow[j] = -1
	}
	bestCard := -1

	cur := make([]int, n)
	for i := range cur {
		cur[i] = -1
	}
	usedCol := make([]bool, p.NumCols)

	var rec func(row, card int, benefit float64)
	rec = func(row, card int, benefit float64) {
		if row == n {
			if card > bestCard || (card == bestCard && benefit > best.Benefit) {
				bestCard = card
				best.Benefit = benefit
				copy(best.RowToCol, cur)
			}
			return
		}
		// Leave this row unassigned.
		rec(row+1, card, benefit)
		for _, a := range p.Rows[row] {
			if usedCol[a.Col] {
				continue
			}
			usedCol[a.Col] = true
			cur[row] = a.Col
			rec(row+1, card+1, benefit+a.Benefit)
			cur[row] = -1
			usedCol[a.Col] = false
		}
	}
	rec(0, 0, 0)

	if bestCard <= 0 && best.Benefit == math.Inf(-1) {
		best.Benefit = 0
	}
	for i, c := range best.RowToCol {
		if c >= 0 {
			best.ColToRow[c] = i
		}
	}
	return best
}

// VerifyEpsilonCS checks ε-complementary slackness of an assignment
// against a price vector: every assigned row's profit must be within
// eps of its best achievable profit. This is the invariant auction
// termination guarantees and the basis of its optimality bound.
func VerifyEpsilonCS(p Problem, a Assignment, prices []float64, eps float64) error {
	for i, arcs := range p.Rows {
		j := a.RowToCol[i]
		if j < 0 {
			continue
		}
		var assignedProfit float64
		found := false
		bestProfit := math.Inf(-1)
		for _, arc := range arcs {
			profit := arc.Benefit - prices[arc.Col]
			if profit > bestProfit {
				bestProfit = profit
			}
			if arc.Col == j {
				assignedProfit = profit
				found = true
			}
		}
		if !found {
			return fmt.Errorf("auction: row %d assigned to inadmissible column %d", i, j)
		}
		if assignedProfit < bestProfit-eps-1e-9 {
			return fmt.Errorf("auction: row %d violates ε-CS: assigned profit %g < best %g - ε %g",
				i, assignedProfit, bestProfit, eps)
		}
	}
	return nil
}

// VerifyMatching checks structural validity: RowToCol and ColToRow are
// mutually consistent and no column is assigned twice.
func VerifyMatching(p Problem, a Assignment) error {
	if len(a.RowToCol) != p.NumRows() || len(a.ColToRow) != p.NumCols {
		return fmt.Errorf("auction: assignment shape %dx%d, want %dx%d",
			len(a.RowToCol), len(a.ColToRow), p.NumRows(), p.NumCols)
	}
	seen := make(map[int]int)
	for i, j := range a.RowToCol {
		if j < 0 {
			continue
		}
		if prev, dup := seen[j]; dup {
			return fmt.Errorf("auction: column %d assigned to rows %d and %d", j, prev, i)
		}
		seen[j] = i
		if a.ColToRow[j] != i {
			return fmt.Errorf("auction: ColToRow[%d] = %d, want %d", j, a.ColToRow[j], i)
		}
	}
	for j, i := range a.ColToRow {
		if i >= 0 && a.RowToCol[i] != j {
			return fmt.Errorf("auction: RowToCol[%d] = %d, want %d", i, a.RowToCol[i], j)
		}
	}
	return nil
}
