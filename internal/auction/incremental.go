package auction

import "fmt"

// Auctioneer runs the auction *incrementally* across scheduling
// rounds, as described in Section V: the set of columns (processing
// units) is fixed while task rows stream in and out, and object prices
// learned in earlier rounds are retained as the warm start for later
// ones. High prices linger on units that were recently contested,
// which both speeds up convergence and encodes a memory of contention;
// PriceDecay lets that memory fade.
type Auctioneer struct {
	numCols int
	prices  []float64
	opts    Options
	// decay multiplies all prices before each round; 1 disables decay.
	decay float64

	// Cumulative statistics across rounds.
	roundsRun  int
	totalBids  int64
	assignRuns int
}

// AuctioneerConfig configures an incremental auctioneer.
type AuctioneerConfig struct {
	// NumCols is the fixed number of columns (processing units).
	NumCols int
	// Options tunes the underlying solver.
	Options Options
	// PriceDecay in (0, 1] multiplies retained prices before each
	// round; 0 means 1 (no decay).
	PriceDecay float64
	// Parallel selects the Jacobi goroutine solver instead of the
	// sequential Gauss-Seidel one.
	Parallel bool
}

// NewAuctioneer creates an incremental auctioneer with zero prices.
func NewAuctioneer(cfg AuctioneerConfig) (*Auctioneer, error) {
	if cfg.NumCols <= 0 {
		return nil, fmt.Errorf("auction: NumCols = %d, want > 0", cfg.NumCols)
	}
	decay := cfg.PriceDecay
	if decay == 0 {
		decay = 1
	}
	if decay < 0 || decay > 1 {
		return nil, fmt.Errorf("auction: PriceDecay = %g, want (0,1]", decay)
	}
	a := &Auctioneer{
		numCols: cfg.NumCols,
		prices:  make([]float64, cfg.NumCols),
		opts:    cfg.Options,
		decay:   decay,
	}
	if cfg.Parallel {
		a.opts.parallel = true
	}
	return a, nil
}

// Assign solves one scheduling round. The problem must have exactly
// NumCols columns. Prices are decayed, used as the warm start, and the
// post-round prices are retained for the next call.
func (a *Auctioneer) Assign(p Problem) (Assignment, error) {
	if p.NumCols != a.numCols {
		return Assignment{}, fmt.Errorf("auction: problem has %d columns, auctioneer has %d", p.NumCols, a.numCols)
	}
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	if a.decay != 1 {
		for j := range a.prices {
			a.prices[j] *= a.decay
		}
	}
	var result Assignment
	if a.opts.parallel {
		result = solveParallelWithPrices(p, a.opts, a.prices)
	} else {
		result = solveWithPrices(p, a.opts, a.prices)
	}
	a.assignRuns++
	a.roundsRun += result.Rounds
	a.totalBids += result.Bids
	return result, nil
}

// Prices returns a copy of the current object price vector (the dual
// variables p of Eq. 6).
func (a *Auctioneer) Prices() []float64 {
	out := make([]float64, len(a.prices))
	copy(out, a.prices)
	return out
}

// ResetPrices zeroes the retained prices (cold start).
func (a *Auctioneer) ResetPrices() {
	for j := range a.prices {
		a.prices[j] = 0
	}
}

// TotalRounds returns the cumulative bidding rounds across all Assign
// calls.
func (a *Auctioneer) TotalRounds() int { return a.roundsRun }

// TotalBids returns the cumulative bids across all Assign calls.
func (a *Auctioneer) TotalBids() int64 { return a.totalBids }

// Runs returns how many Assign calls have completed.
func (a *Auctioneer) Runs() int { return a.assignRuns }
