package auction

import (
	"runtime"
	"sync"
)

// SolveParallel runs the Jacobi-style parallel auction: in each round
// every unassigned row computes its bid concurrently against a frozen
// price vector (the "for ... pardo" of Algorithm 1), then bids are
// resolved per column — the highest bidder wins, displacing the
// incumbent. This is the parallel formulation the paper deploys on its
// multi-core scheduler node.
func SolveParallel(p Problem, opts Options) Assignment {
	return solveParallelWithPrices(p, opts, make([]float64, p.NumCols))
}

type bid struct {
	row, col int
	price    float64
}

func solveParallelWithPrices(p Problem, opts Options, prices []float64) Assignment {
	opts = opts.withDefaults(p)
	if opts.Scaling {
		run := func(s *state, eps float64, maxRounds int) int {
			return jacobiRounds(s, eps, maxRounds, opts.workers(p))
		}
		return scaleViaSquare(p, opts, prices, run)
	}
	s := newState(p, prices)
	rounds := jacobiRounds(s, opts.Epsilon, opts.MaxRounds, opts.workers(p))
	return s.result(rounds)
}

// workers returns the bid-phase goroutine count for this problem.
func (o Options) workers(p Problem) int {
	if o.Workers > 0 {
		return o.Workers
	}
	w := (p.NumRows() + 63) / 64
	if w < 1 {
		w = 1
	}
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w > 8 {
		w = 8
	}
	return w
}

// jacobiRounds runs synchronous bidding rounds until no assignable row
// remains unassigned; returns the number of rounds executed.
func jacobiRounds(s *state, eps float64, maxRounds, workers int) int {
	unassigned := make([]int, 0, s.p.NumRows())
	for i := range s.p.Rows {
		unassigned = append(unassigned, i)
	}
	bids := make([]bid, 0, len(unassigned))
	rowPos := make([]int, s.p.NumRows()) // position of a row's bid in bids
	var winners []int                    // winning row per column this round
	rounds := 0

	for len(unassigned) > 0 && rounds < maxRounds {
		rounds++

		// Bid phase: all unassigned rows bid simultaneously against
		// the current prices (Lines 3-5 of Algorithm 1).
		bids = bids[:len(unassigned)]
		bidOne := func(k int) {
			i := unassigned[k]
			j, best, second, ok := s.bestTwo(i)
			if !ok || best < s.profitFloor {
				bids[k] = bid{row: i, col: -1}
				return
			}
			bids[k] = bid{row: i, col: j, price: s.prices[j] + best - second + eps}
		}
		if workers <= 1 || len(unassigned) < 16 {
			for k := range unassigned {
				bidOne(k)
			}
		} else {
			var wg sync.WaitGroup
			chunk := (len(unassigned) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				if lo >= len(unassigned) {
					break
				}
				hi := lo + chunk
				if hi > len(unassigned) {
					hi = len(unassigned)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for k := lo; k < hi; k++ {
						bidOne(k)
					}
				}(lo, hi)
			}
			wg.Wait()
		}

		// Resolve phase: per column, the highest bid wins (Lines 6-9).
		// Winners are applied in column order so the result is fully
		// deterministic; ties break toward the lower row index.
		if winners == nil {
			winners = make([]int, s.p.NumCols)
		}
		for j := range winners {
			winners[j] = -1
		}
		bidByRow := func(r int) bid { return bids[rowPos[r]] }
		for k, b := range bids {
			rowPos[b.row] = k
			if b.col < 0 {
				continue // unassignable: silently dropped from the pool
			}
			s.bids++
			if w := winners[b.col]; w < 0 {
				winners[b.col] = b.row
			} else if prior := bidByRow(w); b.price > prior.price ||
				(b.price == prior.price && b.row < prior.row) {
				winners[b.col] = b.row
			}
		}
		next := unassigned[:0]
		for _, b := range bids {
			if b.col >= 0 && winners[b.col] != b.row {
				next = append(next, b.row) // lost this round, bid again
			}
		}
		for col, row := range winners {
			if row < 0 {
				continue
			}
			s.prices[col] = bidByRow(row).price
			if displaced := s.assign(row, col); displaced >= 0 {
				next = append(next, displaced)
			}
		}
		unassigned = next
	}
	return rounds
}
