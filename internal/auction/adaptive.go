package auction

import "fmt"

// AdaptiveAuctioneer implements the paper's stated future work:
// "machine learning based approaches to optimizing the auction
// processing by finding an adaptive minimum price increment ε".
//
// ε trades solution quality against bidding work: the assignment is
// within n·ε of optimal, but rounds grow roughly with C/ε. The
// adaptive controller treats scheduling rounds as a stream of similar
// problems and runs a multiplicative-update policy on ε:
//
//   - when a round used more bidding rounds than RoundsBudget, ε is
//     multiplied by Grow (coarser, faster);
//   - when it used less than half the budget, ε is divided by Shrink
//     (finer, better assignments);
//   - ε is clamped to [MinEpsilon, MaxEpsilon].
//
// This is a bandit-flavoured feedback controller rather than a learned
// model, which matches the scale of the problem: the signal (rounds
// per solve) is cheap, dense and stationary-ish within a workload
// phase.
type AdaptiveAuctioneer struct {
	inner *Auctioneer
	cfg   AdaptiveConfig
	eps   float64

	epsHistory []float64
}

// AdaptiveConfig tunes the controller.
type AdaptiveConfig struct {
	// NumCols is the fixed column (unit) count.
	NumCols int
	// InitialEpsilon seeds ε (default DefaultEpsilon).
	InitialEpsilon float64
	// MinEpsilon / MaxEpsilon clamp the adaptation (defaults 1e-6 and
	// 0.25).
	MinEpsilon float64
	MaxEpsilon float64
	// RoundsBudget is the per-solve bidding-round target (default
	// 4×NumCols).
	RoundsBudget int
	// Grow multiplies ε on over-budget solves (default 2).
	Grow float64
	// Shrink divides ε on under-half-budget solves (default 1.25;
	// gentler than Grow so quality recovers without oscillation).
	Shrink float64
	// PriceDecay and Parallel pass through to the inner Auctioneer.
	PriceDecay float64
	Parallel   bool
}

func (c *AdaptiveConfig) applyDefaults() error {
	if c.NumCols <= 0 {
		return fmt.Errorf("auction: NumCols = %d, want > 0", c.NumCols)
	}
	if c.InitialEpsilon <= 0 {
		c.InitialEpsilon = DefaultEpsilon
	}
	if c.MinEpsilon <= 0 {
		c.MinEpsilon = 1e-6
	}
	if c.MaxEpsilon <= 0 {
		c.MaxEpsilon = 0.25
	}
	if c.MinEpsilon > c.MaxEpsilon {
		return fmt.Errorf("auction: MinEpsilon %g > MaxEpsilon %g", c.MinEpsilon, c.MaxEpsilon)
	}
	if c.RoundsBudget <= 0 {
		c.RoundsBudget = 4 * c.NumCols
	}
	if c.Grow <= 1 {
		c.Grow = 2
	}
	if c.Shrink <= 1 {
		c.Shrink = 1.25
	}
	return nil
}

// NewAdaptiveAuctioneer creates the controller with zero prices.
func NewAdaptiveAuctioneer(cfg AdaptiveConfig) (*AdaptiveAuctioneer, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	eps := clamp(cfg.InitialEpsilon, cfg.MinEpsilon, cfg.MaxEpsilon)
	inner, err := NewAuctioneer(AuctioneerConfig{
		NumCols:    cfg.NumCols,
		Options:    Options{Epsilon: eps},
		PriceDecay: cfg.PriceDecay,
		Parallel:   cfg.Parallel,
	})
	if err != nil {
		return nil, err
	}
	return &AdaptiveAuctioneer{inner: inner, cfg: cfg, eps: eps}, nil
}

// Epsilon returns the controller's current ε.
func (a *AdaptiveAuctioneer) Epsilon() float64 { return a.eps }

// EpsilonHistory returns ε after each Assign call.
func (a *AdaptiveAuctioneer) EpsilonHistory() []float64 {
	return append([]float64(nil), a.epsHistory...)
}

// Runs returns how many Assign calls have completed.
func (a *AdaptiveAuctioneer) Runs() int { return a.inner.Runs() }

// TotalRounds returns cumulative bidding rounds.
func (a *AdaptiveAuctioneer) TotalRounds() int { return a.inner.TotalRounds() }

// Assign solves one round with the current ε, then adapts ε from the
// observed bidding effort.
func (a *AdaptiveAuctioneer) Assign(p Problem) (Assignment, error) {
	a.inner.opts.Epsilon = a.eps
	result, err := a.inner.Assign(p)
	if err != nil {
		return Assignment{}, err
	}
	switch {
	case result.Rounds > a.cfg.RoundsBudget:
		a.eps = clamp(a.eps*a.cfg.Grow, a.cfg.MinEpsilon, a.cfg.MaxEpsilon)
	case result.Rounds < a.cfg.RoundsBudget/2:
		a.eps = clamp(a.eps/a.cfg.Shrink, a.cfg.MinEpsilon, a.cfg.MaxEpsilon)
	}
	a.epsHistory = append(a.epsHistory, a.eps)
	return result, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
