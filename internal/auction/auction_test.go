package auction

import (
	"math"
	"testing"
	"testing/quick"

	"subtrav/internal/xrand"
)

// randomDense generates an n×m benefit matrix with entries in [0,1).
func randomDense(rng *xrand.RNG, n, m int) [][]float64 {
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, m)
		for j := range b[i] {
			b[i][j] = rng.Float64()
		}
	}
	return b
}

func TestSolveTiny(t *testing.T) {
	// Row 0 prefers col 1, row 1 prefers col 1 more; optimal total is
	// 0.9 + 0.8 = 1.7 with row0→col0, row1→col1.
	b := [][]float64{
		{0.8, 0.9},
		{0.1, 1.0},
	}
	a := Solve(Dense(b), Options{Epsilon: 1e-6})
	if a.RowToCol[0] != 0 || a.RowToCol[1] != 1 {
		t.Errorf("assignment = %v, want [0 1]", a.RowToCol)
	}
	if math.Abs(a.Benefit-1.8) > 1e-9 {
		t.Errorf("benefit = %g, want 1.8", a.Benefit)
	}
}

func TestSolveIdentityBest(t *testing.T) {
	// Strong diagonal: optimal assignment is the identity.
	n := 8
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			if i == j {
				b[i][j] = 10
			} else {
				b[i][j] = 1
			}
		}
	}
	for _, solver := range []struct {
		name string
		run  func(Problem, Options) Assignment
	}{{"sequential", Solve}, {"parallel", SolveParallel}} {
		a := solver.run(Dense(b), Options{Epsilon: 0.01})
		for i := 0; i < n; i++ {
			if a.RowToCol[i] != i {
				t.Errorf("%s: row %d -> %d, want %d", solver.name, i, a.RowToCol[i], i)
			}
		}
	}
}

func TestEpsilonOptimalityVsExact(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		m := n + rng.Intn(6)
		b := randomDense(rng, n, m)
		exact, err := SolveExact(b)
		if err != nil {
			t.Fatal(err)
		}
		p := Dense(b)
		eps := 1e-4
		for _, solver := range []struct {
			name string
			run  func(Problem, Options) Assignment
		}{{"sequential", Solve}, {"parallel", SolveParallel}} {
			a := solver.run(p, Options{Epsilon: eps})
			if err := VerifyMatching(p, a); err != nil {
				t.Fatalf("%s trial %d: %v", solver.name, trial, err)
			}
			if a.NumAssigned() != n {
				t.Fatalf("%s trial %d: assigned %d of %d rows", solver.name, trial, a.NumAssigned(), n)
			}
			bound := exact.Benefit - float64(n)*eps
			if a.Benefit < bound-1e-9 {
				t.Errorf("%s trial %d: benefit %g < exact %g - nε (%g)",
					solver.name, trial, a.Benefit, exact.Benefit, bound)
			}
			if a.Benefit > exact.Benefit+1e-9 {
				t.Errorf("%s trial %d: benefit %g exceeds exact optimum %g",
					solver.name, trial, a.Benefit, exact.Benefit)
			}
		}
	}
}

func TestEpsilonCSInvariant(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		m := n + rng.Intn(8)
		p := Dense(randomDense(rng, n, m))
		eps := 0.01
		prices := make([]float64, m)
		a := SolvePriced(p, Options{Epsilon: eps}, prices)
		if err := VerifyEpsilonCS(p, a, prices, eps); err != nil {
			t.Errorf("sequential trial %d: %v", trial, err)
		}
		prices2 := make([]float64, m)
		a2 := SolveParallelPriced(p, Options{Epsilon: eps}, prices2)
		if err := VerifyEpsilonCS(p, a2, prices2, eps); err != nil {
			t.Errorf("parallel trial %d: %v", trial, err)
		}
	}
}

func TestSparseVsBruteForce(t *testing.T) {
	rng := xrand.New(31)
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		m := 1 + rng.Intn(7)
		p := Problem{NumCols: m, Rows: make([][]Arc, n)}
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if rng.Float64() < 0.5 {
					p.Rows[i] = append(p.Rows[i], Arc{Col: j, Benefit: rng.Float64()})
				}
			}
		}
		bf := SolveBruteForce(p)
		eps := 1e-5
		a := Solve(p, Options{Epsilon: eps})
		if err := VerifyMatching(p, a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if bf.NumAssigned() == n {
			// Feasible (every row assignable simultaneously): the
			// auction must match everyone and be ε-close to optimal.
			if a.NumAssigned() != n {
				t.Fatalf("trial %d: auction matched %d of %d rows",
					trial, a.NumAssigned(), n)
			}
			if a.Benefit < bf.Benefit-float64(n)*eps-1e-9 {
				t.Errorf("trial %d: benefit %g vs optimal %g", trial, a.Benefit, bf.Benefit)
			}
		} else if a.NumAssigned() > bf.NumAssigned() {
			// Infeasible instances carry no optimality guarantee, but
			// the auction can never exceed the true maximum matching.
			t.Errorf("trial %d: auction matched %d > maximum %d",
				trial, a.NumAssigned(), bf.NumAssigned())
		}
	}
}

func TestRowWithNoArcs(t *testing.T) {
	p := Problem{NumCols: 2, Rows: [][]Arc{
		{{Col: 0, Benefit: 1}},
		nil, // unassignable
		{{Col: 1, Benefit: 1}},
	}}
	a := Solve(p, Options{})
	if a.RowToCol[1] != -1 {
		t.Errorf("arcless row assigned to %d", a.RowToCol[1])
	}
	if a.NumAssigned() != 2 {
		t.Errorf("assigned %d, want 2", a.NumAssigned())
	}
	un := a.Unassigned()
	if len(un) != 1 || un[0] != 1 {
		t.Errorf("Unassigned = %v, want [1]", un)
	}
}

func TestInfeasibleContention(t *testing.T) {
	// Three rows all admissible to a single column: exactly one can
	// win; the others must be dropped without livelock.
	p := Problem{NumCols: 1, Rows: [][]Arc{
		{{Col: 0, Benefit: 5}},
		{{Col: 0, Benefit: 4}},
		{{Col: 0, Benefit: 3}},
	}}
	for _, solver := range []struct {
		name string
		run  func(Problem, Options) Assignment
	}{{"sequential", Solve}, {"parallel", SolveParallel}} {
		a := solver.run(p, Options{Epsilon: 0.5})
		if a.NumAssigned() != 1 {
			t.Errorf("%s: assigned %d, want 1", solver.name, a.NumAssigned())
		}
		if err := VerifyMatching(p, a); err != nil {
			t.Errorf("%s: %v", solver.name, err)
		}
	}
}

func TestPriceWarResolvedByEpsilon(t *testing.T) {
	// Two rows with identical benefits on two columns: without ε the
	// naive auction stagnates (Section V-B); with ε it must terminate.
	b := [][]float64{
		{1, 1},
		{1, 1},
	}
	a := Solve(Dense(b), Options{Epsilon: 0.01})
	if a.NumAssigned() != 2 {
		t.Fatalf("assigned %d, want 2", a.NumAssigned())
	}
	if math.Abs(a.Benefit-2) > 1e-9 {
		t.Errorf("benefit = %g, want 2", a.Benefit)
	}
}

func TestMoreRowsThanCols(t *testing.T) {
	rng := xrand.New(17)
	b := randomDense(rng, 6, 3)
	p := Dense(b)
	a := Solve(p, Options{Epsilon: 1e-3})
	if a.NumAssigned() != 3 {
		t.Errorf("assigned %d, want 3 (every column filled)", a.NumAssigned())
	}
	if err := VerifyMatching(p, a); err != nil {
		t.Error(err)
	}
}

func TestScalingMatchesPlain(t *testing.T) {
	rng := xrand.New(23)
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(12)
		b := randomDense(rng, n, n)
		p := Dense(b)
		exact, err := SolveExact(b)
		if err != nil {
			t.Fatal(err)
		}
		eps := 1e-4
		scaled := Solve(p, Options{Epsilon: eps, Scaling: true})
		if scaled.NumAssigned() != n {
			t.Fatalf("trial %d: scaled assigned %d/%d", trial, scaled.NumAssigned(), n)
		}
		if scaled.Benefit < exact.Benefit-float64(n)*eps-1e-9 {
			t.Errorf("trial %d: scaled benefit %g vs exact %g", trial, scaled.Benefit, exact.Benefit)
		}
	}
}

func TestParallelDeterministic(t *testing.T) {
	rng := xrand.New(41)
	b := randomDense(rng, 32, 40)
	p := Dense(b)
	first := SolveParallel(p, Options{Epsilon: 1e-3, Workers: 4})
	for i := 0; i < 5; i++ {
		again := SolveParallel(p, Options{Epsilon: 1e-3, Workers: 4})
		for r := range first.RowToCol {
			if first.RowToCol[r] != again.RowToCol[r] {
				t.Fatalf("parallel auction nondeterministic at row %d", r)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	bad := Problem{NumCols: 2, Rows: [][]Arc{{{Col: 5, Benefit: 1}}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range column should fail validation")
	}
	nan := Problem{NumCols: 1, Rows: [][]Arc{{{Col: 0, Benefit: math.NaN()}}}}
	if err := nan.Validate(); err == nil {
		t.Error("NaN benefit should fail validation")
	}
	ok := Problem{NumCols: 2, Rows: [][]Arc{{{Col: 1, Benefit: 1}}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func TestSolveExactErrors(t *testing.T) {
	if _, err := SolveExact([][]float64{{1}, {2}}); err == nil {
		t.Error("rows > cols should error")
	}
	if _, err := SolveExact([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should error")
	}
	if a, err := SolveExact(nil); err != nil || a.Benefit != 0 {
		t.Errorf("empty matrix: %v %v", a, err)
	}
}

func TestSolveExactKnown(t *testing.T) {
	// Classic 3x3 with known optimum 2+4+9=15 (rows 0→2? verify):
	// benefits: maximize.
	b := [][]float64{
		{7, 4, 3},
		{6, 8, 5},
		{9, 4, 4},
	}
	a, err := SolveExact(b)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: row0→col1(4)? enumerate: perms and sums:
	// 7+8+4=19, 7+5+4=16, 4+6+4=14, 4+5+9=18, 3+6+4=13, 3+8+9=20.
	if math.Abs(a.Benefit-20) > 1e-9 {
		t.Errorf("exact benefit = %g, want 20", a.Benefit)
	}
	want := []int{2, 1, 0}
	for i := range want {
		if a.RowToCol[i] != want[i] {
			t.Errorf("exact assignment = %v, want %v", a.RowToCol, want)
		}
	}
}

// Property: on random dense feasible problems, both auction variants
// produce valid matchings that assign min(n,m) pairs.
func TestFullCardinalityQuick(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%10 + 1
		m := int(mRaw)%10 + 1
		rng := xrand.New(seed)
		p := Dense(randomDense(rng, n, m))
		want := n
		if m < n {
			want = m
		}
		a := Solve(p, Options{Epsilon: 0.01})
		a2 := SolveParallel(p, Options{Epsilon: 0.01})
		return a.NumAssigned() == want && a2.NumAssigned() == want &&
			VerifyMatching(p, a) == nil && VerifyMatching(p, a2) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestScalingRectangular(t *testing.T) {
	rng := xrand.New(61)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		m := n + 1 + rng.Intn(8) // strictly rectangular
		b := randomDense(rng, n, m)
		p := Dense(b)
		exact, err := SolveExact(b)
		if err != nil {
			t.Fatal(err)
		}
		eps := 1e-4
		for _, solver := range []struct {
			name string
			run  func(Problem, Options) Assignment
		}{{"sequential", Solve}, {"parallel", SolveParallel}} {
			a := solver.run(p, Options{Epsilon: eps, Scaling: true})
			if err := VerifyMatching(p, a); err != nil {
				t.Fatalf("%s trial %d: %v", solver.name, trial, err)
			}
			if a.NumAssigned() != n {
				t.Fatalf("%s trial %d: assigned %d of %d (benefits > 0, all rows must match)",
					solver.name, trial, a.NumAssigned(), n)
			}
			bound := exact.Benefit - float64(m)*eps
			if a.Benefit < bound-1e-9 {
				t.Errorf("%s trial %d: scaled benefit %g < exact %g - mε",
					solver.name, trial, a.Benefit, exact.Benefit)
			}
		}
	}
}

func TestScalingMoreRowsThanCols(t *testing.T) {
	rng := xrand.New(67)
	b := randomDense(rng, 9, 4)
	p := Dense(b)
	a := Solve(p, Options{Epsilon: 1e-4, Scaling: true})
	if err := VerifyMatching(p, a); err != nil {
		t.Fatal(err)
	}
	if a.NumAssigned() != 4 {
		t.Errorf("assigned %d, want every column filled", a.NumAssigned())
	}
	// The 4 matched rows should be benefit-near-optimal: compare with
	// brute force over the sparse problem.
	bf := SolveBruteForce(p)
	if a.Benefit < bf.Benefit-9*1e-4-1e-9 {
		t.Errorf("benefit %g vs optimal %g", a.Benefit, bf.Benefit)
	}
}
