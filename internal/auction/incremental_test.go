package auction

import (
	"testing"

	"subtrav/internal/xrand"
)

func TestAuctioneerConfigValidation(t *testing.T) {
	if _, err := NewAuctioneer(AuctioneerConfig{NumCols: 0}); err == nil {
		t.Error("NumCols=0 should fail")
	}
	if _, err := NewAuctioneer(AuctioneerConfig{NumCols: 4, PriceDecay: 1.5}); err == nil {
		t.Error("decay > 1 should fail")
	}
	if _, err := NewAuctioneer(AuctioneerConfig{NumCols: 4, PriceDecay: -0.1}); err == nil {
		t.Error("negative decay should fail")
	}
	if _, err := NewAuctioneer(AuctioneerConfig{NumCols: 4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAuctioneerRejectsWrongShape(t *testing.T) {
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Assign(Problem{NumCols: 3}); err == nil {
		t.Error("mismatched NumCols should error")
	}
}

func TestAuctioneerBasicRound(t *testing.T) {
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: 2, Options: Options{Epsilon: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	p := Dense([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	res, err := a.Assign(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowToCol[0] != 0 || res.RowToCol[1] != 1 {
		t.Errorf("assignment = %v", res.RowToCol)
	}
	if a.Runs() != 1 || a.TotalRounds() == 0 || a.TotalBids() == 0 {
		t.Errorf("stats: runs=%d rounds=%d bids=%d", a.Runs(), a.TotalRounds(), a.TotalBids())
	}
}

func TestWarmStartReducesWork(t *testing.T) {
	rng := xrand.New(5)
	const n, m = 24, 32
	base := randomDense(rng, n, m)
	perturb := func() Problem {
		b := make([][]float64, n)
		for i := range b {
			b[i] = append([]float64(nil), base[i]...)
			for j := range b[i] {
				b[i][j] += 0.01 * rng.Float64() // small drift between rounds
			}
		}
		return Dense(b)
	}

	warm, err := NewAuctioneer(AuctioneerConfig{NumCols: m, Options: Options{Epsilon: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Assign(Dense(base)); err != nil {
		t.Fatal(err)
	}
	firstRounds := warm.TotalRounds()

	var warmRounds, coldRounds int
	for i := 0; i < 5; i++ {
		p := perturb()
		before := warm.TotalRounds()
		if _, err := warm.Assign(p); err != nil {
			t.Fatal(err)
		}
		warmRounds += warm.TotalRounds() - before
		cold := Solve(p, Options{Epsilon: 1e-3})
		coldRounds += cold.Rounds
	}
	t.Logf("first=%d warm(5 rounds)=%d cold(5 rounds)=%d", firstRounds, warmRounds, coldRounds)
	// Warm-started incremental rounds should beat cold starts on
	// near-identical successive problems.
	if warmRounds >= coldRounds {
		t.Errorf("warm start did not reduce rounds: warm=%d cold=%d", warmRounds, coldRounds)
	}
}

func TestWarmStartStillValid(t *testing.T) {
	rng := xrand.New(9)
	const m = 16
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: m, Options: Options{Epsilon: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(m)
		p := Dense(randomDense(rng, n, m))
		res, err := a.Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyMatching(p, res); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.NumAssigned() != n {
			t.Fatalf("round %d: assigned %d of %d", round, res.NumAssigned(), n)
		}
	}
}

func TestPriceDecayFadesPrices(t *testing.T) {
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: 2, PriceDecay: 0.5, Options: Options{Epsilon: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Assign(Dense([][]float64{{1, 0.5}, {0.5, 1}})); err != nil {
		t.Fatal(err)
	}
	p1 := a.Prices()
	// An empty round: decay applies, no bidding.
	if _, err := a.Assign(Problem{NumCols: 2}); err != nil {
		t.Fatal(err)
	}
	p2 := a.Prices()
	for j := range p1 {
		if p1[j] > 0 && p2[j] >= p1[j] {
			t.Errorf("price %d did not decay: %g -> %g", j, p1[j], p2[j])
		}
	}
}

func TestResetPrices(t *testing.T) {
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: 2, Options: Options{Epsilon: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Assign(Dense([][]float64{{1, 0}, {0, 1}})); err != nil {
		t.Fatal(err)
	}
	a.ResetPrices()
	for _, p := range a.Prices() {
		if p != 0 {
			t.Errorf("price %g after reset", p)
		}
	}
}

func TestAuctioneerParallelVariant(t *testing.T) {
	rng := xrand.New(11)
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: 16, Parallel: true, Options: Options{Epsilon: 1e-3, Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		n := 4 + rng.Intn(12)
		p := Dense(randomDense(rng, n, 16))
		res, err := a.Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumAssigned() != n {
			t.Fatalf("round %d: assigned %d of %d", round, res.NumAssigned(), n)
		}
		if err := VerifyMatching(p, res); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAuctioneerValidatesProblem(t *testing.T) {
	a, err := NewAuctioneer(AuctioneerConfig{NumCols: 2})
	if err != nil {
		t.Fatal(err)
	}
	bad := Problem{NumCols: 2, Rows: [][]Arc{{{Col: 9, Benefit: 1}}}}
	if _, err := a.Assign(bad); err == nil {
		t.Error("invalid problem should be rejected")
	}
}
