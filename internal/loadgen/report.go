package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"

	"subtrav/internal/obs"
)

// Outcome codes, the client-side view of one event's resolution.
const (
	// CodeOK: the query completed successfully.
	CodeOK = "ok"
	// CodeFailed: the server executed the query but returned an error.
	CodeFailed = "failed"
	// CodeRejected: admission control refused the query and every retry.
	CodeRejected = "rejected"
	// CodeTimeout: the query's deadline expired server-side.
	CodeTimeout = "timeout"
	// CodeTransport: the connection failed before a reply arrived.
	CodeTransport = "transport"
)

// Outcome is one event's resolution as seen by the driver.
type Outcome struct {
	// Index is the plan event this outcome resolves.
	Index int
	// Code classifies the resolution (CodeOK, ...).
	Code string
	// Retries counts extra attempts beyond the first.
	Retries int
	// LatencyNanos is the end-to-end latency including retry backoff
	// (meaningful for CodeOK/CodeFailed; the deadline for CodeTimeout).
	LatencyNanos int64
}

// TenantReport is one tenant's slice of a Report.
type TenantReport struct {
	Tenant    string  `json:"tenant"`
	Weight    float64 `json:"weight"`
	Offered   int     `json:"offered"`
	OK        int     `json:"ok"`
	Failed    int     `json:"failed"`
	Rejected  int     `json:"rejected"`
	Timeout   int     `json:"timeout"`
	Transport int     `json:"transport"`
	Retries   int     `json:"retries"`
	// GoodputQPS is the tenant's successful completions per second.
	GoodputQPS float64 `json:"goodput_qps"`
}

// Report is the machine-readable result of driving one plan. All
// fields derive deterministically from the plan and its outcomes.
type Report struct {
	Seed            uint64  `json:"seed"`
	Shape           string  `json:"shape"`
	DurationSeconds float64 `json:"duration_seconds"`
	// TargetQPS is the configured rate; OfferedQPS the plan's realized
	// arrival rate; GoodputQPS successful completions per second. Under
	// overload OfferedQPS keeps tracking TargetQPS while GoodputQPS
	// flattens — the knee.
	TargetQPS  float64 `json:"target_qps"`
	OfferedQPS float64 `json:"offered_qps"`
	GoodputQPS float64 `json:"goodput_qps"`

	Offered   int `json:"offered"`
	OK        int `json:"ok"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected"`
	Timeout   int `json:"timeout"`
	Transport int `json:"transport"`
	Retries   int `json:"retries"`

	// Latency quantiles over successful completions, from the obs
	// log-bucketed digest (relative error <= obs.QuantileMaxRelativeError).
	LatencyP50Nanos  float64 `json:"latency_p50_nanos"`
	LatencyP99Nanos  float64 `json:"latency_p99_nanos"`
	LatencyP999Nanos float64 `json:"latency_p999_nanos"`

	// Fairness is the Jain index over per-tenant goodput normalized by
	// tenant weight: 1 = perfectly weighted-fair, 1/n = one tenant
	// takes everything.
	Fairness float64 `json:"fairness"`

	Ops     map[string]int `json:"ops"`
	Tenants []TenantReport `json:"tenants"`
}

// BuildReport aggregates outcomes against their plan. Outcomes may
// arrive in any order and may be sparse (missing indices count as
// transport failures); duplicate indices are an error.
func BuildReport(plan *Plan, outcomes []Outcome) (*Report, error) {
	cfg := plan.Config
	rep := &Report{
		Seed:            cfg.Seed,
		Shape:           cfg.Shape,
		DurationSeconds: float64(cfg.DurationNanos) / 1e9,
		TargetQPS:       cfg.QPS,
		Offered:         len(plan.Events),
		Ops:             make(map[string]int),
	}
	rep.OfferedQPS = float64(rep.Offered) / rep.DurationSeconds

	byTenant := make(map[string]*TenantReport)
	for _, tp := range cfg.Tenants {
		if _, ok := byTenant[tp.Name]; !ok {
			byTenant[tp.Name] = &TenantReport{Tenant: tp.Name, Weight: tp.Weight}
		}
	}
	seen := make([]bool, len(plan.Events))
	for _, ev := range plan.Events {
		rep.Ops[ev.Op]++
		byTenant[ev.Tenant].Offered++
	}

	lat := obs.NewHistogram()
	for _, o := range outcomes {
		if o.Index < 0 || o.Index >= len(plan.Events) {
			return nil, fmt.Errorf("loadgen: outcome index %d outside plan of %d events", o.Index, len(plan.Events))
		}
		if seen[o.Index] {
			return nil, fmt.Errorf("loadgen: duplicate outcome for event %d", o.Index)
		}
		seen[o.Index] = true
		tr := byTenant[plan.Events[o.Index].Tenant]
		rep.Retries += o.Retries
		tr.Retries += o.Retries
		switch o.Code {
		case CodeOK:
			rep.OK++
			tr.OK++
			lat.Observe(o.LatencyNanos)
		case CodeFailed:
			rep.Failed++
			tr.Failed++
		case CodeRejected:
			rep.Rejected++
			tr.Rejected++
		case CodeTimeout:
			rep.Timeout++
			tr.Timeout++
		case CodeTransport:
			rep.Transport++
			tr.Transport++
		default:
			return nil, fmt.Errorf("loadgen: unknown outcome code %q", o.Code)
		}
	}
	for i := range seen {
		if !seen[i] {
			rep.Transport++
			byTenant[plan.Events[i].Tenant].Transport++
		}
	}

	qs := lat.Quantiles(0.5, 0.99, 0.999)
	rep.LatencyP50Nanos, rep.LatencyP99Nanos, rep.LatencyP999Nanos = qs[0], qs[1], qs[2]
	rep.GoodputQPS = float64(rep.OK) / rep.DurationSeconds

	for _, tr := range byTenant {
		tr.GoodputQPS = float64(tr.OK) / rep.DurationSeconds
		rep.Tenants = append(rep.Tenants, *tr)
	}
	sort.Slice(rep.Tenants, func(i, j int) bool { return rep.Tenants[i].Tenant < rep.Tenants[j].Tenant })
	rep.Fairness = weightedJain(rep.Tenants)
	return rep, nil
}

// weightedJain computes the Jain fairness index over per-tenant
// goodput normalized by weight: (Σx)²/(n·Σx²), x_i = goodput_i/w_i.
// An idle system (all zeros) is perfectly fair.
func weightedJain(tenants []TenantReport) float64 {
	var sum, sumSq float64
	n := 0
	for _, tr := range tenants {
		if tr.Weight <= 0 {
			continue
		}
		x := tr.GoodputQPS / tr.Weight
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// MarshalIndent renders the report as stable, human-diffable JSON:
// struct field order plus sorted map keys make identical reports
// byte-identical.
func (r *Report) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
