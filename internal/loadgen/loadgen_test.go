package loadgen

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func baseConfig() Config {
	return Config{
		Seed:          42,
		DurationNanos: 10_000_000_000, // 10s virtual
		QPS:           200,
		NumKeys:       1000,
		ZipfS:         1.1,
		TimeoutNanos:  250_000_000,
		Tenants: []TenantProfile{
			{Name: "gold", Weight: 3},
			{Name: "bronze", Weight: 1},
		},
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	t.Parallel()
	cfg := baseConfig()
	a, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same config produced different plans")
	}
	cfg.Seed = 43
	c, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanRateTracksTarget(t *testing.T) {
	t.Parallel()
	for _, shape := range []string{ShapeConstant, ShapeBurst, ShapeDiurnal} {
		cfg := baseConfig()
		cfg.Shape = shape
		plan, err := BuildPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.QPS * float64(cfg.DurationNanos) / 1e9
		got := float64(len(plan.Events))
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("%s: %g events, want %g +- 15%%", shape, got, want)
		}
		last := int64(-1)
		for _, ev := range plan.Events {
			if ev.ArrivalNanos < last {
				t.Fatalf("%s: arrivals not monotone", shape)
			}
			last = ev.ArrivalNanos
			if ev.ArrivalNanos >= cfg.DurationNanos {
				t.Fatalf("%s: arrival %d beyond duration", shape, ev.ArrivalNanos)
			}
			if ev.TimeoutNanos != cfg.TimeoutNanos {
				t.Fatalf("%s: event timeout %d", shape, ev.TimeoutNanos)
			}
		}
	}
}

func TestBurstShapeConcentratesArrivals(t *testing.T) {
	t.Parallel()
	cfg := baseConfig()
	cfg.Shape = ShapeBurst
	cfg.BurstFactor = 8
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	every := plan.Config.BurstEveryNanos // defaults applied by BuildPlan
	burstLen := plan.Config.BurstLenNanos
	var inBurst int
	for _, ev := range plan.Events {
		if ev.ArrivalNanos%every < burstLen {
			inBurst++
		}
	}
	// Burst windows are 10% of the time but at 8x the base rate they
	// should carry ~47% of arrivals; uniform would carry ~10%.
	if frac := float64(inBurst) / float64(len(plan.Events)); frac < 0.3 {
		t.Errorf("burst windows carry %.0f%% of arrivals, want heavy concentration", frac*100)
	}
}

func TestZipfSkewsKeys(t *testing.T) {
	t.Parallel()
	cfg := baseConfig()
	cfg.ZipfS = 1.2
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int32]int)
	for _, ev := range plan.Events {
		counts[ev.Start]++
	}
	uniform := float64(len(plan.Events)) / float64(cfg.NumKeys)
	if float64(counts[0]) < 10*uniform {
		t.Errorf("hottest key drew %d of %d, want clear Zipf skew (uniform share %.1f)",
			counts[0], len(plan.Events), uniform)
	}
}

func TestTenantWeightsRespected(t *testing.T) {
	t.Parallel()
	plan, err := BuildPlan(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	byTenant := make(map[string]int)
	for _, ev := range plan.Events {
		byTenant[ev.Tenant]++
	}
	ratio := float64(byTenant["gold"]) / float64(byTenant["bronze"])
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("gold/bronze ratio = %.2f, want ~3", ratio)
	}
	if got, want := plan.TenantNames(), []string{"bronze", "gold"}; !reflect.DeepEqual(got, want) {
		t.Errorf("TenantNames = %v, want %v", got, want)
	}
}

func TestSSSPEventsCarryTargets(t *testing.T) {
	t.Parallel()
	cfg := baseConfig()
	cfg.Mix = OpMix{SSSP: 1}
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range plan.Events {
		if ev.Op != OpSSSP {
			t.Fatalf("op = %q with SSSP-only mix", ev.Op)
		}
		if ev.Target < 0 || ev.Target >= cfg.NumKeys {
			t.Fatalf("target %d out of key space", ev.Target)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	for name, mutate := range map[string]func(*Config){
		"zero-duration":  func(c *Config) { c.DurationNanos = 0 },
		"zero-qps":       func(c *Config) { c.QPS = 0 },
		"zero-keys":      func(c *Config) { c.NumKeys = 0 },
		"bad-shape":      func(c *Config) { c.Shape = "square" },
		"bad-burst":      func(c *Config) { c.Shape = ShapeBurst; c.BurstFactor = 0.5 },
		"bad-amp":        func(c *Config) { c.Shape = ShapeDiurnal; c.DiurnalAmp = 1.5 },
		"bad-mix":        func(c *Config) { c.Mix = OpMix{BFS: -1, SSSP: 1} },
		"unnamed-tenant": func(c *Config) { c.Tenants = []TenantProfile{{Weight: 1}} },
		"zero-weights":   func(c *Config) { c.Tenants = []TenantProfile{{Name: "a", Weight: 0}} },
	} {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := BuildPlan(cfg); err == nil {
			t.Errorf("%s: BuildPlan accepted invalid config", name)
		}
	}
}

func TestSimulateByteReproducible(t *testing.T) {
	t.Parallel()
	cfg := baseConfig()
	cfg.Shape = ShapeBurst
	_, repA, err := Simulate(cfg, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, repB, err := Simulate(cfg, SimConfig{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := repA.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b, err := repB.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same config produced different report bytes")
	}
	if len(a) == 0 || a[len(a)-1] != '\n' {
		t.Fatal("report is not newline-terminated JSON")
	}
}

func TestSimulateShowsOverloadKnee(t *testing.T) {
	t.Parallel()
	run := func(qps float64) *Report {
		cfg := baseConfig()
		cfg.QPS = qps
		_, rep, err := Simulate(cfg, SimConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	light := run(100)
	heavy := run(5000)

	// Below the knee: goodput tracks offered load, errors are rare.
	if light.GoodputQPS < 0.9*light.OfferedQPS {
		t.Errorf("light load: goodput %.1f vs offered %.1f, want ~equal", light.GoodputQPS, light.OfferedQPS)
	}
	// Past the knee: offered load keeps climbing, goodput flattens and
	// the excess surfaces as rejections/timeouts — the open-loop
	// signature a closed-loop driver would hide.
	if heavy.GoodputQPS > 0.6*heavy.OfferedQPS {
		t.Errorf("heavy load: goodput %.1f vs offered %.1f, want a visible gap", heavy.GoodputQPS, heavy.OfferedQPS)
	}
	if heavy.Rejected+heavy.Timeout == 0 {
		t.Error("heavy load produced no rejections or timeouts")
	}
	if heavy.LatencyP99Nanos < light.LatencyP99Nanos {
		t.Errorf("p99 fell under overload: %.0f < %.0f", heavy.LatencyP99Nanos, light.LatencyP99Nanos)
	}
	if light.LatencyP999Nanos < light.LatencyP99Nanos || light.LatencyP99Nanos < light.LatencyP50Nanos {
		t.Errorf("quantiles not monotone: p50=%.0f p99=%.0f p999=%.0f",
			light.LatencyP50Nanos, light.LatencyP99Nanos, light.LatencyP999Nanos)
	}
	// Conservation: every offered event resolves exactly once.
	for _, rep := range []*Report{light, heavy} {
		if rep.OK+rep.Failed+rep.Rejected+rep.Timeout+rep.Transport != rep.Offered {
			t.Errorf("outcome partition broken: %+v", rep)
		}
	}
}

func TestBuildReportValidation(t *testing.T) {
	t.Parallel()
	plan, err := BuildPlan(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildReport(plan, []Outcome{{Index: 0, Code: CodeOK}, {Index: 0, Code: CodeOK}}); err == nil {
		t.Error("duplicate outcome accepted")
	}
	if _, err := BuildReport(plan, []Outcome{{Index: len(plan.Events), Code: CodeOK}}); err == nil {
		t.Error("out-of-range outcome accepted")
	}
	if _, err := BuildReport(plan, []Outcome{{Index: 0, Code: "weird"}}); err == nil {
		t.Error("unknown code accepted")
	}
	// Missing outcomes count as transport failures, keeping the
	// partition exact.
	rep, err := BuildReport(plan, []Outcome{{Index: 0, Code: CodeOK, LatencyNanos: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 1 || rep.Transport != rep.Offered-1 {
		t.Errorf("sparse outcomes: ok=%d transport=%d offered=%d", rep.OK, rep.Transport, rep.Offered)
	}
}

func TestFairnessIndex(t *testing.T) {
	t.Parallel()
	even := []TenantReport{
		{Tenant: "a", Weight: 1, GoodputQPS: 50},
		{Tenant: "b", Weight: 1, GoodputQPS: 50},
	}
	if j := weightedJain(even); math.Abs(j-1) > 1e-9 {
		t.Errorf("even split Jain = %g, want 1", j)
	}
	starved := []TenantReport{
		{Tenant: "a", Weight: 1, GoodputQPS: 100},
		{Tenant: "b", Weight: 1, GoodputQPS: 0},
	}
	if j := weightedJain(starved); math.Abs(j-0.5) > 1e-9 {
		t.Errorf("starved Jain = %g, want 0.5", j)
	}
	// Weighted: gold getting 3x bronze at weight 3:1 is perfectly fair.
	weighted := []TenantReport{
		{Tenant: "gold", Weight: 3, GoodputQPS: 150},
		{Tenant: "bronze", Weight: 1, GoodputQPS: 50},
	}
	if j := weightedJain(weighted); math.Abs(j-1) > 1e-9 {
		t.Errorf("weight-proportional Jain = %g, want 1", j)
	}
	if j := weightedJain(nil); j != 1 {
		t.Errorf("empty Jain = %g, want 1", j)
	}
}
