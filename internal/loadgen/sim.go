package loadgen

import (
	"container/heap"
	"fmt"

	"subtrav/internal/xrand"
)

// SimConfig parameterizes the virtual-time executor.
type SimConfig struct {
	// Units is the modeled processing-unit count (default 4).
	Units int
	// MaxPending is the modeled admission bound (default 64).
	MaxPending int
	// MaxAttempts bounds admission retries per event, mirroring the
	// client's DoRetry (default 3).
	MaxAttempts int
	// RetryBackoffNanos is the base backoff between admission attempts;
	// attempt k waits k·RetryBackoffNanos (default 5ms).
	RetryBackoffNanos int64
	// BaseServiceNanos scales the per-op service-time draw (default
	// 2ms).
	BaseServiceNanos int64
}

func (s *SimConfig) validate() error {
	if s.Units == 0 {
		s.Units = 4
	}
	if s.MaxPending == 0 {
		s.MaxPending = 64
	}
	if s.MaxAttempts == 0 {
		s.MaxAttempts = 3
	}
	if s.RetryBackoffNanos == 0 {
		s.RetryBackoffNanos = 5_000_000
	}
	if s.BaseServiceNanos == 0 {
		s.BaseServiceNanos = 2_000_000
	}
	if s.Units < 1 || s.MaxPending < 1 || s.MaxAttempts < 1 ||
		s.RetryBackoffNanos < 1 || s.BaseServiceNanos < 1 {
		return fmt.Errorf("loadgen: invalid sim config %+v", *s)
	}
	return nil
}

// opServiceWeight scales service cost by op: random walks and collab
// filtering cost more than a bounded BFS.
func opServiceWeight(op string) float64 {
	switch op {
	case OpSSSP:
		return 1.5
	case OpCollab:
		return 1.25
	case OpRWR:
		return 2
	default:
		return 1
	}
}

// int64Heap is a min-heap of in-flight finish times.
type int64Heap []int64

func (h int64Heap) Len() int            { return len(h) }
func (h int64Heap) Less(i, j int) bool  { return h[i] < h[j] }
func (h int64Heap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *int64Heap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *int64Heap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate drives a plan through a virtual-time queueing model of the
// service — least-loaded placement over Units servers, an admission
// bound of MaxPending with client-style bounded retries, deadline
// cancellation — and aggregates the outcomes into a Report. The model
// is fully deterministic: the same (Config, SimConfig) pair always
// produces a byte-identical report, which makes it the reproducible
// half of the load harness (the wall-clock driver in cmd/subtrav-load
// measures the real service but cannot promise identical bytes).
//
// The model reproduces the open-loop overload signature: below
// saturation goodput tracks offered load; past it, queues exceed the
// admission bound, rejections and timeouts absorb the excess, and
// goodput flattens at the service capacity.
func Simulate(cfg Config, sim SimConfig) (*Plan, *Report, error) {
	if err := sim.validate(); err != nil {
		return nil, nil, err
	}
	plan, err := BuildPlan(cfg)
	if err != nil {
		return nil, nil, err
	}

	nextFree := make([]int64, sim.Units)
	inflight := &int64Heap{}
	outcomes := make([]Outcome, 0, len(plan.Events))
	svcRNG := xrand.New(0) // reseeded per event below

	for _, ev := range plan.Events {
		svcRNG.Reseed(ev.Seed)
		svc := int64(float64(sim.BaseServiceNanos) * opServiceWeight(ev.Op) * (0.5 + svcRNG.ExpFloat64()))
		if svc < 1 {
			svc = 1
		}

		o := Outcome{Index: ev.Index, Code: CodeRejected}
		t := ev.ArrivalNanos
		for attempt := 0; attempt < sim.MaxAttempts; attempt++ {
			if attempt > 0 {
				t += int64(attempt) * sim.RetryBackoffNanos
				o.Retries++
			}
			// Drain completions up to the (possibly backed-off) attempt
			// time.
			for inflight.Len() > 0 && (*inflight)[0] <= t {
				heap.Pop(inflight)
			}
			if inflight.Len() >= sim.MaxPending {
				continue // rejected this attempt
			}
			// Admitted: place on the least-loaded unit.
			u := 0
			for i := 1; i < len(nextFree); i++ {
				if nextFree[i] < nextFree[u] {
					u = i
				}
			}
			start := t
			if nextFree[u] > start {
				start = nextFree[u]
			}
			finish := start + svc
			busyUntil := finish
			if ev.TimeoutNanos > 0 && finish-t > ev.TimeoutNanos {
				// Deadline expires first: the traversal is cancelled and
				// the unit freed at the deadline (or at its start if the
				// deadline passed while queued).
				cancelAt := t + ev.TimeoutNanos
				if cancelAt < start {
					cancelAt = start
				}
				busyUntil = cancelAt
				o.Code = CodeTimeout
				o.LatencyNanos = ev.TimeoutNanos
			} else {
				o.Code = CodeOK
				o.LatencyNanos = finish - ev.ArrivalNanos
			}
			nextFree[u] = busyUntil
			heap.Push(inflight, busyUntil)
			break
		}
		outcomes = append(outcomes, o)
	}

	rep, err := BuildReport(plan, outcomes)
	if err != nil {
		return nil, nil, err
	}
	return plan, rep, nil
}
