package sharebench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunSmoke is the CI smoke: the reduced suite must run clean,
// clear the acceptance thresholds (results identical across modes,
// >= MinReadsRatio fewer disk reads/query on the gated cell), and
// serialize to valid JSON.
func TestRunSmoke(t *testing.T) {
	rep, err := Run(true, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Smoke {
		t.Error("smoke run not marked Smoke")
	}
	if err := rep.CheckThresholds(MinReadsRatio); err != nil {
		t.Error(err)
	}
	for _, sc := range rep.Scenarios {
		if len(sc.Modes) != 4 {
			t.Fatalf("%s: %d modes, want 4", sc.Name, len(sc.Modes))
		}
		if sc.Units*sc.QueueDepth < 8 {
			t.Errorf("%s: units*queue_depth = %d, want >= 8 concurrent overlapping queries",
				sc.Name, sc.Units*sc.QueueDepth)
		}
		base, share := sc.Modes[0], sc.Modes[3]
		if base.CoalescedReads != 0 {
			t.Errorf("%s: baseline coalesced %d reads with sharing off", sc.Name, base.CoalescedReads)
		}
		if sc.Gate && share.DiskRequests >= base.DiskRequests {
			t.Errorf("%s: share mode issued %d disk reads, baseline %d; want strictly fewer",
				sc.Name, share.DiskRequests, base.DiskRequests)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
}

// TestRunDeterministic pins the drift-gate contract: two full smoke
// runs serialize byte-identically.
func TestRunDeterministic(t *testing.T) {
	a, err := Run(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	var ab, bb bytes.Buffer
	if err := a.WriteJSON(&ab); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Errorf("reports differ across identical runs:\n%s\n---\n%s", ab.String(), bb.String())
	}
}

// TestCheckThresholds exercises the failure paths the CI gate relies
// on.
func TestCheckThresholds(t *testing.T) {
	ok := &Report{Scenarios: []ScenarioReport{{
		Name: "x", Gate: true, ReadsRatio: 2.5, ResultsIdentical: true,
		Modes: []ModeStats{{Mode: "coalesce", CoalescedReads: 9}, {Mode: "share", CoalescedReads: 9}},
	}}}
	if err := ok.CheckThresholds(2); err != nil {
		t.Errorf("healthy report rejected: %v", err)
	}
	cases := []*Report{
		{}, // empty
		{Scenarios: []ScenarioReport{{Name: "x", Gate: true, ReadsRatio: 1.2, ResultsIdentical: true}}},
		{Scenarios: []ScenarioReport{{Name: "x", Gate: true, ReadsRatio: 3, ResultsIdentical: false}}},
		{Scenarios: []ScenarioReport{{Name: "x", Gate: false, ReadsRatio: 3, ResultsIdentical: true}}},
		{Scenarios: []ScenarioReport{{
			Name: "x", Gate: true, ReadsRatio: 3, ResultsIdentical: true,
			Modes: []ModeStats{{Mode: "share", CoalescedReads: 0}},
		}}},
	}
	for i, rep := range cases {
		if err := rep.CheckThresholds(2); err == nil {
			t.Errorf("case %d: broken report passed thresholds", i)
		}
	}
}

// BenchmarkShareModes times one full smoke pass of the four-mode
// matrix; -benchtime=1x in CI keeps it to a single iteration.
func BenchmarkShareModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Run(true, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.CheckThresholds(MinReadsRatio); err != nil {
			b.Fatal(err)
		}
	}
}
