package sharebench

import (
	"encoding/json"
	"fmt"
	"io"
)

// MinReadsRatio is the acceptance floor enforced by CheckThresholds on
// gated scenarios: sharing must cut disk reads/query at least this
// much versus the no-sharing baseline at high concurrency.
const MinReadsRatio = 2.0

// ModeStats is one sharing configuration's measurements for a
// scenario. Every value is virtual-time deterministic: regenerating
// the report on any machine produces identical numbers.
type ModeStats struct {
	// Mode is "baseline", "coalesce", "batch" or "share".
	Mode string `json:"mode"`
	// QueriesPerSec is virtual throughput: completed queries over the
	// run makespan.
	QueriesPerSec float64 `json:"queries_per_sec"`
	// MakespanMs is the virtual run length in milliseconds.
	MakespanMs float64 `json:"makespan_ms"`
	// DiskRequests counts actual shared-disk reads issued; a miss that
	// joined another query's in-flight read appears in CoalescedReads
	// instead.
	DiskRequests   int64 `json:"disk_requests"`
	CoalescedReads int64 `json:"coalesced_reads"`
	// DiskReadsPerQuery is DiskRequests over completed queries — the
	// headline sharing metric.
	DiskReadsPerQuery float64 `json:"disk_reads_per_query"`
	// CacheHitRate is the cluster-wide buffer hit rate.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// ScenarioReport is one workload cell measured across all four modes.
type ScenarioReport struct {
	Name       string  `json:"name"`
	Units      int     `json:"units"`
	Queries    int     `json:"queries"`
	ZipfS      float64 `json:"zipf_s"`
	QueueDepth int     `json:"queue_depth"`
	BatchK     int     `json:"batch_k"`
	// Gate marks the cell whose ReadsRatio CheckThresholds enforces.
	Gate bool `json:"gate"`

	Modes []ModeStats `json:"modes"`

	// ReadsRatio is baseline disk reads/query over share-mode disk
	// reads/query: how many times fewer reads the sharing layer issues.
	ReadsRatio float64 `json:"reads_ratio"`
	// ResultsIdentical reports whether every query returned a
	// bit-identical semantic result in all four modes. Sharing that
	// changes any answer is a bug, and CheckThresholds fails on it.
	ResultsIdentical bool `json:"results_identical"`
}

// Report is the BENCH_share.json schema. It deliberately carries no
// environment fields (Go version, CPU count, timestamps): the suite is
// virtual-time deterministic, so the tracked artifact must be
// byte-identical wherever it is regenerated — that is what lets CI cmp
// a fresh run against the checked-in file as a drift gate.
type Report struct {
	// Smoke marks a reduced run (CI); the tracked artifact is a full
	// run with Smoke false.
	Smoke bool `json:"smoke"`
	// BatchK is the lockstep batch width of the batch and share modes.
	BatchK    int              `json:"batch_k"`
	Scenarios []ScenarioReport `json:"scenarios"`
}

// WriteJSON writes the indented report.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// CheckThresholds fails loudly when the sharing layer regresses:
// any scenario with diverging results, a gated scenario whose reads
// ratio falls below minRatio, or a gated coalescing run that never
// coalesced anything.
func (r *Report) CheckThresholds(minRatio float64) error {
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("sharebench: report has no scenarios")
	}
	gated := 0
	for _, sc := range r.Scenarios {
		if !sc.ResultsIdentical {
			return fmt.Errorf("sharebench: %s: query results diverge across sharing modes", sc.Name)
		}
		if !sc.Gate {
			continue
		}
		gated++
		if sc.ReadsRatio < minRatio {
			return fmt.Errorf("sharebench: %s: sharing cut disk reads only %.2fx, want >= %.1fx",
				sc.Name, sc.ReadsRatio, minRatio)
		}
		for _, m := range sc.Modes {
			if (m.Mode == "coalesce" || m.Mode == "share") && m.CoalescedReads == 0 {
				return fmt.Errorf("sharebench: %s/%s: coalescing enabled but no reads coalesced", sc.Name, m.Mode)
			}
		}
	}
	if gated == 0 {
		return fmt.Errorf("sharebench: no gated scenario in report")
	}
	return nil
}
