// Package sharebench measures the cross-query sharing layer — request
// coalescing (storage.Disk.ReadShared / storage.FetchGroup) and
// lockstep multi-source batching (traverse.Batch) — under Zipfian
// high-concurrency workloads, and emits the tracked BENCH_share.json
// artifact (see report.go).
//
// The suite is built on the deterministic virtual-time simulator, so
// every number in the report is a pure function of the scenario
// constants: queries/sec is virtual throughput, disk reads/query
// counts actual shared-disk requests, and regenerating the report
// anywhere produces byte-identical output (the CI drift gate relies on
// this). Each scenario runs the same task stream four ways — sharing
// off, coalescing only, batching only, both — and asserts that every
// query's semantic result is identical across all four before
// reporting the disk-traffic ratios.
package sharebench

import (
	"fmt"
	"reflect"
	"sort"

	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/loadgen"
	"subtrav/internal/sched"
	"subtrav/internal/sim"
	"subtrav/internal/traverse"
)

// Seed pins the graph, the load plan, and the scheduler.
const Seed = 0x5A4EB011

// BatchK is the lockstep batch width used by the batch and share
// modes: the full traverse.MaxBatch, since wave sharing scales with
// how many overlapping frontiers advance together.
const BatchK = 32

// Scenario is one reproducible workload cell.
type Scenario struct {
	// Name keys the scenario in the report and in CheckThresholds.
	Name string
	// Units is the processing-unit count; with QueueDepth it sets the
	// concurrency level (every unit holds a deep queue of overlapping
	// queries).
	Units int
	// Queries is the exact task count replayed in every mode.
	Queries int
	// NumKeys and ZipfS shape the start-vertex distribution: keys are
	// mapped to degree-ranked hub vertices, so a Zipf-hot key stream
	// is a stream of overlapping frontiers.
	NumKeys int32
	ZipfS   float64
	// QPS is the virtual arrival rate of the open-loop plan.
	QPS float64
	// MemoryPerUnit bounds each unit's buffer, keeping the hot set
	// contended instead of fully cached.
	MemoryPerUnit int64
	// QueueDepth is the sim dispatch depth (Config.MaxQueuePerUnit):
	// deep queues are what give the batcher same-unit peers to fuse.
	QueueDepth int
	// Gate marks the scenario whose reads ratio CheckThresholds
	// enforces; ungated scenarios (e.g. the uniform-key control) are
	// reported for context only.
	Gate bool
}

// Scenarios returns the tracked cells. smoke keeps only a reduced
// gated cell so CI proves the whole pipeline in seconds.
func Scenarios(smoke bool) []Scenario {
	hot := Scenario{
		Name:          "hot/P=8",
		Units:         8,
		Queries:       1600,
		NumKeys:       64,
		ZipfS:         1.4,
		QPS:           4000,
		MemoryPerUnit: 1 << 20,
		QueueDepth:    48,
		Gate:          true,
	}
	if smoke {
		hot.Queries = 300
		return []Scenario{hot}
	}
	uniform := hot
	uniform.Name = "uniform/P=8"
	uniform.ZipfS = 0
	uniform.Gate = false
	return []Scenario{hot, uniform}
}

// graphVertices and graphEdges size the fixture: a power-law social
// graph whose hubs are what the Zipf-hot keys land on.
const (
	graphVertices = 20000
	graphEdges    = 100000
)

// fixtureGraph builds the shared benchmark graph.
func fixtureGraph() (*graph.Graph, error) {
	return graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: graphVertices,
		NumEdges:    graphEdges,
		Exponent:    2.2,
		Kind:        graph.Undirected,
		Seed:        Seed,
		VertexMeta:  true,
	})
}

// hubRank returns vertices sorted by descending degree (ties by id),
// so key k maps to the k-th busiest vertex and Zipf-hot keys become
// overlapping hub traversals.
func hubRank(g *graph.Graph) []graph.VertexID {
	order := make([]graph.VertexID, g.NumVertices())
	for i := range order {
		order[i] = graph.VertexID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}

// tasks materializes the scenario's open-loop plan as simulator tasks:
// loadgen draws arrivals, ops and Zipfian keys; the keys index the
// degree-ranked hub list.
func tasks(sc Scenario, g *graph.Graph) ([]*sched.Task, error) {
	hubs := hubRank(g)
	if int(sc.NumKeys) > len(hubs) {
		return nil, fmt.Errorf("sharebench: %d keys for %d vertices", sc.NumKeys, len(hubs))
	}
	// Enough virtual time for the thinned Poisson plan to cover the
	// target count with slack; the plan is truncated to exactly
	// sc.Queries events.
	duration := int64(float64(sc.Queries)/sc.QPS*1e9*1.5) + 1
	plan, err := loadgen.BuildPlan(loadgen.Config{
		Seed:          Seed,
		DurationNanos: duration,
		QPS:           sc.QPS,
		NumKeys:       sc.NumKeys,
		ZipfS:         sc.ZipfS,
		Mix:           loadgen.OpMix{BFS: 0.65, SSSP: 0.35},
	})
	if err != nil {
		return nil, err
	}
	if len(plan.Events) < sc.Queries {
		return nil, fmt.Errorf("sharebench: plan yielded %d events, need %d", len(plan.Events), sc.Queries)
	}
	out := make([]*sched.Task, sc.Queries)
	for i, ev := range plan.Events[:sc.Queries] {
		q := traverse.Query{Start: hubs[ev.Start]}
		switch ev.Op {
		case loadgen.OpBFS:
			q.Op = traverse.OpBFS
			q.Depth = 2
			q.MaxVisits = 300
		case loadgen.OpSSSP:
			q.Op = traverse.OpSSSP
			q.Target = hubs[ev.Target]
			q.Depth = 4
		default:
			return nil, fmt.Errorf("sharebench: unexpected op %q in plan", ev.Op)
		}
		out[i] = &sched.Task{ID: int64(i), Query: q, Arrival: ev.ArrivalNanos}
	}
	return out, nil
}

// mode is one sharing configuration of the executor.
type mode struct {
	name     string
	coalesce bool
	batchK   int
}

func modes() []mode {
	return []mode{
		{"baseline", false, 0},
		{"coalesce", true, 0},
		{"batch", false, BatchK},
		{"share", true, BatchK},
	}
}

// runMode replays tasks on a fresh cluster under one sharing
// configuration, returning the run measurements and every task's
// semantic result.
func runMode(g *graph.Graph, sc Scenario, m mode, ts []*sched.Task) (sim.Result, map[int64]traverse.Result, error) {
	c, err := sim.NewCluster(g, sim.Config{
		NumUnits:        sc.Units,
		MemoryPerUnit:   sc.MemoryPerUnit,
		MaxQueuePerUnit: sc.QueueDepth,
		CoalesceReads:   m.coalesce,
		BatchTraversals: m.batchK,
	})
	if err != nil {
		return sim.Result{}, nil, err
	}
	perTask := make(map[int64]traverse.Result, len(ts))
	c.OnComplete = func(task *sched.Task, r traverse.Result) {
		perTask[task.ID] = r
	}
	res, err := c.Run(sched.NewBaseline(Seed), ts)
	if err != nil {
		return sim.Result{}, nil, err
	}
	if int(res.Completed) != len(ts) {
		return sim.Result{}, nil, fmt.Errorf("sharebench: %s/%s completed %d of %d", sc.Name, m.name, res.Completed, len(ts))
	}
	return res, perTask, nil
}

// runScenario measures one scenario across all four modes and checks
// cross-mode result identity.
func runScenario(sc Scenario, g *graph.Graph, logf func(format string, args ...any)) (ScenarioReport, error) {
	ts, err := tasks(sc, g)
	if err != nil {
		return ScenarioReport{}, err
	}
	out := ScenarioReport{
		Name:       sc.Name,
		Units:      sc.Units,
		Queries:    sc.Queries,
		ZipfS:      sc.ZipfS,
		QueueDepth: sc.QueueDepth,
		BatchK:     BatchK,
		Gate:       sc.Gate,
	}
	var baseline map[int64]traverse.Result
	identical := true
	for _, m := range modes() {
		res, perTask, err := runMode(g, sc, m, ts)
		if err != nil {
			return ScenarioReport{}, err
		}
		if baseline == nil {
			baseline = perTask
		} else if !reflect.DeepEqual(baseline, perTask) {
			identical = false
		}
		st := ModeStats{
			Mode:              m.name,
			QueriesPerSec:     res.ThroughputPerSec,
			MakespanMs:        float64(res.Makespan.Nanoseconds()) / 1e6,
			DiskRequests:      res.Disk.Requests,
			CoalescedReads:    res.Disk.CoalescedReads,
			DiskReadsPerQuery: perQuery(res.Disk.Requests, res.Completed),
			CacheHitRate:      res.HitRate,
		}
		out.Modes = append(out.Modes, st)
		logf("%-14s %-9s %8.0f q/s  %6.2f reads/query  %7d reads  %7d coalesced  hit %.3f",
			sc.Name, m.name, st.QueriesPerSec, st.DiskReadsPerQuery, st.DiskRequests, st.CoalescedReads, st.CacheHitRate)
	}
	out.ResultsIdentical = identical
	out.ReadsRatio = ratio(out.Modes[0].DiskReadsPerQuery, out.Modes[len(out.Modes)-1].DiskReadsPerQuery)
	logf("%-14s sharing cuts disk reads %.2fx (results identical: %v)", sc.Name, out.ReadsRatio, identical)
	return out, nil
}

func perQuery(n, completed int64) float64 {
	if completed == 0 {
		return 0
	}
	return float64(n) / float64(completed)
}

// ratio divides with a floored denominator so a fully-shared run
// (zero residual reads) still reports a finite, JSON-encodable ratio.
func ratio(a, b float64) float64 {
	if b <= 0 {
		b = 1e-9
		if a <= 0 {
			return 1
		}
	}
	return a / b
}

// Run executes the suite and assembles the report. smoke runs the
// reduced scenario set (CI); a full run produces the tracked baseline.
func Run(smoke bool, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	g, err := fixtureGraph()
	if err != nil {
		return nil, err
	}
	rep := &Report{Smoke: smoke, BatchK: BatchK}
	for _, sc := range Scenarios(smoke) {
		sr, err := runScenario(sc, g, logf)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	return rep, nil
}
