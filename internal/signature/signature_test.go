package signature

import (
	"sync"
	"testing"
	"testing/quick"

	"subtrav/internal/graph"
)

func TestManualClock(t *testing.T) {
	var c ManualClock
	if c.Now() != 0 {
		t.Fatal("zero clock should read 0")
	}
	c.Set(100)
	if c.Now() != 100 {
		t.Errorf("Now = %d, want 100", c.Now())
	}
	c.Set(50) // never moves backwards
	if c.Now() != 100 {
		t.Errorf("clock moved backwards to %d", c.Now())
	}
	if got := c.Advance(25); got != 125 {
		t.Errorf("Advance returned %d, want 125", got)
	}
}

func TestWallClockMonotoneEnough(t *testing.T) {
	var c WallClock
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Errorf("wall clock regressed: %d then %d", a, b)
	}
}

func TestRecordAndQuery(t *testing.T) {
	tbl := NewTable(0)
	if tbl.Capacity() != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", tbl.Capacity(), DefaultCapacity)
	}
	v := graph.VertexID(7)
	if tbl.VisitedBy(v, 0) {
		t.Error("fresh vertex should have no visitors")
	}
	tbl.Record(v, 3, 100)
	tbl.Record(v, 5, 200)
	tbl.Record(v, 3, 300)
	if !tbl.VisitedBy(v, 3) || !tbl.VisitedBy(v, 5) || tbl.VisitedBy(v, 9) {
		t.Error("VisitedBy wrong")
	}
	if ts, ok := tbl.LatestByProc(v, 3); !ok || ts != 300 {
		t.Errorf("LatestByProc(3) = %d,%t, want 300,true", ts, ok)
	}
	if ts, ok := tbl.LatestByProc(v, 5); !ok || ts != 200 {
		t.Errorf("LatestByProc(5) = %d,%t, want 200,true", ts, ok)
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	tbl := NewTable(3)
	v := graph.VertexID(1)
	for i := int64(0); i < 5; i++ {
		tbl.Record(v, int32(i), i*10)
	}
	entries := tbl.Visitors(v)
	if len(entries) != 3 {
		t.Fatalf("len = %d, want 3", len(entries))
	}
	// Only the three newest survive: procs 2,3,4.
	if entries[0].Proc != 2 || entries[2].Proc != 4 {
		t.Errorf("entries = %v, want procs 2..4", entries)
	}
	if tbl.VisitedBy(v, 0) {
		t.Error("oldest entry should have been evicted")
	}
}

func TestVisitorsOrderedAndCopied(t *testing.T) {
	tbl := NewTable(5)
	v := graph.VertexID(2)
	tbl.Record(v, 1, 10)
	tbl.Record(v, 2, 20)
	got := tbl.Visitors(v)
	if len(got) != 2 || got[0].Time != 10 || got[1].Time != 20 {
		t.Fatalf("Visitors = %v", got)
	}
	got[0].Proc = 99 // must not corrupt the table
	if fresh := tbl.Visitors(v); fresh[0].Proc != 1 {
		t.Error("Visitors returned a live reference, not a copy")
	}
	if tbl.Visitors(graph.VertexID(42)) != nil {
		t.Error("Visitors of unseen vertex should be nil")
	}
}

func TestForEachVisitor(t *testing.T) {
	tbl := NewTable(5)
	v := graph.VertexID(3)
	tbl.Record(v, 1, 10)
	tbl.Record(v, 2, 20)
	var procs []int32
	tbl.ForEachVisitor(v, func(e Entry) { procs = append(procs, e.Proc) })
	if len(procs) != 2 || procs[0] != 1 || procs[1] != 2 {
		t.Errorf("ForEachVisitor order = %v", procs)
	}
}

func TestLenAndReset(t *testing.T) {
	tbl := NewTable(2)
	for v := graph.VertexID(0); v < 100; v++ {
		tbl.Record(v, 0, int64(v))
	}
	if tbl.Len() != 100 {
		t.Errorf("Len = %d, want 100", tbl.Len())
	}
	tbl.Reset()
	if tbl.Len() != 0 {
		t.Errorf("Len after reset = %d, want 0", tbl.Len())
	}
}

func TestConcurrentRecordAndRead(t *testing.T) {
	tbl := NewTable(10)
	var wg sync.WaitGroup
	for p := int32(0); p < 8; p++ {
		wg.Add(1)
		go func(proc int32) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := graph.VertexID(i % 257)
				tbl.Record(v, proc, int64(i))
				tbl.VisitedBy(v, proc)
				tbl.LatestByProc(v, (proc+1)%8)
			}
		}(p)
	}
	wg.Wait()
	// Every touched vertex has between 1 and capacity entries.
	for v := graph.VertexID(0); v < 257; v++ {
		n := len(tbl.Visitors(v))
		if n < 1 || n > 10 {
			t.Fatalf("vertex %d has %d entries", v, n)
		}
	}
}

// Regression: live-runtime units race on the wall clock, so records
// for one vertex can interleave out of order. LatestByProc and
// LatestAll must still report the true maximum timestamp per
// processor (the t_p of Eq. 2), not whichever entry happens to sit at
// the tail.
func TestRecordOutOfOrder(t *testing.T) {
	tbl := NewTable(5)
	v := graph.VertexID(9)
	tbl.Record(v, 1, 100)
	tbl.Record(v, 1, 300)
	tbl.Record(v, 1, 200) // arrives late: older than the tail
	if ts, ok := tbl.LatestByProc(v, 1); !ok || ts != 300 {
		t.Errorf("LatestByProc after out-of-order record = %d,%t, want 300,true", ts, ok)
	}
	got := tbl.Visitors(v)
	for i := 1; i < len(got); i++ {
		if got[i-1].Time > got[i].Time {
			t.Errorf("list not time-ordered after out-of-order record: %v", got)
		}
	}
	// Interleaved processors: proc 2's stale record must not mask
	// proc 1's fresh one, nor vice versa.
	tbl.Record(v, 2, 250)
	if ts, _ := tbl.LatestByProc(v, 1); ts != 300 {
		t.Errorf("proc 1 latest = %d, want 300", ts)
	}
	if ts, _ := tbl.LatestByProc(v, 2); ts != 250 {
		t.Errorf("proc 2 latest = %d, want 250", ts)
	}
}

// Regression: with the list full, eviction drops the entry that is
// oldest by time (index 0 of the ordered list), and a record older
// than everything in a full list is dropped rather than evicting a
// newer entry.
func TestRecordOutOfOrderEviction(t *testing.T) {
	tbl := NewTable(3)
	v := graph.VertexID(4)
	tbl.Record(v, 0, 100)
	tbl.Record(v, 1, 300)
	tbl.Record(v, 2, 200)
	// Full: {100, 200, 300}. A newer record evicts time 100.
	tbl.Record(v, 3, 400)
	if tbl.VisitedBy(v, 0) {
		t.Error("oldest entry (time 100) should have been evicted")
	}
	// {200, 300, 400}: a record older than all three is dropped.
	tbl.Record(v, 4, 150)
	if tbl.VisitedBy(v, 4) {
		t.Error("record older than a full list should be dropped")
	}
	if ts, _ := tbl.LatestByProc(v, 2); ts != 200 {
		t.Errorf("proc 2 latest = %d, want 200 (not evicted by stale record)", ts)
	}
}

func TestLatestAll(t *testing.T) {
	tbl := NewTable(10)
	v := graph.VertexID(11)
	out := make([]int64, 4)
	if tbl.LatestAll(v, out) {
		t.Error("LatestAll on unseen vertex should report false")
	}
	for _, ts := range out {
		if ts != NoVisit {
			t.Fatalf("unseen vertex out = %v, want all NoVisit", out)
		}
	}
	tbl.Record(v, 0, 100)
	tbl.Record(v, 2, 300)
	tbl.Record(v, 0, 250)
	tbl.Record(v, 7, 400) // outside [0, len(out)): ignored
	if !tbl.LatestAll(v, out) {
		t.Fatal("LatestAll should report true for in-range visitors")
	}
	want := []int64{250, NoVisit, 300, NoVisit}
	for p, ts := range out {
		if ts != want[p] {
			t.Errorf("out[%d] = %d, want %d", p, ts, want[p])
		}
	}
}

// Property: LatestAll agrees with per-proc LatestByProc on random
// record sequences, including out-of-order timestamps.
func TestLatestAllMatchesLatestByProcQuick(t *testing.T) {
	f := func(raw []uint16, capRaw uint8) bool {
		capacity := int(capRaw)%9 + 1
		tbl := NewTable(capacity)
		v := graph.VertexID(3)
		for _, r := range raw {
			proc := int32(r % 5)
			ts := int64(r / 5 % 64) // small range → plenty of out-of-order collisions
			tbl.Record(v, proc, ts)
		}
		out := make([]int64, 5)
		tbl.LatestAll(v, out)
		for p := int32(0); p < 5; p++ {
			ts, ok := tbl.LatestByProc(v, p)
			if ok != (out[p] != NoVisit) {
				return false
			}
			if ok && ts != out[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLockAcquisitionsCountsHotPath(t *testing.T) {
	tbl := NewTable(10)
	v := graph.VertexID(1)
	base := tbl.LockAcquisitions()
	tbl.Record(v, 0, 1)
	tbl.Record(v, 1, 2)
	out := make([]int64, 8)
	tbl.LatestAll(v, out)
	for p := int32(0); p < 8; p++ {
		tbl.LatestByProc(v, p)
	}
	if got := tbl.LockAcquisitions() - base; got != 2+1+8 {
		t.Errorf("lock acquisitions = %d, want 11 (2 records + 1 LatestAll + 8 LatestByProc)", got)
	}
}

// Property: after any sequence of records on one vertex, the list
// holds the most recent min(cap, total) entries in order.
func TestRingSemanticsQuick(t *testing.T) {
	f := func(procsRaw []uint8, capRaw uint8) bool {
		capacity := int(capRaw)%9 + 1
		tbl := NewTable(capacity)
		v := graph.VertexID(0)
		for i, p := range procsRaw {
			tbl.Record(v, int32(p), int64(i))
		}
		got := tbl.Visitors(v)
		want := len(procsRaw)
		if want > capacity {
			want = capacity
		}
		if len(got) != want {
			return false
		}
		offset := len(procsRaw) - want
		for i, e := range got {
			if e.Proc != int32(procsRaw[offset+i]) || e.Time != int64(offset+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
