// Package signature implements the vertex visit-signature machinery of
// Section IV-A: a global steady timer and, for each graph vertex v, a
// short list L(v) of (timestamp, processor) pairs recording which
// processing units recently visited v. The affinity scorer reads these
// lists to decide whether a subgraph traversal is likely to find its
// data cached on a given unit.
package signature

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"subtrav/internal/graph"
)

// Clock yields monotically non-decreasing timestamps in nanoseconds.
// The discrete-event simulator supplies virtual time; the live runtime
// supplies wall time.
type Clock interface {
	Now() int64
}

// WallClock reads the machine's monotonic clock.
type WallClock struct{}

// Now returns the current wall time in nanoseconds.
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// ManualClock is an explicitly advanced clock, used by the simulator
// and by tests. Safe for concurrent use.
type ManualClock struct {
	t atomic.Int64
}

// Now returns the current virtual time.
func (c *ManualClock) Now() int64 { return c.t.Load() }

// Set moves the clock to t; it never moves backwards.
func (c *ManualClock) Set(t int64) {
	for {
		cur := c.t.Load()
		if t <= cur || c.t.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Advance moves the clock forward by d nanoseconds and returns the new
// time.
func (c *ManualClock) Advance(d int64) int64 { return c.t.Add(d) }

// Reset forcibly rewinds the clock to 0 — the one sanctioned backwards
// move, used when a simulator reuses its clock across independent
// runs. Never call it while readers are active.
func (c *ManualClock) Reset() { c.t.Store(0) }

// Entry is one visit record: processor proc touched the vertex at the
// given timestamp.
type Entry struct {
	Time int64
	Proc int32
}

// DefaultCapacity is the per-vertex signature list length suggested by
// the paper ("the list can be kept short, say 10 entries per vertex").
const DefaultCapacity = 10

// Table stores the signature lists of all vertices. It is sharded and
// safe for concurrent use: traversal engines record visits while the
// scheduler reads affinities.
type Table struct {
	capacity int
	shards   []shard
	mask     uint32
}

type shard struct {
	mu    sync.RWMutex
	lists map[graph.VertexID][]Entry
	// locks counts mutex acquisitions (read or write) on this shard's
	// hot-path operations. Per-shard atomics avoid a single contended
	// cache line; Table.LockAcquisitions sums them. The counter feeds
	// the scheduler hot-path benchmarks (internal/schedbench), which
	// assert that the batched LatestAll path takes P× fewer locks than
	// per-proc LatestByProc scans.
	locks atomic.Int64
}

// NewTable creates a table keeping at most capacity entries per vertex
// (DefaultCapacity if capacity <= 0).
func NewTable(capacity int) *Table {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	const numShards = 64 // power of two
	t := &Table{capacity: capacity, shards: make([]shard, numShards), mask: numShards - 1}
	for i := range t.shards {
		t.shards[i].lists = make(map[graph.VertexID][]Entry)
	}
	return t
}

// Capacity returns the per-vertex entry limit.
func (t *Table) Capacity() int { return t.capacity }

func (t *Table) shardFor(v graph.VertexID) *shard {
	return &t.shards[uint32(v)&t.mask]
}

// Record inserts the visit (now, proc) into L(v), keeping the list
// ordered by time and evicting the oldest entry when it is full. The
// global clock is steady, but live-runtime units race on reading it,
// so records for one vertex can arrive slightly out of order; a new
// record therefore insertion-sorts into the tail (lists hold at most
// capacity ≈ 10 entries, so this is O(capacity)). Keeping the list
// time-ordered is what lets LatestByProc's newest-first scan return
// the true maximum — the t_p of Eq. 2 — instead of a stale timestamp.
// A record older than every entry of a full list is already outside
// the "capacity most recent visits" window and is dropped.
func (t *Table) Record(v graph.VertexID, proc int32, now int64) {
	s := t.shardFor(v)
	s.mu.Lock()
	s.locks.Add(1)
	list := s.lists[v]
	if len(list) == t.capacity {
		if now < list[0].Time {
			s.mu.Unlock()
			return
		}
		copy(list, list[1:])
		list[len(list)-1] = Entry{Time: now, Proc: proc}
	} else {
		list = append(list, Entry{Time: now, Proc: proc})
	}
	for i := len(list) - 1; i > 0 && list[i-1].Time > list[i].Time; i-- {
		list[i-1], list[i] = list[i], list[i-1]
	}
	s.lists[v] = list
	s.mu.Unlock()
}

// VisitedBy reports whether proc appears in L(v) — the variant
// Kronecker delta δ_{v,p} of Eq. 1.
func (t *Table) VisitedBy(v graph.VertexID, proc int32) bool {
	_, ok := t.LatestByProc(v, proc)
	return ok
}

// LatestByProc returns the most recent timestamp at which proc visited
// v, scanning L(v) newest-first (Record keeps the list time-ordered,
// so the first match is the maximum).
func (t *Table) LatestByProc(v graph.VertexID, proc int32) (int64, bool) {
	s := t.shardFor(v)
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.locks.Add(1)
	list := s.lists[v]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].Proc == proc {
			return list[i].Time, true
		}
	}
	return 0, false
}

// NoVisit is the sentinel timestamp LatestAll writes for processors
// without an entry in L(v). It is far older than any real timestamp,
// so max-comparisons against it need no special casing.
const NoVisit int64 = math.MinInt64

// LatestAll fills out[p] with the most recent timestamp at which
// processor p visited v, for every p in [0, len(out)), writing NoVisit
// where p has none. It acquires v's shard lock once and scans L(v)
// once, serving all P units in a single pass — the batched counterpart
// of calling LatestByProc per processor, and the primitive behind the
// affinity scorer's per-round snapshot cache. Entries whose Proc falls
// outside [0, len(out)) are ignored. The scan takes the true maximum
// per processor, so it is correct even on a list with out-of-order
// residue. It reports whether any in-range processor was found.
func (t *Table) LatestAll(v graph.VertexID, out []int64) bool {
	for i := range out {
		out[i] = NoVisit
	}
	s := t.shardFor(v)
	s.mu.RLock()
	s.locks.Add(1)
	any := false
	for _, e := range s.lists[v] {
		p := int(e.Proc)
		if p < 0 || p >= len(out) {
			continue
		}
		if out[p] == NoVisit || e.Time > out[p] {
			out[p] = e.Time
		}
		any = true
	}
	s.mu.RUnlock()
	return any
}

// LockAcquisitions returns the cumulative number of shard-lock
// acquisitions taken by the hot-path operations (Record, LatestByProc,
// LatestAll) since the table was created. It is a benchmark/diagnostic
// counter: the batched-scoring work asserts its growth rate.
func (t *Table) LockAcquisitions() int64 {
	var total int64
	for i := range t.shards {
		total += t.shards[i].locks.Load()
	}
	return total
}

// Visitors returns a copy of L(v), ordered oldest to newest.
func (t *Table) Visitors(v graph.VertexID) []Entry {
	s := t.shardFor(v)
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.lists[v]
	if len(list) == 0 {
		return nil
	}
	out := make([]Entry, len(list))
	copy(out, list)
	return out
}

// ForEachVisitor calls fn for every entry of L(v) without copying.
// fn must not call back into the table.
func (t *Table) ForEachVisitor(v graph.VertexID, fn func(Entry)) {
	s := t.shardFor(v)
	s.mu.RLock()
	for _, e := range s.lists[v] {
		fn(e)
	}
	s.mu.RUnlock()
}

// Len returns the total number of vertices with at least one
// signature entry.
func (t *Table) Len() int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		total += len(s.lists)
		s.mu.RUnlock()
	}
	return total
}

// Reset drops all signature lists.
func (t *Table) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.lists = make(map[graph.VertexID][]Entry)
		s.mu.Unlock()
	}
}
