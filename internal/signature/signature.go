// Package signature implements the vertex visit-signature machinery of
// Section IV-A: a global steady timer and, for each graph vertex v, a
// short list L(v) of (timestamp, processor) pairs recording which
// processing units recently visited v. The affinity scorer reads these
// lists to decide whether a subgraph traversal is likely to find its
// data cached on a given unit.
package signature

import (
	"sync"
	"sync/atomic"
	"time"

	"subtrav/internal/graph"
)

// Clock yields monotically non-decreasing timestamps in nanoseconds.
// The discrete-event simulator supplies virtual time; the live runtime
// supplies wall time.
type Clock interface {
	Now() int64
}

// WallClock reads the machine's monotonic clock.
type WallClock struct{}

// Now returns the current wall time in nanoseconds.
func (WallClock) Now() int64 { return time.Now().UnixNano() }

// ManualClock is an explicitly advanced clock, used by the simulator
// and by tests. Safe for concurrent use.
type ManualClock struct {
	t atomic.Int64
}

// Now returns the current virtual time.
func (c *ManualClock) Now() int64 { return c.t.Load() }

// Set moves the clock to t; it never moves backwards.
func (c *ManualClock) Set(t int64) {
	for {
		cur := c.t.Load()
		if t <= cur || c.t.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Advance moves the clock forward by d nanoseconds and returns the new
// time.
func (c *ManualClock) Advance(d int64) int64 { return c.t.Add(d) }

// Reset forcibly rewinds the clock to 0 — the one sanctioned backwards
// move, used when a simulator reuses its clock across independent
// runs. Never call it while readers are active.
func (c *ManualClock) Reset() { c.t.Store(0) }

// Entry is one visit record: processor proc touched the vertex at the
// given timestamp.
type Entry struct {
	Time int64
	Proc int32
}

// DefaultCapacity is the per-vertex signature list length suggested by
// the paper ("the list can be kept short, say 10 entries per vertex").
const DefaultCapacity = 10

// Table stores the signature lists of all vertices. It is sharded and
// safe for concurrent use: traversal engines record visits while the
// scheduler reads affinities.
type Table struct {
	capacity int
	shards   []shard
	mask     uint32
}

type shard struct {
	mu    sync.RWMutex
	lists map[graph.VertexID][]Entry
}

// NewTable creates a table keeping at most capacity entries per vertex
// (DefaultCapacity if capacity <= 0).
func NewTable(capacity int) *Table {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	const numShards = 64 // power of two
	t := &Table{capacity: capacity, shards: make([]shard, numShards), mask: numShards - 1}
	for i := range t.shards {
		t.shards[i].lists = make(map[graph.VertexID][]Entry)
	}
	return t
}

// Capacity returns the per-vertex entry limit.
func (t *Table) Capacity() int { return t.capacity }

func (t *Table) shardFor(v graph.VertexID) *shard {
	return &t.shards[uint32(v)&t.mask]
}

// Record appends the visit (now, proc) to L(v), evicting the oldest
// entry when the list is full. Timestamps are expected to be
// non-decreasing per vertex (the clock is global and steady); the list
// therefore stays ordered by time.
func (t *Table) Record(v graph.VertexID, proc int32, now int64) {
	s := t.shardFor(v)
	s.mu.Lock()
	list := s.lists[v]
	if len(list) == t.capacity {
		copy(list, list[1:])
		list[len(list)-1] = Entry{Time: now, Proc: proc}
	} else {
		list = append(list, Entry{Time: now, Proc: proc})
	}
	s.lists[v] = list
	s.mu.Unlock()
}

// VisitedBy reports whether proc appears in L(v) — the variant
// Kronecker delta δ_{v,p} of Eq. 1.
func (t *Table) VisitedBy(v graph.VertexID, proc int32) bool {
	_, ok := t.LatestByProc(v, proc)
	return ok
}

// LatestByProc returns the most recent timestamp at which proc visited
// v, scanning L(v) newest-first.
func (t *Table) LatestByProc(v graph.VertexID, proc int32) (int64, bool) {
	s := t.shardFor(v)
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.lists[v]
	for i := len(list) - 1; i >= 0; i-- {
		if list[i].Proc == proc {
			return list[i].Time, true
		}
	}
	return 0, false
}

// Visitors returns a copy of L(v), ordered oldest to newest.
func (t *Table) Visitors(v graph.VertexID) []Entry {
	s := t.shardFor(v)
	s.mu.RLock()
	defer s.mu.RUnlock()
	list := s.lists[v]
	if len(list) == 0 {
		return nil
	}
	out := make([]Entry, len(list))
	copy(out, list)
	return out
}

// ForEachVisitor calls fn for every entry of L(v) without copying.
// fn must not call back into the table.
func (t *Table) ForEachVisitor(v graph.VertexID, fn func(Entry)) {
	s := t.shardFor(v)
	s.mu.RLock()
	for _, e := range s.lists[v] {
		fn(e)
	}
	s.mu.RUnlock()
}

// Len returns the total number of vertices with at least one
// signature entry.
func (t *Table) Len() int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		total += len(s.lists)
		s.mu.RUnlock()
	}
	return total
}

// Reset drops all signature lists.
func (t *Table) Reset() {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.lists = make(map[graph.VertexID][]Entry)
		s.mu.Unlock()
	}
}
