package graphgen

import (
	"math"
	"testing"

	"subtrav/internal/graph"
)

func TestPowerLawBasic(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{
		NumVertices: 2000, NumEdges: 10000, Exponent: 2.2,
		Kind: graph.Undirected, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Errorf("V = %d, want 2000", g.NumVertices())
	}
	// Duplicate rejection may shave a few edges, but should come close.
	if g.NumEdges() < 9000 || g.NumEdges() > 10000 {
		t.Errorf("E = %d, want ~10000", g.NumEdges())
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	cfg := PowerLawConfig{NumVertices: 500, NumEdges: 2000, Exponent: 2.3, Kind: graph.Undirected, Seed: 7}
	g1, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for v := 0; v < g1.NumVertices(); v++ {
		if g1.Degree(graph.VertexID(v)) != g2.Degree(graph.VertexID(v)) {
			t.Fatalf("degree(%d) differs", v)
		}
	}
}

// The central topological claim of Figure 11: the power-law graph is
// strongly skewed, the random graph is approximately even.
func TestPowerLawIsMoreSkewedThanRandom(t *testing.T) {
	const n, m = 5000, 25000
	pl, err := PowerLaw(PowerLawConfig{NumVertices: n, NumEdges: m, Exponent: 2.1, Kind: graph.Undirected, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	er, err := Random(RandomConfig{NumVertices: n, NumEdges: m, Kind: graph.Undirected, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plStats := graph.ComputeStats(pl)
	erStats := graph.ComputeStats(er)
	if plStats.Gini <= erStats.Gini {
		t.Errorf("power-law gini %g should exceed random gini %g", plStats.Gini, erStats.Gini)
	}
	if plStats.MaxDegree <= 3*erStats.MaxDegree {
		t.Errorf("power-law max degree %d should dwarf random max degree %d", plStats.MaxDegree, erStats.MaxDegree)
	}
}

func TestPowerLawMeta(t *testing.T) {
	g, err := PowerLaw(PowerLawConfig{
		NumVertices: 100, NumEdges: 300, Exponent: 2.5,
		Kind: graph.Undirected, Seed: 9, VertexMeta: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := g.VertexProps(0)
	if p == nil || p["uid"].Int64() != 0 {
		t.Fatalf("vertex props missing: %v", p)
	}
	// Twitter-like records should be small metadata (order 100s of bytes).
	if b := g.VertexBytes(0); b < 64 || b > 2048 {
		t.Errorf("vertex bytes = %d, want small metadata", b)
	}
	lo, _ := g.EdgeSlots(0)
	e := g.LogicalEdge(lo)
	if ep := g.EdgeProps(e); ep == nil {
		t.Error("edge props missing")
	} else if _, ok := ep["retweet_ts"]; !ok {
		t.Error("retweet_ts missing from edge props")
	}
}

func TestPowerLawValidate(t *testing.T) {
	bad := []PowerLawConfig{
		{NumVertices: 0, NumEdges: 1, Exponent: 2.5},
		{NumVertices: 10, NumEdges: -1, Exponent: 2.5},
		{NumVertices: 10, NumEdges: 1, Exponent: 2.0},
	}
	for i, cfg := range bad {
		if _, err := PowerLaw(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRandomExactEdges(t *testing.T) {
	g, err := Random(RandomConfig{NumVertices: 1000, NumEdges: 5000, Kind: graph.Undirected, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5000 {
		t.Errorf("E = %d, want exactly 5000", g.NumEdges())
	}
	// Simple graph: no self-loops.
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if int(u) == v {
				t.Fatalf("self-loop at %d", v)
			}
		}
	}
}

func TestRandomRejectsOverfull(t *testing.T) {
	if _, err := Random(RandomConfig{NumVertices: 3, NumEdges: 4, Kind: graph.Undirected}); err == nil {
		t.Error("expected error: 4 edges do not fit in K3")
	}
	if _, err := Random(RandomConfig{NumVertices: 3, NumEdges: 6, Kind: graph.Directed}); err != nil {
		t.Errorf("directed K3 has 6 slots, got error %v", err)
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(BAConfig{NumVertices: 3000, EdgesPerVertex: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st := graph.ComputeStats(g)
	if st.MinDegree < 1 {
		t.Errorf("BA min degree = %d, want >= 1", st.MinDegree)
	}
	// Preferential attachment must produce hubs.
	if st.MaxDegree < 10*int(st.MeanDegree) {
		t.Errorf("BA max degree %d vs mean %g: no hubs formed", st.MaxDegree, st.MeanDegree)
	}
	if _, err := BarabasiAlbert(BAConfig{NumVertices: 0, EdgesPerVertex: 1}); err == nil {
		t.Error("expected error for zero vertices")
	}
	if _, err := BarabasiAlbert(BAConfig{NumVertices: 10, EdgesPerVertex: 0}); err == nil {
		t.Error("expected error for zero edges per vertex")
	}
}

func smallCorpusConfig(seed uint64) ImageCorpusConfig {
	return ImageCorpusConfig{
		NumPersons:         20,
		ImagesPerPersonMin: 5,
		ImagesPerPersonMax: 10,
		DescriptorDim:      16,
		IntraNoise:         0.2,
		KNN:                5,
		CrossCandidates:    10,
		NumPartitions:      4,
		NumQueries:         30,
		PhotoBytesMin:      10_000,
		PhotoBytesMax:      50_000,
		Seed:               seed,
	}
}

func TestImageCorpusStructure(t *testing.T) {
	c, err := Images(smallCorpusConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	n := g.NumVertices()
	if n < 20*5 || n > 20*10 {
		t.Errorf("corpus size %d outside [100,200]", n)
	}
	if len(c.Person) != n {
		t.Fatalf("Person labels %d != vertices %d", len(c.Person), n)
	}
	if g.NumPartitions() > 4+1 || g.NumPartitions() < 1 {
		t.Errorf("partitions = %d, want ~4", g.NumPartitions())
	}
	if !g.HasWeights() {
		t.Error("similarity graph must be weighted")
	}
	// Photos dominate record sizes.
	if b := g.VertexBytes(0); b < 10_000 {
		t.Errorf("photo payload = %d bytes, want >= 10000", b)
	}
	if len(c.Queries) != 30 {
		t.Errorf("queries = %d, want 30", len(c.Queries))
	}
	for _, q := range c.Queries {
		if !g.Valid(q.Entry) {
			t.Fatalf("query entry %d invalid", q.Entry)
		}
	}
}

// Cluster structure: most query entry points should land inside the
// query's own person cluster (tight clusters, modest noise).
func TestImageCorpusQueriesLandInCluster(t *testing.T) {
	c, err := Images(smallCorpusConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, q := range c.Queries {
		if c.Person[q.Entry] == q.Person {
			hits++
		}
	}
	frac := float64(hits) / float64(len(c.Queries))
	if frac < 0.8 {
		t.Errorf("only %.0f%% of queries map into their own cluster, want >= 80%%", 100*frac)
	}
}

// Locality structure: within-person similarity should exceed
// cross-person similarity on average.
func TestImageCorpusEdgeWeightsClustered(t *testing.T) {
	c, err := Images(smallCorpusConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	g := c.Graph
	var intraSum, interSum float64
	var intraN, interN int
	for v := 0; v < g.NumVertices(); v++ {
		lo, hi := g.EdgeSlots(graph.VertexID(v))
		for s := lo; s < hi; s++ {
			u := g.TargetAt(s)
			w := float64(g.Weight(g.LogicalEdge(s)))
			if c.Person[v] == c.Person[u] {
				intraSum += w
				intraN++
			} else {
				interSum += w
				interN++
			}
		}
	}
	if intraN == 0 {
		t.Fatal("no intra-cluster edges")
	}
	intraMean := intraSum / float64(intraN)
	if interN > 0 {
		interMean := interSum / float64(interN)
		if intraMean <= interMean {
			t.Errorf("intra-cluster weight %g should exceed inter-cluster %g", intraMean, interMean)
		}
	}
}

func TestImageCorpusPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpus generation in -short mode")
	}
	c, err := Images(DefaultImageCorpus(42))
	if err != nil {
		t.Fatal(err)
	}
	n := c.Graph.NumVertices()
	// Paper: 5,978 images; generator targets the same scale.
	if n < 4500 || n > 7500 {
		t.Errorf("corpus vertices = %d, want ≈5978", n)
	}
	// Paper: 89,206 edges.
	if e := c.Graph.NumEdges(); e < 40_000 || e > 140_000 {
		t.Errorf("corpus edges = %d, want ≈89k", e)
	}
	if len(c.Queries) != 1024 {
		t.Errorf("queries = %d, want 1024", len(c.Queries))
	}
}

func TestImagesValidate(t *testing.T) {
	cfg := smallCorpusConfig(1)
	cfg.KNN = 0
	if _, err := Images(cfg); err == nil {
		t.Error("expected error for KNN=0")
	}
	cfg = smallCorpusConfig(1)
	cfg.NumPartitions = 100 // > persons
	if _, err := Images(cfg); err == nil {
		t.Error("expected error for partitions > persons")
	}
}

func TestPurchases(t *testing.T) {
	pg, err := Purchases(PurchaseConfig{
		NumCustomers: 500, NumProducts: 100,
		PurchasesPerCustomerMean: 5, PopularityExponent: 2.5, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := pg.Graph
	if g.NumVertices() != 600 {
		t.Fatalf("V = %d, want 600", g.NumVertices())
	}
	// Bipartite: customer neighbors are all products and vice versa.
	for c := 0; c < 500; c++ {
		for _, u := range g.Neighbors(pg.CustomerVertex(c)) {
			if !pg.IsProduct(u) {
				t.Fatalf("customer %d linked to non-product %d", c, u)
			}
		}
	}
	// Mean basket size should be near the configured mean.
	mean := 2 * float64(g.NumEdges()) / 600 * 600 / 500 / 2
	_ = mean
	total := 0
	for c := 0; c < 500; c++ {
		total += g.Degree(pg.CustomerVertex(c))
	}
	got := float64(total) / 500
	if math.Abs(got-5) > 1 {
		t.Errorf("mean basket = %g, want ~5", got)
	}
	// Popularity skew: the most popular product should far exceed the mean.
	maxDeg := 0
	for p := 0; p < 100; p++ {
		if d := g.Degree(pg.ProductVertex(p)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 3*total/100 {
		t.Errorf("max product degree %d shows no popularity skew (mean %d)", maxDeg, total/100)
	}
}

func TestPurchasesValidate(t *testing.T) {
	bad := []PurchaseConfig{
		{NumCustomers: 0, NumProducts: 1, PurchasesPerCustomerMean: 1, PopularityExponent: 2.5},
		{NumCustomers: 1, NumProducts: 0, PurchasesPerCustomerMean: 1, PopularityExponent: 2.5},
		{NumCustomers: 1, NumProducts: 1, PurchasesPerCustomerMean: 0, PopularityExponent: 2.5},
		{NumCustomers: 1, NumProducts: 1, PurchasesPerCustomerMean: 1, PopularityExponent: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Purchases(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEstimateExponent(t *testing.T) {
	// Generate without the structural cutoff so the tail is clean,
	// then check the MLE recovers the requested exponent roughly.
	g, err := PowerLaw(PowerLawConfig{
		NumVertices: 20000, NumEdges: 100000, Exponent: 2.3,
		Kind: graph.Undirected, Seed: 5, MaxDegree: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := EstimateExponent(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if gamma < 1.7 || gamma > 3.2 {
		t.Errorf("estimated exponent %.2f for generated γ=2.3", gamma)
	}
	// The Erdős–Rényi control has no power-law tail: its estimate is
	// far larger (thin exponential tail).
	er, err := Random(RandomConfig{NumVertices: 20000, NumEdges: 100000, Kind: graph.Undirected, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	erGamma, err := EstimateExponent(er, 10)
	if err != nil {
		t.Fatal(err)
	}
	if erGamma <= gamma {
		t.Errorf("ER estimate %.2f should exceed power-law estimate %.2f", erGamma, gamma)
	}
	if _, err := EstimateExponent(g, 0); err == nil {
		t.Error("dmin=0 accepted")
	}
	tiny := graph.NewBuilder(graph.Undirected, 3).Build()
	if _, err := EstimateExponent(tiny, 1); err == nil {
		t.Error("too-small sample accepted")
	}
}
