package graphgen

import (
	"fmt"
	"math"

	"subtrav/internal/graph"
	"subtrav/internal/xrand"
)

// PurchaseConfig configures the customer-product purchase graph used
// by the naive collaborative-filtering application (Section II,
// example 2): a bipartite graph linking customers to the products they
// purchased, with power-law product popularity.
type PurchaseConfig struct {
	NumCustomers int
	NumProducts  int
	// PurchasesPerCustomerMean is the mean basket size; actual basket
	// sizes are 1 + Poisson-ish (geometric) around the mean.
	PurchasesPerCustomerMean float64
	// PopularityExponent shapes product popularity (>2, power law).
	PopularityExponent float64
	Seed               uint64
}

// PurchaseGraph is the generated bipartite graph. Vertices
// [0, NumCustomers) are customers; [NumCustomers, NumCustomers+NumProducts)
// are products.
type PurchaseGraph struct {
	Graph        *graph.Graph
	NumCustomers int
	NumProducts  int
}

// CustomerVertex maps a customer index to its vertex ID.
func (p *PurchaseGraph) CustomerVertex(i int) graph.VertexID { return graph.VertexID(i) }

// ProductVertex maps a product index to its vertex ID.
func (p *PurchaseGraph) ProductVertex(i int) graph.VertexID {
	return graph.VertexID(p.NumCustomers + i)
}

// IsProduct reports whether v is a product vertex.
func (p *PurchaseGraph) IsProduct(v graph.VertexID) bool {
	return int(v) >= p.NumCustomers && int(v) < p.NumCustomers+p.NumProducts
}

// Purchases generates the bipartite purchase graph.
func Purchases(cfg PurchaseConfig) (*PurchaseGraph, error) {
	switch {
	case cfg.NumCustomers <= 0:
		return nil, fmt.Errorf("graphgen: NumCustomers = %d, want > 0", cfg.NumCustomers)
	case cfg.NumProducts <= 0:
		return nil, fmt.Errorf("graphgen: NumProducts = %d, want > 0", cfg.NumProducts)
	case cfg.PurchasesPerCustomerMean <= 0:
		return nil, fmt.Errorf("graphgen: PurchasesPerCustomerMean = %g, want > 0", cfg.PurchasesPerCustomerMean)
	case cfg.PopularityExponent <= 2:
		return nil, fmt.Errorf("graphgen: PopularityExponent = %g, want > 2", cfg.PopularityExponent)
	}
	rng := xrand.New(cfg.Seed)
	n := cfg.NumCustomers + cfg.NumProducts
	b := graph.NewBuilder(graph.Undirected, n)

	popularity := make([]float64, cfg.NumProducts)
	power := -1.0 / (cfg.PopularityExponent - 1)
	for i := range popularity {
		popularity[i] = math.Pow(float64(i+1), power)
	}
	sampler := xrand.NewAlias(popularity)

	for c := 0; c < cfg.NumCustomers; c++ {
		basket := 1 + geometricAround(rng, cfg.PurchasesPerCustomerMean-1)
		bought := make(map[int]struct{}, basket)
		for len(bought) < basket && len(bought) < cfg.NumProducts {
			p := sampler.Sample(rng)
			if _, dup := bought[p]; dup {
				continue
			}
			bought[p] = struct{}{}
			b.AddEdgeFull(graph.VertexID(c), graph.VertexID(cfg.NumCustomers+p), 1,
				graph.Properties{"ts": graph.Int(rng.Int63() % (1 << 40))})
		}
	}
	for c := 0; c < cfg.NumCustomers; c++ {
		b.SetVertexProps(graph.VertexID(c), graph.Properties{
			"kind": graph.String("customer"),
			"id":   graph.Int(int64(c)),
		})
	}
	for p := 0; p < cfg.NumProducts; p++ {
		b.SetVertexProps(graph.VertexID(cfg.NumCustomers+p), graph.Properties{
			"kind": graph.String("product"),
			"id":   graph.Int(int64(p)),
			"desc": graph.Blob(64 + rng.Intn(192)),
		})
	}
	return &PurchaseGraph{Graph: b.Build(), NumCustomers: cfg.NumCustomers, NumProducts: cfg.NumProducts}, nil
}

// geometricAround draws a geometric variate with the given mean
// (mean 0 returns 0).
func geometricAround(rng *xrand.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	count := 0
	for rng.Float64() > p {
		count++
		if count > 10_000 {
			break
		}
	}
	return count
}
