// Package graphgen synthesizes the evaluation datasets of the paper:
// a Twitter-like power-law interaction graph, a degree-balanced random
// graph of the same size, a clustered image-similarity corpus, and a
// customer-product purchase graph. All generators are deterministic
// given a seed (see internal/xrand).
//
// The paper's actual datasets (a GNIP Twitter crawl and the ISVision
// face reservoir) are proprietary; DESIGN.md documents why these
// synthetic equivalents exercise the same code paths.
package graphgen

import (
	"fmt"
	"math"

	"subtrav/internal/graph"
	"subtrav/internal/xrand"
)

// PowerLawConfig configures the Chung-Lu power-law generator used as
// the Twitter-interaction-graph stand-in.
type PowerLawConfig struct {
	// NumVertices is |V|. The paper's graph has 11,316,811 vertices;
	// experiments here default to a scaled-down instance.
	NumVertices int
	// NumEdges is the target |E| (realized count may be slightly lower
	// after removing self-loops and duplicates).
	NumEdges int
	// Exponent is the degree-distribution exponent γ (>2). Twitter-like
	// graphs are typically γ ≈ 2.1–2.4.
	Exponent float64
	// Kind selects directed or undirected output. The paper treats the
	// interaction graph as follower/friendship edges; we default to
	// undirected, matching its bounded-SSSP use case.
	Kind graph.Kind
	// Seed drives all randomness.
	Seed uint64
	// MaxDegree caps the expected degree of the largest hub. 0 applies
	// the structural cutoff √(2·NumEdges) — standard practice for
	// scale-free generators: without it, a small-n Chung-Lu instance
	// grows a mega-hub adjacent to a large fraction of the graph,
	// destroying the neighborhood locality that real social graphs
	// (and the paper's workload) exhibit. Negative disables capping.
	MaxDegree int
	// VertexMeta, when true, attaches Twitter-like small vertex
	// properties (id, name, gender, affiliation) and retweet-timestamp
	// edge properties so records have realistic metadata sizes.
	VertexMeta bool
}

// Validate checks the configuration.
func (c PowerLawConfig) Validate() error {
	if c.NumVertices <= 0 {
		return fmt.Errorf("graphgen: NumVertices = %d, want > 0", c.NumVertices)
	}
	if c.NumEdges < 0 {
		return fmt.Errorf("graphgen: NumEdges = %d, want >= 0", c.NumEdges)
	}
	if c.Exponent <= 2 {
		return fmt.Errorf("graphgen: Exponent = %g, want > 2", c.Exponent)
	}
	return nil
}

// PowerLaw generates a Chung-Lu random graph: vertex v receives an
// expected degree w_v ∝ (v+1)^(-1/(γ-1)) and edges are sampled with
// probability proportional to w_u·w_v, giving a power-law degree
// distribution with exponent γ. Self-loops and duplicate edges are
// rejected.
func PowerLaw(cfg PowerLawConfig) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	n := cfg.NumVertices

	weights := make([]float64, n)
	power := -1.0 / (cfg.Exponent - 1)
	var weightSum float64
	for v := 0; v < n; v++ {
		weights[v] = math.Pow(float64(v+1), power)
		weightSum += weights[v]
	}
	// Structural cutoff: clamp weights so no vertex's expected degree
	// exceeds the cap (expected degree of v is 2m·w_v/Σw).
	if cfg.MaxDegree >= 0 && cfg.NumEdges > 0 {
		cap := float64(cfg.MaxDegree)
		if cfg.MaxDegree == 0 {
			cap = math.Sqrt(2 * float64(cfg.NumEdges))
		}
		// Clamping reduces Σw, which raises other degrees slightly;
		// two passes converge well enough for generation purposes.
		for pass := 0; pass < 2; pass++ {
			maxW := cap * weightSum / (2 * float64(cfg.NumEdges))
			weightSum = 0
			for v := 0; v < n; v++ {
				if weights[v] > maxW {
					weights[v] = maxW
				}
				weightSum += weights[v]
			}
		}
	}
	sampler := xrand.NewAlias(weights)

	b := graph.NewBuilder(cfg.Kind, n)
	seen := make(map[uint64]struct{}, cfg.NumEdges)
	attempts := 0
	maxAttempts := 20*cfg.NumEdges + 100
	for b.NumAddedEdges() < cfg.NumEdges && attempts < maxAttempts {
		attempts++
		u := graph.VertexID(sampler.Sample(rng))
		v := graph.VertexID(sampler.Sample(rng))
		if u == v {
			continue
		}
		if cfg.Kind == graph.Undirected && u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if cfg.VertexMeta {
			b.AddEdgeFull(u, v, 1, retweetProps(rng))
		} else {
			b.AddEdge(u, v)
		}
	}
	if cfg.VertexMeta {
		attachUserProps(b, rng)
	}
	return b.Build(), nil
}

// BAConfig configures the Barabási-Albert preferential-attachment
// generator, an alternative power-law topology used by ablations.
type BAConfig struct {
	NumVertices int
	// EdgesPerVertex is the number of edges each arriving vertex
	// attaches to existing vertices (m in the BA model).
	EdgesPerVertex int
	Seed           uint64
}

// BarabasiAlbert generates an undirected preferential-attachment graph.
func BarabasiAlbert(cfg BAConfig) (*graph.Graph, error) {
	if cfg.NumVertices <= 0 {
		return nil, fmt.Errorf("graphgen: NumVertices = %d, want > 0", cfg.NumVertices)
	}
	if cfg.EdgesPerVertex <= 0 {
		return nil, fmt.Errorf("graphgen: EdgesPerVertex = %d, want > 0", cfg.EdgesPerVertex)
	}
	rng := xrand.New(cfg.Seed)
	n, m := cfg.NumVertices, cfg.EdgesPerVertex
	b := graph.NewBuilder(graph.Undirected, n)

	// "Repeated nodes" trick: the endpoints list holds every edge
	// endpoint, so sampling uniformly from it is sampling proportional
	// to degree.
	endpoints := make([]graph.VertexID, 0, 2*n*m)
	seed := m + 1
	if seed > n {
		seed = n
	}
	for v := 1; v < seed; v++ {
		b.AddEdge(graph.VertexID(v-1), graph.VertexID(v))
		endpoints = append(endpoints, graph.VertexID(v-1), graph.VertexID(v))
	}
	for v := seed; v < n; v++ {
		chosen := make(map[graph.VertexID]struct{}, m)
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if int(t) == v {
				continue
			}
			chosen[t] = struct{}{}
		}
		for t := range chosen {
			b.AddEdge(graph.VertexID(v), t)
			endpoints = append(endpoints, graph.VertexID(v), t)
		}
	}
	return b.Build(), nil
}

// attachUserProps gives every vertex small Twitter-like metadata: the
// paper notes vertex/edge properties on the interaction graph are
// "small-sized meta data"; sizes land around 100–200 bytes.
func attachUserProps(b *graph.Builder, rng *xrand.RNG) {
	n := b.NumVertices()
	for v := 0; v < n; v++ {
		nameLen := 8 + rng.Intn(24)
		affLen := 8 + rng.Intn(56)
		b.SetVertexProps(graph.VertexID(v), graph.Properties{
			"uid":         graph.Int(int64(v)),
			"name":        graph.Blob(nameLen),
			"gender":      graph.Bool(rng.Intn(2) == 0),
			"affiliation": graph.Blob(affLen),
		})
	}
}

// retweetProps builds the edge property map of an interaction edge:
// the retweet timestamp from the paper's description.
func retweetProps(rng *xrand.RNG) graph.Properties {
	return graph.Properties{"retweet_ts": graph.Int(rng.Int63() % (1 << 40))}
}

// EstimateExponent fits the degree-distribution exponent γ by the
// standard discrete maximum-likelihood estimator
//
//	γ̂ = 1 + n · ( Σ_{d ≥ dmin} ln(d / (dmin - ½)) )⁻¹
//
// over vertices of degree ≥ dmin (Clauset-Shalizi-Newman). Generators
// and tests use it to confirm a synthesized graph actually carries the
// requested power-law tail. Returns an error when fewer than 10
// vertices qualify.
func EstimateExponent(g *graph.Graph, dmin int) (float64, error) {
	if dmin < 1 {
		return 0, fmt.Errorf("graphgen: dmin = %d, want >= 1", dmin)
	}
	var sum float64
	count := 0
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(graph.VertexID(v))
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			count++
		}
	}
	if count < 10 {
		return 0, fmt.Errorf("graphgen: only %d vertices with degree >= %d", count, dmin)
	}
	if sum == 0 {
		return 0, fmt.Errorf("graphgen: degenerate degree distribution")
	}
	return 1 + float64(count)/sum, nil
}
