package graphgen

import (
	"fmt"

	"subtrav/internal/graph"
	"subtrav/internal/xrand"
)

// RandomConfig configures the Erdős–Rényi G(n, m) generator used as
// the paper's "synthesized random graph with the same vertex and edge
// numbers as the twitter graph" (Section VI, dataset 3).
type RandomConfig struct {
	NumVertices int
	NumEdges    int
	Kind        graph.Kind
	Seed        uint64
	// VertexMeta attaches the same Twitter-like metadata as the
	// power-law generator: the paper states "the property on the
	// random graph conforms with that on the twitter interaction
	// graph".
	VertexMeta bool
}

// Validate checks the configuration.
func (c RandomConfig) Validate() error {
	if c.NumVertices <= 0 {
		return fmt.Errorf("graphgen: NumVertices = %d, want > 0", c.NumVertices)
	}
	if c.NumEdges < 0 {
		return fmt.Errorf("graphgen: NumEdges = %d, want >= 0", c.NumEdges)
	}
	maxEdges := int64(c.NumVertices) * int64(c.NumVertices-1)
	if c.Kind == graph.Undirected {
		maxEdges /= 2
	}
	if int64(c.NumEdges) > maxEdges {
		return fmt.Errorf("graphgen: NumEdges = %d exceeds simple-graph maximum %d", c.NumEdges, maxEdges)
	}
	return nil
}

// Random generates a uniform simple random graph with exactly
// NumEdges edges (no self-loops, no duplicates). Its degree
// distribution is binomial, i.e. approximately even — the control
// topology for the paper's Figure 11.
func Random(cfg RandomConfig) (*graph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	n := cfg.NumVertices
	b := graph.NewBuilder(cfg.Kind, n)
	seen := make(map[uint64]struct{}, cfg.NumEdges)
	for b.NumAddedEdges() < cfg.NumEdges {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		if cfg.Kind == graph.Undirected && u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		if cfg.VertexMeta {
			b.AddEdgeFull(u, v, 1, retweetProps(rng))
		} else {
			b.AddEdge(u, v)
		}
	}
	if cfg.VertexMeta {
		attachUserProps(b, rng)
	}
	return b.Build(), nil
}
