package graphgen

import (
	"fmt"
	"math"
	"sort"

	"subtrav/internal/graph"
	"subtrav/internal/xrand"
)

// ImageCorpusConfig configures the synthetic stand-in for the ISVision
// face-image reservoir (Section VI, dataset 2): 5,978 photos of 336
// persons connected by SIFT similarity, clustered into 45 partitions,
// with 1,024 held-out query images. Defaults (DefaultImageCorpus)
// reproduce the original scale exactly.
type ImageCorpusConfig struct {
	// NumPersons is the number of identity clusters.
	NumPersons int
	// ImagesPerPersonMin/Max bound the cluster sizes; actual sizes are
	// uniform in [Min, Max] and the total vertex count follows.
	ImagesPerPersonMin int
	ImagesPerPersonMax int
	// DescriptorDim is the dimensionality of the synthetic SIFT-like
	// descriptor vectors.
	DescriptorDim int
	// IntraNoise is the standard deviation of within-person descriptor
	// noise relative to unit-norm cluster centers. Smaller values give
	// tighter clusters.
	IntraNoise float64
	// KNN is the number of nearest neighbors each image links to.
	KNN int
	// MinSimilarity drops candidate edges whose cosine similarity
	// falls below it — the usual thresholding when building a
	// SIFT-similarity graph. Cross-person pairs are near orthogonal,
	// so a moderate threshold keeps the graph cluster-structured.
	MinSimilarity float64
	// CrossCandidates is the number of random cross-person candidates
	// considered per image when building the kNN graph (the full
	// all-pairs scan is avoided; within-person pairs are always
	// considered).
	CrossCandidates int
	// NumPartitions is the number of graph partitions (persons are
	// grouped; the paper's corpus has 45 partitions).
	NumPartitions int
	// NumQueries is the number of held-out query images to synthesize.
	NumQueries int
	// PhotoBytesMin/Max bound the per-vertex photo payload size. The
	// paper stresses that image vertices carry "extremely large vertex
	// properties" whose disk loads dominate.
	PhotoBytesMin int
	PhotoBytesMax int
	Seed          uint64
}

// DefaultImageCorpus returns the paper-scale configuration:
// ≈5,978 images of 336 persons, ≈89k similarity edges, 45 partitions
// and 1,024 query images.
func DefaultImageCorpus(seed uint64) ImageCorpusConfig {
	return ImageCorpusConfig{
		NumPersons:         336,
		ImagesPerPersonMin: 12,
		ImagesPerPersonMax: 23, // mean 17.5 → ≈5,880 images
		DescriptorDim:      32,
		IntraNoise:         0.12,
		KNN:                15, // ≈ 89k directed similarity links
		MinSimilarity:      0.45,
		CrossCandidates:    40,
		NumPartitions:      45,
		NumQueries:         1024,
		PhotoBytesMin:      200_000,
		PhotoBytesMax:      800_000,
		Seed:               seed,
	}
}

// Validate checks the configuration.
func (c ImageCorpusConfig) Validate() error {
	switch {
	case c.NumPersons <= 0:
		return fmt.Errorf("graphgen: NumPersons = %d, want > 0", c.NumPersons)
	case c.ImagesPerPersonMin <= 0 || c.ImagesPerPersonMax < c.ImagesPerPersonMin:
		return fmt.Errorf("graphgen: images per person range [%d,%d] invalid", c.ImagesPerPersonMin, c.ImagesPerPersonMax)
	case c.DescriptorDim <= 0:
		return fmt.Errorf("graphgen: DescriptorDim = %d, want > 0", c.DescriptorDim)
	case c.KNN <= 0:
		return fmt.Errorf("graphgen: KNN = %d, want > 0", c.KNN)
	case c.NumPartitions <= 0 || c.NumPartitions > c.NumPersons:
		return fmt.Errorf("graphgen: NumPartitions = %d, want in [1,%d]", c.NumPartitions, c.NumPersons)
	case c.NumQueries < 0:
		return fmt.Errorf("graphgen: NumQueries = %d, want >= 0", c.NumQueries)
	case c.PhotoBytesMin <= 0 || c.PhotoBytesMax < c.PhotoBytesMin:
		return fmt.Errorf("graphgen: photo bytes range [%d,%d] invalid", c.PhotoBytesMin, c.PhotoBytesMax)
	}
	return nil
}

// ImageCorpus is the generated dataset: the similarity graph plus the
// held-out queries, each already mapped to its entry vertex (the
// paper's "heuristic method to map v to a vertex in the graph").
type ImageCorpus struct {
	Graph *graph.Graph
	// Person[v] is the identity cluster of image vertex v.
	Person []int32
	// Queries are the held-out query images.
	Queries []ImageQuery
}

// ImageQuery is one held-out test image.
type ImageQuery struct {
	// Person is the true identity of the query image.
	Person int32
	// Entry is the graph vertex the query maps to (nearest neighbor of
	// the query descriptor among the corpus images — the v' where the
	// local random walk with restart begins).
	Entry graph.VertexID
}

// Images generates the corpus. Edges are weighted with the cosine
// similarity of the synthetic descriptors; vertex payloads are large
// photo blobs.
func Images(cfg ImageCorpusConfig) (*ImageCorpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)

	// Cluster centers: random unit vectors.
	centers := make([][]float64, cfg.NumPersons)
	for p := range centers {
		centers[p] = randomUnitVec(rng, cfg.DescriptorDim)
	}

	// Corpus images: center + noise, re-normalized.
	var person []int32
	var descs [][]float64
	for p := 0; p < cfg.NumPersons; p++ {
		count := cfg.ImagesPerPersonMin
		if cfg.ImagesPerPersonMax > cfg.ImagesPerPersonMin {
			count += rng.Intn(cfg.ImagesPerPersonMax - cfg.ImagesPerPersonMin + 1)
		}
		for i := 0; i < count; i++ {
			descs = append(descs, noisyVec(rng, centers[p], cfg.IntraNoise))
			person = append(person, int32(p))
		}
	}
	n := len(descs)

	// kNN candidate sets: all within-person pairs plus random
	// cross-person candidates, keeping the top-K by cosine similarity.
	personMembers := make([][]graph.VertexID, cfg.NumPersons)
	for v, p := range person {
		personMembers[p] = append(personMembers[p], graph.VertexID(v))
	}
	type scored struct {
		v   graph.VertexID
		sim float64
	}
	b := graph.NewBuilder(graph.Undirected, n)
	seen := make(map[uint64]struct{})
	for v := 0; v < n; v++ {
		cands := make([]scored, 0, cfg.KNN+cfg.CrossCandidates+32)
		consider := func(u graph.VertexID) {
			sim := dot(descs[v], descs[int(u)])
			if sim >= cfg.MinSimilarity {
				cands = append(cands, scored{u, sim})
			}
		}
		for _, u := range personMembers[person[v]] {
			if int(u) != v {
				consider(u)
			}
		}
		for i := 0; i < cfg.CrossCandidates; i++ {
			u := rng.Intn(n)
			if u != v && person[u] != person[v] {
				consider(graph.VertexID(u))
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].sim > cands[j].sim })
		k := cfg.KNN
		if k > len(cands) {
			k = len(cands)
		}
		for _, c := range cands[:k] {
			a, z := graph.VertexID(v), c.v
			if a > z {
				a, z = z, a
			}
			key := uint64(a)<<32 | uint64(uint32(z))
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			// Edge weight = squared similarity, sharpening the
			// intra/inter contrast so similarity-weighted random
			// walks stay inside the person cluster, like SIFT-based
			// RWR on real face corpora.
			w := float32(c.sim * c.sim)
			if w < 0.01 {
				w = 0.01
			}
			b.AddWeightedEdge(a, z, w)
		}
	}

	// Photo payloads: the dominant cost in the image-search workload.
	for v := 0; v < n; v++ {
		size := cfg.PhotoBytesMin
		if cfg.PhotoBytesMax > cfg.PhotoBytesMin {
			size += rng.Intn(cfg.PhotoBytesMax - cfg.PhotoBytesMin + 1)
		}
		b.SetVertexProps(graph.VertexID(v), graph.Properties{
			"photo":  graph.Blob(size),
			"person": graph.Int(int64(person[v])),
		})
	}

	// Partitions: contiguous groups of persons.
	part := make([]int32, n)
	perPartition := (cfg.NumPersons + cfg.NumPartitions - 1) / cfg.NumPartitions
	for v := 0; v < n; v++ {
		part[v] = person[v] / int32(perPartition)
	}
	b.SetPartition(part)

	corpus := &ImageCorpus{Graph: b.Build(), Person: person}

	// Held-out queries: a fresh image of a random person, mapped to
	// its best-matching corpus vertex within that person's cluster
	// plus a random candidate pool (mimicking the paper's heuristic
	// cluster mapping).
	for q := 0; q < cfg.NumQueries; q++ {
		p := int32(rng.Intn(cfg.NumPersons))
		desc := noisyVec(rng, centers[p], cfg.IntraNoise)
		best := graph.NoVertex
		bestSim := math.Inf(-1)
		consider := func(u graph.VertexID) {
			if s := dot(desc, descs[u]); s > bestSim {
				bestSim = s
				best = u
			}
		}
		for _, u := range personMembers[p] {
			consider(u)
		}
		for i := 0; i < 8; i++ {
			consider(graph.VertexID(rng.Intn(n)))
		}
		corpus.Queries = append(corpus.Queries, ImageQuery{Person: p, Entry: best})
	}
	return corpus, nil
}

func randomUnitVec(rng *xrand.RNG, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	return v
}

func noisyVec(rng *xrand.RNG, center []float64, noise float64) []float64 {
	v := make([]float64, len(center))
	for i := range v {
		v[i] = center[i] + noise*rng.NormFloat64()
	}
	normalize(v)
	return v
}

func normalize(v []float64) {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= norm
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
