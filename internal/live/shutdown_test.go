package live

import (
	"errors"
	"sync"
	"testing"
	"time"

	"subtrav/internal/graph"
	"subtrav/internal/sched"
	"subtrav/internal/traverse"
)

func TestCloseWithInFlightQueries(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := slowLiveConfig(2)
	r, err := New(g, cfg, sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 20}
	var chans []<-chan Response
	for i := 0; i < 6; i++ {
		ch, err := r.Submit(q)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	// Close while queries are queued and executing: it must drain them,
	// not drop them.
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Errorf("query %d failed during drain: %v", i, resp.Err)
			}
		default:
			t.Fatalf("query %d unresolved after Close", i)
		}
	}
	if m := r.Metrics(); m.Completed != 6 || !m.Conserved() {
		t.Errorf("metrics after drain: %v", m)
	}
}

func TestDoubleCloseReturnsErrClosed(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(1), sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := r.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
}

func TestConcurrentCloseExactlyOneWins(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	const closers = 8
	errs := make([]error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.Close()
		}(i)
	}
	wg.Wait()
	var nilCount int
	for _, err := range errs {
		switch {
		case err == nil:
			nilCount++
		case !errors.Is(err, ErrClosed):
			t.Errorf("Close returned %v, want nil or ErrClosed", err)
		}
	}
	if nilCount != 1 {
		t.Errorf("%d Close calls returned nil, want exactly 1", nilCount)
	}
}

func TestCloseRacingSubmit(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(4)
	r, err := New(g, cfg, sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}

	const submitters = 8
	perGoroutine := make([][]<-chan Response, submitters)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := traverse.Query{Op: traverse.OpBFS, Start: graph.VertexID((s*31 + i) % 500), Depth: 1, MaxVisits: 10}
				ch, err := r.Submit(q)
				switch {
				case err == nil:
					perGoroutine[s] = append(perGoroutine[s], ch)
				case errors.Is(err, ErrClosed):
					return
				case errors.Is(err, ErrQueueFull):
					time.Sleep(100 * time.Microsecond)
				default:
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(s)
	}
	time.Sleep(20 * time.Millisecond)
	closeErr := r.Close()
	close(stop)
	wg.Wait()
	if closeErr != nil {
		t.Fatalf("Close: %v", closeErr)
	}

	// Every accepted submission resolves exactly once, even those that
	// raced the shutdown.
	var n int
	for _, chans := range perGoroutine {
		for _, ch := range chans {
			n++
			select {
			case resp, ok := <-ch:
				if !ok {
					t.Error("response channel closed without a response")
				} else if resp.Err != nil {
					t.Errorf("accepted query failed: %v", resp.Err)
				}
			default:
				t.Error("accepted query unresolved after Close")
			}
		}
	}
	if n == 0 {
		t.Fatal("no submissions were accepted before Close")
	}
	m := r.Metrics()
	if int(m.Completed) != n {
		t.Errorf("Completed = %d, want %d accepted submissions", m.Completed, n)
	}
	if !m.Conserved() {
		t.Errorf("not conserved: %v", m)
	}

	// The runtime stays closed: late submissions fail cleanly.
	if _, err := r.Submit(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close Submit = %v, want ErrClosed", err)
	}
}
