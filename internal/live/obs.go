package live

import (
	"sort"
	"strconv"
	"time"

	"subtrav/internal/cache"
	"subtrav/internal/obs"
	"subtrav/internal/traverse"
)

// runtimeObs is the runtime's observability surface: an obs.Registry
// with the lifecycle counters, latency histograms and per-unit cache
// counters, plus the optional span ring. Counter and histogram
// updates are single atomic adds, so the surface is always on; only
// span capture is gated (nil ring = off).
type runtimeObs struct {
	reg  *obs.Registry
	ring *obs.Ring

	waitNanos      *obs.Histogram
	execNanos      *obs.Histogram
	latencyNanos   *obs.Histogram
	schedNanos     *obs.Histogram
	diskWaitNanos  *obs.Histogram
	diskSlotsInUse *obs.Gauge

	// Cross-query sharing telemetry (Config.CoalesceReads): fetches
	// avoided by joining another unit's in-flight read, and the number
	// of goroutines currently waiting on someone else's fetch. Both
	// stay flat when coalescing is off.
	coalescedReads *obs.Counter
	sfWaiters      *obs.Gauge

	// Balance-affinity tradeoff telemetry: the load-imbalance factor
	// (max/mean effective unit load, 1.0 = perfectly balanced, P =
	// everything piled on one unit) as a live gauge plus a milli-unit
	// distribution across rounds. The affinity side (hit ratio, win
	// margin) is registered by the scheduler itself via Register.
	imbalance      *obs.FloatGauge
	imbalanceMilli *obs.Histogram

	// Direction-optimizing traversal telemetry: expansion waves run in
	// each direction and push↔pull transitions, summed over executed
	// BFS/SSSP queries. All flat when queries force push (the classic
	// sparse path).
	pushWaves   *obs.Counter
	pullWaves   *obs.Counter
	dirSwitches *obs.Counter
}

// maxTenantStates bounds the per-tenant series cardinality: the
// runtime tracks at most this many distinct tenants; later arrivals
// share one overflow bucket for both metrics and admission quotas, so
// a hostile client minting tenant names cannot grow the registry (or
// the accounting map) without bound.
const maxTenantStates = 32

// overflowTenantLabel is the shared bucket for tenants beyond the cap.
const overflowTenantLabel = "overflow"

// tenantState is one tenant's admission accounting and metric series.
// inflight is guarded by Runtime.mu; the counters are atomic.
type tenantState struct {
	// label is the bounded metric label value: the tenant name,
	// "default" for untenanted queries, or "overflow" past the cap.
	label    string
	inflight int

	submitted *obs.Counter
	completed *obs.Counter
	rejected  *obs.Counter
	timedOut  *obs.Counter
}

// unitCounters are one unit's cache counters, fed by cache.Sinks so a
// /metrics scrape can watch a cache owned by the worker goroutine.
type unitCounters struct {
	hits, misses, evictions, bytes *obs.Counter
}

// newRuntimeObs wires the registry for a runtime. Per-unit series are
// registered by wireUnit as units are created.
func newRuntimeObs(r *Runtime, traceBuffer int) *runtimeObs {
	reg := obs.NewRegistry()
	o := &runtimeObs{reg: reg, ring: obs.NewRing(traceBuffer)}

	// Lifecycle counters read straight from metrics.Counters — one
	// source of truth, so the conservation invariant
	// submitted = completed + rejected + timed_out is visible on
	// /metrics at quiescence.
	reg.CounterFunc("subtrav_queries_submitted_total",
		"Valid queries presented for admission.", r.counters.Submitted.Load)
	reg.CounterFunc("subtrav_queries_completed_total",
		"Queries whose response was delivered after execution.", r.counters.Completed.Load)
	reg.CounterFunc("subtrav_queries_rejected_total",
		"Queries refused at admission (backpressure).", r.counters.Rejected.Load)
	reg.CounterFunc("subtrav_queries_timed_out_total",
		"Queries dropped on deadline expiry or cancellation.", r.counters.TimedOut.Load)
	reg.CounterFunc("subtrav_queries_failed_total",
		"Completed queries whose execution returned an error.", r.counters.Failed.Load)
	reg.CounterFunc("subtrav_sched_degraded_rounds_total",
		"Scheduling rounds that used the least-loaded fallback.", r.counters.DegradedRounds.Load)
	reg.CounterFunc("subtrav_disk_fault_retries_total",
		"Transient disk errors absorbed by the internal retry.", r.counters.DiskFaultRetries.Load)
	reg.GaugeFunc("subtrav_queries_inflight",
		"Admitted-but-unresolved queries.", func() float64 { return float64(r.InFlight()) })

	o.waitNanos = reg.Histogram("subtrav_query_wait_nanos",
		"Queueing delay from admission to execution start, nanoseconds.")
	o.execNanos = reg.Histogram("subtrav_query_exec_nanos",
		"Execution duration, nanoseconds.")
	o.latencyNanos = reg.Histogram("subtrav_query_latency_nanos",
		"End-to-end latency from admission to resolution, nanoseconds.")
	o.schedNanos = reg.Histogram("subtrav_sched_round_nanos",
		"Scheduling-round duration, nanoseconds.")
	o.diskWaitNanos = reg.Histogram("subtrav_disk_wait_nanos",
		"Wall time spent waiting for a free disk channel, nanoseconds.")
	o.diskSlotsInUse = reg.Gauge("subtrav_disk_slots_in_use",
		"Disk channels currently held by executing queries.")
	o.coalescedReads = reg.Counter("subtrav_disk_coalesced_reads_total",
		"Buffer misses that joined another unit's in-flight fetch of the same record instead of issuing their own.")
	o.sfWaiters = reg.Gauge("subtrav_cache_singleflight_waiters",
		"Goroutines currently waiting on another unit's in-flight record fetch.")
	o.imbalance = reg.FloatGauge("subtrav_sched_imbalance_factor",
		"Load-imbalance factor of the latest scheduling round: max/mean effective unit load after placement (1.0 = perfectly balanced, NumUnits = fully piled).")
	o.imbalanceMilli = reg.Histogram("subtrav_sched_imbalance_milli",
		"Distribution of per-round load-imbalance factors, in thousandths (1000 = perfectly balanced).")
	o.pushWaves = reg.Counter("subtrav_traverse_push_waves_total",
		"BFS/SSSP expansion waves run top-down (push).")
	o.pullWaves = reg.Counter("subtrav_traverse_pull_waves_total",
		"BFS/SSSP expansion waves run bottom-up (pull) against the dense bitmap frontier.")
	o.dirSwitches = reg.Counter("subtrav_traverse_direction_switches_total",
		"Push/pull direction transitions taken by the Beamer heuristic mid-traversal.")
	return o
}

// recordDirStats mirrors one execution's direction counters into the
// registry and the task's span.
func (o *runtimeObs) recordDirStats(t *task, st traverse.DirStats) {
	if st == (traverse.DirStats{}) {
		return
	}
	o.pushWaves.Add(int64(st.PushWaves))
	o.pullWaves.Add(int64(st.PullWaves))
	o.dirSwitches.Add(int64(st.Switches))
	if s := t.span; s != nil {
		s.PushWaves = st.PushWaves
		s.PullWaves = st.PullWaves
		s.DirSwitches = st.Switches
	}
}

// tenantState returns (creating on first sight) the accounting bucket
// for a tenant. Caller must hold r.mu. At most maxTenantStates
// distinct tenants get their own bucket; the rest share overflow.
func (r *Runtime) tenantState(tenant string) *tenantState {
	key := tenant
	if key == "" {
		key = "default"
	}
	if ts, ok := r.tenants[key]; ok {
		return ts
	}
	if len(r.tenants) >= maxTenantStates {
		if ts, ok := r.tenants[overflowTenantLabel]; ok {
			return ts
		}
		key = overflowTenantLabel
	}
	ts := &tenantState{label: key}
	label := obs.L("tenant", ts.label)
	ts.submitted = r.obs.reg.Counter("subtrav_tenant_submitted_total",
		"Queries presented for admission per tenant.", label)
	ts.completed = r.obs.reg.Counter("subtrav_tenant_completed_total",
		"Completed queries per tenant.", label)
	ts.rejected = r.obs.reg.Counter("subtrav_tenant_rejected_total",
		"Queries refused at admission per tenant (global or per-tenant backpressure).", label)
	ts.timedOut = r.obs.reg.Counter("subtrav_tenant_timed_out_total",
		"Queries dropped on deadline expiry per tenant.", label)
	r.obs.reg.GaugeFunc("subtrav_tenant_inflight",
		"Admitted-but-unresolved queries per tenant.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(ts.inflight)
		}, label)
	r.tenants[key] = ts
	return ts
}

// TenantStats is one tenant's lifecycle accounting snapshot.
type TenantStats struct {
	Tenant    string
	InFlight  int
	Submitted int64
	Completed int64
	Rejected  int64
	TimedOut  int64
}

// TenantStatsSnapshot returns per-tenant accounting, sorted by tenant
// label. Tenants beyond the cardinality cap appear as one "overflow"
// row.
func (r *Runtime) TenantStatsSnapshot() []TenantStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantStats, 0, len(r.tenants))
	for _, ts := range r.tenants {
		out = append(out, TenantStats{
			Tenant:    ts.label,
			InFlight:  ts.inflight,
			Submitted: ts.submitted.Value(),
			Completed: ts.completed.Value(),
			Rejected:  ts.rejected.Value(),
			TimedOut:  ts.timedOut.Value(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// wireUnit registers one unit's per-unit series and returns the cache
// sinks for its buffer.
func (o *runtimeObs) wireUnit(u *liveUnit) cache.Sinks {
	label := obs.L("unit", strconv.Itoa(int(u.id)))
	c := &unitCounters{
		hits: o.reg.Counter("subtrav_unit_cache_hits_total",
			"Buffer hits per processing unit.", label),
		misses: o.reg.Counter("subtrav_unit_cache_misses_total",
			"Buffer misses (shared-disk fetches) per processing unit.", label),
		evictions: o.reg.Counter("subtrav_unit_cache_evictions_total",
			"Buffer evictions per processing unit.", label),
		bytes: o.reg.Counter("subtrav_unit_cache_bytes_loaded_total",
			"Bytes fetched into the buffer per processing unit.", label),
	}
	u.cacheCounters = c
	o.reg.GaugeFunc("subtrav_unit_queue_len",
		"Queued tasks per processing unit.",
		func() float64 { return float64(u.QueueLen()) }, label)
	o.reg.CounterFunc("subtrav_unit_completed_total",
		"Completed queries per processing unit.",
		func() int64 {
			u.mu.Lock()
			defer u.mu.Unlock()
			return int64(len(u.completions))
		}, label)
	o.reg.GaugeFunc("subtrav_unit_cache_hit_ratio",
		"Lifetime buffer hit ratio per processing unit (0 when idle).",
		func() float64 {
			hits := c.hits.Value()
			total := hits + c.misses.Value()
			if total == 0 {
				return 0
			}
			return float64(hits) / float64(total)
		}, label)
	return cache.Sinks{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, BytesLoaded: c.bytes}
}

// schedulerRegistrar is satisfied by schedulers that expose their own
// metrics (sched.(*Auction).Register).
type schedulerRegistrar interface {
	Register(reg *obs.Registry)
}

// Registry returns the runtime's metrics registry, for mounting on a
// debug endpoint.
func (r *Runtime) Registry() *obs.Registry { return r.obs.reg }

// Trace returns up to n of the most recent completed trace spans in
// append order (oldest first). Empty when tracing is disabled
// (Config.TraceBuffer == 0).
func (r *Runtime) Trace(n int) []obs.Span { return r.obs.ring.Last(n) }

// TraceEnabled reports whether span capture is on.
func (r *Runtime) TraceEnabled() bool { return r.obs.ring != nil }

// beginSpan builds the submit-phase span for an admitted task; nil
// when tracing is off.
func (r *Runtime) beginSpan(t *task) *obs.Span {
	if r.obs.ring == nil {
		return nil
	}
	return &obs.Span{
		QueryID:     t.id,
		Op:          t.query.Op.String(),
		Tenant:      t.tenant,
		Start:       int32(t.query.Start),
		SubmitNanos: t.submit.UnixNano(),
		Unit:        -1,
	}
}

// finishSpan completes a span at resolution and appends it to the
// ring. Called only by the goroutine that won the finish CAS, which
// is also the goroutine that last owned the task, so span writes
// never race.
func (r *Runtime) finishSpan(t *task, resp Response, o outcome) {
	s := t.span
	if s == nil {
		return
	}
	s.EndNanos = time.Now().UnixNano()
	s.Unit = resp.Unit
	s.WaitNanos = resp.Wait.Nanoseconds()
	s.ExecNanos = resp.Exec.Nanoseconds()
	switch {
	case o == outcomeTimedOut:
		s.Outcome = obs.OutcomeTimeout
	case resp.Err != nil:
		s.Outcome = obs.OutcomeFailed
	default:
		s.Outcome = obs.OutcomeCompleted
	}
	if resp.Err != nil {
		s.Err = resp.Err.Error()
	}
	r.obs.ring.Append(*s)
}
