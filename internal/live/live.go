// Package live is the real-concurrency counterpart of internal/sim:
// a goroutine per processing unit, channel-based task queues, a
// semaphore-guarded "shared disk" whose access costs are paid as
// scaled-down sleeps, and the same signature/affinity/scheduler
// machinery as the simulator. It backs the TCP query service
// (internal/service) — the paper's deployment shape, where the
// scheduler and the traversal engines run as one always-on system
// processing a live query stream.
//
// Failure semantics: every admitted query resolves exactly once, as a
// completion (possibly carrying an execution error), a timeout (its
// context expired before execution finished), or — at admission — a
// rejection when the in-flight bound is hit. The partition is recorded
// in metrics.Counters, so at quiescence
// submitted = completed + rejected + timed-out holds exactly.
package live

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subtrav/internal/affinity"
	"subtrav/internal/cache"
	"subtrav/internal/faultpoint"
	"subtrav/internal/graph"
	"subtrav/internal/metrics"
	"subtrav/internal/obs"
	"subtrav/internal/sched"
	"subtrav/internal/signature"
	"subtrav/internal/sim"
	"subtrav/internal/storage"
	"subtrav/internal/traverse"
)

// Config parameterizes a live runtime.
type Config struct {
	// NumUnits is the processing-unit (worker goroutine) count.
	NumUnits int
	// MemoryPerUnit is each unit's buffer budget (<= 0 unlimited).
	MemoryPerUnit int64
	// Cost is the virtual cost model; access costs are converted to
	// real sleeps through TimeScale.
	Cost sim.CostModel
	// TimeScale compresses virtual costs into real time: a sleep of
	// cost×TimeScale nanoseconds. The default 1e-3 turns a 2 ms
	// virtual disk seek into a 2 µs pause — enough to create real
	// contention without making the service crawl.
	TimeScale float64
	// BatchWindow is how long the dispatcher waits to accumulate a
	// batch before scheduling it (default 200 µs).
	BatchWindow time.Duration
	// QueueCap bounds each unit's queue (default 64).
	QueueCap int

	// MaxPending bounds admitted-but-unresolved queries (pending pool
	// plus unit queues plus executing). Submit past the bound returns
	// a *RejectedError carrying a retry-after hint instead of
	// blocking — explicit backpressure. Default 2·NumUnits·QueueCap.
	MaxPending int
	// TenantShare, when in (0, 1), caps each tenant's share of
	// MaxPending: a single tenant may hold at most
	// ceil(TenantShare·MaxPending) in-flight queries (minimum 1), so
	// one flooding tenant cannot consume the whole admission budget
	// and starve the others. 0 (or >= 1) disables per-tenant caps;
	// the global MaxPending bound always applies. Tenants beyond the
	// per-runtime cardinality cap share one overflow quota bucket.
	TenantShare float64
	// DefaultDeadline, when positive, is applied to queries submitted
	// with a context that has no deadline of its own. Zero disables.
	DefaultDeadline time.Duration
	// SchedTimeout is the per-round scheduling budget. After
	// DegradeAfter consecutive rounds over budget (or with an injected
	// scheduler fault), the dispatcher degrades to the least-loaded
	// fallback policy for DegradeCooldown rounds — graceful
	// degradation when the auction is stuck or slow. Zero disables
	// degradation.
	SchedTimeout time.Duration
	// DegradeAfter is the consecutive-slow-round threshold (default 3).
	DegradeAfter int
	// DegradeCooldown is how many rounds the fallback stays active
	// once triggered (default 8).
	DegradeCooldown int
	// Faults optionally injects deterministic faults into disk
	// accesses, unit dequeues and scheduler rounds (see
	// internal/faultpoint). nil disables injection. Fault delays are
	// wall time, not virtual time.
	Faults *faultpoint.Set

	// TraceBuffer, when positive, captures a per-query trace span for
	// the last TraceBuffer resolved queries into a lock-cheap ring
	// (see Runtime.Trace). Zero disables span capture; the metrics
	// registry (Runtime.Registry) is always on.
	TraceBuffer int

	// CoalesceReads, when true, routes buffer misses through a
	// single-flight fetch table shared by every unit
	// (storage.FetchGroup): concurrent misses on the same record
	// across units collapse into one shared-disk fetch, whose outcome
	// — including an injected fault error — fans out to every waiter.
	// The shared fetch is bound to the runtime's lifetime, so one
	// waiter's cancellation never poisons its peers. Results are
	// unaffected; only disk traffic and timing change.
	CoalesceReads bool
	// BatchTraversals, when > 1, lets a worker drain up to that many
	// consecutive batchable queries (BFS/SSSP) off its queue and
	// advance them in lockstep, loading each wave-shared record once
	// (traverse.Batch). Per-query results stay identical to
	// independent execution. At most traverse.MaxBatch; 0 or 1
	// disables. Each unit owns a private batch executor, so memory
	// grows by O(BatchTraversals·|V|) per unit in the worst (SSSP)
	// case.
	BatchTraversals int

	// Direction is the runtime's default push/pull policy for BFS/SSSP
	// traversals: queries submitted with a zero-valued Dir inherit it.
	// A query that sets its own Dir (any non-zero field) keeps it. The
	// zero value means auto-switching with the Beamer defaults — the
	// same behavior queries get with no runtime involved.
	Direction traverse.DirectionConfig
}

func (c *Config) validate() error {
	if c.NumUnits <= 0 {
		return fmt.Errorf("live: NumUnits = %d, want > 0", c.NumUnits)
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1e-3
	}
	if c.TimeScale < 0 {
		return fmt.Errorf("live: TimeScale = %g, want >= 0", c.TimeScale)
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.QueueCap < 1 {
		return fmt.Errorf("live: QueueCap = %d, want >= 1", c.QueueCap)
	}
	if c.MaxPending == 0 {
		c.MaxPending = 2 * c.NumUnits * c.QueueCap
	}
	if c.MaxPending < 1 {
		return fmt.Errorf("live: MaxPending = %d, want >= 1", c.MaxPending)
	}
	if c.TenantShare < 0 {
		return fmt.Errorf("live: TenantShare = %g, want >= 0", c.TenantShare)
	}
	if c.DefaultDeadline < 0 {
		return fmt.Errorf("live: DefaultDeadline = %v, want >= 0", c.DefaultDeadline)
	}
	if c.SchedTimeout < 0 {
		return fmt.Errorf("live: SchedTimeout = %v, want >= 0", c.SchedTimeout)
	}
	if c.DegradeAfter == 0 {
		c.DegradeAfter = 3
	}
	if c.DegradeCooldown == 0 {
		c.DegradeCooldown = 8
	}
	if c.DegradeAfter < 1 || c.DegradeCooldown < 1 {
		return fmt.Errorf("live: DegradeAfter = %d, DegradeCooldown = %d, want >= 1", c.DegradeAfter, c.DegradeCooldown)
	}
	if c.TraceBuffer < 0 {
		return fmt.Errorf("live: TraceBuffer = %d, want >= 0", c.TraceBuffer)
	}
	if c.BatchTraversals < 0 || c.BatchTraversals > traverse.MaxBatch {
		return fmt.Errorf("live: BatchTraversals = %d, want [0, %d]", c.BatchTraversals, traverse.MaxBatch)
	}
	if err := c.Direction.Validate(); err != nil {
		return fmt.Errorf("live: %w", err)
	}
	zero := sim.CostModel{}
	if c.Cost == zero {
		c.Cost = sim.DefaultCostModel()
	}
	return c.Cost.Validate()
}

// Response is the outcome of one submitted query.
type Response struct {
	Result traverse.Result
	// Unit is the processing unit that executed the query, or -1 if
	// the query was resolved (e.g. timed out) before placement.
	Unit int32
	// Wait and Exec are the real queueing and execution durations.
	Wait time.Duration
	Exec time.Duration
	Err  error
}

// task is one in-flight query.
type task struct {
	id      int64
	query   traverse.Query
	ctx     context.Context
	cancel  context.CancelFunc
	submit  time.Time
	started time.Time
	done    chan Response
	// tenant is the submitting tenant's name ("" when untenanted);
	// tstate is its admission bucket, resolved once at admission so
	// finish never re-hits the map.
	tenant string
	tstate *tenantState
	// span is the task's trace span (nil when tracing is off). It is
	// only ever written by the goroutine that currently owns the task
	// — submitter, then dispatcher, then worker — with ownership
	// handed over through channels, so access is race-free.
	span *obs.Span
	// claimed guarantees exactly-once resolution: whichever of the
	// dispatcher, a worker, or the shutdown drain claims the task
	// delivers its response; everyone else backs off.
	claimed atomic.Bool
}

// ErrClosed is returned by Submit after Close (and by the second and
// later Close calls).
var ErrClosed = errors.New("live: runtime closed")

// ErrQueueFull is the sentinel wrapped by *RejectedError; test with
// errors.Is(err, ErrQueueFull).
var ErrQueueFull = errors.New("live: queue full")

// RejectedError is returned by Submit when admission control refuses
// a query: the number of admitted-but-unresolved queries reached
// Config.MaxPending. The caller should back off and retry no sooner
// than RetryAfter.
type RejectedError struct {
	// InFlight is the in-flight count observed at rejection (the
	// tenant's own count when TenantLimited, the global count
	// otherwise).
	InFlight int
	// RetryAfter is a load-proportional backoff hint.
	RetryAfter time.Duration
	// TenantLimited marks a rejection by the per-tenant share cap
	// (Config.TenantShare) rather than the global MaxPending bound;
	// Tenant names the capped bucket.
	TenantLimited bool
	Tenant        string
}

func (e *RejectedError) Error() string {
	if e.TenantLimited {
		return fmt.Sprintf("live: tenant %q over share (%d in flight), retry after %v", e.Tenant, e.InFlight, e.RetryAfter)
	}
	return fmt.Sprintf("live: queue full (%d in flight), retry after %v", e.InFlight, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrQueueFull) work.
func (e *RejectedError) Unwrap() error { return ErrQueueFull }

// outcome classifies how a task resolved, for metrics accounting.
type outcome int

const (
	outcomeCompleted outcome = iota
	outcomeTimedOut
)

// Runtime is a running live deployment. Create with New, submit with
// Submit or Do, stop with Close.
type Runtime struct {
	g    *graph.Graph
	cfg  Config
	sigs *signature.Table

	units    []*liveUnit
	diskSlot chan struct{}
	// wsPool lends traversal workspaces to workers, one per executing
	// query, so steady-state traversals reuse dense scratch instead of
	// allocating per-query maps.
	wsPool *traverse.Pool

	// fetch is the cross-unit single-flight table (nil unless
	// Config.CoalesceReads). Shared fetches run under fetchCtx — a
	// runtime-lifetime context cancelled by Close after the drain — so
	// no submitter's context can abort a fetch other units are joined
	// to.
	fetch       *storage.FetchGroup
	fetchCtx    context.Context
	fetchCancel context.CancelFunc

	mu       sync.Mutex
	sched    sched.Scheduler
	pending  []*task
	inflight int
	tenants  map[string]*tenantState
	closed   bool
	nextID   int64

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	counters metrics.Counters
	obs      *runtimeObs

	// Degradation state, owned by the dispatcher goroutine.
	fallback    sched.Scheduler
	slowRounds  int
	degradeLeft int
}

// liveUnit is one worker goroutine's state.
type liveUnit struct {
	id     int32
	buffer *cache.Cache // guarded by the worker goroutine only
	queue  chan *task

	queued atomic.Int32
	busy   atomic.Bool

	// batch is the unit's lockstep multi-query executor, nil unless
	// Config.BatchTraversals enables batching. Worker goroutine only.
	batch *traverse.Batch

	// cacheCounters mirror the buffer's activity atomically (via
	// cache.Sinks) so Stats and /metrics can read them while hot.
	cacheCounters *unitCounters

	mu          sync.Mutex
	completions []int64 // unix nanos, ascending
}

var _ sched.UnitState = (*liveUnit)(nil)

// QueueLen implements sched.UnitState.
func (u *liveUnit) QueueLen() int { return int(u.queued.Load()) }

// Busy implements sched.UnitState.
func (u *liveUnit) Busy() bool { return u.busy.Load() }

// CompletedSince implements affinity.UnitView.
func (u *liveUnit) CompletedSince(t int64) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	idx := sort.Search(len(u.completions), func(i int) bool { return u.completions[i] >= t })
	return len(u.completions) - idx
}

// MemoryBudget implements affinity.UnitView.
func (u *liveUnit) MemoryBudget() int64 { return u.buffer.Budget() }

// New starts a runtime: NumUnits worker goroutines plus a dispatcher.
// The scheduler's affinity scorer (if any) must be wired to this
// runtime's signature table; use NewAuction for the common case.
func New(g *graph.Graph, cfg Config, scheduler sched.Scheduler) (*Runtime, error) {
	return newWithSigs(g, cfg, scheduler, signature.NewTable(0))
}

// NewAuction starts a runtime scheduled by the paper's auction policy
// (SCH), with the affinity scorer wired to the runtime's signature
// table and the wall clock.
func NewAuction(g *graph.Graph, cfg Config, affCfg affinity.Config, epsilon float64) (*Runtime, error) {
	if g == nil {
		return nil, fmt.Errorf("live: graph is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sigs := signature.NewTable(0)
	scorer, err := affinity.NewScorer(g, sigs, signature.WallClock{}, affCfg)
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.NewAuction(scorer, sched.AuctionConfig{
		NumUnits:      cfg.NumUnits,
		Epsilon:       epsilon,
		WorkloadAware: true,
	})
	if err != nil {
		return nil, err
	}
	return newWithSigs(g, cfg, scheduler, sigs)
}

func newWithSigs(g *graph.Graph, cfg Config, scheduler sched.Scheduler, sigs *signature.Table) (*Runtime, error) {
	if g == nil {
		return nil, fmt.Errorf("live: graph is required")
	}
	if scheduler == nil {
		return nil, fmt.Errorf("live: scheduler is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		g:        g,
		cfg:      cfg,
		sigs:     sigs,
		sched:    scheduler,
		tenants:  make(map[string]*tenantState),
		fallback: sched.NewLeastLoaded(),
		diskSlot: make(chan struct{}, maxInt(cfg.Cost.Disk.Channels, 1)),
		wsPool:   traverse.NewPool(g.NumVertices()),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	// Shared fetches and batch charging outlive any one submitter, so
	// they run under a runtime-lifetime context rather than a caller's.
	r.fetchCtx, r.fetchCancel = context.WithCancel(context.Background())
	r.obs = newRuntimeObs(r, cfg.TraceBuffer)
	if reg, ok := scheduler.(schedulerRegistrar); ok {
		reg.Register(r.obs.reg)
	}
	if cfg.CoalesceReads {
		r.fetch = storage.NewFetchGroup()
		r.fetch.SetMetrics(r.obs.coalescedReads, r.obs.sfWaiters)
	}
	for i := 0; i < cfg.NumUnits; i++ {
		u := &liveUnit{
			id:     int32(i),
			buffer: cache.New(cfg.MemoryPerUnit),
			queue:  make(chan *task, cfg.QueueCap),
		}
		if cfg.BatchTraversals > 1 {
			u.batch = traverse.NewBatch(g.NumVertices())
		}
		u.buffer.SetSinks(r.obs.wireUnit(u))
		r.units = append(r.units, u)
		r.wg.Add(1)
		go r.worker(u)
	}
	r.wg.Add(1)
	go r.dispatcher()
	return r, nil
}

// Signatures returns the visit-signature table (for wiring scorers).
func (r *Runtime) Signatures() *signature.Table { return r.sigs }

// Completed returns the number of finished queries so far (including
// executions that returned an error; excluding timeouts/rejections).
func (r *Runtime) Completed() int64 { return r.counters.Completed.Load() }

// Metrics snapshots the query-lifecycle counters.
func (r *Runtime) Metrics() metrics.Snapshot { return r.counters.Snapshot() }

// InFlight returns the number of admitted-but-unresolved queries.
// Always <= Config.MaxPending.
func (r *Runtime) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inflight
}

// UnitStats is a point-in-time snapshot of one unit's activity.
type UnitStats struct {
	Unit      int32
	Queued    int
	Busy      bool
	Completed int
	// CacheHits and CacheMisses mirror the unit's buffer counters
	// (atomic shadows, safe to read while the runtime is hot).
	CacheHits   int64
	CacheMisses int64
}

// HitRate returns CacheHits/(CacheHits+CacheMisses), or 0 when idle.
func (s UnitStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Stats snapshots every unit's queue depth, busy flag, completion
// count and cache activity.
func (r *Runtime) Stats() []UnitStats {
	out := make([]UnitStats, len(r.units))
	for i, u := range r.units {
		u.mu.Lock()
		completed := len(u.completions)
		u.mu.Unlock()
		out[i] = UnitStats{
			Unit:        u.id,
			Queued:      u.QueueLen(),
			Busy:        u.Busy(),
			Completed:   completed,
			CacheHits:   u.cacheCounters.hits.Value(),
			CacheMisses: u.cacheCounters.misses.Value(),
		}
	}
	return out
}

// Submit enqueues a query and returns a channel that will receive its
// Response exactly once. Equivalent to SubmitCtx with a background
// context (Config.DefaultDeadline still applies).
func (r *Runtime) Submit(q traverse.Query) (<-chan Response, error) {
	return r.SubmitCtx(context.Background(), q)
}

// SubmitCtx enqueues a query bound to ctx. When ctx expires or is
// cancelled before execution finishes, the query resolves with a
// Response whose Err wraps the context error, its unit is freed for
// other work, and the drop is counted in Metrics().TimedOut. The
// returned channel receives exactly one Response in every case.
//
// If admission control refuses the query (see Config.MaxPending),
// SubmitCtx returns a *RejectedError (errors.Is ErrQueueFull).
func (r *Runtime) SubmitCtx(ctx context.Context, q traverse.Query) (<-chan Response, error) {
	return r.SubmitTenantCtx(ctx, "", q)
}

// SubmitTenantCtx is SubmitCtx with the query attributed to a named
// tenant: the tenant's lifecycle counters and in-flight gauge appear
// on /metrics (label cardinality bounded — see TenantStatsSnapshot),
// its trace spans carry the tenant name, and when Config.TenantShare
// is set the tenant is additionally admission-capped at its share of
// MaxPending (rejections then have TenantLimited set). The empty
// tenant maps to the "default" bucket.
func (r *Runtime) SubmitTenantCtx(ctx context.Context, tenant string, q traverse.Query) (<-chan Response, error) {
	if ctx == nil {
		// A nil ctx means the caller opted out of cancellation
		// entirely (Submit's documented contract): there is no caller
		// context to detach from, so a fresh root is the correct one.
		//lint:allow ctxplumb nil-ctx fallback for the documented Submit contract
		ctx = context.Background()
	}
	if q.Dir == (traverse.DirectionConfig{}) {
		q.Dir = r.cfg.Direction
	}
	if err := q.Validate(r.g); err != nil {
		return nil, err
	}
	var cancel context.CancelFunc
	if r.cfg.DefaultDeadline > 0 {
		if _, ok := ctx.Deadline(); !ok {
			ctx, cancel = context.WithTimeout(ctx, r.cfg.DefaultDeadline)
		}
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil, ErrClosed
	}
	r.counters.Submitted.Add(1)
	ts := r.tenantState(tenant)
	ts.submitted.Inc()
	rejected := r.inflight >= r.cfg.MaxPending
	tenantLimited := false
	if !rejected && r.cfg.TenantShare > 0 && r.cfg.TenantShare < 1 {
		limit := int(math.Ceil(r.cfg.TenantShare * float64(r.cfg.MaxPending)))
		if limit < 1 {
			limit = 1
		}
		if ts.inflight >= limit {
			rejected = true
			tenantLimited = true
		}
	}
	if rejected {
		inflight := r.inflight
		if tenantLimited {
			inflight = ts.inflight
		}
		retryAfter := r.cfg.BatchWindow * time.Duration(2+r.inflight/len(r.units))
		r.mu.Unlock()
		r.counters.Rejected.Add(1)
		ts.rejected.Inc()
		if cancel != nil {
			cancel()
		}
		now := time.Now().UnixNano()
		r.obs.ring.Append(obs.Span{
			QueryID: -1, Op: q.Op.String(), Tenant: tenant, Start: int32(q.Start),
			SubmitNanos: now, EndNanos: now, Unit: -1,
			Outcome: obs.OutcomeRejected,
		})
		return nil, &RejectedError{
			InFlight: inflight, RetryAfter: retryAfter,
			TenantLimited: tenantLimited, Tenant: ts.label,
		}
	}
	r.inflight++
	ts.inflight++
	t := &task{
		id:     r.nextID,
		query:  q,
		ctx:    ctx,
		cancel: cancel,
		submit: time.Now(),
		done:   make(chan Response, 1),
		tenant: tenant,
		tstate: ts,
	}
	t.span = r.beginSpan(t)
	r.nextID++
	r.pending = append(r.pending, t)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return t.done, nil
}

// Do submits a query and waits for its response.
func (r *Runtime) Do(q traverse.Query) (Response, error) {
	ch, err := r.Submit(q)
	if err != nil {
		return Response{}, err
	}
	return <-ch, nil
}

// DoCtx submits a query bound to ctx and waits. If ctx ends before
// the runtime resolves the query, DoCtx returns the context error
// immediately; the runtime still resolves (and counts) the abandoned
// query internally when it reaches it.
func (r *Runtime) DoCtx(ctx context.Context, q traverse.Query) (Response, error) {
	ch, err := r.SubmitCtx(ctx, q)
	if err != nil {
		return Response{}, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// finish resolves a task exactly once, delivering resp and recording
// the outcome. Returns false if someone else already claimed it.
func (r *Runtime) finish(t *task, resp Response, o outcome) bool {
	if !t.claimed.CompareAndSwap(false, true) {
		return false
	}
	if t.cancel != nil {
		t.cancel()
	}
	r.mu.Lock()
	r.inflight--
	if t.tstate != nil {
		t.tstate.inflight--
	}
	r.mu.Unlock()
	switch o {
	case outcomeTimedOut:
		r.counters.TimedOut.Add(1)
		if t.tstate != nil {
			t.tstate.timedOut.Inc()
		}
	default:
		r.counters.Completed.Add(1)
		if t.tstate != nil {
			t.tstate.completed.Inc()
		}
		if resp.Err != nil {
			r.counters.Failed.Add(1)
		}
	}
	r.obs.waitNanos.Observe(resp.Wait.Nanoseconds())
	r.obs.execNanos.Observe(resp.Exec.Nanoseconds())
	r.obs.latencyNanos.Observe(time.Since(t.submit).Nanoseconds())
	r.finishSpan(t, resp, o)
	t.done <- resp
	return true
}

// Close drains in-flight work and stops all goroutines. Pending
// queries are still executed; Submit after Close fails with
// ErrClosed. The first call returns nil; concurrent or repeated calls
// wait for the same drain and return ErrClosed.
func (r *Runtime) Close() error {
	r.mu.Lock()
	already := r.closed
	r.closed = true
	r.mu.Unlock()
	if already {
		r.wg.Wait()
		return ErrClosed
	}
	close(r.stop)
	r.wg.Wait()
	// Drained: no worker is executing, so cancelling the fetch context
	// cannot fail a query; it only releases any leaked shared fetch.
	r.fetchCancel()
	return nil
}

// dispatcher batches pending queries and runs scheduling rounds,
// mirroring the Figure 6 flow on wall time.
func (r *Runtime) dispatcher() {
	defer r.wg.Done()
	defer func() {
		// Final drain: schedule whatever is still pending, blocking on
		// saturated queues (workers are still consuming them).
		r.dispatchBatch(true)
		for _, u := range r.units {
			close(u.queue)
		}
	}()
	timer := time.NewTimer(r.cfg.BatchWindow)
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-r.wake:
			// Give the batch window a chance to accumulate peers.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(r.cfg.BatchWindow)
			select {
			case <-timer.C:
			case <-r.stop:
			}
			// Dispatch; when every queue is full, back off for a batch
			// window (or a new wake) and retry rather than blocking.
			for r.dispatchBatch(false) {
				timer.Reset(r.cfg.BatchWindow)
				select {
				case <-r.stop:
					return
				case <-r.wake:
				case <-timer.C:
				}
			}
		}
	}
}

// dispatchBatch assigns up to NumUnits pending tasks per round until
// the pending pool is empty. In non-blocking mode it returns true
// ("blocked") when unit queues are saturated, leaving the unplaced
// tasks at the head of the pending pool.
func (r *Runtime) dispatchBatch(block bool) (blocked bool) {
	for {
		r.mu.Lock()
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return false
		}
		n := len(r.units)
		if n > len(r.pending) {
			n = len(r.pending)
		}
		batch := append([]*task(nil), r.pending[:n]...)
		r.pending = r.pending[n:]
		scheduler := r.sched
		r.mu.Unlock()

		// Resolve tasks whose deadline already expired: their unit
		// slot is never consumed.
		live := batch[:0]
		for _, t := range batch {
			if err := t.ctx.Err(); err != nil {
				r.finish(t, Response{
					Unit: -1,
					Err:  fmt.Errorf("live: dropped before dispatch: %w", err),
					Wait: time.Since(t.submit),
				}, outcomeTimedOut)
				continue
			}
			live = append(live, t)
		}
		if len(live) == 0 {
			continue
		}

		placement := r.schedule(scheduler, live)
		for i, t := range live {
			u := r.units[placement[i]]
			if r.tryEnqueue(u, t) {
				continue
			}
			// Assigned unit saturated: degrade the placement to any
			// unit with room rather than blocking the dispatcher.
			if r.enqueueLeastLoaded(t) {
				continue
			}
			if block {
				u.queued.Add(1)
				u.queue <- t
				continue
			}
			// Every queue is full: push the rest back and back off.
			rest := live[i:]
			r.mu.Lock()
			pending := make([]*task, 0, len(rest)+len(r.pending))
			pending = append(pending, rest...)
			pending = append(pending, r.pending...)
			r.pending = pending
			r.mu.Unlock()
			return true
		}
	}
}

// schedule runs one scheduling round, measuring it against
// SchedTimeout and degrading to the least-loaded fallback after
// repeated overruns or injected scheduler faults. Dispatcher
// goroutine only.
func (r *Runtime) schedule(scheduler sched.Scheduler, batch []*task) []int {
	stasks := make([]*sched.Task, len(batch))
	for i, t := range batch {
		stasks[i] = &sched.Task{ID: t.id, Query: t.query, Arrival: t.submit.UnixNano()}
	}
	units := make([]sched.UnitState, len(r.units))
	for i, u := range r.units {
		units[i] = u
	}

	fault := r.cfg.Faults.Eval(faultpoint.SchedRound)
	if fault.Delay > 0 {
		time.Sleep(fault.Delay) // injected stall: the round really is slow
	}

	degraded := r.degradeLeft > 0 || fault.Err != nil
	start := time.Now()
	var placement []int
	var explain []sched.Explain
	if degraded {
		if r.degradeLeft > 0 {
			r.degradeLeft--
		}
		r.counters.DegradedRounds.Add(1)
		placement = r.fallback.Assign(stasks, units)
	} else if ex, ok := scheduler.(sched.Explainer); ok {
		placement, explain = ex.AssignExplained(stasks, units)
	} else {
		placement = scheduler.Assign(stasks, units)
	}
	elapsed := time.Since(start) + fault.Delay
	r.obs.schedNanos.Observe(elapsed.Nanoseconds())

	// Post-placement load-imbalance factor: max/mean effective unit
	// load (queue + busy + this round's placements). This is the
	// balance half of the balance-affinity tradeoff; the affinity half
	// (hit ratio, win margin) is tracked inside the scheduler.
	loads := make([]int, len(r.units))
	var maxLoad, sumLoad int
	for i, u := range r.units {
		loads[i] = u.QueueLen()
		if u.Busy() {
			loads[i]++
		}
	}
	for _, p := range placement {
		loads[p]++
	}
	for _, l := range loads {
		sumLoad += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	imbalance := 1.0
	if sumLoad > 0 {
		imbalance = float64(maxLoad) * float64(len(loads)) / float64(sumLoad)
	}
	r.obs.imbalance.Set(imbalance)
	r.obs.imbalanceMilli.Observe(int64(imbalance * 1000))

	// Fill the schedule phase of each task's span (dispatcher owns the
	// tasks until they are enqueued, so this is race-free).
	now := start.UnixNano()
	for i, t := range batch {
		s := t.span
		if s == nil {
			continue
		}
		s.ScheduleNanos = now
		s.Unit = int32(placement[i])
		s.QueueLen = r.units[placement[i]].QueueLen()
		s.Degraded = degraded
		s.Imbalance = imbalance
		if explain != nil {
			s.Affinity = explain[i].Affinity
			s.AuctionRounds = explain[i].AuctionRounds
			s.FellBack = explain[i].FellBack
			s.EmptyRow = explain[i].EmptyRow
			s.Preferred = explain[i].Preferred
		}
	}

	if r.cfg.SchedTimeout > 0 {
		if elapsed > r.cfg.SchedTimeout || fault.Err != nil {
			r.slowRounds++
			if r.slowRounds >= r.cfg.DegradeAfter && r.degradeLeft == 0 {
				r.degradeLeft = r.cfg.DegradeCooldown
				r.slowRounds = 0
			}
		} else if !degraded {
			r.slowRounds = 0
		}
	}
	return placement
}

// tryEnqueue attempts a non-blocking enqueue on u.
func (r *Runtime) tryEnqueue(u *liveUnit, t *task) bool {
	u.queued.Add(1)
	select {
	case u.queue <- t:
		return true
	default:
		u.queued.Add(-1)
		return false
	}
}

// enqueueLeastLoaded tries every unit in increasing queue-length
// order. Returns false when all queues are full.
func (r *Runtime) enqueueLeastLoaded(t *task) bool {
	order := make([]int, len(r.units))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return r.units[order[a]].queued.Load() < r.units[order[b]].queued.Load()
	})
	for _, i := range order {
		if r.tryEnqueue(r.units[i], t) {
			return true
		}
	}
	return false
}

// worker executes tasks on one unit, paying scaled access costs. With
// batching enabled it drains runs of consecutive batchable queries off
// the queue and advances them in lockstep.
func (r *Runtime) worker(u *liveUnit) {
	defer r.wg.Done()
	for t := range u.queue {
		u.queued.Add(-1)

		// Injected dequeue fault: a stalled (Delay) or transiently
		// failing (Err) unit. Evaluated once per wake; a batch drained
		// behind this task rides the same evaluation.
		fault := r.cfg.Faults.Eval(faultpoint.Dequeue)
		if fault.Delay > 0 {
			time.Sleep(fault.Delay)
		}
		if err := t.ctx.Err(); err != nil {
			r.finish(t, Response{
				Unit: u.id,
				Err:  fmt.Errorf("live: dropped at dequeue: %w", err),
				Wait: time.Since(t.submit),
			}, outcomeTimedOut)
			continue
		}
		if fault.Err != nil {
			r.finish(t, Response{
				Unit: u.id,
				Err:  fmt.Errorf("live: unit %d: %w", u.id, fault.Err),
				Wait: time.Since(t.submit),
			}, outcomeCompleted)
			continue
		}

		if u.batch != nil && traverse.Batchable(t.query.Op) {
			members, carry := r.drainBatch(u, t)
			r.runBatch(u, members)
			if carry != nil {
				r.runOne(u, carry)
			}
			continue
		}
		r.runOne(u, t)
	}
}

// runOne executes a single task and resolves it.
func (r *Runtime) runOne(u *liveUnit, t *task) {
	u.busy.Store(true)
	t.started = time.Now()
	if t.span != nil {
		t.span.StartNanos = t.started.UnixNano()
	}
	resp := r.execute(u, t)
	u.busy.Store(false)
	r.resolve(u, t, resp)
}

// resolve classifies a response, records the unit completion for
// non-timeouts, and finishes the task.
func (r *Runtime) resolve(u *liveUnit, t *task, resp Response) {
	o := outcomeCompleted
	if resp.Err != nil && (errors.Is(resp.Err, context.DeadlineExceeded) || errors.Is(resp.Err, context.Canceled)) {
		o = outcomeTimedOut
	} else {
		now := time.Now().UnixNano()
		u.mu.Lock()
		u.completions = append(u.completions, now)
		u.mu.Unlock()
	}
	r.finish(t, resp, o)
}

// drainBatch pulls up to Config.BatchTraversals-1 more batchable tasks
// off u's queue without blocking, starting from first. A non-batchable
// task ends the run and is returned as carry for ordinary execution
// (FIFO order is preserved: it queued after every member).
func (r *Runtime) drainBatch(u *liveUnit, first *task) (members []*task, carry *task) {
	members = append(members, first)
	for len(members) < r.cfg.BatchTraversals {
		select {
		case t, ok := <-u.queue:
			if !ok {
				return members, nil
			}
			u.queued.Add(-1)
			if !traverse.Batchable(t.query.Op) {
				return members, t
			}
			members = append(members, t)
		default:
			return members, nil
		}
	}
	return members, nil
}

// runBatch advances members' traversals in lockstep (traverse.Batch),
// charging the batch's shared wave trace once — each wave-shared
// record is loaded one time for the whole batch — and resolves every
// member. Per-member results are identical to independent execution.
// A member whose context expires mid-charge resolves immediately as
// timed out while the rest of the batch keeps running; disk charging
// is therefore bound to the runtime's fetch context, not to any single
// member's.
func (r *Runtime) runBatch(u *liveUnit, members []*task) {
	// Members already expired resolve without consuming execution.
	live := members[:0]
	for _, t := range members {
		if err := t.ctx.Err(); err != nil {
			r.finish(t, Response{
				Unit: u.id,
				Err:  fmt.Errorf("live: dropped at dequeue: %w", err),
				Wait: time.Since(t.submit),
			}, outcomeTimedOut)
			continue
		}
		live = append(live, t)
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		r.runOne(u, live[0])
		return
	}

	u.busy.Store(true)
	defer u.busy.Store(false)
	started := time.Now()
	queries := make([]traverse.Query, len(live))
	for i, t := range live {
		t.started = started
		if t.span != nil {
			t.span.StartNanos = started.UnixNano()
		}
		queries[i] = t.query
	}
	results, traces, shared, err := u.batch.Run(r.g, queries)
	if err != nil {
		for _, t := range live {
			r.resolve(u, t, Response{Unit: u.id, Err: err, Wait: started.Sub(t.submit)})
		}
		return
	}
	for i, t := range live {
		r.obs.recordDirStats(t, u.batch.DirStats(i))
	}

	cost := &r.cfg.Cost
	var inlineNanos int64
	var hits, misses int
	var bytesRead, diskWaitNanos int64
	var fatal error
	alive := len(live)
	resolved := make([]bool, len(live))
	// dropExpired resolves members whose deadline passed mid-charge;
	// the survivors keep the batch going.
	dropExpired := func() {
		for i, t := range live {
			if resolved[i] {
				continue
			}
			if err := t.ctx.Err(); err != nil {
				resolved[i] = true
				alive--
				r.finish(t, Response{
					Unit: u.id,
					Err:  fmt.Errorf("live: cancelled mid-traversal: %w", err),
					Wait: started.Sub(t.submit),
					Exec: time.Since(started),
				}, outcomeTimedOut)
			}
		}
	}
	for _, a := range shared.Accesses {
		dropExpired()
		if alive == 0 {
			break
		}
		key := liveKey(a)
		if u.buffer.Contains(key) {
			u.buffer.Access(key, int64(a.Bytes))
			hits++
			inlineNanos += cost.MemHitNanos + liveCPU(cost, a)
			continue
		}
		slotWait, err := r.fetchMiss(r.fetchCtx, key, int64(a.Bytes))
		diskWaitNanos += slotWait.Nanoseconds()
		if err != nil {
			fatal = err
			break
		}
		u.buffer.Access(key, int64(a.Bytes))
		misses++
		bytesRead += int64(a.Bytes)
		inlineNanos += liveCPU(cost, a) + int64(cost.CPUMissByteNanos*float64(a.Bytes))
	}
	if fatal == nil && alive > 0 {
		fatal = r.sleepScaledNoSlot(r.fetchCtx, inlineNanos, 0)
	}

	now := time.Now()
	for i, t := range live {
		if resolved[i] {
			continue
		}
		// The batch's shared charge is the execution detail of every
		// member: the disk work really done on their behalf.
		if s := t.span; s != nil {
			s.CacheHits = hits
			s.CacheMisses = misses
			s.BytesRead = bytesRead
			s.DiskWaitNanos = diskWaitNanos
		}
		if fatal != nil {
			r.resolve(u, t, Response{
				Unit: u.id,
				Err:  fmt.Errorf("live: batch charge failed: %w", fatal),
				Wait: started.Sub(t.submit),
				Exec: now.Sub(started),
			})
			continue
		}
		for _, v := range traces[i].Touched {
			r.sigs.Record(v, u.id, now.UnixNano())
		}
		r.resolve(u, t, Response{
			Result: results[i].Clone(),
			Unit:   u.id,
			Wait:   started.Sub(t.submit),
			Exec:   now.Sub(started),
		})
	}
}

// execute runs the traversal and charges its access trace: buffer hits
// accumulate a deferred sleep; misses hold a disk slot for the scaled
// transfer time. Cancellation is observed between accesses and inside
// every scaled sleep, so an expired deadline frees the unit within one
// access-service time.
func (r *Runtime) execute(u *liveUnit, t *task) Response {
	// The workspace is returned to the pool when this execution's trace
	// has been fully charged; the Result is cloned before it escapes
	// into the Response, which outlives the checkout.
	ws := r.wsPool.Get()
	defer r.wsPool.Put(ws)
	result, trace, err := traverse.ExecuteIn(ws, r.g, t.query)
	if err != nil {
		return Response{Unit: u.id, Err: err, Wait: t.started.Sub(t.submit)}
	}
	r.obs.recordDirStats(t, ws.DirStats())
	cancelled := func(err error) Response {
		return Response{
			Unit: u.id,
			Err:  fmt.Errorf("live: cancelled mid-traversal: %w", err),
			Wait: t.started.Sub(t.submit),
			Exec: time.Since(t.started),
		}
	}
	cost := &r.cfg.Cost
	var inlineNanos int64
	var hits, misses int
	var bytesRead, diskWaitNanos int64
	// flushSpan records execution detail gathered so far; called on
	// every exit path so cancelled and failed spans keep their counts.
	flushSpan := func() {
		if s := t.span; s != nil {
			s.CacheHits = hits
			s.CacheMisses = misses
			s.BytesRead = bytesRead
			s.DiskWaitNanos = diskWaitNanos
		}
	}
	defer flushSpan()
	for _, a := range trace.Accesses {
		if err := t.ctx.Err(); err != nil {
			return cancelled(err)
		}
		key := liveKey(a)
		if u.buffer.Contains(key) {
			u.buffer.Access(key, int64(a.Bytes))
			hits++
			inlineNanos += cost.MemHitNanos + liveCPU(cost, a)
			continue
		}
		// Miss: one shared-disk fetch (see fetchMiss). With coalescing
		// on, this may join another unit's in-flight fetch of the same
		// record instead of paying its own.
		slotWait, err := r.fetchMiss(t.ctx, key, int64(a.Bytes))
		diskWaitNanos += slotWait.Nanoseconds()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return cancelled(err)
			}
			return Response{
				Unit: u.id,
				Err:  err,
				Wait: t.started.Sub(t.submit),
				Exec: time.Since(t.started),
			}
		}
		u.buffer.Access(key, int64(a.Bytes))
		misses++
		bytesRead += int64(a.Bytes)
		inlineNanos += liveCPU(cost, a) + int64(cost.CPUMissByteNanos*float64(a.Bytes))
	}
	if err := r.sleepScaledNoSlot(t.ctx, inlineNanos, 0); err != nil {
		return cancelled(err)
	}

	now := time.Now()
	for _, v := range trace.Touched {
		r.sigs.Record(v, u.id, now.UnixNano())
	}
	return Response{
		Result: result.Clone(),
		Unit:   u.id,
		Wait:   t.started.Sub(t.submit),
		Exec:   now.Sub(t.started),
	}
}

// fetchMiss pays for one missed record. Without coalescing it is a
// direct disk fetch under the caller's context. With coalescing
// (Config.CoalesceReads) the miss goes through the single-flight
// table: concurrent misses on the same key across units collapse into
// one fetch, run under the runtime-lifetime fetch context so that no
// waiter's cancellation can abort it for the others; a cancelled
// waiter gets its own context error back while the fetch completes,
// and a fetch failure fans out to every waiter exactly once each.
// slotWait is the wall time blocked before the record was available
// (slot queueing, or the wait on another unit's fetch).
func (r *Runtime) fetchMiss(ctx context.Context, key cache.Key, bytes int64) (slotWait time.Duration, err error) {
	if r.fetch == nil {
		return r.diskFetch(ctx, bytes)
	}
	t0 := time.Now()
	_, err = r.fetch.Do(ctx, key, func() error {
		_, ferr := r.diskFetch(r.fetchCtx, bytes)
		return ferr
	})
	return time.Since(t0), err
}

// diskFetch is one shared-disk read: fault evaluation with one
// internal retry, then a disk slot held for the scaled transfer time
// plus any injected latency spike. A persistent injected error is
// returned wrapped (not a context error); a context error means ctx
// ended first.
func (r *Runtime) diskFetch(ctx context.Context, bytes int64) (time.Duration, error) {
	fault := r.cfg.Faults.Eval(faultpoint.DiskRead)
	if fault.Err != nil {
		r.counters.DiskFaultRetries.Add(1)
		fault = r.cfg.Faults.Eval(faultpoint.DiskRead)
		if fault.Err != nil {
			return 0, fmt.Errorf("live: disk read failed after retry: %w", fault.Err)
		}
	}
	service := r.cfg.Cost.Disk.SeekNanos + storage.TransferNanos(bytes, r.cfg.Cost.Disk.BytesPerSecond)
	return r.sleepScaled(ctx, service, fault.Delay)
}

// sleepScaled holds a disk slot while sleeping the scaled duration
// (plus an injected extra), creating genuine cross-unit contention on
// the shared disk. It returns how long the caller waited for a free
// slot (the live analogue of disk queueing delay) and the context
// error if cancelled first.
func (r *Runtime) sleepScaled(ctx context.Context, virtualNanos int64, extra time.Duration) (time.Duration, error) {
	t0 := time.Now()
	select {
	case r.diskSlot <- struct{}{}:
	case <-ctx.Done():
		wait := time.Since(t0)
		r.obs.diskWaitNanos.Observe(wait.Nanoseconds())
		return wait, ctx.Err()
	}
	wait := time.Since(t0)
	r.obs.diskWaitNanos.Observe(wait.Nanoseconds())
	r.obs.diskSlotsInUse.Add(1)
	defer func() {
		r.obs.diskSlotsInUse.Add(-1)
		<-r.diskSlot
	}()
	return wait, r.sleepScaledNoSlot(ctx, virtualNanos, extra)
}

func (r *Runtime) sleepScaledNoSlot(ctx context.Context, virtualNanos int64, extra time.Duration) error {
	d := time.Duration(float64(virtualNanos)*r.cfg.TimeScale) + extra
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func liveCPU(cost *sim.CostModel, a traverse.Access) int64 {
	return cost.CPUVertexNanos + int64(a.ScannedEdges)*cost.CPUEdgeNanos
}

func liveKey(a traverse.Access) cache.Key {
	return cache.VertexKey(int32(a.Vertex))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
