// Package live is the real-concurrency counterpart of internal/sim:
// a goroutine per processing unit, channel-based task queues, a
// semaphore-guarded "shared disk" whose access costs are paid as
// scaled-down sleeps, and the same signature/affinity/scheduler
// machinery as the simulator. It backs the TCP query service
// (internal/service) — the paper's deployment shape, where the
// scheduler and the traversal engines run as one always-on system
// processing a live query stream.
package live

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subtrav/internal/affinity"
	"subtrav/internal/cache"
	"subtrav/internal/graph"
	"subtrav/internal/sched"
	"subtrav/internal/signature"
	"subtrav/internal/sim"
	"subtrav/internal/traverse"
)

// Config parameterizes a live runtime.
type Config struct {
	// NumUnits is the processing-unit (worker goroutine) count.
	NumUnits int
	// MemoryPerUnit is each unit's buffer budget (<= 0 unlimited).
	MemoryPerUnit int64
	// Cost is the virtual cost model; access costs are converted to
	// real sleeps through TimeScale.
	Cost sim.CostModel
	// TimeScale compresses virtual costs into real time: a sleep of
	// cost×TimeScale nanoseconds. The default 1e-3 turns a 2 ms
	// virtual disk seek into a 2 µs pause — enough to create real
	// contention without making the service crawl.
	TimeScale float64
	// BatchWindow is how long the dispatcher waits to accumulate a
	// batch before scheduling it (default 200 µs).
	BatchWindow time.Duration
	// QueueCap bounds each unit's queue (default 64).
	QueueCap int
}

func (c *Config) validate() error {
	if c.NumUnits <= 0 {
		return fmt.Errorf("live: NumUnits = %d, want > 0", c.NumUnits)
	}
	if c.TimeScale == 0 {
		c.TimeScale = 1e-3
	}
	if c.TimeScale < 0 {
		return fmt.Errorf("live: TimeScale = %g, want >= 0", c.TimeScale)
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.QueueCap < 1 {
		return fmt.Errorf("live: QueueCap = %d, want >= 1", c.QueueCap)
	}
	zero := sim.CostModel{}
	if c.Cost == zero {
		c.Cost = sim.DefaultCostModel()
	}
	return c.Cost.Validate()
}

// Response is the outcome of one submitted query.
type Response struct {
	Result traverse.Result
	// Unit is the processing unit that executed the query.
	Unit int32
	// Wait and Exec are the real queueing and execution durations.
	Wait time.Duration
	Exec time.Duration
	Err  error
}

// task is one in-flight query.
type task struct {
	id      int64
	query   traverse.Query
	submit  time.Time
	started time.Time
	done    chan Response
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("live: runtime closed")

// Runtime is a running live deployment. Create with New, submit with
// Submit or Do, stop with Close.
type Runtime struct {
	g    *graph.Graph
	cfg  Config
	sigs *signature.Table

	units    []*liveUnit
	diskSlot chan struct{}

	mu      sync.Mutex
	sched   sched.Scheduler
	pending []*task
	closed  bool
	nextID  int64

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup

	completed atomic.Int64
}

// liveUnit is one worker goroutine's state.
type liveUnit struct {
	id     int32
	buffer *cache.Cache // guarded by the worker goroutine only
	queue  chan *task

	queued atomic.Int32
	busy   atomic.Bool

	mu          sync.Mutex
	completions []int64 // unix nanos, ascending
}

var _ sched.UnitState = (*liveUnit)(nil)

// QueueLen implements sched.UnitState.
func (u *liveUnit) QueueLen() int { return int(u.queued.Load()) }

// Busy implements sched.UnitState.
func (u *liveUnit) Busy() bool { return u.busy.Load() }

// CompletedSince implements affinity.UnitView.
func (u *liveUnit) CompletedSince(t int64) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	idx := sort.Search(len(u.completions), func(i int) bool { return u.completions[i] >= t })
	return len(u.completions) - idx
}

// MemoryBudget implements affinity.UnitView.
func (u *liveUnit) MemoryBudget() int64 { return u.buffer.Budget() }

// New starts a runtime: NumUnits worker goroutines plus a dispatcher.
// The scheduler's affinity scorer (if any) must be wired to this
// runtime's signature table; use NewAuction for the common case.
func New(g *graph.Graph, cfg Config, scheduler sched.Scheduler) (*Runtime, error) {
	return newWithSigs(g, cfg, scheduler, signature.NewTable(0))
}

// NewAuction starts a runtime scheduled by the paper's auction policy
// (SCH), with the affinity scorer wired to the runtime's signature
// table and the wall clock.
func NewAuction(g *graph.Graph, cfg Config, affCfg affinity.Config, epsilon float64) (*Runtime, error) {
	if g == nil {
		return nil, fmt.Errorf("live: graph is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sigs := signature.NewTable(0)
	scorer, err := affinity.NewScorer(g, sigs, signature.WallClock{}, affCfg)
	if err != nil {
		return nil, err
	}
	scheduler, err := sched.NewAuction(scorer, sched.AuctionConfig{
		NumUnits:      cfg.NumUnits,
		Epsilon:       epsilon,
		WorkloadAware: true,
	})
	if err != nil {
		return nil, err
	}
	return newWithSigs(g, cfg, scheduler, sigs)
}

func newWithSigs(g *graph.Graph, cfg Config, scheduler sched.Scheduler, sigs *signature.Table) (*Runtime, error) {
	if g == nil {
		return nil, fmt.Errorf("live: graph is required")
	}
	if scheduler == nil {
		return nil, fmt.Errorf("live: scheduler is required")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		g:        g,
		cfg:      cfg,
		sigs:     sigs,
		sched:    scheduler,
		diskSlot: make(chan struct{}, maxInt(cfg.Cost.Disk.Channels, 1)),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	for i := 0; i < cfg.NumUnits; i++ {
		u := &liveUnit{
			id:     int32(i),
			buffer: cache.New(cfg.MemoryPerUnit),
			queue:  make(chan *task, cfg.QueueCap),
		}
		r.units = append(r.units, u)
		r.wg.Add(1)
		go r.worker(u)
	}
	r.wg.Add(1)
	go r.dispatcher()
	return r, nil
}

// Signatures returns the visit-signature table (for wiring scorers).
func (r *Runtime) Signatures() *signature.Table { return r.sigs }

// Completed returns the number of finished queries so far.
func (r *Runtime) Completed() int64 { return r.completed.Load() }

// UnitStats is a point-in-time snapshot of one unit's activity.
type UnitStats struct {
	Unit      int32
	Queued    int
	Busy      bool
	Completed int
}

// Stats snapshots every unit's queue depth, busy flag and completion
// count. (Cache counters are owned by the worker goroutines and are
// not exposed while the runtime is hot.)
func (r *Runtime) Stats() []UnitStats {
	out := make([]UnitStats, len(r.units))
	for i, u := range r.units {
		u.mu.Lock()
		completed := len(u.completions)
		u.mu.Unlock()
		out[i] = UnitStats{
			Unit:      u.id,
			Queued:    u.QueueLen(),
			Busy:      u.Busy(),
			Completed: completed,
		}
	}
	return out
}

// Submit enqueues a query and returns a channel that will receive its
// Response exactly once.
func (r *Runtime) Submit(q traverse.Query) (<-chan Response, error) {
	if err := q.Validate(r.g); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	t := &task{id: r.nextID, query: q, submit: time.Now(), done: make(chan Response, 1)}
	r.nextID++
	r.pending = append(r.pending, t)
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
	return t.done, nil
}

// Do submits a query and waits for its response.
func (r *Runtime) Do(q traverse.Query) (Response, error) {
	ch, err := r.Submit(q)
	if err != nil {
		return Response{}, err
	}
	return <-ch, nil
}

// Close drains in-flight work and stops all goroutines. Pending
// queries are still executed; Submit after Close fails.
func (r *Runtime) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	r.wg.Wait()
}

// dispatcher batches pending queries and runs scheduling rounds,
// mirroring the Figure 6 flow on wall time.
func (r *Runtime) dispatcher() {
	defer r.wg.Done()
	timer := time.NewTimer(r.cfg.BatchWindow)
	defer timer.Stop()
	for {
		select {
		case <-r.stop:
			// Final drain: schedule whatever is still pending.
			r.dispatchBatch()
			for _, u := range r.units {
				close(u.queue)
			}
			return
		case <-r.wake:
			// Give the batch window a chance to accumulate peers.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(r.cfg.BatchWindow)
			select {
			case <-timer.C:
			case <-r.stop:
			}
			r.dispatchBatch()
		}
	}
}

// dispatchBatch assigns up to NumUnits pending tasks per round until
// the pending pool is empty.
func (r *Runtime) dispatchBatch() {
	for {
		r.mu.Lock()
		if len(r.pending) == 0 {
			r.mu.Unlock()
			return
		}
		n := len(r.units)
		if n > len(r.pending) {
			n = len(r.pending)
		}
		batch := r.pending[:n]
		r.pending = r.pending[n:]
		scheduler := r.sched
		r.mu.Unlock()

		stasks := make([]*sched.Task, len(batch))
		for i, t := range batch {
			stasks[i] = &sched.Task{ID: t.id, Query: t.query, Arrival: t.submit.UnixNano()}
		}
		units := make([]sched.UnitState, len(r.units))
		for i, u := range r.units {
			units[i] = u
		}
		placement := scheduler.Assign(stasks, units)
		for i, t := range batch {
			u := r.units[placement[i]]
			u.queued.Add(1)
			u.queue <- t // blocks if the unit is saturated: backpressure
		}
	}
}

// worker executes tasks on one unit, paying scaled access costs.
func (r *Runtime) worker(u *liveUnit) {
	defer r.wg.Done()
	for t := range u.queue {
		u.queued.Add(-1)
		u.busy.Store(true)
		t.started = time.Now()
		resp := r.execute(u, t)
		u.busy.Store(false)

		now := time.Now().UnixNano()
		u.mu.Lock()
		u.completions = append(u.completions, now)
		u.mu.Unlock()
		r.completed.Add(1)
		t.done <- resp
	}
}

// execute runs the traversal and charges its access trace: buffer hits
// accumulate a deferred sleep; misses hold a disk slot for the scaled
// transfer time.
func (r *Runtime) execute(u *liveUnit, t *task) Response {
	result, trace, err := traverse.Execute(r.g, t.query)
	if err != nil {
		return Response{Unit: u.id, Err: err, Wait: t.started.Sub(t.submit)}
	}
	cost := &r.cfg.Cost
	var inlineNanos int64
	for _, a := range trace.Accesses {
		key := liveKey(a)
		if u.buffer.Contains(key) {
			u.buffer.Access(key, int64(a.Bytes))
			inlineNanos += cost.MemHitNanos + liveCPU(cost, a)
			continue
		}
		// Miss: occupy one disk channel for the scaled service time.
		service := cost.Disk.SeekNanos + int64(a.Bytes)*1_000_000_000/cost.Disk.BytesPerSecond
		r.sleepScaled(service)
		u.buffer.Access(key, int64(a.Bytes))
		inlineNanos += liveCPU(cost, a) + int64(cost.CPUMissByteNanos*float64(a.Bytes))
	}
	r.sleepScaledNoSlot(inlineNanos)

	now := time.Now()
	for _, v := range trace.Touched {
		r.sigs.Record(v, u.id, now.UnixNano())
	}
	return Response{
		Result: result,
		Unit:   u.id,
		Wait:   t.started.Sub(t.submit),
		Exec:   now.Sub(t.started),
	}
}

// sleepScaled holds a disk slot while sleeping the scaled duration,
// creating genuine cross-unit contention on the shared disk.
func (r *Runtime) sleepScaled(virtualNanos int64) {
	r.diskSlot <- struct{}{}
	defer func() { <-r.diskSlot }()
	r.sleepScaledNoSlot(virtualNanos)
}

func (r *Runtime) sleepScaledNoSlot(virtualNanos int64) {
	d := time.Duration(float64(virtualNanos) * r.cfg.TimeScale)
	if d > 0 {
		time.Sleep(d)
	}
}

func liveCPU(cost *sim.CostModel, a traverse.Access) int64 {
	return cost.CPUVertexNanos + int64(a.ScannedEdges)*cost.CPUEdgeNanos
}

func liveKey(a traverse.Access) cache.Key {
	return cache.VertexKey(int32(a.Vertex))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
