package live

import (
	"strings"
	"testing"

	"subtrav/internal/graph"
	"subtrav/internal/obs"
	"subtrav/internal/sched"
	"subtrav/internal/traverse"
)

// TestTraceSpansCaptured runs queries through a traced runtime and
// checks the span pipeline end to end: every phase timestamped, the
// chosen unit recorded, cache activity counted, and the lifecycle
// outcome set.
func TestTraceSpansCaptured(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(2)
	cfg.TraceBuffer = 64
	r, err := New(g, cfg, sched.NewBaseline(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.TraceEnabled() {
		t.Fatal("TraceEnabled() = false with TraceBuffer set")
	}

	const n = 10
	for i := 0; i < n; i++ {
		resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: graph.VertexID(i), Depth: 2, MaxVisits: 100})
		if err != nil || resp.Err != nil {
			t.Fatalf("query %d: %v / %v", i, err, resp.Err)
		}
	}

	spans := r.Trace(n)
	if len(spans) != n {
		t.Fatalf("got %d spans, want %d", len(spans), n)
	}
	for _, s := range spans {
		if s.Outcome != obs.OutcomeCompleted {
			t.Errorf("span %d outcome = %q", s.QueryID, s.Outcome)
		}
		if s.Op != "bfs" {
			t.Errorf("span %d op = %q", s.QueryID, s.Op)
		}
		if s.Unit < 0 || s.Unit >= 2 {
			t.Errorf("span %d unit = %d", s.QueryID, s.Unit)
		}
		if s.SubmitNanos == 0 || s.ScheduleNanos < s.SubmitNanos ||
			s.StartNanos < s.ScheduleNanos || s.EndNanos < s.StartNanos {
			t.Errorf("span %d timestamps out of order: %+v", s.QueryID, s)
		}
		if s.ExecNanos <= 0 {
			t.Errorf("span %d exec = %d", s.QueryID, s.ExecNanos)
		}
		if s.CacheHits+s.CacheMisses == 0 {
			t.Errorf("span %d saw no cache activity", s.QueryID)
		}
	}
	// Sequential queries on a cold cache must read bytes somewhere.
	var bytes int64
	for _, s := range spans {
		bytes += s.BytesRead
	}
	if bytes == 0 {
		t.Error("no span recorded bytes read")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(1), sched.NewBaseline(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.TraceEnabled() {
		t.Error("TraceEnabled() = true without TraceBuffer")
	}
	if _, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 1}); err != nil {
		t.Fatal(err)
	}
	if spans := r.Trace(10); spans != nil {
		t.Errorf("Trace returned %d spans with tracing off", len(spans))
	}
}

func TestNegativeTraceBufferRejected(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(1)
	cfg.TraceBuffer = -1
	if _, err := New(g, cfg, sched.NewBaseline(1)); err == nil {
		t.Error("negative TraceBuffer should fail validation")
	}
}

// TestRegistryExposesConservation scrapes the runtime's registry and
// checks the lifecycle counters CI's smoke test asserts on: the
// conservation invariant submitted = completed + rejected + timed-out
// is visible on /metrics, as are per-unit cache series.
func TestRegistryExposesConservation(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewBaseline(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: graph.VertexID(i), Depth: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := r.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"subtrav_queries_submitted_total 8",
		"subtrav_queries_completed_total 8",
		"subtrav_queries_rejected_total 0",
		"subtrav_queries_timed_out_total 0",
		`subtrav_unit_cache_hits_total{unit="0"}`,
		`subtrav_unit_cache_misses_total{unit="0"}`,
		`subtrav_unit_completed_total{unit="1"}`,
		"subtrav_query_latency_nanos_count 8",
		"subtrav_disk_wait_nanos",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDirectionTelemetry pins the direction-optimizing traversal
// surface: the runtime's default Direction knob reaches queries with a
// zero-valued Dir, wave/switch counters land on /metrics, and spans
// carry the per-query counts — through both the single-query and the
// lockstep batched execution paths.
func TestDirectionTelemetry(t *testing.T) {
	t.Parallel()
	// A clique with pendant leaves and a tail entry vertex forces the
	// Auto heuristic through both directions: BFS from the tail pushes
	// two cheap waves, then pulls the pendant wave rather than scanning
	// the clique frontier's ~4k redundant out-edges (the sunflower
	// fixture of internal/traverse's TestDirStats, 129 vertices).
	const m = 64
	b := graph.NewBuilder(graph.Undirected, 2*m+1)
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(m+u))
	}
	b.AddEdge(0, graph.VertexID(2*m))
	g := b.Build()

	cfg := fastLiveConfig(2)
	cfg.TraceBuffer = 64
	cfg.BatchTraversals = 4
	r, err := New(g, cfg, sched.NewBaseline(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 8
	for i := 0; i < n; i++ {
		resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: 2 * m, Depth: 3})
		if err != nil || resp.Err != nil {
			t.Fatalf("query %d: %v / %v", i, err, resp.Err)
		}
	}

	spans := r.Trace(n)
	if len(spans) != n {
		t.Fatalf("got %d spans, want %d", len(spans), n)
	}
	for _, s := range spans {
		if s.PushWaves != 2 || s.PullWaves != 1 || s.DirSwitches != 1 {
			t.Errorf("span %d direction detail = push %d / pull %d / switches %d, want 2/1/1",
				s.QueryID, s.PushWaves, s.PullWaves, s.DirSwitches)
		}
	}

	var out strings.Builder
	if err := r.Registry().WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	exp := out.String()
	for _, want := range []string{
		"subtrav_traverse_push_waves_total 16",
		"subtrav_traverse_pull_waves_total 8",
		"subtrav_traverse_direction_switches_total 8",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestDirectionConfigValidated pins Config.Direction validation.
func TestDirectionConfigValidated(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(1)
	cfg.Direction = traverse.DirectionConfig{Alpha: -3}
	if _, err := New(g, cfg, sched.NewBaseline(1)); err == nil {
		t.Error("negative direction threshold should fail validation")
	}
}

// TestStatsCacheCounters checks the per-unit hit/miss totals surfaced
// through Stats (and from there the wire protocol and -watch).
func TestStatsCacheCounters(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewBaseline(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 12; i++ {
		if _, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 100}); err != nil {
			t.Fatal(err)
		}
	}
	var hits, misses int64
	for _, u := range r.Stats() {
		hits += u.CacheHits
		misses += u.CacheMisses
		if u.CacheHits > 0 || u.CacheMisses > 0 {
			if hr := u.HitRate(); hr < 0 || hr > 1 {
				t.Errorf("unit %d hit rate %g out of range", u.Unit, hr)
			}
		}
	}
	if misses == 0 {
		t.Error("cold cache recorded no misses")
	}
	// The same anchor re-traversed from a warm cache must hit.
	if hits == 0 {
		t.Error("repeated identical traversals recorded no cache hits")
	}
}
