package live

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"subtrav/internal/sched"
	"subtrav/internal/traverse"
)

// TestTenantShareCapsFloodingTenant is the regression test for the
// harness-exposed defect: without per-tenant admission accounting, one
// flooding tenant consumes the whole MaxPending budget and a
// well-behaved tenant is rejected alongside it. With TenantShare set,
// the flooder is capped at its share and the second tenant still
// admits.
func TestTenantShareCapsFloodingTenant(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := slowLiveConfig(1)
	cfg.QueueCap = 16
	cfg.MaxPending = 8
	cfg.TenantShare = 0.25 // per-tenant cap = ceil(0.25·8) = 2
	r, err := New(g, cfg, sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 20}
	var accepted []<-chan Response
	var tenantRejections int
	for i := 0; i < 10; i++ {
		ch, err := r.SubmitTenantCtx(nil, "flooder", q)
		switch {
		case err == nil:
			accepted = append(accepted, ch)
		case errors.Is(err, ErrQueueFull):
			var rej *RejectedError
			if !errors.As(err, &rej) {
				t.Fatalf("rejection is not *RejectedError: %T", err)
			}
			if !rej.TenantLimited {
				t.Errorf("rejection %d not TenantLimited (global pool should have room)", i)
			}
			if rej.Tenant != "flooder" {
				t.Errorf("rejection tenant = %q, want flooder", rej.Tenant)
			}
			if rej.InFlight < 2 {
				t.Errorf("tenant InFlight = %d at rejection, want >= 2", rej.InFlight)
			}
			if rej.RetryAfter <= 0 {
				t.Errorf("RetryAfter = %v, want > 0", rej.RetryAfter)
			}
			tenantRejections++
		default:
			t.Fatalf("SubmitTenantCtx: %v", err)
		}
	}
	if tenantRejections == 0 {
		t.Fatal("no tenant-limited rejections with share cap 2 and 10 instant submissions")
	}
	if len(accepted) > 2 {
		t.Fatalf("flooder admitted %d queries, share cap is 2", len(accepted))
	}

	// The flooder is at its cap, but a second tenant must still admit:
	// the global pool (MaxPending 8) has room.
	ch, err := r.SubmitTenantCtx(nil, "modest", q)
	if err != nil {
		t.Fatalf("second tenant rejected while global pool has room: %v", err)
	}
	accepted = append(accepted, ch)

	for i, ch := range accepted {
		if resp := <-ch; resp.Err != nil {
			t.Fatalf("accepted query %d: %v", i, resp.Err)
		}
	}

	// Per-tenant conservation: submitted = completed + rejected +
	// timed-out within each bucket, mirroring the global invariant.
	for _, ts := range r.TenantStatsSnapshot() {
		if ts.Submitted != ts.Completed+ts.Rejected+ts.TimedOut {
			t.Errorf("tenant %q: submitted %d != completed %d + rejected %d + timed-out %d",
				ts.Tenant, ts.Submitted, ts.Completed, ts.Rejected, ts.TimedOut)
		}
		if ts.InFlight != 0 {
			t.Errorf("tenant %q: inflight = %d at quiescence", ts.Tenant, ts.InFlight)
		}
	}
	m := r.Metrics()
	if m.Submitted != m.Completed+m.Rejected+m.TimedOut {
		t.Errorf("global conservation violated: %+v", m)
	}
}

// TestTenantSeriesOnMetrics checks the per-tenant series reach the
// exposition with the tenant label, and that untenanted traffic lands
// in the default bucket.
func TestTenantSeriesOnMetrics(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 20}
	for i := 0; i < 3; i++ {
		ch, err := r.SubmitTenantCtx(nil, "acme", q)
		if err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	if _, err := r.Do(q); err != nil { // untenanted → default bucket
		t.Fatal(err)
	}

	var b strings.Builder
	if err := r.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`subtrav_tenant_submitted_total{tenant="acme"} 3`,
		`subtrav_tenant_completed_total{tenant="acme"} 3`,
		`subtrav_tenant_submitted_total{tenant="default"} 1`,
		`subtrav_tenant_inflight{tenant="acme"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTenantCardinalityBounded floods the runtime with distinct tenant
// names and checks both the accounting map and the metric label set
// stay bounded: everything past the cap folds into one overflow
// bucket.
func TestTenantCardinalityBounded(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 1, MaxVisits: 5}
	var chans []<-chan Response
	for i := 0; i < 4*maxTenantStates; i++ {
		ch, err := r.SubmitTenantCtx(nil, fmt.Sprintf("tenant-%03d", i), q)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		<-ch
	}

	// At most maxTenantStates named buckets plus the one overflow
	// bucket.
	stats := r.TenantStatsSnapshot()
	if len(stats) > maxTenantStates+1 {
		t.Fatalf("tenant buckets = %d, want <= %d", len(stats), maxTenantStates+1)
	}
	var overflow *TenantStats
	var total int64
	for i := range stats {
		total += stats[i].Submitted
		if stats[i].Tenant == overflowTenantLabel {
			overflow = &stats[i]
		}
	}
	if overflow == nil {
		t.Fatal("no overflow bucket after exceeding the tenant cap")
	}
	if want := int64(4*maxTenantStates - maxTenantStates); overflow.Submitted != want {
		t.Errorf("overflow submitted = %d, want %d", overflow.Submitted, want)
	}
	if total != int64(4*maxTenantStates) {
		t.Errorf("total submitted across buckets = %d, want %d", total, 4*maxTenantStates)
	}

	var b strings.Builder
	if err := r.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "subtrav_tenant_submitted_total{"); n > maxTenantStates+1 {
		t.Errorf("exposition has %d tenant series, want <= %d", n, maxTenantStates+1)
	}
}

// TestImbalanceAndHitRatioSeries checks the balance-side tradeoff
// telemetry reaches /metrics: the per-round imbalance factor (gauge +
// distribution) and the per-unit cache hit ratio.
func TestImbalanceAndHitRatioSeries(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 50}
	for i := 0; i < 8; i++ {
		if _, err := r.Do(q); err != nil {
			t.Fatal(err)
		}
	}
	if v := r.obs.imbalance.Value(); v < 1 {
		t.Errorf("imbalance factor = %g, want >= 1", v)
	}
	if n := r.obs.imbalanceMilli.Count(); n == 0 {
		t.Error("imbalance distribution recorded no rounds")
	}
	var b strings.Builder
	if err := r.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"subtrav_sched_imbalance_factor ",
		"subtrav_sched_imbalance_milli_count ",
		`subtrav_unit_cache_hit_ratio{unit="0"}`,
		`subtrav_unit_cache_hit_ratio{unit="1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
