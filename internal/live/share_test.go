package live

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"subtrav/internal/faultpoint"
	"subtrav/internal/graph"
	"subtrav/internal/sched"
	"subtrav/internal/sim"
	"subtrav/internal/traverse"
)

// The cross-query sharing layer must never change what a query
// returns — only how much disk work a concurrent mix costs. These
// tests pin live responses against direct single-source execution with
// coalescing and batching on, and cover the failure semantics the
// single-flight table promises: scoped waiter cancellation and
// exactly-once error fan-out.

// overlapConfig makes concurrent same-record misses overlap reliably:
// multi-millisecond real fetches, plenty of channels, cold private
// buffers on every unit.
func overlapConfig(units int) Config {
	cost := sim.DefaultCostModel()
	cost.Disk.SeekNanos = 2_000_000 // 2 ms per miss at TimeScale 1
	cost.Disk.Channels = units * 2
	return Config{
		NumUnits:      units,
		MemoryPerUnit: 256 << 10,
		Cost:          cost,
		TimeScale:     1,
		BatchWindow:   50 * time.Microsecond,
		CoalesceReads: true,
	}
}

// doAll submits every query concurrently and returns the responses in
// query order, failing the test on submission errors.
func doAll(t *testing.T, r *Runtime, queries []traverse.Query) []Response {
	t.Helper()
	out := make([]Response, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q traverse.Query) {
			defer wg.Done()
			resp, err := r.Do(q)
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			out[i] = resp
		}(i, q)
	}
	wg.Wait()
	return out
}

func TestCoalescedReadsPreserveResults(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, overlapConfig(8), sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Eight units all running the same hub query: every unit's cold
	// buffer misses on the same records at the same time.
	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 60}
	want, _, err := traverse.Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]traverse.Query, 8)
	for i := range queries {
		queries[i] = q
	}
	for i, resp := range doAll(t, r, queries) {
		if resp.Err != nil {
			t.Fatalf("query %d failed: %v", i, resp.Err)
		}
		if !reflect.DeepEqual(resp.Result, want) {
			t.Fatalf("query %d result = %+v, want %+v", i, resp.Result, want)
		}
	}
	if got := r.obs.coalescedReads.Value(); got == 0 {
		t.Error("8 concurrent identical cold queries coalesced nothing")
	}
	if got := r.obs.sfWaiters.Value(); got != 0 {
		t.Errorf("singleflight waiters gauge = %d at quiescence, want 0", got)
	}
}

func TestBatchTraversalsMatchDirectExecution(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(2)
	cfg.BatchTraversals = 8
	cfg.QueueCap = 64
	// A wide batch window so concurrent submissions land on the queues
	// together and the workers actually drain multi-member batches.
	cfg.BatchWindow = 2 * time.Millisecond
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Batchable BFS and SSSP mixed with non-batchable RWR, which must
	// ride through the drain as an ordinary carry task.
	var queries []traverse.Query
	for i := 0; i < 36; i++ {
		switch i % 3 {
		case 0:
			queries = append(queries, traverse.Query{
				Op: traverse.OpBFS, Start: graph.VertexID(i % 20), Depth: 2, MaxVisits: 80,
			})
		case 1:
			queries = append(queries, traverse.Query{
				Op: traverse.OpSSSP, Start: graph.VertexID(i % 20), Target: graph.VertexID(500 + i), Depth: 5,
			})
		default:
			queries = append(queries, traverse.Query{
				Op: traverse.OpRWR, Start: graph.VertexID(i % 20), Steps: 50, RestartProb: 0.2, TopK: 3, Seed: uint64(i),
			})
		}
	}
	responses := doAll(t, r, queries)
	for i, resp := range responses {
		if resp.Err != nil {
			t.Fatalf("query %d (%s) failed: %v", i, queries[i].Op, resp.Err)
		}
		want, _, err := traverse.Execute(g, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resp.Result, want) {
			t.Fatalf("query %d (%s) result = %+v, want %+v", i, queries[i].Op, resp.Result, want)
		}
	}
	if m := r.Metrics(); m.Completed != int64(len(queries)) || !m.Conserved() {
		t.Errorf("metrics = %v, want %d completions, conserved", m, len(queries))
	}
}

// TestCoalescedWaiterCancellationDoesNotPoisonPeers is the chaos core
// of the single-flight contract: a waiter whose deadline expires
// mid-fetch gets its own context error while every peer joined to the
// same fetch completes normally.
func TestCoalescedWaiterCancellationDoesNotPoisonPeers(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := overlapConfig(4)
	cfg.Cost.Disk.SeekNanos = 5_000_000 // 5 ms per miss: deadlines expire mid-fetch
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 40}
	want, _, err := traverse.Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	peerErrs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := r.Do(q)
			if err != nil {
				peerErrs <- err
				return
			}
			if resp.Err != nil {
				peerErrs <- fmt.Errorf("peer %d: %w", i, resp.Err)
				return
			}
			if !reflect.DeepEqual(resp.Result, want) {
				peerErrs <- fmt.Errorf("peer %d result = %+v, want %+v", i, resp.Result, want)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Millisecond)
		defer cancel()
		ch, err := r.SubmitCtx(ctx, q)
		if err != nil {
			peerErrs <- err
			return
		}
		resp := <-ch
		if !errors.Is(resp.Err, context.DeadlineExceeded) {
			peerErrs <- fmt.Errorf("cancelled waiter error = %v, want deadline exceeded", resp.Err)
		}
	}()
	wg.Wait()
	close(peerErrs)
	for err := range peerErrs {
		t.Error(err)
	}
	if m := r.Metrics(); m.TimedOut != 1 || m.Completed != 3 || !m.Conserved() {
		t.Errorf("metrics = %v, want 3 completed + 1 timed out, conserved", m)
	}
}

// TestCoalescedFaultFansOutToEveryWaiter injects a persistent disk
// error under coalescing: the one shared fetch fails (after its single
// internal retry) and the failure is delivered to every query joined
// to it exactly once each — no waiter hangs, none double-resolves.
func TestCoalescedFaultFansOutToEveryWaiter(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := overlapConfig(4)
	injected := errors.New("dead disk")
	cfg.Faults = faultpoint.NewSet(1).Add(faultpoint.DiskRead, faultpoint.Rule{Every: 1, Err: injected})
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 40}
	queries := make([]traverse.Query, 4)
	for i := range queries {
		queries[i] = q
	}
	for i, resp := range doAll(t, r, queries) {
		if !errors.Is(resp.Err, injected) {
			t.Errorf("query %d error = %v, want the injected disk error", i, resp.Err)
		}
	}
	m := r.Metrics()
	if m.Completed != 4 || m.Failed != 4 || !m.Conserved() {
		t.Errorf("metrics = %v, want every waiter to fail exactly once", m)
	}
}

func TestShareConfigValidation(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	for _, bad := range []int{-1, traverse.MaxBatch + 1} {
		cfg := fastLiveConfig(1)
		cfg.BatchTraversals = bad
		if _, err := New(g, cfg, sched.NewRoundRobin()); err == nil {
			t.Errorf("BatchTraversals = %d accepted", bad)
		}
	}
	cfg := fastLiveConfig(1)
	cfg.BatchTraversals = traverse.MaxBatch
	cfg.CoalesceReads = true
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatalf("valid sharing config rejected: %v", err)
	}
	r.Close()
}
