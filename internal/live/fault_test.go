package live

import (
	"context"
	"errors"
	"testing"
	"time"

	"subtrav/internal/faultpoint"
	"subtrav/internal/graph"
	"subtrav/internal/sched"
	"subtrav/internal/sim"
	"subtrav/internal/traverse"
)

// slowLiveConfig makes every cache miss pay a real multi-millisecond
// sleep, so deadlines can expire mid-traversal deterministically.
func slowLiveConfig(units int) Config {
	cost := sim.DefaultCostModel()
	cost.Disk.SeekNanos = 5_000_000 // 5 ms per miss at TimeScale 1
	cost.Disk.Channels = 1
	return Config{
		NumUnits:      units,
		MemoryPerUnit: 256 << 10,
		Cost:          cost,
		TimeScale:     1,
		BatchWindow:   50 * time.Microsecond,
	}
}

func TestDeadlineCancelsMidTraversal(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, slowLiveConfig(1), sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	// ~40 misses × 5 ms each ≫ the 15 ms deadline.
	resp, err := r.DoCtx(ctx, traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 3, MaxVisits: 40})
	elapsed := time.Since(start)
	if err != nil {
		// DoCtx may return the bare context error if the runtime had
		// not yet delivered the response; both shapes are in-contract.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("DoCtx error = %v", err)
		}
	} else if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("response error = %v, want deadline exceeded", resp.Err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; deadline not observed mid-traversal", elapsed)
	}

	// The drop lands in metrics once the runtime resolves the task.
	deadline := time.Now().Add(5 * time.Second)
	for r.Metrics().TimedOut == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m := r.Metrics(); m.TimedOut != 1 {
		t.Fatalf("TimedOut = %d, want 1 (%v)", m.TimedOut, m)
	}

	// The unit is reusable: a fresh query completes normally.
	resp, err = r.Do(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 1, MaxVisits: 5})
	if err != nil || resp.Err != nil {
		t.Fatalf("unit not reusable after cancellation: %v / %v", err, resp.Err)
	}
	if m := r.Metrics(); m.Completed != 1 || !m.Conserved() {
		t.Errorf("metrics after reuse: %v", m)
	}
}

func TestDefaultDeadlineApplies(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := slowLiveConfig(1)
	cfg.DefaultDeadline = 10 * time.Millisecond
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 3, MaxVisits: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("response error = %v, want default deadline to fire", resp.Err)
	}
	if m := r.Metrics(); m.TimedOut != 1 {
		t.Errorf("TimedOut = %d, want 1", m.TimedOut)
	}
}

func TestBackpressureRejectsWithRetryAfter(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := slowLiveConfig(1)
	cfg.QueueCap = 1
	cfg.MaxPending = 2
	r, err := New(g, cfg, sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 20}
	var accepted []<-chan Response
	var rejections int
	for i := 0; i < 10; i++ {
		ch, err := r.Submit(q)
		switch {
		case err == nil:
			accepted = append(accepted, ch)
		case errors.Is(err, ErrQueueFull):
			rejections++
			var rej *RejectedError
			if !errors.As(err, &rej) {
				t.Fatalf("queue-full error is not *RejectedError: %T", err)
			}
			if rej.RetryAfter <= 0 {
				t.Errorf("RetryAfter = %v, want > 0", rej.RetryAfter)
			}
			if rej.InFlight < cfg.MaxPending {
				t.Errorf("InFlight = %d at rejection, want >= %d", rej.InFlight, cfg.MaxPending)
			}
		default:
			t.Fatalf("Submit: %v", err)
		}
		if got := r.InFlight(); got > cfg.MaxPending {
			t.Fatalf("in-flight %d exceeds MaxPending %d", got, cfg.MaxPending)
		}
	}
	if rejections == 0 {
		t.Fatal("no rejections with MaxPending=2 and 10 instant submissions")
	}
	for i, ch := range accepted {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Errorf("accepted query %d failed: %v", i, resp.Err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("accepted query %d never resolved", i)
		}
	}
	m := r.Metrics()
	if int(m.Rejected) != rejections {
		t.Errorf("Rejected = %d, want %d", m.Rejected, rejections)
	}
	if !m.Conserved() {
		t.Errorf("not conserved: %v", m)
	}
}

func TestRejectedSubmitSucceedsAfterBackoff(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := slowLiveConfig(1)
	cfg.QueueCap = 1
	cfg.MaxPending = 1
	r, err := New(g, cfg, sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	q := traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 1, MaxVisits: 5}
	first, err := r.Submit(q)
	if err != nil {
		t.Fatal(err)
	}
	// Saturated: the next submit must be rejected, then succeed after
	// backing off per the hint.
	var rej *RejectedError
	if _, err := r.Submit(q); !errors.As(err, &rej) {
		t.Fatalf("second submit = %v, want rejection", err)
	}
	var second <-chan Response
	for attempt := 0; attempt < 200; attempt++ {
		time.Sleep(rej.RetryAfter)
		ch, err := r.Submit(q)
		if err == nil {
			second = ch
			break
		}
		if !errors.Is(err, ErrQueueFull) {
			t.Fatal(err)
		}
	}
	if second == nil {
		t.Fatal("retry never admitted")
	}
	for _, ch := range []<-chan Response{first, second} {
		if resp := <-ch; resp.Err != nil {
			t.Errorf("query failed: %v", resp.Err)
		}
	}
}

func TestDiskFaultTransientErrorIsRetried(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(2)
	// Every 5th disk read errors transiently; the immediate internal
	// retry hits a clean ordinal, so queries still succeed.
	cfg.Faults = faultpoint.NewSet(1).Add(faultpoint.DiskRead, faultpoint.Rule{
		Every: 5, Err: errors.New("injected disk error"),
	})
	r, err := New(g, cfg, sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 20; i++ {
		resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: graph.VertexID(i * 7 % 500), Depth: 2, MaxVisits: 40})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Err != nil {
			t.Fatalf("query %d failed despite retry: %v", i, resp.Err)
		}
	}
	m := r.Metrics()
	if m.DiskFaultRetries == 0 {
		t.Error("no disk-fault retries recorded; fault schedule never fired")
	}
	if m.Failed != 0 {
		t.Errorf("Failed = %d, want 0 (single faults are absorbed)", m.Failed)
	}
}

func TestDiskFaultPersistentErrorFailsQuery(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(1)
	injected := errors.New("dead disk")
	cfg.Faults = faultpoint.NewSet(1).Add(faultpoint.DiskRead, faultpoint.Rule{Every: 1, Err: injected})
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.Err, injected) {
		t.Fatalf("response error = %v, want injected disk error", resp.Err)
	}
	m := r.Metrics()
	if m.Failed != 1 || m.Completed != 1 {
		t.Errorf("metrics = %v, want the failure to count as a completion", m)
	}
	if !m.Conserved() {
		t.Errorf("not conserved: %v", m)
	}
}

func TestDiskLatencySpikeSlowsButCompletes(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(2)
	cfg.Faults = faultpoint.NewSet(3).Add(faultpoint.DiskRead, faultpoint.Rule{
		Every: 3, Delay: 2 * time.Millisecond,
	})
	r, err := New(g, cfg, sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 30})
	if err != nil || resp.Err != nil {
		t.Fatalf("query failed under latency spikes: %v / %v", err, resp.Err)
	}
	if cfg.Faults.Fired(faultpoint.DiskRead) == 0 {
		t.Error("no spikes fired")
	}
}

func TestStalledUnitDropsExpiredTaskAtDequeue(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(1)
	cfg.Faults = faultpoint.NewSet(1).Add(faultpoint.Dequeue, faultpoint.Rule{
		Every: 1, Delay: 30 * time.Millisecond,
	})
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	ch, err := r.SubmitCtx(ctx, traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 1, MaxVisits: 5})
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("response error = %v, want deadline (task expired during unit stall)", resp.Err)
	}
	if m := r.Metrics(); m.TimedOut != 1 || !m.Conserved() {
		t.Errorf("metrics = %v", m)
	}
}

func TestSchedulerStallsDegradeToFallback(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(2)
	cfg.SchedTimeout = time.Millisecond
	cfg.DegradeAfter = 2
	cfg.DegradeCooldown = 4
	cfg.Faults = faultpoint.NewSet(1).Add(faultpoint.SchedRound, faultpoint.Rule{
		Every: 1, Delay: 3 * time.Millisecond, // every round blows the budget
	})
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 30; i++ {
		resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: graph.VertexID(i % 100), Depth: 1, MaxVisits: 10})
		if err != nil || resp.Err != nil {
			t.Fatalf("query %d failed under scheduler stalls: %v / %v", i, err, resp.Err)
		}
	}
	m := r.Metrics()
	if m.DegradedRounds == 0 {
		t.Errorf("DegradedRounds = 0 after %d slow rounds (%v)", cfg.Faults.Hits(faultpoint.SchedRound), m)
	}
	if m.Completed != 30 || !m.Conserved() {
		t.Errorf("metrics = %v", m)
	}
}

func TestSchedulerFaultErrorUsesFallbackRound(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	cfg := fastLiveConfig(2)
	cfg.SchedTimeout = time.Second // generous: only the injected error should degrade
	cfg.Faults = faultpoint.NewSet(1).Add(faultpoint.SchedRound, faultpoint.Rule{
		Every: 1, Err: errors.New("auction wedged"),
	})
	r, err := New(g, cfg, sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 10; i++ {
		if resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: graph.VertexID(i), Depth: 1, MaxVisits: 10}); err != nil || resp.Err != nil {
			t.Fatalf("query %d: %v / %v", i, err, resp.Err)
		}
	}
	if m := r.Metrics(); m.DegradedRounds == 0 {
		t.Errorf("faulted rounds did not use fallback: %v", m)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.MaxPending = -1 },
		func(c *Config) { c.DefaultDeadline = -time.Second },
		func(c *Config) { c.SchedTimeout = -time.Second },
		func(c *Config) { c.DegradeAfter = -1 },
		func(c *Config) { c.DegradeCooldown = -2 },
	} {
		cfg := fastLiveConfig(1)
		mutate(&cfg)
		if _, err := New(g, cfg, sched.NewRoundRobin()); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}
