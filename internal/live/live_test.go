package live

import (
	"sync"
	"testing"
	"time"

	"subtrav/internal/affinity"
	"subtrav/internal/graph"
	"subtrav/internal/graphgen"
	"subtrav/internal/sched"
	"subtrav/internal/sim"
	"subtrav/internal/traverse"
)

func liveGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graphgen.PowerLaw(graphgen.PowerLawConfig{
		NumVertices: 1000, NumEdges: 5000, Exponent: 2.3,
		Kind: graph.Undirected, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fastLiveConfig(units int) Config {
	cost := sim.DefaultCostModel()
	cost.Disk.SeekNanos = 50_000
	return Config{
		NumUnits:      units,
		MemoryPerUnit: 256 << 10,
		Cost:          cost,
		TimeScale:     1e-4,
		BatchWindow:   50 * time.Microsecond,
	}
}

func TestDoExecutesQuery(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewBaseline(1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	resp, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 2, MaxVisits: 100})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Result.Visited <= 0 {
		t.Errorf("visited = %d", resp.Result.Visited)
	}
	if resp.Unit < 0 || resp.Unit >= 2 {
		t.Errorf("unit = %d", resp.Unit)
	}
	if resp.Exec <= 0 {
		t.Errorf("exec duration = %v", resp.Exec)
	}
}

func TestResultsMatchDirectExecution(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(4), sched.NewBaseline(2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	q := traverse.Query{Op: traverse.OpRWR, Start: 5, Steps: 200, RestartProb: 0.2, TopK: 5, Seed: 77}
	want, _, err := traverse.Execute(g, q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := r.Do(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Ranking) != len(want.Ranking) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(resp.Result.Ranking), len(want.Ranking))
	}
	for i := range want.Ranking {
		if resp.Result.Ranking[i] != want.Ranking[i] {
			t.Fatalf("ranking[%d] = %+v, want %+v", i, resp.Result.Ranking[i], want.Ranking[i])
		}
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := NewAuction(g, fastLiveConfig(4), affinity.DefaultConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := r.Do(traverse.Query{
				Op: traverse.OpBFS, Start: graph.VertexID(i % 50), Depth: 2, MaxVisits: 80,
			})
			if err != nil {
				errs <- err
				return
			}
			if resp.Err != nil {
				errs <- resp.Err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := r.Completed(); got != n {
		t.Errorf("completed = %d, want %d", got, n)
	}
}

func TestAffinityRoutingWarmsCaches(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := NewAuction(g, fastLiveConfig(4), affinity.DefaultConfig(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Repeated queries on the same neighborhood should end up on the
	// same unit once signatures exist.
	q := traverse.Query{Op: traverse.OpBFS, Start: 3, Depth: 2, MaxVisits: 60}
	first, err := r.Do(q)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	const repeats = 10
	for i := 0; i < repeats; i++ {
		resp, err := r.Do(q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Unit == first.Unit {
			same++
		}
	}
	if same < repeats*7/10 {
		t.Errorf("only %d/%d repeats landed on unit %d; affinity routing ineffective", same, repeats, first.Unit)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := r.Submit(traverse.Query{Op: traverse.OpBFS, Start: 0, Depth: 1}); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	r.Close() // idempotent
}

func TestCloseDrainsPending(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(2), sched.NewLeastLoaded())
	if err != nil {
		t.Fatal(err)
	}
	var chans []<-chan Response
	for i := 0; i < 50; i++ {
		ch, err := r.Submit(traverse.Query{Op: traverse.OpBFS, Start: graph.VertexID(i), Depth: 1})
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	r.Close()
	for i, ch := range chans {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Errorf("task %d: %v", i, resp.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("task %d never completed after Close", i)
		}
	}
}

func TestInvalidQueryRejected(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(1), sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Submit(traverse.Query{Op: traverse.OpBFS, Start: -1}); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	if _, err := New(nil, fastLiveConfig(1), sched.NewRoundRobin()); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(g, fastLiveConfig(1), nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	cfg := fastLiveConfig(0)
	if _, err := New(g, cfg, sched.NewRoundRobin()); err == nil {
		t.Error("zero units accepted")
	}
	cfg = fastLiveConfig(1)
	cfg.TimeScale = -1
	if _, err := New(g, cfg, sched.NewRoundRobin()); err == nil {
		t.Error("negative time scale accepted")
	}
}

func TestStatsSnapshot(t *testing.T) {
	t.Parallel()
	g := liveGraph(t)
	r, err := New(g, fastLiveConfig(3), sched.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := r.Do(traverse.Query{Op: traverse.OpBFS, Start: graph.VertexID(i % 20), Depth: 1}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	stats := r.Stats()
	if len(stats) != 3 {
		t.Fatalf("stats for %d units", len(stats))
	}
	total := 0
	for _, s := range stats {
		total += s.Completed
		if s.Busy || s.Queued != 0 {
			t.Errorf("unit %d not quiesced after Close: %+v", s.Unit, s)
		}
	}
	if total != 30 {
		t.Errorf("completed sum = %d, want 30", total)
	}
}
