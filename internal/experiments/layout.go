package experiments

import (
	"fmt"

	"subtrav"
	"subtrav/internal/partition"
)

// PartitionedLayout is an extension experiment for the shared-disk
// layout model: graph records are stored partition-contiguously, so
// runs of same-partition reads pay a reduced seek
// (storage.DiskConfig.PartitionLocality). Affinity scheduling clusters
// a unit's reads inside few partitions, so it converts more of its
// misses into cheap local seeks than random placement does — layout
// locality compounds with cache locality.
func PartitionedLayout(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	units := cfg.maxUnits()
	// The image corpus is the natural fit: it ships with the paper's
	// 45 partitions (person clusters grouped), and an image query's
	// misses land inside one cluster — exactly the run structure a
	// partition-contiguous layout rewards. A computed partitioning of
	// the Twitter-like graph is exercised by internal/partition's own
	// tests; on a hub-collapsed graph its edge cut is too high to
	// produce long same-partition runs.
	a := imageApp()
	pg, tasks, err := a.build(cfg)
	if err != nil {
		return nil, err
	}
	if pg.NumPartitions() == 0 {
		// Fall back to a computed partitioning for graphs without one.
		part, err := partition.Compute(pg, partition.Config{NumPartitions: units, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		pg = partition.Apply(pg, part.Labels)
	}

	t := &Table{
		Title:   fmt.Sprintf("Extension: partition-contiguous disk layout (image search, %d units, %d partitions)", units, pg.NumPartitions()),
		Columns: []string{"layout locality", "baseline (q/s)", "SCH (q/s)", "SCH local seeks", "SCH/baseline"},
		Notes: []string{
			"locality = same-partition seek cost multiplier (1.0: layout-oblivious disk)",
			"expected: affinity scheduling benefits more from layout locality (its reads cluster by partition)",
		},
	}
	for _, locality := range []float64{1.0, 0.25} {
		cost := cfg.Cost
		cost.Disk.PartitionLocality = locality
		runCfg := cfg
		runCfg.Cost = cost
		base, err := runCfg.runOn(pg, tasks, units, a.memory(cfg), subtrav.PolicyBaseline)
		if err != nil {
			return nil, err
		}
		sch, err := runCfg.runOn(pg, tasks, units, a.memory(cfg), subtrav.PolicyAuction)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", locality),
			base.ThroughputPerSec, sch.ThroughputPerSec,
			fmt.Sprintf("%d/%d", sch.Disk.LocalSeeks, sch.Disk.Requests),
			fmt.Sprintf("%.2fx", ratio(sch.ThroughputPerSec, base.ThroughputPerSec)))
	}
	return t, nil
}
